// Ablation: the analytical model's stream choice vs every fixed pool
// size. The model should land near the best fixed configuration on each
// GPU without any sweep.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

int main() {
  const mc::NetSpec spec = mc::models::cifar10_quick();
  const std::vector<int> fixed = {1, 2, 4, 8, 16, 32};

  bench::print_header(
      "Ablation: analytical model vs fixed stream counts (CIFAR10, fwd+bwd "
      "iteration ms)");
  std::vector<int> widths = {10};
  std::vector<std::string> head = {"GPU"};
  for (int s : fixed) {
    head.push_back("S=" + std::to_string(s));
    widths.push_back(8);
  }
  head.push_back("model");
  widths.push_back(9);
  head.push_back("model-vs-best");
  widths.push_back(14);
  bench::print_row(head, widths);

  for (const auto& device : bench::evaluation_gpus()) {
    std::vector<std::string> row = {device.name};
    double best = 1e30;
    for (int s : fixed) {
      bench::RunConfig cfg;
      cfg.device = device;
      cfg.mode = bench::Mode::kFixed;
      cfg.fixed_streams = s;
      const bench::RunResult r = bench::run_network(spec, {}, cfg);
      best = std::min(best, r.iteration_ms);
      row.push_back(glp::strformat("%.2f", r.iteration_ms));
    }
    bench::RunConfig cfg;
    cfg.device = device;
    cfg.mode = bench::Mode::kGlp4nn;
    const bench::RunResult model = bench::run_network(spec, {}, cfg);
    row.push_back(glp::strformat("%.2f", model.iteration_ms));
    row.push_back(glp::strformat("%.1f%%", 100.0 * (model.iteration_ms / best - 1.0)));
    bench::print_row(row, widths);
    std::fprintf(stderr, "  %s done\n", device.name.c_str());
  }
  std::printf(
      "\nExpected shape: the model's choice is within a few percent of the\n"
      "best fixed configuration on every device, without any manual sweep.\n");
  return 0;
}
