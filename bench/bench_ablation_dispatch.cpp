// Ablation: round-robin (the paper's policy) vs block-cyclic task
// dispatch. Round-robin interleaves samples across streams so adjacent
// tasks overlap; block-cyclic serialises long runs on each stream.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

int main() {
  bench::print_header(
      "Ablation: dispatch policy (fwd+bwd iteration ms, P100)");
  bench::print_row({"net", "round-robin", "block-cyclic", "rr advantage"},
                   {11, 13, 14, 13});
  for (const auto& [name, spec] : mc::models::paper_networks()) {
    if (name == "CaffeNet") continue;  // slow; shape identical on the others
    double ms[2] = {0, 0};
    for (int policy = 0; policy < 2; ++policy) {
      bench::RunConfig cfg;
      cfg.mode = bench::Mode::kGlp4nn;
      cfg.scheduler.policy = policy == 0 ? glp4nn::DispatchPolicy::kRoundRobin
                                         : glp4nn::DispatchPolicy::kBlockCyclic;
      ms[policy] = bench::run_network(spec, {}, cfg).iteration_ms;
    }
    bench::print_row({name, glp::strformat("%.2f", ms[0]),
                      glp::strformat("%.2f", ms[1]),
                      glp::strformat("%+.1f%%", 100.0 * (ms[1] / ms[0] - 1.0))},
                     {11, 13, 14, 13});
    std::fprintf(stderr, "  %s done\n", name.c_str());
  }
  std::printf(
      "\nExpected shape: block-cyclic is no better (usually slightly worse):\n"
      "consecutive samples land on one stream and serialise, so overlap\n"
      "only begins once the first block drains.\n");
  return 0;
}
