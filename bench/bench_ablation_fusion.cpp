// Ablation: kernel fusion (paper §6 future work). Fusing the per-sample
// bias-add into the convolution GEMM removes one launch per sample —
// most valuable exactly where GLP4NN struggles: launch-bound short
// layers.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

int main() {
  bench::print_header(
      "Ablation: conv bias fusion (fwd+bwd iteration ms, GLP4NN, P100)");
  bench::print_row({"net", "unfused", "fused", "gain"}, {11, 10, 10, 9});
  for (const auto& [name, spec] : mc::models::paper_networks()) {
    if (name == "CaffeNet") continue;  // large; shape identical on the others
    double ms[2] = {0, 0};
    for (int fused = 0; fused < 2; ++fused) {
      bench::RunConfig cfg;
      cfg.mode = bench::Mode::kGlp4nn;
      cfg.fuse_conv_bias = fused == 1;
      ms[fused] = bench::run_network(spec, {}, cfg).iteration_ms;
    }
    bench::print_row({name, glp::strformat("%.2f", ms[0]),
                      glp::strformat("%.2f", ms[1]),
                      glp::strformat("%.1f%%", 100.0 * (1.0 - ms[1] / ms[0]))},
                     {11, 10, 10, 9});
    std::fprintf(stderr, "  %s done\n", name.c_str());
  }
  std::printf(
      "\nExpected shape: a consistent gain, largest for launch-bound\n"
      "networks (many small per-sample kernels) — exactly the regime the\n"
      "paper's future-work section targets.\n");
  return 0;
}
