// Ablation: the paper's occupancy objective (Eq. 3) vs a duration-weighted
// variant (§6 "improve the analytical model"). Both run end to end on the
// four networks via KernelAnalyzer::set_model.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

namespace {

double run_with_model(const mc::NetSpec& spec, bool duration_weighted) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  glp4nn::Glp4nnEngine engine;
  mc::ExecContext ec;
  ec.ctx = &ctx;
  ec.mode = kern::ComputeMode::kTimingOnly;
  glp4nn::RuntimeScheduler& scheduler = engine.scheduler_for(ctx);
  if (duration_weighted) {
    scheduler.analyzer().set_model(glp4nn::analyze_duration_weighted);
  }
  ec.dispatcher = &scheduler;
  mc::Net net(spec, ec);
  auto iterate = [&] {
    net.forward();
    net.backward();
    ctx.device().synchronize();
  };
  iterate();  // profiling pass
  const double t0 = ctx.device().host_now();
  for (int i = 0; i < 2; ++i) iterate();
  return (ctx.device().host_now() - t0) / 1e6 / 2.0;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: Eq. 3 objective vs duration-weighted objective (P100, "
      "fwd+bwd iteration ms)");
  bench::print_row({"net", "Eq.3", "duration-weighted", "delta"},
                   {11, 9, 19, 9});
  for (const auto& [name, spec] : mc::models::paper_networks()) {
    if (name == "CaffeNet") continue;  // large; shape identical on the others
    const double base = run_with_model(spec, false);
    const double weighted = run_with_model(spec, true);
    bench::print_row({name, glp::strformat("%.2f", base),
                      glp::strformat("%.2f", weighted),
                      glp::strformat("%+.1f%%", 100.0 * (weighted / base - 1.0))},
                     {11, 9, 19, 9});
    std::fprintf(stderr, "  %s done\n", name.c_str());
  }
  std::printf(
      "\nExpected shape: close to the paper's objective overall; the\n"
      "duration weighting shifts stream budget toward the kernels that\n"
      "dominate each scope's makespan.\n");
  return 0;
}
