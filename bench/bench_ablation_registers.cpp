// Ablation: the register soft constraint. The paper's model ignores
// registers (spilling slows execution but never blocks residency); the
// simulator derates spilling kernels. This bench shows (a) the derating
// is visible for register-heavy workloads and (b) the analyzer's
// decision is unchanged — registers are not in Eqs. 4-6.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

int main() {
  const mc::NetSpec spec = mc::models::caffenet(64);  // 128x128 GEMM tiles, 127 regs
  const auto tracked = mc::models::tracked_conv_layers("CaffeNet");

  bench::print_header(
      "Ablation: register soft-constraint derating (CaffeNet b=64, P100)");
  bench::print_row({"config", "iteration(ms)", "conv2 fwd(ms)"}, {26, 15, 14});

  bench::RunResult results[2];
  for (int penalty = 0; penalty < 2; ++penalty) {
    bench::RunConfig cfg;
    cfg.mode = bench::Mode::kGlp4nn;
    cfg.register_penalty = penalty == 1;
    results[penalty] = bench::run_network(spec, tracked, cfg);
    bench::print_row({penalty ? "spill derating ON (default)" : "derating OFF",
                      glp::strformat("%.2f", results[penalty].iteration_ms),
                      glp::strformat("%.3f",
                                     results[penalty].layers.at("conv2").forward_ms)},
                     {26, 15, 14});
    std::fprintf(stderr, "  penalty=%d done\n", penalty);
  }

  const bool same_decisions =
      results[0].stream_counts == results[1].stream_counts;
  std::printf("\nanalyzer decisions identical with/without derating: %s\n",
              same_decisions ? "yes" : "no");
  std::printf(
      "\nExpected shape: execution slows (or stays equal) with derating on,\n"
      "but the analytical model's stream decisions never change — registers\n"
      "are a soft constraint excluded from Eqs. 4-6 (paper §3.2).\n");
  return 0;
}
