// Ablation: strict-repro mode. Rounding stream pools down to a divisor
// of 32 makes gradient-slot summation order stream-stable, so training is
// bit-identical to the serial baseline — at a (small) cost in pool-size
// freedom. This bench quantifies both sides.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "minicaffe/solver.hpp"

namespace {

struct Outcome {
  std::vector<float> weights;
  double iteration_ms = 0.0;
};

Outcome train(int mode, int iters, int batch) {  // 0 serial, 1 free, 2 strict
  scuda::Context ctx(gpusim::DeviceTable::p100());
  std::unique_ptr<kern::KernelDispatcher> serial;
  std::unique_ptr<glp4nn::Glp4nnEngine> engine;
  mc::ExecContext ec;
  ec.ctx = &ctx;
  if (mode == 0) {
    serial = std::make_unique<kern::SerialDispatcher>(ctx);
    ec.dispatcher = serial.get();
  } else {
    glp4nn::SchedulerOptions opts;
    opts.strict_repro = mode == 2;
    engine = std::make_unique<glp4nn::Glp4nnEngine>(opts);
    ec.dispatcher = &engine->scheduler_for(ctx);
  }
  mc::Net net(mc::models::cifar10_quick(batch), ec);
  mc::SgdSolver solver(net, {});
  const double t0 = ctx.device().host_now();
  solver.step(iters);
  Outcome out;
  out.iteration_ms = (ctx.device().host_now() - t0) / 1e6 / iters;
  for (const auto& p : net.learnable_params()) {
    out.weights.insert(out.weights.end(), p->data(), p->data() + p->count());
  }
  return out;
}

double max_diff(const std::vector<float>& a, const std::vector<float>& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 4;
  // Batch 80: slots hold up to 3 samples, so free-mode summation order can
  // genuinely reassociate (2-sample slots cannot — float + is commutative).
  const int batch = 80;

  bench::print_header(glp::strformat(
      "Ablation: strict-repro scheduling (CIFAR10 b=%d, %d iters, P100)",
      batch, iters));

  const Outcome serial = train(0, iters, batch);
  std::fprintf(stderr, "serial done\n");
  const Outcome free_mode = train(1, iters, batch);
  std::fprintf(stderr, "free done\n");
  const Outcome strict = train(2, iters, batch);
  std::fprintf(stderr, "strict done\n");

  bench::print_row({"config", "iter(ms)", "max |w - w_serial|", "bitwise"},
                   {18, 10, 20, 8});
  bench::print_row({"serial", glp::strformat("%.2f", serial.iteration_ms), "0",
                    "yes"},
                   {18, 10, 20, 8});
  const double dfree = max_diff(serial.weights, free_mode.weights);
  bench::print_row({"glp4nn (free)", glp::strformat("%.2f", free_mode.iteration_ms),
                    glp::strformat("%.3e", dfree), dfree == 0.0 ? "yes" : "no"},
                   {18, 10, 20, 8});
  const double dstrict = max_diff(serial.weights, strict.weights);
  bench::print_row({"glp4nn (strict)", glp::strformat("%.2f", strict.iteration_ms),
                    glp::strformat("%.3e", dstrict), dstrict == 0.0 ? "yes" : "no"},
                   {18, 10, 20, 8});
  std::printf(
      "\nExpected shape: strict mode is bit-identical to serial; free mode\n"
      "may differ by float reassociation (often still bitwise-equal when\n"
      "slot completion order happens to match); both run at similar speed.\n");
  return 0;
}
