#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <thread>

#include "common/strings.hpp"

namespace bench {

namespace {

// Span of one scope within a half-open time window: [min start, max end]
// over kernels whose names begin with "<prefix>/".
double scope_span_ms(const std::vector<gpusim::KernelRecord>& records,
                     const std::string& prefix) {
  double lo = 0.0, hi = 0.0;
  bool any = false;
  const std::string want = prefix + "/";
  for (const auto& rec : records) {
    if (!glp::starts_with(rec.name, want)) continue;
    if (!any) {
      lo = rec.start_ns;
      hi = rec.end_ns;
      any = true;
    } else {
      lo = std::min(lo, rec.start_ns);
      hi = std::max(hi, rec.end_ns);
    }
  }
  return any ? (hi - lo) / 1e6 : 0.0;
}

}  // namespace

RunResult run_network(const mc::NetSpec& spec,
                      const std::vector<std::string>& tracked,
                      const RunConfig& config) {
  scuda::Context ctx(config.device);
  std::unique_ptr<kern::KernelDispatcher> fixed;
  std::unique_ptr<glp4nn::Glp4nnEngine> engine;

  ctx.device().set_register_penalty_enabled(config.register_penalty);
  mc::ExecContext ec;
  ec.ctx = &ctx;
  ec.mode = config.compute;
  ec.fuse_conv_bias = config.fuse_conv_bias;
  ec.dag_schedule = config.dag_schedule;
  switch (config.mode) {
    case Mode::kSerial:
      fixed = std::make_unique<kern::SerialDispatcher>(ctx);
      ec.dispatcher = fixed.get();
      break;
    case Mode::kFixed:
      if (config.fixed_streams <= 1) {
        fixed = std::make_unique<kern::SerialDispatcher>(ctx);
      } else {
        fixed = std::make_unique<kern::FixedStreamDispatcher>(ctx, config.fixed_streams);
      }
      ec.dispatcher = fixed.get();
      break;
    case Mode::kGlp4nn:
      engine = std::make_unique<glp4nn::Glp4nnEngine>(config.scheduler);
      ec.dispatcher = &engine->scheduler_for(ctx);
      break;
  }

  mc::Net net(spec, ec);

  auto iterate = [&] {
    net.forward();
    if (!config.forward_only) net.backward();
    ctx.device().synchronize();
  };

  for (int i = 0; i < config.warmup_iterations; ++i) iterate();

  RunResult result;
  gpusim::Timeline& timeline = ctx.device().timeline();
  double total_ms = 0.0;
  for (int i = 0; i < config.measured_iterations; ++i) {
    timeline.clear();
    timeline.set_enabled(true);
    const double t0 = ctx.device().host_now();
    iterate();
    total_ms += (ctx.device().host_now() - t0) / 1e6;
    timeline.set_enabled(false);

    for (const std::string& layer : tracked) {
      LayerTiming& t = result.layers[layer];
      t.forward_ms += scope_span_ms(timeline.kernels(), layer + "/fwd");
      t.backward_ms += scope_span_ms(timeline.kernels(), layer + "/bwd");
    }
  }
  const double n = std::max(config.measured_iterations, 1);
  result.iteration_ms = total_ms / n;
  for (auto& [layer, timing] : result.layers) {
    timing.forward_ms /= n;
    timing.backward_ms /= n;
  }

  if (engine != nullptr) {
    result.costs = engine->costs();
    if (auto* analyzer = engine->analyzer_for(ctx)) {
      for (const auto& [scope, decision] : analyzer->decisions()) {
        result.stream_counts[scope] =
            engine->scheduler_for(ctx).stream_count(scope);
      }
    }
  }
  result.device_bytes = ctx.peak_bytes_allocated();
  return result;
}

std::vector<gpusim::DeviceProps> evaluation_gpus() {
  return {gpusim::DeviceTable::k40c(), gpusim::DeviceTable::p100(),
          gpusim::DeviceTable::titan_xp()};
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    line += glp::strformat("%-*s", w, cells[i].c_str());
  }
  std::printf("%s\n", line.c_str());
}

std::string provenance_json(const std::string& device) {
  std::string git = "unknown";
#if !defined(_WIN32)
  if (FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128] = {};
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) git = line;
    }
    pclose(pipe);
  }
#endif
  std::ostringstream os;
  os << "  \"provenance\": {\"device\": \"" << device
     << "\", \"host_threads\": " << std::thread::hardware_concurrency()
     << ", \"git\": \"" << git << "\"},\n";
  return os.str();
}

}  // namespace bench
