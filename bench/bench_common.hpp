#pragma once
// Shared harness for the figure/table reproduction benches: builds a
// network on a simulated device under a chosen dispatcher, runs training
// iterations, and attributes simulated GPU time to layers via the
// timeline (kernels are named "<layer>/<pass>/<kernel>").
//
// All times reported by these helpers are *simulated* device/host times
// (the substitution DESIGN.md documents); wall-clock costs (T_p, T_a)
// come from glp4nn::FrameworkCosts.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/glp4nn.hpp"
#include "minicaffe/models.hpp"
#include "minicaffe/solver.hpp"

namespace bench {

enum class Mode {
  kSerial,     ///< naive-Caffe baseline: default stream only
  kFixed,      ///< manual multi-stream baseline (Figs. 2 and 4)
  kGlp4nn,     ///< the full framework
};

struct RunConfig {
  gpusim::DeviceProps device = gpusim::DeviceTable::p100();
  Mode mode = Mode::kSerial;
  int fixed_streams = 1;               ///< used when mode == kFixed
  glp4nn::SchedulerOptions scheduler;  ///< used when mode == kGlp4nn
  int warmup_iterations = 1;           ///< includes GLP4NN's profiling pass
  int measured_iterations = 2;
  bool forward_only = false;
  kern::ComputeMode compute = kern::ComputeMode::kTimingOnly;
  bool register_penalty = true;   ///< simulator soft-constraint derating
  bool fuse_conv_bias = false;    ///< §6 future-work: fuse bias into GEMM
  /// Inter-operator DAG scheduling (NetDag): overlap independent branch
  /// ops on concurrent streams and fuse elementwise chains. Only
  /// meaningful under Mode::kGlp4nn.
  bool dag_schedule = false;
};

struct LayerTiming {
  double forward_ms = 0.0;   ///< mean simulated span of the fwd scope
  double backward_ms = 0.0;  ///< mean simulated span of the bwd scope
  double total_ms() const { return forward_ms + backward_ms; }
};

struct RunResult {
  double iteration_ms = 0.0;  ///< mean simulated time per iteration
  std::map<std::string, LayerTiming> layers;  ///< tracked layers only
  std::map<std::string, int> stream_counts;   ///< GLP4NN decisions (scope → S)
  glp4nn::FrameworkCosts costs;               ///< GLP4NN overheads (else zero)
  std::size_t device_bytes = 0;               ///< peak simulated device memory
};

/// Run `spec` under `config`, timing the layers named in `tracked`.
RunResult run_network(const mc::NetSpec& spec,
                      const std::vector<std::string>& tracked,
                      const RunConfig& config);

/// The three evaluation GPUs of Table 3, in paper order.
std::vector<gpusim::DeviceProps> evaluation_gpus();

// --- tiny report helpers -----------------------------------------------------
void print_header(const std::string& title);
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);

/// Common provenance block every committed BENCH_*.json emitter stamps
/// right after its schema line: the simulated device generation, the
/// host's hardware thread count and the working tree's `git describe`
/// (or "unknown" outside a repo). Returns one indented line ending in
/// ",\n", ready to stream into the top-level JSON object:
///   "provenance": {"device": "P100", "host_threads": 16, "git": "..."},
std::string provenance_json(const std::string& device);

}  // namespace bench
