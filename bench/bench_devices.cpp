// Prints the paper's Table 1 (GPU architecture feature overview) and
// Table 3 (hardware profile) as encoded in the simulator's device table.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

int main() {
  using gpusim::DeviceProps;
  using gpusim::DeviceTable;

  bench::print_header("Table 1: overview of GPU architecture features");
  bench::print_row({"Architecture", "Streams", "DynPar", "MaxConcKernels", "UVM",
                    "TensorCores"},
                   {14, 9, 8, 16, 6, 12});
  for (const char* name : {"Fermi", "Kepler", "Maxwell", "Pascal", "Volta"}) {
    const auto d = DeviceTable::by_name(name);
    bench::print_row({name, d->supports_streams ? "yes" : "no",
                      d->dynamic_parallelism ? "yes" : "no",
                      std::to_string(d->max_concurrent_kernels),
                      d->unified_memory ? "yes" : "no",
                      d->tensor_cores ? "yes" : "no"},
                     {14, 9, 8, 16, 6, 12});
  }

  bench::print_header("Table 3: hardware profile (evaluation GPUs)");
  bench::print_row({"GPU", "Gen", "Cores", "Clock(GHz)", "Mem(GB)", "BW(GB/s)",
                    "Smem/SM", "T_launch(us)"},
                   {10, 9, 10, 11, 9, 10, 9, 13});
  for (const DeviceProps& d : bench::evaluation_gpus()) {
    bench::print_row(
        {d.name, gpusim::to_string(d.arch),
         glp::strformat("%dx%d", d.sm_count, d.cores_per_sm),
         glp::strformat("%.3f", d.clock_ghz),
         std::to_string(d.mem_bytes >> 30),
         glp::strformat("%.1f", d.mem_bandwidth_gbs),
         glp::human_bytes(d.shared_mem_per_sm),
         glp::strformat("%.1f", d.kernel_launch_overhead_us)},
        {10, 9, 10, 11, 9, 10, 9, 13});
  }
  std::printf("\n");
  return 0;
}
