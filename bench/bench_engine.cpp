// Engine hot-path benchmark: drives the discrete-event engine directly
// (no NN stack) with synthetic op programs and measures host wall-clock
// throughput in processed ops ("events") per second, for both the
// optimized engine and the ReferenceEngine seam. Writes the committed
// BENCH_engine.json baseline the CI perf-smoke checks against.
//
// Two workloads:
//   * stream-sweep: S streams, each submitting a chain of small kernels
//     round-robin with periodic device syncs. Stresses admission order,
//     the event horizon and residency recomputation — the paths the
//     reference loop pays O(S log S) per event for.
//   * serving-mix: a serving-shaped program — H2D copy, fan-out kernels
//     guarded by events across slice streams, D2H copy, host callback,
//     periodic lookahead — resembling the inference server's op stream.
//
// Timings are real wall-clock (this benchmark measures the simulator
// itself, not the simulated device), so absolute numbers vary across
// machines; the committed speedup ratios are the stable signal.
//
// Usage: bench_engine [--quick] [--out FILE]

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "gpusim/engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

gpusim::LaunchConfig small_config(unsigned variant) {
  gpusim::LaunchConfig cfg;
  cfg.grid = {16 + variant % 48, 1, 1};
  cfg.block = {128, 1, 1};
  cfg.regs_per_thread = 24 + static_cast<int>(variant % 3) * 8;
  cfg.smem_static_bytes = (variant % 4) * 1024;
  return cfg;
}

gpusim::KernelCost small_cost() {
  gpusim::KernelCost cost;
  cost.flops = 4.0e6;
  cost.bytes = 2.0e5;
  return cost;
}

struct WorkloadResult {
  std::size_t ops = 0;       ///< ops the program submitted + completed
  double wall_ms = 0.0;      ///< host wall-clock for the whole replay
  double sim_ns = 0.0;       ///< simulated time span (must match across engines)
};

/// S streams, `rounds` waves of one kernel per stream, syncing the device
/// every `sync_every` waves so queues drain and repack repeatedly.
WorkloadResult run_stream_sweep(gpusim::EngineKind kind, int streams,
                                int rounds, int sync_every) {
  auto dev = gpusim::make_device_engine(gpusim::DeviceTable::p100(), kind);
  std::vector<gpusim::StreamId> ids;
  for (int s = 0; s < streams; ++s) ids.push_back(dev->create_stream(s % 3));

  WorkloadResult r;
  const auto t0 = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (int s = 0; s < streams; ++s) {
      dev->launch_kernel(ids[s], "sweep",
                         small_config(static_cast<unsigned>(round + s)),
                         small_cost(), {});
      ++r.ops;
    }
    if ((round + 1) % sync_every == 0) dev->synchronize();
  }
  dev->synchronize();
  for (gpusim::StreamId id : ids) dev->destroy_stream(id);
  r.wall_ms = ms_since(t0);
  r.sim_ns = dev->device_now();
  return r;
}

/// Serving-shaped mix over a few slice streams: upload, fan-out guarded
/// by events, compute, join, download, host callback, periodic lookahead.
WorkloadResult run_serving_mix(gpusim::EngineKind kind, int slices,
                               int batches) {
  auto dev = gpusim::make_device_engine(gpusim::DeviceTable::p100(), kind);
  const gpusim::StreamId home = dev->create_stream(2);
  std::vector<gpusim::StreamId> pool;
  for (int s = 0; s < slices; ++s) pool.push_back(dev->create_stream(0));

  WorkloadResult r;
  int completions = 0;
  const auto t0 = Clock::now();
  for (int b = 0; b < batches; ++b) {
    dev->memcpy_async(home, 1 << 14, /*host_to_device=*/true, {});
    ++r.ops;
    const gpusim::EventId ready = dev->record_event(home);
    ++r.ops;
    std::vector<gpusim::EventId> done;
    for (int s = 0; s < slices; ++s) {
      dev->wait_event(pool[s], ready);
      ++r.ops;
      for (int k = 0; k < 3; ++k) {
        dev->launch_kernel(pool[s], "slice",
                           small_config(static_cast<unsigned>(b + s + k)),
                           small_cost(), {});
        ++r.ops;
      }
      done.push_back(dev->record_event(pool[s]));
      ++r.ops;
    }
    for (const gpusim::EventId ev : done) {
      dev->wait_event(home, ev);
      ++r.ops;
    }
    dev->memcpy_async(home, 1 << 12, /*host_to_device=*/false, {});
    ++r.ops;
    dev->host_callback(home, [&completions] { ++completions; });
    ++r.ops;
    if ((b + 1) % 8 == 0) {
      // The serving event loop's lookahead: peek, then drive the device
      // up to the next event without synchronising the host clock.
      const gpusim::SimTime next = dev->peek_next_event();
      if (next < dev->device_now() + 1e9) dev->advance_device_to(next);
    }
  }
  dev->synchronize();
  GLP_CHECK(completions == batches);
  for (gpusim::StreamId id : pool) dev->destroy_stream(id);
  dev->destroy_stream(home);
  r.wall_ms = ms_since(t0);
  r.sim_ns = dev->device_now();
  return r;
}

struct Record {
  std::string workload;
  std::string engine;
  int streams = 0;
  WorkloadResult res;
  double events_per_sec() const {
    return res.wall_ms > 0.0 ? 1000.0 * static_cast<double>(res.ops) / res.wall_ms
                             : 0.0;
  }
};

void write_json(const std::string& path, const std::vector<Record>& records) {
  std::ofstream os(path);
  GLP_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  os << "{\n"
     << "  \"schema\": \"glp4nn-bench-engine-v1\",\n"
     << bench::provenance_json("P100")
     << "  \"device\": \"P100\",\n"
     << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    os << "    {\"workload\": \"" << r.workload << "\", \"engine\": \""
       << r.engine << "\", \"streams\": " << r.streams
       << ", \"ops\": " << r.res.ops << ", \"wall_ms\": " << r.res.wall_ms
       << ", \"events_per_sec\": " << r.events_per_sec()
       << ", \"sim_ns\": " << r.res.sim_ns << "}"
       << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"speedups\": [\n";
  // One optimized/reference ratio per (workload, streams) pair, in the
  // order the record pairs appear.
  bool first = true;
  for (std::size_t i = 0; i + 1 < records.size(); i += 2) {
    const Record& opt = records[i];
    const Record& ref = records[i + 1];
    if (!first) os << ",\n";
    first = false;
    os << "    {\"workload\": \"" << opt.workload
       << "\", \"streams\": " << opt.streams << ", \"speedup\": "
       << (ref.res.wall_ms > 0.0 ? opt.events_per_sec() / ref.events_per_sec()
                                 : 0.0)
       << "}";
  }
  os << "\n  ]\n}\n";
  GLP_REQUIRE(os.good(), "failed writing '" << path << "'");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_engine.json";

  glp::Flags flags("bench_engine",
                   "Engine hot-path throughput: optimized engine vs the "
                   "ReferenceEngine seam on synthetic op programs.");
  flags.flag("quick", &quick, "CI mode: smaller sweeps")
      .opt("out", &out, "output JSON path");
  switch (flags.parse(argc, argv)) {
    case glp::Flags::Status::kHelp:
      return 0;
    case glp::Flags::Status::kError:
      return 2;
    case glp::Flags::Status::kOk:
      break;
  }

  try {
    std::vector<int> sweep_streams{8, 32, 96};
    int rounds = 300, sync_every = 25, slices = 8, batches = 600;
    if (quick) {
      sweep_streams = {32};
      rounds = 120;
      batches = 200;
    }

    std::vector<Record> records;
    const auto run_pair = [&records](const std::string& workload, int streams,
                                     auto&& fn) {
      for (const gpusim::EngineKind kind :
           {gpusim::EngineKind::kOptimized, gpusim::EngineKind::kReference}) {
        Record r;
        r.workload = workload;
        r.engine = kind == gpusim::EngineKind::kOptimized ? "optimized"
                                                          : "reference";
        r.streams = streams;
        r.res = fn(kind);
        records.push_back(r);
        std::printf("%-12s S=%-3d %-9s | %7zu ops in %8.2f ms | %10.0f events/s\n",
                    workload.c_str(), streams, r.engine.c_str(), r.res.ops,
                    r.res.wall_ms, r.events_per_sec());
      }
      // The simulated timelines must agree — the optimized loop changes
      // wall-clock, never the simulation.
      const Record& opt = records[records.size() - 2];
      const Record& ref = records[records.size() - 1];
      GLP_REQUIRE(opt.res.sim_ns == ref.res.sim_ns,
                  "engines disagree on simulated time for " << workload);
      std::printf("%-12s S=%-3d speedup %.2fx\n", workload.c_str(), streams,
                  opt.events_per_sec() / ref.events_per_sec());
    };

    for (const int streams : sweep_streams) {
      run_pair("stream-sweep", streams, [&](gpusim::EngineKind kind) {
        return run_stream_sweep(kind, streams, rounds, sync_every);
      });
    }
    run_pair("serving-mix", slices, [&](gpusim::EngineKind kind) {
      return run_serving_mix(kind, slices, batches);
    });

    write_json(out, records);
    std::printf("wrote %s (%zu records)\n", out.c_str(), records.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
