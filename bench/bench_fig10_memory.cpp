// Fig. 10: memory consumption of the GLP4NN framework itself — the
// timestamp store (mem_tt), the kernel-configuration store (mem_K) and
// the CUPTI runtime footprint (mem_cupti), after profiling each network.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

int main() {
  bench::print_header("Fig. 10: memory consumption of GLP4NN");
  bench::print_row({"net", "GPU", "mem_tt", "mem_K", "mem_cupti", "total"},
                   {11, 10, 12, 12, 12, 12});
  for (const auto& device : bench::evaluation_gpus()) {
    for (const auto& [name, spec] : mc::models::paper_networks()) {
      bench::RunConfig cfg;
      cfg.device = device;
      cfg.mode = bench::Mode::kGlp4nn;
      cfg.warmup_iterations = 1;
      cfg.measured_iterations = 1;
      const bench::RunResult r =
          bench::run_network(spec, mc::models::tracked_conv_layers(name), cfg);
      bench::print_row({name, device.name, glp::human_bytes(r.costs.mem_tt_bytes),
                        glp::human_bytes(r.costs.mem_k_bytes),
                        glp::human_bytes(r.costs.mem_cupti_bytes),
                        glp::human_bytes(r.costs.total_bytes())},
                       {11, 10, 12, 12, 12, 12});
      std::fprintf(stderr, "  %s/%s done\n", device.name.c_str(), name.c_str());
    }
  }
  std::printf(
      "\nExpected shape (paper §4.2.2): mem_tt and mem_K depend only on the\n"
      "number of kernels recorded (device-independent); mem_cupti — the\n"
      "profiling runtime itself — dominates.\n");
  return 0;
}
