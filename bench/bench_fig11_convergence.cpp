// Fig. 11: training the CIFAR10 network on P100 — loss curves of
// naive-Caffe vs GLP4NN-Caffe must coincide (convergence invariance).
// The paper's small residual difference came from data shuffling, which
// this reproduction eliminates (identical deterministic batches), so the
// curves here match exactly — and bitwise in strict-repro mode.
//
// Numerics run for real (ComputeMode::kNumeric), so iteration counts are
// scaled down from the paper's multi-thousand-iteration run. Caffe's
// original cifar10_quick initialisation (conv1 std 1e-4) sits on the
// log(10) plateau for hundreds of iterations — exactly as the paper's own
// figure shows — so part 2 additionally trains a two-stage Xavier variant
// whose loss visibly falls inside the scaled-down budget, again under
// both schedulers.
//
// Override part 1's scale with argv: bench_fig11_convergence [iters] [batch].

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "minicaffe/solver.hpp"

namespace {

mc::NetSpec two_stage_variant(int batch) {
  // cifar10_quick's first two stages with Xavier init: learnable within a
  // scaled-down run.
  mc::NetSpec s = mc::models::cifar10_quick(batch);
  s.name = "CIFAR10-2stage";
  std::vector<mc::LayerSpec> kept;
  for (const auto& l : s.layers) {
    if (l.name == "conv3" || l.name == "relu3" || l.name == "pool3") continue;
    kept.push_back(l);
  }
  // Rewire ip1 to pool2 and reset fillers.
  for (auto& l : kept) {
    if (l.name == "ip1") l.bottoms = {"pool2"};
    if (l.type == "Convolution" || l.type == "InnerProduct") {
      l.params.weight_filler = mc::FillerSpec::xavier();
    }
  }
  s.layers = std::move(kept);
  return s;
}

std::vector<float> train(const mc::NetSpec& spec, int mode, bool strict,
                         int iters, float lr) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  std::unique_ptr<kern::KernelDispatcher> serial;
  std::unique_ptr<glp4nn::Glp4nnEngine> engine;
  mc::ExecContext ec;
  ec.ctx = &ctx;
  if (mode == 0) {
    serial = std::make_unique<kern::SerialDispatcher>(ctx);
    ec.dispatcher = serial.get();
  } else {
    glp4nn::SchedulerOptions opts;
    opts.strict_repro = strict;
    engine = std::make_unique<glp4nn::Glp4nnEngine>(opts);
    ec.dispatcher = &engine->scheduler_for(ctx);
  }
  mc::Net net(spec, ec);
  mc::SolverParams params;
  params.base_lr = lr;
  params.momentum = 0.9f;
  params.weight_decay = 0.004f;
  mc::SgdSolver solver(net, params);
  std::vector<float> losses;
  solver.step(iters, [&](int, float loss) { losses.push_back(loss); });
  return losses;
}

double max_curve_diff(const std::vector<float>& a, const std::vector<float>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return m;
}

void print_curves(const std::vector<float>& naive, const std::vector<float>& glp,
                  const std::vector<float>& strict) {
  const int iters = static_cast<int>(naive.size());
  bench::print_row({"iter", "Caffe", "GLP4NN", "GLP4NN-strict"}, {7, 10, 10, 14});
  for (int i = 0; i < iters; i += std::max(1, iters / 12)) {
    bench::print_row({std::to_string(i + 1),
                      glp::strformat("%.4f", naive[static_cast<std::size_t>(i)]),
                      glp::strformat("%.4f", glp[static_cast<std::size_t>(i)]),
                      glp::strformat("%.4f", strict[static_cast<std::size_t>(i)])},
                     {7, 10, 10, 14});
  }
  std::printf("max |Caffe − GLP4NN|:        %.3e\n",
              max_curve_diff(naive, glp));
  std::printf("max |Caffe − GLP4NN-strict|: %.3e (bitwise: %s)\n",
              max_curve_diff(naive, strict),
              max_curve_diff(naive, strict) == 0.0 ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 40;
  const int batch = argc > 2 ? std::atoi(argv[2]) : 20;

  bench::print_header(glp::strformat(
      "Fig. 11a: CIFAR10 (faithful cifar10_quick) on P100 — curve "
      "coincidence (%d iters, batch %d)", iters, batch));
  {
    const mc::NetSpec spec = mc::models::cifar10_quick(batch);
    std::fprintf(stderr, "part 1: naive...\n");
    const auto naive = train(spec, 0, false, iters, 0.001f);
    std::fprintf(stderr, "part 1: glp4nn...\n");
    const auto glp = train(spec, 1, false, iters, 0.001f);
    std::fprintf(stderr, "part 1: strict...\n");
    const auto strict = train(spec, 1, true, iters, 0.001f);
    print_curves(naive, glp, strict);
    std::printf(
        "(Caffe's 1e-4 conv1 initialisation plateaus near log(10)=2.303 for\n"
        "hundreds of iterations — as in the paper's own Fig. 11 — so this\n"
        "part demonstrates *coincidence*; part 2 demonstrates descent.)\n");
  }

  bench::print_header(
      "Fig. 11b: two-stage Xavier variant — loss descends identically "
      "under both schedulers (60 iters, batch 25)");
  {
    const mc::NetSpec spec = two_stage_variant(25);
    std::fprintf(stderr, "part 2: naive...\n");
    const auto naive = train(spec, 0, false, 60, 0.01f);
    std::fprintf(stderr, "part 2: glp4nn...\n");
    const auto glp = train(spec, 1, false, 60, 0.01f);
    std::fprintf(stderr, "part 2: strict...\n");
    const auto strict = train(spec, 1, true, 60, 0.01f);
    print_curves(naive, glp, strict);
    std::printf("loss fell from %.3f to %.3f under both schedulers.\n",
                naive.front(), naive.back());
  }

  std::printf(
      "\nExpected shape (paper Fig. 11 / §3.3.1): the naive and GLP4NN\n"
      "curves coincide — the optimisation is convergence-invariant.\n");
  return 0;
}
