// Fig. 2: speedup of CaffeNet's convolution layers over serial execution
// as the number of CUDA streams grows (Tesla P100, forward pass,
// batch-level parallelism with a manually fixed stream pool).

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

int main(int argc, char** argv) {
  const int batch = argc > 1 ? std::atoi(argv[1]) : 256;
  const std::vector<int> stream_counts = {1, 2, 4, 8, 16, 32};
  const auto tracked = mc::models::tracked_conv_layers("CaffeNet");
  const mc::NetSpec spec = mc::models::caffenet(batch);

  bench::print_header(
      "Fig. 2: CaffeNet conv-layer forward speedup vs #streams (P100, batch " +
      std::to_string(batch) + ")");

  // Baseline: one stream.
  std::map<int, bench::RunResult> results;
  for (int s : stream_counts) {
    bench::RunConfig cfg;
    cfg.device = gpusim::DeviceTable::p100();
    cfg.mode = bench::Mode::kFixed;
    cfg.fixed_streams = s;
    cfg.forward_only = true;
    cfg.warmup_iterations = 1;
    cfg.measured_iterations = 1;
    results.emplace(s, bench::run_network(spec, tracked, cfg));
    std::fprintf(stderr, "  measured %d streams\n", s);
  }

  std::vector<int> widths = {10};
  std::vector<std::string> head = {"streams"};
  for (const auto& layer : tracked) {
    head.push_back(layer);
    widths.push_back(9);
  }
  bench::print_row(head, widths);
  const bench::RunResult& base = results.at(1);
  for (int s : stream_counts) {
    std::vector<std::string> row = {std::to_string(s)};
    for (const auto& layer : tracked) {
      const double speedup = base.layers.at(layer).forward_ms /
                             results.at(s).layers.at(layer).forward_ms;
      row.push_back(glp::strformat("%.2fx", speedup));
    }
    bench::print_row(row, widths);
  }
  std::printf("\nExpected shape: large mid layers (conv2-conv5) gain with more\n"
              "streams until occupancy or launch rate saturates; gains flatten\n"
              "or dip at high stream counts.\n");
  return 0;
}
