// Fig. 3: timeline of the kernels in the conv1 layer (MNIST / LeNet,
// batch 64) with and without multiple CUDA streams — an ASCII rendering
// of the paper's profiler screenshot. Each row is one stream; each
// kernel is drawn over its simulated [start, end) interval.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "gpusim/trace_export.hpp"
#include "common/strings.hpp"

namespace {

void render(const std::vector<gpusim::KernelRecord>& records,
            const std::string& prefix) {
  std::vector<gpusim::KernelRecord> scoped;
  for (const auto& r : records) {
    if (glp::starts_with(r.name, prefix)) scoped.push_back(r);
  }
  if (scoped.empty()) {
    std::printf("(no kernels)\n");
    return;
  }
  double t0 = scoped[0].start_ns, t1 = scoped[0].end_ns;
  for (const auto& r : scoped) {
    t0 = std::min(t0, r.start_ns);
    t1 = std::max(t1, r.end_ns);
  }
  const int columns = 100;
  const double scale = (t1 - t0) / columns;

  std::map<gpusim::StreamId, std::string> rows;
  for (const auto& r : scoped) {
    std::string& row = rows[r.stream];
    if (row.empty()) row.assign(static_cast<std::size_t>(columns), '.');
    int lo = static_cast<int>((r.start_ns - t0) / scale);
    int hi = static_cast<int>((r.end_ns - t0) / scale);
    lo = std::clamp(lo, 0, columns - 1);
    hi = std::clamp(hi, lo + 1, columns);
    // Mark im2col as 'i', gemm as 'g', bias as 'b'.
    char mark = '#';
    if (r.name.find("im2col") != std::string::npos) mark = 'i';
    if (r.name.find("sgemm") != std::string::npos) mark = 'g';
    if (r.name.find("bias") != std::string::npos) mark = 'b';
    for (int c = lo; c < hi; ++c) row[static_cast<std::size_t>(c)] = mark;
  }
  for (const auto& [stream, row] : rows) {
    std::printf("stream %-3d |%s|\n", stream, row.c_str());
  }
  std::printf("span: %.1f us, %zu kernels  (i=im2col g=sgemm b=add_bias)\n",
              (t1 - t0) / 1000.0, scoped.size());
}

void run_case(int streams) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  std::unique_ptr<kern::KernelDispatcher> dispatcher;
  if (streams <= 1) {
    dispatcher = std::make_unique<kern::SerialDispatcher>(ctx);
  } else {
    dispatcher = std::make_unique<kern::FixedStreamDispatcher>(ctx, streams);
  }
  mc::ExecContext ec;
  ec.ctx = &ctx;
  ec.dispatcher = dispatcher.get();
  ec.mode = kern::ComputeMode::kTimingOnly;
  mc::Net net(mc::models::lenet(64), ec);

  ctx.device().timeline().set_enabled(true);
  net.forward();
  ctx.device().synchronize();

  std::printf("\n--- conv1 forward with %d stream(s) ---\n", streams);
  render(ctx.device().timeline().kernels(), "conv1/fwd/");

  const std::string trace_path =
      "/tmp/glp4nn_fig3_streams" + std::to_string(streams) + ".json";
  gpusim::write_chrome_trace(ctx.device().timeline(), trace_path);
  std::printf("full Chrome trace written to %s (open in chrome://tracing)\n",
              trace_path.c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 3: timeline of conv1 (MNIST) kernels with multiple CUDA streams");
  run_case(1);
  run_case(4);
  std::printf("\nExpected shape: with one stream kernels execute strictly\n"
              "back-to-back; with four streams per-sample chains overlap and\n"
              "the span shrinks.\n");
  return 0;
}
