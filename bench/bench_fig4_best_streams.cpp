// Fig. 4: best observed number of concurrent streams per CaffeNet
// convolution layer, per GPU — the empirical optimum a user would find
// by sweeping, which the analytical model tries to predict without the
// sweep (compare with bench_fig8_model_streams).

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

int main(int argc, char** argv) {
  const int batch = argc > 1 ? std::atoi(argv[1]) : 256;
  const std::vector<int> stream_counts = {1, 2, 4, 8, 16, 32};
  const auto tracked = mc::models::tracked_conv_layers("CaffeNet");
  const mc::NetSpec spec = mc::models::caffenet(batch);

  bench::print_header(
      "Fig. 4: best observed #streams per CaffeNet conv layer (forward)");
  std::vector<int> widths = {10};
  std::vector<std::string> head = {"GPU"};
  for (const auto& layer : tracked) {
    head.push_back(layer);
    widths.push_back(8);
  }
  bench::print_row(head, widths);

  for (const auto& device : bench::evaluation_gpus()) {
    std::map<std::string, std::pair<int, double>> best;  // layer → (S, ms)
    for (int s : stream_counts) {
      bench::RunConfig cfg;
      cfg.device = device;
      cfg.mode = bench::Mode::kFixed;
      cfg.fixed_streams = s;
      cfg.forward_only = true;
      cfg.warmup_iterations = 1;
      cfg.measured_iterations = 1;
      const bench::RunResult r = bench::run_network(spec, tracked, cfg);
      for (const auto& layer : tracked) {
        const double ms = r.layers.at(layer).forward_ms;
        auto it = best.find(layer);
        if (it == best.end() || ms < it->second.second) {
          best[layer] = {s, ms};
        }
      }
      std::fprintf(stderr, "  %s: measured %d streams\n", device.name.c_str(), s);
    }
    std::vector<std::string> row = {device.name};
    for (const auto& layer : tracked) {
      row.push_back(std::to_string(best.at(layer).first));
    }
    bench::print_row(row, widths);
  }
  std::printf("\nExpected shape: the optimum varies per layer and per GPU —\n"
              "the paper's motivation for an analytical model.\n");
  return 0;
}
