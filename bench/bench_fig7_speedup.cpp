// Fig. 7: speedup of GLP4NN-Caffe over naive-Caffe per training
// iteration (forward + backward) for each convolution layer of the four
// evaluation networks, on all three GPUs.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

int main() {
  bench::print_header(
      "Fig. 7: speedup of GLP4NN-Caffe over naive-Caffe per training "
      "iteration");

  for (const auto& device : bench::evaluation_gpus()) {
    std::printf("\n-- %s --\n", device.name.c_str());
    bench::print_row({"net", "layer", "naive(ms)", "glp4nn(ms)", "speedup"},
                     {11, 26, 11, 12, 9});
    for (const auto& [name, spec] : mc::models::paper_networks()) {
      const auto tracked = mc::models::tracked_conv_layers(name);

      bench::RunConfig serial_cfg;
      serial_cfg.device = device;
      serial_cfg.mode = bench::Mode::kSerial;
      const bench::RunResult serial = bench::run_network(spec, tracked, serial_cfg);

      bench::RunConfig glp_cfg = serial_cfg;
      glp_cfg.mode = bench::Mode::kGlp4nn;
      const bench::RunResult glp = bench::run_network(spec, tracked, glp_cfg);

      for (const auto& layer : tracked) {
        const double naive_ms = serial.layers.at(layer).total_ms();
        const double glp_ms = glp.layers.at(layer).total_ms();
        bench::print_row({name, layer, glp::strformat("%.3f", naive_ms),
                          glp::strformat("%.3f", glp_ms),
                          glp::strformat("%.2fx", naive_ms / glp_ms)},
                         {11, 26, 11, 12, 9});
      }
      bench::print_row({name, "(whole iteration)",
                        glp::strformat("%.3f", serial.iteration_ms),
                        glp::strformat("%.3f", glp.iteration_ms),
                        glp::strformat("%.2fx",
                                       serial.iteration_ms / glp.iteration_ms)},
                       {11, 26, 11, 12, 9});
      std::fprintf(stderr, "  %s/%s done\n", device.name.c_str(), name.c_str());
    }
  }
  std::printf(
      "\nExpected shape (paper §4.2.1): most conv layers speed up, with the\n"
      "largest gains on under-occupying layers; very short layers (CIFAR10\n"
      "conv1, Siamese conv1/conv1_p) show ~1x or mild regression because\n"
      "kernels finish before the next can be launched.\n");
  return 0;
}
