// Fig. 8: the number of streams configured by the analytical model for
// each convolution layer of each network, per GPU (the kernel analyzer's
// Eq. 9 output after the profiling iteration).

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

int main() {
  bench::print_header(
      "Fig. 8: #streams chosen by the analytical model (forward / backward "
      "scopes)");

  for (const auto& device : bench::evaluation_gpus()) {
    std::printf("\n-- %s (C = %d) --\n", device.name.c_str(),
                device.max_concurrent_kernels);
    bench::print_row({"net", "layer", "fwd streams", "bwd streams"},
                     {11, 26, 12, 12});
    for (const auto& [name, spec] : mc::models::paper_networks()) {
      const auto tracked = mc::models::tracked_conv_layers(name);
      bench::RunConfig cfg;
      cfg.device = device;
      cfg.mode = bench::Mode::kGlp4nn;
      cfg.warmup_iterations = 1;  // the profiling pass
      cfg.measured_iterations = 1;
      const bench::RunResult r = bench::run_network(spec, tracked, cfg);
      for (const auto& layer : tracked) {
        auto count_of = [&](const std::string& scope) {
          auto it = r.stream_counts.find(scope);
          return it == r.stream_counts.end() ? std::string("-")
                                             : std::to_string(it->second);
        };
        bench::print_row({name, layer, count_of(layer + "/fwd"),
                          count_of(layer + "/bwd")},
                         {11, 26, 12, 12});
      }
      std::fprintf(stderr, "  %s/%s done\n", device.name.c_str(), name.c_str());
    }
  }
  std::printf(
      "\nExpected shape: counts stay within the device concurrency degree\n"
      "and differ per layer and per GPU; short kernels (fast GPUs) get\n"
      "fewer streams (the Eq. 7 launch-rate bound).\n");
  return 0;
}
