// Fig. 9: absolute per-layer elapsed time comparison between GLP4NN-Caffe
// and naive-Caffe — CIFAR10 on Titan XP and Siamese on P100, the paper's
// two examples of layers too short to benefit (~2 ms conv1 layers).
//
// DAG extension: on inception-unit nets (GoogLeNet 5a/5b tail) the same
// scheduler is additionally run with inter-operator DAG scheduling, which
// overlaps the four independent branches of each unit on concurrent
// streams and fuses elementwise chains. `--out BENCH_dag.json` commits the
// chain-only vs DAG comparison for the CI perf-smoke floor (>= 1.2x
// simulated elapsed on inception-unit nets).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/strings.hpp"

namespace {

void compare(const std::string& net_name, const mc::NetSpec& spec,
             const gpusim::DeviceProps& device) {
  const auto tracked = mc::models::tracked_conv_layers(net_name);
  bench::RunConfig serial_cfg;
  serial_cfg.device = device;
  serial_cfg.mode = bench::Mode::kSerial;
  const bench::RunResult serial = bench::run_network(spec, tracked, serial_cfg);

  bench::RunConfig glp_cfg = serial_cfg;
  glp_cfg.mode = bench::Mode::kGlp4nn;
  const bench::RunResult glp = bench::run_network(spec, tracked, glp_cfg);

  std::printf("\n-- %s on %s (fwd+bwd per layer, ms) --\n", net_name.c_str(),
              device.name.c_str());
  bench::print_row({"layer", "Caffe", "GLP4NN-Caffe", "delta"},
                   {26, 10, 14, 10});
  for (const auto& layer : tracked) {
    const double a = serial.layers.at(layer).total_ms();
    const double b = glp.layers.at(layer).total_ms();
    bench::print_row({layer, glp::strformat("%.3f", a),
                      glp::strformat("%.3f", b),
                      glp::strformat("%+.3f", b - a)},
                     {26, 10, 14, 10});
  }
}

struct DagRecord {
  std::string net;
  int batch = 0;
  double chain_ms = 0.0;  ///< GLP4NN, serial layer issue (chain-only)
  double dag_ms = 0.0;    ///< GLP4NN + inter-operator DAG scheduling
  double speedup() const { return dag_ms > 0.0 ? chain_ms / dag_ms : 0.0; }
};

DagRecord dag_compare(const std::string& net_name, const mc::NetSpec& spec,
                      int batch, const gpusim::DeviceProps& device) {
  bench::RunConfig chain_cfg;
  chain_cfg.device = device;
  chain_cfg.mode = bench::Mode::kGlp4nn;
  chain_cfg.warmup_iterations = 2;  // profiling + analysis settle
  chain_cfg.measured_iterations = 3;
  // Forward (inference) iterations: branch parallelism lives in the forward
  // pass; backward adds gradient-accumulation edges that re-serialize the
  // branches, diluting the DAG win to ~1.1x on this net.
  chain_cfg.forward_only = true;
  const bench::RunResult chain = bench::run_network(spec, {}, chain_cfg);

  bench::RunConfig dag_cfg = chain_cfg;
  dag_cfg.dag_schedule = true;
  const bench::RunResult dag = bench::run_network(spec, {}, dag_cfg);

  DagRecord r;
  r.net = net_name;
  r.batch = batch;
  r.chain_ms = chain.iteration_ms;
  r.dag_ms = dag.iteration_ms;
  return r;
}

void write_dag_json(const std::string& path,
                    const std::vector<DagRecord>& records,
                    const std::string& device_name) {
  std::ofstream os(path);
  GLP_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  os << "{\n"
     << "  \"schema\": \"glp4nn-bench-dag-v1\",\n"
     << bench::provenance_json(device_name)
     << "  \"device\": \"" << device_name << "\",\n"
     << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const DagRecord& r = records[i];
    os << "    {\"net\": \"" << r.net << "\", \"batch\": " << r.batch
       << ", \"chain_ms\": " << r.chain_ms << ", \"dag_ms\": " << r.dag_ms
       << ", \"speedup\": " << r.speedup() << "}"
       << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  GLP_REQUIRE(os.good(), "failed writing '" << path << "'");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  glp::Flags flags("bench_fig9_elapsed",
                   "Per-layer elapsed time (Fig. 9) plus the chain-only vs "
                   "DAG-scheduling comparison on inception-unit nets.");
  flags.opt("out", &out,
            "write the DAG comparison to this JSON path (BENCH_dag.json)");
  switch (flags.parse(argc, argv)) {
    case glp::Flags::Status::kHelp:
      return 0;
    case glp::Flags::Status::kError:
      return 2;
    case glp::Flags::Status::kOk:
      break;
  }

  bench::print_header(
      "Fig. 9: elapsed time, GLP4NN-Caffe vs Caffe (short-layer cases)");
  compare("CIFAR10", mc::models::cifar10_quick(), gpusim::DeviceTable::titan_xp());
  compare("Siamese", mc::models::siamese_mnist(), gpusim::DeviceTable::p100());
  std::printf(
      "\nExpected shape (paper §4.2.1): the ~2 ms layers (CIFAR10 conv1,\n"
      "Siamese conv1/conv1_p) gain little or regress slightly; bigger\n"
      "layers still improve, keeping overall network time ahead.\n");

  // --- DAG scheduling on inception-unit nets -----------------------------
  // Chain-only vs DAG under the same scheduler: the only change is that
  // the four independent branches of each inception unit may overlap and
  // elementwise chains are fused. Simulated time, so deterministic.
  const gpusim::DeviceProps device = gpusim::DeviceTable::titan_xp();
  bench::print_header(
      "DAG extension: chain-only vs inter-operator DAG (inception units)");
  std::vector<DagRecord> records;
  for (const int batch : {4, 8, 16}) {
    records.push_back(dag_compare("googlenet_tail",
                                  mc::models::googlenet_tail(batch), batch,
                                  device));
  }
  bench::print_row({"net", "batch", "chain fwd ms", "DAG fwd ms", "speedup"},
                   {18, 8, 14, 12, 10});
  for (const DagRecord& r : records) {
    bench::print_row({r.net, glp::strformat("%d", r.batch),
                      glp::strformat("%.3f", r.chain_ms),
                      glp::strformat("%.3f", r.dag_ms),
                      glp::strformat("%.2fx", r.speedup())},
                     {18, 8, 14, 12, 10});
  }
  if (!out.empty()) {
    write_dag_json(out, records, device.name);
    std::printf("wrote %s (%zu records)\n", out.c_str(), records.size());
  }
  return 0;
}
