// Fig. 9: absolute per-layer elapsed time comparison between GLP4NN-Caffe
// and naive-Caffe — CIFAR10 on Titan XP and Siamese on P100, the paper's
// two examples of layers too short to benefit (~2 ms conv1 layers).

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

namespace {

void compare(const std::string& net_name, const mc::NetSpec& spec,
             const gpusim::DeviceProps& device) {
  const auto tracked = mc::models::tracked_conv_layers(net_name);
  bench::RunConfig serial_cfg;
  serial_cfg.device = device;
  serial_cfg.mode = bench::Mode::kSerial;
  const bench::RunResult serial = bench::run_network(spec, tracked, serial_cfg);

  bench::RunConfig glp_cfg = serial_cfg;
  glp_cfg.mode = bench::Mode::kGlp4nn;
  const bench::RunResult glp = bench::run_network(spec, tracked, glp_cfg);

  std::printf("\n-- %s on %s (fwd+bwd per layer, ms) --\n", net_name.c_str(),
              device.name.c_str());
  bench::print_row({"layer", "Caffe", "GLP4NN-Caffe", "delta"},
                   {26, 10, 14, 10});
  for (const auto& layer : tracked) {
    const double a = serial.layers.at(layer).total_ms();
    const double b = glp.layers.at(layer).total_ms();
    bench::print_row({layer, glp::strformat("%.3f", a),
                      glp::strformat("%.3f", b),
                      glp::strformat("%+.3f", b - a)},
                     {26, 10, 14, 10});
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 9: elapsed time, GLP4NN-Caffe vs Caffe (short-layer cases)");
  compare("CIFAR10", mc::models::cifar10_quick(), gpusim::DeviceTable::titan_xp());
  compare("Siamese", mc::models::siamese_mnist(), gpusim::DeviceTable::p100());
  std::printf(
      "\nExpected shape (paper §4.2.1): the ~2 ms layers (CIFAR10 conv1,\n"
      "Siamese conv1/conv1_p) gain little or regress slightly; bigger\n"
      "layers still improve, keeping overall network time ahead.\n");
  return 0;
}
