// Fleet benchmark: the multi-GPU scale-out axis the ROADMAP asks for.
// Two sweeps, both in *simulated* time (deterministic across machines —
// the per-device schedulers run with a pinned overhead charge):
//
//   * training: data-parallel FleetTrainer over 1/2/4 devices on
//     NVLink-class and PCIe-class links, eager bucketed ring all-reduce
//     (overlap) vs the serialize-then-reduce baseline. Reports per-
//     iteration time, samples/s and scaling vs the 1-device run of the
//     same net/link config.
//   * serving: FleetServer sharding a four-tenant mix across 1/2/4
//     devices at a saturating offered rate — served throughput and p99
//     per fleet width, speedup vs the single device.
//   * collectives: CollectiveEngine micro-sweep — one bucket reduced in
//     isolation per (algorithm, topology, width, wire, chunking) point,
//     simulated makespan only. This is where the topology-aware
//     algorithm choice shows up directly: tree/hier vs flat ring on the
//     shared PCIe channel, chunk pipelining vs whole-bucket waves on
//     NVLink, and fp16-on-the-wire vs fp32.
//
// Writes the committed BENCH_fleet.json baseline (schema
// glp4nn-bench-fleet-v2, documented in docs/FLEET.md). The CI perf-smoke
// floors read it: >=3.0x training throughput at 4 NVLink devices,
// overlap beating serialize-then-reduce wherever there is communication
// (devices >= 2), fleet serving >=2x a single device, tree and hier
// beating flat ring on PCIe at 4 and 8 devices, chunk pipelining beating
// whole-bucket waves on NVLink, and fp16 wire beating fp32.
//
// Usage: bench_fleet [--quick] [--out FILE]

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/data_parallel.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "core/glp4nn.hpp"
#include "gpusim/device_props.hpp"
#include "minicaffe/models.hpp"
#include "serving/fleet_server.hpp"
#include "serving/model_zoo.hpp"
#include "simcuda/fleet.hpp"

namespace {

struct TrainRecord {
  std::string net;
  int batch = 0;
  int devices = 1;
  std::string links;  ///< "nvlink" or "pcie"
  bool overlap = true;
  std::string collective;       ///< algorithm chosen for the largest bucket
  double iter_ms = 0.0;         ///< simulated makespan per iteration
  double throughput_sps = 0.0;  ///< samples/s across the whole fleet
  double scaling_x = 0.0;       ///< vs the 1-device overlap run
  std::size_t buckets = 0;
  std::size_t transfers = 0;  ///< cross-device copies per iteration
};

/// One training point: a homogeneous P100 fleet, one GLP4NN engine and
/// ExecContext per device (timing-only — the numerics are covered by the
/// fleet differential suite), warmup to let the analyzers settle, then
/// the measured window on the simulated fleet makespan.
TrainRecord train_point(const mc::NetSpec& spec, int batch, int devices,
                        gpusim::LinkTopology topo, bool overlap, int warmup,
                        int measured) {
  TrainRecord r;
  r.net = spec.name;
  r.batch = batch;
  r.devices = devices;
  r.links = topo == gpusim::LinkTopology::kNvlinkRing ? "nvlink" : "pcie";
  r.overlap = overlap;

  scuda::FleetOptions fopts;
  fopts.topology = topo;
  fopts.link = topo == gpusim::LinkTopology::kNvlinkRing
                   ? gpusim::LinkProps::nvlink()
                   : gpusim::LinkProps::pcie();
  scuda::Fleet fleet =
      scuda::Fleet::homogeneous(devices, gpusim::DeviceTable::p100(), fopts);

  glp4nn::SchedulerOptions sopts;
  sopts.overhead_charge_ms = 0.05;  // pinned => deterministic timelines
  std::vector<std::unique_ptr<glp4nn::Glp4nnEngine>> engines;
  std::vector<std::unique_ptr<mc::ExecContext>> ecs;
  std::vector<mc::ExecContext*> ec_ptrs;
  for (int d = 0; d < devices; ++d) {
    engines.push_back(std::make_unique<glp4nn::Glp4nnEngine>(sopts));
    auto ec = std::make_unique<mc::ExecContext>();
    ec->ctx = &fleet.device(d);
    ec->dispatcher = &engines.back()->scheduler_for(fleet.device(d));
    ec->mode = kern::ComputeMode::kTimingOnly;
    ec_ptrs.push_back(ec.get());
    ecs.push_back(std::move(ec));
  }

  comm::FleetTrainerOptions topts;
  topts.bucket_bytes = 256 << 10;  // DDP-style buckets; several per net
  topts.overlap = overlap;
  comm::FleetTrainer trainer(fleet, ec_ptrs, spec, topts);
  r.buckets = trainer.plan().buckets.size();
  std::size_t largest = 0;
  for (const auto& b : trainer.plan().buckets)
    largest = std::max(largest, b.count);
  r.collective =
      devices > 1 && largest > 0
          ? comm::to_string(trainer.collectives().algo_for(largest))
          : "none";

  trainer.step(warmup);
  fleet.synchronize_all();
  const gpusim::SimTime t0 = fleet.max_device_now();
  trainer.step(measured);
  fleet.synchronize_all();
  const gpusim::SimTime t1 = fleet.max_device_now();

  const double span_ns = t1 - t0;
  GLP_REQUIRE(span_ns > 0.0, "measured window has zero simulated span");
  r.iter_ms = span_ns / 1e6 / measured;
  r.throughput_sps = static_cast<double>(devices) * batch * measured /
                     (span_ns * 1e-9);
  // The engine keeps records since its last reset, i.e. one iteration.
  r.transfers = trainer.collectives().transfers().size();
  return r;
}

struct ServeRecord {
  int devices = 1;
  int replicas = 1;
  double rate_rps = 0.0;
  double speedup_x = 0.0;  ///< throughput vs the 1-device run at this rate
  serving::ServingStats stats;
};

/// One serving point: a compute-heavy four-tenant mix sharded across a
/// homogeneous fleet, continuous batching + lane coalescing under a 5 ms
/// SLO, driven well past single-device saturation so the fleet speedup
/// is visible in *served* throughput.
ServeRecord serve_point(int devices, int replicas, double rate, int requests) {
  ServeRecord r;
  r.devices = devices;
  r.replicas = replicas;
  r.rate_rps = rate;

  std::vector<serving::TenantModel> models;
  // small_cnn is *device* compute-bound on the simulated P100, so a
  // single device saturates well below the offered rate and extra
  // devices translate directly into served throughput.
  for (const char* name : {"tiny_cnn", "small_cnn", "tiny_cnn", "small_cnn"}) {
    serving::TenantModel m;
    m.name = name;
    m.spec = serving::by_name(name);
    models.push_back(std::move(m));
  }

  serving::TraceSpec ts;
  ts.requests = requests;
  ts.rate_rps = rate;
  ts.tenants = static_cast<int>(models.size());
  ts.deadline_ms = 5.0;
  ts.seed = 42;
  ts.fill_inputs = false;

  std::vector<std::size_t> sizes;
  for (const auto& m : models) {
    const auto& d = m.spec.layers.front().params.dataset;
    sizes.push_back(static_cast<std::size_t>(d.channels) * d.height * d.width);
  }

  scuda::Fleet fleet =
      scuda::Fleet::homogeneous(devices, gpusim::DeviceTable::p100(), {});
  serving::FleetServerOptions fo;
  fo.server.use_scheduler = true;
  fo.server.scheduler.overhead_charge_ms = 0.05;
  fo.server.batch.mode = serving::BatchMode::kContinuous;
  fo.server.batch.max_batch = 64;
  fo.server.queue_capacity = 512;
  fo.server.coalesce_lanes = true;
  fo.server.mode = kern::ComputeMode::kTimingOnly;
  fo.replicas = replicas;
  serving::FleetServer server(fleet, models, fo);

  r.stats = serving::InferenceServer::summarize(
      server.replay(serving::make_trace(ts, sizes)));
  return r;
}

struct CollectiveRecord {
  std::string choice;  ///< requested: auto | ring | tree | hier
  std::string algo;    ///< algorithm the cost model actually ran
  std::string links;
  int devices = 1;
  std::size_t count = 0;
  std::string wire;        ///< "fp32" or "fp16"
  std::size_t chunk = 0;   ///< pipeline_chunk_bytes (0 = whole bucket)
  double makespan_ms = 0.0;
  std::size_t transfers = 0;
};

/// One collective point: a fresh fleet reduces a single `count`-element
/// bucket (timing only) and the record keeps the simulated makespan —
/// the pure all-reduce cost with no training compute around it.
CollectiveRecord collective_point(comm::CollectiveChoice choice,
                                  gpusim::LinkTopology topo, int devices,
                                  std::size_t count, comm::WireFormat wire,
                                  std::size_t chunk_bytes) {
  CollectiveRecord r;
  r.choice = comm::to_string(choice);
  r.links = topo == gpusim::LinkTopology::kNvlinkRing ? "nvlink" : "pcie";
  r.devices = devices;
  r.count = count;
  r.wire = wire == comm::WireFormat::kFp16 ? "fp16" : "fp32";
  r.chunk = chunk_bytes;

  scuda::FleetOptions fopts;
  fopts.topology = topo;
  fopts.link = topo == gpusim::LinkTopology::kNvlinkRing
                   ? gpusim::LinkProps::nvlink()
                   : gpusim::LinkProps::pcie();
  scuda::Fleet fleet =
      scuda::Fleet::homogeneous(devices, gpusim::DeviceTable::p100(), fopts);

  comm::CollectiveOptions copts;
  copts.collective = choice;
  copts.wire = wire;
  copts.pipeline_chunk_bytes = chunk_bytes;
  comm::CollectiveEngine engine(fleet, copts);
  r.algo = comm::to_string(engine.algo_for(count));

  const std::vector<float*> flat(static_cast<std::size_t>(devices), nullptr);
  const std::vector<gpusim::SimTime> ready(static_cast<std::size_t>(devices),
                                           0.0);
  engine.reduce(flat, count, ready, /*numeric=*/false);
  fleet.synchronize_all();
  r.makespan_ms = fleet.max_device_now() / 1e6;
  r.transfers = engine.transfers().size();
  return r;
}

void write_json(const std::string& path, const std::vector<TrainRecord>& train,
                const std::vector<ServeRecord>& serve,
                const std::vector<CollectiveRecord>& coll) {
  std::ofstream os(path);
  GLP_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  os << "{\n"
     << "  \"schema\": \"glp4nn-bench-fleet-v2\",\n"
     << bench::provenance_json("P100") << "  \"training\": [\n";
  for (std::size_t i = 0; i < train.size(); ++i) {
    const TrainRecord& r = train[i];
    os << "    {\"net\": \"" << r.net << "\", \"batch\": " << r.batch
       << ", \"devices\": " << r.devices << ", \"links\": \"" << r.links
       << "\", \"mode\": \"" << (r.overlap ? "overlap" : "serialize")
       << "\", \"collective\": \"" << r.collective
       << "\", \"iter_ms\": " << r.iter_ms
       << ", \"throughput_sps\": " << r.throughput_sps
       << ", \"scaling_x\": " << r.scaling_x << ", \"buckets\": " << r.buckets
       << ", \"transfers\": " << r.transfers << "}"
       << (i + 1 < train.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"serving\": [\n";
  for (std::size_t i = 0; i < serve.size(); ++i) {
    const ServeRecord& r = serve[i];
    const serving::ServingStats& s = r.stats;
    os << "    {\"devices\": " << r.devices << ", \"replicas\": " << r.replicas
       << ", \"rate_rps\": " << r.rate_rps << ", \"served\": " << s.served
       << ", \"offered\": " << s.offered << ", \"rejected\": " << s.rejected
       << ", \"shed\": " << s.shed << ", \"p50_ms\": " << s.p50_ms
       << ", \"p99_ms\": " << s.p99_ms
       << ", \"throughput_rps\": " << s.throughput_rps
       << ", \"slo_attainment\": " << s.slo_attainment
       << ", \"speedup_x\": " << r.speedup_x << "}"
       << (i + 1 < serve.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"collectives\": [\n";
  for (std::size_t i = 0; i < coll.size(); ++i) {
    const CollectiveRecord& r = coll[i];
    os << "    {\"choice\": \"" << r.choice << "\", \"algo\": \"" << r.algo
       << "\", \"links\": \"" << r.links << "\", \"devices\": " << r.devices
       << ", \"count\": " << r.count << ", \"wire\": \"" << r.wire
       << "\", \"chunk_bytes\": " << r.chunk
       << ", \"makespan_ms\": " << r.makespan_ms
       << ", \"transfers\": " << r.transfers << "}"
       << (i + 1 < coll.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  GLP_REQUIRE(os.good(), "failed writing '" << path << "'");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_fleet.json";

  glp::Flags flags("bench_fleet",
                   "Multi-device fleet scaling: data-parallel training over "
                   "NVLink/PCIe links (overlap vs serialize-then-reduce) and "
                   "sharded serving throughput vs fleet width.");
  flags.flag("quick", &quick, "CI mode: fewer nets/points, shorter windows")
      .opt("out", &out, "output JSON path");
  switch (flags.parse(argc, argv)) {
    case glp::Flags::Status::kHelp:
      return 0;
    case glp::Flags::Status::kError:
      return 2;
    case glp::Flags::Status::kOk:
      break;
  }

  try {
    struct NetPoint {
      mc::NetSpec spec;
      int batch;
    };
    std::vector<NetPoint> nets;
    nets.push_back({mc::models::lenet(), 64});
    if (!quick) nets.push_back({mc::models::cifar10_quick(), 100});

    const int warmup = 2;
    const int measured = quick ? 3 : 5;
    const std::vector<int> widths{1, 2, 4};

    std::vector<TrainRecord> train;
    for (const NetPoint& np : nets) {
      for (const gpusim::LinkTopology topo :
           {gpusim::LinkTopology::kNvlinkRing, gpusim::LinkTopology::kPcieHost}) {
        double base_sps = 0.0;
        for (const int n : widths) {
          // 1 device has no communication, so overlap == serialize there;
          // the baseline comparison only exists from 2 devices up.
          for (const bool overlap : {true, false}) {
            if (n == 1 && !overlap) continue;
            TrainRecord r =
                train_point(np.spec, np.batch, n, topo, overlap, warmup,
                            measured);
            if (n == 1) base_sps = r.throughput_sps;
            r.scaling_x = base_sps > 0.0 ? r.throughput_sps / base_sps : 0.0;
            std::printf(
                "train %-13s %dx%-6s %-9s %-4s | iter %8.3f ms | %9.0f "
                "samples/s | %4.2fx | %zu bucket(s), %zu transfer(s)\n",
                r.net.c_str(), r.devices, r.links.c_str(),
                r.overlap ? "overlap" : "serialize", r.collective.c_str(),
                r.iter_ms, r.throughput_sps, r.scaling_x, r.buckets,
                r.transfers);
            train.push_back(std::move(r));
          }
        }
      }
    }

    // Serving: drive every fleet width with the same saturating trace.
    const double rate = 320000.0;
    const int requests = quick ? 2000 : 6000;
    std::vector<ServeRecord> serve;
    double base_rps = 0.0;
    for (const int n : widths) {
      ServeRecord r = serve_point(n, 2, rate, requests);
      if (n == 1) base_rps = r.stats.throughput_rps;
      r.speedup_x =
          base_rps > 0.0 ? r.stats.throughput_rps / base_rps : 0.0;
      std::printf(
          "serve %d device(s) @ %.0f offered | served %zu/%zu | p99 %7.3f ms "
          "| %8.0f req/s | %4.2fx | slo %6.2f%%\n",
          r.devices, r.rate_rps, r.stats.served, r.stats.offered,
          r.stats.p99_ms, r.stats.throughput_rps, r.speedup_x,
          100.0 * r.stats.slo_attainment);
      serve.push_back(std::move(r));
    }

    // Collective micro-sweep: one 1M-element (4 MB fp32) bucket.
    const std::size_t cnt = std::size_t{1} << 20;
    std::vector<CollectiveRecord> coll;
    auto run_coll = [&](comm::CollectiveChoice choice,
                        gpusim::LinkTopology topo, int n,
                        comm::WireFormat wire, std::size_t chunk) {
      CollectiveRecord r = collective_point(choice, topo, n, cnt, wire, chunk);
      std::printf(
          "coll  %-4s (ran %-4s) %dx%-6s %s chunk %6zu | makespan %8.3f ms "
          "| %zu transfer(s)\n",
          r.choice.c_str(), r.algo.c_str(), r.devices, r.links.c_str(),
          r.wire.c_str(), r.chunk, r.makespan_ms, r.transfers);
      coll.push_back(std::move(r));
    };
    // Algorithm face-off on the shared PCIe channel (whole bucket).
    for (const int n : {4, 8}) {
      for (const comm::CollectiveChoice c :
           {comm::CollectiveChoice::kRing, comm::CollectiveChoice::kTree,
            comm::CollectiveChoice::kHier, comm::CollectiveChoice::kAuto}) {
        run_coll(c, gpusim::LinkTopology::kPcieHost, n,
                 comm::WireFormat::kFp32, 0);
      }
    }
    // Chunk pipelining vs whole-bucket waves on the NVLink ring.
    for (const std::size_t chunk : {std::size_t{0}, std::size_t{256} << 10}) {
      run_coll(comm::CollectiveChoice::kRing, gpusim::LinkTopology::kNvlinkRing,
               4, comm::WireFormat::kFp32, chunk);
    }
    // fp16 on the wire halves every message.
    run_coll(comm::CollectiveChoice::kRing, gpusim::LinkTopology::kPcieHost, 4,
             comm::WireFormat::kFp16, 0);

    write_json(out, train, serve, coll);
    std::printf("wrote %s (%zu training + %zu serving + %zu collective "
                "records)\n",
                out.c_str(), train.size(), serve.size(), coll.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
