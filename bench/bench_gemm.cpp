// GEMM microbenchmark: measures the packed-panel tiled kernel against
// the frozen naive baseline, across sizes, transpose variants, and
// thread counts. Emits BENCH_kernels.json-schema records and (with
// --min-gflops) enforces a CI performance floor.
//
// Usage: bench_gemm [--quick] [--out FILE] [--min-gflops X] [--threads N,M,...]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_perf.hpp"
#include "common/parallel.hpp"
#include "kernels/cpu_math.hpp"

namespace {

struct Options {
  bool quick = false;
  std::string out;
  double min_gflops = 0.0;
  std::vector<int> threads{1};
};

std::vector<int> parse_int_list(const char* s) {
  std::vector<int> out;
  std::string tok;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!tok.empty()) out.push_back(std::atoi(tok.c_str()));
      tok.clear();
      if (*p == '\0') break;
    } else {
      tok.push_back(*p);
    }
  }
  return out;
}

int reps_for(int size, bool quick) {
  if (size >= 1024) return quick ? 2 : 3;
  if (size >= 512) return quick ? 3 : 5;
  return 10;
}

double gemm_gflops(int m, int n, int k, double ms) {
  return 2.0 * m * n * k / (ms * 1e6);
}

/// Benchmark one (variant, m, n, k) point at `threads` workers;
/// verifies the optimized result against the naive baseline first.
bench::PerfRecord run_point(bool ta, bool tb, int m, int n, int k, int threads,
                            bool quick, bool with_naive) {
  const int lda = ta ? m : k;
  const int ldb = tb ? k : n;
  std::vector<float> a(static_cast<std::size_t>(ta ? k : m) * lda);
  std::vector<float> b(static_cast<std::size_t>(tb ? n : k) * ldb);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  bench::fill_pseudorandom(a, 1);
  bench::fill_pseudorandom(b, 2);

  glp::set_parallel_workers(threads);

  double naive_ms = 0.0;
  if (with_naive) {
    std::vector<float> c_ref(c.size(), 0.0f);
    // Single rep is enough: the baseline is only a yardstick and is
    // 3-10x slower than the kernel under test.
    naive_ms = bench::time_best_ms(std::max(1, reps_for(std::max({m, n, k}), quick) / 2), [&] {
      bench::naive_gemm(ta, tb, m, n, k, 1.0f, a.data(), lda, b.data(), ldb,
                        0.0f, c_ref.data(), n);
    });
    // Guard the bench itself: optimized and naive must agree.
    kern::cpu::gemm(ta, tb, m, n, k, 1.0f, a.data(), lda, b.data(), ldb, 0.0f,
                    c.data(), n);
    double max_rel = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      const double denom = std::max(1.0, std::abs(static_cast<double>(c_ref[i])));
      max_rel = std::max(max_rel, std::abs(static_cast<double>(c[i]) - c_ref[i]) / denom);
    }
    if (max_rel > 1e-3) {
      std::fprintf(stderr, "FATAL: gemm mismatch vs naive (max rel err %g)\n",
                   max_rel);
      std::exit(2);
    }
  }

  const double ms =
      bench::time_best_ms(reps_for(std::max({m, n, k}), quick), [&] {
        kern::cpu::gemm(ta, tb, m, n, k, 1.0f, a.data(), lda, b.data(), ldb,
                        0.0f, c.data(), n);
      });

  bench::PerfRecord rec;
  rec.kernel = std::string("gemm_") + (ta ? "t" : "n") + (tb ? "t" : "n");
  char cfg[64];
  std::snprintf(cfg, sizeof(cfg), "m=%d,n=%d,k=%d", m, n, k);
  rec.config = cfg;
  rec.threads = threads;
  rec.ms = ms;
  rec.gflops = gemm_gflops(m, n, k, ms);
  if (with_naive && naive_ms > 0.0) rec.speedup_vs_naive = naive_ms / ms;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (std::strcmp(argv[i], "--min-gflops") == 0 && i + 1 < argc) {
      opt.min_gflops = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opt.threads = parse_int_list(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_gemm [--quick] [--out FILE] [--min-gflops X] "
                   "[--threads N,M,...]\n");
      return 1;
    }
  }
  if (opt.threads.empty()) opt.threads = {1};

  const std::vector<int> sizes =
      opt.quick ? std::vector<int>{128, 256} : std::vector<int>{128, 256, 512, 1024};
  std::vector<bench::PerfRecord> records;

  // Square sizes, no-transpose, single thread: the headline series the
  // CI floor and the >=3x-vs-seed acceptance check read.
  for (int s : sizes) {
    records.push_back(run_point(false, false, s, s, s, 1, opt.quick, true));
  }
  // All four transpose variants at one representative size.
  const int vs = opt.quick ? 128 : 256;
  records.push_back(run_point(false, true, vs, vs, vs, 1, opt.quick, true));
  records.push_back(run_point(true, false, vs, vs, vs, 1, opt.quick, true));
  records.push_back(run_point(true, true, vs, vs, vs, 1, opt.quick, true));
  // Skinny shapes from the layers: m=1 FC row (parallelizes over n
  // tiles) and a conv-ish tall-thin panel.
  records.push_back(run_point(false, true, 1, 4096, 1024, 1, opt.quick, true));
  records.push_back(run_point(false, false, 256, 1024, 64, 1, opt.quick, true));
  // Thread sweep at a mid size (oversubscribed when cores are scarce).
  const int ts = opt.quick ? 256 : 512;
  for (int t : opt.threads) {
    if (t == 1) continue;  // already covered
    records.push_back(run_point(false, false, ts, ts, ts, t, opt.quick, false));
  }
  glp::set_parallel_workers(1);

  double floor_gflops = 1e300;
  for (const bench::PerfRecord& r : records) {
    std::printf("%-10s %-22s threads=%-3d %9.3f ms %8.2f GFLOP/s", r.kernel.c_str(),
                r.config.c_str(), r.threads, r.ms, r.gflops);
    if (r.speedup_vs_naive > 0.0) {
      std::printf("  %5.2fx vs naive", r.speedup_vs_naive);
    }
    std::printf("\n");
    if (r.threads == 1 && r.kernel == "gemm_nn") {
      floor_gflops = std::min(floor_gflops, r.gflops);
    }
  }

  if (!opt.out.empty()) {
    bench::write_json(opt.out, records);
    std::printf("wrote %s (%zu records)\n", opt.out.c_str(), records.size());
  }

  if (opt.min_gflops > 0.0 && floor_gflops < opt.min_gflops) {
    std::fprintf(stderr, "FAIL: single-thread gemm_nn floor %.2f GFLOP/s < %.2f\n",
                 floor_gflops, opt.min_gflops);
    return 1;
  }
  return 0;
}
