// Beyond Table 3: GLP4NN across every Table-1 GPU generation in the
// device table (Fermi → Volta). The framework is device-agnostic — the
// analyzer adapts the stream count to each generation's concurrency
// degree and resources.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

int main() {
  bench::print_header(
      "GLP4NN across GPU generations (CIFAR10 fwd+bwd iteration ms)");
  bench::print_row({"GPU", "C", "naive(ms)", "glp4nn(ms)", "speedup",
                    "max streams used"},
                   {10, 5, 11, 12, 9, 17});
  for (const auto& device : gpusim::DeviceTable::all()) {
    bench::RunConfig serial_cfg;
    serial_cfg.device = device;
    serial_cfg.mode = bench::Mode::kSerial;
    const auto serial = bench::run_network(mc::models::cifar10_quick(), {},
                                           serial_cfg);
    bench::RunConfig glp_cfg = serial_cfg;
    glp_cfg.mode = bench::Mode::kGlp4nn;
    const auto glp = bench::run_network(mc::models::cifar10_quick(), {}, glp_cfg);
    int max_streams = 0;
    for (const auto& [scope, count] : glp.stream_counts) {
      max_streams = std::max(max_streams, count);
    }
    bench::print_row(
        {device.name, std::to_string(device.max_concurrent_kernels),
         glp::strformat("%.2f", serial.iteration_ms),
         glp::strformat("%.2f", glp.iteration_ms),
         glp::strformat("%.2fx", serial.iteration_ms / glp.iteration_ms),
         std::to_string(max_streams)},
        {10, 5, 11, 12, 9, 17});
    std::fprintf(stderr, "  %s done\n", device.name.c_str());
  }
  std::printf(
      "\nExpected shape: every generation that supports streams benefits;\n"
      "stream counts adapt to each device's concurrency degree and SM\n"
      "resources without per-device tuning.\n");
  return 0;
}
