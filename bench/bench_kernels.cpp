// Host-kernel microbenchmark suite: im2col/col2im, pooling, elementwise
// activations, and a compact GEMM series. Writes the committed
// BENCH_kernels.json baseline (schema in docs/PERFORMANCE.md).
//
// Usage: bench_kernels [--quick] [--out FILE] [--threads N,M,...]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_perf.hpp"
#include "common/parallel.hpp"
#include "kernels/cpu_math.hpp"

namespace {

bench::PerfRecord make_record(const char* kernel, const std::string& config,
                              int threads, double ms, double flops,
                              double bytes) {
  bench::PerfRecord rec;
  rec.kernel = kernel;
  rec.config = config;
  rec.threads = threads;
  rec.ms = ms;
  if (flops > 0.0) rec.gflops = flops / (ms * 1e6);
  if (bytes > 0.0) rec.gbps = bytes / (ms * 1e6);
  return rec;
}

void bench_im2col(std::vector<bench::PerfRecord>& records, int threads,
                  int reps) {
  // AlexNet conv2-like shape.
  const int c = 96, h = 27, w = 27, kh = 5, kw = 5, pad = 2, stride = 1;
  const int oh = kern::cpu::conv_out_size(h, kh, pad, stride);
  const int ow = kern::cpu::conv_out_size(w, kw, pad, stride);
  std::vector<float> im(static_cast<std::size_t>(c) * h * w);
  std::vector<float> col(static_cast<std::size_t>(c) * kh * kw * oh * ow);
  bench::fill_pseudorandom(im, 3);
  const double bytes = (im.size() + col.size()) * sizeof(float);
  char cfg[96];
  std::snprintf(cfg, sizeof(cfg), "c=%d,h=%d,w=%d,k=%d,pad=%d,stride=%d", c, h,
                w, kh, pad, stride);

  double ms = bench::time_best_ms(reps, [&] {
    kern::cpu::im2col(im.data(), c, h, w, kh, kw, pad, pad, stride, stride,
                      col.data());
  });
  records.push_back(make_record("im2col", cfg, threads, ms, 0.0, bytes));

  ms = bench::time_best_ms(reps, [&] {
    kern::cpu::fill(im.size(), 0.0f, im.data());
    kern::cpu::col2im(col.data(), c, h, w, kh, kw, pad, pad, stride, stride,
                      im.data());
  });
  records.push_back(make_record("col2im", cfg, threads, ms, 0.0, bytes));
}

void bench_pool(std::vector<bench::PerfRecord>& records, int threads,
                int reps) {
  const int c = 256, h = 54, w = 54, kernel = 3, stride = 2, pad = 0;
  const int oh = kern::cpu::conv_out_size(h, kernel, pad, stride);
  const int ow = kern::cpu::conv_out_size(w, kernel, pad, stride);
  std::vector<float> in(static_cast<std::size_t>(c) * h * w);
  std::vector<float> out(static_cast<std::size_t>(c) * oh * ow);
  std::vector<int> mask(out.size());
  bench::fill_pseudorandom(in, 4);
  const double bytes = (in.size() + 2.0 * out.size()) * sizeof(float);
  char cfg[96];
  std::snprintf(cfg, sizeof(cfg), "c=%d,h=%d,w=%d,k=%d,stride=%d", c, h, w,
                kernel, stride);

  double ms = bench::time_best_ms(reps, [&] {
    kern::cpu::max_pool_forward(in.data(), c, h, w, kernel, stride, pad, oh, ow,
                                out.data(), mask.data());
  });
  records.push_back(make_record("max_pool_forward", cfg, threads, ms, 0.0, bytes));

  ms = bench::time_best_ms(reps, [&] {
    kern::cpu::ave_pool_forward(in.data(), c, h, w, kernel, stride, pad, oh, ow,
                                out.data());
  });
  records.push_back(make_record("ave_pool_forward", cfg, threads, ms, 0.0, bytes));
}

void bench_elementwise(std::vector<bench::PerfRecord>& records, int threads,
                       int reps) {
  const std::size_t count = 1u << 22;  // 16 MiB per tensor
  std::vector<float> x(count), y(count), dy(count);
  bench::fill_pseudorandom(x, 5);
  bench::fill_pseudorandom(dy, 6);
  char cfg[48];
  std::snprintf(cfg, sizeof(cfg), "count=%zu", count);

  double ms = bench::time_best_ms(reps, [&] {
    kern::cpu::relu_forward(count, x.data(), y.data(), 0.0f);
  });
  records.push_back(make_record("relu_forward", cfg, threads, ms,
                                static_cast<double>(count),
                                2.0 * count * sizeof(float)));

  ms = bench::time_best_ms(reps, [&] {
    kern::cpu::sigmoid_forward(count, x.data(), y.data());
  });
  records.push_back(make_record("sigmoid_forward", cfg, threads, ms,
                                4.0 * count, 2.0 * count * sizeof(float)));

  ms = bench::time_best_ms(reps, [&] {
    kern::cpu::tanh_backward(count, y.data(), dy.data(), x.data());
  });
  records.push_back(make_record("tanh_backward", cfg, threads, ms,
                                3.0 * count, 3.0 * count * sizeof(float)));

  ms = bench::time_best_ms(reps, [&] {
    kern::cpu::axpy(count, 0.5f, x.data(), y.data());
  });
  records.push_back(make_record("axpy", cfg, threads, ms, 2.0 * count,
                                3.0 * count * sizeof(float)));
}

void bench_gemm_compact(std::vector<bench::PerfRecord>& records, int threads,
                        int reps) {
  const int s = 256;
  std::vector<float> a(static_cast<std::size_t>(s) * s);
  std::vector<float> b(a.size()), c(a.size(), 0.0f);
  bench::fill_pseudorandom(a, 7);
  bench::fill_pseudorandom(b, 8);
  const double flops = 2.0 * s * s * s;

  double naive_ms = 0.0;
  if (threads == 1) {
    naive_ms = bench::time_best_ms(std::max(1, reps / 2), [&] {
      bench::naive_gemm(false, false, s, s, s, 1.0f, a.data(), s, b.data(), s,
                        0.0f, c.data(), s);
    });
  }
  const double ms = bench::time_best_ms(reps, [&] {
    kern::cpu::gemm(false, false, s, s, s, 1.0f, a.data(), s, b.data(), s, 0.0f,
                    c.data(), s);
  });
  bench::PerfRecord rec =
      make_record("gemm_nn", "m=256,n=256,k=256", threads, ms, flops, 0.0);
  if (naive_ms > 0.0) rec.speedup_vs_naive = naive_ms / ms;
  records.push_back(rec);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_kernels.json";
  std::vector<int> threads{1};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads.clear();
      for (const char* p = argv[++i]; *p != '\0'; ++p) {
        if (*p >= '0' && *p <= '9') {
          threads.push_back(std::atoi(p));
          while (p[1] != '\0' && p[1] != ',') ++p;
        }
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_kernels [--quick] [--out FILE] [--threads N,M,...]\n");
      return 1;
    }
  }
  if (threads.empty()) threads = {1};
  const int reps = quick ? 3 : 7;

  std::vector<bench::PerfRecord> records;
  for (int t : threads) {
    glp::set_parallel_workers(t);
    bench_gemm_compact(records, t, reps);
    bench_im2col(records, t, reps);
    bench_pool(records, t, reps);
    bench_elementwise(records, t, reps);
  }
  glp::set_parallel_workers(1);

  for (const bench::PerfRecord& r : records) {
    std::printf("%-18s %-38s threads=%-3d %9.3f ms", r.kernel.c_str(),
                r.config.c_str(), r.threads, r.ms);
    if (r.gflops > 0.0) std::printf(" %8.2f GFLOP/s", r.gflops);
    if (r.gbps > 0.0) std::printf(" %8.2f GB/s", r.gbps);
    if (r.speedup_vs_naive > 0.0) std::printf("  %5.2fx vs naive", r.speedup_vs_naive);
    std::printf("\n");
  }

  bench::write_json(out, records);
  std::printf("wrote %s (%zu records)\n", out.c_str(), records.size());
  return 0;
}
