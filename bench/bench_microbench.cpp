// Wall-clock microbenchmarks (google-benchmark) of the host-side
// machinery whose real cost matters: the MILP the kernel analyzer solves
// (T_a), the resource tracker's record parsing (T_p), the simulator's
// event-loop throughput, and the host math kernels.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/analytical_model.hpp"
#include "core/resource_tracker.hpp"
#include "kernels/cpu_math.hpp"
#include "milp/branch_and_bound.hpp"

namespace {

glp4nn::KernelStats make_kernel(const std::string& name, unsigned blocks,
                                unsigned threads, double dur) {
  glp4nn::KernelStats k;
  k.name = name;
  k.config.grid = {blocks, 1, 1};
  k.config.block = {threads, 1, 1};
  k.launches = 1;
  k.avg_duration_us = dur;
  return k;
}

// T_a: the analytical model end to end (MILP build + branch & bound).
void BM_AnalyticalModel(benchmark::State& state) {
  glp4nn::AnalyticalModel model(gpusim::DeviceTable::p100());
  std::vector<glp4nn::KernelStats> kernels;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    kernels.push_back(make_kernel("k" + std::to_string(i),
                                  4 + static_cast<unsigned>(i) * 3, 256,
                                  10.0 + i * 7.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.analyze("scope", kernels));
  }
}
BENCHMARK(BM_AnalyticalModel)->Arg(1)->Arg(3)->Arg(6);

// Raw branch & bound on a knapsack.
void BM_BranchAndBound(benchmark::State& state) {
  milp::Problem p;
  glp::Rng rng(7);
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const int v = p.add_variable(0, 10, rng.uniform(1, 10), true);
    row.emplace_back(v, rng.uniform(1, 5));
  }
  p.add_constraint(row, 0, 25);
  const milp::BranchAndBoundSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p));
  }
}
BENCHMARK(BM_BranchAndBound)->Arg(2)->Arg(5)->Arg(8);

// T_p: tracker profiling of a per-sample conv scope.
void BM_TrackerProfileScope(benchmark::State& state) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  glp4nn::ResourceTracker tracker;
  gpusim::LaunchConfig cfg;
  cfg.grid = {18, 1, 1};
  cfg.block = {256, 1, 1};
  const int launches = static_cast<int>(state.range(0));
  for (auto _ : state) {
    tracker.begin_profiling(ctx);
    for (int i = 0; i < launches; ++i) {
      ctx.device().launch_kernel(gpusim::kDefaultStream,
                                 i % 2 ? "sgemm_64x64_nn" : "im2col_gpu_kernel",
                                 cfg, {1e6, 1e6}, {});
    }
    ctx.device().synchronize();
    benchmark::DoNotOptimize(tracker.end_profiling(ctx, "conv/fwd"));
  }
  state.SetItemsProcessed(state.iterations() * launches);
}
BENCHMARK(BM_TrackerProfileScope)->Arg(64)->Arg(512);

// Simulator event-loop throughput: kernel launches retired per second.
void BM_SimulatorLaunchThroughput(benchmark::State& state) {
  const int streams = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    scuda::Context ctx(gpusim::DeviceTable::p100());
    std::vector<gpusim::StreamId> ids;
    for (int i = 0; i < streams; ++i) ids.push_back(ctx.device().create_stream());
    gpusim::LaunchConfig cfg;
    cfg.grid = {8, 1, 1};
    cfg.block = {256, 1, 1};
    state.ResumeTiming();
    for (int i = 0; i < 2000; ++i) {
      ctx.device().launch_kernel(ids[static_cast<std::size_t>(i % streams)], "k",
                                 cfg, {1e6, 1e5}, {});
    }
    ctx.device().synchronize();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SimulatorLaunchThroughput)->Arg(1)->Arg(8);

// Host GEMM throughput (the numeric experiments' bottleneck).
void BM_HostGemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<float> a(static_cast<std::size_t>(n) * n, 1.0f);
  std::vector<float> b(a), c(a);
  for (auto _ : state) {
    kern::cpu::gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
                    c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
}
BENCHMARK(BM_HostGemm)->Arg(64)->Arg(256);

// im2col, the other hot host kernel.
void BM_HostIm2col(benchmark::State& state) {
  const int c = 32, h = 32, w = 32, k = 5;
  std::vector<float> im(static_cast<std::size_t>(c) * h * w, 1.0f);
  std::vector<float> col(static_cast<std::size_t>(c) * k * k * h * w);
  for (auto _ : state) {
    kern::cpu::im2col(im.data(), c, h, w, k, k, 2, 2, 1, 1, col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_HostIm2col);

}  // namespace

BENCHMARK_MAIN();
