#include "bench_perf.hpp"

#include <cstdint>

#include "bench_common.hpp"
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace bench {

namespace {

// Minimal JSON string escape; kernel/config strings are ASCII by
// construction but a stray quote must not corrupt the file.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

}  // namespace

void write_json(const std::string& path, const std::vector<PerfRecord>& records) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"glp4nn-bench-kernels-v1\",\n"
     << provenance_json("host") << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const PerfRecord& r = records[i];
    os << "    {\"kernel\": \"" << escape(r.kernel) << "\", \"config\": \""
       << escape(r.config) << "\", \"threads\": " << r.threads
       << ", \"ms\": " << r.ms;
    if (r.gflops > 0.0) os << ", \"gflops\": " << r.gflops;
    if (r.gbps > 0.0) os << ", \"gbps\": " << r.gbps;
    if (r.speedup_vs_naive > 0.0) {
      os << ", \"speedup_vs_naive\": " << r.speedup_vs_naive;
    }
    os << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";

  std::ofstream f(path);
  GLP_REQUIRE(f.good(), "cannot open " << path << " for writing");
  f << os.str();
  GLP_REQUIRE(f.good(), "write to " << path << " failed");
}

void naive_gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
                const float* a, int lda, const float* b, int ldb, float beta,
                float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    if (beta == 0.0f) {
      for (int j = 0; j < n; ++j) crow[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (int j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (!trans_a && !trans_b) {
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * lda;
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int p = 0; p < k; ++p) {
        const float av = alpha * arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(p) * ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!trans_a && trans_b) {
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * lda;
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * ldb;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += alpha * acc;
      }
    }
  } else if (trans_a && !trans_b) {
    for (int p = 0; p < k; ++p) {
      const float* arow = a + static_cast<std::size_t>(p) * lda;
      const float* brow = b + static_cast<std::size_t>(p) * ldb;
      for (int i = 0; i < m; ++i) {
        const float av = alpha * arow[i];
        if (av == 0.0f) continue;
        float* crow = c + static_cast<std::size_t>(i) * ldc;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * ldb;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) {
          acc += a[static_cast<std::size_t>(p) * lda + i] * brow[p];
        }
        crow[j] += alpha * acc;
      }
    }
  }
}

void fill_pseudorandom(std::vector<float>& v, unsigned salt) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint64_t z = (static_cast<std::uint64_t>(i) + 1) * 0x9E3779B97F4A7C15ull +
                      salt * 0xBF58476D1CE4E5B9ull;
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ull;
    z ^= z >> 27;
    // Map to [-0.5, 0.5): nonzero mean-free data keeps the naive GEMM's
    // `av == 0` skip from firing and the comparison honest.
    v[i] = static_cast<float>(static_cast<double>(z >> 11) /
                              static_cast<double>(1ull << 53)) -
           0.5f;
  }
}

}  // namespace bench
