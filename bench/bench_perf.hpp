#pragma once
// Shared harness for the host-math microbenchmarks (bench_gemm,
// bench_kernels): wall-clock timing loops, the frozen naive GEMM used as
// the speedup baseline, and the BENCH_kernels.json record format
// (documented in docs/PERFORMANCE.md).

#include <cstddef>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace bench {

/// One timed kernel configuration. `gflops`/`gbps`/`speedup_vs_naive`
/// are 0 when not applicable to the kernel.
struct PerfRecord {
  std::string kernel;  ///< e.g. "gemm_nn", "im2col", "relu_forward"
  std::string config;  ///< e.g. "m=256,n=256,k=256"
  int threads = 1;
  double ms = 0.0;      ///< best wall time over the measured repetitions
  double gflops = 0.0;  ///< useful flops / best time
  double gbps = 0.0;    ///< bytes moved / best time
  double speedup_vs_naive = 0.0;  ///< naive_ms / ms at the same thread count
};

/// Serialize records to the BENCH_kernels.json schema (pretty-printed,
/// stable field order) at `path`. Throws on I/O failure.
void write_json(const std::string& path, const std::vector<PerfRecord>& records);

/// Best-of-`reps` wall time of `fn()` in milliseconds (after one
/// untimed warmup call). Best-of is robust to scheduling noise on a
/// shared machine, which is what CI runs on.
template <typename F>
double time_best_ms(int reps, const F& fn) {
  fn();  // warmup: faults pages, warms caches, primes the thread pool
  double best = 1e300;
  glp::WallTimer timer;
  for (int r = 0; r < reps; ++r) {
    timer.reset();
    fn();
    const double ms = timer.elapsed_ms();
    if (ms < best) best = ms;
  }
  return best;
}

/// The seed repository's serial GEMM, frozen here as the speedup
/// baseline so `speedup_vs_naive` keeps meaning the same thing as the
/// optimized library evolves.
void naive_gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
                const float* a, int lda, const float* b, int ldb, float beta,
                float* c, int ldc);

/// Deterministic fill (splitmix-style hash of the index) so benches do
/// not depend on a seeded RNG's library-specific stream.
void fill_pseudorandom(std::vector<float>& v, unsigned salt);

}  // namespace bench
