// Serving benchmark: latency/throughput/SLO-attainment vs. offered load
// for the inference serving subsystem. Two sweeps:
//
//   * windowed sweep (v1 parity, no deadlines): scheduler-vs-serial
//     dispatch and dynamic-batcher on/off over 1k-16k req/s — the
//     baseline comparison the PR-3 floor checks read;
//   * continuous sweep (the fleet hot path): continuous batching + lane
//     coalescing with a 5 ms SLO, swept up to 120k offered req/s with
//     per-tenant SLO attainment reported.
//
// Writes the committed BENCH_serving.json baseline (schema
// glp4nn-bench-serving-v2, documented in docs/SERVING.md).
//
// Usage: bench_serving [--quick] [--out FILE] [--requests N]
//
// Replays are timing-only (the numerics are covered by the serving
// differential corpus); all latencies are *simulated* device/host times,
// so the baseline is stable across machines and CI runs.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "gpusim/device_props.hpp"
#include "serving/model_zoo.hpp"
#include "serving/server.hpp"

namespace {

struct ServingRecord {
  std::string mode;  ///< "glp4nn" or "serial"
  std::string mix;   ///< tenant model mix, e.g. "tiny_cnn+small_cnn"
  bool batcher = true;
  serving::BatchMode batch_mode = serving::BatchMode::kWindowed;
  bool coalesce = false;
  double rate_rps = 0.0;
  double deadline_ms = 0.0;
  serving::ServingStats stats;
};

serving::ServingStats replay_once(const gpusim::DeviceProps& props,
                                  const std::vector<serving::TenantModel>& models,
                                  const serving::TraceSpec& ts,
                                  const ServingRecord& cfg) {
  scuda::Context ctx(props);
  serving::ServerOptions opts;
  opts.use_scheduler = cfg.mode == "glp4nn";
  opts.batch.enabled = cfg.batcher;
  opts.batch.mode = cfg.batch_mode;
  opts.coalesce_lanes = cfg.coalesce;
  if (cfg.batch_mode == serving::BatchMode::kContinuous) {
    opts.batch.max_batch = 64;   // backlog-sized cuts at high offered load
    opts.queue_capacity = 512;   // per tenant shard
  } else {
    opts.queue_capacity = 256;
  }
  opts.mode = kern::ComputeMode::kTimingOnly;
  serving::InferenceServer server(ctx, models, opts);
  std::vector<std::size_t> sizes;
  for (int t = 0; t < server.tenants(); ++t) {
    sizes.push_back(server.session(t).sample_input_size());
  }
  return serving::InferenceServer::summarize(
      server.replay(serving::make_trace(ts, sizes)));
}

void write_json(const std::string& path,
                const std::vector<ServingRecord>& records, int requests,
                const std::string& device) {
  std::ofstream os(path);
  GLP_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  os << "{\n"
     << "  \"schema\": \"glp4nn-bench-serving-v2\",\n"
     << bench::provenance_json(device)
     << "  \"device\": \"" << device << "\",\n"
     << "  \"models\": [\"tiny_cnn+small_cnn\", \"tiny_cnn+mlp\"],\n"
     << "  \"arrival\": \"poisson\",\n"
     << "  \"requests\": " << requests << ",\n"
     << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ServingRecord& r = records[i];
    const serving::ServingStats& s = r.stats;
    os << "    {\"mode\": \"" << r.mode << "\", \"models\": \"" << r.mix
       << "\", \"batcher\": "
       << (r.batcher ? "true" : "false") << ", \"batch_mode\": \""
       << serving::batch_mode_name(r.batch_mode) << "\", \"coalesce\": "
       << (r.coalesce ? "true" : "false") << ", \"rate_rps\": " << r.rate_rps
       << ", \"deadline_ms\": " << r.deadline_ms
       << ", \"served\": " << s.served << ", \"rejected\": " << s.rejected
       << ", \"shed\": " << s.shed << ", \"expired\": " << s.expired
       << ", \"slo_attainment\": " << s.slo_attainment
       << ", \"p50_ms\": " << s.p50_ms
       << ", \"p95_ms\": " << s.p95_ms << ", \"p99_ms\": " << s.p99_ms
       << ", \"mean_ms\": " << s.mean_ms
       << ", \"throughput_rps\": " << s.throughput_rps
       << ", \"batches\": " << s.batches
       << ", \"mean_batch\": " << s.mean_batch << ", \"tenants\": [";
    for (std::size_t t = 0; t < s.tenants.size(); ++t) {
      const serving::TenantStats& ten = s.tenants[t];
      os << (t ? ", " : "") << "{\"tenant\": " << ten.tenant
         << ", \"served\": " << ten.served
         << ", \"slo_attainment\": " << ten.slo_attainment
         << ", \"p99_ms\": " << ten.p99_ms
         << ", \"throughput_rps\": " << ten.throughput_rps << "}";
    }
    os << "]}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  GLP_REQUIRE(os.good(), "failed writing '" << path << "'");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int requests = 1000;
  std::string out = "BENCH_serving.json";

  glp::Flags flags("bench_serving",
                   "Serving latency/throughput/SLO vs. offered load: "
                   "scheduler vs serial, windowed vs continuous batching.");
  flags.flag("quick", &quick, "CI mode: fewer load points, shorter trace")
      .opt("requests", &requests, "trace length per load point")
      .opt("out", &out, "output JSON path");
  switch (flags.parse(argc, argv)) {
    case glp::Flags::Status::kHelp:
      return 0;
    case glp::Flags::Status::kError:
      return 2;
    case glp::Flags::Status::kOk:
      break;
  }

  try {
    const gpusim::DeviceProps props = gpusim::DeviceTable::p100();
    const auto make_models = [](std::initializer_list<const char*> names) {
      std::vector<serving::TenantModel> models;
      for (const char* name : names) {
        serving::TenantModel m;
        m.name = name;
        m.spec = serving::by_name(name);
        models.push_back(std::move(m));
      }
      return models;
    };
    // Heavy mix: small_cnn saturates serial dispatch around 8k req/s, so
    // this is where the scheduler-vs-serial comparison is interesting.
    const auto heavy = make_models({"tiny_cnn", "small_cnn"});
    // Light mix for the high-rate ingest sweep: small_cnn is *device*
    // compute-bound on the simulated P100 (~36k samples/s per tenant,
    // invariant in batch size), which would cap the sweep at ~73k req/s
    // no matter how good the host path is. The continuous-batching and
    // coalescing work targets host-side launch overhead, so the ingest
    // sweep uses models with device headroom past 100k req/s.
    const auto light = make_models({"tiny_cnn", "mlp"});

    std::vector<double> rates{1000, 2000, 4000, 8000, 12000, 16000};
    std::vector<double> high_rates{40000, 80000, 100000, 120000};
    if (quick) {
      rates = {2000, 16000};
      high_rates = {100000};
      requests = std::min(requests, 300);
    }
    // High-rate points need enough trace behind them for the continuous
    // path to reach steady state (the first few cuts are small).
    const int high_requests = std::max(requests, 2000);

    const auto bench_point = [&](ServingRecord cfg, int n,
                                 const std::vector<serving::TenantModel>& models,
                                 const char* mix) {
      cfg.mix = mix;
      serving::TraceSpec ts;
      ts.requests = n;
      ts.rate_rps = cfg.rate_rps;
      ts.tenants = static_cast<int>(models.size());
      ts.deadline_ms = cfg.deadline_ms;
      ts.seed = 42;
      ts.fill_inputs = false;
      cfg.stats = replay_once(props, models, ts, cfg);
      std::printf(
          "%-7s %-20s %-10s batcher=%-3s %7.0f req/s offered | "
          "served %5zu/%-5zu | p50 %7.3f p99 %7.3f ms | %7.0f req/s | "
          "slo %6.2f%%\n",
          cfg.mode.c_str(), mix, serving::batch_mode_name(cfg.batch_mode),
          cfg.batcher ? "on" : "off", cfg.rate_rps, cfg.stats.served,
          cfg.stats.offered, cfg.stats.p50_ms, cfg.stats.p99_ms,
          cfg.stats.throughput_rps, 100.0 * cfg.stats.slo_attainment);
      return cfg;
    };

    std::vector<ServingRecord> records;
    // Windowed sweep, heavy mix, no deadlines: scheduler-vs-serial.
    for (const double rate : rates) {
      for (const bool scheduler : {false, true}) {
        for (const bool batcher : {true, false}) {
          ServingRecord cfg;
          cfg.mode = scheduler ? "glp4nn" : "serial";
          cfg.batcher = batcher;
          cfg.rate_rps = rate;
          records.push_back(
              bench_point(cfg, requests, heavy, "tiny_cnn+small_cnn"));
        }
      }
    }
    // Continuous sweep with a 5 ms SLO: the fleet-serving hot path
    // (continuous batching + lane coalescing). The heavy mix covers the
    // 1k-16k band (directly comparable to the windowed sweep); the light
    // mix extends to 120k offered req/s.
    for (const double rate : rates) {
      ServingRecord cfg;
      cfg.mode = "glp4nn";
      cfg.batch_mode = serving::BatchMode::kContinuous;
      cfg.coalesce = true;
      cfg.rate_rps = rate;
      cfg.deadline_ms = 5.0;
      records.push_back(bench_point(cfg, requests, heavy, "tiny_cnn+small_cnn"));
    }
    for (const double rate : high_rates) {
      ServingRecord cfg;
      cfg.mode = "glp4nn";
      cfg.batch_mode = serving::BatchMode::kContinuous;
      cfg.coalesce = true;
      cfg.rate_rps = rate;
      cfg.deadline_ms = 5.0;
      records.push_back(bench_point(cfg, high_requests, light, "tiny_cnn+mlp"));
    }

    write_json(out, records, requests, props.name);
    std::printf("wrote %s (%zu records)\n", out.c_str(), records.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
