// Serving benchmark: latency/throughput vs. offered load for the
// inference serving subsystem, sweeping scheduler-vs-serial dispatch and
// dynamic-batcher on/off over an open-loop Poisson trace. Writes the
// committed BENCH_serving.json baseline (schema documented in
// docs/SERVING.md).
//
// Usage: bench_serving [--quick] [--out FILE] [--requests N]
//
// Replays are timing-only (the numerics are covered by the serving
// differential corpus); all latencies are *simulated* device/host times,
// so the baseline is stable across machines and CI runs.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "gpusim/device_props.hpp"
#include "serving/model_zoo.hpp"
#include "serving/server.hpp"

namespace {

struct ServingRecord {
  std::string mode;  ///< "glp4nn" or "serial"
  bool batcher = true;
  double rate_rps = 0.0;
  serving::ServingStats stats;
};

serving::ServingStats replay_once(const gpusim::DeviceProps& props,
                                  const std::vector<serving::TenantModel>& models,
                                  const serving::TraceSpec& ts,
                                  bool use_scheduler, bool batcher) {
  scuda::Context ctx(props);
  serving::ServerOptions opts;
  opts.use_scheduler = use_scheduler;
  opts.batch.enabled = batcher;
  opts.queue_capacity = 256;
  opts.mode = kern::ComputeMode::kTimingOnly;
  serving::InferenceServer server(ctx, models, opts);
  std::vector<std::size_t> sizes;
  for (int t = 0; t < server.tenants(); ++t) {
    sizes.push_back(server.session(t).sample_input_size());
  }
  return serving::InferenceServer::summarize(
      server.replay(serving::make_trace(ts, sizes)));
}

void write_json(const std::string& path,
                const std::vector<ServingRecord>& records, int requests,
                const std::string& device) {
  std::ofstream os(path);
  GLP_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  os << "{\n"
     << "  \"schema\": \"glp4nn-bench-serving-v1\",\n"
     << "  \"device\": \"" << device << "\",\n"
     << "  \"models\": [\"tiny_cnn\", \"small_cnn\"],\n"
     << "  \"arrival\": \"poisson\",\n"
     << "  \"requests\": " << requests << ",\n"
     << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ServingRecord& r = records[i];
    const serving::ServingStats& s = r.stats;
    os << "    {\"mode\": \"" << r.mode << "\", \"batcher\": "
       << (r.batcher ? "true" : "false") << ", \"rate_rps\": " << r.rate_rps
       << ", \"served\": " << s.served << ", \"rejected\": " << s.rejected
       << ", \"expired\": " << s.expired << ", \"p50_ms\": " << s.p50_ms
       << ", \"p95_ms\": " << s.p95_ms << ", \"p99_ms\": " << s.p99_ms
       << ", \"mean_ms\": " << s.mean_ms
       << ", \"throughput_rps\": " << s.throughput_rps
       << ", \"batches\": " << s.batches
       << ", \"mean_batch\": " << s.mean_batch << "}"
       << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  GLP_REQUIRE(os.good(), "failed writing '" << path << "'");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int requests = 1000;
  std::string out = "BENCH_serving.json";

  glp::Flags flags("bench_serving",
                   "Serving latency/throughput vs. offered load: scheduler "
                   "vs serial dispatch, dynamic batcher on/off.");
  flags.flag("quick", &quick, "CI mode: fewer load points, shorter trace")
      .opt("requests", &requests, "trace length per load point")
      .opt("out", &out, "output JSON path");
  switch (flags.parse(argc, argv)) {
    case glp::Flags::Status::kHelp:
      return 0;
    case glp::Flags::Status::kError:
      return 2;
    case glp::Flags::Status::kOk:
      break;
  }

  try {
    const gpusim::DeviceProps props = gpusim::DeviceTable::p100();
    std::vector<serving::TenantModel> models;
    for (const char* name : {"tiny_cnn", "small_cnn"}) {
      serving::TenantModel m;
      m.name = name;
      m.spec = serving::by_name(name);
      models.push_back(std::move(m));
    }

    std::vector<double> rates{1000, 2000, 4000, 8000, 12000, 16000};
    if (quick) {
      rates = {2000, 12000};
      requests = std::min(requests, 300);
    }

    std::vector<ServingRecord> records;
    for (const double rate : rates) {
      serving::TraceSpec ts;
      ts.requests = requests;
      ts.rate_rps = rate;
      ts.tenants = static_cast<int>(models.size());
      ts.seed = 42;
      ts.fill_inputs = false;
      for (const bool scheduler : {false, true}) {
        for (const bool batcher : {true, false}) {
          ServingRecord r;
          r.mode = scheduler ? "glp4nn" : "serial";
          r.batcher = batcher;
          r.rate_rps = rate;
          r.stats = replay_once(props, models, ts, scheduler, batcher);
          std::printf(
              "%-7s batcher=%-3s %6.0f req/s offered | served %4zu/%-4zu | "
              "p50 %7.3f p99 %7.3f ms | %7.0f req/s\n",
              r.mode.c_str(), batcher ? "on" : "off", rate, r.stats.served,
              r.stats.offered, r.stats.p50_ms, r.stats.p99_ms,
              r.stats.throughput_rps);
          records.push_back(std::move(r));
        }
      }
    }

    write_json(out, records, requests, props.name);
    std::printf("wrote %s (%zu records)\n", out.c_str(), records.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
