// Table 6: the one-time overhead of GLP4NN — profiling time T_p, analysis
// time T_a (both real wall-clock host costs) and their ratio to training
// time. Training time here is simulated; the ratio is reported against a
// nominal 1000-iteration run (the paper trained far longer, so its ratio
// bound of 0.1% is conservative for us too).

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"

int main(int argc, char** argv) {
  const int nominal_iters = argc > 1 ? std::atoi(argv[1]) : 1000;
  bench::print_header("Table 6: one-time overhead of GLP4NN");
  bench::print_row({"net", "GPU", "T_p(ms)", "T_a(ms)", "T_total(ms)",
                    "iter(ms)", "ratio@" + std::to_string(nominal_iters),
                    "solves", "memo", "B&B"},
                   {11, 10, 9, 9, 12, 10, 14, 7, 5, 7});

  for (const auto& [name, spec] : mc::models::paper_networks()) {
    for (const auto& device : bench::evaluation_gpus()) {
      bench::RunConfig cfg;
      cfg.device = device;
      cfg.mode = bench::Mode::kGlp4nn;
      cfg.warmup_iterations = 1;
      cfg.measured_iterations = 2;
      const bench::RunResult r =
          bench::run_network(spec, {}, cfg);
      const double total = r.costs.total_ms();
      const double training_ms = r.iteration_ms * nominal_iters;
      bench::print_row(
          {name, device.name, glp::strformat("%.3f", r.costs.profiling_ms),
           glp::strformat("%.3f", r.costs.analysis_ms),
           glp::strformat("%.3f", total),
           glp::strformat("%.2f", r.iteration_ms),
           glp::strformat("%.4f%%", 100.0 * total / training_ms),
           std::to_string(r.costs.solver_calls),
           std::to_string(r.costs.solve_cache_hits),
           std::to_string(r.costs.milp_nodes)},
          {11, 10, 9, 9, 12, 10, 14, 7, 5, 7});
      std::fprintf(stderr, "  %s/%s done\n", device.name.c_str(), name.c_str());
    }
  }
  std::printf(
      "\nExpected shape (paper Table 6): T_total is tens of ms once per\n"
      "training run; the ratio to training time stays well under 0.1%%.\n"
      "(T_p/T_a are real wall-clock costs of this process; training time is\n"
      "simulated device time — see DESIGN.md.)\n"
      "'solves' counts fresh analytical-model runs, 'memo' scopes answered\n"
      "by the cross-scope solve cache, 'B&B' branch-and-bound nodes the\n"
      "fresh solves explored.\n");
  return 0;
}
