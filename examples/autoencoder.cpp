// Convolutional autoencoder under GLP4NN — exercises the Deconvolution
// layer (transposed convolution), whose per-sample GEMM+col2im chains are
// dispatched through the scheduler exactly like convolution's. The net
// reconstructs its own input (EuclideanLoss against the data blob), a
// workload shape the paper never ran — network-agnosticism in practice.

#include <cstdio>

#include "core/glp4nn.hpp"
#include "minicaffe/net.hpp"
#include "minicaffe/solver.hpp"

namespace {

mc::NetSpec autoencoder(int batch) {
  using mc::LayerSpec;
  mc::NetSpec s;
  s.name = "conv_autoencoder";

  LayerSpec data;
  data.type = "Data";
  data.name = "data";
  data.tops = {"data", "label"};
  data.params.dataset = mc::DatasetSpec::mnist();
  data.params.batch_size = batch;
  s.layers.push_back(data);

  LayerSpec enc;
  enc.type = "Convolution";
  enc.name = "encode";
  enc.bottoms = {"data"};
  enc.tops = {"code"};
  enc.params.num_output = 8;
  enc.params.kernel_size = 4;
  enc.params.stride = 2;
  enc.params.pad = 1;  // 28 -> 14
  enc.params.weight_filler = mc::FillerSpec::xavier();
  s.layers.push_back(enc);

  LayerSpec act;
  act.type = "TanH";
  act.name = "act";
  act.bottoms = {"code"};
  act.tops = {"code"};
  s.layers.push_back(act);

  LayerSpec dec;
  dec.type = "Deconvolution";
  dec.name = "decode";
  dec.bottoms = {"code"};
  dec.tops = {"recon"};
  dec.params.num_output = 1;
  dec.params.kernel_size = 4;
  dec.params.stride = 2;
  dec.params.pad = 1;  // 14 -> 28
  dec.params.weight_filler = mc::FillerSpec::xavier();
  s.layers.push_back(dec);

  LayerSpec loss;
  loss.type = "EuclideanLoss";
  loss.name = "loss";
  loss.bottoms = {"recon", "data"};
  loss.tops = {"loss"};
  s.layers.push_back(loss);
  return s;
}

}  // namespace

int main() {
  std::printf("== convolutional autoencoder under GLP4NN (K40C) ==\n\n");
  scuda::Context gpu(gpusim::DeviceTable::k40c());
  glp4nn::Glp4nnEngine engine;
  mc::ExecContext ec;
  ec.ctx = &gpu;
  ec.dispatcher = &engine.scheduler_for(gpu);

  mc::Net net(autoencoder(24), ec);
  mc::SolverParams p;
  p.base_lr = 0.0005f;
  p.momentum = 0.9f;
  mc::SgdSolver solver(net, p);
  solver.step(25, [](int iter, float loss) {
    if (iter % 5 == 0) {
      std::printf("  iter %2d  reconstruction loss %.4f\n", iter, loss);
    }
  });

  std::printf("\nstream decisions (note the Deconvolution scopes):\n");
  for (const auto& [scope, d] : engine.analyzer_for(gpu)->decisions()) {
    std::printf("  %-12s -> %d streams\n", scope.c_str(), d.stream_count);
  }
  return 0;
}
