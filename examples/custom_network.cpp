// Network-agnostic demo: a network GLP4NN has never seen, written in the
// prototxt-like text format, runs under the scheduler unchanged — no
// per-network tuning, no code changes. The resource tracker profiles
// whatever kernels the layers launch; the analytical model sizes the
// pools from that profile alone (paper §3.3.1).

#include <cstdio>

#include "core/glp4nn.hpp"
#include "minicaffe/net_parser.hpp"
#include "minicaffe/solver.hpp"

namespace {

constexpr const char* kNetText = R"(
name: "custom_vgg_ish"
layer {
  name: "data" type: "Data"
  top: "data" top: "label"
  dataset: "cifar10" batch_size: 48
}
layer {
  name: "conv1a" type: "Convolution" bottom: "data" top: "conv1a"
  num_output: 24 kernel_size: 3 pad: 1
  weight_filler { type: "gaussian" std: 0.05 }
}
layer { name: "relu1a" type: "ReLU" bottom: "conv1a" top: "conv1a" }
layer {
  name: "conv1b" type: "Convolution" bottom: "conv1a" top: "conv1b"
  num_output: 24 kernel_size: 3 pad: 1
  weight_filler { type: "gaussian" std: 0.05 }
}
layer { name: "relu1b" type: "ReLU" bottom: "conv1b" top: "conv1b" }
layer {
  name: "pool1" type: "Pooling" bottom: "conv1b" top: "pool1"
  pool: MAX kernel_size: 2 stride: 2
}
layer {
  name: "conv2" type: "Convolution" bottom: "pool1" top: "conv2"
  num_output: 48 kernel_size: 3 pad: 1
  weight_filler { type: "gaussian" std: 0.05 }
}
layer { name: "relu2" type: "ReLU" bottom: "conv2" top: "conv2" }
layer {
  name: "pool2" type: "Pooling" bottom: "conv2" top: "pool2"
  pool: AVE kernel_size: 2 stride: 2
}
layer {
  name: "fc" type: "InnerProduct" bottom: "pool2" top: "fc"
  num_output: 10 weight_filler { type: "xavier" }
}
layer {
  name: "loss" type: "SoftmaxWithLoss" bottom: "fc" bottom: "label" top: "loss"
}
)";

}  // namespace

int main() {
  std::printf("== custom network from text, under GLP4NN (Titan XP) ==\n\n");
  const mc::NetSpec spec = mc::parse_net_text(kNetText);
  std::printf("parsed '%s': %zu layers\n", spec.name.c_str(), spec.layers.size());

  scuda::Context gpu(gpusim::DeviceTable::titan_xp());
  glp4nn::Glp4nnEngine engine;
  mc::ExecContext ec;
  ec.ctx = &gpu;
  ec.dispatcher = &engine.scheduler_for(gpu);

  mc::Net net(spec, ec);
  mc::SolverParams params;
  params.base_lr = 0.005f;
  params.momentum = 0.9f;
  mc::SgdSolver solver(net, params);

  solver.step(10, [](int iter, float loss) {
    if (iter % 2 == 0) std::printf("  iter %2d  loss %.4f\n", iter, loss);
  });

  std::printf("\nstream decisions learned for this (previously unseen) net:\n");
  for (const auto& [scope, decision] : engine.analyzer_for(gpu)->decisions()) {
    std::printf("  %-14s -> %d streams", scope.c_str(), decision.stream_count);
    for (const auto& pk : decision.per_kernel) {
      std::printf("  [%s x%d]", pk.name.substr(pk.name.rfind('/') + 1).c_str(),
                  pk.count);
    }
    std::printf("\n");
  }
  return 0;
}
