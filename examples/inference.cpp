// Inference serving under GLP4NN. The paper notes the framework applies
// to "the training or inference of neural networks" (§3.3.1); this
// example trains briefly, snapshots the weights, then serves forward-only
// batches in the TEST phase (dropout off) under both schedulers and
// compares throughput and accuracy.

#include <cstdio>

#include "core/glp4nn.hpp"
#include "minicaffe/evaluator.hpp"
#include "minicaffe/models.hpp"
#include "minicaffe/net_parser.hpp"
#include "minicaffe/serialization.hpp"
#include "minicaffe/solver.hpp"

namespace {

// LeNet with an added Accuracy head for evaluation.
mc::NetSpec lenet_with_accuracy(int batch) {
  mc::NetSpec s = mc::models::lenet(batch);
  mc::LayerSpec acc;
  acc.type = "Accuracy";
  acc.name = "accuracy";
  acc.bottoms = {"ip2", "label"};
  acc.tops = {"accuracy"};
  s.layers.push_back(acc);
  return s;
}

}  // namespace

int main() {
  const std::string snapshot = "/tmp/glp4nn_inference_example.glpw";
  std::printf("== inference serving under GLP4NN (P100) ==\n\n");

  // 1. Train briefly and snapshot.
  {
    scuda::Context gpu(gpusim::DeviceTable::p100());
    kern::SerialDispatcher serial(gpu);
    mc::ExecContext ec;
    ec.ctx = &gpu;
    ec.dispatcher = &serial;
    mc::Net net(lenet_with_accuracy(32), ec);
    mc::SolverParams p;
    p.base_lr = 0.01f;
    p.momentum = 0.9f;
    mc::SgdSolver solver(net, p);
    solver.step(30);
    mc::save_weights(net, snapshot);
    std::printf("trained 30 iterations (final loss %.3f), snapshot saved\n\n",
                solver.last_loss());
  }

  // 2. Serve with each scheduler from the same snapshot.
  for (int use_glp = 0; use_glp < 2; ++use_glp) {
    scuda::Context gpu(gpusim::DeviceTable::p100());
    std::unique_ptr<kern::SerialDispatcher> serial;
    std::unique_ptr<glp4nn::Glp4nnEngine> engine;
    mc::ExecContext ec;
    ec.ctx = &gpu;
    if (use_glp) {
      engine = std::make_unique<glp4nn::Glp4nnEngine>();
      ec.dispatcher = &engine->scheduler_for(gpu);
    } else {
      serial = std::make_unique<kern::SerialDispatcher>(gpu);
      ec.dispatcher = serial.get();
    }
    mc::Net net(lenet_with_accuracy(32), ec);
    const auto report = mc::load_weights(net, snapshot);

    // Warm-up pass (contains GLP4NN's one-time profiling).
    mc::evaluate(net, 1);
    const mc::EvalResult eval = mc::evaluate(net, 20);

    const double images_per_s =
        20.0 * 32.0 / (eval.total_ms / 1e3);
    std::printf("%-12s restored %d params; accuracy %.3f, loss %.3f, "
                "%.1f images/simulated-second\n",
                use_glp ? "GLP4NN:" : "serial:", report.restored,
                eval.mean_or("accuracy", -1.0f), eval.mean_or("loss", -1.0f),
                images_per_s);
  }
  std::printf("\nBoth schedulers serve identical predictions from the same\n"
              "snapshot; GLP4NN simply overlaps the per-sample conv chains.\n");
  return 0;
}
