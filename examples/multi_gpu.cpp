// Multi-GPU data parallelism over one GLP4NN engine (Fig. 5's layout:
// shared resource tracker + stream manager, a private kernel analyzer and
// runtime scheduler per device). Two replicas train on different halves
// of each batch; gradients are averaged on the host and the averaged
// update is applied to both replicas, keeping them in lock-step.
//
// The devices are deliberately *different* (P100 + K40C) to show the
// analyzers reaching device-specific stream decisions for the same net.
//
// Lifetime rule: device contexts must outlive the engine (it owns their
// stream pools and profiling sessions), so they are declared first.

#include <cstdio>
#include <vector>

#include "core/glp4nn.hpp"
#include "kernels/cpu_math.hpp"
#include "minicaffe/models.hpp"
#include "minicaffe/solver.hpp"

int main() {
  constexpr int kIterations = 8;
  constexpr float kLr = 0.01f;

  std::printf("== data-parallel LeNet on two simulated GPUs ==\n\n");

  scuda::Context gpu_a(gpusim::DeviceTable::p100());
  scuda::Context gpu_b(gpusim::DeviceTable::k40c());
  glp4nn::Glp4nnEngine engine;

  mc::ExecContext ec_a, ec_b;
  ec_a.ctx = &gpu_a;
  ec_a.dispatcher = &engine.scheduler_for(gpu_a);
  ec_b.ctx = &gpu_b;
  ec_b.dispatcher = &engine.scheduler_for(gpu_b);

  mc::Net net_a(mc::models::lenet(/*batch=*/16), ec_a);
  mc::Net net_b(mc::models::lenet(/*batch=*/16), ec_b);

  const auto& params_a = net_a.learnable_params();
  const auto& params_b = net_b.learnable_params();

  for (int iter = 1; iter <= kIterations; ++iter) {
    for (mc::Net* net : {&net_a, &net_b}) {
      net->zero_param_diffs();
      net->forward();
      net->backward();
    }
    // Join both devices, then all-reduce (average) gradients on the host.
    const float loss_a = net_a.total_loss();
    const float loss_b = net_b.total_loss();
    for (std::size_t p = 0; p < params_a.size(); ++p) {
      float* ga = params_a[p]->mutable_diff();
      float* gb = params_b[p]->mutable_diff();
      float* wa = params_a[p]->mutable_data();
      float* wb = params_b[p]->mutable_data();
      for (std::size_t i = 0; i < params_a[p]->count(); ++i) {
        const float avg = 0.5f * (ga[i] + gb[i]);
        // Apply the same SGD update to both replicas (host-side for
        // clarity; a production loop would launch sgd_update per device).
        wa[i] -= kLr * avg;
        wb[i] -= kLr * avg;
      }
    }
    std::printf("iter %d: loss P100=%.4f K40C=%.4f\n", iter, loss_a, loss_b);
  }

  std::printf("\nper-device stream decisions for the SAME network:\n");
  for (scuda::Context* gpu : {&gpu_a, &gpu_b}) {
    std::printf("  %s:\n", gpu->props().name.c_str());
    for (const auto& [scope, d] : engine.analyzer_for(*gpu)->decisions()) {
      std::printf("    %-12s -> %d streams\n", scope.c_str(), d.stream_count);
    }
  }
  std::printf("\n(shared tracker collected %llu kernel records across both GPUs)\n",
              static_cast<unsigned long long>(engine.tracker().records_collected()));
  return 0;
}
