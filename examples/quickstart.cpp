// Quickstart: train LeNet on a simulated P100 with naive serial
// dispatching, then with GLP4NN — same numerics, fewer simulated
// milliseconds. This is the smallest end-to-end use of the library:
//
//   1. create a simulated device          (scuda::Context)
//   2. pick a dispatcher                  (SerialDispatcher / Glp4nnEngine)
//   3. build a Net and a Solver           (mc::Net, mc::SgdSolver)
//   4. step() — GLP4NN profiles each conv scope once, sizes its stream
//      pool with the analytical model, and round-robins from then on.

#include <cstdio>

#include "core/glp4nn.hpp"
#include "minicaffe/models.hpp"
#include "minicaffe/solver.hpp"

namespace {

struct TrainOutcome {
  float final_loss = 0.0f;
  double ms_per_iteration = 0.0;
};

TrainOutcome train(bool use_glp4nn, int iterations) {
  scuda::Context gpu(gpusim::DeviceTable::p100());

  // The dispatcher is the only difference between the two runs.
  std::unique_ptr<kern::SerialDispatcher> serial;
  std::unique_ptr<glp4nn::Glp4nnEngine> engine;
  mc::ExecContext ec;
  ec.ctx = &gpu;
  if (use_glp4nn) {
    engine = std::make_unique<glp4nn::Glp4nnEngine>();
    ec.dispatcher = &engine->scheduler_for(gpu);
  } else {
    serial = std::make_unique<kern::SerialDispatcher>(gpu);
    ec.dispatcher = serial.get();
  }

  mc::Net net(mc::models::lenet(/*batch=*/32), ec);
  mc::SolverParams params;
  params.base_lr = 0.01f;
  params.momentum = 0.9f;
  mc::SgdSolver solver(net, params);

  // First iteration separately: it contains GLP4NN's one-time profiling.
  solver.step(1);
  const double t0 = gpu.device().host_now();
  solver.step(iterations - 1);
  TrainOutcome out;
  out.final_loss = solver.last_loss();
  out.ms_per_iteration = (gpu.device().host_now() - t0) / 1e6 / (iterations - 1);

  if (engine != nullptr) {
    std::printf("  analytical model decisions:\n");
    for (const auto& [scope, decision] :
         engine->analyzer_for(gpu)->decisions()) {
      std::printf("    %-12s -> %d streams (occupancy %.0f%%)\n", scope.c_str(),
                  decision.stream_count, 100.0 * decision.occupancy);
    }
    const auto costs = engine->costs();
    std::printf("  one-time overhead: T_p=%.2fms T_a=%.2fms\n",
                costs.profiling_ms, costs.analysis_ms);
  }
  return out;
}

}  // namespace

int main() {
  constexpr int kIterations = 12;
  std::printf("== quickstart: LeNet (MNIST-shaped synthetic data), P100 ==\n");

  std::printf("\nnaive-Caffe (single stream):\n");
  const TrainOutcome naive = train(false, kIterations);
  std::printf("  loss %.4f, %.2f simulated ms/iteration\n", naive.final_loss,
              naive.ms_per_iteration);

  std::printf("\nGLP4NN-Caffe:\n");
  const TrainOutcome glp = train(true, kIterations);
  std::printf("  loss %.4f, %.2f simulated ms/iteration\n", glp.final_loss,
              glp.ms_per_iteration);

  std::printf("\nspeedup: %.2fx — identical loss: %s\n",
              naive.ms_per_iteration / glp.ms_per_iteration,
              naive.final_loss == glp.final_loss ? "yes (bit-exact)" : "no");
  return 0;
}
