// The problem GLP4NN solves, made visible: manually sweeping stream
// counts for one network on three different GPUs gives three different
// optima (the paper's Observation 2 / Fig. 4), while the analytical model
// lands near each optimum from a single profiled iteration.

#include <cstdio>
#include <vector>

#include "core/glp4nn.hpp"
#include "minicaffe/models.hpp"

namespace {

double iteration_ms(scuda::Context& gpu, kern::KernelDispatcher& dispatcher,
                    int warmup, int measured) {
  mc::ExecContext ec;
  ec.ctx = &gpu;
  ec.dispatcher = &dispatcher;
  ec.mode = kern::ComputeMode::kTimingOnly;
  mc::Net net(mc::models::cifar10_quick(), ec);
  auto iterate = [&] {
    net.forward();
    net.backward();
    gpu.device().synchronize();
  };
  for (int i = 0; i < warmup; ++i) iterate();
  const double t0 = gpu.device().host_now();
  for (int i = 0; i < measured; ++i) iterate();
  return (gpu.device().host_now() - t0) / 1e6 / measured;
}

}  // namespace

int main() {
  std::printf("== why a model beats manual stream tuning (CIFAR10) ==\n\n");
  std::printf("%-10s", "streams");
  const std::vector<int> sweep = {1, 2, 4, 8, 16, 32};
  for (int s : sweep) std::printf("%8d", s);
  std::printf("%10s\n", "GLP4NN");

  for (const auto& props :
       {gpusim::DeviceTable::k40c(), gpusim::DeviceTable::p100(),
        gpusim::DeviceTable::titan_xp()}) {
    std::printf("%-10s", props.name.c_str());
    double best = 1e30;
    int best_s = 1;
    for (int s : sweep) {
      scuda::Context gpu(props);
      std::unique_ptr<kern::KernelDispatcher> d;
      if (s == 1) {
        d = std::make_unique<kern::SerialDispatcher>(gpu);
      } else {
        d = std::make_unique<kern::FixedStreamDispatcher>(gpu, s);
      }
      const double ms = iteration_ms(gpu, *d, 1, 2);
      if (ms < best) {
        best = ms;
        best_s = s;
      }
      std::printf("%8.2f", ms);
    }
    {
      scuda::Context gpu(props);
      glp4nn::Glp4nnEngine engine;
      const double ms = iteration_ms(gpu, engine.scheduler_for(gpu), 1, 2);
      std::printf("%10.2f", ms);
      std::printf("   (manual best: %d streams @ %.2f ms)\n", best_s, best);
    }
  }
  std::printf(
      "\nThe manual optimum differs per GPU; GLP4NN reaches comparable time\n"
      "with no sweep — one profiled iteration per layer, then the model.\n");
  return 0;
}
