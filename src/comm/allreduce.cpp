#include "comm/allreduce.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <limits>
#include <map>

#include "common/check.hpp"

namespace comm {

namespace {

/// Chunk c of a `count`-float bucket split N ways: [lo, hi).
std::pair<std::size_t, std::size_t> chunk_range(std::size_t count, int n,
                                                int c) {
  const auto lo = static_cast<std::size_t>(
      static_cast<std::uint64_t>(count) * static_cast<std::uint64_t>(c) /
      static_cast<std::uint64_t>(n));
  const auto hi = static_cast<std::size_t>(
      static_cast<std::uint64_t>(count) * static_cast<std::uint64_t>(c + 1) /
      static_cast<std::uint64_t>(n));
  return {lo, hi};
}

}  // namespace

BucketPlan plan_buckets(const mc::Net& net, std::size_t bucket_bytes) {
  const auto& params = net.learnable_params();
  // Owning layer of each learnable param: the minimum layer index whose
  // param_blobs() contain it. Backward runs layers in reverse, so the
  // minimum owner is the last layer to accumulate into a shared param.
  std::map<const mc::Blob*, std::size_t> owner;
  const auto& layers = net.layers();
  for (std::size_t li = 0; li < layers.size(); ++li) {
    for (const auto& p : layers[li]->param_blobs()) {
      auto it = owner.find(p.get());
      if (it == owner.end()) {
        owner.emplace(p.get(), li);
      } else {
        it->second = std::min(it->second, li);
      }
    }
  }

  // Param indices sorted by descending owner = backward completion order.
  std::vector<std::size_t> order(params.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t oa = owner.at(params[a].get());
    const std::size_t ob = owner.at(params[b].get());
    if (oa != ob) return oa > ob;
    return a < b;
  });

  // Greedy packing: whole owner-groups per bucket, closing a bucket once
  // it reaches `bucket_bytes` (a group larger than the budget stays one
  // bucket — params of one layer are never split).
  BucketPlan plan;
  Bucket cur;
  std::size_t cur_owner = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t i = order[k];
    const std::size_t o = owner.at(params[i].get());
    const bool group_boundary = cur.params.empty() || o != cur_owner;
    if (group_boundary && !cur.params.empty() &&
        cur.count * sizeof(float) >= bucket_bytes) {
      plan.buckets.push_back(std::move(cur));
      cur = Bucket{};
    }
    if (cur.params.empty()) cur.close_layer = o;
    cur_owner = o;
    cur.close_layer = std::min(cur.close_layer, o);
    cur.params.push_back(i);
    cur.count += params[i]->count();
  }
  if (!cur.params.empty()) plan.buckets.push_back(std::move(cur));
  for (const auto& b : plan.buckets) plan.total_count += b.count;
  return plan;
}

gpusim::SimTime advance_until_event(gpusim::DeviceEngine& dev,
                                    gpusim::EventId ev) {
  int spins = 0;
  while (!dev.event_complete(ev)) {
    const gpusim::SimTime next = dev.peek_next_event();
    GLP_CHECK_MSG(next < std::numeric_limits<gpusim::SimTime>::infinity(),
                  "awaited event can never complete (device idle)");
    dev.advance_device_to(next);
    GLP_CHECK_MSG(++spins < 1000000, "event co-sim loop is spinning");
  }
  return dev.event_time(ev);
}

void reference_ring_allreduce(const std::vector<float*>& grads,
                              std::size_t count) {
  const int n = static_cast<int>(grads.size());
  GLP_REQUIRE(n >= 1, "reference_ring_allreduce needs at least one rank");
  if (n == 1) return;
  for (int c = 0; c < n; ++c) {
    const auto [lo, hi] = chunk_range(count, n, c);
    for (std::size_t k = lo; k < hi; ++k) {
      // The ring's accumulation chain for chunk c: start at rank c, each
      // successor adds its own term on the left (dst += staged is
      // dst + acc with dst the new term) — replicated operation for
      // operation so the sum is bit-identical to the fleet's.
      float acc = grads[static_cast<std::size_t>(c)][k];
      for (int s = 1; s < n; ++s) {
        acc = grads[static_cast<std::size_t>((c + s) % n)][k] + acc;
      }
      for (int d = 0; d < n; ++d) grads[static_cast<std::size_t>(d)][k] = acc;
    }
  }
}

}  // namespace comm
