#include "comm/allreduce.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <limits>
#include <map>

#include "common/check.hpp"

namespace comm {

namespace {

/// Chunk c of a `count`-float bucket split N ways: [lo, hi).
std::pair<std::size_t, std::size_t> chunk_range(std::size_t count, int n,
                                                int c) {
  const auto lo = static_cast<std::size_t>(
      static_cast<std::uint64_t>(count) * static_cast<std::uint64_t>(c) /
      static_cast<std::uint64_t>(n));
  const auto hi = static_cast<std::size_t>(
      static_cast<std::uint64_t>(count) * static_cast<std::uint64_t>(c + 1) /
      static_cast<std::uint64_t>(n));
  return {lo, hi};
}

}  // namespace

BucketPlan plan_buckets(const mc::Net& net, std::size_t bucket_bytes) {
  const auto& params = net.learnable_params();
  // Owning layer of each learnable param: the minimum layer index whose
  // param_blobs() contain it. Backward runs layers in reverse, so the
  // minimum owner is the last layer to accumulate into a shared param.
  std::map<const mc::Blob*, std::size_t> owner;
  const auto& layers = net.layers();
  for (std::size_t li = 0; li < layers.size(); ++li) {
    for (const auto& p : layers[li]->param_blobs()) {
      auto it = owner.find(p.get());
      if (it == owner.end()) {
        owner.emplace(p.get(), li);
      } else {
        it->second = std::min(it->second, li);
      }
    }
  }

  // Param indices sorted by descending owner = backward completion order.
  std::vector<std::size_t> order(params.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t oa = owner.at(params[a].get());
    const std::size_t ob = owner.at(params[b].get());
    if (oa != ob) return oa > ob;
    return a < b;
  });

  // Greedy packing: whole owner-groups per bucket, closing a bucket once
  // it reaches `bucket_bytes` (a group larger than the budget stays one
  // bucket — params of one layer are never split).
  BucketPlan plan;
  Bucket cur;
  std::size_t cur_owner = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t i = order[k];
    const std::size_t o = owner.at(params[i].get());
    const bool group_boundary = cur.params.empty() || o != cur_owner;
    if (group_boundary && !cur.params.empty() &&
        cur.count * sizeof(float) >= bucket_bytes) {
      plan.buckets.push_back(std::move(cur));
      cur = Bucket{};
    }
    if (cur.params.empty()) cur.close_layer = o;
    cur_owner = o;
    cur.close_layer = std::min(cur.close_layer, o);
    cur.params.push_back(i);
    cur.count += params[i]->count();
  }
  if (!cur.params.empty()) plan.buckets.push_back(std::move(cur));
  for (const auto& b : plan.buckets) plan.total_count += b.count;
  return plan;
}

gpusim::SimTime advance_until_event(gpusim::DeviceEngine& dev,
                                    gpusim::EventId ev) {
  int spins = 0;
  while (!dev.event_complete(ev)) {
    const gpusim::SimTime next = dev.peek_next_event();
    GLP_CHECK_MSG(next < std::numeric_limits<gpusim::SimTime>::infinity(),
                  "awaited event can never complete (device idle)");
    dev.advance_device_to(next);
    GLP_CHECK_MSG(++spins < 1000000, "event co-sim loop is spinning");
  }
  return dev.event_time(ev);
}

void reference_ring_allreduce(const std::vector<float*>& grads,
                              std::size_t count) {
  const int n = static_cast<int>(grads.size());
  GLP_REQUIRE(n >= 1, "reference_ring_allreduce needs at least one rank");
  if (n == 1) return;
  for (int c = 0; c < n; ++c) {
    const auto [lo, hi] = chunk_range(count, n, c);
    for (std::size_t k = lo; k < hi; ++k) {
      // The ring's accumulation chain for chunk c: start at rank c, each
      // successor adds its own term on the left (dst += staged is
      // dst + acc with dst the new term) — replicated operation for
      // operation so the sum is bit-identical to the fleet's.
      float acc = grads[static_cast<std::size_t>(c)][k];
      for (int s = 1; s < n; ++s) {
        acc = grads[static_cast<std::size_t>((c + s) % n)][k] + acc;
      }
      for (int d = 0; d < n; ++d) grads[static_cast<std::size_t>(d)][k] = acc;
    }
  }
}

RingAllreduce::RingAllreduce(scuda::Fleet& fleet) : fleet_(&fleet) {
  comm_streams_.reserve(static_cast<std::size_t>(fleet.size()));
  for (int d = 0; d < fleet.size(); ++d) {
    scuda::Context& ctx = fleet.device(d);
    try {
      comm_streams_.push_back(
          scuda::Stream::create(ctx, /*priority=*/0, /*non_blocking=*/true));
    } catch (const scuda::StreamCreateFailed&) {
      // Injected fault: fall back to the default stream. Receives then
      // serialize with compute — timing degrades, numerics are identical.
      comm_streams_.push_back(scuda::Stream(ctx));
    }
  }
  channel_free_.assign(
      static_cast<std::size_t>(fleet.links().channel_count()), 0.0);
}

void RingAllreduce::reset() {
  staging_.clear();
  transfers_.clear();
}

float* RingAllreduce::stage(std::size_t count) {
  staging_.push_back(std::make_unique<float[]>(count));
  return staging_.back().get();
}

std::vector<gpusim::EventId> RingAllreduce::reduce(
    const std::vector<float*>& flat, std::size_t count,
    const std::vector<gpusim::SimTime>& ready_ns, bool numeric) {
  const int n = fleet_->size();
  GLP_REQUIRE(static_cast<int>(flat.size()) == n &&
                  static_cast<int>(ready_ns.size()) == n,
              "reduce: one flat buffer and ready time per device");

  std::vector<gpusim::EventId> done(static_cast<std::size_t>(n));
  if (n == 1) {
    // Nothing to exchange; the ring sum of one rank is the rank itself.
    gpusim::DeviceEngine& dev = fleet_->device(0).device();
    done[0] = dev.record_event_at(
        comm_streams_[0].id(), std::max(ready_ns[0], dev.device_now()));
    return done;
  }

  gpusim::LinkModel& links = fleet_->links();

  // The schedule must never land in a device's past. A profiling-mode
  // scheduler scope synchronizes its device mid-backward, which drives
  // that device's clock beyond the bucket-ready event timestamps; the
  // engine clamps a peer copy's completion to its own clock, so a copy
  // scheduled in the past would run its receive functor AFTER the
  // staging snapshot below reads the destination buffer. Floor every
  // ready time at the owning device's current clock instead — times
  // already in the future are unchanged, so overlap is preserved.
  std::vector<gpusim::SimTime> ready0(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    ready0[static_cast<std::size_t>(d)] =
        std::max(ready_ns[static_cast<std::size_t>(d)],
                 fleet_->device(d).device().device_now());
  }

  // `ready[d]` — time device d's chunk-in-flight became valid: the pack
  // time for step 0, thereafter the end of its previous receive.
  std::vector<gpusim::SimTime> ready = ready0;

  // Marker event trailing device d's most recent receive in its comm
  // stream (kNoMarker before the first wave: step-0 chunks come from the
  // caller's host-side pack, which needs no device progress).
  constexpr gpusim::EventId kNoMarker =
      std::numeric_limits<gpusim::EventId>::max();
  std::vector<gpusim::EventId> recv_marker(static_cast<std::size_t>(n),
                                           kNoMarker);

  // One wave per ring step: reduce-scatter steps 0..n-2, then all-gather
  // steps n-1..2n-3. At step s (< n-1) device i forwards chunk (i-s)%n
  // and its successor accumulates; at all-gather step s' = s-(n-1) it
  // forwards chunk (i+1-s')%n and its successor overwrites.
  for (int step = 0; step < 2 * (n - 1); ++step) {
    const bool gather = step >= n - 1;
    const int s = gather ? step - (n - 1) : step;

    struct Wave {
      std::uint64_t id = 0;
      int src = 0;
      int dst = 0;
      int chunk = 0;
      std::size_t lo = 0, hi = 0;
    };
    std::vector<Wave> wave;
    wave.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Wave w;
      w.src = i;
      w.dst = (i + 1) % n;
      w.chunk = gather ? (i + 1 - s + n) % n : (i - s + n) % n;
      std::tie(w.lo, w.hi) = chunk_range(count, n, w.chunk);
      const std::size_t bytes = (w.hi - w.lo) * sizeof(float);
      // Request = data ready on the source, the receiver's own bucket
      // ready (it must hold its local term to accumulate into), and the
      // channel free of the previous wave (per-channel FIFO).
      const int ch = links.channel_for(w.src, w.dst);
      gpusim::SimTime req = std::max(ready[static_cast<std::size_t>(w.src)],
                                     channel_free_[static_cast<std::size_t>(ch)]);
      if (!gather) {
        req = std::max(req, ready0[static_cast<std::size_t>(w.dst)]);
      }
      w.id = links.begin(w.src, w.dst, bytes, req);
      wave.push_back(w);
    }
    links.finalize_all();
    std::vector<gpusim::TransferRecord> recs = links.take_completed();
    GLP_CHECK(recs.size() == wave.size());

    std::vector<gpusim::SimTime> next_ready = ready;
    for (const Wave& w : wave) {
      const gpusim::TransferRecord* rec = nullptr;
      for (const auto& r : recs) {
        if (r.id == w.id) {
          rec = &r;
          break;
        }
      }
      GLP_CHECK(rec != nullptr);
      // Max, not assignment: on a shared channel (kPcieHost) the whole
      // wave lands on one channel and its transfers end at different
      // times, so the channel is only free once the LATEST of them
      // completes — otherwise the next wave's finalize batch would
      // overlap this wave's tail and oversubscribe the link.
      channel_free_[static_cast<std::size_t>(rec->channel)] = std::max(
          channel_free_[static_cast<std::size_t>(rec->channel)], rec->end_ns);

      const std::size_t chunk_count = w.hi - w.lo;
      gpusim::DeviceEngine::WorkFn work;
      if (numeric && chunk_count > 0) {
        // Snapshot the source chunk at issue time. After step 0 the
        // staged value is produced by the source's previous receive, so
        // drive the source device past that receive's marker event first.
        // Event-based (not a time-based advance): an op can complete
        // later than the link schedule says — a fallback comm stream
        // serializes receives behind the default-stream barrier — and
        // the snapshot must chase the functor, wherever it lands.
        if (recv_marker[static_cast<std::size_t>(w.src)] != kNoMarker) {
          advance_until_event(fleet_->device(w.src).device(),
                              recv_marker[static_cast<std::size_t>(w.src)]);
        }
        float* staged = stage(chunk_count);
        std::memcpy(staged, flat[static_cast<std::size_t>(w.src)] + w.lo,
                    chunk_count * sizeof(float));
        float* dst = flat[static_cast<std::size_t>(w.dst)] + w.lo;
        if (gather) {
          work = [dst, staged, chunk_count] {
            std::memcpy(dst, staged, chunk_count * sizeof(float));
          };
        } else {
          work = [dst, staged, chunk_count] {
            for (std::size_t k = 0; k < chunk_count; ++k) dst[k] += staged[k];
          };
        }
      }
      gpusim::DeviceEngine& dst_dev = fleet_->device(w.dst).device();
      dst_dev.memcpy_peer(
          comm_streams_[static_cast<std::size_t>(w.dst)].id(),
          (w.hi - w.lo) * sizeof(float), w.src, rec->start_ns, rec->end_ns,
          std::move(work));
      // Marker right behind the receive in the comm stream's FIFO: it
      // completes when the receive's functor has actually run, which is
      // what the next wave's snapshot (and the caller's unpack) gate on.
      recv_marker[static_cast<std::size_t>(w.dst)] = dst_dev.record_event_at(
          comm_streams_[static_cast<std::size_t>(w.dst)].id(), rec->end_ns);
      next_ready[static_cast<std::size_t>(w.dst)] = rec->end_ns;
    }
    ready = std::move(next_ready);
    transfers_.insert(transfers_.end(),
                      std::make_move_iterator(recs.begin()),
                      std::make_move_iterator(recs.end()));
  }

  // In a ring every device receives during the final wave, so its last
  // marker doubles as the bucket-done event.
  for (int d = 0; d < n; ++d) {
    GLP_CHECK(recv_marker[static_cast<std::size_t>(d)] != kNoMarker);
    done[static_cast<std::size_t>(d)] =
        recv_marker[static_cast<std::size_t>(d)];
  }
  return done;
}

}  // namespace comm
