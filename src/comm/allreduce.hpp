#pragma once
// Bucketed ring all-reduce over a simulated fleet's interconnect.
//
// The classic two-phase ring runs over N devices: N-1 reduce-scatter
// steps (each device forwards a chunk to its ring successor, which
// accumulates it into its local gradient) followed by N-1 all-gather
// steps (the fully reduced chunks circulate and overwrite). Every
// transfer is timed on the fleet's LinkModel — PCIe fleets contend on
// the shared host channel, NVLink rings use dedicated per-neighbour
// links — and materializes as a memcpy_peer op on the *destination*
// device's communication stream, where it overlaps default-stream
// compute through the ordinary event-horizon machinery.
//
// Numerics are deterministic by construction: chunk c's value is the
// single accumulation chain f[c] → +f[c+1] → ... → +f[c+N-1] (indices
// mod N, fixed association), finished on device (c+N-1)%N and then
// copied verbatim. reference_ring_allreduce() replays the identical
// float operations on the host, which is what makes the fleet
// differential suite's bit-exactness contract checkable.
//
// Timing discipline is wave-synchronous: the N transfers of one ring
// step are requested together and finalized together, and each channel
// carries at most one wave at a time (per-channel FIFO across waves —
// the destination comm stream would serialize the receives anyway).
// Under this issuance order the LinkModel's finalize-on-quiescence
// contention resolution is exact.

#include <cstddef>
#include <memory>
#include <vector>

#include "gpusim/interconnect.hpp"
#include "minicaffe/net.hpp"
#include "simcuda/fleet.hpp"

namespace comm {

/// One gradient bucket: a contiguous run of learnable parameters that
/// finish their backward accumulation together.
struct Bucket {
  std::vector<std::size_t> params;  ///< indices into net.learnable_params()
  std::size_t count = 0;            ///< total floats in the bucket
  /// Layer index (spec order) whose backward completes the bucket: the
  /// minimum owning-layer index over the bucket's params. The backward
  /// per-layer hook fires bucket-ready events when it reaches this layer.
  std::size_t close_layer = 0;
};

/// Buckets in backward completion order (bucket 0 closes first).
struct BucketPlan {
  std::vector<Bucket> buckets;
  std::size_t total_count = 0;  ///< floats across all buckets
};

/// Partition a net's learnable parameters into buckets of at least
/// `bucket_bytes`, ordered by backward completion. Parameters owned by
/// the same layer are never split across buckets (shared parameters are
/// owned by their *minimum* layer index — the last to accumulate in
/// backward order).
BucketPlan plan_buckets(const mc::Net& net, std::size_t bucket_bytes);

/// Drive `dev` forward until `ev` has completed and return its
/// timestamp. Unlike synchronize_event this never joins the host clock
/// to the device — it is the fleet co-simulator peeking, not the
/// dispatch thread blocking.
gpusim::SimTime advance_until_event(gpusim::DeviceEngine& dev,
                                    gpusim::EventId ev);

/// Host replica of the fleet reduction: applies the exact per-chunk
/// accumulation chains RingAllreduce produces to N gradient arrays of
/// `count` floats, leaving every array holding the (unscaled) ring sum.
void reference_ring_allreduce(const std::vector<float*>& grads,
                              std::size_t count);

class RingAllreduce {
 public:
  /// Creates one communication stream per device: non-blocking (the
  /// cudaStreamNonBlocking analog) so receives are exempt from the
  /// default-stream barrier and overlap compute. When stream creation is
  /// fault-injected the device falls back to its default stream —
  /// numerics are unaffected, communication merely stops overlapping.
  explicit RingAllreduce(scuda::Fleet& fleet);

  /// Discard staging buffers from the previous iteration. Call only
  /// after every device has synchronized past the iteration's receives
  /// (their work functors borrow the staging memory).
  void reset();

  /// Reduce one bucket: `flat[d]` is device d's packed gradient of
  /// `count` floats, valid once `ready[d]` (an event on d's default
  /// stream) completes; `ready_ns[d]` is that event's timestamp. Queues
  /// every receive on the comm streams and returns per-device events
  /// that complete when the device holds the full ring sum. When
  /// `numeric` is false only timing is modelled (no host math).
  std::vector<gpusim::EventId> reduce(const std::vector<float*>& flat,
                                      std::size_t count,
                                      const std::vector<gpusim::SimTime>& ready_ns,
                                      bool numeric);

  gpusim::StreamId comm_stream(int d) const {
    return comm_streams_[static_cast<std::size_t>(d)].id();
  }
  /// True when device d's comm stream fell back to the default stream.
  bool fallback(int d) const {
    return comm_streams_[static_cast<std::size_t>(d)].is_default();
  }

  /// Every finalized TransferRecord since the last reset(), in completion
  /// order — the fleet race-checker's input (check_fleet_transfers).
  const std::vector<gpusim::TransferRecord>& transfers() const {
    return transfers_;
  }

 private:
  float* stage(std::size_t count);

  scuda::Fleet* fleet_;
  std::vector<scuda::Stream> comm_streams_;
  /// Link-channel availability: a channel carries one wave at a time.
  std::vector<gpusim::SimTime> channel_free_;
  /// Finalized transfers since the last reset(), for auditing.
  std::vector<gpusim::TransferRecord> transfers_;
  /// Snapshot buffers owned until reset(); receive functors read them at
  /// simulated completion time.
  std::vector<std::unique_ptr<float[]>> staging_;
};

}  // namespace comm
