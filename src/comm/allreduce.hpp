#pragma once
// Gradient bucketing and shared fleet co-simulation helpers for the
// collective engine (comm/collectives.hpp), plus the classic ring
// all-reduce host oracle.
//
// reference_ring_allreduce replays the two-phase ring's accumulation
// chains on the host: chunk c's value is the single chain
// f[c] → +f[c+1] → ... → +f[c+N-1] (indices mod N, fixed association),
// finished on device (c+N-1)%N and then copied verbatim. It is
// bit-identical to replaying the ring wave program with
// reference_collective_allreduce (dst += staged applies the new term on
// the left, exactly as the chain does) and is kept as the direct,
// program-free spelling of the PR-9 determinism contract.

#include <cstddef>
#include <memory>
#include <vector>

#include "gpusim/interconnect.hpp"
#include "minicaffe/net.hpp"
#include "simcuda/fleet.hpp"

namespace comm {

/// One gradient bucket: a contiguous run of learnable parameters that
/// finish their backward accumulation together.
struct Bucket {
  std::vector<std::size_t> params;  ///< indices into net.learnable_params()
  std::size_t count = 0;            ///< total floats in the bucket
  /// Layer index (spec order) whose backward completes the bucket: the
  /// minimum owning-layer index over the bucket's params. The backward
  /// per-layer hook fires bucket-ready events when it reaches this layer.
  std::size_t close_layer = 0;
};

/// Buckets in backward completion order (bucket 0 closes first).
struct BucketPlan {
  std::vector<Bucket> buckets;
  std::size_t total_count = 0;  ///< floats across all buckets
};

/// Partition a net's learnable parameters into buckets of at least
/// `bucket_bytes`, ordered by backward completion. Parameters owned by
/// the same layer are never split across buckets (shared parameters are
/// owned by their *minimum* layer index — the last to accumulate in
/// backward order).
BucketPlan plan_buckets(const mc::Net& net, std::size_t bucket_bytes);

/// Drive `dev` forward until `ev` has completed and return its
/// timestamp. Unlike synchronize_event this never joins the host clock
/// to the device — it is the fleet co-simulator peeking, not the
/// dispatch thread blocking.
gpusim::SimTime advance_until_event(gpusim::DeviceEngine& dev,
                                    gpusim::EventId ev);

/// Host replica of the classic fleet reduction: applies the exact
/// per-chunk accumulation chains the ring wave program produces to N
/// gradient arrays of `count` floats, leaving every array holding the
/// (unscaled) ring sum.
void reference_ring_allreduce(const std::vector<float*>& grads,
                              std::size_t count);

}  // namespace comm
