#include "comm/collectives.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <limits>

#include "comm/wire.hpp"
#include "common/check.hpp"

namespace comm {

namespace {

/// Chunk c of a `count`-element range split n ways: [lo, hi).
std::pair<std::size_t, std::size_t> chunk_range(std::size_t count, int n,
                                                int c) {
  const auto lo = static_cast<std::size_t>(
      static_cast<std::uint64_t>(count) * static_cast<std::uint64_t>(c) /
      static_cast<std::uint64_t>(n));
  const auto hi = static_cast<std::size_t>(
      static_cast<std::uint64_t>(count) * static_cast<std::uint64_t>(c + 1) /
      static_cast<std::uint64_t>(n));
  return {lo, hi};
}

void push_transfer(CollectiveProgram& prog, int src, int dst, std::size_t lo,
                   std::size_t hi, bool accumulate, int wave) {
  if (hi <= lo) return;  // never emit empty-segment transfers
  CollectiveTransfer t;
  t.src = src;
  t.dst = dst;
  t.lo = lo;
  t.hi = hi;
  t.accumulate = accumulate;
  t.wave = wave;
  prog.transfers.push_back(t);
}

/// Ring reduce-scatter over `devs` on [base, base+cnt): g-1 waves. At
/// step s member i forwards chunk (i-s)%g to its successor, which
/// accumulates. Leaves member (c+g-1)%g owning chunk c's full sum.
void append_ring_rs(CollectiveProgram& prog, const std::vector<int>& devs,
                    std::size_t base, std::size_t cnt, int& wave) {
  const int g = static_cast<int>(devs.size());
  for (int s = 0; s < g - 1; ++s, ++wave) {
    for (int i = 0; i < g; ++i) {
      const int chunk = (i - s + g) % g;
      const auto [lo, hi] = chunk_range(cnt, g, chunk);
      push_transfer(prog, devs[static_cast<std::size_t>(i)],
                    devs[static_cast<std::size_t>((i + 1) % g)], base + lo,
                    base + hi, /*accumulate=*/true, wave);
    }
  }
}

/// Ring all-gather over `devs` on [base, base+cnt): g-1 waves. At step s
/// member i forwards final chunk (i+1-s)%g (owner mapping matches
/// append_ring_rs) and its successor overwrites.
void append_ring_ag(CollectiveProgram& prog, const std::vector<int>& devs,
                    std::size_t base, std::size_t cnt, int& wave) {
  const int g = static_cast<int>(devs.size());
  for (int s = 0; s < g - 1; ++s, ++wave) {
    for (int i = 0; i < g; ++i) {
      const int chunk = (i + 1 - s + 2 * g) % g;
      const auto [lo, hi] = chunk_range(cnt, g, chunk);
      push_transfer(prog, devs[static_cast<std::size_t>(i)],
                    devs[static_cast<std::size_t>((i + 1) % g)], base + lo,
                    base + hi, /*accumulate=*/false, wave);
    }
  }
}

/// Recursive halving/doubling all-reduce over `devs` on [base,
/// base+cnt). Non-power-of-two sizes fold: the r = m - p extra members
/// first add their whole vector into a core member (one wave) and
/// receive the finished vector at the end (one wave); the p-member core
/// runs log2(p) halving waves (accumulate) and log2(p) doubling waves
/// (overwrite).
void append_tree(CollectiveProgram& prog, const std::vector<int>& devs,
                 std::size_t base, std::size_t cnt, int& wave) {
  const int m = static_cast<int>(devs.size());
  GLP_CHECK(m >= 2);
  int p = 1;
  while (p * 2 <= m) p *= 2;
  const int r = m - p;

  if (r > 0) {
    for (int e = 0; e < r; ++e) {
      push_transfer(prog, devs[static_cast<std::size_t>(p + e)],
                    devs[static_cast<std::size_t>(e)], base, base + cnt,
                    /*accumulate=*/true, wave);
    }
    ++wave;
  }

  // Per-core-member owned range; partners always hold identical ranges
  // (they share every earlier round's keep-low/keep-high decision).
  std::vector<std::size_t> lo(static_cast<std::size_t>(p), base);
  std::vector<std::size_t> hi(static_cast<std::size_t>(p), base + cnt);
  int rounds = 0;
  for (int q = p; q > 1; q /= 2) ++rounds;

  std::vector<int> dist_of_round(static_cast<std::size_t>(rounds));
  for (int k = 0; k < rounds; ++k) dist_of_round[static_cast<std::size_t>(k)] = p >> (k + 1);

  for (int k = 0; k < rounds; ++k, ++wave) {
    const int dist = dist_of_round[static_cast<std::size_t>(k)];
    for (int i = 0; i < p; ++i) {
      const int j = i ^ dist;
      if (i > j) continue;
      const std::size_t a = static_cast<std::size_t>(i);
      const std::size_t b = static_cast<std::size_t>(j);
      const std::size_t mid = lo[a] + (hi[a] - lo[a]) / 2;
      // Lower partner keeps [lo, mid), upper keeps [mid, hi).
      push_transfer(prog, devs[a], devs[b], mid, hi[a], /*accumulate=*/true,
                    wave);
      push_transfer(prog, devs[b], devs[a], lo[a], mid, /*accumulate=*/true,
                    wave);
      hi[a] = mid;
      lo[b] = mid;
    }
  }
  for (int k = rounds - 1; k >= 0; --k, ++wave) {
    const int dist = dist_of_round[static_cast<std::size_t>(k)];
    for (int i = 0; i < p; ++i) {
      const int j = i ^ dist;
      if (i > j) continue;
      const std::size_t a = static_cast<std::size_t>(i);
      const std::size_t b = static_cast<std::size_t>(j);
      push_transfer(prog, devs[a], devs[b], lo[a], hi[a],
                    /*accumulate=*/false, wave);
      push_transfer(prog, devs[b], devs[a], lo[b], hi[b],
                    /*accumulate=*/false, wave);
      const std::size_t nlo = std::min(lo[a], lo[b]);
      const std::size_t nhi = std::max(hi[a], hi[b]);
      lo[a] = lo[b] = nlo;
      hi[a] = hi[b] = nhi;
    }
  }

  if (r > 0) {
    for (int e = 0; e < r; ++e) {
      push_transfer(prog, devs[static_cast<std::size_t>(e)],
                    devs[static_cast<std::size_t>(p + e)], base, base + cnt,
                    /*accumulate=*/false, wave);
    }
    ++wave;
  }
}

/// Uncovered sub-intervals of one transfer's range while its producer
/// scan walks backward through the program. A producer claims the part
/// of its write that intersects a gap; the scan for that device stops
/// once no gaps remain.
struct GapSet {
  std::vector<std::pair<std::size_t, std::size_t>> gaps;

  explicit GapSet(std::size_t lo, std::size_t hi) { gaps.push_back({lo, hi}); }
  bool empty() const { return gaps.empty(); }

  /// True iff [lo, hi) intersects a remaining gap; the intersection is
  /// carved out of the gap set.
  bool claim(std::size_t lo, std::size_t hi) {
    bool hit = false;
    std::vector<std::pair<std::size_t, std::size_t>> next;
    next.reserve(gaps.size() + 1);
    for (const auto& g : gaps) {
      if (lo >= g.second || hi <= g.first) {
        next.push_back(g);
        continue;
      }
      hit = true;
      if (g.first < lo) next.push_back({g.first, lo});
      if (hi < g.second) next.push_back({hi, g.second});
    }
    gaps.swap(next);
    return hit;
  }
};

/// Fills src_deps/dst_deps: walking backward from each transfer, every
/// earlier transfer (same piece) that wrote a not-yet-claimed part of
/// this transfer's range on its source (the payload's producers) or
/// destination (the value the functor accumulates into / must not
/// overwrite early) becomes a dependency. Program order is wave-major,
/// so "earlier" is causal order. Each scan stops once the newest
/// producers jointly cover the range: any older writer to a covered
/// sub-range is itself a (transitive) dependency of the producer that
/// claimed it, so waiting for the claimants orders the whole history.
void compute_deps(std::vector<CollectiveTransfer>& ts, std::size_t begin,
                  std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    CollectiveTransfer& t = ts[i];
    GapSet src_gaps(t.lo, t.hi);
    GapSet dst_gaps(t.lo, t.hi);
    for (std::size_t jj = i; jj > begin; --jj) {
      const std::size_t j = jj - 1;
      const CollectiveTransfer& w = ts[j];
      if (w.lo >= t.hi || w.hi <= t.lo) continue;  // disjoint ranges
      if (!src_gaps.empty() && w.dst == t.src && src_gaps.claim(w.lo, w.hi)) {
        t.src_deps.push_back(static_cast<std::int32_t>(j));
      }
      if (!dst_gaps.empty() && w.dst == t.dst && dst_gaps.claim(w.lo, w.hi)) {
        t.dst_deps.push_back(static_cast<std::int32_t>(j));
      }
      if (src_gaps.empty() && dst_gaps.empty()) break;
    }
  }
}

}  // namespace

const char* to_string(CollectiveAlgo algo) {
  switch (algo) {
    case CollectiveAlgo::kRing: return "ring";
    case CollectiveAlgo::kTree: return "tree";
    case CollectiveAlgo::kHier: return "hier";
  }
  return "?";
}

const char* to_string(CollectiveChoice choice) {
  switch (choice) {
    case CollectiveChoice::kAuto: return "auto";
    case CollectiveChoice::kRing: return "ring";
    case CollectiveChoice::kTree: return "tree";
    case CollectiveChoice::kHier: return "hier";
  }
  return "?";
}

const char* to_string(WireFormat wire) {
  return wire == WireFormat::kFp16 ? "fp16" : "fp32";
}

std::optional<CollectiveChoice> parse_collective(const std::string& s) {
  if (s == "auto") return CollectiveChoice::kAuto;
  if (s == "ring") return CollectiveChoice::kRing;
  if (s == "tree") return CollectiveChoice::kTree;
  if (s == "hier") return CollectiveChoice::kHier;
  return std::nullopt;
}

bool CollectiveCostModel::feasible(CollectiveAlgo algo, int devices,
                                   gpusim::LinkTopology topology) {
  switch (algo) {
    case CollectiveAlgo::kRing:
      return devices >= 1;
    case CollectiveAlgo::kTree:
      // Halving/doubling pairs non-neighbour devices; only the shared
      // PCIe channel carries arbitrary pairs.
      return topology == gpusim::LinkTopology::kPcieHost && devices >= 2;
    case CollectiveAlgo::kHier:
      return topology == gpusim::LinkTopology::kPcieHost &&
             hier_group(devices) > 0;
  }
  return false;
}

int CollectiveCostModel::hier_group(int n) {
  if (n < 4) return 0;
  for (int f = 2; f * f <= n; ++f) {
    if (n % f == 0) return f;
  }
  return 0;  // prime: no two-level split
}

double CollectiveCostModel::predict_ns(CollectiveAlgo algo, std::size_t count,
                                       WireFormat wire) const {
  if (!feasible(algo, devices, topology)) {
    return std::numeric_limits<double>::infinity();
  }
  if (devices <= 1 || count == 0) return 0.0;
  const CollectiveProgram prog = build_collective_program(algo, devices, count);
  if (prog.transfers.empty()) return 0.0;
  const std::size_t eb = wire_bytes(wire);
  const double bw = props.bytes_per_ns();
  // Wave-synchronous accounting: per wave, one latency term plus the
  // serialized bytes of the busiest channel (PCIe: all transfers share
  // channel 0; NVLink: per-neighbour channels drain concurrently).
  double total = 0.0;
  int w = 0;
  std::size_t i = 0;
  while (i < prog.transfers.size()) {
    std::size_t wave_end = i;
    std::vector<std::size_t> per_channel;
    std::size_t shared = 0;
    while (wave_end < prog.transfers.size() &&
           prog.transfers[wave_end].wave == prog.transfers[i].wave) {
      const CollectiveTransfer& t = prog.transfers[wave_end];
      const std::size_t bytes = (t.hi - t.lo) * eb;
      if (topology == gpusim::LinkTopology::kPcieHost) {
        shared += bytes;
      } else {
        // One directed channel per (src -> neighbour) pair.
        per_channel.push_back(bytes);
      }
      ++wave_end;
    }
    double busiest = static_cast<double>(shared);
    for (std::size_t b : per_channel)
      busiest = std::max(busiest, static_cast<double>(b));
    total += props.latency_ns + busiest / bw;
    ++w;
    i = wave_end;
  }
  (void)w;
  return total;
}

CollectiveAlgo CollectiveCostModel::choose(std::size_t count,
                                           WireFormat wire) const {
  CollectiveAlgo best = CollectiveAlgo::kRing;
  double best_ns = predict_ns(best, count, wire);
  for (CollectiveAlgo algo : {CollectiveAlgo::kTree, CollectiveAlgo::kHier}) {
    const double ns = predict_ns(algo, count, wire);
    if (ns < best_ns) {
      best = algo;
      best_ns = ns;
    }
  }
  return best;
}

CollectiveProgram build_collective_program(CollectiveAlgo algo, int devices,
                                           std::size_t count) {
  CollectiveProgram prog;
  prog.algo = algo;
  prog.devices = devices;
  prog.count = count;
  if (devices <= 1 || count == 0) return prog;

  std::vector<int> all(static_cast<std::size_t>(devices));
  for (int d = 0; d < devices; ++d) all[static_cast<std::size_t>(d)] = d;

  int wave = 0;
  switch (algo) {
    case CollectiveAlgo::kRing: {
      append_ring_rs(prog, all, 0, count, wave);
      append_ring_ag(prog, all, 0, count, wave);
      break;
    }
    case CollectiveAlgo::kTree: {
      append_tree(prog, all, 0, count, wave);
      break;
    }
    case CollectiveAlgo::kHier: {
      const int g = CollectiveCostModel::hier_group(devices);
      GLP_CHECK_MSG(g > 0, "hier needs composite device count >= 4");
      const int groups = devices / g;
      // Phase 1: intra-group ring reduce-scatter, all groups in the
      // same waves.
      const int wave0 = wave;
      for (int q = 0; q < groups; ++q) {
        std::vector<int> group(static_cast<std::size_t>(g));
        for (int m = 0; m < g; ++m)
          group[static_cast<std::size_t>(m)] = q * g + m;
        int w = wave0;
        append_ring_rs(prog, group, 0, count, w);
        wave = w;
      }
      // Phase 2: per chunk, tree all-reduce among its per-group owners
      // (member (c+g-1)%g of each group), concurrently in shared waves.
      const int wave1 = wave;
      for (int c = 0; c < g; ++c) {
        const auto [lo, hi] = chunk_range(count, g, c);
        if (hi <= lo) continue;
        std::vector<int> owners(static_cast<std::size_t>(groups));
        for (int q = 0; q < groups; ++q)
          owners[static_cast<std::size_t>(q)] = q * g + (c + g - 1) % g;
        int w = wave1;
        append_tree(prog, owners, lo, hi - lo, w);
        wave = std::max(wave, w);
      }
      // Phase 3: intra-group ring all-gather (owner mapping matches
      // phase 1's reduce-scatter).
      const int wave2 = wave;
      for (int q = 0; q < groups; ++q) {
        std::vector<int> group(static_cast<std::size_t>(g));
        for (int m = 0; m < g; ++m)
          group[static_cast<std::size_t>(m)] = q * g + m;
        int w = wave2;
        append_ring_ag(prog, group, 0, count, w);
        wave = w;
      }
      // Transfers were appended group-major; re-establish wave-major
      // program order (stable: preserves intra-wave determinism).
      std::stable_sort(prog.transfers.begin(), prog.transfers.end(),
                       [](const CollectiveTransfer& a,
                          const CollectiveTransfer& b) {
                         return a.wave < b.wave;
                       });
      break;
    }
  }
  prog.waves = wave;
  compute_deps(prog.transfers, 0, prog.transfers.size());
  return prog;
}

CollectiveProgram plan_collective(int devices, gpusim::LinkTopology topology,
                                  const gpusim::LinkProps& props,
                                  const CollectiveOptions& options,
                                  std::size_t count) {
  CollectiveCostModel cost{devices, topology, props};
  CollectiveAlgo algo = CollectiveAlgo::kRing;
  switch (options.collective) {
    case CollectiveChoice::kAuto:
      algo = cost.choose(count, options.wire);
      break;
    case CollectiveChoice::kRing:
      algo = CollectiveAlgo::kRing;
      break;
    case CollectiveChoice::kTree:
      algo = CollectiveAlgo::kTree;
      break;
    case CollectiveChoice::kHier:
      algo = CollectiveAlgo::kHier;
      break;
  }
  // An explicitly requested but infeasible algorithm (tree/hier on the
  // NVLink ring, hier on prime/small fleets) degrades to the best
  // feasible one instead of failing — the CLI stays topology-agnostic.
  if (!CollectiveCostModel::feasible(algo, devices, topology)) {
    algo = cost.choose(count, options.wire);
  }

  // Chunk pipelining: split into pieces of at most pipeline_chunk_bytes
  // wire bytes, each an independent program over a disjoint range.
  int pieces = 1;
  if (options.pipeline_chunk_bytes > 0 && count > 0) {
    const std::size_t total = count * wire_bytes(options.wire);
    pieces = static_cast<int>(
        (total + options.pipeline_chunk_bytes - 1) / options.pipeline_chunk_bytes);
    pieces = std::max(1, std::min<int>(pieces, static_cast<int>(
                                                   std::min<std::size_t>(
                                                       count, 64))));
  }

  if (pieces == 1) {
    CollectiveProgram prog = build_collective_program(algo, devices, count);
    prog.pieces = 1;
    return prog;
  }

  CollectiveProgram merged;
  merged.algo = algo;
  merged.devices = devices;
  merged.count = count;
  merged.pieces = pieces;
  for (int j = 0; j < pieces; ++j) {
    const auto [plo, phi] = chunk_range(count, pieces, j);
    if (phi <= plo) continue;
    CollectiveProgram piece = build_collective_program(algo, devices, phi - plo);
    const int offset = static_cast<int>(merged.transfers.size());
    for (CollectiveTransfer t : piece.transfers) {
      t.lo += plo;
      t.hi += plo;
      t.piece = j;
      for (std::int32_t& d : t.src_deps) d += offset;
      for (std::int32_t& d : t.dst_deps) d += offset;
      merged.transfers.push_back(t);
    }
    merged.waves = std::max(merged.waves, piece.waves);
  }
  return merged;
}

void reference_collective_allreduce(const CollectiveProgram& program,
                                    const std::vector<float*>& grads,
                                    std::size_t count, WireFormat wire) {
  GLP_REQUIRE(static_cast<int>(grads.size()) == program.devices,
              "reference replay: one gradient array per device");
  GLP_REQUIRE(count == program.count, "reference replay: count mismatch");
  const bool fp16 = wire == WireFormat::kFp16;
  std::vector<float> staged;
  for (const CollectiveTransfer& t : program.transfers) {
    float* src = grads[static_cast<std::size_t>(t.src)];
    float* dst = grads[static_cast<std::size_t>(t.dst)];
    const std::size_t n = t.hi - t.lo;
    staged.resize(n);
    if (fp16 && !t.accumulate) {
      // Quantize the fully-reduced source range in place before its
      // all-gather send (idempotent on re-sends), exactly as the
      // scheduled executor does — every replica ends bit-identical.
      for (std::size_t k = 0; k < n; ++k)
        src[t.lo + k] = quantize_fp16(src[t.lo + k]);
    }
    for (std::size_t k = 0; k < n; ++k) {
      staged[k] = fp16 ? quantize_fp16(src[t.lo + k]) : src[t.lo + k];
    }
    if (t.accumulate) {
      for (std::size_t k = 0; k < n; ++k) dst[t.lo + k] += staged[k];
    } else {
      for (std::size_t k = 0; k < n; ++k) dst[t.lo + k] = staged[k];
    }
  }
}

void reference_tree_allreduce(const std::vector<float*>& grads,
                              std::size_t count) {
  const int n = static_cast<int>(grads.size());
  GLP_REQUIRE(n >= 1, "reference_tree_allreduce needs at least one rank");
  if (n == 1) return;
  const CollectiveProgram prog =
      build_collective_program(CollectiveAlgo::kTree, n, count);
  reference_collective_allreduce(prog, grads, count, WireFormat::kFp32);
}

void reference_hier_allreduce(const std::vector<float*>& grads,
                              std::size_t count) {
  const int n = static_cast<int>(grads.size());
  GLP_REQUIRE(CollectiveCostModel::hier_group(n) > 0,
              "reference_hier_allreduce needs composite n >= 4");
  const CollectiveProgram prog =
      build_collective_program(CollectiveAlgo::kHier, n, count);
  reference_collective_allreduce(prog, grads, count, WireFormat::kFp32);
}

CollectiveEngine::CollectiveEngine(scuda::Fleet& fleet,
                                   CollectiveOptions options)
    : fleet_(&fleet), options_(options) {
  lane_count_ = std::max(1, options_.lanes);
  cost_model_ = CollectiveCostModel{fleet.size(), fleet.links().topology(),
                                    fleet.links().props()};
  lanes_.reserve(static_cast<std::size_t>(fleet.size() * lane_count_));
  for (int d = 0; d < fleet.size(); ++d) {
    scuda::Context& ctx = fleet.device(d);
    for (int l = 0; l < lane_count_; ++l) {
      try {
        lanes_.push_back(
            scuda::Stream::create(ctx, /*priority=*/0, /*non_blocking=*/true));
      } catch (const scuda::StreamCreateFailed&) {
        // Injected fault: fall back to the default stream for this lane.
        // Receives then serialize with compute — timing degrades,
        // numerics are identical for every algorithm.
        lanes_.push_back(scuda::Stream(ctx));
      }
    }
  }
  channel_free_.assign(
      static_cast<std::size_t>(fleet.links().channel_count()), 0.0);
}

bool CollectiveEngine::fallback(int d) const {
  for (int l = 0; l < lane_count_; ++l) {
    if (lanes_[static_cast<std::size_t>(d * lane_count_ + l)].is_default())
      return true;
  }
  return false;
}

const CollectiveProgram& CollectiveEngine::program_for(std::size_t count) {
  for (auto& [c, prog] : programs_) {
    if (c == count) return prog;
  }
  programs_.emplace_back(
      count, plan_collective(fleet_->size(), fleet_->links().topology(),
                             fleet_->links().props(), options_, count));
  return programs_.back().second;
}

CollectiveAlgo CollectiveEngine::algo_for(std::size_t count) {
  return program_for(count).algo;
}

void CollectiveEngine::reset() {
  staging_f32_.clear();
  staging_f16_.clear();
  transfers_.clear();
}

float* CollectiveEngine::stage_f32(std::size_t count) {
  staging_f32_.push_back(std::make_unique<float[]>(count));
  return staging_f32_.back().get();
}

std::uint16_t* CollectiveEngine::stage_f16(std::size_t count) {
  staging_f16_.push_back(std::make_unique<std::uint16_t[]>(count));
  return staging_f16_.back().get();
}

std::vector<gpusim::EventId> CollectiveEngine::reduce(
    const std::vector<float*>& flat, std::size_t count,
    const std::vector<gpusim::SimTime>& ready_ns, bool numeric) {
  const int n = fleet_->size();
  GLP_REQUIRE(static_cast<int>(flat.size()) == n &&
                  static_cast<int>(ready_ns.size()) == n,
              "reduce: one flat buffer and ready time per device");

  // The schedule must never land in a device's past. A profiling-mode
  // scheduler scope synchronizes its device mid-backward, which drives
  // that device's clock beyond the bucket-ready event timestamps; the
  // engine clamps a peer copy's completion to its own clock, so a copy
  // scheduled in the past would run its receive functor AFTER the
  // staging snapshot below reads the destination buffer. Floor every
  // ready time at the owning device's current clock instead — times
  // already in the future are unchanged, so overlap is preserved.
  std::vector<gpusim::SimTime> ready0(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    ready0[static_cast<std::size_t>(d)] =
        std::max(ready_ns[static_cast<std::size_t>(d)],
                 fleet_->device(d).device().device_now());
  }

  std::vector<gpusim::EventId> done(static_cast<std::size_t>(n));
  auto idle_done = [&](int d) {
    // Nothing to receive (1-device fleet, empty bucket, or a bucket so
    // small this device's segments are all empty): done the moment the
    // local gradient is ready. No zero-byte link messages are issued.
    gpusim::DeviceEngine& dev = fleet_->device(d).device();
    return dev.record_event_at(lane_stream(d, 0),
                               std::max(ready0[static_cast<std::size_t>(d)],
                                        dev.device_now()));
  };

  const CollectiveProgram& prog = program_for(count);
  if (n == 1 || prog.transfers.empty()) {
    for (int d = 0; d < n; ++d) done[static_cast<std::size_t>(d)] = idle_done(d);
    return done;
  }

  gpusim::LinkModel& links = fleet_->links();
  const std::size_t eb = wire_bytes(options_.wire);
  const std::size_t T = prog.transfers.size();

  // Register the whole program as one dependency-aware batch: a
  // transfer's request is floored by its source's pack time (first
  // sends), the receiver's pack time (accumulates read the local term),
  // the cross-bucket channel FIFO, and — via begin_after — the
  // completion of the transfers that produced its payload and its
  // destination value. Within the batch, waves of independent pipeline
  // pieces overlap freely under exact PS.
  std::vector<std::uint64_t> link_id(T);
  for (std::size_t i = 0; i < T; ++i) {
    const CollectiveTransfer& t = prog.transfers[i];
    const int ch = links.channel_for(t.src, t.dst);
    gpusim::SimTime floor = channel_free_[static_cast<std::size_t>(ch)];
    floor = std::max(floor, ready0[static_cast<std::size_t>(t.src)]);
    if (t.accumulate) {
      floor = std::max(floor, ready0[static_cast<std::size_t>(t.dst)]);
    }
    std::vector<std::uint64_t> deps;
    deps.reserve(t.src_deps.size() + t.dst_deps.size());
    for (std::int32_t d : t.src_deps)
      deps.push_back(link_id[static_cast<std::size_t>(d)]);
    for (std::int32_t d : t.dst_deps)
      deps.push_back(link_id[static_cast<std::size_t>(d)]);
    link_id[i] =
        links.begin_after(t.src, t.dst, (t.hi - t.lo) * eb, floor, deps);
  }
  links.finalize_all();
  std::vector<gpusim::TransferRecord> recs = links.take_completed();
  GLP_CHECK(recs.size() == T);

  std::vector<const gpusim::TransferRecord*> rec_of(T, nullptr);
  for (const auto& r : recs) {
    for (std::size_t i = 0; i < T; ++i) {
      if (link_id[i] == r.id) {
        rec_of[i] = &r;
        break;
      }
    }
    channel_free_[static_cast<std::size_t>(r.channel)] = std::max(
        channel_free_[static_cast<std::size_t>(r.channel)], r.end_ns);
  }
  for (std::size_t i = 0; i < T; ++i) GLP_CHECK(rec_of[i] != nullptr);

  // Submit receives in global (start, id) order: every lane sees its
  // peer copies in start order, and a transfer's producers are always
  // submitted (and their markers recorded) before it.
  std::vector<std::size_t> order(T);
  for (std::size_t i = 0; i < T; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rec_of[a]->start_ns != rec_of[b]->start_ns)
      return rec_of[a]->start_ns < rec_of[b]->start_ns;
    return rec_of[a]->id < rec_of[b]->id;
  });

  constexpr gpusim::EventId kNoMarker =
      std::numeric_limits<gpusim::EventId>::max();
  std::vector<gpusim::EventId> marker(T, kNoMarker);
  struct Last {
    gpusim::SimTime end_ns = -1.0;
    gpusim::EventId marker = kNoMarker;
  };
  // Latest receive per (device, lane): the per-device done event joins
  // every lane the device actually used.
  std::vector<Last> last(static_cast<std::size_t>(n * lane_count_));

  const bool fp16 = options_.wire == WireFormat::kFp16;
  for (std::size_t oi : order) {
    const CollectiveTransfer& t = prog.transfers[oi];
    const gpusim::TransferRecord* rec = rec_of[oi];
    const int lane = t.piece % lane_count_;
    const std::size_t cnt = t.hi - t.lo;
    gpusim::DeviceEngine::WorkFn work;
    if (numeric) {
      // Snapshot the source range at issue time. When the payload was
      // produced by earlier receives, drive the source device past
      // every producer's marker event first. Event-based (not a
      // time-based advance): an op can complete later than the link
      // schedule says — a fallback lane serializes receives behind the
      // default-stream barrier — and the snapshot must chase the
      // functors, wherever they land.
      for (std::int32_t dep : t.src_deps) {
        advance_until_event(fleet_->device(t.src).device(),
                            marker[static_cast<std::size_t>(dep)]);
      }
      float* src = flat[static_cast<std::size_t>(t.src)] + t.lo;
      float* dst = flat[static_cast<std::size_t>(t.dst)] + t.lo;
      if (fp16) {
        if (!t.accumulate) {
          // First (and idempotently every) all-gather send of a reduced
          // range: quantize the source in place so the sender's replica
          // matches what every receiver reconstructs from the wire.
          for (std::size_t k = 0; k < cnt; ++k) src[k] = quantize_fp16(src[k]);
        }
        std::uint16_t* staged = stage_f16(cnt);
        for (std::size_t k = 0; k < cnt; ++k)
          staged[k] = float32_to_float16(src[k]);
        if (t.accumulate) {
          work = [dst, staged, cnt] {
            for (std::size_t k = 0; k < cnt; ++k)
              dst[k] += float16_to_float32(staged[k]);
          };
        } else {
          work = [dst, staged, cnt] {
            for (std::size_t k = 0; k < cnt; ++k)
              dst[k] = float16_to_float32(staged[k]);
          };
        }
      } else {
        float* staged = stage_f32(cnt);
        std::memcpy(staged, src, cnt * sizeof(float));
        if (t.accumulate) {
          work = [dst, staged, cnt] {
            for (std::size_t k = 0; k < cnt; ++k) dst[k] += staged[k];
          };
        } else {
          work = [dst, staged, cnt] {
            std::memcpy(dst, staged, cnt * sizeof(float));
          };
        }
      }
    }
    gpusim::DeviceEngine& dst_dev = fleet_->device(t.dst).device();
    const gpusim::StreamId stream = lane_stream(t.dst, lane);
    dst_dev.memcpy_peer(stream, cnt * eb, t.src, rec->start_ns, rec->end_ns,
                        std::move(work));
    // Marker right behind the receive in the lane's FIFO: it completes
    // when the receive's functor has actually run, which is what later
    // snapshots (and the caller's unpack) gate on.
    marker[oi] = dst_dev.record_event_at(stream, rec->end_ns);
    Last& L = last[static_cast<std::size_t>(t.dst * lane_count_ + lane)];
    if (rec->end_ns > L.end_ns) {
      L.end_ns = rec->end_ns;
      L.marker = marker[oi];
    }
  }

  // Per-device done event: join the last marker of every lane the
  // device received on (lanes complete independently; the unpack must
  // wait for all of them).
  for (int d = 0; d < n; ++d) {
    int used = 0;
    int only_lane = -1;
    gpusim::SimTime max_end = 0.0;
    for (int l = 0; l < lane_count_; ++l) {
      const Last& L = last[static_cast<std::size_t>(d * lane_count_ + l)];
      if (L.marker == kNoMarker) continue;
      ++used;
      only_lane = l;
      max_end = std::max(max_end, L.end_ns);
    }
    if (used == 0) {
      done[static_cast<std::size_t>(d)] = idle_done(d);
    } else if (used == 1) {
      done[static_cast<std::size_t>(d)] =
          last[static_cast<std::size_t>(d * lane_count_ + only_lane)].marker;
    } else {
      gpusim::DeviceEngine& dev = fleet_->device(d).device();
      const gpusim::StreamId join = lane_stream(d, 0);
      for (int l = 0; l < lane_count_; ++l) {
        const Last& L = last[static_cast<std::size_t>(d * lane_count_ + l)];
        if (L.marker == kNoMarker) continue;
        dev.wait_event(join, L.marker);
      }
      done[static_cast<std::size_t>(d)] = dev.record_event_at(join, max_end);
    }
  }

  transfers_.insert(transfers_.end(), std::make_move_iterator(recs.begin()),
                    std::make_move_iterator(recs.end()));
  return done;
}

}  // namespace comm
