#pragma once
// Topology-aware collective engine for the simulated fleet.
//
// PR 9's single hard-wired ring becomes a family of all-reduce
// algorithms expressed as *wave programs* — deterministic lists of
// point-to-point transfers with explicit data dependencies — executed by
// one scheduled executor over the fleet's LinkModel and replayed by one
// host oracle:
//
//   ring  — classic two-phase ring: N-1 reduce-scatter waves + N-1
//           all-gather waves. Bandwidth-optimal; 2(N-1) latency terms.
//   tree  — recursive halving/doubling (Rabenseifner): 2*ceil(log2 N)
//           waves (+2 fold waves when N is not a power of two). Same
//           total bytes on a shared channel, exponentially fewer
//           latency terms — wins on the PCIe-class shared channel.
//   hier  — two-level: intra-group ring reduce-scatter, inter-group
//           tree all-reduce per chunk, intra-group ring all-gather.
//           Groups of size g = smallest prime factor of N; 2(g-1) +
//           tree(N/g) waves. The wave-count winner at N >= 8 on PCIe.
//
// tree and hier address non-neighbour device pairs, so they are only
// feasible on kPcieHost (the NVLink ring has no such channels); auto
// selection always picks ring on kNvlinkRing.
//
// Large buckets are chunk-pipelined: the bucket splits into `pieces`
// independent sub-programs over disjoint element ranges, all handed to
// the LinkModel in ONE dependency-aware batch (begin_after), so piece
// j+1's wave-k transfers overlap piece j's wave-k+1 latency gaps under
// exact processor sharing instead of queueing behind a whole-bucket
// wave barrier. Receives land on a small pool of per-device
// communication "lanes" (non-blocking streams) so the destination
// stream FIFO does not re-serialize what the link overlapped.
//
// Numerics are deterministic by construction: a program fixes every
// accumulation's operand order, the executor's receive functors apply
// them at simulated completion time, and reference_collective_allreduce
// replays the identical float operations on the host — the fleet
// differential's bit-exactness contract holds per algorithm. The
// fp16-on-the-wire mode (WireFormat::kFp16) quantizes each payload to
// binary16 at snapshot time and accumulates in fp32; fully-reduced
// chunks are quantized in place before their first all-gather send so
// every replica still ends bit-identical (and bit-identical to the fp16
// oracle). fp16 trades the fleet-vs-single-device equivalence for a
// loss-trajectory tolerance contract (tests/collective_test.cpp).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/allreduce.hpp"
#include "gpusim/interconnect.hpp"
#include "simcuda/fleet.hpp"

namespace comm {

enum class CollectiveAlgo { kRing, kTree, kHier };

/// CLI-facing selection: a fixed algorithm or cost-model auto.
enum class CollectiveChoice { kAuto, kRing, kTree, kHier };

enum class WireFormat { kFp32, kFp16 };

const char* to_string(CollectiveAlgo algo);
const char* to_string(CollectiveChoice choice);
const char* to_string(WireFormat wire);
/// Parses "auto|ring|tree|hier"; nullopt on anything else.
std::optional<CollectiveChoice> parse_collective(const std::string& s);

struct CollectiveOptions {
  CollectiveChoice collective = CollectiveChoice::kAuto;
  WireFormat wire = WireFormat::kFp32;
  /// Buckets larger than this split into independently-scheduled pieces
  /// (chunk pipelining). 0 disables splitting.
  std::size_t pipeline_chunk_bytes = 256 << 10;
  /// Non-blocking communication streams per device. Receives of
  /// different pipeline pieces round-robin across lanes so overlapped
  /// link spans are not re-serialized by one stream's FIFO.
  int lanes = 2;
};

/// One scheduled point-to-point transfer of a collective program.
struct CollectiveTransfer {
  int src = 0;
  int dst = 0;
  std::size_t lo = 0, hi = 0;  ///< element range [lo, hi), never empty
  bool accumulate = true;      ///< dst[k] += payload[k] vs overwrite
  int wave = 0;                ///< wave index within the piece
  int piece = 0;               ///< pipeline piece (lane assignment)
  /// Producing transfers, as indices into Program::transfers: src_deps
  /// wrote the source range the payload snapshots; dst_deps wrote the
  /// destination range this transfer's functor reads/overwrites. A range
  /// can have several producers — a tree all-gather send covers the
  /// union of the member's own reduced chunk and the ranges earlier
  /// doubling rounds delivered — and the executor must wait for every
  /// one before snapshotting, so each list covers its full range (the
  /// scan stops once the newest producers jointly cover it; anything
  /// older is ordered behind those producers' own dependency chains).
  std::vector<std::int32_t> src_deps;
  std::vector<std::int32_t> dst_deps;
};

/// A deterministic collective schedule: executor and oracle both consume
/// this. Transfers are piece-major, wave-major; ranges within one wave
/// of one piece never overlap between a reader and a writer.
struct CollectiveProgram {
  CollectiveAlgo algo = CollectiveAlgo::kRing;
  int devices = 1;
  std::size_t count = 0;
  int pieces = 1;
  std::vector<CollectiveTransfer> transfers;
  /// Wave count of one piece (latency terms on the critical path).
  int waves = 0;
};

/// Latency/bandwidth cost model calibrated against the LinkModel: a
/// program's predicted makespan is the wave-synchronous sum of
/// (latency + wave_bytes / bandwidth) per wave — on the shared PCIe
/// channel every wave's transfers serialize onto one channel; on the
/// NVLink ring a wave's per-channel maximum rules. Selection compares
/// un-pipelined programs (pipelining rescales all algorithms alike).
struct CollectiveCostModel {
  int devices = 1;
  gpusim::LinkTopology topology = gpusim::LinkTopology::kPcieHost;
  gpusim::LinkProps props;

  /// tree/hier need non-neighbour channels: kPcieHost only. hier
  /// additionally needs a non-trivial group split (composite N >= 4).
  static bool feasible(CollectiveAlgo algo, int devices,
                       gpusim::LinkTopology topology);
  /// Smallest prime factor of n (the hierarchical group size), or 0
  /// when n < 4 or prime (no useful two-level split).
  static int hier_group(int n);

  double predict_ns(CollectiveAlgo algo, std::size_t count,
                    WireFormat wire) const;
  /// Cheapest feasible algorithm; ties break ring < tree < hier.
  CollectiveAlgo choose(std::size_t count, WireFormat wire) const;
};

/// Bytes one element occupies on the wire.
inline std::size_t wire_bytes(WireFormat wire) {
  return wire == WireFormat::kFp16 ? 2 : 4;
}

/// Builds the wave program for `algo` over `devices` ranks reducing
/// `count` elements of range [base, base+count). Never emits empty
/// ranges; count == 0 or devices == 1 yields an empty program.
CollectiveProgram build_collective_program(CollectiveAlgo algo, int devices,
                                           std::size_t count);

/// Full planning pipeline: resolve CollectiveChoice via the cost model
/// (infeasible explicit choices degrade to the best feasible algorithm),
/// then split into pipeline pieces of at most pipeline_chunk_bytes wire
/// bytes each. This is the single source of truth both the scheduled
/// executor and the reference oracle use, which is what makes the
/// per-algorithm bit-exactness contract checkable.
CollectiveProgram plan_collective(int devices, gpusim::LinkTopology topology,
                                  const gpusim::LinkProps& props,
                                  const CollectiveOptions& options,
                                  std::size_t count);

/// Host oracle: replays the program's float operations — snapshot
/// (with fp16 wire quantization when enabled), then accumulate or
/// overwrite — in program order on N gradient arrays of `count` floats.
/// Leaves every array holding the (unscaled) reduced values,
/// bit-identical to what CollectiveEngine::reduce produces.
void reference_collective_allreduce(const CollectiveProgram& program,
                                    const std::vector<float*>& grads,
                                    std::size_t count, WireFormat wire);

/// Convenience oracles mirroring reference_ring_allreduce for the other
/// algorithms (fp32 wire, un-pipelined).
void reference_tree_allreduce(const std::vector<float*>& grads,
                              std::size_t count);
void reference_hier_allreduce(const std::vector<float*>& grads,
                              std::size_t count);

/// Scheduled executor: runs any collective program over the fleet.
class CollectiveEngine {
 public:
  /// Creates `options.lanes` non-blocking communication streams per
  /// device. A fault-injected stream creation falls back to the
  /// device's default stream for that lane — numerics unaffected,
  /// overlap merely lost (every algorithm tolerates the fallback).
  CollectiveEngine(scuda::Fleet& fleet, CollectiveOptions options);

  const CollectiveOptions& options() const { return options_; }
  const CollectiveCostModel& cost_model() const { return cost_model_; }

  /// The program reduce() will run for a `count`-element bucket
  /// (memoized — bucket sizes repeat every iteration).
  const CollectiveProgram& program_for(std::size_t count);
  CollectiveAlgo algo_for(std::size_t count);

  /// Discard staging buffers from the previous iteration. Call only
  /// after every device has synchronized past the iteration's receives
  /// (their work functors borrow the staging memory).
  void reset();

  /// Reduce one bucket: `flat[d]` is device d's packed gradient of
  /// `count` floats, valid once `ready_ns[d]`. Registers the whole
  /// program as one dependency-aware LinkModel batch, submits every
  /// receive as a memcpy_peer on the destination's lanes, and returns
  /// per-device events completing when the device holds the reduced
  /// bucket. When `numeric` is false only timing is modelled.
  std::vector<gpusim::EventId> reduce(
      const std::vector<float*>& flat, std::size_t count,
      const std::vector<gpusim::SimTime>& ready_ns, bool numeric);

  gpusim::StreamId lane_stream(int d, int lane) const {
    return lanes_[static_cast<std::size_t>(d * lane_count_ + lane)].id();
  }
  int lane_count() const { return lane_count_; }
  /// True when any of device d's lanes fell back to the default stream.
  bool fallback(int d) const;

  /// Every finalized TransferRecord since the last reset(), in
  /// completion order — the fleet race-checker's input.
  const std::vector<gpusim::TransferRecord>& transfers() const {
    return transfers_;
  }

 private:
  float* stage_f32(std::size_t count);
  std::uint16_t* stage_f16(std::size_t count);

  scuda::Fleet* fleet_;
  CollectiveOptions options_;
  CollectiveCostModel cost_model_;
  int lane_count_ = 1;
  std::vector<scuda::Stream> lanes_;  ///< device-major [d * lanes + l]
  /// Cross-bucket FIFO floor per link channel: a later bucket's batch
  /// must not overlap an earlier bucket's tail on the same channel.
  std::vector<gpusim::SimTime> channel_free_;
  std::vector<gpusim::TransferRecord> transfers_;
  std::vector<std::unique_ptr<float[]>> staging_f32_;
  std::vector<std::unique_ptr<std::uint16_t[]>> staging_f16_;
  /// count -> planned program memo.
  std::vector<std::pair<std::size_t, CollectiveProgram>> programs_;
};

}  // namespace comm
