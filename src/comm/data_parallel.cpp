#include "comm/data_parallel.hpp"

#include <cstring>

#include "common/check.hpp"
#include "minicaffe/layers/data_layer.hpp"

namespace comm {

FleetTrainer::FleetTrainer(scuda::Fleet& fleet,
                           std::vector<mc::ExecContext*> contexts,
                           const mc::NetSpec& spec,
                           FleetTrainerOptions options)
    : fleet_(&fleet),
      ec_(std::move(contexts)),
      options_(options),
      collectives_(fleet, options.collective) {
  const int n = fleet.size();
  GLP_REQUIRE(static_cast<int>(ec_.size()) == n,
              "need one ExecContext per fleet device");
  for (int d = 0; d < n; ++d) {
    mc::ExecContext* ec = ec_[static_cast<std::size_t>(d)];
    GLP_REQUIRE(ec != nullptr && ec->ctx == &fleet.device(d),
                "ExecContext " << d << " is not wired to fleet device " << d);
    GLP_REQUIRE(!ec->dag_schedule,
                "fleet training requires the plain (non-DAG) backward path");
    GLP_REQUIRE(!ec->inference, "fleet training needs gradient buffers");
  }

  nets_.reserve(static_cast<std::size_t>(n));
  solvers_.reserve(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    nets_.push_back(
        std::make_unique<mc::Net>(spec, *ec_[static_cast<std::size_t>(d)]));
    mc::Net& net = *nets_.back();
    // Shard the input pipeline: device d reads micro-batch d of every
    // fleet iteration (offset d·batch, stride N·batch).
    mc::DataLayer* data = nullptr;
    for (const auto& layer : net.layers()) {
      if ((data = dynamic_cast<mc::DataLayer*>(layer.get())) != nullptr) break;
    }
    GLP_REQUIRE(data != nullptr, "fleet training needs a Data layer");
    const auto batch =
        static_cast<std::uint64_t>(data->spec().params.batch_size);
    data->configure_shard(static_cast<std::uint64_t>(d) * batch,
                          static_cast<std::uint64_t>(n) * batch);
    net.set_backward_layer_hook(
        [this, d](std::size_t li) { on_backward_layer(d, li); });
    solvers_.push_back(std::make_unique<mc::SgdSolver>(net, options_.solver));
  }

  plan_ = plan_buckets(*nets_.front(), options_.bucket_bytes);
  flat_.resize(plan_.buckets.size());
  for (std::size_t b = 0; b < plan_.buckets.size(); ++b) {
    flat_[b].assign(static_cast<std::size_t>(n),
                    std::vector<float>(plan_.buckets[b].count, 0.0f));
  }
  next_bucket_.assign(static_cast<std::size_t>(n), 0);
}

void FleetTrainer::record_bucket_ready(int device, std::size_t bucket) {
  ready_events_[bucket * static_cast<std::size_t>(fleet_->size()) +
                static_cast<std::size_t>(device)] =
      fleet_->device(device).device().record_event(gpusim::kDefaultStream);
}

void FleetTrainer::on_backward_layer(int device, std::size_t layer) {
  if (!options_.overlap) return;
  std::size_t& next = next_bucket_[static_cast<std::size_t>(device)];
  while (next < plan_.buckets.size() &&
         plan_.buckets[next].close_layer == layer) {
    record_bucket_ready(device, next);
    ++next;
  }
}

void FleetTrainer::train_one_iteration() {
  const int n = fleet_->size();
  const std::size_t nb = plan_.buckets.size();
  const bool numeric = ec_.front()->numeric();
  const float lr = solvers_.front()->current_lr();
  const float inv_n = 1.0f / static_cast<float>(n);

  // Every device synchronized at the previous iteration's end, so the
  // staging buffers and unpack jobs borrowed by functors are reclaimable.
  collectives_.reset();
  jobs_.clear();
  ready_events_.assign(nb * static_cast<std::size_t>(n), 0);
  std::fill(next_bucket_.begin(), next_bucket_.end(), 0);

  for (int d = 0; d < n; ++d) nets_[static_cast<std::size_t>(d)]->zero_param_diffs();
  for (int d = 0; d < n; ++d) nets_[static_cast<std::size_t>(d)]->forward();
  for (int d = 0; d < n; ++d) nets_[static_cast<std::size_t>(d)]->backward();
  if (options_.overlap) {
    for (int d = 0; d < n; ++d) {
      GLP_CHECK(next_bucket_[static_cast<std::size_t>(d)] == nb);
    }
  } else {
    // Serialize-then-reduce baseline: buckets only become ready once the
    // whole backward pass has been issued, so every ready event lands
    // after the final backward kernel.
    for (std::size_t b = 0; b < nb; ++b) {
      for (int d = 0; d < n; ++d) record_bucket_ready(d, b);
    }
  }

  std::vector<float*> flat_ptrs(static_cast<std::size_t>(n));
  std::vector<gpusim::SimTime> ready_ns(static_cast<std::size_t>(n));
  for (std::size_t b = 0; b < nb; ++b) {
    const Bucket& bucket = plan_.buckets[b];
    for (int d = 0; d < n; ++d) {
      mc::Net& net = *nets_[static_cast<std::size_t>(d)];
      gpusim::DeviceEngine& dev = fleet_->device(d).device();
      // Drive the device past the bucket-ready event so every backward
      // functor feeding these diffs has run, then pack.
      ready_ns[static_cast<std::size_t>(d)] = advance_until_event(
          dev, ready_events_[b * static_cast<std::size_t>(n) +
                             static_cast<std::size_t>(d)]);
      std::vector<float>& flat = flat_[b][static_cast<std::size_t>(d)];
      if (numeric) {
        std::size_t off = 0;
        for (const std::size_t pi : bucket.params) {
          const mc::Blob& p = *net.learnable_params()[pi];
          std::memcpy(flat.data() + off, p.diff(), p.count() * sizeof(float));
          off += p.count();
        }
        GLP_CHECK(off == bucket.count);
      }
      flat_ptrs[static_cast<std::size_t>(d)] = flat.data();
    }

    const std::vector<gpusim::EventId> done =
        collectives_.reduce(flat_ptrs, bucket.count, ready_ns, numeric);

    // Chain the update behind the reduction: the default stream waits on
    // the comm-done event, then a host callback scatters the averaged
    // gradient back into the param diffs. Solver kernels queued later on
    // the default stream therefore see the reduced values.
    for (int d = 0; d < n; ++d) {
      gpusim::DeviceEngine& dev = fleet_->device(d).device();
      dev.wait_event(gpusim::kDefaultStream, done[static_cast<std::size_t>(d)]);
      if (!numeric) continue;
      auto job = std::make_unique<UnpackJob>();
      job->src = flat_[b][static_cast<std::size_t>(d)].data();
      job->scale = inv_n;
      mc::Net& net = *nets_[static_cast<std::size_t>(d)];
      for (const std::size_t pi : bucket.params) {
        mc::Blob& p = *net.learnable_params()[pi];
        job->dsts.emplace_back(p.mutable_diff(), p.count());
      }
      UnpackJob* raw = job.get();
      jobs_.push_back(std::move(job));
      dev.host_callback(gpusim::kDefaultStream, [raw] {
        std::size_t off = 0;
        for (const auto& [dst, count] : raw->dsts) {
          for (std::size_t k = 0; k < count; ++k) {
            dst[k] = raw->src[off + k] * raw->scale;
          }
          off += count;
        }
      });
    }
  }

  for (int d = 0; d < n; ++d) {
    solvers_[static_cast<std::size_t>(d)]->apply_update(lr);
  }
  // total_loss synchronizes each device, completing the iteration's
  // simulated work (transfers, unpacks, updates) before the next one
  // reuses the staging memory.
  float loss = 0.0f;
  for (int d = 0; d < n; ++d) {
    loss += nets_[static_cast<std::size_t>(d)]->total_loss();
  }
  loss *= inv_n;
  for (int d = 0; d < n; ++d) {
    solvers_[static_cast<std::size_t>(d)]->note_step(loss);
  }
}

void FleetTrainer::step(int iterations,
                        const std::function<void(int, float)>& on_iteration) {
  for (int it = 0; it < iterations; ++it) {
    train_one_iteration();
    if (on_iteration) on_iteration(iter(), last_loss());
  }
}

}  // namespace comm
