#pragma once
// Data-parallel training across a simulated fleet: one net + solver
// replica per device, sample-sharded data layers, and a bucketed
// all-reduce (comm/collectives.hpp — ring/tree/hierarchical, selected
// per bucket by the collective cost model) that averages gradients
// between backward and the solver update.
//
// The trainer is *eager* by default: buckets of parameters are
// all-reduced as soon as their backward accumulation completes (a
// per-layer backward hook records bucket-ready events while later
// layers are still being issued), so communication overlaps the rest of
// the backward pass on the non-blocking comm streams. `overlap = false`
// degrades to the serialize-then-reduce baseline — all buckets become
// ready only when the full backward pass has drained — which is the
// comparison BENCH_fleet.json quantifies.
//
// Bit-exactness contract (tests/fleet_test.cpp, fleet differential
// suite): training on N devices is bit-identical to a single device
// consuming the same samples in N sequential micro-batches and reducing
// with the selected algorithm's reference oracle (its wave program
// replayed by reference_collective_allreduce) — same sample partition,
// same fixed association order, same 1/N scaling, one solver update per
// iteration. With fp16-on-the-wire the fleet is still bit-identical to
// its fp16 oracle; equivalence to single-device fp32 training weakens
// to a loss-trajectory tolerance.

#include <cstddef>
#include <memory>
#include <vector>

#include "comm/allreduce.hpp"
#include "comm/collectives.hpp"
#include "minicaffe/exec_context.hpp"
#include "minicaffe/net.hpp"
#include "minicaffe/solver.hpp"
#include "simcuda/fleet.hpp"

namespace comm {

struct FleetTrainerOptions {
  mc::SolverParams solver;
  /// Bucket granularity of the all-reduce (DDP-style).
  std::size_t bucket_bytes = 1 << 20;
  /// Eager bucketed overlap (true) vs serialize-then-reduce baseline.
  bool overlap = true;
  /// Collective algorithm selection, wire precision, pipelining, lanes.
  CollectiveOptions collective;
};

class FleetTrainer {
 public:
  /// One ExecContext per fleet device, already wired to that device's
  /// Context and dispatcher (Serial or a per-device GLP4NN scheduler)
  /// with identically seeded RNGs so every replica initializes the same
  /// weights. DAG scheduling and inference mode must be off.
  FleetTrainer(scuda::Fleet& fleet, std::vector<mc::ExecContext*> contexts,
               const mc::NetSpec& spec, FleetTrainerOptions options);

  /// Run `iterations` data-parallel steps. `on_iteration(iter, loss)`
  /// fires after each (loss = mean of per-device shard losses).
  void step(int iterations,
            const std::function<void(int, float)>& on_iteration = {});

  int iter() const { return solvers_.front()->iter(); }
  float last_loss() const { return solvers_.front()->last_loss(); }

  mc::Net& net(int d) { return *nets_.at(static_cast<std::size_t>(d)); }
  mc::SgdSolver& solver(int d) {
    return *solvers_.at(static_cast<std::size_t>(d));
  }
  const BucketPlan& plan() const { return plan_; }
  CollectiveEngine& collectives() { return collectives_; }

 private:
  struct UnpackJob {
    std::vector<std::pair<float*, std::size_t>> dsts;  ///< diff ptr, count
    const float* src = nullptr;
    float scale = 1.0f;
  };

  void train_one_iteration();
  void on_backward_layer(int device, std::size_t layer);
  void record_bucket_ready(int device, std::size_t bucket);

  scuda::Fleet* fleet_;
  std::vector<mc::ExecContext*> ec_;
  FleetTrainerOptions options_;
  std::vector<std::unique_ptr<mc::Net>> nets_;
  std::vector<std::unique_ptr<mc::SgdSolver>> solvers_;
  BucketPlan plan_;
  CollectiveEngine collectives_;

  /// flat_[b][d]: device d's packed gradient for bucket b.
  std::vector<std::vector<std::vector<float>>> flat_;
  /// ready_events_[b * N + d]: bucket-ready event on d's default stream.
  std::vector<gpusim::EventId> ready_events_;
  std::vector<std::size_t> next_bucket_;  ///< per-device eager cursor
  /// Unpack jobs borrowed by host callbacks until the iteration's sync.
  std::vector<std::unique_ptr<UnpackJob>> jobs_;
};

}  // namespace comm
