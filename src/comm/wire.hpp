#pragma once
// Software fp16 ("half") conversion for the fp16-on-the-wire gradient
// compression mode (comm/collectives.hpp). IEEE 754 binary16 with
// round-to-nearest-even, implemented bit-exactly in integer arithmetic —
// no hardware half support or external dependency needed, and the exact
// same function runs in the scheduled executor and the host oracle, so
// the fleet-vs-reference differential stays bit-exact even in fp16 mode.
//
// Key property the collectives rely on: float16_to_float32 is exact
// (every half value is representable as a float), so
//   float32_to_float16(float16_to_float32(h)) == h
// for every half bit pattern h — re-quantizing an already-quantized
// value is the identity, which is what keeps all replicas bit-identical
// when fully-reduced chunks are re-sent along an all-gather chain.

#include <cstdint>
#include <cstring>

namespace comm {

/// Round-to-nearest-even binary32 -> binary16. Overflow saturates to
/// +/-inf; NaNs map to a quiet half NaN preserving the sign.
inline std::uint16_t float32_to_float16(float value) {
  std::uint32_t f;
  std::memcpy(&f, &value, sizeof(f));
  const std::uint16_t sign = static_cast<std::uint16_t>((f >> 16) & 0x8000u);
  const std::uint32_t exp = (f >> 23) & 0xFFu;
  std::uint32_t mant = f & 0x7FFFFFu;

  if (exp == 0xFFu) {  // inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  }
  // Unbiased exponent; half bias is 15, float bias 127.
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 0x1F) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (e <= 0) {  // subnormal half (or underflow to zero)
    if (e < -10) return sign;  // magnitude < 2^-24 rounds to zero
    // Implicit leading 1, then shift into subnormal position with RNE.
    mant |= 0x800000u;
    const int shift = 14 - e;  // 14..24
    const std::uint32_t kept = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t half_ulp = 1u << (shift - 1);
    std::uint32_t rounded = kept;
    if (rem > half_ulp || (rem == half_ulp && (kept & 1u))) ++rounded;
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Normal half: keep 10 mantissa bits with RNE on the dropped 13.
  std::uint32_t kept = mant >> 13;
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (kept & 1u))) ++kept;
  std::uint32_t out = (static_cast<std::uint32_t>(e) << 10) + kept;
  // Mantissa carry bumps the exponent (kept overflowed 10 bits); the
  // addition above already propagated it. e==30 carrying to 31 is inf,
  // encoded correctly by the same propagation.
  return static_cast<std::uint16_t>(sign | out);
}

/// Exact binary16 -> binary32.
inline float float16_to_float32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t mant = h & 0x3FFu;
  std::uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal half: normalize into a float exponent.
      int e = -1;
      std::uint32_t m = mant;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      const std::uint32_t fexp =
          static_cast<std::uint32_t>(127 - 15 - e) << 23;
      f = sign | fexp | ((m & 0x3FFu) << 13);
    }
  } else if (exp == 0x1Fu) {
    f = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    f = sign | ((exp + 127 - 15) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &f, sizeof(out));
  return out;
}

/// value as it appears after a trip over an fp16 wire.
inline float quantize_fp16(float value) {
  return float16_to_float32(float32_to_float16(value));
}

}  // namespace comm
