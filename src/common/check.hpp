#pragma once
// Invariant checking. GLP_CHECK* throw glp::Error so callers (and tests)
// can observe contract violations without aborting the process.

#include <sstream>
#include <stdexcept>
#include <string>

namespace glp {

/// Base error type for all failures raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid argument / precondition violation.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Internal invariant violation (a bug in this library).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'G') throw InternalError(os.str());  // GLP_CHECK
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace glp

/// Internal invariant: failure indicates a library bug.
#define GLP_CHECK(cond)                                                        \
  do {                                                                         \
    if (!(cond))                                                               \
      ::glp::detail::check_failed("GLP_CHECK", #cond, __FILE__, __LINE__, ""); \
  } while (0)

#define GLP_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream glp_os_;                                         \
      glp_os_ << msg;                                                     \
      ::glp::detail::check_failed("GLP_CHECK", #cond, __FILE__, __LINE__, \
                                  glp_os_.str());                         \
    }                                                                     \
  } while (0)

/// Precondition on caller-supplied arguments.
#define GLP_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream glp_os_;                                           \
      glp_os_ << msg;                                                       \
      ::glp::detail::check_failed("REQUIRE", #cond, __FILE__, __LINE__,     \
                                  glp_os_.str());                           \
    }                                                                       \
  } while (0)
