#include "common/cli.hpp"

#include <iostream>
#include <sstream>

#include "common/check.hpp"

namespace glp {

Flags::Flags(std::string prog, std::string summary)
    : prog_(std::move(prog)), summary_(std::move(summary)) {}

Flags& Flags::add(std::string name, Kind kind, void* target,
                  std::string help) {
  GLP_REQUIRE(name.rfind("--", 0) != 0, "register flags without the -- prefix");
  GLP_REQUIRE(find(name) == nullptr, "duplicate flag --" << name);
  specs_.push_back(Spec{std::move(name), kind, target, std::move(help)});
  return *this;
}

Flags& Flags::flag(const std::string& name, bool* t, std::string help) {
  return add(name, Kind::kBool, t, std::move(help));
}
Flags& Flags::opt(const std::string& name, int* t, std::string help) {
  return add(name, Kind::kInt, t, std::move(help));
}
Flags& Flags::opt(const std::string& name, float* t, std::string help) {
  return add(name, Kind::kFloat, t, std::move(help));
}
Flags& Flags::opt(const std::string& name, double* t, std::string help) {
  return add(name, Kind::kDouble, t, std::move(help));
}
Flags& Flags::opt(const std::string& name, unsigned long long* t,
                  std::string help) {
  return add(name, Kind::kU64, t, std::move(help));
}
Flags& Flags::opt(const std::string& name, std::string* t, std::string help) {
  return add(name, Kind::kString, t, std::move(help));
}
Flags& Flags::opt_list(const std::string& name,
                       std::vector<std::string>* t, std::string help) {
  return add(name, Kind::kStringList, t, std::move(help));
}

Flags::Spec* Flags::find(const std::string& name) {
  for (Spec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Flags::Spec* Flags::find(const std::string& name) const {
  for (const Spec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool Flags::assign(Spec& spec, const std::string& value) {
  try {
    std::size_t pos = 0;
    switch (spec.kind) {
      case Kind::kBool:
        return false;  // switches never take a value
      case Kind::kInt:
        *static_cast<int*>(spec.target) = std::stoi(value, &pos);
        break;
      case Kind::kFloat:
        *static_cast<float*>(spec.target) = std::stof(value, &pos);
        break;
      case Kind::kDouble:
        *static_cast<double*>(spec.target) = std::stod(value, &pos);
        break;
      case Kind::kU64:
        *static_cast<unsigned long long*>(spec.target) =
            std::stoull(value, &pos);
        break;
      case Kind::kString:
        *static_cast<std::string*>(spec.target) = value;
        return true;
      case Kind::kStringList: {
        auto* list = static_cast<std::vector<std::string>*>(spec.target);
        if (!spec.seen) list->clear();  // drop caller-preloaded defaults
        spec.seen = true;
        // One occurrence may carry a comma-separated list; repeated
        // occurrences keep appending. Empty elements are rejected.
        std::size_t start = 0;
        while (start <= value.size()) {
          const std::size_t comma = value.find(',', start);
          const std::string item =
              value.substr(start, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - start);
          if (item.empty()) return false;
          list->push_back(item);
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
        return !value.empty();
      }
    }
    return pos == value.size() && !value.empty();
  } catch (const std::exception&) {
    return false;
  }
}

std::string Flags::default_of(const Spec& spec) {
  std::ostringstream os;
  switch (spec.kind) {
    case Kind::kBool:
      return "";
    case Kind::kInt:
      os << *static_cast<const int*>(spec.target);
      break;
    case Kind::kFloat:
      os << *static_cast<const float*>(spec.target);
      break;
    case Kind::kDouble:
      os << *static_cast<const double*>(spec.target);
      break;
    case Kind::kU64:
      os << *static_cast<const unsigned long long*>(spec.target);
      break;
    case Kind::kString: {
      const auto& s = *static_cast<const std::string*>(spec.target);
      if (s.empty()) return "";
      os << s;
      break;
    }
    case Kind::kStringList: {
      const auto& list =
          *static_cast<const std::vector<std::string>*>(spec.target);
      if (list.empty()) return "";
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (i != 0) os << ',';
        os << list[i];
      }
      break;
    }
  }
  return os.str();
}

std::string Flags::usage() const {
  std::ostringstream os;
  os << "usage: " << prog_ << " [flags]\n" << summary_ << "\n\nflags:\n";
  for (const Spec& s : specs_) {
    std::string head = "  --" + s.name;
    if (s.kind != Kind::kBool) head += " <v>";
    os << head;
    for (std::size_t i = head.size(); i < 26; ++i) os << ' ';
    os << s.help;
    const std::string d = default_of(s);
    if (!d.empty()) os << " (default " << d << ")";
    os << "\n";
  }
  os << "  --help                  show this message\n";
  return os.str();
}

Flags::Status Flags::parse(int argc, char* const* argv, std::ostream& out,
                           std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      out << usage();
      return Status::kHelp;
    }
    if (arg.rfind("--", 0) != 0) {
      err << "error: unexpected argument '" << arg << "'\n\n" << usage();
      return Status::kError;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    Spec* spec = find(name);
    if (spec == nullptr) {
      err << "error: unknown flag '--" << name << "'\n\n" << usage();
      return Status::kError;
    }
    if (spec->kind == Kind::kBool) {
      if (has_value) {
        err << "error: --" << name << " takes no value\n\n" << usage();
        return Status::kError;
      }
      *static_cast<bool*>(spec->target) = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        err << "error: --" << name << " needs a value\n\n" << usage();
        return Status::kError;
      }
      value = argv[++i];
    }
    if (!assign(*spec, value)) {
      err << "error: bad value '" << value << "' for --" << name << "\n\n"
          << usage();
      return Status::kError;
    }
  }
  return Status::kOk;
}

Flags::Status Flags::parse(int argc, char* const* argv) {
  return parse(argc, argv, std::cout, std::cerr);
}

}  // namespace glp
