#pragma once
// Tiny declarative command-line parser shared by the glp4nn_* tools, so
// every binary gets the same flag grammar: `--name value` or
// `--name=value`, boolean switches, `--help`/`-h` (usage to stdout,
// caller exits 0), and unknown-flag/bad-value errors (message + usage to
// stderr, caller exits 2). Targets are plain pointers into the caller's
// locals; defaults shown in the usage text are whatever the targets hold
// when parse() runs.

#include <iosfwd>
#include <string>
#include <vector>

namespace glp {

class Flags {
 public:
  Flags(std::string prog, std::string summary);

  /// Boolean switch: present → true. Takes no value.
  Flags& flag(const std::string& name, bool* target, std::string help);
  /// Valued options.
  Flags& opt(const std::string& name, int* target, std::string help);
  Flags& opt(const std::string& name, float* target, std::string help);
  Flags& opt(const std::string& name, double* target, std::string help);
  Flags& opt(const std::string& name, unsigned long long* target,
             std::string help);
  Flags& opt(const std::string& name, std::string* target, std::string help);
  /// Repeatable list option: every occurrence appends (and a single
  /// occurrence may carry a comma-separated list), so
  /// `--device-gen=P100 --device-gen=TitanXP` and
  /// `--device-gen=P100,TitanXP` both yield {"P100", "TitanXP"}. The
  /// target is cleared the first time the flag is seen, so defaults the
  /// caller pre-loaded are replaced, not extended.
  Flags& opt_list(const std::string& name, std::vector<std::string>* target,
                  std::string help);

  enum class Status {
    kOk,    ///< all flags parsed
    kHelp,  ///< --help/-h seen; usage printed to `out`
    kError, ///< unknown flag / bad or missing value; details on `err`
  };

  Status parse(int argc, char* const* argv, std::ostream& out,
               std::ostream& err);
  /// stdout/stderr convenience overload.
  Status parse(int argc, char* const* argv);

  std::string usage() const;

 private:
  enum class Kind { kBool, kInt, kFloat, kDouble, kU64, kString, kStringList };
  struct Spec {
    std::string name;  // without leading "--"
    Kind kind;
    void* target;
    std::string help;
    bool seen = false;  // kStringList: first occurrence clears the target
  };

  Flags& add(std::string name, Kind kind, void* target, std::string help);
  Spec* find(const std::string& name);
  const Spec* find(const std::string& name) const;
  static bool assign(Spec& spec, const std::string& value);
  static std::string default_of(const Spec& spec);

  std::string prog_;
  std::string summary_;
  std::vector<Spec> specs_;
};

}  // namespace glp
