#pragma once
// Minimal leveled logger. Thread-safe: each emit formats into a local
// buffer and writes with a single mutex-guarded call (CP.43: keep the
// critical section to the write itself).

#include <sstream>
#include <string>

namespace glp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped at emit time.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const char* file, int line, const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_emit(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace glp

#define GLP_LOG(level)                                                      \
  if (static_cast<int>(level) < static_cast<int>(::glp::log_level())) {     \
  } else                                                                    \
    ::glp::detail::LogMessage(level, __FILE__, __LINE__).stream()

#define GLP_DEBUG GLP_LOG(::glp::LogLevel::kDebug)
#define GLP_INFO GLP_LOG(::glp::LogLevel::kInfo)
#define GLP_WARN GLP_LOG(::glp::LogLevel::kWarn)
#define GLP_ERROR GLP_LOG(::glp::LogLevel::kError)
