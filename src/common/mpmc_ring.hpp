#pragma once
// Bounded lock-free multi-producer/multi-consumer ring (Dmitry Vyukov's
// sequence-numbered design). Each cell carries a sequence counter that
// encodes whose turn it is: producers claim a ticket from `head_`, wait
// for `seq == ticket`, write, then publish `seq = ticket + 1`; consumers
// claim from `tail_`, wait for `seq == ticket + 1`, read, then recycle
// the cell with `seq = ticket + capacity`. Both ends are wait-free in
// the uncontended case and never spin while the ring is full/empty —
// try_push/try_pop return false instead, which is exactly the admission
// behaviour a bounded ingest queue wants (the caller counts the bounce
// as a rejection).
//
// This is the producer→batcher handoff of the serving subsystem: client
// threads push requests concurrently with zero locks, and the (single- or
// multi-threaded) drain side pops them for the deterministic replay loop.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace glp {

template <typename T>
class MpmcRing {
 public:
  /// Capacity is rounded up to a power of two (index masking keeps the
  /// hot path branch-free); at least 2.
  explicit MpmcRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    GLP_REQUIRE(cap <= (std::size_t{1} << 31),
                "mpmc ring capacity too large: " << capacity);
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy (exact only when quiescent).
  std::size_t size_approx() const {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    return h >= t ? h - t : 0;
  }

  /// Enqueue a copy, or return false when the ring is full.
  bool try_push(const T& value) {
    T copy(value);
    return try_push(std::move(copy));
  }

  /// Enqueue, or return false when the ring is full. Binds by reference,
  /// so on failure the caller's value is NOT consumed — `while
  /// (!ring.try_push(std::move(v)))` retry loops are safe.
  bool try_push(T&& value) {
    Cell* cell;
    std::size_t ticket = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[ticket & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t delta = static_cast<std::intptr_t>(seq) -
                                  static_cast<std::intptr_t>(ticket);
      if (delta == 0) {
        if (head_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (delta < 0) {
        return false;  // cell still owned by a consumer one lap behind: full
      } else {
        ticket = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(ticket + 1, std::memory_order_release);
    return true;
  }

  /// Dequeue into `out`, or return false when the ring is empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t ticket = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[ticket & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t delta = static_cast<std::intptr_t>(seq) -
                                  static_cast<std::intptr_t>(ticket + 1);
      if (delta == 0) {
        if (tail_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (delta < 0) {
        return false;  // producer has not published this cell yet: empty
      } else {
        ticket = tail_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(ticket + mask_ + 1, std::memory_order_release);
    return true;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T value;
  };

  // Head and tail on separate cache lines so producers and consumers do
  // not false-share their claim counters.
  static constexpr std::size_t kCacheLine = 64;
  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace glp
