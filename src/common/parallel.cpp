#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace glp {

namespace {

// A fixed pool of workers woken per parallel_for call. Threads are
// created on first use and joined at process exit (CP.25-style ownership:
// the pool object owns and joins its threads). Worker i only ever runs
// partition i of the current generation, so no partition can run twice;
// a generation cannot complete until every counted partition ran, so no
// worker can sleep through a generation it participates in.
class Pool {
 public:
  Pool() {
    const unsigned hw = std::thread::hardware_concurrency();
    worker_count_ = static_cast<int>(hw > 1 ? hw : 1);
    const int spawn = worker_count_ - 1;  // caller participates as worker 0
    threads_.reserve(static_cast<std::size_t>(spawn));
    for (int i = 0; i < spawn; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i + 1); });
    }
  }

  ~Pool() {
    {
      const std::scoped_lock lock(mutex_);
      shutdown_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  int workers() const { return worker_count_; }

  void run(std::size_t begin, std::size_t end,
           const std::function<void(std::size_t, std::size_t)>& fn) {
    const std::size_t total = end - begin;
    const int parts = std::min<int>(worker_count_, static_cast<int>(total));
    Task task{&fn, begin, end, parts};
    {
      const std::scoped_lock lock(mutex_);
      task_ = task;
      remaining_.store(parts, std::memory_order_relaxed);
      ++generation_;
    }
    cv_.notify_all();
    run_part(task, 0);  // the caller works too
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_.load(std::memory_order_acquire) == 0; });
  }

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    int parts = 0;
  };

  void run_part(const Task& task, int part) {
    if (part >= task.parts) return;
    const std::size_t total = task.end - task.begin;
    const std::size_t chunk = total / static_cast<std::size_t>(task.parts);
    const std::size_t extra = total % static_cast<std::size_t>(task.parts);
    const std::size_t p = static_cast<std::size_t>(part);
    const std::size_t lo = task.begin + p * chunk + std::min<std::size_t>(p, extra);
    const std::size_t hi = lo + chunk + (p < extra ? 1 : 0);
    if (hi > lo) (*task.fn)(lo, hi);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::scoped_lock lock(mutex_);
      done_cv_.notify_one();
    }
  }

  void worker_loop(int worker_index) {
    std::uint64_t seen = 0;
    for (;;) {
      Task task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this, seen] { return generation_ != seen || shutdown_; });
        if (shutdown_) return;
        seen = generation_;
        task = task_;  // copy under the lock; never touch task_ unlocked
      }
      run_part(task, worker_index);
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  int worker_count_ = 1;

  Task task_;
  std::atomic<int> remaining_{0};
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

Pool& pool() {
  static Pool p;
  return p;
}

}  // namespace

int parallel_workers() { return pool().workers(); }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain) {
  if (end <= begin) return;
  if (end - begin <= grain || parallel_workers() == 1) {
    fn(begin, end);
    return;
  }
  pool().run(begin, end, fn);
}

}  // namespace glp
