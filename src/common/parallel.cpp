#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace glp {

namespace {

// True while this thread is executing a chunk; nested parallel_for calls
// run inline instead of re-entering the (non-reentrant) pool.
thread_local bool t_in_parallel = false;

int env_workers() {
  const char* s = std::getenv("GLP_NUM_THREADS");
  if (s == nullptr || *s == '\0') return 0;
  const long v = std::strtol(s, nullptr, 10);
  if (v < 1) return 0;
  return static_cast<int>(std::min(v, 256L));
}

int default_workers() {
  const int env = env_workers();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(hw > 1 ? hw : 1);
}

// Everything one parallel_for dispatch needs. Heap-allocated and shared
// so a worker that wakes late (or grabs its last ticket just as the call
// completes) only ever touches an exhausted counter, never a stale or
// dead task — which is what makes resetting per-call state safe without
// a generation handshake.
struct Run {
  detail::RangeFn fn = nullptr;
  void* ctx = nullptr;
  std::size_t begin = 0;
  std::size_t grain = 1;
  std::size_t n_chunks = 0;
  std::size_t end = 0;
  std::atomic<std::size_t> next{0};       // ticket dispenser
  std::atomic<std::size_t> remaining{0};  // chunks not yet finished
};

// Fixed pool of workers woken per parallel_for call. Threads are created
// on first use (or by set_parallel_workers) and joined at shutdown
// (CP.25-style ownership: the pool owns and joins its threads). Chunks
// are handed out through an atomic ticket counter, so load imbalance
// between chunks does not serialize the call the way the old fixed
// partitioning did.
class Pool {
 public:
  explicit Pool(int workers) { start(workers); }
  ~Pool() { stop(); }

  int workers() const { return worker_count_; }

  void resize(int workers) {
    workers = std::max(1, workers);
    if (workers == worker_count_) return;
    stop();
    start(workers);
  }

  void run(std::size_t begin, std::size_t end, std::size_t grain,
           detail::RangeFn fn, void* ctx) {
    auto run = std::make_shared<Run>();
    run->fn = fn;
    run->ctx = ctx;
    run->begin = begin;
    run->end = end;
    run->grain = grain;
    run->n_chunks = (end - begin + grain - 1) / grain;
    run->next.store(0, std::memory_order_relaxed);
    run->remaining.store(run->n_chunks, std::memory_order_relaxed);
    {
      const std::scoped_lock lock(mutex_);
      current_ = run;
      ++generation_;
    }
    cv_.notify_all();
    // The caller works too. If its own final ticket retired the last
    // chunk, every chunk has finished and there is nothing to wait for —
    // skip the mutex + condition variable round trip entirely.
    if (drain(*run)) return;
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&run] {
      return run->remaining.load(std::memory_order_acquire) == 0;
    });
  }

 private:
  void start(int workers) {
    worker_count_ = std::max(1, workers);
    shutdown_ = false;
    const int spawn = worker_count_ - 1;  // the caller participates
    threads_.reserve(static_cast<std::size_t>(spawn));
    for (int i = 0; i < spawn; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop() {
    {
      const std::scoped_lock lock(mutex_);
      shutdown_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    current_.reset();
  }

  /// Execute tickets until the dispenser is exhausted. Returns true if
  /// this thread retired the final outstanding chunk.
  bool drain(Run& run) {
    bool retired_last = false;
    for (;;) {
      const std::size_t c = run.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= run.n_chunks) break;
      const std::size_t lo = run.begin + c * run.grain;
      const std::size_t hi = std::min(run.end, lo + run.grain);
      t_in_parallel = true;
      run.fn(run.ctx, lo, hi);
      t_in_parallel = false;
      if (run.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        retired_last = true;
      }
    }
    return retired_last;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Run> run;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this, seen] { return generation_ != seen || shutdown_; });
        if (shutdown_) return;
        seen = generation_;
        run = current_;  // shared ownership; safe after the caller returns
      }
      if (run && drain(*run)) {
        // Last chunk retired on a worker: wake the (possibly) waiting
        // caller. The lock orders the notify against the caller's wait.
        const std::scoped_lock lock(mutex_);
        done_cv_.notify_one();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  int worker_count_ = 1;

  std::shared_ptr<Run> current_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

Pool& pool() {
  static Pool p(default_workers());
  return p;
}

}  // namespace

int parallel_workers() { return pool().workers(); }

void set_parallel_workers(int workers) { pool().resize(workers); }

namespace detail {

void parallel_for_impl(std::size_t begin, std::size_t end, std::size_t grain,
                       RangeFn fn, void* ctx) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  if (end - begin <= grain || t_in_parallel || pool().workers() == 1) {
    fn(ctx, begin, end);
    return;
  }
  pool().run(begin, end, grain, fn, ctx);
}

}  // namespace detail

}  // namespace glp
