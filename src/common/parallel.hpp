#pragma once
// Persistent thread pool with a deterministic chunked parallel_for. Used
// by the host math kernels (gemm, im2col, ...) so the *numeric*
// experiments run at useful speed.
//
// Determinism contract: [begin, end) is split into fixed chunks of at
// most `grain` indices. Chunk boundaries depend only on (begin, end,
// grain) — never on the worker count or on scheduling — and every chunk
// is executed by exactly one thread. A kernel whose chunks write
// disjoint outputs in a fixed intra-chunk order therefore produces
// bit-identical results for any GLP_NUM_THREADS.
//
// The callable is passed by reference through a plain function pointer +
// context pointer — no std::function, no per-call heap allocation on the
// inline path.

#include <cstddef>

namespace glp {

/// Number of workers in the global pool. Defaults to the GLP_NUM_THREADS
/// environment variable when set (clamped to [1, 256]), else hardware
/// concurrency, and is always ≥ 1.
int parallel_workers();

/// Tear the pool down and restart it with `workers` threads (clamped to
/// ≥ 1). Intended for benchmarks and determinism tests that sweep thread
/// counts; must not race an in-flight parallel_for.
void set_parallel_workers(int workers);

namespace detail {
using RangeFn = void (*)(void* ctx, std::size_t lo, std::size_t hi);
void parallel_for_impl(std::size_t begin, std::size_t end, std::size_t grain,
                       RangeFn fn, void* ctx);
}  // namespace detail

/// Invoke fn(lo, hi) over chunks of at most `grain` indices covering
/// [begin, end). Small ranges (and calls made from inside a parallel
/// region — the pool is not reentrant) run inline as one fn(begin, end).
/// fn must not throw (violations terminate) and must only touch disjoint
/// state per chunk (CP.2: avoid data races by construction).
template <typename F>
inline void parallel_for(std::size_t begin, std::size_t end, const F& fn,
                         std::size_t grain = 1024) {
  detail::parallel_for_impl(
      begin, end, grain,
      [](void* ctx, std::size_t lo, std::size_t hi) {
        (*static_cast<const F*>(ctx))(lo, hi);
      },
      const_cast<void*>(static_cast<const void*>(&fn)));
}

}  // namespace glp
