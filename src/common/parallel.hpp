#pragma once
// Persistent thread pool with a deterministic static-partition
// parallel_for. Used by the host math kernels (gemm, im2col, ...) so the
// *numeric* experiments run at useful speed. Determinism note: each index
// range writes disjoint outputs and partitioning depends only on
// (range, worker count), so results are bit-identical run to run.

#include <cstddef>
#include <functional>

namespace glp {

/// Number of workers in the global pool (hardware concurrency, ≥ 1).
int parallel_workers();

/// Invoke fn(begin, end) on worker threads over a static partition of
/// [begin, end). Falls back to inline execution for small ranges.
/// fn must not throw (violations terminate) and must only touch disjoint
/// state per partition (CP.2: avoid data races by construction).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain = 1024);

}  // namespace glp
