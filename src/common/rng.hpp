#pragma once
// Deterministic, seedable RNG (xoshiro256**) used everywhere instead of
// std::mt19937 so results are identical across standard libraries.
// Determinism underpins the convergence-invariance tests: serial and
// GLP4NN runs must consume identical weight initialisations and data.

#include <cstdint>
#include <cmath>

namespace glp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    has_gauss_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias
    // is irrelevant for our n << 2^64 uses, but reject to stay exact.
    const std::uint64_t threshold = (~n + 1) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Box–Muller (cached second value).
  double next_gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return gauss_;
    }
    double u1 = 0.0;
    do {
      u1 = next_double();
    } while (u1 <= 1e-300);
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    gauss_ = r * std::sin(theta);
    has_gauss_ = true;
    return r * std::cos(theta);
  }

  float gaussian(float mean, float stddev) {
    return mean + stddev * static_cast<float>(next_gaussian());
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace glp
