#include "common/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace glp {

std::vector<std::string> split(std::string_view text, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find_first_of(delims, start);
    const std::size_t end = (pos == std::string_view::npos) ? text.size() : pos;
    if (end > start) out.emplace_back(text.substr(start, end - start));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const char* ws = " \t\r\n";
  const std::size_t first = text.find_first_not_of(ws);
  if (first == std::string_view::npos) return {};
  const std::size_t last = text.find_last_not_of(ws);
  return text.substr(first, last - first + 1);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string human_bytes(std::size_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  return strformat("%.1f %s", value, units[unit]);
}

}  // namespace glp
