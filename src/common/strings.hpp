#pragma once
// Small string utilities shared by the net-text parser and report printers.

#include <string>
#include <string_view>
#include <vector>

namespace glp {

/// Split on any of the characters in `delims`, dropping empty pieces.
std::vector<std::string> split(std::string_view text, std::string_view delims);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Render a byte count as a human-readable string ("12.0 KiB").
std::string human_bytes(std::size_t bytes);

}  // namespace glp
