#pragma once
// Wall-clock timer for measuring *host* costs (T_p, T_a in the paper's
// Table 6). Simulated GPU time lives in gpusim and is unrelated.

#include <chrono>

namespace glp {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed milliseconds since construction or last reset().
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace glp
