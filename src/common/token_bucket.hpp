#pragma once
// Deterministic token bucket over an externally supplied clock. The
// serving subsystem runs it on *simulated* nanoseconds, so QoS decisions
// are reproducible: the same trace always sheds the same requests.
//
// Tokens refill continuously at `rate_per_sec` up to `burst` and each
// admitted request costs one token. `try_take` is the whole API surface a
// shed-first policy needs: a tenant whose bucket is dry is over its
// contracted rate and loses first when the server is under pressure.

#include "common/check.hpp"

namespace glp {

class TokenBucket {
 public:
  /// rate_per_sec <= 0 disables the bucket: try_take always succeeds.
  TokenBucket(double rate_per_sec = 0.0, double burst = 1.0)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {
    GLP_REQUIRE(burst_ >= 1.0, "token bucket burst must be >= 1");
  }

  bool enabled() const { return rate_ > 0.0; }
  double rate_per_sec() const { return rate_; }
  double burst() const { return burst_; }

  /// Tokens available at time `now_ns` (clamped to the burst depth).
  double available(double now_ns) {
    refill(now_ns);
    return tokens_;
  }

  /// Take one token if available. `now_ns` must be non-decreasing across
  /// calls (a regressing clock would mint tokens twice).
  bool try_take(double now_ns) {
    if (!enabled()) return true;
    refill(now_ns);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

 private:
  void refill(double now_ns) {
    if (now_ns > last_ns_) {
      tokens_ += (now_ns - last_ns_) * 1e-9 * rate_;
      if (tokens_ > burst_) tokens_ = burst_;
      last_ns_ = now_ns;
    }
  }

  double rate_ = 0.0;
  double burst_ = 1.0;
  double tokens_ = 1.0;
  double last_ns_ = 0.0;
};

}  // namespace glp
