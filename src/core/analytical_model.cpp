#include "core/analytical_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "milp/branch_and_bound.hpp"

namespace glp4nn {

int AnalyticalModel::beta_per_sm(const KernelStats& k) const {
  const auto blocks = k.config.total_blocks();
  const int beta = static_cast<int>(blocks / static_cast<std::uint64_t>(props_.sm_count));
  return std::max(beta, 1);
}

int AnalyticalModel::upper_bound(const KernelStats& k) const {
  const double threads = static_cast<double>(k.config.threads_per_block());
  const double blocks = static_cast<double>(k.config.total_blocks());
  const double smem = static_cast<double>(k.config.smem_per_block());

  // Launch-rate bound: a single dispatch thread issues one launch per
  // T_launch, so at most ceil(T_K / T_launch) instances can overlap.
  const double t_launch = props_.kernel_launch_overhead_us;
  double bound = std::ceil(k.avg_duration_us / std::max(t_launch, 1e-9));

  // Thread capacity bound: τ_max·#SM / (τ_K·#β_K).
  const double thread_bound =
      (static_cast<double>(props_.max_threads_per_sm) * props_.sm_count) /
      (threads * blocks);
  bound = std::min(bound, thread_bound);

  // Shared-memory capacity bound: sm_max·#SM / (sm_K·#β_K).
  if (smem > 0.0) {
    const double smem_bound =
        (static_cast<double>(props_.shared_mem_per_sm) * props_.sm_count) /
        (smem * blocks);
    bound = std::min(bound, smem_bound);
  }

  const int result = static_cast<int>(std::floor(bound));
  return std::clamp(result, 1, props_.max_concurrent_kernels);
}

ConcurrencyDecision AnalyticalModel::analyze(
    const std::string& scope, const std::vector<KernelStats>& kernels) const {
  GLP_REQUIRE(!kernels.empty(), "cannot analyze an empty kernel set");
  glp::WallTimer timer;

  milp::Problem problem;
  problem.set_maximize(true);

  std::vector<int> betas;
  std::vector<int> bounds;
  betas.reserve(kernels.size());
  bounds.reserve(kernels.size());

  std::vector<std::pair<int, double>> smem_terms;
  std::vector<std::pair<int, double>> thread_terms;
  std::vector<std::pair<int, double>> degree_terms;

  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelStats& k = kernels[i];
    const int beta = beta_per_sm(k);
    const int ub = upper_bound(k);
    betas.push_back(beta);
    bounds.push_back(ub);

    const double tau = static_cast<double>(k.config.threads_per_block());
    const double smem = static_cast<double>(k.config.smem_per_block());
    // Objective (Eq. 3): τ_total = Σ τ_K·β_K·#K — maximise active threads.
    const int var = problem.add_variable(0.0, static_cast<double>(ub),
                                         tau * beta, /*integer=*/true, k.name);
    thread_terms.emplace_back(var, tau * beta);
    if (smem > 0.0) smem_terms.emplace_back(var, smem * beta);
    degree_terms.emplace_back(var, 1.0);
  }

  // Eq. 5: Σ τ_K·β_K·#K ≤ τ_max.
  problem.add_constraint(thread_terms, 0.0,
                         static_cast<double>(props_.max_threads_per_sm),
                         "threads_per_sm");
  // Eq. 4: Σ sm_K·β_K·#K ≤ sm_max.
  if (!smem_terms.empty()) {
    problem.add_constraint(smem_terms, 0.0,
                           static_cast<double>(props_.shared_mem_per_sm),
                           "smem_per_sm");
  }
  // Eq. 6: 1 ≤ Σ #K ≤ C.
  problem.add_constraint(degree_terms, 1.0,
                         static_cast<double>(props_.max_concurrent_kernels),
                         "concurrency_degree");

  const milp::BranchAndBoundSolver solver;
  const milp::Solution solution = solver.solve(problem);

  ConcurrencyDecision decision;
  decision.scope = scope;
  decision.milp_nodes = solver.last_node_count();

  if (solution.status != milp::SolveStatus::kOptimal) {
    // Infeasible models exist: a kernel whose τ_K·β_K alone exceeds τ_max
    // makes Eq. 5 unsatisfiable together with Eq. 6's Σ#K ≥ 1. Such a
    // kernel already saturates the device, so the right answer is serial
    // execution — fall back to one stream.
    decision.stream_count = 1;
    decision.objective = 0.0;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      decision.per_kernel.push_back(
          KernelConcurrency{kernels[i].name, 1, bounds[i], betas[i]});
    }
    decision.analysis_ms = timer.elapsed_ms();
    return decision;
  }

  decision.objective = solution.objective;

  int total = 0;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    KernelConcurrency kc;
    kc.name = kernels[i].name;
    kc.count = static_cast<int>(std::lround(solution.values[i]));
    kc.upper_bound = bounds[i];
    kc.beta_per_sm = betas[i];
    total += kc.count;
    decision.per_kernel.push_back(std::move(kc));
  }
  // Eq. 9: the stream pool size is the total concurrent kernel count.
  decision.stream_count =
      std::clamp(total, 1, props_.max_concurrent_kernels);

  // Eq. 1–2: occupancy implied by the objective.
  const double active_warps = decision.objective / props_.warp_size;
  decision.occupancy =
      std::min(1.0, active_warps / static_cast<double>(props_.max_warps_per_sm()));

  decision.analysis_ms = timer.elapsed_ms();
  return decision;
}

ConcurrencyDecision analyze_duration_weighted(
    const gpusim::DeviceProps& props, const std::string& scope,
    const std::vector<KernelStats>& kernels) {
  GLP_REQUIRE(!kernels.empty(), "cannot analyze an empty kernel set");
  glp::WallTimer timer;
  const AnalyticalModel base(props);

  milp::Problem problem;
  problem.set_maximize(true);

  double total_duration = 0.0;
  for (const KernelStats& k : kernels) total_duration += k.avg_duration_us;

  std::vector<int> betas, bounds;
  std::vector<std::pair<int, double>> smem_terms, thread_terms, degree_terms;
  for (const KernelStats& k : kernels) {
    const int beta = base.beta_per_sm(k);
    const int ub = base.upper_bound(k);
    betas.push_back(beta);
    bounds.push_back(ub);
    const double tau = static_cast<double>(k.config.threads_per_block());
    const double smem = static_cast<double>(k.config.smem_per_block());
    // Duration weight in [0, 1]: a kernel's share of the scope's time.
    const double weight =
        total_duration > 0.0 ? k.avg_duration_us / total_duration : 1.0;
    const int var = problem.add_variable(0.0, static_cast<double>(ub),
                                         weight * tau * beta, true, k.name);
    thread_terms.emplace_back(var, tau * beta);
    if (smem > 0.0) smem_terms.emplace_back(var, smem * beta);
    degree_terms.emplace_back(var, 1.0);
  }
  problem.add_constraint(thread_terms, 0.0,
                         static_cast<double>(props.max_threads_per_sm));
  if (!smem_terms.empty()) {
    problem.add_constraint(smem_terms, 0.0,
                           static_cast<double>(props.shared_mem_per_sm));
  }
  problem.add_constraint(degree_terms, 1.0,
                         static_cast<double>(props.max_concurrent_kernels));

  const milp::BranchAndBoundSolver solver;
  const milp::Solution solution = solver.solve(problem);

  ConcurrencyDecision decision;
  decision.scope = scope;
  decision.milp_nodes = solver.last_node_count();
  if (solution.status != milp::SolveStatus::kOptimal) {
    decision.stream_count = 1;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      decision.per_kernel.push_back(
          KernelConcurrency{kernels[i].name, 1, bounds[i], betas[i]});
    }
    decision.analysis_ms = timer.elapsed_ms();
    return decision;
  }
  decision.objective = solution.objective;
  int total = 0;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    KernelConcurrency kc;
    kc.name = kernels[i].name;
    kc.count = static_cast<int>(std::lround(solution.values[i]));
    kc.upper_bound = bounds[i];
    kc.beta_per_sm = betas[i];
    total += kc.count;
    decision.per_kernel.push_back(std::move(kc));
  }
  decision.stream_count = std::clamp(total, 1, props.max_concurrent_kernels);
  decision.analysis_ms = timer.elapsed_ms();
  return decision;
}

}  // namespace glp4nn
