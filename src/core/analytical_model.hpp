#pragma once
// The paper's analytical model (§3.2, Eqs. 1–9): given the kernel types
// of a scope and the device's limits, choose how many instances of each
// kernel (#K_i) to run concurrently so SM occupancy (Eq. 1) is maximised
// under the hard constraints — shared memory per SM (Eq. 4), threads per
// SM (Eq. 5) and the device concurrency degree (Eq. 6) — with per-kernel
// upper bounds from Eq. 7. Registers are a soft constraint and excluded,
// exactly as in the paper. The resulting bounded integer program is
// solved with the in-repo branch-and-bound MILP solver (the paper used
// GLPK).

#include "core/types.hpp"
#include "gpusim/device_props.hpp"

namespace glp4nn {

class AnalyticalModel {
 public:
  explicit AnalyticalModel(gpusim::DeviceProps props) : props_(std::move(props)) {}

  const gpusim::DeviceProps& props() const { return props_; }

  /// Solve the model for one scope's kernel set. Also measures T_a.
  ConcurrencyDecision analyze(const std::string& scope,
                              const std::vector<KernelStats>& kernels) const;

  /// Eq. 8 — blocks per SM for kernel K, floored at 1 (a kernel with
  /// fewer blocks than SMs still occupies one block somewhere; the
  /// paper's floor would zero its contribution).
  int beta_per_sm(const KernelStats& k) const;

  /// Eq. 7 — upper bound on #K_i: min of the launch-rate bound
  /// ceil(T_K / T_launch) and the thread / shared-memory capacity bounds.
  int upper_bound(const KernelStats& k) const;

 private:
  gpusim::DeviceProps props_;
};

/// Alternative model (paper §6 future work: "improve the performance of
/// the analytical model"): identical constraints, but the objective
/// weights each kernel's occupancy contribution by its measured duration
/// T_K — long kernels dominate a scope's makespan, so their overlap
/// matters more than that of sub-launch-gap kernels. Plug into a
/// KernelAnalyzer via set_model. Compared against the paper's objective
/// in bench_ablation_model.
ConcurrencyDecision analyze_duration_weighted(
    const gpusim::DeviceProps& props, const std::string& scope,
    const std::vector<KernelStats>& kernels);

}  // namespace glp4nn
