#include "core/glp4nn.hpp"

namespace glp4nn {

RuntimeScheduler& Glp4nnEngine::scheduler_for(scuda::Context& ctx) {
  auto it = devices_.find(&ctx);
  if (it == devices_.end()) {
    PerDevice d;
    d.analyzer = std::make_unique<KernelAnalyzer>(ctx.props());
    d.scheduler = std::make_unique<RuntimeScheduler>(ctx, tracker_, *d.analyzer,
                                                     streams_, options_);
    it = devices_.emplace(&ctx, std::move(d)).first;
  }
  return *it->second.scheduler;
}

KernelAnalyzer* Glp4nnEngine::analyzer_for(const scuda::Context& ctx) {
  auto it = devices_.find(const_cast<scuda::Context*>(&ctx));
  return it == devices_.end() ? nullptr : it->second.analyzer.get();
}

FrameworkCosts Glp4nnEngine::costs() const {
  FrameworkCosts c;
  c.profiling_ms = tracker_.total_profiling_ms();
  c.mem_tt_bytes = tracker_.mem_tt_bytes();
  c.mem_k_bytes = tracker_.mem_k_bytes();
  c.mem_cupti_bytes = tracker_.mem_cupti_bytes();
  for (const auto& [ctx, device] : devices_) {
    c.analysis_ms += device.analyzer->total_analysis_ms();
    c.scheduling_ms += device.scheduler->scheduling_ms();
    c.solver_calls += device.analyzer->solver_calls();
    c.solve_cache_hits += device.analyzer->solve_cache_hits();
    c.milp_nodes += device.analyzer->total_milp_nodes();
  }
  return c;
}

}  // namespace glp4nn
