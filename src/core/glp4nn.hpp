#pragma once
// Public facade of the GLP4NN framework, wired per Fig. 5: a *shared*
// resource tracker and stream manager, plus a *private* kernel analyzer
// and runtime scheduler per GPU. Typical use:
//
//   scuda::Context gpu(gpusim::DeviceTable::p100());
//   glp4nn::Glp4nnEngine engine;
//   mc::ExecContext ec;
//   ec.ctx = &gpu;
//   ec.dispatcher = &engine.scheduler_for(gpu);   // instead of Serial
//   mc::Net net(mc::models::cifar10_quick(), ec);
//   ...train as usual — first iteration profiles, the rest fly.
//
// Lifetime: every scuda::Context handed to scheduler_for() must outlive
// the engine — the engine owns stream pools and profiling sessions tied
// to those devices. Declare contexts before the engine.

#include <map>
#include <memory>

#include "core/runtime_scheduler.hpp"

namespace glp4nn {

class Glp4nnEngine {
 public:
  explicit Glp4nnEngine(SchedulerOptions options = {}) : options_(options) {}
  Glp4nnEngine(const Glp4nnEngine&) = delete;
  Glp4nnEngine& operator=(const Glp4nnEngine&) = delete;

  /// The per-device runtime scheduler (created on first use, together
  /// with the device's private kernel analyzer).
  RuntimeScheduler& scheduler_for(scuda::Context& ctx);

  /// The shared resource tracker / stream manager (Fig. 5).
  ResourceTracker& tracker() { return tracker_; }
  StreamManager& stream_manager() { return streams_; }

  /// The device's private analyzer (nullptr before first scheduler_for).
  KernelAnalyzer* analyzer_for(const scuda::Context& ctx);

  /// Aggregate one-time overheads and memory footprint (Table 6, Fig. 10).
  FrameworkCosts costs() const;

  const SchedulerOptions& options() const { return options_; }

 private:
  struct PerDevice {
    std::unique_ptr<KernelAnalyzer> analyzer;
    std::unique_ptr<RuntimeScheduler> scheduler;
  };

  SchedulerOptions options_;
  ResourceTracker tracker_;
  StreamManager streams_;
  std::map<scuda::Context*, PerDevice> devices_;
};

}  // namespace glp4nn
