#include "core/kernel_analyzer.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace glp4nn {

namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

std::uint64_t hash_str(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Kernel names are scope-qualified ("conv1/fwd/im2col_..."); strip the
// scope prefix so replicated layers ("conv1/fwd" vs "conv3/fwd") with
// identical kernels produce identical signatures.
std::uint64_t name_signature(const std::string& scope,
                             const std::string& name) {
  if (name.size() > scope.size() + 1 &&
      name.compare(0, scope.size(), scope) == 0 && name[scope.size()] == '/') {
    return hash_str(name.substr(scope.size() + 1));
  }
  return hash_str(name);
}

// Every numeric input the analytical model reads, plus the
// scope-relative kernel names. Duration fields use exact double bits:
// the memo must only fire when the solve would be identical.
std::vector<std::uint64_t> solve_signature(const ScopeProfile& profile) {
  std::vector<std::uint64_t> key;
  key.reserve(profile.kernels.size() * 12 + 1);
  key.push_back(profile.kernels.size());
  for (const KernelStats& k : profile.kernels) {
    key.push_back(name_signature(profile.scope, k.name));
    key.push_back(k.config.grid.x);
    key.push_back(k.config.grid.y);
    key.push_back(k.config.grid.z);
    key.push_back(k.config.block.x);
    key.push_back(k.config.block.y);
    key.push_back(k.config.block.z);
    key.push_back(static_cast<std::uint64_t>(k.config.regs_per_thread));
    key.push_back(k.config.smem_static_bytes);
    key.push_back(k.config.smem_dynamic_bytes);
    key.push_back(static_cast<std::uint64_t>(k.launches));
    key.push_back(bits_of(k.avg_duration_us));
  }
  return key;
}

}  // namespace

const ConcurrencyDecision& KernelAnalyzer::decide(const ScopeProfile& profile) {
  auto it = decisions_.find(profile.scope);
  if (it != decisions_.end()) return it->second;

  ConcurrencyDecision decision;
  if (custom_model_) {
    decision = custom_model_(model_.props(), profile.scope, profile.kernels);
    ++solver_calls_;
    total_milp_nodes_ += static_cast<std::size_t>(decision.milp_nodes);
  } else {
    std::vector<std::uint64_t> key = solve_signature(profile);
    auto memo = solve_memo_.find(key);
    if (memo != solve_memo_.end()) {
      // Relabel the memoized solve for this scope: the numeric inputs
      // are identical, so the decision is too. No analysis ran, so no
      // analysis time (and no B&B nodes) is charged.
      decision = memo->second;
      decision.scope = profile.scope;
      GLP_CHECK(decision.per_kernel.size() == profile.kernels.size());
      for (std::size_t i = 0; i < decision.per_kernel.size(); ++i) {
        decision.per_kernel[i].name = profile.kernels[i].name;
      }
      decision.analysis_ms = 0.0;
      ++solve_cache_hits_;
    } else {
      decision = model_.analyze(profile.scope, profile.kernels);
      ++solver_calls_;
      total_milp_nodes_ += static_cast<std::size_t>(decision.milp_nodes);
      solve_memo_.emplace(std::move(key), decision);
    }
  }
  total_analysis_ms_ += decision.analysis_ms;
  auto [inserted, ok] = decisions_.emplace(profile.scope, std::move(decision));
  GLP_CHECK(ok);
  return inserted->second;
}

std::vector<const ConcurrencyDecision*> KernelAnalyzer::decide_joint(
    const std::vector<const ScopeProfile*>& group) {
  if (custom_model_) return {};  // custom models solve per scope only
  GLP_REQUIRE(!group.empty(), "cannot jointly analyze an empty group");
  if (group.size() == 1) return {&decide(*group[0])};
  for (const ScopeProfile* p : group) {
    GLP_REQUIRE(p != nullptr && !p->kernels.empty(),
                "joint analysis needs a non-empty profile per member");
  }

  // Memo key: member count, then each member's framed solve signature.
  std::vector<std::uint64_t> key;
  key.push_back(group.size());
  for (const ScopeProfile* p : group) {
    const std::vector<std::uint64_t> sig = solve_signature(*p);
    key.push_back(sig.size());
    key.insert(key.end(), sig.begin(), sig.end());
  }

  std::vector<ConcurrencyDecision> decisions;
  auto memo = joint_memo_.find(key);
  if (memo != joint_memo_.end()) {
    decisions = memo->second;
    for (ConcurrencyDecision& d : decisions) d.analysis_ms = 0.0;
    ++solve_cache_hits_;
  } else {
    // One solve over the union: every member's kernels compete for the
    // same per-SM thread/smem budgets and the one concurrency degree.
    std::vector<KernelStats> all;
    std::string joint_scope;
    for (const ScopeProfile* p : group) {
      all.insert(all.end(), p->kernels.begin(), p->kernels.end());
      joint_scope += (joint_scope.empty() ? "" : "+") + p->scope;
    }
    const ConcurrencyDecision joint = model_.analyze(joint_scope, all);
    ++solver_calls_;
    total_milp_nodes_ += static_cast<std::size_t>(joint.milp_nodes);

    const int cap = model_.props().max_concurrent_kernels;
    std::size_t offset = 0;
    for (std::size_t m = 0; m < group.size(); ++m) {
      const std::size_t count = group[m]->kernels.size();
      ConcurrencyDecision d;
      d.scope = group[m]->scope;
      d.per_kernel.assign(joint.per_kernel.begin() + offset,
                          joint.per_kernel.begin() + offset + count);
      int streams = 0;
      for (const KernelConcurrency& k : d.per_kernel) streams += k.count;
      d.stream_count = std::clamp(streams, 1, cap);
      d.objective = joint.objective;
      d.occupancy = joint.occupancy;
      // Whole-solve costs live on the first member so aggregates count
      // them exactly once.
      d.analysis_ms = m == 0 ? joint.analysis_ms : 0.0;
      d.milp_nodes = m == 0 ? joint.milp_nodes : 0;
      decisions.push_back(std::move(d));
      offset += count;
    }
    joint_memo_.emplace(std::move(key), decisions);
  }
  ++joint_solves_;

  // (Re)label with this group's concrete names and overwrite the cached
  // per-scope decisions — subsequent begin_scope calls use the joint
  // pool sizes.
  std::vector<const ConcurrencyDecision*> out;
  for (std::size_t m = 0; m < group.size(); ++m) {
    ConcurrencyDecision& d = decisions[m];
    d.scope = group[m]->scope;
    GLP_CHECK(d.per_kernel.size() == group[m]->kernels.size());
    for (std::size_t i = 0; i < d.per_kernel.size(); ++i) {
      d.per_kernel[i].name = group[m]->kernels[i].name;
    }
    total_analysis_ms_ += d.analysis_ms;
    decisions_[d.scope] = std::move(d);
    out.push_back(&decisions_[group[m]->scope]);
  }
  return out;
}

}  // namespace glp4nn
