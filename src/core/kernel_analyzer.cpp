#include "core/kernel_analyzer.hpp"

#include <cstring>

#include "common/check.hpp"

namespace glp4nn {

namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

std::uint64_t hash_str(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Kernel names are scope-qualified ("conv1/fwd/im2col_..."); strip the
// scope prefix so replicated layers ("conv1/fwd" vs "conv3/fwd") with
// identical kernels produce identical signatures.
std::uint64_t name_signature(const std::string& scope,
                             const std::string& name) {
  if (name.size() > scope.size() + 1 &&
      name.compare(0, scope.size(), scope) == 0 && name[scope.size()] == '/') {
    return hash_str(name.substr(scope.size() + 1));
  }
  return hash_str(name);
}

// Every numeric input the analytical model reads, plus the
// scope-relative kernel names. Duration fields use exact double bits:
// the memo must only fire when the solve would be identical.
std::vector<std::uint64_t> solve_signature(const ScopeProfile& profile) {
  std::vector<std::uint64_t> key;
  key.reserve(profile.kernels.size() * 12 + 1);
  key.push_back(profile.kernels.size());
  for (const KernelStats& k : profile.kernels) {
    key.push_back(name_signature(profile.scope, k.name));
    key.push_back(k.config.grid.x);
    key.push_back(k.config.grid.y);
    key.push_back(k.config.grid.z);
    key.push_back(k.config.block.x);
    key.push_back(k.config.block.y);
    key.push_back(k.config.block.z);
    key.push_back(static_cast<std::uint64_t>(k.config.regs_per_thread));
    key.push_back(k.config.smem_static_bytes);
    key.push_back(k.config.smem_dynamic_bytes);
    key.push_back(static_cast<std::uint64_t>(k.launches));
    key.push_back(bits_of(k.avg_duration_us));
  }
  return key;
}

}  // namespace

const ConcurrencyDecision& KernelAnalyzer::decide(const ScopeProfile& profile) {
  auto it = decisions_.find(profile.scope);
  if (it != decisions_.end()) return it->second;

  ConcurrencyDecision decision;
  if (custom_model_) {
    decision = custom_model_(model_.props(), profile.scope, profile.kernels);
    ++solver_calls_;
    total_milp_nodes_ += static_cast<std::size_t>(decision.milp_nodes);
  } else {
    std::vector<std::uint64_t> key = solve_signature(profile);
    auto memo = solve_memo_.find(key);
    if (memo != solve_memo_.end()) {
      // Relabel the memoized solve for this scope: the numeric inputs
      // are identical, so the decision is too. No analysis ran, so no
      // analysis time (and no B&B nodes) is charged.
      decision = memo->second;
      decision.scope = profile.scope;
      GLP_CHECK(decision.per_kernel.size() == profile.kernels.size());
      for (std::size_t i = 0; i < decision.per_kernel.size(); ++i) {
        decision.per_kernel[i].name = profile.kernels[i].name;
      }
      decision.analysis_ms = 0.0;
      ++solve_cache_hits_;
    } else {
      decision = model_.analyze(profile.scope, profile.kernels);
      ++solver_calls_;
      total_milp_nodes_ += static_cast<std::size_t>(decision.milp_nodes);
      solve_memo_.emplace(std::move(key), decision);
    }
  }
  total_analysis_ms_ += decision.analysis_ms;
  auto [inserted, ok] = decisions_.emplace(profile.scope, std::move(decision));
  GLP_CHECK(ok);
  return inserted->second;
}

}  // namespace glp4nn
