#include "core/kernel_analyzer.hpp"

#include "common/check.hpp"

namespace glp4nn {

const ConcurrencyDecision& KernelAnalyzer::decide(const ScopeProfile& profile) {
  auto it = decisions_.find(profile.scope);
  if (it != decisions_.end()) return it->second;

  ConcurrencyDecision decision =
      custom_model_ ? custom_model_(model_.props(), profile.scope, profile.kernels)
                    : model_.analyze(profile.scope, profile.kernels);
  total_analysis_ms_ += decision.analysis_ms;
  auto [inserted, ok] = decisions_.emplace(profile.scope, std::move(decision));
  GLP_CHECK(ok);
  return inserted->second;
}

}  // namespace glp4nn
