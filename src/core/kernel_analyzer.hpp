#pragma once
// Kernel analyzer module (Fig. 5): the *concurrency analyzer* runs the
// analytical model (customisable via set_model, as the paper's module
// description allows), and the *concurrency maintainer* caches decisions
// per scope so each layer is analysed exactly once per device.

#include <functional>
#include <map>
#include <optional>

#include "core/analytical_model.hpp"

namespace glp4nn {

class KernelAnalyzer {
 public:
  using ModelFn = std::function<ConcurrencyDecision(
      const gpusim::DeviceProps&, const std::string&,
      const std::vector<KernelStats>&)>;

  explicit KernelAnalyzer(gpusim::DeviceProps props) : model_(std::move(props)) {}

  /// Analyze (or fetch the cached decision for) a profiled scope.
  const ConcurrencyDecision& decide(const ScopeProfile& profile);

  bool has_decision(const std::string& scope) const {
    return decisions_.count(scope) != 0;
  }
  const ConcurrencyDecision* decision(const std::string& scope) const {
    auto it = decisions_.find(scope);
    return it == decisions_.end() ? nullptr : &it->second;
  }
  const std::map<std::string, ConcurrencyDecision>& decisions() const {
    return decisions_;
  }
  /// Drop all cached decisions (forces re-profiling).
  void invalidate() { decisions_.clear(); }

  /// Replace the analytical model (ablations, custom models).
  void set_model(ModelFn model) { custom_model_ = std::move(model); }

  const AnalyticalModel& model() const { return model_; }
  double total_analysis_ms() const { return total_analysis_ms_; }

 private:
  AnalyticalModel model_;
  ModelFn custom_model_;
  std::map<std::string, ConcurrencyDecision> decisions_;
  double total_analysis_ms_ = 0.0;
};

}  // namespace glp4nn
