#pragma once
// Kernel analyzer module (Fig. 5): the *concurrency analyzer* runs the
// analytical model (customisable via set_model, as the paper's module
// description allows), and the *concurrency maintainer* caches decisions
// per scope so each layer is analysed exactly once per device.
//
// On top of the per-scope decision cache, solves are memoized across
// scopes: two scopes whose kernel-stat signatures match (same per-kernel
// launch configs, launch counts and duration bits, scope-relative names)
// share one analytical solve — the branch-and-bound runs once and the
// decision is relabelled for the new scope. Replicated layers (conv
// towers, stacked blocks) hit this constantly.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/analytical_model.hpp"

namespace glp4nn {

class KernelAnalyzer {
 public:
  using ModelFn = std::function<ConcurrencyDecision(
      const gpusim::DeviceProps&, const std::string&,
      const std::vector<KernelStats>&)>;

  explicit KernelAnalyzer(gpusim::DeviceProps props) : model_(std::move(props)) {}

  /// Analyze (or fetch the cached decision for) a profiled scope.
  const ConcurrencyDecision& decide(const ScopeProfile& profile);

  /// Joint solve for scopes that run *concurrently* on one device (DAG
  /// scheduling of independent operators): the union of every member's
  /// kernels enters ONE analytical solve, so the shared thread / shared-
  /// memory / concurrency-degree budgets (Eqs. 4–6) are split across the
  /// whole concurrent set instead of being granted to each scope in full.
  /// Each member's stream count becomes the clamped sum of its own
  /// kernels' solved instance counts, and its cached per-scope decision
  /// is *overwritten* with the joint one (later begin_scope calls pick it
  /// up). Joint solves are memoized by the concatenation of the members'
  /// solve signatures. Requires ≥ 1 member; with exactly one member this
  /// degenerates to decide(). Returns the per-member joint decisions in
  /// input order. No-op returning nullptr-equivalent (empty vector) when
  /// a custom model is installed — custom models may be scope-sensitive
  /// in ways a union solve cannot capture.
  std::vector<const ConcurrencyDecision*> decide_joint(
      const std::vector<const ScopeProfile*>& group);

  /// Joint concurrent-set solves actually run (fresh or memoized).
  std::size_t joint_solves() const { return joint_solves_; }

  bool has_decision(const std::string& scope) const {
    return decisions_.count(scope) != 0;
  }
  const ConcurrencyDecision* decision(const std::string& scope) const {
    auto it = decisions_.find(scope);
    return it == decisions_.end() ? nullptr : &it->second;
  }
  const std::map<std::string, ConcurrencyDecision>& decisions() const {
    return decisions_;
  }
  /// Drop all cached decisions (forces re-profiling).
  void invalidate() { decisions_.clear(); }

  /// Replace the analytical model (ablations, custom models).
  void set_model(ModelFn model) { custom_model_ = std::move(model); }

  const AnalyticalModel& model() const { return model_; }
  double total_analysis_ms() const { return total_analysis_ms_; }

  /// Fresh analytical-model (or custom-model) solves actually run.
  std::size_t solver_calls() const { return solver_calls_; }
  /// Scopes answered by relabelling a memoized solve instead.
  std::size_t solve_cache_hits() const { return solve_cache_hits_; }
  /// Branch-and-bound nodes explored across all fresh solves.
  std::size_t total_milp_nodes() const { return total_milp_nodes_; }

 private:
  AnalyticalModel model_;
  ModelFn custom_model_;
  std::map<std::string, ConcurrencyDecision> decisions_;
  /// Cross-scope solve memo: kernel-stat signature → solved decision.
  /// Bypassed when a custom model is installed (it may be stateful or
  /// scope-sensitive in ways the signature cannot capture).
  std::map<std::vector<std::uint64_t>, ConcurrencyDecision> solve_memo_;
  /// Joint-solve memo: framed member signatures → per-member decisions.
  std::map<std::vector<std::uint64_t>, std::vector<ConcurrencyDecision>>
      joint_memo_;
  double total_analysis_ms_ = 0.0;
  std::size_t solver_calls_ = 0;
  std::size_t solve_cache_hits_ = 0;
  std::size_t total_milp_nodes_ = 0;
  std::size_t joint_solves_ = 0;
};

}  // namespace glp4nn
