#include "core/resource_tracker.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace glp4nn {

ResourceTracker::Session& ResourceTracker::session_for(scuda::Context& ctx) {
  auto it = sessions_.find(&ctx);
  if (it == sessions_.end()) {
    Session session;
    session.api = std::make_unique<scupti::ActivityApi>(ctx);
    it = sessions_.emplace(&ctx, std::move(session)).first;
    Session& s = it->second;
    s.api->register_callbacks(
        [this, &s](std::uint8_t** buffer, std::size_t* size) {
          if (s.free_buffers.empty()) {
            s.free_buffers.push_back(
                std::make_unique<std::uint8_t[]>(kActivityBufferBytes));
          }
          *buffer = s.free_buffers.back().get();
          *size = kActivityBufferBytes;
          s.full.emplace_back(std::move(s.free_buffers.back()), 0);
          s.free_buffers.pop_back();
        },
        [&s](std::uint8_t* buffer, std::size_t /*size*/, std::size_t valid) {
          // Find the owning entry (always the most recent unfinalised one).
          for (auto& [owned, valid_bytes] : s.full) {
            if (owned.get() == buffer) {
              valid_bytes = valid;
              return;
            }
          }
          throw glp::InternalError("glp4nn: completed buffer not owned by pool");
        });
  }
  return it->second;
}

void ResourceTracker::begin_profiling(scuda::Context& ctx) {
  Session& s = session_for(ctx);
  GLP_REQUIRE(!s.active, "profiling already active on this device");
  s.active = true;
  s.min_correlation = ctx.device().last_correlation() + 1;
  s.api->enable(scupti::ActivityKind::kKernel);
}

bool ResourceTracker::profiling_active(const scuda::Context& ctx) const {
  auto it = sessions_.find(const_cast<scuda::Context*>(&ctx));
  return it != sessions_.end() && it->second.active;
}

ScopeProfile ResourceTracker::end_profiling(scuda::Context& ctx,
                                            const std::string& scope) {
  Session& s = session_for(ctx);
  GLP_REQUIRE(s.active, "end_profiling without begin_profiling");
  glp::WallTimer timer;

  s.api->flush_all();
  s.api->disable(scupti::ActivityKind::kKernel);
  s.active = false;

  ScopeProfile profile;
  profile.scope = scope;

  // Kernel parser: aggregate records by kernel name, preserving
  // first-seen (submission) order for determinism.
  std::map<std::string, std::size_t> index;
  for (auto& [buffer, valid] : s.full) {
    const auto records = scupti::ActivityApi::parse(buffer.get(), valid);
    for (const auto& view : records) {
      if (view.kind != scupti::ActivityKind::kKernel) continue;
      const scupti::ActivityKernel& k = view.kernel;
      if (k.correlation_id < s.min_correlation) continue;
      // Injected profiler-capture loss: the activity runtime silently
      // dropped this record (real CUPTI does this when buffers overflow).
      if (ctx.faults().should_drop_capture()) continue;

      ++records_collected_;
      mem_tt_bytes_ += kTimestampBytesPerRecord;

      auto [it, inserted] = index.emplace(k.name, profile.kernels.size());
      if (inserted) {
        KernelStats stats;
        stats.name = k.name;
        stats.config.grid = {k.grid_x, k.grid_y, k.grid_z};
        stats.config.block = {k.block_x, k.block_y, k.block_z};
        stats.config.regs_per_thread = k.registers_per_thread;
        stats.config.smem_static_bytes = k.static_shared_memory;
        stats.config.smem_dynamic_bytes = k.dynamic_shared_memory;
        profile.kernels.push_back(std::move(stats));
        mem_k_bytes_ += sizeof(gpusim::LaunchConfig) + it->first.size();
      }
      KernelStats& stats = profile.kernels[it->second];
      ++stats.launches;
      ++profile.total_launches;
      stats.total_duration_us +=
          static_cast<double>(k.end_ns - k.start_ns) / 1000.0;
    }
    // Record storage is released after parsing (paper §3.3.2); the buffer
    // returns to the pool for reuse.
    s.free_buffers.push_back(std::move(buffer));
  }
  s.full.clear();

  for (KernelStats& stats : profile.kernels) {
    stats.avg_duration_us = stats.total_duration_us / std::max(stats.launches, 1);
  }
  profile.mem_tt_bytes =
      static_cast<std::size_t>(profile.total_launches) * kTimestampBytesPerRecord;
  profile.mem_k_bytes = profile.kernels.size() * sizeof(gpusim::LaunchConfig);

  profile.profiling_ms = timer.elapsed_ms();
  total_profiling_ms_ += profile.profiling_ms;
  return profile;
}

std::size_t ResourceTracker::mem_cupti_bytes() const {
  std::size_t total = 0;
  for (const auto& [ctx, session] : sessions_) {
    total += session.api->runtime_memory_bytes();
    total += session.free_buffers.size() * kActivityBufferBytes;
    total += session.full.size() * kActivityBufferBytes;
  }
  return total;
}

}  // namespace glp4nn
