#pragma once
// Resource tracker (paper §3.1): the compact CUPTI-based *kernel
// profiler* plus the *kernel parser*. Shared across all devices (Fig. 5);
// each device gets a lazily-created profiling session holding its
// ActivityApi and buffer pool. Profiling a scope means: enable kernel
// activity, run the scope, drain the device, parse the records into
// per-kernel-type statistics.
//
// Memory accounting matches the paper's model (Eq. 10–11): mem_tt counts
// the timestamps retained per record, mem_K the launch configurations,
// mem_cupti the profiling runtime's own footprint. Record storage is
// released after parsing ("safe to be released after kernel analysis
// finished", §3.3.2) — the accounting keeps the high-water totals that
// Fig. 10 reports.

#include <cstdint>
#include <map>
#include <memory>

#include "core/types.hpp"
#include "simcupti/activity.hpp"

namespace glp4nn {

class ResourceTracker {
 public:
  ResourceTracker() = default;
  ResourceTracker(const ResourceTracker&) = delete;
  ResourceTracker& operator=(const ResourceTracker&) = delete;

  /// Start capturing kernel activity on `ctx`. Records with correlation
  /// ids below the current launch count are ignored at parse time, so
  /// kernels launched before this call never pollute the scope.
  void begin_profiling(scuda::Context& ctx);

  /// Stop capturing and parse what was collected into a ScopeProfile.
  /// The caller must have drained the device (the runtime scheduler
  /// synchronises before calling this).
  ScopeProfile end_profiling(scuda::Context& ctx, const std::string& scope);

  bool profiling_active(const scuda::Context& ctx) const;

  // --- lifetime accounting (Fig. 10 / Table 6) -----------------------------
  double total_profiling_ms() const { return total_profiling_ms_; }
  std::size_t mem_tt_bytes() const { return mem_tt_bytes_; }
  std::size_t mem_k_bytes() const { return mem_k_bytes_; }
  /// Current CUPTI-runtime footprint across live sessions.
  std::size_t mem_cupti_bytes() const;
  std::uint64_t records_collected() const { return records_collected_; }

  /// Size of the fixed activity buffers handed to the profiling runtime.
  static constexpr std::size_t kActivityBufferBytes = 64 * 1024;
  /// Bytes of timestamp data retained per kernel record (start + end).
  static constexpr std::size_t kTimestampBytesPerRecord = 2 * sizeof(std::uint64_t);

 private:
  struct Session {
    std::unique_ptr<scupti::ActivityApi> api;
    std::vector<std::unique_ptr<std::uint8_t[]>> free_buffers;
    /// (buffer, valid bytes) pairs completed by the runtime.
    std::vector<std::pair<std::unique_ptr<std::uint8_t[]>, std::size_t>> full;
    bool active = false;
    std::uint64_t min_correlation = 0;
  };

  Session& session_for(scuda::Context& ctx);

  std::map<scuda::Context*, Session> sessions_;
  double total_profiling_ms_ = 0.0;
  std::size_t mem_tt_bytes_ = 0;
  std::size_t mem_k_bytes_ = 0;
  std::uint64_t records_collected_ = 0;
};

}  // namespace glp4nn
