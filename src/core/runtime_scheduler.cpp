#include "core/runtime_scheduler.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace glp4nn {

RuntimeScheduler::RuntimeScheduler(scuda::Context& ctx, ResourceTracker& tracker,
                                   KernelAnalyzer& analyzer,
                                   StreamManager& streams,
                                   SchedulerOptions options)
    : ctx_(&ctx),
      tracker_(&tracker),
      analyzer_(&analyzer),
      streams_(&streams),
      options_(options) {
  GLP_REQUIRE(options_.max_streams >= 0 && options_.fixed_streams >= 0,
              "stream limits must be non-negative");
}

int RuntimeScheduler::clamp_streams(int requested) const {
  int s = requested;
  const int device_cap = ctx_->props().max_concurrent_kernels;
  s = std::min(s, device_cap);
  if (options_.max_streams > 0) s = std::min(s, options_.max_streams);
  if (options_.strict_repro) {
    // Largest power of two ≤ s that divides 32 (1, 2, 4, 8, 16, 32).
    int p = 1;
    while (p * 2 <= s && p * 2 <= 32) p *= 2;
    s = p;
  }
  return std::max(s, 1);
}

void RuntimeScheduler::set_tenant(const TenantContext& tenant) {
  GLP_REQUIRE(mode_ == Mode::kIdle, "cannot switch tenants mid-scope");
  GLP_REQUIRE(tenant.tenant >= 0, "tenant tags must be non-negative");
  GLP_REQUIRE(tenant.slot >= 0 && tenant.num_slots >= 1 &&
                  tenant.slot < tenant.num_slots,
              "tenant slot " << tenant.slot << " outside [0, "
                             << tenant.num_slots << ")");
  tenant_ = tenant;
  tenant_active_ = true;
}

void RuntimeScheduler::clear_tenant() {
  GLP_REQUIRE(mode_ == Mode::kIdle, "cannot switch tenants mid-scope");
  tenant_active_ = false;
}

gpusim::StreamId RuntimeScheduler::serial_stream() const {
  // A degraded scope stays serial *within the batch*: running it on the
  // tenant's home stream (instead of the device-wide default stream)
  // keeps other tenants' batches overlapping with it.
  return tenant_active_ ? tenant_.home_stream : gpusim::kDefaultStream;
}

void RuntimeScheduler::fork_from_home() {
  // Tenant fork: the scope's streams must observe everything already
  // queued on the batch's home stream (the producer of its inputs). With
  // the default stream as home the legacy barrier already covers this.
  if (!tenant_active_) return;
  const gpusim::StreamId home = tenant_.home_stream;
  if (home == gpusim::kDefaultStream) return;
  bool cross_stream = false;
  for (gpusim::StreamId s : pool_) cross_stream |= (s != home);
  if (!cross_stream) return;
  const gpusim::EventId ev = ctx_->device().record_event(home);
  for (gpusim::StreamId s : pool_) {
    if (s != home) ctx_->device().wait_event(s, ev);
  }
}

void RuntimeScheduler::begin_scope(const std::string& scope,
                                   std::size_t num_tasks) {
  GLP_REQUIRE(mode_ == Mode::kIdle, "dispatch scopes must not nest");
  current_scope_ = scope;
  current_tasks_ = num_tasks;

  if (serial_scopes_.count(scope) != 0) {
    // A fault degraded this scope to the serial baseline.
    pool_.assign(1, serial_stream());
    mode_ = Mode::kSteady;
    return;
  }

  if (options_.fixed_streams > 0) {
    pool_ = acquire_scope_pool(clamp_streams(options_.fixed_streams));
    mode_ = Mode::kSteady;
    fork_from_home();
    return;
  }

  const ConcurrencyDecision* decision = analyzer_->decision(scope);
  if (decision != nullptr) {
    pool_ = acquire_scope_pool(clamp_streams(decision->stream_count));
    mode_ = Mode::kSteady;
    fork_from_home();
  } else {
    tracker_->begin_profiling(*ctx_);
    mode_ = Mode::kProfiling;
  }
}

std::vector<gpusim::StreamId> RuntimeScheduler::acquire_pool(int count) {
  try {
    return streams_->acquire(*ctx_, count);
  } catch (const scuda::StreamCreateFailed&) {
    // Stream handles ran out (injected): degrade this scope to serial
    // dispatch permanently. Already-created pool streams stay in the
    // manager for scopes whose pools fit in them.
    serial_scopes_.insert(current_scope_);
    return std::vector<gpusim::StreamId>(1, serial_stream());
  }
}

std::vector<gpusim::StreamId> RuntimeScheduler::acquire_scope_pool(int count) {
  if (options_.policy == DispatchPolicy::kTenantSliced && tenant_active_) {
    // Slice geometry is uniform across scopes: slot s always owns
    // streams [s*W, (s+1)*W) with W = clamped device concurrency /
    // num_slots — independent of this scope's analyzer decision.
    // Analyzer decisions are per-scope (tenant- and batch-size-keyed),
    // so deriving W from `count` would let concurrent slots compute
    // different widths and hand out overlapping ranges; the decision
    // only shrinks how many of the slice's streams this scope uses.
    const int num_slots = std::max(1, tenant_.num_slots);
    const int slice_width = std::max(1, max_lanes() / num_slots);
    const int used = std::min(std::max(1, count), slice_width);
    try {
      return streams_->acquire_slice(*ctx_, tenant_.slot, slice_width, used,
                                     tenant_.priority);
    } catch (const scuda::StreamCreateFailed&) {
      serial_scopes_.insert(current_scope_);
      return std::vector<gpusim::StreamId>(1, serial_stream());
    }
  }
  return acquire_pool(count);
}

kern::Lane RuntimeScheduler::task_lane(std::size_t index) {
  GLP_REQUIRE(mode_ != Mode::kIdle, "task_lane outside a scope");
  if (mode_ == Mode::kProfiling) {
    return kern::Lane{gpusim::kDefaultStream, 0};
  }
  glp::WallTimer timer;
  std::size_t lane = 0;
  const std::size_t pool_size = pool_.size();
  switch (options_.policy) {
    case DispatchPolicy::kRoundRobin:
    case DispatchPolicy::kTenantSliced:  // round-robin within the slice
      lane = index % pool_size;
      break;
    case DispatchPolicy::kBlockCyclic: {
      const std::size_t block =
          (current_tasks_ + pool_size - 1) / pool_size;  // ceil
      lane = std::min(index / std::max<std::size_t>(block, 1), pool_size - 1);
      break;
    }
  }
  scheduling_ms_ += timer.elapsed_ms();
  return kern::Lane{pool_[lane], static_cast<int>(lane)};
}

int RuntimeScheduler::max_lanes() const {
  return clamp_streams(ctx_->props().max_concurrent_kernels);
}

void RuntimeScheduler::end_scope() {
  GLP_REQUIRE(mode_ != Mode::kIdle, "end_scope without begin_scope");
  if (mode_ == Mode::kProfiling) {
    // Drain so every record of this scope is collected, then analyse.
    ctx_->device().synchronize();
    const ScopeProfile profile =
        tracker_->end_profiling(*ctx_, current_scope_);
    if (!profile.kernels.empty()) {
      const ConcurrencyDecision& decision = analyzer_->decide(profile);
      // Charge the one-time overhead to the simulated host clock so
      // end-to-end timings include it (Table 6). A non-negative option
      // pins the charge for deterministic-timeline runs.
      const double charge_ms =
          options_.overhead_charge_ms >= 0.0
              ? options_.overhead_charge_ms
              : profile.profiling_ms + decision.analysis_ms;
      ctx_->device().host_advance(charge_ms * gpusim::kMs);
    } else if (current_tasks_ > 0) {
      // The scope ran tasks but the capture came back empty (profiler
      // record loss). Retry on the next encounter a bounded number of
      // times, then give up and serialise the scope — an undecided scope
      // must never profile forever.
      if (++profile_attempts_[current_scope_] >= kMaxProfileAttempts) {
        serial_scopes_.insert(current_scope_);
      }
    }
    // An empty scope (zero tasks) yields no decision; it will profile
    // again next time it runs non-empty.
  } else if (tenant_active_ &&
             tenant_.home_stream != gpusim::kDefaultStream) {
    // Tenant join: the batch's home stream waits for each slice stream,
    // keeping the barrier local to this batch — a device-wide
    // default-stream barrier would serialise concurrent tenants.
    const gpusim::StreamId home = tenant_.home_stream;
    for (gpusim::StreamId s : pool_) {
      if (s == home) continue;
      const gpusim::EventId ev = ctx_->device().record_event(s);
      ctx_->device().wait_event(home, ev);
    }
  } else {
    // Asynchronous barrier: later work on any stream observes the scope.
    ctx_->device().record_event(gpusim::kDefaultStream);
  }
  mode_ = Mode::kIdle;
  current_scope_.clear();
}

int RuntimeScheduler::stream_count(const std::string& scope) const {
  if (serial_scopes_.count(scope) != 0) return 1;
  if (options_.fixed_streams > 0) return clamp_streams(options_.fixed_streams);
  const ConcurrencyDecision* decision = analyzer_->decision(scope);
  return decision == nullptr ? 0 : clamp_streams(decision->stream_count);
}

}  // namespace glp4nn
