#include "core/runtime_scheduler.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "core/task_graph.hpp"

namespace glp4nn {

RuntimeScheduler::RuntimeScheduler(scuda::Context& ctx, ResourceTracker& tracker,
                                   KernelAnalyzer& analyzer,
                                   StreamManager& streams,
                                   SchedulerOptions options)
    : ctx_(&ctx),
      tracker_(&tracker),
      analyzer_(&analyzer),
      streams_(&streams),
      options_(options) {
  GLP_REQUIRE(options_.max_streams >= 0 && options_.fixed_streams >= 0,
              "stream limits must be non-negative");
}

int RuntimeScheduler::clamp_streams(int requested) const {
  int s = requested;
  const int device_cap = ctx_->props().max_concurrent_kernels;
  s = std::min(s, device_cap);
  if (options_.max_streams > 0) s = std::min(s, options_.max_streams);
  if (options_.strict_repro) {
    // Largest power of two ≤ s that divides 32 (1, 2, 4, 8, 16, 32).
    int p = 1;
    while (p * 2 <= s && p * 2 <= 32) p *= 2;
    s = p;
  }
  return std::max(s, 1);
}

void RuntimeScheduler::set_tenant(const TenantContext& tenant) {
  GLP_REQUIRE(mode_ == Mode::kIdle, "cannot switch tenants mid-scope");
  GLP_REQUIRE(tenant.tenant >= 0, "tenant tags must be non-negative");
  GLP_REQUIRE(tenant.slot >= 0 && tenant.num_slots >= 1 &&
                  tenant.slot < tenant.num_slots,
              "tenant slot " << tenant.slot << " outside [0, "
                             << tenant.num_slots << ")");
  tenant_ = tenant;
  tenant_active_ = true;
}

void RuntimeScheduler::clear_tenant() {
  GLP_REQUIRE(mode_ == Mode::kIdle, "cannot switch tenants mid-scope");
  tenant_active_ = false;
}

gpusim::StreamId RuntimeScheduler::active_home() const {
  if (dag_active_) return dag_.home_stream;
  if (tenant_active_) return tenant_.home_stream;
  return gpusim::kDefaultStream;
}

gpusim::StreamId RuntimeScheduler::serial_stream() const {
  // A degraded scope stays serial *within its op or batch*: running it on
  // the bound DAG op's chain stream (or the tenant's home stream) instead
  // of the device-wide default stream keeps independent ops and other
  // tenants' batches overlapping with it.
  return active_home();
}

void RuntimeScheduler::fork_from_home() {
  // Fork: the scope's streams must observe everything already queued on
  // the op's / batch's home stream (the producer of its inputs). With
  // the default stream as home the legacy barrier already covers this.
  const gpusim::StreamId home = active_home();
  if (home == gpusim::kDefaultStream) return;
  bool cross_stream = false;
  for (gpusim::StreamId s : pool_) cross_stream |= (s != home);
  if (!cross_stream) return;
  const gpusim::EventId ev = ctx_->device().record_event(home);
  for (gpusim::StreamId s : pool_) {
    if (s != home) ctx_->device().wait_event(s, ev);
  }
}

void RuntimeScheduler::begin_scope(const std::string& scope,
                                   std::size_t num_tasks) {
  GLP_REQUIRE(mode_ == Mode::kIdle, "dispatch scopes must not nest");
  current_scope_ = scope;
  current_tasks_ = num_tasks;

  if (serial_scopes_.count(scope) != 0) {
    // A fault degraded this scope to the serial baseline.
    pool_.assign(1, serial_stream());
    mode_ = Mode::kSteady;
    return;
  }

  if (options_.fixed_streams > 0) {
    pool_ = acquire_scope_pool(clamp_streams(options_.fixed_streams));
    mode_ = Mode::kSteady;
    fork_from_home();
    return;
  }

  const ConcurrencyDecision* decision = analyzer_->decision(scope);
  if (decision != nullptr) {
    pool_ = acquire_scope_pool(clamp_streams(decision->stream_count));
    mode_ = Mode::kSteady;
    fork_from_home();
  } else {
    tracker_->begin_profiling(*ctx_);
    mode_ = Mode::kProfiling;
  }
}

std::vector<gpusim::StreamId> RuntimeScheduler::acquire_pool(int count) {
  try {
    return streams_->acquire(*ctx_, count);
  } catch (const scuda::StreamCreateFailed&) {
    // Stream handles ran out (injected): degrade this scope to serial
    // dispatch permanently. Already-created pool streams stay in the
    // manager for scopes whose pools fit in them.
    serial_scopes_.insert(current_scope_);
    return std::vector<gpusim::StreamId>(1, serial_stream());
  }
}

std::vector<gpusim::StreamId> RuntimeScheduler::acquire_scope_pool(int count) {
  if (dag_active_) {
    // DAG op: the scope may only expand inside its op's slot slice, so
    // scopes of concurrently running ops never hand out overlapping
    // stream ranges (same argument as the tenant slices below). The
    // strict-repro clamp keeps the pool a divisor of 32 even after the
    // slice shrinks it, preserving the stream-stable gradient-slot order
    // the bit-exact contract relies on.
    const int num_slots = std::max(1, dag_.num_slots);
    const int slice_width = std::max(1, max_lanes() / num_slots);
    const int used = clamp_streams(std::min(std::max(1, count), slice_width));
    try {
      return streams_->acquire_slice(*ctx_, dag_.slot, slice_width, used,
                                     /*priority=*/0);
    } catch (const scuda::StreamCreateFailed&) {
      serial_scopes_.insert(current_scope_);
      return std::vector<gpusim::StreamId>(1, serial_stream());
    }
  }
  if (options_.policy == DispatchPolicy::kTenantSliced && tenant_active_) {
    // Slice geometry is uniform across scopes: slot s always owns
    // streams [s*W, (s+1)*W) with W = clamped device concurrency /
    // num_slots — independent of this scope's analyzer decision.
    // Analyzer decisions are per-scope (tenant- and batch-size-keyed),
    // so deriving W from `count` would let concurrent slots compute
    // different widths and hand out overlapping ranges; the decision
    // only shrinks how many of the slice's streams this scope uses.
    const int num_slots = std::max(1, tenant_.num_slots);
    const int slice_width = std::max(1, max_lanes() / num_slots);
    const int used = std::min(std::max(1, count), slice_width);
    try {
      return streams_->acquire_slice(*ctx_, tenant_.slot, slice_width, used,
                                     tenant_.priority);
    } catch (const scuda::StreamCreateFailed&) {
      serial_scopes_.insert(current_scope_);
      return std::vector<gpusim::StreamId>(1, serial_stream());
    }
  }
  return acquire_pool(count);
}

kern::Lane RuntimeScheduler::task_lane(std::size_t index) {
  GLP_REQUIRE(mode_ != Mode::kIdle, "task_lane outside a scope");
  if (mode_ == Mode::kProfiling) {
    return kern::Lane{gpusim::kDefaultStream, 0};
  }
  glp::WallTimer timer;
  std::size_t lane = 0;
  const std::size_t pool_size = pool_.size();
  switch (options_.policy) {
    case DispatchPolicy::kRoundRobin:
    case DispatchPolicy::kTenantSliced:  // round-robin within the slice
      lane = index % pool_size;
      break;
    case DispatchPolicy::kBlockCyclic: {
      const std::size_t block =
          (current_tasks_ + pool_size - 1) / pool_size;  // ceil
      lane = std::min(index / std::max<std::size_t>(block, 1), pool_size - 1);
      break;
    }
  }
  scheduling_ms_ += timer.elapsed_ms();
  return kern::Lane{pool_[lane], static_cast<int>(lane)};
}

int RuntimeScheduler::max_lanes() const {
  return clamp_streams(ctx_->props().max_concurrent_kernels);
}

void RuntimeScheduler::end_scope() {
  GLP_REQUIRE(mode_ != Mode::kIdle, "end_scope without begin_scope");
  if (mode_ == Mode::kProfiling) {
    // Drain so every record of this scope is collected, then analyse.
    ctx_->device().synchronize();
    const ScopeProfile profile =
        tracker_->end_profiling(*ctx_, current_scope_);
    if (!profile.kernels.empty()) {
      const ConcurrencyDecision& decision = analyzer_->decide(profile);
      // Charge the one-time overhead to the simulated host clock so
      // end-to-end timings include it (Table 6). A non-negative option
      // pins the charge for deterministic-timeline runs.
      const double charge_ms =
          options_.overhead_charge_ms >= 0.0
              ? options_.overhead_charge_ms
              : profile.profiling_ms + decision.analysis_ms;
      ctx_->device().host_advance(charge_ms * gpusim::kMs);
      if (dag_active_ && !dag_.concurrent_scopes.empty()) {
        maybe_joint_decide(profile);
      }
    } else if (current_tasks_ > 0) {
      // The scope ran tasks but the capture came back empty (profiler
      // record loss). Retry on the next encounter a bounded number of
      // times, then give up and serialise the scope — an undecided scope
      // must never profile forever.
      if (++profile_attempts_[current_scope_] >= kMaxProfileAttempts) {
        serial_scopes_.insert(current_scope_);
      }
    }
    // An empty scope (zero tasks) yields no decision; it will profile
    // again next time it runs non-empty.
  } else if (active_home() != gpusim::kDefaultStream) {
    // Local join: the op's / batch's home stream waits for each pool
    // stream, keeping the barrier local to this op or batch — a
    // device-wide default-stream barrier would serialise concurrent
    // branches and tenants.
    const gpusim::StreamId home = active_home();
    for (gpusim::StreamId s : pool_) {
      if (s == home) continue;
      const gpusim::EventId ev = ctx_->device().record_event(s);
      ctx_->device().wait_event(home, ev);
    }
  } else {
    // Asynchronous barrier: later work on any stream observes the scope.
    ctx_->device().record_event(gpusim::kDefaultStream);
  }
  mode_ = Mode::kIdle;
  current_scope_.clear();
}

void RuntimeScheduler::bind_dag_op(const kern::DagOpBinding& binding) {
  GLP_REQUIRE(mode_ == Mode::kIdle, "cannot bind a DAG op mid-scope");
  GLP_REQUIRE(binding.slot >= 0 && binding.num_slots >= 1 &&
                  binding.slot < binding.num_slots,
              "DAG op slot " << binding.slot << " outside [0, "
                             << binding.num_slots << ")");
  dag_ = binding;
  dag_active_ = true;
}

void RuntimeScheduler::clear_dag_op() {
  GLP_REQUIRE(mode_ == Mode::kIdle, "cannot clear a DAG op mid-scope");
  dag_active_ = false;
}

void RuntimeScheduler::maybe_joint_decide(const ScopeProfile& profile) {
  dag_profiles_[profile.scope] = profile;
  // The op's concurrent group, in name order so the trigger is
  // independent of which member finished profiling last.
  std::set<std::string> members(dag_.concurrent_scopes.begin(),
                                dag_.concurrent_scopes.end());
  members.insert(profile.scope);
  std::vector<const ScopeProfile*> group;
  for (const std::string& scope : members) {
    auto it = dag_profiles_.find(scope);
    if (it == dag_profiles_.end()) return;  // a member has not profiled yet
    group.push_back(&it->second);
  }
  const std::vector<const ConcurrencyDecision*> joint =
      analyzer_->decide_joint(group);
  if (joint.empty()) return;  // custom model: solo decisions stand
  ++dag_joint_groups_;
  // Charge the joint analysis to the simulated host clock like the solo
  // analysis above (pinned charge keeps deterministic timelines). The
  // whole-solve cost lives on the group's first member.
  const double charge_ms = options_.overhead_charge_ms >= 0.0
                               ? options_.overhead_charge_ms
                               : joint.front()->analysis_ms;
  ctx_->device().host_advance(charge_ms * gpusim::kMs);
}

std::vector<kern::DagPlacement> RuntimeScheduler::plan_dag(
    const std::vector<kern::DagOp>& ops) {
  GLP_REQUIRE(mode_ == Mode::kIdle, "cannot plan a DAG mid-scope");
  const std::size_t n = ops.size();
  std::vector<kern::DagPlacement> placements(n);
  if (n == 0) return placements;

  std::vector<std::vector<int>> deps(n);
  for (std::size_t i = 0; i < n; ++i) {
    deps[i] = ops[i].deps;
    std::sort(deps[i].begin(), deps[i].end());
  }
  task_consumers(deps);  // validates every edge points backwards

  // 1. Chain decomposition: an op joins its highest-indexed dependency's
  // chain when it is the first op to extend it (same-chain edges ride
  // stream FIFO for free); otherwise it opens a new chain.
  std::vector<int> chain_of(n, 0);
  std::vector<int> chain_tail;  // last op appended to each chain
  for (std::size_t i = 0; i < n; ++i) {
    int chain = -1;
    if (!deps[i].empty()) {
      const int last = deps[i].back();
      const int c = chain_of[static_cast<std::size_t>(last)];
      if (chain_tail[static_cast<std::size_t>(c)] == last) chain = c;
    }
    if (chain < 0) {
      chain = static_cast<int>(chain_tail.size());
      chain_tail.push_back(static_cast<int>(i));
    } else {
      chain_tail[static_cast<std::size_t>(chain)] = static_cast<int>(i);
    }
    chain_of[i] = chain;
  }
  const int num_chains = static_cast<int>(chain_tail.size());

  // 2. Which chains can overlap in time? Two ops are concurrent iff
  // neither reaches the other; two chains conflict iff any of their ops
  // are concurrent.
  const std::vector<std::vector<bool>> reach = task_reachability(deps);
  std::vector<std::vector<int>> chain_ops(
      static_cast<std::size_t>(num_chains));
  for (std::size_t i = 0; i < n; ++i) {
    chain_ops[static_cast<std::size_t>(chain_of[i])].push_back(
        static_cast<int>(i));
  }
  const auto concurrent = [&reach](int a, int b) {
    const auto ua = static_cast<std::size_t>(a);
    const auto ub = static_cast<std::size_t>(b);
    return !reach[ua][ub] && !reach[ub][ua];
  };
  std::vector<std::vector<bool>> chain_conflict(
      static_cast<std::size_t>(num_chains),
      std::vector<bool>(static_cast<std::size_t>(num_chains), false));
  for (int a = 0; a < num_chains; ++a) {
    for (int b = a + 1; b < num_chains; ++b) {
      bool conflict = false;
      for (int x : chain_ops[static_cast<std::size_t>(a)]) {
        for (int y : chain_ops[static_cast<std::size_t>(b)]) {
          conflict = conflict || concurrent(x, y);
        }
      }
      chain_conflict[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          conflict;
      chain_conflict[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] =
          conflict;
    }
  }

  // 3. Greedy coloring of the chain-conflict graph → slot per chain.
  // Chains that never overlap may share a slot (and its stream slice).
  std::vector<int> slot_of(static_cast<std::size_t>(num_chains), -1);
  int num_slots = 0;
  for (int c = 0; c < num_chains; ++c) {
    std::vector<bool> taken(static_cast<std::size_t>(num_chains), false);
    for (int other = 0; other < c; ++other) {
      if (chain_conflict[static_cast<std::size_t>(c)]
                        [static_cast<std::size_t>(other)]) {
        taken[static_cast<std::size_t>(slot_of[static_cast<std::size_t>(
            other)])] = true;
      }
    }
    int slot = 0;
    while (taken[static_cast<std::size_t>(slot)]) ++slot;
    slot_of[static_cast<std::size_t>(c)] = slot;
    num_slots = std::max(num_slots, slot + 1);
  }

  // 4. Home stream per chain: the first stream of its slot's slice. A
  // stream-creation fault degrades the chain to the default stream —
  // always ordering-safe (the host issues ops in topological order and
  // the default stream is a two-sided barrier).
  const int slice_width = std::max(1, max_lanes() / std::max(1, num_slots));
  std::vector<gpusim::StreamId> chain_home(
      static_cast<std::size_t>(num_chains), gpusim::kDefaultStream);
  for (int c = 0; c < num_chains; ++c) {
    const int slot = slot_of[static_cast<std::size_t>(c)];
    try {
      chain_home[static_cast<std::size_t>(c)] =
          streams_->acquire_slice(*ctx_, slot, slice_width, 1,
                                  /*priority=*/0)[0];
    } catch (const scuda::StreamCreateFailed&) {
      chain_home[static_cast<std::size_t>(c)] = gpusim::kDefaultStream;
    }
  }

  // 5. Emit placements; scope ops additionally learn which other scopes
  // can run concurrently with them (the analyzer's joint groups).
  for (std::size_t i = 0; i < n; ++i) {
    kern::DagPlacement& p = placements[i];
    p.chain = chain_of[i];
    p.slot = slot_of[static_cast<std::size_t>(chain_of[i])];
    p.num_slots = num_slots;
    p.stream = chain_home[static_cast<std::size_t>(chain_of[i])];
    if (ops[i].scope.empty()) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || ops[j].scope.empty()) continue;
      if (concurrent(static_cast<int>(i), static_cast<int>(j))) {
        p.concurrent_scopes.push_back(ops[j].scope);
      }
    }
    std::sort(p.concurrent_scopes.begin(), p.concurrent_scopes.end());
    p.concurrent_scopes.erase(
        std::unique(p.concurrent_scopes.begin(), p.concurrent_scopes.end()),
        p.concurrent_scopes.end());
  }
  return placements;
}

int RuntimeScheduler::stream_count(const std::string& scope) const {
  if (serial_scopes_.count(scope) != 0) return 1;
  if (options_.fixed_streams > 0) return clamp_streams(options_.fixed_streams);
  const ConcurrencyDecision* decision = analyzer_->decision(scope);
  return decision == nullptr ? 0 : clamp_streams(decision->stream_count);
}

}  // namespace glp4nn
