#pragma once
// Runtime scheduler (paper §3.1, workflow in Fig. 6): the per-device
// module that drives everything. Implements kern::KernelDispatcher so a
// Net can be switched from naive-Caffe to GLP4NN by swapping the
// dispatcher.
//
// Per scope (e.g. "conv1/fwd"):
//   first encounter — PROFILE: route every task to the default stream with
//     the resource tracker capturing kernel activity; at end_scope, drain
//     the device, parse, run the kernel analyzer (analytical model), cache
//     the decision, and size the stream pool. The one-time T_p + T_a wall
//     cost is charged to the simulated host clock, so end-to-end timings
//     include GLP4NN's overhead (Table 6 honesty).
//   afterwards — STEADY: round-robin tasks over the scope's stream pool;
//     end_scope posts an asynchronous default-stream barrier.
//
// Options cover the ablations DESIGN.md lists: dispatch policy, a stream
// cap, strict-repro pool rounding (bit-identical training), and a fixed
// pool size that bypasses the model (the Fig. 2/4 manual baseline).

#include <map>
#include <set>
#include <string>

#include "core/kernel_analyzer.hpp"
#include "core/resource_tracker.hpp"
#include "core/stream_manager.hpp"
#include "kernels/dispatch.hpp"

namespace glp4nn {

enum class DispatchPolicy {
  kRoundRobin,   ///< task i → stream (i mod S) — the paper's policy
  kBlockCyclic,  ///< contiguous blocks of tasks per stream (ablation)
  /// Multi-tenant serving: with a TenantContext set, the clamped device
  /// concurrency degree is divided into one fixed-width slice per
  /// in-flight batch slot and the scope runs on its slot's slice (the
  /// analyzer's decision only shrinks the streams used *within* the
  /// slice), round-robin within the slice. Slice boundaries are
  /// independent of per-scope decisions, so concurrent slots can never
  /// hand out overlapping stream ranges. Without a tenant this behaves
  /// exactly like kRoundRobin.
  kTenantSliced,
};

/// Ambient multi-tenant context for serving. While one is set on the
/// scheduler, steady scopes run on the tenant's slice of the stream pool
/// and fork/join against the batch's *home stream* instead of the
/// device-wide default-stream barrier, so concurrent batches overlap.
struct TenantContext {
  int tenant = 0;     ///< tag for the simulated timeline (≥ 0)
  int priority = 0;   ///< stream priority for the tenant's slice
  int slot = 0;       ///< in-flight batch slot → stream-pool slice index
  int num_slots = 1;  ///< concurrent slots the pool is divided between
  gpusim::StreamId home_stream = gpusim::kDefaultStream;
};

struct SchedulerOptions {
  DispatchPolicy policy = DispatchPolicy::kRoundRobin;
  /// Cap on the analyzer's stream count (0 = device concurrency degree).
  int max_streams = 0;
  /// Round pool sizes down to a divisor of 32 so gradient-slot order is
  /// stream-stable → bit-identical training vs the serial baseline
  /// (extension; see ConvolutionLayer docs).
  bool strict_repro = false;
  /// Skip profiling/analysis and always use this many streams (manual
  /// baseline for Figs. 2 and 4; 0 = disabled).
  int fixed_streams = 0;
  /// One-time scope overhead charged to the simulated host clock after
  /// each profiling analysis. Negative (default) charges the *measured*
  /// wall time (T_p + T_a, the honest Table 6 accounting) — which makes
  /// absolute simulated timestamps vary run to run with machine speed.
  /// Set >= 0 to charge this fixed amount instead, making the simulated
  /// timeline fully deterministic (the engine-equivalence harness relies
  /// on this to compare timelines bit for bit).
  double overhead_charge_ms = -1.0;
};

class RuntimeScheduler final : public kern::KernelDispatcher {
 public:
  RuntimeScheduler(scuda::Context& ctx, ResourceTracker& tracker,
                   KernelAnalyzer& analyzer, StreamManager& streams,
                   SchedulerOptions options = {});

  // --- kern::KernelDispatcher ------------------------------------------------
  void begin_scope(const std::string& scope, std::size_t num_tasks) override;
  kern::Lane task_lane(std::size_t index) override;
  int max_lanes() const override;
  void end_scope() override;
  /// Steady scopes may be lane-coalesced (kern::CoalescingDispatcher):
  /// the pool decision is already cached and the tracker is not watching.
  /// Profiling scopes must stay launch-for-launch visible so the
  /// analytical model sees real per-kernel records.
  bool scope_coalescable() const override { return mode_ == Mode::kSteady; }

  // --- inter-operator DAG scheduling ---------------------------------------
  /// Plan a whole op DAG onto concurrent stream chains: ops inherit their
  /// last dependency's chain when possible (same-stream edges are free),
  /// chains that may overlap in time are colored onto disjoint stream-pool
  /// slices, and each scope op learns which other scopes can run
  /// concurrently with it (feeds the analyzer's joint resource model).
  std::vector<kern::DagPlacement> plan_dag(
      const std::vector<kern::DagOp>& ops) override;
  /// Route the next issued op's scopes: fork/join against the op's chain
  /// home stream (instead of the device-wide default barrier) and expand
  /// pools only within the op's slot slice.
  void bind_dag_op(const kern::DagOpBinding& binding) override;
  void clear_dag_op() override;
  /// Binding of the DAG op currently being issued (nullptr when none).
  const kern::DagOpBinding* dag_binding() const {
    return dag_active_ ? &dag_ : nullptr;
  }
  /// Concurrent scope groups that completed a joint analyzer solve.
  std::size_t dag_joint_groups() const { return dag_joint_groups_; }

  // --- introspection -----------------------------------------------------------
  /// Stream count the scheduler uses for a scope (0 if not yet decided).
  int stream_count(const std::string& scope) const;
  const KernelAnalyzer& analyzer() const { return *analyzer_; }
  KernelAnalyzer& analyzer() { return *analyzer_; }
  const SchedulerOptions& options() const { return options_; }
  scuda::Context& context() { return *ctx_; }

  /// Wall-clock scheduling cost accumulated in task_lane (the paper's
  /// T_s — negligible for the static policy, measured anyway).
  double scheduling_ms() const { return scheduling_ms_; }

  /// Effective pool size after the option clamps (exposed for tests).
  int clamp_streams(int requested) const;

  // --- multi-tenant serving ------------------------------------------------
  /// Set the tenant context for subsequently issued scopes (must not be
  /// called mid-scope). Under DispatchPolicy::kTenantSliced this routes
  /// the scope onto the tenant's stream-pool slice.
  void set_tenant(const TenantContext& tenant);
  /// Clear the tenant context (must not be called mid-scope).
  void clear_tenant();
  /// Active tenant context, or nullptr when none is set.
  const TenantContext* tenant() const {
    return tenant_active_ ? &tenant_ : nullptr;
  }

  // --- fault degradation ---------------------------------------------------
  // Injected runtime faults never abort training; they shrink the scope
  // back to the serial baseline:
  //  * stream-creation failure while sizing a pool → the scope runs on
  //    the default stream from then on;
  //  * profiler-capture loss → the scope is re-profiled on its next run,
  //    and after kMaxProfileAttempts empty captures it is serialised
  //    instead of profiling forever.

  /// True when a fault permanently degraded `scope` to serial dispatch.
  bool scope_serialized(const std::string& scope) const {
    return serial_scopes_.count(scope) != 0;
  }
  /// Number of scopes degraded to serial dispatch by injected faults.
  std::size_t serial_fallback_count() const { return serial_scopes_.size(); }

  /// Empty profiling captures tolerated before a scope is serialised.
  static constexpr int kMaxProfileAttempts = 3;

 private:
  /// Acquire a pool of `count` streams, degrading the current scope to
  /// serial dispatch when stream creation fails (injected fault).
  std::vector<gpusim::StreamId> acquire_pool(int count);
  /// Pool for the current scope: the tenant's slice under kTenantSliced
  /// with an active tenant, the shared pool otherwise.
  std::vector<gpusim::StreamId> acquire_scope_pool(int count);
  /// Stream a degraded (serial) scope runs on: the bound DAG op's or the
  /// tenant's home stream when one is active, else the default stream.
  gpusim::StreamId serial_stream() const;
  /// Make the scope's pool observe work already queued on the active home
  /// stream (begin_scope) — the fork half of the op/batch-local barrier.
  void fork_from_home();
  /// Home stream of the active DAG op or tenant (default stream if none).
  gpusim::StreamId active_home() const;
  /// After a profiling end_scope under a DAG binding: stash the profile
  /// and, once every member of the op's concurrent group has one, run the
  /// analyzer's joint solve and charge its cost.
  void maybe_joint_decide(const ScopeProfile& profile);

  scuda::Context* ctx_;
  ResourceTracker* tracker_;
  KernelAnalyzer* analyzer_;
  StreamManager* streams_;
  SchedulerOptions options_;

  enum class Mode { kIdle, kProfiling, kSteady };
  Mode mode_ = Mode::kIdle;
  std::string current_scope_;
  std::size_t current_tasks_ = 0;
  std::vector<gpusim::StreamId> pool_;
  double scheduling_ms_ = 0.0;
  std::set<std::string> serial_scopes_;        ///< fault-degraded scopes
  std::map<std::string, int> profile_attempts_;  ///< empty captures per scope
  TenantContext tenant_;
  bool tenant_active_ = false;
  kern::DagOpBinding dag_;
  bool dag_active_ = false;
  /// Profiles stashed for concurrent-group members awaiting a joint solve.
  std::map<std::string, ScopeProfile> dag_profiles_;
  std::size_t dag_joint_groups_ = 0;
};

}  // namespace glp4nn
