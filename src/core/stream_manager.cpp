#include "core/stream_manager.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace glp4nn {

std::vector<gpusim::StreamId> StreamManager::acquire(scuda::Context& ctx,
                                                     int count) {
  GLP_REQUIRE(count >= 1, "stream pool request must be positive");
  GLP_REQUIRE(count <= ctx.props().max_concurrent_kernels,
              "requesting " << count
                            << " streams exceeds the device concurrency degree "
                            << ctx.props().max_concurrent_kernels);
  std::vector<scuda::Stream>& pool = pools_[&ctx];
  while (static_cast<int>(pool.size()) < count) {
    pool.push_back(scuda::Stream::create(ctx));
  }
  std::vector<gpusim::StreamId> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    ids.push_back(pool[static_cast<std::size_t>(i)].id());
  }
  return ids;
}

std::vector<gpusim::StreamId> StreamManager::acquire_slice(scuda::Context& ctx,
                                                           int slice,
                                                           int slice_width,
                                                           int use_width,
                                                           int priority) {
  GLP_REQUIRE(slice >= 0, "slice index must be non-negative");
  GLP_REQUIRE(slice_width >= 1, "slice width must be positive");
  GLP_REQUIRE(use_width >= 1 && use_width <= slice_width,
              "used width " << use_width << " outside [1, slice width "
                            << slice_width << "]");
  GLP_REQUIRE(slice_width <= ctx.props().max_concurrent_kernels,
              "slice width " << slice_width
                             << " exceeds the device concurrency degree "
                             << ctx.props().max_concurrent_kernels);
  std::vector<scuda::Stream>& pool = pools_[&ctx];
  const int base = slice * slice_width;
  // Filler streams below this slice belong to other slots: create them
  // with default priority so this caller's priority never sticks to a
  // lower slot's slice (priority only applies at creation).
  while (static_cast<int>(pool.size()) < base) {
    pool.push_back(scuda::Stream::create(ctx));
  }
  const int total = base + use_width;
  while (static_cast<int>(pool.size()) < total) {
    pool.push_back(scuda::Stream::create(ctx, priority));
  }
  std::vector<gpusim::StreamId> ids;
  ids.reserve(static_cast<std::size_t>(use_width));
  for (int i = base; i < total; ++i) {
    ids.push_back(pool[static_cast<std::size_t>(i)].id());
  }
  return ids;
}

int StreamManager::pool_size(const scuda::Context& ctx) const {
  auto it = pools_.find(const_cast<scuda::Context*>(&ctx));
  return it == pools_.end() ? 0 : static_cast<int>(it->second.size());
}

int StreamManager::max_pool_size() const {
  int best = 0;
  for (const auto& [ctx, pool] : pools_) {
    best = std::max(best, static_cast<int>(pool.size()));
  }
  return best;
}

}  // namespace glp4nn
