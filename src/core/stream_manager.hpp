#pragma once
// Stream manager (paper §3.1): owns the *concurrent stream pool* per
// device plus access to the default stream used for synchronisation.
// Pools grow on demand and streams are reused across scopes, so GLP4NN
// never consumes extra host threads or processes — the property the
// paper contrasts against OpenMP-based schemes.

#include <map>
#include <vector>

#include "simcuda/context.hpp"

namespace glp4nn {

class StreamManager {
 public:
  StreamManager() = default;
  StreamManager(const StreamManager&) = delete;
  StreamManager& operator=(const StreamManager&) = delete;

  /// Return `count` stream ids from the device's pool, growing it if
  /// needed. The returned span stays valid until the manager dies.
  std::vector<gpusim::StreamId> acquire(scuda::Context& ctx, int count);

  /// Return the first `use_width` streams of the `slice`-th disjoint
  /// window of `slice_width` streams — streams [slice*slice_width,
  /// slice*slice_width + use_width) — growing the pool on demand.
  /// Multi-tenant serving maps each in-flight batch slot to its own
  /// slice with a *uniform* slice_width, so slices from concurrent slots
  /// can never overlap even when callers use different use_widths.
  /// Streams this call creates inside the slice take `priority`; filler
  /// streams below the slice (they belong to other slots) are created
  /// with default priority. Streams already in the pool keep the
  /// priority they were created with.
  std::vector<gpusim::StreamId> acquire_slice(scuda::Context& ctx, int slice,
                                              int slice_width, int use_width,
                                              int priority = 0);

  /// Current pool size for a device (0 before first acquire).
  int pool_size(const scuda::Context& ctx) const;

  /// High-water pool size across all devices.
  int max_pool_size() const;

 private:
  std::map<scuda::Context*, std::vector<scuda::Stream>> pools_;
};

}  // namespace glp4nn
