#pragma once
// Stream manager (paper §3.1): owns the *concurrent stream pool* per
// device plus access to the default stream used for synchronisation.
// Pools grow on demand and streams are reused across scopes, so GLP4NN
// never consumes extra host threads or processes — the property the
// paper contrasts against OpenMP-based schemes.

#include <map>
#include <vector>

#include "simcuda/context.hpp"

namespace glp4nn {

class StreamManager {
 public:
  StreamManager() = default;
  StreamManager(const StreamManager&) = delete;
  StreamManager& operator=(const StreamManager&) = delete;

  /// Return `count` stream ids from the device's pool, growing it if
  /// needed. The returned span stays valid until the manager dies.
  std::vector<gpusim::StreamId> acquire(scuda::Context& ctx, int count);

  /// Return the `slice`-th disjoint window of `width` streams from the
  /// pool — streams [slice*width, (slice+1)*width) — growing the pool on
  /// demand. Multi-tenant serving maps each in-flight batch slot to its
  /// own slice, so concurrent batches never share a stream. Streams this
  /// call creates take `priority` (streams already in the pool keep the
  /// priority they were created with).
  std::vector<gpusim::StreamId> acquire_slice(scuda::Context& ctx, int slice,
                                              int width, int priority = 0);

  /// Current pool size for a device (0 before first acquire).
  int pool_size(const scuda::Context& ctx) const;

  /// High-water pool size across all devices.
  int max_pool_size() const;

 private:
  std::map<scuda::Context*, std::vector<scuda::Stream>> pools_;
};

}  // namespace glp4nn
