#include "core/task_graph.hpp"

#include <map>

#include "common/check.hpp"

namespace glp4nn {

int TaskGraph::add_task(std::string name, TaskFn fn, std::vector<int> deps,
                        int tenant) {
  const int id = static_cast<int>(tasks_.size());
  for (int dep : deps) {
    GLP_REQUIRE(dep >= 0 && dep < id,
                "task '" << name << "' depends on unknown/later task " << dep);
  }
  Task task;
  task.name = std::move(name);
  task.fn = std::move(fn);
  task.deps = std::move(deps);
  task.tenant = tenant;
  tasks_.push_back(std::move(task));
  return id;
}

const std::string& TaskGraph::name(int task) const {
  GLP_REQUIRE(task >= 0 && task < size(), "unknown task " << task);
  return tasks_[static_cast<std::size_t>(task)].name;
}

const std::vector<int>& TaskGraph::deps(int task) const {
  GLP_REQUIRE(task >= 0 && task < size(), "unknown task " << task);
  return tasks_[static_cast<std::size_t>(task)].deps;
}

int TaskGraph::tenant(int task) const {
  GLP_REQUIRE(task >= 0 && task < size(), "unknown task " << task);
  return tasks_[static_cast<std::size_t>(task)].tenant;
}

std::vector<gpusim::StreamId> TaskGraph::run(
    scuda::Context& ctx, const std::vector<gpusim::StreamId>& pool,
    kern::ComputeMode mode) {
  GLP_REQUIRE(!pool.empty(), "task graph needs at least one stream");
  std::vector<gpusim::StreamId> placement(tasks_.size(), pool[0]);
  // Event recorded after each task, created lazily on first cross-stream use.
  std::vector<gpusim::EventId> done_event(tasks_.size(), 0);
  std::vector<bool> has_event(tasks_.size(), false);
  std::size_t next_rr = 0;
  const int ambient_tenant = ctx.device().current_tenant();

  for (std::size_t id = 0; id < tasks_.size(); ++id) {
    Task& task = tasks_[id];

    // Placement: inherit the stream of the last dependency (free FIFO
    // ordering); independent tasks round-robin across the pool.
    gpusim::StreamId stream;
    if (task.deps.empty()) {
      stream = pool[next_rr++ % pool.size()];
    } else {
      stream = placement[static_cast<std::size_t>(task.deps.back())];
    }
    placement[id] = stream;

    // Cross-stream edges: wait on the producer's completion event.
    for (int dep : task.deps) {
      const auto d = static_cast<std::size_t>(dep);
      if (placement[d] == stream) continue;  // FIFO covers it
      GLP_CHECK_MSG(has_event[d],
                    "producer '" << tasks_[d].name << "' has no event");
      ctx.device().wait_event(stream, done_event[d]);
    }

    kern::Launcher launcher;
    launcher.ctx = &ctx;
    launcher.stream = stream;
    launcher.mode = mode;
    launcher.name_prefix = task.name;
    // Stamp the task's tenant on everything it launches, restoring the
    // ambient tag afterwards (tasks from different tenants can share one
    // graph).
    ctx.device().set_current_tenant(task.tenant >= 0 ? task.tenant
                                                     : ambient_tenant);
    task.fn(launcher);
    ctx.device().set_current_tenant(ambient_tenant);

    // Record a completion event only if a later task on another stream
    // might need it. We cannot know yet, so record for every task that has
    // at least one consumer... consumers are not known either (edges point
    // backwards). Record unconditionally — event records are cheap ops.
    done_event[id] = ctx.device().record_event(stream);
    has_event[id] = true;
  }
  return placement;
}

}  // namespace glp4nn
