#include "core/task_graph.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"

namespace glp4nn {

std::vector<std::vector<int>> task_consumers(
    const std::vector<std::vector<int>>& deps) {
  std::vector<std::vector<int>> consumers(deps.size());
  for (std::size_t i = 0; i < deps.size(); ++i) {
    for (int dep : deps[i]) {
      GLP_REQUIRE(dep >= 0 && static_cast<std::size_t>(dep) < i,
                  "node " << i << " depends on unknown/later node " << dep);
      consumers[static_cast<std::size_t>(dep)].push_back(static_cast<int>(i));
    }
  }
  return consumers;
}

bool is_topological_order(const std::vector<std::vector<int>>& deps,
                          const std::vector<int>& order) {
  if (order.size() != deps.size()) return false;
  std::vector<int> position(deps.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int node = order[i];
    if (node < 0 || static_cast<std::size_t>(node) >= deps.size()) return false;
    if (position[static_cast<std::size_t>(node)] != -1) return false;  // dup
    position[static_cast<std::size_t>(node)] = static_cast<int>(i);
  }
  for (std::size_t i = 0; i < deps.size(); ++i) {
    for (int dep : deps[i]) {
      if (position[static_cast<std::size_t>(dep)] >= position[i]) return false;
    }
  }
  return true;
}

std::vector<int> wave_levels(const std::vector<std::vector<int>>& deps) {
  std::vector<int> wave(deps.size(), 0);
  for (std::size_t i = 0; i < deps.size(); ++i) {
    for (int dep : deps[i]) {
      wave[i] = std::max(wave[i], wave[static_cast<std::size_t>(dep)] + 1);
    }
  }
  return wave;
}

std::vector<std::vector<bool>> task_reachability(
    const std::vector<std::vector<int>>& deps) {
  // reach[a][b]: path a → b (b depends, transitively, on a). Nodes are in
  // topological order, so one forward sweep accumulating each node's
  // ancestor rows suffices.
  const std::size_t n = deps.size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (std::size_t b = 0; b < n; ++b) {
    reach[b][b] = true;
    for (int dep : deps[b]) {
      const auto a = static_cast<std::size_t>(dep);
      for (std::size_t r = 0; r <= a; ++r) {
        if (reach[r][a]) reach[r][b] = true;
      }
    }
  }
  return reach;
}

ReadySet::ReadySet(const std::vector<std::vector<int>>& deps)
    : consumers_(task_consumers(deps)),
      pending_(deps.size(), 0),
      complete_flag_(deps.size(), false) {
  for (std::size_t i = 0; i < deps.size(); ++i) {
    pending_[i] = static_cast<int>(deps[i].size());
    if (pending_[i] == 0) ready_.push_back(static_cast<int>(i));
  }
}

bool ReadySet::is_ready(int node) const {
  GLP_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < pending_.size(),
              "unknown node " << node);
  return !complete_flag_[static_cast<std::size_t>(node)] &&
         pending_[static_cast<std::size_t>(node)] == 0;
}

bool ReadySet::is_complete(int node) const {
  GLP_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < pending_.size(),
              "unknown node " << node);
  return complete_flag_[static_cast<std::size_t>(node)];
}

std::vector<int> ReadySet::complete(int node) {
  GLP_REQUIRE(is_ready(node), "node " << node << " is not ready");
  const auto n = static_cast<std::size_t>(node);
  complete_flag_[n] = true;
  ++num_complete_;
  ready_.erase(std::find(ready_.begin(), ready_.end(), node));
  std::vector<int> newly_ready;
  for (int consumer : consumers_[n]) {
    if (--pending_[static_cast<std::size_t>(consumer)] == 0) {
      newly_ready.push_back(consumer);
    }
  }
  // Consumers are ascending and ready_ was sorted, so a merge keeps it so.
  for (int r : newly_ready) ready_.push_back(r);
  std::sort(ready_.begin(), ready_.end());
  return newly_ready;
}

int TaskGraph::add_task(std::string name, TaskFn fn, std::vector<int> deps,
                        int tenant) {
  const int id = static_cast<int>(tasks_.size());
  for (int dep : deps) {
    GLP_REQUIRE(dep >= 0 && dep < id,
                "task '" << name << "' depends on unknown/later task " << dep);
  }
  Task task;
  task.name = std::move(name);
  task.fn = std::move(fn);
  task.deps = std::move(deps);
  task.tenant = tenant;
  tasks_.push_back(std::move(task));
  return id;
}

const std::string& TaskGraph::name(int task) const {
  GLP_REQUIRE(task >= 0 && task < size(), "unknown task " << task);
  return tasks_[static_cast<std::size_t>(task)].name;
}

const std::vector<int>& TaskGraph::deps(int task) const {
  GLP_REQUIRE(task >= 0 && task < size(), "unknown task " << task);
  return tasks_[static_cast<std::size_t>(task)].deps;
}

int TaskGraph::tenant(int task) const {
  GLP_REQUIRE(task >= 0 && task < size(), "unknown task " << task);
  return tasks_[static_cast<std::size_t>(task)].tenant;
}

std::vector<int> TaskGraph::consumers(int task) const {
  GLP_REQUIRE(task >= 0 && task < size(), "unknown task " << task);
  std::vector<int> out;
  for (std::size_t id = static_cast<std::size_t>(task) + 1; id < tasks_.size();
       ++id) {
    const auto& deps = tasks_[id].deps;
    if (std::find(deps.begin(), deps.end(), task) != deps.end()) {
      out.push_back(static_cast<int>(id));
    }
  }
  return out;
}

std::vector<std::vector<int>> TaskGraph::dep_lists() const {
  std::vector<std::vector<int>> deps;
  deps.reserve(tasks_.size());
  for (const Task& task : tasks_) deps.push_back(task.deps);
  return deps;
}

std::vector<int> TaskGraph::waves() const { return wave_levels(dep_lists()); }

std::vector<gpusim::StreamId> TaskGraph::run(
    scuda::Context& ctx, const std::vector<gpusim::StreamId>& pool,
    kern::ComputeMode mode) {
  GLP_REQUIRE(!pool.empty(), "task graph needs at least one stream");
  std::vector<gpusim::StreamId> placement(tasks_.size(), pool[0]);
  // Event recorded after each task, created lazily on first cross-stream use.
  std::vector<gpusim::EventId> done_event(tasks_.size(), 0);
  std::vector<bool> has_event(tasks_.size(), false);
  // Tasks with at least one consumer might feed a cross-stream edge and
  // get a completion event recorded right after their kernels; sinks
  // never need one.
  std::vector<bool> has_consumer(tasks_.size(), false);
  for (const Task& task : tasks_) {
    for (int dep : task.deps) {
      has_consumer[static_cast<std::size_t>(dep)] = true;
    }
  }
  std::size_t next_rr = 0;
  const int ambient_tenant = ctx.device().current_tenant();

  for (std::size_t id = 0; id < tasks_.size(); ++id) {
    Task& task = tasks_[id];

    // Placement: inherit the stream of the last dependency (free FIFO
    // ordering); independent tasks round-robin across the pool.
    gpusim::StreamId stream;
    if (task.deps.empty()) {
      stream = pool[next_rr++ % pool.size()];
    } else {
      stream = placement[static_cast<std::size_t>(task.deps.back())];
    }
    placement[id] = stream;

    // Cross-stream edges: wait on the producer's completion event.
    for (int dep : task.deps) {
      const auto d = static_cast<std::size_t>(dep);
      if (placement[d] == stream) continue;  // FIFO covers it
      GLP_CHECK_MSG(has_event[d],
                    "producer '" << tasks_[d].name << "' has no event");
      ctx.device().wait_event(stream, done_event[d]);
    }

    kern::Launcher launcher;
    launcher.ctx = &ctx;
    launcher.stream = stream;
    launcher.mode = mode;
    launcher.name_prefix = task.name;
    // Stamp the task's tenant on everything it launches, restoring the
    // ambient tag afterwards (tasks from different tenants can share one
    // graph).
    ctx.device().set_current_tenant(task.tenant >= 0 ? task.tenant
                                                     : ambient_tenant);
    task.fn(launcher);
    ctx.device().set_current_tenant(ambient_tenant);

    // Record a completion event only for tasks some later task consumes —
    // a consumer placed on another stream will wait on it; sinks (and the
    // graph's last tasks) skip the record entirely.
    if (has_consumer[id]) {
      done_event[id] = ctx.device().record_event(stream);
      has_event[id] = true;
    }
  }
  return placement;
}

}  // namespace glp4nn
