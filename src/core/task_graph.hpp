#pragma once
// Dependency-aware scheduling — the first item of the paper's future work
// (§6: "complex kernel dependencies, such as the dataflow-like dependency
// model in Tensorflow"). A TaskGraph holds tasks with explicit edges;
// run() executes them over a stream pool, preserving every edge with CUDA
// events while letting independent tasks overlap.
//
// Placement policy: a task prefers the stream of its highest-indexed
// dependency (same-stream edges are free — FIFO order covers them);
// otherwise round-robin. Cross-stream edges get a recorded event on the
// producer's stream and a wait on the consumer's.

#include <functional>
#include <string>
#include <vector>

#include "kernels/launcher.hpp"
#include "simcuda/context.hpp"

namespace glp4nn {

// --- DAG utilities ----------------------------------------------------------
// Free functions over an adjacency list `deps` (deps[i] lists the
// predecessors of node i, each < i — the build-in-topological-order
// representation TaskGraph and the DAG planner share).

/// Consumer (forward) adjacency: consumers(deps)[p] lists every node that
/// depends on p, in ascending order.
std::vector<std::vector<int>> task_consumers(
    const std::vector<std::vector<int>>& deps);

/// Is `order` a permutation of [0, n) that visits every node after all of
/// its dependencies?
bool is_topological_order(const std::vector<std::vector<int>>& deps,
                          const std::vector<int>& order);

/// Longest-path level of each node (roots are wave 0). Nodes in the same
/// wave are pairwise independent along the longest-path axis and give the
/// classic wavefront schedule.
std::vector<int> wave_levels(const std::vector<std::vector<int>>& deps);

/// Dense transitive closure: reach[a][b] is true iff a == b or there is a
/// directed path a → b. Quadratic memory — DAGs here are layer graphs
/// (tens of nodes), not kernel graphs.
std::vector<std::vector<bool>> task_reachability(
    const std::vector<std::vector<int>>& deps);

/// Incremental ready-set tracker: feed completions, read which nodes have
/// every dependency satisfied. The runtime scheduler uses it to validate
/// issue orders; tests use it to enumerate legal schedules.
class ReadySet {
 public:
  explicit ReadySet(const std::vector<std::vector<int>>& deps);

  /// Nodes whose dependencies are all complete and which have not been
  /// completed themselves, in ascending order.
  const std::vector<int>& ready() const { return ready_; }
  bool is_ready(int node) const;
  bool is_complete(int node) const;
  std::size_t num_complete() const { return num_complete_; }
  bool all_complete() const { return num_complete_ == pending_.size(); }

  /// Mark `node` complete (must be ready). Returns the nodes that became
  /// ready as a result, in ascending order.
  std::vector<int> complete(int node);

 private:
  std::vector<std::vector<int>> consumers_;
  std::vector<int> pending_;  ///< outstanding dependency count per node
  std::vector<bool> complete_flag_;
  std::vector<int> ready_;
  std::size_t num_complete_ = 0;
};

class TaskGraph {
 public:
  /// A task launches its kernels through the provided launcher.
  using TaskFn = std::function<void(const kern::Launcher&)>;

  /// Add a task depending on previously added tasks. Returns its id.
  /// Dependencies must reference earlier tasks (the graph is built in
  /// topological order by construction — cycles are unrepresentable).
  /// `tenant` (≥ 0) tags the task's kernels/copies on the simulated
  /// timeline for multi-tenant attribution; -1 leaves the ambient tag.
  int add_task(std::string name, TaskFn fn, std::vector<int> deps = {},
               int tenant = -1);

  int size() const { return static_cast<int>(tasks_.size()); }
  const std::string& name(int task) const;
  const std::vector<int>& deps(int task) const;
  /// Tenant tag the task was added with (-1: untagged).
  int tenant(int task) const;

  /// Tasks that depend on `task` (cross-layer edges point forward here).
  std::vector<int> consumers(int task) const;
  /// Dependency adjacency for the whole graph (deps(i) for every i) — the
  /// shape the free DAG utilities above consume.
  std::vector<std::vector<int>> dep_lists() const;
  /// Longest-path wave of each task (see wave_levels).
  std::vector<int> waves() const;

  /// Execute the graph over `pool` (stream ids on `ctx`). Tasks are issued
  /// in id order; edges are enforced with events. Returns the stream each
  /// task was placed on. Does not synchronise — follow with an
  /// end-of-graph barrier or a device sync as needed.
  std::vector<gpusim::StreamId> run(scuda::Context& ctx,
                                    const std::vector<gpusim::StreamId>& pool,
                                    kern::ComputeMode mode);

 private:
  struct Task {
    std::string name;
    TaskFn fn;
    std::vector<int> deps;
    int tenant = -1;
  };
  std::vector<Task> tasks_;
};

}  // namespace glp4nn
