#pragma once
// Dependency-aware scheduling — the first item of the paper's future work
// (§6: "complex kernel dependencies, such as the dataflow-like dependency
// model in Tensorflow"). A TaskGraph holds tasks with explicit edges;
// run() executes them over a stream pool, preserving every edge with CUDA
// events while letting independent tasks overlap.
//
// Placement policy: a task prefers the stream of its highest-indexed
// dependency (same-stream edges are free — FIFO order covers them);
// otherwise round-robin. Cross-stream edges get a recorded event on the
// producer's stream and a wait on the consumer's.

#include <functional>
#include <string>
#include <vector>

#include "kernels/launcher.hpp"
#include "simcuda/context.hpp"

namespace glp4nn {

class TaskGraph {
 public:
  /// A task launches its kernels through the provided launcher.
  using TaskFn = std::function<void(const kern::Launcher&)>;

  /// Add a task depending on previously added tasks. Returns its id.
  /// Dependencies must reference earlier tasks (the graph is built in
  /// topological order by construction — cycles are unrepresentable).
  /// `tenant` (≥ 0) tags the task's kernels/copies on the simulated
  /// timeline for multi-tenant attribution; -1 leaves the ambient tag.
  int add_task(std::string name, TaskFn fn, std::vector<int> deps = {},
               int tenant = -1);

  int size() const { return static_cast<int>(tasks_.size()); }
  const std::string& name(int task) const;
  const std::vector<int>& deps(int task) const;
  /// Tenant tag the task was added with (-1: untagged).
  int tenant(int task) const;

  /// Execute the graph over `pool` (stream ids on `ctx`). Tasks are issued
  /// in id order; edges are enforced with events. Returns the stream each
  /// task was placed on. Does not synchronise — follow with an
  /// end-of-graph barrier or a device sync as needed.
  std::vector<gpusim::StreamId> run(scuda::Context& ctx,
                                    const std::vector<gpusim::StreamId>& pool,
                                    kern::ComputeMode mode);

 private:
  struct Task {
    std::string name;
    TaskFn fn;
    std::vector<int> deps;
    int tenant = -1;
  };
  std::vector<Task> tasks_;
};

}  // namespace glp4nn
