#pragma once
// Shared value types of the GLP4NN framework (Fig. 5 modules exchange
// these): parsed kernel statistics, scope profiles, concurrency
// decisions, and the cost accounting of §3.3.2.

#include <string>
#include <vector>

#include "gpusim/types.hpp"

namespace glp4nn {

/// One kernel *type* observed inside a profiled scope, as produced by the
/// kernel parser: launch configuration plus runtime statistics. This is
/// the model's "profiling input" column of Table 2 (#β_K, sm_K, τ_K, T_K).
struct KernelStats {
  std::string name;
  gpusim::LaunchConfig config;
  int launches = 0;               ///< times this kernel was launched in scope
  double avg_duration_us = 0.0;   ///< T_K
  double total_duration_us = 0.0;
};

/// Result of profiling one dispatch scope (e.g. "conv1/fwd").
struct ScopeProfile {
  std::string scope;
  std::vector<KernelStats> kernels;
  int total_launches = 0;
  double profiling_ms = 0.0;      ///< wall time spent collecting+parsing (T_p)
  std::size_t mem_tt_bytes = 0;   ///< timestamp storage for this scope
  std::size_t mem_k_bytes = 0;    ///< kernel-config storage for this scope
};

/// The analytical model's output for one kernel type (#K_i in Table 2).
struct KernelConcurrency {
  std::string name;
  int count = 1;        ///< #K_i — concurrent instances
  int upper_bound = 1;  ///< U_i from Eq. 7
  int beta_per_sm = 1;  ///< β_i from Eq. 8 (floored at 1)
};

/// The analyzer's decision for a scope: how many streams to give it.
struct ConcurrencyDecision {
  std::string scope;
  int stream_count = 1;  ///< C_out (Eq. 9), clamped to [1, C]
  std::vector<KernelConcurrency> per_kernel;
  double objective = 0.0;    ///< maximised τ_total (Eq. 3)
  double occupancy = 0.0;    ///< OR_SM (Eq. 1) implied by the objective
  double analysis_ms = 0.0;  ///< wall time of this analysis (T_a)
  int milp_nodes = 0;
};

/// Aggregate framework overheads (Table 6 and Fig. 10).
struct FrameworkCosts {
  double profiling_ms = 0.0;   ///< T_p
  double analysis_ms = 0.0;    ///< T_a
  double scheduling_ms = 0.0;  ///< T_s (static policy: ~0, tracked anyway)
  std::size_t mem_tt_bytes = 0;
  std::size_t mem_k_bytes = 0;
  std::size_t mem_cupti_bytes = 0;

  // Analyzer solve accounting: fresh analytical solves, scopes served by
  // the cross-scope solve memo, and B&B nodes explored by fresh solves.
  std::size_t solver_calls = 0;
  std::size_t solve_cache_hits = 0;
  std::size_t milp_nodes = 0;

  double total_ms() const { return profiling_ms + analysis_ms + scheduling_ms; }
  std::size_t total_bytes() const {
    return mem_tt_bytes + mem_k_bytes + mem_cupti_bytes;
  }
};

}  // namespace glp4nn
