#include "gpusim/device_props.hpp"

#include <algorithm>
#include <cctype>

namespace gpusim {

const char* to_string(Architecture arch) {
  switch (arch) {
    case Architecture::kTesla: return "Tesla";
    case Architecture::kFermi: return "Fermi";
    case Architecture::kKepler: return "Kepler";
    case Architecture::kMaxwell: return "Maxwell";
    case Architecture::kPascal: return "Pascal";
    case Architecture::kVolta: return "Volta";
  }
  return "?";
}

DeviceProps DeviceTable::k40c() {
  DeviceProps d;
  d.name = "K40C";
  d.arch = Architecture::kKepler;
  d.sm_count = 15;
  d.cores_per_sm = 192;
  d.clock_ghz = 0.745;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 16;
  d.shared_mem_per_sm = 48 * 1024;
  d.registers_per_sm = 64 * 1024;
  d.max_concurrent_kernels = 32;
  d.mem_bandwidth_gbs = 288.0;
  d.mem_bytes = 12ull << 30;
  d.pcie_bandwidth_gbs = 10.0;
  d.kernel_launch_overhead_us = 7.0;   // older driver path, slower host
  d.kernel_start_latency_us = 6.0;     // Kepler's slower grid dispatch
  d.unified_memory = false;
  d.tensor_cores = false;
  return d;
}

DeviceProps DeviceTable::p100() {
  DeviceProps d;
  d.name = "P100";
  d.arch = Architecture::kPascal;
  d.sm_count = 56;
  d.cores_per_sm = 64;
  d.clock_ghz = 1.189;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.shared_mem_per_sm = 64 * 1024;
  d.registers_per_sm = 64 * 1024;
  d.max_concurrent_kernels = 128;
  d.mem_bandwidth_gbs = 549.0;
  d.mem_bytes = 12ull << 30;  // 12 GB variant per Table 3
  d.pcie_bandwidth_gbs = 12.0;
  d.kernel_launch_overhead_us = 5.0;
  d.kernel_start_latency_us = 2.0;
  d.unified_memory = true;
  d.tensor_cores = false;
  return d;
}

DeviceProps DeviceTable::titan_xp() {
  DeviceProps d;
  d.name = "TitanXP";
  d.arch = Architecture::kPascal;
  d.sm_count = 30;
  d.cores_per_sm = 128;
  d.clock_ghz = 1.455;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.shared_mem_per_sm = 48 * 1024;  // per Table 3 (L1/shared split)
  d.registers_per_sm = 64 * 1024;
  d.max_concurrent_kernels = 128;
  d.mem_bandwidth_gbs = 547.7;
  d.mem_bytes = 12ull << 30;
  d.pcie_bandwidth_gbs = 12.0;
  d.kernel_launch_overhead_us = 5.0;
  d.kernel_start_latency_us = 2.0;
  d.unified_memory = true;
  d.tensor_cores = false;
  return d;
}

DeviceProps DeviceTable::fermi_generic() {
  DeviceProps d;
  d.name = "Fermi";
  d.arch = Architecture::kFermi;
  d.sm_count = 16;
  d.cores_per_sm = 32;
  d.clock_ghz = 1.15;
  d.max_threads_per_sm = 1536;
  d.max_blocks_per_sm = 8;
  d.shared_mem_per_sm = 48 * 1024;
  d.registers_per_sm = 32 * 1024;
  d.max_concurrent_kernels = 16;
  d.mem_bandwidth_gbs = 144.0;
  d.mem_bytes = 3ull << 30;
  d.pcie_bandwidth_gbs = 6.0;
  d.kernel_launch_overhead_us = 9.0;
  d.kernel_start_latency_us = 4.0;
  d.dynamic_parallelism = false;
  return d;
}

DeviceProps DeviceTable::kepler_generic() {
  DeviceProps d = k40c();
  d.name = "Kepler";
  return d;
}

DeviceProps DeviceTable::maxwell_generic() {
  DeviceProps d;
  d.name = "Maxwell";
  d.arch = Architecture::kMaxwell;
  d.sm_count = 24;
  d.cores_per_sm = 128;
  d.clock_ghz = 1.0;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.shared_mem_per_sm = 96 * 1024;
  d.registers_per_sm = 64 * 1024;
  d.max_concurrent_kernels = 16;  // per Table 1
  d.mem_bandwidth_gbs = 336.0;
  d.mem_bytes = 12ull << 30;
  d.pcie_bandwidth_gbs = 10.0;
  d.kernel_launch_overhead_us = 6.0;
  d.kernel_start_latency_us = 2.5;
  return d;
}

DeviceProps DeviceTable::pascal_generic() {
  DeviceProps d = p100();
  d.name = "Pascal";
  return d;
}

DeviceProps DeviceTable::volta_generic() {
  DeviceProps d;
  d.name = "Volta";
  d.arch = Architecture::kVolta;
  d.sm_count = 80;
  d.cores_per_sm = 64;
  d.clock_ghz = 1.38;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.shared_mem_per_sm = 96 * 1024;
  d.registers_per_sm = 64 * 1024;
  d.max_concurrent_kernels = 128;
  d.mem_bandwidth_gbs = 900.0;
  d.mem_bytes = 16ull << 30;
  d.pcie_bandwidth_gbs = 14.0;
  d.kernel_launch_overhead_us = 4.0;
  d.kernel_start_latency_us = 1.5;
  d.unified_memory = true;
  d.tensor_cores = true;
  return d;
}

std::vector<DeviceProps> DeviceTable::all() {
  return {k40c(),           p100(),           titan_xp(),
          fermi_generic(),  maxwell_generic(), volta_generic()};
}

std::optional<DeviceProps> DeviceTable::by_name(const std::string& name) {
  std::string key;
  key.reserve(name.size());
  for (char c : name) {
    if (c == '_' || c == '-' || c == ' ') continue;
    key.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  for (const DeviceProps& d : all()) {
    std::string dn;
    for (char c : d.name) {
      dn.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (dn == key) return d;
  }
  if (key == "kepler") return kepler_generic();
  if (key == "pascal") return pascal_generic();
  return std::nullopt;
}

}  // namespace gpusim
