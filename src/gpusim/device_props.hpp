#pragma once
// Per-device property tables. Encodes the paper's Table 1 (architecture
// feature overview) and Table 3 (hardware profile of the three
// evaluation GPUs) plus the derived microarchitectural limits the
// analytical model needs (τ_max, sm_max, β_max, C, warp size).

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace gpusim {

enum class Architecture { kTesla, kFermi, kKepler, kMaxwell, kPascal, kVolta };

const char* to_string(Architecture arch);

struct DeviceProps {
  std::string name;
  Architecture arch = Architecture::kPascal;

  // --- compute resources -------------------------------------------------
  int sm_count = 1;             ///< #SM
  int cores_per_sm = 64;        ///< scalar lanes per SM
  double clock_ghz = 1.0;       ///< core clock (cycles per ns)
  int warp_size = 32;           ///< θ

  // --- per-SM residency limits (the analytical model's hard constraints) -
  int max_threads_per_sm = 2048;       ///< τ_max
  int max_blocks_per_sm = 32;          ///< β_max (resident blocks)
  std::size_t shared_mem_per_sm = 64 * 1024;  ///< sm_max
  int registers_per_sm = 64 * 1024;    ///< soft constraint (spilling)

  // --- concurrency / memory ----------------------------------------------
  int max_concurrent_kernels = 128;    ///< C (HW work-queue limit)
  double mem_bandwidth_gbs = 500.0;    ///< DRAM bandwidth, bytes per ns
  std::size_t mem_bytes = 12ull << 30;
  double pcie_bandwidth_gbs = 12.0;    ///< H2D/D2H copy engine bandwidth

  // --- latency model -----------------------------------------------------
  double kernel_launch_overhead_us = 5.0;  ///< T_launch: host-side per-launch cost
  double kernel_start_latency_us = 2.0;    ///< device-side pipeline fill

  // --- Table 1 feature flags ----------------------------------------------
  bool supports_streams = true;
  bool dynamic_parallelism = true;
  bool unified_memory = false;
  bool tensor_cores = false;

  /// Peak device FLOP rate (FMA counted as 2 flops), in flops per ns.
  double peak_flops_per_ns() const {
    return static_cast<double>(sm_count) * cores_per_sm * clock_ghz * 2.0;
  }
  /// Total scalar lanes on the device.
  int total_lanes() const { return sm_count * cores_per_sm; }
  /// Maximum active warps per SM (ω_SM in Eq. 1).
  int max_warps_per_sm() const { return max_threads_per_sm / warp_size; }
};

/// Catalogue of known devices: the paper's three evaluation GPUs (Table 3)
/// plus one representative per Table-1 generation.
class DeviceTable {
 public:
  static DeviceProps k40c();      ///< Tesla K40C (Kepler) — Table 3
  static DeviceProps p100();      ///< Tesla P100 (Pascal) — Table 3
  static DeviceProps titan_xp();  ///< Titan XP (Pascal) — Table 3

  static DeviceProps fermi_generic();
  static DeviceProps kepler_generic();
  static DeviceProps maxwell_generic();
  static DeviceProps pascal_generic();
  static DeviceProps volta_generic();

  /// All catalogued devices (evaluation GPUs first).
  static std::vector<DeviceProps> all();

  /// Case-insensitive lookup by name ("k40c", "P100", "titanxp", ...).
  static std::optional<DeviceProps> by_name(const std::string& name);
};

}  // namespace gpusim
