#include "gpusim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "gpusim/reference_engine.hpp"

namespace gpusim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kWorkEpsilon = 1e-6;  // thread-cycles considered "done"
constexpr int kMaxThreadsPerBlock = 1024;
// Residency memos are small (a key + two doubles per resident kernel) but
// adversarial workloads could produce unbounded distinct signatures; flush
// wholesale past this population rather than tracking LRU order.
constexpr std::size_t kMaxRateMemoEntries = 4096;
}  // namespace

// ---------------------------------------------------------------------------
// DeviceEngine — shared submission-side behaviour

DeviceEngine::DeviceEngine(DeviceProps props) : props_(std::move(props)) {
  GLP_REQUIRE(props_.sm_count > 0 && props_.cores_per_sm > 0 &&
                  props_.clock_ghz > 0.0,
              "device must have positive compute resources");
}

void DeviceEngine::validate_launch(const LaunchConfig& config) const {
  GLP_REQUIRE(config.total_blocks() > 0, "kernel grid must be non-empty");
  GLP_REQUIRE(config.threads_per_block() > 0 &&
                  config.threads_per_block() <= kMaxThreadsPerBlock,
              "block size " << config.threads_per_block()
                            << " outside (0, " << kMaxThreadsPerBlock << "]");
  GLP_REQUIRE(config.smem_per_block() <= props_.shared_mem_per_sm,
              "block shared memory " << config.smem_per_block()
                                     << " exceeds per-SM capacity "
                                     << props_.shared_mem_per_sm);
}

double DeviceEngine::work_thread_cycles(const LaunchConfig& config,
                                        const KernelCost& cost) const {
  // Roofline: the kernel's duration at full device occupancy is
  // max(compute time, memory time); convert that duration into
  // thread-cycles against the full lane count so the fluid scheduler can
  // meter progress at any occupancy.
  const double lanes = props_.total_lanes();
  const double compute_cycles = cost.flops / 2.0;  // FMA: 2 flops per lane-cycle
  const double mem_ns = cost.bytes / props_.mem_bandwidth_gbs;
  const double mem_cycles = mem_ns * lanes * props_.clock_ghz;
  // Every launched thread costs at least a handful of cycles even for a
  // no-op kernel (instruction fetch, prologue/epilogue).
  const double floor_cycles = static_cast<double>(config.total_threads()) * 8.0;
  return std::max({compute_cycles, mem_cycles, floor_cycles});
}

std::unique_ptr<DeviceEngine> make_device_engine(DeviceProps props,
                                                 EngineKind kind) {
  if (kind == EngineKind::kReference) {
    return std::make_unique<ReferenceEngine>(std::move(props));
  }
  return std::make_unique<SimDevice>(std::move(props));
}

// ---------------------------------------------------------------------------
// SeqWindow

void SeqWindow::insert(std::uint64_t seq) {
  GLP_CHECK(seq == end_);  // seqs are issued densely and monotonically
  if (state_.empty() || end_ - base_ >= state_.size()) grow();
  state_[seq & mask()] = 1;
  ++end_;
  ++count_;
}

void SeqWindow::complete(std::uint64_t seq) {
  GLP_CHECK(seq >= base_ && seq < end_ && state_[seq & mask()] != 0);
  state_[seq & mask()] = 0;
  --count_;
  while (base_ < end_ && state_[base_ & mask()] == 0) ++base_;
}

void SeqWindow::grow() {
  const std::size_t new_size = state_.empty() ? 64 : state_.size() * 2;
  std::vector<std::uint8_t> fresh(new_size, 0);
  for (std::uint64_t s = base_; s < end_; ++s) {
    fresh[s & (new_size - 1)] = state_[s & mask()];
  }
  state_ = std::move(fresh);
}

// ---------------------------------------------------------------------------
// SimDevice — the optimized engine
//
// Bit-exactness ground rules (see reference_engine.cpp for the spec):
//  * Kernel completion ETAs are recomputed with the reference's exact
//    expression (now_ + latency_left + work_left / rate) rather than
//    cached as absolute times — the fluid state evolves by successive
//    subtraction, so a cached ETA would drift by an ulp.
//  * min() over doubles is order-independent, so replacing scans with a
//    cached minimum (copies) or an indexed subset (release heap) is safe.
//  * The residency memo replays doubles produced by the identical
//    computation on a prior event, so replay is bit-for-bit.

SimDevice::SimDevice(DeviceProps props) : DeviceEngine(std::move(props)) {
  StreamState def;
  def.live = true;
  streams_.push_back(std::move(def));  // the default stream always exists
  admission_order_.push_back(kDefaultStream);
  live_streams_ = 1;
  events_.resize(1);  // EventIds start at 1; slot 0 stays kUnknown
  copy_min_end_ = kInf;
}

StreamId SimDevice::create_stream(int priority, bool non_blocking) {
  const StreamId id = next_stream_++;
  GLP_CHECK(static_cast<std::size_t>(id) == streams_.size());
  StreamState st;
  st.priority = priority;
  st.live = true;
  st.non_blocking = non_blocking;
  streams_.push_back(std::move(st));
  ++live_streams_;
  // Keep the admission index ordered by (priority desc, id asc): the new
  // stream has the largest id, so it goes after every live stream of
  // equal-or-higher priority — exactly where the reference loop's
  // stable_sort would place it.
  auto pos = std::upper_bound(
      admission_order_.begin(), admission_order_.end(), priority,
      [this](int p, StreamId s) { return stream_state(s).priority < p; });
  admission_order_.insert(pos, id);
  return id;
}

int SimDevice::stream_priority(StreamId stream) const {
  return stream_live(stream) ? stream_state(stream).priority : 0;
}

void SimDevice::destroy_stream(StreamId stream) {
  GLP_REQUIRE(stream != kDefaultStream, "cannot destroy the default stream");
  GLP_REQUIRE(stream_live(stream), "destroying unknown stream " << stream);
  synchronize_stream(stream);
  StreamState& st = stream_state(stream);
  st.live = false;
  st.queue = std::deque<Op>();  // release queue storage
  --live_streams_;
  admission_order_.erase(
      std::find(admission_order_.begin(), admission_order_.end(), stream));
}

std::uint64_t SimDevice::launch_kernel(StreamId stream, std::string name,
                                       const LaunchConfig& config,
                                       const KernelCost& cost, WorkFn work) {
  validate_launch(config);
  Op op;
  op.kind = OpKind::kKernel;
  op.stream = stream;
  op.name = std::move(name);
  op.config = config;
  op.cost = cost;
  op.work = std::move(work);
  op.correlation = next_correlation_++;
  const std::uint64_t correlation = op.correlation;
  submit(std::move(op), props_.kernel_launch_overhead_us * kUs);
  ++stats_.kernels_launched;
  return correlation;
}

std::uint64_t SimDevice::memcpy_async(StreamId stream, std::size_t bytes,
                                      bool host_to_device, WorkFn work) {
  Op op;
  op.kind = OpKind::kCopy;
  op.stream = stream;
  op.bytes = bytes;
  op.host_to_device = host_to_device;
  op.work = std::move(work);
  op.correlation = next_correlation_++;
  const std::uint64_t correlation = op.correlation;
  // Async copies cost far less host time than kernel launches.
  submit(std::move(op), 1.0 * kUs);
  ++stats_.copies_issued;
  return correlation;
}

std::uint64_t SimDevice::memcpy_peer(StreamId stream, std::size_t bytes,
                                     int peer_device, SimTime start_ns,
                                     SimTime end_ns, WorkFn work) {
  GLP_REQUIRE(peer_device >= 0, "memcpy_peer needs a peer device index");
  GLP_REQUIRE(end_ns >= start_ns, "memcpy_peer span must be non-negative");
  Op op;
  op.kind = OpKind::kCopy;
  op.stream = stream;
  op.bytes = bytes;
  op.peer = peer_device;
  op.peer_start = start_ns;
  op.peer_end = end_ns;
  op.work = std::move(work);
  op.correlation = next_correlation_++;
  const std::uint64_t correlation = op.correlation;
  // Zero host cost: peer copies are issued by the fleet's communication
  // driver (a modelled dedicated thread), not the compute dispatch thread.
  submit(std::move(op), 0.0);
  ++stats_.copies_issued;
  return correlation;
}

EventId SimDevice::record_event(StreamId stream) {
  Op op;
  op.kind = OpKind::kEventRecord;
  op.stream = stream;
  op.event = next_event_++;
  const EventId id = op.event;
  GLP_CHECK(static_cast<std::size_t>(id) == events_.size());
  events_.push_back(EventSlot{0.0, EventState::kPending});
  submit(std::move(op), 0.3 * kUs);
  return id;
}

EventId SimDevice::record_event_at(StreamId stream, SimTime issue_ns) {
  GLP_REQUIRE(issue_ns >= 0.0, "record_event_at needs a non-negative time");
  Op op;
  op.kind = OpKind::kEventRecord;
  op.stream = stream;
  op.event = next_event_++;
  op.issue_at = issue_ns;
  const EventId id = op.event;
  GLP_CHECK(static_cast<std::size_t>(id) == events_.size());
  events_.push_back(EventSlot{0.0, EventState::kPending});
  // Zero host cost: issued by the fleet's communication driver, like
  // memcpy_peer.
  submit(std::move(op), 0.0);
  return id;
}

void SimDevice::wait_event(StreamId stream, EventId event) {
  GLP_REQUIRE(event < events_.size() &&
                  events_[event].state != EventState::kUnknown,
              "waiting on unknown event " << event);
  Op op;
  op.kind = OpKind::kWaitEvent;
  op.stream = stream;
  op.event = event;
  submit(std::move(op), 0.3 * kUs);
}

void SimDevice::host_callback(StreamId stream, WorkFn fn) {
  Op op;
  op.kind = OpKind::kHostFn;
  op.stream = stream;
  op.work = std::move(fn);
  submit(std::move(op), 0.3 * kUs);
}

void SimDevice::submit(Op op, SimTime host_cost_ns) {
  GLP_REQUIRE(stream_live(op.stream),
              "submission to unknown stream " << op.stream);
  StreamState& st = stream_state(op.stream);
  op.seq = next_seq_++;
  op.release = host_time_;
  op.tenant = current_tenant_;
  op.non_blocking = st.non_blocking;
  host_time_ += host_cost_ns;
  if (op.kind == OpKind::kCopy && op.peer >= 0) {
    // Peer copies release at the link-granted start time: the fleet comm
    // driver stands in for a dedicated communication thread, so the
    // compute dispatch clock must not gate (or be charged for) them.
    op.release = op.peer_start;
  }
  if (op.issue_at >= 0.0) {
    // Same dedicated-thread semantics for comm-driver event records.
    op.release = op.issue_at;
  }
  // In-stream FIFO: each op waits for the completion of its predecessor
  // in the same stream (ops are admitted for execution the moment they
  // reach the queue head, so this dependency is what serialises a
  // stream's kernels on the device).
  op.stream_dep = st.last_seq;
  st.last_seq = op.seq;
  if (op.stream == kDefaultStream) {
    // Legacy default-stream semantics: acts as a barrier against every
    // other stream, and later work in any stream waits for it.
    op.barrier = true;
    last_default_seq_ = op.seq;
    op.default_dep = 0;
  } else {
    // Non-blocking streams opt out of legacy default-stream ordering in
    // both directions (cudaStreamNonBlocking).
    op.default_dep = op.non_blocking ? 0 : last_default_seq_;
  }
  incomplete_.insert(op.seq);
  barrier_window_.insert(op.seq);
  if (op.non_blocking) barrier_window_.complete(op.seq);
  const bool becomes_head = st.queue.empty();
  st.queue.push_back(std::move(op));
  ++queued_ops_;
  if (becomes_head && st.queue.front().release > now_) {
    push_release(st.queue.front());
  }
}

void SimDevice::push_release(const Op& head) {
  release_heap_.push_back(
      ReleaseEntry{head.release, head.stream, head.seq});
  std::push_heap(release_heap_.begin(), release_heap_.end(),
                 [](const ReleaseEntry& a, const ReleaseEntry& b) {
                   return a.release > b.release;
                 });
}

SimTime SimDevice::peek_release() const {
  // Lazy min-heap: drop entries that are no longer a queue head (the op
  // started) or whose release has passed (now_ is monotone, so they can
  // never bound a future horizon either).
  auto greater = [](const ReleaseEntry& a, const ReleaseEntry& b) {
    return a.release > b.release;
  };
  while (!release_heap_.empty()) {
    const ReleaseEntry& top = release_heap_.front();
    if (top.release > now_) {
      const StreamState& st = stream_state(top.stream);
      if (st.live && !st.queue.empty() && st.queue.front().seq == top.seq) {
        return top.release;
      }
    }
    std::pop_heap(release_heap_.begin(), release_heap_.end(), greater);
    release_heap_.pop_back();
  }
  return kInf;
}

bool SimDevice::op_ready(const Op& op) const {
  if (op.release > now_) return false;
  if (op.barrier) {
    // Ready only when every earlier-submitted *blocking* op has completed
    // (non-blocking streams are exempt from the legacy barrier).
    GLP_CHECK(!barrier_window_.empty());
    if (barrier_window_.min_incomplete() != op.seq) return false;
  } else if (op.default_dep != 0 && incomplete_.contains(op.default_dep)) {
    return false;
  }
  if (op.stream_dep != 0 && incomplete_.contains(op.stream_dep)) return false;
  if (op.kind == OpKind::kWaitEvent) {
    return events_[op.event].state == EventState::kRecorded;
  }
  if (op.kind == OpKind::kKernel) {
    return static_cast<int>(resident_.size()) < props_.max_concurrent_kernels;
  }
  return true;
}

void SimDevice::complete_op_bookkeeping(std::uint64_t seq, bool non_blocking) {
  incomplete_.complete(seq);
  // Non-blocking ops were marked complete in the barrier window at
  // submission; completing them twice would corrupt its count.
  if (!non_blocking) barrier_window_.complete(seq);
}

bool SimDevice::start_ready_ops() {
  if (queued_ops_ == 0) return false;
  bool progress = false;
  bool kernel_admitted = false;
  // Drain a snapshot of the admission index (already (priority desc, id
  // asc) — the order the reference loop re-derives by stable_sort every
  // pass). A snapshot for two reasons: streams created by host functors
  // executed below must not join this pass, and creation may reallocate
  // the stream table.
  drain_order_.assign(admission_order_.begin(), admission_order_.end());
  for (StreamId sid : drain_order_) {
    for (;;) {
      StreamState& st = stream_state(sid);
      if (!st.live || st.queue.empty()) break;
      Op& head = st.queue.front();
      if (!op_ready(head)) break;
      switch (head.kind) {
        case OpKind::kKernel: {
          ActiveKernel active;
          active.op = std::move(head);
          active.admit_ns = now_;
          active.latency_left = props_.kernel_start_latency_us * kUs;
          active.work_left = work_thread_cycles(active.op.config, active.op.cost);
          active.work_per_block =
              active.work_left / static_cast<double>(active.op.config.total_blocks());
          resident_.push_back(std::move(active));
          kernel_admitted = true;
          break;
        }
        case OpKind::kCopy: {
          ActiveCopy copy;
          copy.op = std::move(head);
          if (copy.op.peer >= 0) {
            // Cross-device transfer: the span was fixed by the link model.
            // The end is clamped to `now` so an op that becomes runnable
            // after its link span (stream backlog) completes immediately
            // instead of handing advance_to a past-time event.
            copy.start_ns = copy.op.peer_start;
            copy.end_ns = std::max(copy.op.peer_end, now_);
          } else {
            const int dir = copy.op.host_to_device ? 0 : 1;
            copy.start_ns = std::max(now_, copy_engine_free_[dir]);
            copy.end_ns = copy.start_ns + static_cast<double>(copy.op.bytes) /
                                              props_.pcie_bandwidth_gbs;
            copy_engine_free_[dir] = copy.end_ns;
          }
          copy_min_end_ = std::min(copy_min_end_, copy.end_ns);
          copies_.push_back(std::move(copy));
          break;
        }
        case OpKind::kEventRecord: {
          events_[head.event] = EventSlot{now_, EventState::kRecorded};
          complete_op_bookkeeping(head.seq, head.non_blocking);
          break;
        }
        case OpKind::kWaitEvent: {
          complete_op_bookkeeping(head.seq, head.non_blocking);
          break;
        }
        case OpKind::kHostFn: {
          if (head.work) head.work();
          complete_op_bookkeeping(head.seq, head.non_blocking);
          break;
        }
      }
      // Pop the consumed head. Re-fetch the stream slot: a host functor
      // above may have created streams (reallocating the table) or
      // submitted more work to this queue.
      StreamState& cur = stream_state(sid);
      cur.queue.pop_front();
      --queued_ops_;
      if (!cur.queue.empty() && cur.queue.front().release > now_) {
        push_release(cur.queue.front());
      }
      progress = true;
    }
  }
  if (kernel_admitted) recompute_rates();
  return progress;
}

void SimDevice::recompute_rates() {
  if (resident_.empty()) return;

  std::vector<ResidencyRequest>& reqs = reqs_scratch_;
  reqs.clear();
  for (const ActiveKernel& k : resident_) {
    ResidencyRequest r;
    r.config = k.op.config;
    const double blocks_left =
        k.work_per_block > 0.0 ? k.work_left / k.work_per_block : 1.0;
    r.blocks_wanted = static_cast<std::uint64_t>(std::max(1.0, std::ceil(blocks_left)));
    reqs.push_back(r);
  }

  // Resident-set signature: every input the packer, the register model and
  // the lane allocator read (device props are fixed per engine).
  std::vector<std::uint64_t>& key = memo_key_;
  key.clear();
  key.push_back(register_penalty_ ? 1u : 0u);
  for (const ResidencyRequest& r : reqs) {
    key.push_back(r.config.threads_per_block());
    key.push_back(static_cast<std::uint64_t>(r.config.smem_per_block()));
    key.push_back(static_cast<std::uint64_t>(r.config.regs_per_thread));
    key.push_back(r.blocks_wanted);
  }
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a over the words
  for (const std::uint64_t w : key) {
    hash ^= w;
    hash *= 1099511628211ull;
  }

  auto [it, inserted] = rate_memo_.try_emplace(hash);
  RateMemoEntry& entry = it->second;
  if (!inserted && entry.key == key) {
    // Replay the memoized outcome: the doubles were produced by the exact
    // computation below on an earlier event, so this is bit-identical.
    for (std::size_t i = 0; i < resident_.size(); ++i) {
      resident_[i].lanes = entry.lanes_rates[i].first;
      resident_[i].rate = entry.lanes_rates[i].second;
    }
    return;
  }

  pack_residency_into(props_, reqs, slots_scratch_);
  const std::vector<ResidencySlot>& slots = slots_scratch_;

  double slowdown = 1.0;
  if (register_penalty_) {
    slowdown = register_slowdown(register_pressure(props_, reqs, slots));
  }

  // Lane allocation: each resident block can use at most min(block
  // threads rounded up to warps, cores per SM) lanes; when the aggregate
  // demand exceeds the device's lanes, everyone scales proportionally.
  double total_demand = 0.0;
  std::vector<double>& demand = demand_scratch_;
  demand.assign(resident_.size(), 0.0);
  for (std::size_t i = 0; i < resident_.size(); ++i) {
    const auto threads = resident_[i].op.config.threads_per_block();
    const double warp_threads =
        static_cast<double>((threads + props_.warp_size - 1) / props_.warp_size) *
        props_.warp_size;
    const double per_block = std::min(warp_threads, static_cast<double>(props_.cores_per_sm));
    demand[i] = static_cast<double>(slots[i].resident_blocks) * per_block;
    total_demand += demand[i];
  }
  const double capacity = static_cast<double>(props_.total_lanes());
  const double scale = (total_demand > capacity) ? capacity / total_demand : 1.0;

  entry.key = key;
  entry.lanes_rates.resize(resident_.size());
  for (std::size_t i = 0; i < resident_.size(); ++i) {
    resident_[i].lanes = demand[i] * scale;
    resident_[i].rate = resident_[i].lanes * props_.clock_ghz * slowdown;
    entry.lanes_rates[i] = {resident_[i].lanes, resident_[i].rate};
  }
  if (rate_memo_.size() > kMaxRateMemoEntries) rate_memo_.clear();
}

SimTime SimDevice::next_event_time() const {
  SimTime t = kInf;
  // Kernel ETAs use the reference's exact expression; the resident set is
  // bounded by max_concurrent_kernels, so this scan is O(C), not O(ops).
  for (const ActiveKernel& k : resident_) {
    if (k.rate > 0.0) {
      t = std::min(t, now_ + k.latency_left + k.work_left / k.rate);
    } else if (k.latency_left > 0.0) {
      t = std::min(t, now_ + k.latency_left);
    }
  }
  t = std::min(t, copy_min_end_);
  t = std::min(t, peek_release());
  return t;
}

void SimDevice::advance_to(SimTime t) {
  GLP_CHECK(t >= now_);
  const SimTime dt = t - now_;
  if (dt > 0.0) {
    double busy_lanes = 0.0;
    for (ActiveKernel& k : resident_) {
      SimTime run_dt = dt;
      if (k.latency_left > 0.0) {
        const SimTime consumed = std::min(k.latency_left, run_dt);
        k.latency_left -= consumed;
        run_dt -= consumed;
      }
      if (run_dt > 0.0 && k.rate > 0.0) {
        k.work_left = std::max(0.0, k.work_left - k.rate * run_dt);
        busy_lanes += k.lanes;  // approximation: latency phase excluded
      }
    }
    stats_.busy_lane_ns += busy_lanes * dt;
    if (!resident_.empty()) stats_.active_ns += dt;
    stats_.sim_span_ns += dt;
    now_ = t;
  }

  // Clamp latency residues too small to be represented as a time advance
  // (below ~1 ulp of the clock): their "latency end" event would round to
  // `now` and the loop could never consume them.
  for (ActiveKernel& k : resident_) {
    if (k.latency_left > 0.0 && k.latency_left <= now_ * 1e-12 + 1e-9) {
      k.latency_left = 0.0;
    }
  }

  // Complete finished kernels in deterministic (admission seq) order.
  // The completion threshold scales with the clock: residual work smaller
  // than what the kernel processes in one representable time step (~ulp
  // of `now`) can never be burnt down by a further advance, so it counts
  // as done. Without this the loop would spin on a femtosecond residue.
  bool any_finished = true;
  while (any_finished) {
    any_finished = false;
    for (std::size_t i = 0; i < resident_.size(); ++i) {
      const ActiveKernel& k = resident_[i];
      const double epsilon = kWorkEpsilon + k.rate * (now_ * 1e-9 + 1e-6);
      if (k.latency_left <= 0.0 && k.work_left <= epsilon) {
        finish_kernel(i);
        any_finished = true;
        break;
      }
    }
  }

  // The cached minimum tells us whether any copy can complete at all; the
  // reference's per-element test (end_ns <= now_ + 1e-9) is false for
  // every copy exactly when the minimum exceeds the threshold.
  if (copy_min_end_ <= now_ + 1e-9) {
    for (std::size_t i = 0; i < copies_.size();) {
      if (copies_[i].end_ns <= now_ + 1e-9) {
        ActiveCopy done = std::move(copies_[i]);
        copies_.erase(copies_.begin() + static_cast<std::ptrdiff_t>(i));
        if (done.op.work) done.op.work();
        CopyRecord rec;
        rec.correlation_id = done.op.correlation;
        rec.stream = done.op.stream;
        rec.bytes = done.op.bytes;
        rec.host_to_device = done.op.host_to_device;
        rec.start_ns = done.start_ns;
        rec.end_ns = done.end_ns;
        rec.tenant = done.op.tenant;
        rec.peer = done.op.peer;
        timeline_.add_copy(rec);
        if (copy_cb_) copy_cb_(rec);
        complete_op_bookkeeping(done.op.seq, done.op.non_blocking);
      } else {
        ++i;
      }
    }
    copy_min_end_ = kInf;
    for (const ActiveCopy& c : copies_) {
      copy_min_end_ = std::min(copy_min_end_, c.end_ns);
    }
  }
}

void SimDevice::finish_kernel(std::size_t idx) {
  ActiveKernel done = std::move(resident_[idx]);
  resident_.erase(resident_.begin() + static_cast<std::ptrdiff_t>(idx));

  if (done.op.work) done.op.work();

  KernelRecord rec;
  rec.correlation_id = done.op.correlation;
  rec.name = done.op.name;
  rec.stream = done.op.stream;
  rec.config = done.op.config;
  rec.submit_ns = done.op.release;
  rec.start_ns = done.admit_ns;
  rec.end_ns = now_;
  rec.tenant = done.op.tenant;
  timeline_.add_kernel(rec);
  if (kernel_cb_) kernel_cb_(rec);

  complete_op_bookkeeping(done.op.seq, done.op.non_blocking);
  recompute_rates();
}

void SimDevice::run_until(const std::function<bool()>& pred) {
  // Stall guard: if the loop spins without the clock moving or work
  // completing, something violated an engine invariant — fail loudly with
  // state instead of hanging.
  int spins = 0;
  SimTime last_now = now_;
  std::size_t last_incomplete = incomplete_.size();

  while (!pred()) {
    if (start_ready_ops()) continue;
    const SimTime t = next_event_time();
    if (t == kInf) {
      // Nothing can ever make progress: either the predicate references
      // work that was never submitted, or there is a dependency cycle.
      throw glp::InternalError("gpusim: simulation stalled with no runnable work");
    }
    advance_to(t);

    if (now_ > last_now || incomplete_.size() != last_incomplete) {
      spins = 0;
      last_now = now_;
      last_incomplete = incomplete_.size();
    } else if (++spins > 100000) {
      std::string state = "gpusim: event loop is spinning; now=" +
                          std::to_string(now_) +
                          " next_event=" + std::to_string(next_event_time()) +
                          " resident=" + std::to_string(resident_.size()) +
                          " copies=" + std::to_string(copies_.size());
      for (StreamId stream = 0;
           static_cast<std::size_t>(stream) < streams_.size(); ++stream) {
        const StreamState& st = stream_state(stream);
        if (!st.live || st.queue.empty()) continue;
        const Op& head = st.queue.front();
        state += " q" + std::to_string(stream) + "[head seq=" +
                 std::to_string(head.seq) +
                 " kind=" + std::to_string(static_cast<int>(head.kind)) +
                 " rel=" + std::to_string(head.release) +
                 " sdep=" + std::to_string(head.stream_dep) +
                 " ddep=" + std::to_string(head.default_dep) + "]";
      }
      double min_eta = -1;
      for (const ActiveKernel& k : resident_) {
        if (k.rate > 0.0) {
          const double eta = now_ + k.latency_left + k.work_left / k.rate;
          if (min_eta < 0 || eta < min_eta) min_eta = eta;
        }
      }
      state += " min_kernel_eta=" + std::to_string(min_eta);
      throw glp::InternalError(state);
    }
  }
  host_time_ = std::max(host_time_, now_);
}

void SimDevice::advance_device_to(SimTime t) {
  // Lookahead for the serving event loop: drive the event loop until every
  // device-side event at or before `t` has been processed. Intentionally
  // leaves the host clock untouched (restored below) — peeking at the
  // device is not a synchronisation point.
  const SimTime saved_host = host_time_;
  int spins = 0;
  for (;;) {
    if (start_ready_ops()) {
      spins = 0;
      continue;
    }
    const SimTime next = next_event_time();
    if (next > t) break;
    GLP_CHECK(next >= now_);
    if (next > now_) spins = 0;
    else if (++spins > 100000) {
      throw glp::InternalError("gpusim: lookahead event loop is spinning");
    }
    advance_to(next);
  }
  // Burn partial work down to exactly `t` so a later lookahead (or sync)
  // resumes from a consistent fluid state.
  if (t > now_ && (!resident_.empty() || !copies_.empty())) advance_to(t);
  host_time_ = saved_host;
}

SimTime SimDevice::peek_next_event() {
  int spins = 0;
  while (start_ready_ops()) {
    if (++spins > 100000) {
      throw glp::InternalError("gpusim: peek_next_event is spinning");
    }
  }
  return next_event_time();
}

void SimDevice::synchronize_stream(StreamId stream) {
  GLP_REQUIRE(stream_live(stream), "synchronize on unknown stream " << stream);
  // The queue drains when ops *start*; resident/active work from this
  // stream must also have completed. Track via a sentinel event.
  const EventId ev = record_event(stream);
  synchronize_event(ev);
}

void SimDevice::synchronize_event(EventId event) {
  GLP_REQUIRE(event < events_.size() &&
                  events_[event].state != EventState::kUnknown,
              "synchronize on unknown event " << event);
  run_until([this, event] {
    return events_[event].state == EventState::kRecorded;
  });
}

void SimDevice::synchronize() {
  run_until([this] { return incomplete_.empty(); });
}

bool SimDevice::event_complete(EventId event) const {
  return event < events_.size() &&
         events_[event].state == EventState::kRecorded;
}

SimTime SimDevice::event_time(EventId event) const {
  GLP_REQUIRE(event < events_.size() &&
                  events_[event].state == EventState::kRecorded,
              "event " << event << " has not completed");
  return events_[event].time;
}

bool SimDevice::stream_idle(StreamId stream) const {
  GLP_REQUIRE(stream_live(stream), "query on unknown stream " << stream);
  if (!stream_state(stream).queue.empty()) return false;
  for (const ActiveKernel& k : resident_) {
    if (k.op.stream == stream) return false;
  }
  for (const ActiveCopy& c : copies_) {
    if (c.op.stream == stream) return false;
  }
  return true;
}

}  // namespace gpusim
