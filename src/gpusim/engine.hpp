#pragma once
// Discrete-event simulator of one GPU device.
//
// Execution model ("fluid occupancy" model):
//  * Kernels are admitted from per-stream FIFO queues, at most
//    `max_concurrent_kernels` (the paper's concurrency degree C) resident
//    at once.
//  * Resident kernels are packed onto SMs by `pack_residency` under the
//    hard per-SM limits (threads, shared memory, resident blocks). A
//    kernel's execution rate is the number of scalar lanes its resident
//    blocks can occupy; when resident kernels together demand more lanes
//    than the device has, rates scale proportionally (saturation).
//  * A kernel's total work is derived from its analytic cost (flops,
//    bytes) through a per-device roofline, so the same launch is
//    compute-bound on a K40C and bandwidth-bound on a P100.
//  * Per-launch host overhead (T_launch) and device-side start latency
//    model why very short kernels never overlap — the paper's observed
//    regression on ~2 ms layers (§4.2.1) and the T_K/T_launch bound in
//    Eq. 7.
//
// The host thread drives the simulation: launches enqueue work and
// advance the host clock; synchronisation calls run the event loop until
// the awaited condition holds. Host functors attached to kernels execute
// real math (the DNN layers' arithmetic) at kernel-completion time in
// simulated order, so stream-dependency bugs corrupt real numerics and
// are caught by the convergence-invariance tests.
//
// Two implementations share the `DeviceEngine` interface:
//  * `SimDevice` — the production engine. Flat indexed stream table, an
//    O(1) sequence window instead of an ordered incomplete-set, a
//    persistent priority-ordered admission index, an incrementally
//    maintained event horizon (release min-heap + cached copy minimum),
//    and a residency/rate memo keyed on the resident-set signature. See
//    docs/PERFORMANCE.md ("Engine internals & hot path").
//  * `ReferenceEngine` (reference_engine.hpp) — the original loop, kept
//    verbatim as a testing seam. The two must stay event-for-event
//    bit-identical; tests/engine_equivalence_test.cpp and the fuzz
//    corpus's --engine-compare mode enforce it.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/device_props.hpp"
#include "gpusim/inline_fn.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/timeline.hpp"
#include "gpusim/types.hpp"

namespace gpusim {

/// Aggregate utilisation counters, cheap enough to keep always-on.
struct DeviceStats {
  std::uint64_t kernels_launched = 0;
  std::uint64_t copies_issued = 0;
  double busy_lane_ns = 0.0;   ///< ∫ (occupied lanes) dt
  double active_ns = 0.0;      ///< time with ≥1 resident kernel
  double sim_span_ns = 0.0;    ///< total simulated time elapsed

  /// Mean fraction of lanes busy while the device was active.
  double mean_utilization(int total_lanes) const {
    return active_ns > 0.0 ? busy_lane_ns / (active_ns * total_lanes) : 0.0;
  }
};

/// Which event-loop implementation backs a device.
enum class EngineKind {
  kOptimized,  ///< SimDevice — the production hot-path engine
  kReference,  ///< ReferenceEngine — the original loop, for equivalence
};

/// Abstract device interface: everything the CUDA-like layers (simcuda,
/// simcupti, the scheduler, serving) need from a simulated GPU. The
/// submission-side state and clocks live here so both engines stamp ops
/// identically; the queueing containers and the event loop are the
/// implementation's business.
class DeviceEngine {
 public:
  using WorkFn = InlineFn;
  using KernelCallback = std::function<void(const KernelRecord&)>;
  using CopyCallback = std::function<void(const CopyRecord&)>;

  explicit DeviceEngine(DeviceProps props);
  virtual ~DeviceEngine() = default;
  DeviceEngine(const DeviceEngine&) = delete;
  DeviceEngine& operator=(const DeviceEngine&) = delete;

  const DeviceProps& props() const { return props_; }

  // --- streams ------------------------------------------------------------
  /// Create a new asynchronous stream (never returns kDefaultStream).
  /// Higher `priority` wins ties for admission when the concurrency
  /// degree is saturated (CUDA's cudaStreamCreateWithPriority; CUDA uses
  /// lower-is-higher, we use higher-is-higher for readability).
  /// `non_blocking` mirrors cudaStreamNonBlocking: ops on the stream do
  /// not synchronise with the legacy default stream in either direction —
  /// they neither wait for preceding default-stream ops nor hold up a
  /// default-stream barrier. Fleet communication streams use this so
  /// cross-device transfers overlap compute issued on the default stream.
  /// Device-wide synchronize() still waits for them.
  virtual StreamId create_stream(int priority = 0,
                                 bool non_blocking = false) = 0;
  /// Priority a stream was created with (0 for the default stream).
  virtual int stream_priority(StreamId stream) const = 0;
  /// Destroy a stream; pending work must have completed.
  virtual void destroy_stream(StreamId stream) = 0;
  /// Number of live streams, including the default stream.
  virtual int stream_count() const = 0;

  // --- work submission (host side; advances the host clock) ---------------
  /// Enqueue a kernel. `work` runs on the host at simulated completion
  /// time, in completion order. Returns a correlation id.
  virtual std::uint64_t launch_kernel(StreamId stream, std::string name,
                                      const LaunchConfig& config,
                                      const KernelCost& cost, WorkFn work) = 0;
  /// Enqueue an async copy over the PCIe copy engine for `dir`.
  virtual std::uint64_t memcpy_async(StreamId stream, std::size_t bytes,
                                     bool host_to_device, WorkFn work = {}) = 0;
  /// Enqueue a cross-device (peer) copy whose [start_ns, end_ns] span was
  /// computed externally by the fleet interconnect model (gpusim::LinkModel
  /// accounts link latency, bandwidth and contention). The op flows
  /// through the ordinary copy event machinery — `work` runs at end_ns in
  /// completion order, the record lands on the timeline tagged with
  /// `peer_device` — but it does not occupy the device's own PCIe copy
  /// engines and its release is the link-granted start time rather than
  /// the submitting host clock (the issuing driver models a dedicated
  /// communication thread). In-stream FIFO order still applies, so a
  /// driver must submit peer copies per stream in start-time order.
  virtual std::uint64_t memcpy_peer(StreamId stream, std::size_t bytes,
                                    int peer_device, SimTime start_ns,
                                    SimTime end_ns, WorkFn work = {}) = 0;
  /// Record an event in `stream`; completes when prior work in the stream
  /// has finished.
  virtual EventId record_event(StreamId stream) = 0;
  /// Record an event issued by the fleet's communication driver (a
  /// modelled dedicated thread, like memcpy_peer): zero host cost, and it
  /// becomes visible to the device at `issue_ns` instead of the dispatch
  /// thread's clock. Without this, a comm-stream marker submitted late in
  /// host time would block later link-scheduled copies queued behind it.
  virtual EventId record_event_at(StreamId stream, SimTime issue_ns) = 0;
  /// Make `stream` wait until `event` has been recorded.
  virtual void wait_event(StreamId stream, EventId event) = 0;
  /// Run a host function inside the stream's FIFO order.
  virtual void host_callback(StreamId stream, WorkFn fn) = 0;

  // --- synchronisation (runs the event loop) ------------------------------
  virtual void synchronize_stream(StreamId stream) = 0;
  virtual void synchronize_event(EventId event) = 0;
  virtual void synchronize() = 0;
  /// Non-blocking: has the event been reached? (Does not advance time.)
  virtual bool event_complete(EventId event) const = 0;
  /// Simulated timestamp at which the event was reached (it must be
  /// complete — check event_complete or synchronise first).
  virtual SimTime event_time(EventId event) const = 0;
  /// Non-blocking: does the stream have pending work?
  virtual bool stream_idle(StreamId stream) const = 0;
  /// Lookahead: run the device event loop up to device time `t`, so every
  /// completion (and event timestamp) at or before `t` becomes observable
  /// via event_complete/event_time. Unlike the synchronize_* calls this
  /// does NOT join the host clock to the device — observing the device is
  /// not a synchronisation point. Used by the serving event loop to poll
  /// in-flight batches without distorting host-side arrival timing.
  virtual void advance_device_to(SimTime t) = 0;
  /// Settle any ops that can start right now, then return the device time
  /// of the next pending event (+infinity when the device is idle). Lets
  /// the serving event loop advance exactly event-by-event instead of
  /// guessing a horizon.
  virtual SimTime peek_next_event() = 0;

  // --- clocks --------------------------------------------------------------
  /// Host-visible clock: advanced by launch overheads and by joining the
  /// device at synchronisation points.
  SimTime host_now() const { return host_time_; }
  /// Device simulation clock (may trail the host clock while work queues).
  SimTime device_now() const { return now_; }
  /// Model host-side work (e.g. GLP4NN's analysis phase) occupying the
  /// dispatch thread for `ns`.
  void host_advance(SimTime ns) { host_time_ += ns; }

  // --- introspection --------------------------------------------------------
  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }
  /// Correlation id of the most recently submitted kernel or copy
  /// (profilers snapshot this to scope their record windows).
  std::uint64_t last_correlation() const { return next_correlation_ - 1; }
  const DeviceStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DeviceStats{}; }

  /// Completion hooks (used by simcupti). Called for every kernel/copy
  /// regardless of whether the timeline recorder is enabled.
  void set_kernel_callback(KernelCallback cb) { kernel_cb_ = std::move(cb); }
  void set_copy_callback(CopyCallback cb) { copy_cb_ = std::move(cb); }

  /// Ablation knob: when false, the register soft-constraint derating is
  /// skipped entirely.
  void set_register_penalty_enabled(bool enabled) { register_penalty_ = enabled; }

  /// Ambient multi-tenant tag: every op submitted while a tenant is set is
  /// stamped with it, and the tag is copied into the kernel/copy records
  /// (timeline, simcupti, chrome traces). -1 means untagged.
  void set_current_tenant(int tenant) { current_tenant_ = tenant; }
  int current_tenant() const { return current_tenant_; }

  /// Convert an analytic cost into total work in thread-cycles via the
  /// device roofline (exposed for tests and the analyzer).
  double work_thread_cycles(const LaunchConfig& config, const KernelCost& cost) const;

 protected:
  void validate_launch(const LaunchConfig& config) const;

  DeviceProps props_;
  Timeline timeline_;
  DeviceStats stats_;
  KernelCallback kernel_cb_;
  CopyCallback copy_cb_;
  bool register_penalty_ = true;

  SimTime now_ = 0.0;
  SimTime host_time_ = 0.0;
  int current_tenant_ = -1;

  std::uint64_t next_seq_ = 1;
  std::uint64_t next_correlation_ = 1;
  EventId next_event_ = 1;
  StreamId next_stream_ = 1;
  std::uint64_t last_default_seq_ = 0;  ///< most recent default-stream op

  SimTime copy_engine_free_[2] = {0.0, 0.0};  ///< [h2d, d2h] availability
};

/// Construct an engine of the requested kind (the testing seam simcuda's
/// Context exposes; production code always gets kOptimized).
std::unique_ptr<DeviceEngine> make_device_engine(DeviceProps props,
                                                 EngineKind kind);

/// O(1) membership window over the dense, monotonically issued op
/// sequence numbers. Replaces the reference engine's std::set: insertion
/// is append-only, completion clears a flag, and the minimum incomplete
/// seq (the default-stream barrier test) is the window base. Storage is a
/// power-of-two ring sized to the widest in-flight window ever seen, so
/// steady-state operation allocates nothing.
class SeqWindow {
 public:
  /// Track `seq` as incomplete. Seqs must be inserted in increasing
  /// order with no gaps (the engine issues them that way).
  void insert(std::uint64_t seq);
  /// Mark a tracked seq complete.
  void complete(std::uint64_t seq);
  /// Is `seq` tracked and still incomplete?
  bool contains(std::uint64_t seq) const {
    return seq >= base_ && seq < end_ && state_[seq & mask()] != 0;
  }
  /// Smallest incomplete seq; only valid when !empty().
  std::uint64_t min_incomplete() const { return base_; }
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

 private:
  std::size_t mask() const { return state_.size() - 1; }
  void grow();

  std::vector<std::uint8_t> state_;  ///< ring: 1 = incomplete
  std::uint64_t base_ = 1;           ///< all seqs < base_ are complete
  std::uint64_t end_ = 1;            ///< one past the highest inserted seq
  std::size_t count_ = 0;            ///< incomplete seqs in [base_, end_)
};

/// The production engine. Public semantics are defined by ReferenceEngine
/// (the original loop); this implementation must match it event-for-event
/// and bit-for-bit while doing asymptotically and constant-factor less
/// work per event.
class SimDevice final : public DeviceEngine {
 public:
  explicit SimDevice(DeviceProps props);

  StreamId create_stream(int priority = 0, bool non_blocking = false) override;
  int stream_priority(StreamId stream) const override;
  void destroy_stream(StreamId stream) override;
  int stream_count() const override { return live_streams_; }

  std::uint64_t launch_kernel(StreamId stream, std::string name,
                              const LaunchConfig& config, const KernelCost& cost,
                              WorkFn work) override;
  std::uint64_t memcpy_async(StreamId stream, std::size_t bytes,
                             bool host_to_device, WorkFn work = {}) override;
  std::uint64_t memcpy_peer(StreamId stream, std::size_t bytes, int peer_device,
                            SimTime start_ns, SimTime end_ns,
                            WorkFn work = {}) override;
  EventId record_event(StreamId stream) override;
  EventId record_event_at(StreamId stream, SimTime issue_ns) override;
  void wait_event(StreamId stream, EventId event) override;
  void host_callback(StreamId stream, WorkFn fn) override;

  void synchronize_stream(StreamId stream) override;
  void synchronize_event(EventId event) override;
  void synchronize() override;
  bool event_complete(EventId event) const override;
  SimTime event_time(EventId event) const override;
  bool stream_idle(StreamId stream) const override;
  void advance_device_to(SimTime t) override;
  SimTime peek_next_event() override;

 private:
  enum class OpKind : std::uint8_t {
    kKernel,
    kCopy,
    kEventRecord,
    kWaitEvent,
    kHostFn
  };

  struct Op {
    OpKind kind = OpKind::kKernel;
    std::uint64_t seq = 0;
    StreamId stream = kDefaultStream;
    SimTime release = 0.0;       ///< host time the op became visible
    std::uint64_t default_dep = 0;  ///< last default-stream op before us
    std::uint64_t stream_dep = 0;   ///< previous op in the same stream
    bool barrier = false;        ///< default-stream op: waits for ALL prior
    bool non_blocking = false;   ///< submitted to a non-blocking stream
    int tenant = -1;             ///< ambient tenant tag at submission

    // kKernel
    std::string name;
    LaunchConfig config;
    KernelCost cost;
    WorkFn work;
    std::uint64_t correlation = 0;

    // kCopy
    std::size_t bytes = 0;
    bool host_to_device = true;
    int peer = -1;               ///< peer device of a cross-device copy
    SimTime peer_start = 0.0;    ///< link-granted start (peer copies only)
    SimTime peer_end = 0.0;      ///< link-computed completion (peer copies only)

    // kEventRecord / kWaitEvent
    EventId event = 0;
    SimTime issue_at = -1.0;     ///< comm-driver release override (< 0: host)
  };

  struct ActiveKernel {
    Op op;
    SimTime admit_ns = 0.0;
    SimTime latency_left = 0.0;  ///< device-side start latency to consume
    double work_left = 0.0;      ///< thread-cycles
    double work_per_block = 0.0;
    double rate = 0.0;           ///< thread-cycles per ns (current share)
    double lanes = 0.0;          ///< lanes occupied (for utilisation stats)
  };

  struct ActiveCopy {
    Op op;
    SimTime start_ns = 0.0;
    SimTime end_ns = 0.0;
  };

  /// One slot of the flat stream table, indexed directly by StreamId
  /// (ids are dense and never reused).
  struct StreamState {
    std::deque<Op> queue;
    std::uint64_t last_seq = 0;  ///< seq of the newest op ever submitted
    int priority = 0;
    bool live = false;
    bool non_blocking = false;   ///< exempt from default-stream ordering
  };

  enum class EventState : std::uint8_t { kUnknown = 0, kPending, kRecorded };
  struct EventSlot {
    SimTime time = 0.0;
    EventState state = EventState::kUnknown;
  };

  /// Lazy min-heap entry over stream-queue head release times: one entry
  /// per op that becomes a queue head with a future release. Stale
  /// entries (head changed, release passed) are dropped at peek time.
  struct ReleaseEntry {
    SimTime release = 0.0;
    StreamId stream = kDefaultStream;
    std::uint64_t seq = 0;
  };

  /// Memoized outcome of one residency repack + rate rescale, keyed by
  /// the resident-set signature (per kernel: block shape, shared memory,
  /// registers, blocks still wanted — everything the packer and the lane
  /// allocator read). Values are the exact doubles the full computation
  /// produced, so replaying from the memo is bit-identical.
  struct RateMemoEntry {
    std::vector<std::uint64_t> key;
    std::vector<std::pair<double, double>> lanes_rates;  ///< per kernel
  };

  void submit(Op op, SimTime host_cost_ns);
  void run_until(const std::function<bool()>& pred);

  /// Start every op that can start at the current sim time. Returns true
  /// if anything changed.
  bool start_ready_ops();
  bool op_ready(const Op& op) const;
  void complete_op_bookkeeping(std::uint64_t seq, bool non_blocking);
  void recompute_rates();
  SimTime next_event_time() const;
  SimTime peek_release() const;
  void push_release(const Op& head);
  void advance_to(SimTime t);
  void finish_kernel(std::size_t idx);
  bool stream_live(StreamId stream) const {
    return stream >= 0 && static_cast<std::size_t>(stream) < streams_.size() &&
           streams_[static_cast<std::size_t>(stream)].live;
  }
  StreamState& stream_state(StreamId stream) {
    return streams_[static_cast<std::size_t>(stream)];
  }
  const StreamState& stream_state(StreamId stream) const {
    return streams_[static_cast<std::size_t>(stream)];
  }

  // Deque, not vector: StreamState holds a move-only op queue (no copy
  // fallback for vector reallocation), and deque growth keeps references
  // stable across create_stream calls made from host functors.
  std::deque<StreamState> streams_;    ///< indexed by StreamId
  std::vector<StreamId> admission_order_;  ///< live streams, (prio desc, id asc)
  std::vector<StreamId> drain_order_;  ///< scratch: admission snapshot per drain
  int live_streams_ = 0;
  std::size_t queued_ops_ = 0;         ///< total ops across all queues

  SeqWindow incomplete_;               ///< submitted-not-finished ops
  /// Mirror of incomplete_ that treats non-blocking-stream ops as already
  /// complete (they are inserted and completed in the same breath), so
  /// the default-stream barrier test — min incomplete *blocking* seq —
  /// stays O(1) and never waits on fleet communication traffic.
  SeqWindow barrier_window_;
  std::vector<EventSlot> events_;      ///< indexed by EventId (slot 0 unused)

  std::vector<ActiveKernel> resident_;
  std::vector<ActiveCopy> copies_;
  SimTime copy_min_end_;               ///< min end_ns over copies_ (+inf if none)
  mutable std::vector<ReleaseEntry> release_heap_;

  // Residency memo + reusable scratch (allocation-free steady state).
  std::unordered_map<std::uint64_t, RateMemoEntry> rate_memo_;
  std::vector<std::uint64_t> memo_key_;
  std::vector<ResidencyRequest> reqs_scratch_;
  std::vector<ResidencySlot> slots_scratch_;
  std::vector<double> demand_scratch_;
};

}  // namespace gpusim
