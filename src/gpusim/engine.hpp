#pragma once
// Discrete-event simulator of one GPU device.
//
// Execution model ("fluid occupancy" model):
//  * Kernels are admitted from per-stream FIFO queues, at most
//    `max_concurrent_kernels` (the paper's concurrency degree C) resident
//    at once.
//  * Resident kernels are packed onto SMs by `pack_residency` under the
//    hard per-SM limits (threads, shared memory, resident blocks). A
//    kernel's execution rate is the number of scalar lanes its resident
//    blocks can occupy; when resident kernels together demand more lanes
//    than the device has, rates scale proportionally (saturation).
//  * A kernel's total work is derived from its analytic cost (flops,
//    bytes) through a per-device roofline, so the same launch is
//    compute-bound on a K40C and bandwidth-bound on a P100.
//  * Per-launch host overhead (T_launch) and device-side start latency
//    model why very short kernels never overlap — the paper's observed
//    regression on ~2 ms layers (§4.2.1) and the T_K/T_launch bound in
//    Eq. 7.
//
// The host thread drives the simulation: launches enqueue work and
// advance the host clock; synchronisation calls run the event loop until
// the awaited condition holds. Host functors attached to kernels execute
// real math (the DNN layers' arithmetic) at kernel-completion time in
// simulated order, so stream-dependency bugs corrupt real numerics and
// are caught by the convergence-invariance tests.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gpusim/device_props.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/timeline.hpp"
#include "gpusim/types.hpp"

namespace gpusim {

/// Aggregate utilisation counters, cheap enough to keep always-on.
struct DeviceStats {
  std::uint64_t kernels_launched = 0;
  std::uint64_t copies_issued = 0;
  double busy_lane_ns = 0.0;   ///< ∫ (occupied lanes) dt
  double active_ns = 0.0;      ///< time with ≥1 resident kernel
  double sim_span_ns = 0.0;    ///< total simulated time elapsed

  /// Mean fraction of lanes busy while the device was active.
  double mean_utilization(int total_lanes) const {
    return active_ns > 0.0 ? busy_lane_ns / (active_ns * total_lanes) : 0.0;
  }
};

class SimDevice {
 public:
  using WorkFn = std::function<void()>;
  using KernelCallback = std::function<void(const KernelRecord&)>;
  using CopyCallback = std::function<void(const CopyRecord&)>;

  explicit SimDevice(DeviceProps props);
  SimDevice(const SimDevice&) = delete;
  SimDevice& operator=(const SimDevice&) = delete;

  const DeviceProps& props() const { return props_; }

  // --- streams ------------------------------------------------------------
  /// Create a new asynchronous stream (never returns kDefaultStream).
  /// Higher `priority` wins ties for admission when the concurrency
  /// degree is saturated (CUDA's cudaStreamCreateWithPriority; CUDA uses
  /// lower-is-higher, we use higher-is-higher for readability).
  StreamId create_stream(int priority = 0);
  /// Priority a stream was created with (0 for the default stream).
  int stream_priority(StreamId stream) const;
  /// Destroy a stream; pending work must have completed.
  void destroy_stream(StreamId stream);
  /// Number of live streams, including the default stream.
  int stream_count() const { return static_cast<int>(queues_.size()); }

  // --- work submission (host side; advances the host clock) ---------------
  /// Enqueue a kernel. `work` runs on the host at simulated completion
  /// time, in completion order. Returns a correlation id.
  std::uint64_t launch_kernel(StreamId stream, std::string name,
                              const LaunchConfig& config, const KernelCost& cost,
                              WorkFn work);
  /// Enqueue an async copy over the PCIe copy engine for `dir`.
  std::uint64_t memcpy_async(StreamId stream, std::size_t bytes,
                             bool host_to_device, WorkFn work = {});
  /// Record an event in `stream`; completes when prior work in the stream
  /// has finished.
  EventId record_event(StreamId stream);
  /// Make `stream` wait until `event` has been recorded.
  void wait_event(StreamId stream, EventId event);
  /// Run a host function inside the stream's FIFO order.
  void host_callback(StreamId stream, WorkFn fn);

  // --- synchronisation (runs the event loop) ------------------------------
  void synchronize_stream(StreamId stream);
  void synchronize_event(EventId event);
  void synchronize();
  /// Non-blocking: has the event been reached? (Does not advance time.)
  bool event_complete(EventId event) const;
  /// Simulated timestamp at which the event was reached (it must be
  /// complete — check event_complete or synchronise first).
  SimTime event_time(EventId event) const;
  /// Non-blocking: does the stream have pending work?
  bool stream_idle(StreamId stream) const;

  // --- clocks --------------------------------------------------------------
  /// Host-visible clock: advanced by launch overheads and by joining the
  /// device at synchronisation points.
  SimTime host_now() const { return host_time_; }
  /// Device simulation clock (may trail the host clock while work queues).
  SimTime device_now() const { return now_; }
  /// Model host-side work (e.g. GLP4NN's analysis phase) occupying the
  /// dispatch thread for `ns`.
  void host_advance(SimTime ns) { host_time_ += ns; }
  /// Lookahead: run the device event loop up to device time `t`, so every
  /// completion (and event timestamp) at or before `t` becomes observable
  /// via event_complete/event_time. Unlike the synchronize_* calls this
  /// does NOT join the host clock to the device — observing the device is
  /// not a synchronisation point. Used by the serving event loop to poll
  /// in-flight batches without distorting host-side arrival timing.
  void advance_device_to(SimTime t);
  /// Settle any ops that can start right now, then return the device time
  /// of the next pending event (+infinity when the device is idle). Lets
  /// the serving event loop advance exactly event-by-event instead of
  /// guessing a horizon.
  SimTime peek_next_event();

  // --- introspection --------------------------------------------------------
  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }
  /// Correlation id of the most recently submitted kernel or copy
  /// (profilers snapshot this to scope their record windows).
  std::uint64_t last_correlation() const { return next_correlation_ - 1; }
  const DeviceStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DeviceStats{}; }

  /// Completion hooks (used by simcupti). Called for every kernel/copy
  /// regardless of whether the timeline recorder is enabled.
  void set_kernel_callback(KernelCallback cb) { kernel_cb_ = std::move(cb); }
  void set_copy_callback(CopyCallback cb) { copy_cb_ = std::move(cb); }

  /// Ablation knob: when false, the register soft-constraint derating is
  /// skipped entirely.
  void set_register_penalty_enabled(bool enabled) { register_penalty_ = enabled; }

  /// Ambient multi-tenant tag: every op submitted while a tenant is set is
  /// stamped with it, and the tag is copied into the kernel/copy records
  /// (timeline, simcupti, chrome traces). -1 means untagged.
  void set_current_tenant(int tenant) { current_tenant_ = tenant; }
  int current_tenant() const { return current_tenant_; }

  /// Convert an analytic cost into total work in thread-cycles via the
  /// device roofline (exposed for tests and the analyzer).
  double work_thread_cycles(const LaunchConfig& config, const KernelCost& cost) const;

 private:
  enum class OpKind { kKernel, kCopy, kEventRecord, kWaitEvent, kHostFn };

  struct Op {
    OpKind kind = OpKind::kKernel;
    std::uint64_t seq = 0;
    StreamId stream = kDefaultStream;
    SimTime release = 0.0;       ///< host time the op became visible
    std::uint64_t default_dep = 0;  ///< last default-stream op before us
    std::uint64_t stream_dep = 0;   ///< previous op in the same stream
    bool barrier = false;        ///< default-stream op: waits for ALL prior
    int tenant = -1;             ///< ambient tenant tag at submission

    // kKernel
    std::string name;
    LaunchConfig config;
    KernelCost cost;
    WorkFn work;
    std::uint64_t correlation = 0;

    // kCopy
    std::size_t bytes = 0;
    bool host_to_device = true;

    // kEventRecord / kWaitEvent
    EventId event = 0;
  };

  struct ActiveKernel {
    Op op;
    SimTime admit_ns = 0.0;
    SimTime latency_left = 0.0;  ///< device-side start latency to consume
    double work_left = 0.0;      ///< thread-cycles
    double work_per_block = 0.0;
    double rate = 0.0;           ///< thread-cycles per ns (current share)
    double lanes = 0.0;          ///< lanes occupied (for utilisation stats)
  };

  struct ActiveCopy {
    Op op;
    SimTime start_ns = 0.0;
    SimTime end_ns = 0.0;
  };

  void submit(Op op, SimTime host_cost_ns);
  void run_until(const std::function<bool()>& pred);
  /// Start every op that can start at the current sim time. Returns true
  /// if anything changed.
  bool start_ready_ops();
  bool op_ready(const Op& op) const;
  void complete_op_bookkeeping(std::uint64_t seq);
  void recompute_rates();
  SimTime next_event_time() const;
  void advance_to(SimTime t);
  void finish_kernel(std::size_t idx);
  void validate_launch(const LaunchConfig& config) const;

  DeviceProps props_;
  Timeline timeline_;
  DeviceStats stats_;
  KernelCallback kernel_cb_;
  CopyCallback copy_cb_;
  bool register_penalty_ = true;

  SimTime now_ = 0.0;
  SimTime host_time_ = 0.0;
  int current_tenant_ = -1;

  std::uint64_t next_seq_ = 1;
  std::uint64_t next_correlation_ = 1;
  EventId next_event_ = 1;
  StreamId next_stream_ = 1;

  std::map<StreamId, std::deque<Op>> queues_;
  std::map<StreamId, int> stream_priority_;
  std::map<StreamId, std::uint64_t> last_seq_in_stream_;
  std::set<std::uint64_t> incomplete_;     ///< seqs of submitted-not-finished ops
  std::uint64_t last_default_seq_ = 0;     ///< most recent default-stream op
  std::map<EventId, SimTime> event_times_; ///< recorded events
  std::set<EventId> events_pending_;       ///< created but not yet recorded

  std::vector<ActiveKernel> resident_;
  std::vector<ActiveCopy> copies_;
  SimTime copy_engine_free_[2] = {0.0, 0.0};  ///< [h2d, d2h] availability
};

}  // namespace gpusim
