#pragma once
// Small-buffer move-only callable used for the engine's per-op work
// functors. std::function heap-allocates once a capture exceeds its tiny
// internal buffer (two pointers on libstdc++) and dispatches through a
// type-erased manager on every call; the simulator issues one functor per
// launched kernel/copy, so those allocations dominate the submission hot
// path. InlineFn stores captures up to kInlineBytes in-place and calls
// through a single direct function pointer — the "devirtualized" dispatch
// for the monomorphic lambdas the layer wrappers produce. Oversized or
// throwing-move callables transparently fall back to one heap cell.

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace gpusim {

class InlineFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT: implicit, mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::decay_t<F>;
    // Mirror std::function: wrapping an empty wrapper or a null function
    // pointer produces an empty InlineFn, not a callable that throws.
    if constexpr (std::is_same_v<Fn, std::function<void()>> ||
                  std::is_pointer_v<Fn> ||
                  std::is_member_pointer_v<Fn>) {
      if (!f) return;
    }
    if constexpr (kStoreInline<Fn>) {
      ::new (storage()) Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
      manage_ = [](void* dst, void* src) {
        if (src) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        } else {
          static_cast<Fn*>(dst)->~Fn();
        }
      };
    } else {
      *static_cast<Fn**>(storage()) = new Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (**static_cast<Fn**>(s))(); };
      manage_ = [](void* dst, void* src) {
        if (src) {
          *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
          *static_cast<Fn**>(src) = nullptr;
        } else {
          delete *static_cast<Fn**>(dst);
        }
      };
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }
  void operator()() { invoke_(storage()); }

 private:
  template <typename Fn>
  static constexpr bool kStoreInline =
      sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  void* storage() { return buf_; }

  void move_from(InlineFn& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_) manage_(storage(), other.storage());
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() {
    if (manage_) manage_(storage(), nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  /// manage(dst, src): src != nullptr → move-construct dst from src and
  /// destroy src; src == nullptr → destroy dst.
  void (*manage_)(void*, void*) = nullptr;
};

}  // namespace gpusim
