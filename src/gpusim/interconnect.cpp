#include "gpusim/interconnect.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace gpusim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Residual-byte tolerance: after draining fluid up to an exactly
/// computed completion instant the finishing transfer's remainder is
/// zero up to rounding; anything under a micro-byte counts as done.
constexpr double kEpsBytes = 1e-6;

}  // namespace

LinkModel::LinkModel(int devices, LinkTopology topology, LinkProps props)
    : devices_(devices), topology_(topology), props_(props) {
  GLP_CHECK(devices >= 1);
  GLP_CHECK(props.bandwidth_gbps > 0.0);
  GLP_CHECK(props.latency_ns >= 0.0);
  channel_count_ = topology == LinkTopology::kPcieHost
                       ? 1
                       : 2 * devices;  // forward + backward per device
}

int LinkModel::channel_for(int src, int dst) const {
  GLP_CHECK(src >= 0 && src < devices_);
  GLP_CHECK(dst >= 0 && dst < devices_);
  GLP_CHECK(src != dst);
  if (topology_ == LinkTopology::kPcieHost) return 0;
  // Ring: channel `src` is the directed forward link src -> src+1,
  // channel `devices_ + src` the backward link src -> src-1. With two
  // devices both neighbours coincide; forward wins deterministically.
  if (dst == (src + 1) % devices_) return src;
  GLP_CHECK_MSG(dst == (src + devices_ - 1) % devices_,
                "nvlink ring carries neighbour traffic only");
  return devices_ + src;
}

std::uint64_t LinkModel::begin(int src, int dst, std::size_t bytes,
                               SimTime request_ns) {
  return begin_after(src, dst, bytes, request_ns, 0, 0);
}

std::uint64_t LinkModel::begin_after(int src, int dst, std::size_t bytes,
                                     SimTime request_floor_ns,
                                     std::uint64_t dep_a,
                                     std::uint64_t dep_b) {
  std::vector<std::uint64_t> deps;
  if (dep_a != 0) deps.push_back(dep_a);
  if (dep_b != 0) deps.push_back(dep_b);
  return begin_after(src, dst, bytes, request_floor_ns, deps);
}

std::uint64_t LinkModel::begin_after(int src, int dst, std::size_t bytes,
                                     SimTime request_floor_ns,
                                     const std::vector<std::uint64_t>& deps) {
  const int channel = channel_for(src, dst);
  Pending p;
  p.rec.id = next_id_++;
  p.rec.src = src;
  p.rec.dst = dst;
  p.rec.bytes = bytes;
  p.rec.channel = channel;
  p.remaining = static_cast<double>(bytes);
  p.floor_ns = request_floor_ns;
  // Dependencies on transfers finalized in an earlier batch fold into
  // the floor immediately; same-batch dependencies resolve during
  // finalize_all.
  for (std::uint64_t dep : deps) {
    if (dep == 0) continue;
    auto it = end_ns_.find(dep);
    if (it != end_ns_.end()) {
      p.floor_ns = std::max(p.floor_ns, it->second);
    } else {
      p.deps.push_back(dep);
    }
  }
  pending_.push_back(std::move(p));
  return next_id_ - 1;
}

SimTime LinkModel::end_of(std::uint64_t id) const {
  auto it = end_ns_.find(id);
  GLP_CHECK_MSG(it != end_ns_.end(), "end_of: transfer " << id
                                                         << " not finalized");
  return it->second;
}

void LinkModel::finalize_all() {
  if (pending_.empty()) return;
  const double bandwidth = props_.bytes_per_ns();

  // Same-batch dependency ids -> pending indices (and sanity: a dep must
  // be either already finalized — folded into the floor at begin — or a
  // member of this batch).
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i)
    by_id.emplace(pending_[i].rec.id, i);
  std::vector<std::vector<std::size_t>> dependents(pending_.size());
  std::vector<int> deps_left(pending_.size(), 0);
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    for (std::uint64_t dep : pending_[i].deps) {
      auto it = by_id.find(dep);
      GLP_CHECK_MSG(it != by_id.end(),
                    "begin_after: dependency " << dep << " never registered");
      GLP_CHECK_MSG(it->second < i, "begin_after: dependency must precede");
      dependents[it->second].push_back(i);
      ++deps_left[i];
    }
  }

  auto release = [&](std::size_t i) {
    Pending& p = pending_[i];
    p.rec.request_ns = p.floor_ns;
    p.rec.start_ns = p.rec.request_ns + props_.latency_ns;
    p.released = true;
  };
  for (std::size_t i = 0; i < pending_.size(); ++i)
    if (deps_left[i] == 0) release(i);

  // Global event loop. Channels drain their PS fluid lazily — only when
  // an event (arrival or completion) lands on them — so a channel's
  // fluid history, and therefore every transfer's RateSegments, is
  // bit-identical to the original single-channel resolution whenever no
  // cross-channel dependencies exist.
  //
  // Within one directed (src, dst) pair the copy engine is a FIFO: one
  // message in flight at a time, the next admitted the instant its
  // predecessor's last byte lands (its latency overlaps the queue
  // wait). PS sharing applies across pairs on a channel, never within
  // one. This is what makes chunk pipelining pay: queued chunks of a
  // bucket stream back-to-back on the wire instead of advancing in PS
  // lockstep, hiding every inter-wave latency gap but the first.
  std::vector<std::vector<std::size_t>> active(
      static_cast<std::size_t>(channel_count_));
  std::vector<SimTime> ch_now(static_cast<std::size_t>(channel_count_), 0.0);
  const std::size_t pair_count =
      static_cast<std::size_t>(devices_) * static_cast<std::size_t>(devices_);
  std::vector<char> pair_busy(pair_count, 0);
  std::vector<SimTime> pair_free(pair_count, 0.0);
  auto pair_of = [&](const Pending& p) {
    return static_cast<std::size_t>(p.rec.src) *
               static_cast<std::size_t>(devices_) +
           static_cast<std::size_t>(p.rec.dst);
  };
  std::size_t done_count = 0;

  while (done_count < pending_.size()) {
    // Next arrival: earliest released-but-unstarted admission instant
    // max(start, pair free) over idle pairs (ties by id — registration
    // order — for determinism).
    SimTime arrival_t = kInf;
    for (const Pending& p : pending_) {
      if (!p.released || p.started) continue;
      const std::size_t pair = pair_of(p);
      if (pair_busy[pair]) continue;
      arrival_t =
          std::min(arrival_t, std::max(p.rec.start_ns, pair_free[pair]));
    }
    // Next completion over all channels.
    SimTime done_t = kInf;
    for (int ch = 0; ch < channel_count_; ++ch) {
      const auto& act = active[static_cast<std::size_t>(ch)];
      if (act.empty()) continue;
      double min_remaining = kInf;
      for (std::size_t idx : act)
        min_remaining = std::min(min_remaining, pending_[idx].remaining);
      done_t = std::min(done_t,
                        ch_now[static_cast<std::size_t>(ch)] +
                            min_remaining * static_cast<double>(act.size()) /
                                bandwidth);
    }
    const SimTime t = std::min(arrival_t, done_t);
    GLP_CHECK_MSG(t < kInf,
                  "link finalize stalled: dependency cycle or unreleased "
                  "transfers");

    // Completions first at a shared instant: the finisher got its old
    // share up to `t`; a coincident arrival shares only afterwards.
    if (done_t <= arrival_t) {
      for (int ch = 0; ch < channel_count_; ++ch) {
        auto& act = active[static_cast<std::size_t>(ch)];
        if (act.empty()) continue;
        SimTime& now = ch_now[static_cast<std::size_t>(ch)];
        // Would this channel complete something at t? Drain only then,
        // so untouched channels keep their fluid history unsplit.
        double min_remaining = kInf;
        for (std::size_t idx : act)
          min_remaining = std::min(min_remaining, pending_[idx].remaining);
        const SimTime ch_done =
            now + min_remaining * static_cast<double>(act.size()) / bandwidth;
        if (ch_done > t) continue;
        if (t > now) {
          const double rate = bandwidth / static_cast<double>(act.size());
          const double moved = (t - now) * rate;
          for (std::size_t idx : act) {
            Pending& p = pending_[idx];
            p.remaining = std::max(0.0, p.remaining - moved);
            p.rec.segments.push_back(RateSegment{now, t, rate});
          }
        }
        now = t;
        for (auto it = act.begin(); it != act.end();) {
          Pending& p = pending_[*it];
          if (p.remaining <= kEpsBytes) {
            p.remaining = 0.0;
            p.rec.end_ns = now;
            end_ns_.emplace(p.rec.id, now);
            const std::size_t pair = pair_of(p);
            pair_busy[pair] = 0;
            pair_free[pair] = std::max(pair_free[pair], now);
            for (std::size_t dep_idx : dependents[*it]) {
              Pending& d = pending_[dep_idx];
              d.floor_ns = std::max(d.floor_ns, now);
              if (--deps_left[dep_idx] == 0) release(dep_idx);
            }
            completed_.push_back(std::move(p.rec));
            ++done_count;
            it = act.erase(it);
          } else {
            ++it;
          }
        }
      }
    } else {
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        Pending& p = pending_[i];
        if (!p.released || p.started) continue;
        const std::size_t pair = pair_of(p);
        if (pair_busy[pair]) continue;
        if (std::max(p.rec.start_ns, pair_free[pair]) > t) continue;
        p.started = true;
        // A queued message's first byte lands when its predecessor on
        // the pair frees the engine; the wire-start reflects that.
        p.rec.start_ns = std::max(p.rec.start_ns, t);
        const int ch = p.rec.channel;
        SimTime& now = ch_now[static_cast<std::size_t>(ch)];
        auto& act = active[static_cast<std::size_t>(ch)];
        // Drain the joining channel up to the arrival instant.
        if (!act.empty() && t > now) {
          const double rate = bandwidth / static_cast<double>(act.size());
          const double moved = (t - now) * rate;
          for (std::size_t idx : act) {
            Pending& q = pending_[idx];
            q.remaining = std::max(0.0, q.remaining - moved);
            q.rec.segments.push_back(RateSegment{now, t, rate});
          }
        }
        now = std::max(now, t);
        if (p.remaining <= kEpsBytes) {
          // Zero-byte message: delivered after latency, no fluid needed.
          p.rec.end_ns = p.rec.start_ns;
          end_ns_.emplace(p.rec.id, p.rec.end_ns);
          for (std::size_t dep_idx : dependents[i]) {
            Pending& d = pending_[dep_idx];
            d.floor_ns = std::max(d.floor_ns, p.rec.end_ns);
            if (--deps_left[dep_idx] == 0) release(dep_idx);
          }
          completed_.push_back(std::move(p.rec));
          ++done_count;
        } else {
          pair_busy[pair] = 1;
          act.push_back(i);
        }
      }
    }
  }

  pending_.clear();
  std::sort(completed_.begin(), completed_.end(),
            [](const TransferRecord& a, const TransferRecord& b) {
              if (a.end_ns != b.end_ns) return a.end_ns < b.end_ns;
              return a.id < b.id;
            });
}

std::vector<TransferRecord> LinkModel::take_completed() {
  std::vector<TransferRecord> out;
  out.swap(completed_);
  return out;
}

}  // namespace gpusim
