#include "gpusim/interconnect.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace gpusim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Residual-byte tolerance: after draining fluid up to an exactly
/// computed completion instant the finishing transfer's remainder is
/// zero up to rounding; anything under a micro-byte counts as done.
constexpr double kEpsBytes = 1e-6;

}  // namespace

LinkModel::LinkModel(int devices, LinkTopology topology, LinkProps props)
    : devices_(devices), topology_(topology), props_(props) {
  GLP_CHECK(devices >= 1);
  GLP_CHECK(props.bandwidth_gbps > 0.0);
  GLP_CHECK(props.latency_ns >= 0.0);
  const int channels = topology == LinkTopology::kPcieHost
                           ? 1
                           : 2 * devices;  // forward + backward per device
  channels_.resize(static_cast<std::size_t>(channels));
}

int LinkModel::channel_for(int src, int dst) const {
  GLP_CHECK(src >= 0 && src < devices_);
  GLP_CHECK(dst >= 0 && dst < devices_);
  GLP_CHECK(src != dst);
  if (topology_ == LinkTopology::kPcieHost) return 0;
  // Ring: channel `src` is the directed forward link src -> src+1,
  // channel `devices_ + src` the backward link src -> src-1. With two
  // devices both neighbours coincide; forward wins deterministically.
  if (dst == (src + 1) % devices_) return src;
  GLP_CHECK_MSG(dst == (src + devices_ - 1) % devices_,
                "nvlink ring carries neighbour traffic only");
  return devices_ + src;
}

std::uint64_t LinkModel::begin(int src, int dst, std::size_t bytes,
                               SimTime request_ns) {
  const int channel = channel_for(src, dst);
  Pending p;
  p.rec.id = next_id_++;
  p.rec.src = src;
  p.rec.dst = dst;
  p.rec.bytes = bytes;
  p.rec.request_ns = request_ns;
  p.rec.start_ns = request_ns + props_.latency_ns;
  p.rec.channel = channel;
  p.remaining = static_cast<double>(bytes);
  channels_[static_cast<std::size_t>(channel)].pending.push_back(std::move(p));
  return next_id_ - 1;
}

void LinkModel::finalize_all() {
  for (auto& ch : channels_) finalize_channel(ch);
  std::sort(completed_.begin(), completed_.end(),
            [](const TransferRecord& a, const TransferRecord& b) {
              if (a.end_ns != b.end_ns) return a.end_ns < b.end_ns;
              return a.id < b.id;
            });
}

void LinkModel::finalize_channel(Channel& ch) {
  if (ch.pending.empty()) return;
  const double bandwidth = props_.bytes_per_ns();

  // Arrivals in (start_ns, id) order; `active` holds indices into
  // ch.pending of transfers currently sharing the channel.
  std::vector<std::size_t> order(ch.pending.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (ch.pending[a].rec.start_ns != ch.pending[b].rec.start_ns)
      return ch.pending[a].rec.start_ns < ch.pending[b].rec.start_ns;
    return ch.pending[a].rec.id < ch.pending[b].rec.id;
  });

  std::size_t next_arrival = 0;
  std::vector<std::size_t> active;
  SimTime now = ch.pending[order.front()].rec.start_ns;

  while (next_arrival < order.size() || !active.empty()) {
    const SimTime arrival_t = next_arrival < order.size()
                                  ? ch.pending[order[next_arrival]].rec.start_ns
                                  : kInf;
    SimTime done_t = kInf;
    if (!active.empty()) {
      double min_remaining = kInf;
      for (std::size_t idx : active)
        min_remaining = std::min(min_remaining, ch.pending[idx].remaining);
      done_t = now + min_remaining * static_cast<double>(active.size()) /
                         bandwidth;
    }
    const SimTime t = std::min(arrival_t, done_t);
    GLP_CHECK(t >= now);

    // Drain fluid [now, t): each active transfer holds an equal share.
    if (t > now && !active.empty()) {
      const double rate = bandwidth / static_cast<double>(active.size());
      const double moved = (t - now) * rate;
      for (std::size_t idx : active) {
        Pending& p = ch.pending[idx];
        p.remaining = std::max(0.0, p.remaining - moved);
        p.rec.segments.push_back(RateSegment{now, t, rate});
      }
    }
    now = t;

    // Completions first at a shared instant: the finisher got its old
    // share up to `now`; a coincident arrival shares only afterwards.
    if (done_t <= arrival_t && !active.empty()) {
      for (auto it = active.begin(); it != active.end();) {
        Pending& p = ch.pending[*it];
        if (p.remaining <= kEpsBytes) {
          p.remaining = 0.0;
          p.rec.end_ns = now;
          completed_.push_back(std::move(p.rec));
          it = active.erase(it);
        } else {
          ++it;
        }
      }
    } else {
      while (next_arrival < order.size() &&
             ch.pending[order[next_arrival]].rec.start_ns <= now) {
        const std::size_t idx = order[next_arrival++];
        if (ch.pending[idx].remaining <= kEpsBytes) {
          // Zero-byte message: delivered after latency, no fluid needed.
          ch.pending[idx].rec.end_ns = now;
          completed_.push_back(std::move(ch.pending[idx].rec));
        } else {
          active.push_back(idx);
        }
      }
    }
  }
  ch.pending.clear();
}

std::vector<TransferRecord> LinkModel::take_completed() {
  std::vector<TransferRecord> out;
  out.swap(completed_);
  return out;
}

}  // namespace gpusim
