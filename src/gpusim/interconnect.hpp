#pragma once
// Fleet interconnect model: explicit links between simulated devices.
//
// A LinkModel owns a set of *channels* (independent bandwidth domains)
// derived from a topology:
//
//   kPcieHost   — every device hangs off one host PCIe switch, so every
//                 cross-device transfer shares a single channel and all
//                 concurrent transfers contend.
//   kNvlinkRing — each device has a dedicated directed link to each ring
//                 neighbour; transfers on different links never interfere.
//
// Contention follows an exact processor-sharing (PS) fluid model: at any
// instant the n transfers active on a channel each progress at B/n
// bytes/ns. Completion times are computed event-by-event (arrival and
// completion instants), so they are exact, deterministic, and identical
// no matter which engine (SimDevice or ReferenceEngine) consumes them.
// Each transfer also records its piecewise-constant rate profile
// (RateSegments) so the fleet race-checker can verify that no channel
// ever exceeds its physical bandwidth and that every transfer moved
// exactly its byte count (tests/fleet_test.cpp).
//
// The model is *finalize-on-quiescence*: begin() registers arrivals, and
// finalize_all() resolves every in-flight transfer assuming no further
// arrivals. That assumption is exact under the fleet drivers'
// wave-synchronous issuance (comm/allreduce.cpp): all transfers of a wave
// are requested before any is consumed, and the next wave's requests are
// ordered after this wave's completions.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gpusim/types.hpp"

namespace gpusim {

/// Physical properties of one link generation. With SimTime in
/// nanoseconds, 1 GB/s (1e9 bytes / 1e9 ns) is exactly 1 byte/ns, so
/// `bandwidth_gbps` doubles as the channel's bytes-per-nanosecond rate.
struct LinkProps {
  double bandwidth_gbps = 12.0;  ///< GB/s of one channel
  SimTime latency_ns = 5 * kUs;  ///< per-message latency before first byte

  double bytes_per_ns() const { return bandwidth_gbps; }

  /// PCIe-class host interconnect (~12 GB/s effective, 5 us latency).
  static LinkProps pcie() { return {12.0, 5 * kUs}; }
  /// NVLink-class direct links (~60 GB/s per link, 1 us latency).
  static LinkProps nvlink() { return {60.0, 1 * kUs}; }
};

enum class LinkTopology {
  kPcieHost,    ///< one shared channel; all pairs contend
  kNvlinkRing,  ///< dedicated directed channel per ring neighbour
};

/// One constant-rate span of a transfer's PS fluid profile.
struct RateSegment {
  SimTime start_ns = 0.0;
  SimTime end_ns = 0.0;
  double rate = 0.0;  ///< bytes/ns granted during [start_ns, end_ns)
};

/// A finalized cross-device transfer.
struct TransferRecord {
  std::uint64_t id = 0;
  int src = -1;
  int dst = -1;
  std::size_t bytes = 0;
  SimTime request_ns = 0.0;  ///< source data ready, message handed to link
  SimTime start_ns = 0.0;    ///< request_ns + latency: first byte on wire
  SimTime end_ns = 0.0;      ///< last byte delivered under PS sharing
  int channel = -1;
  std::vector<RateSegment> segments;  ///< piecewise rate profile
};

/// Fleet-level interconnect: maps (src, dst) pairs onto channels and
/// resolves exact PS completion times for the transfers on each.
class LinkModel {
 public:
  LinkModel(int devices, LinkTopology topology, LinkProps props);

  int device_count() const { return devices_; }
  int channel_count() const { return static_cast<int>(channels_.size()); }
  LinkTopology topology() const { return topology_; }
  const LinkProps& props() const { return props_; }

  /// Channel carrying src -> dst traffic. On kNvlinkRing, src and dst
  /// must be ring neighbours (the ring drivers only ever talk to
  /// neighbours); kPcieHost accepts any distinct pair.
  int channel_for(int src, int dst) const;

  /// Register a transfer whose payload is ready at `request_ns`. Returns
  /// its id. The transfer starts at request_ns + latency and completes
  /// under PS sharing with everything else on its channel.
  std::uint64_t begin(int src, int dst, std::size_t bytes,
                      SimTime request_ns);

  /// Resolve every registered transfer, assuming no further begin()
  /// calls precede their completions (wave-synchronous issuance).
  void finalize_all();

  /// Drain finalized transfers, ordered by (end_ns, id).
  std::vector<TransferRecord> take_completed();

 private:
  struct Pending {
    TransferRecord rec;
    double remaining = 0.0;  ///< bytes still to move
  };
  struct Channel {
    std::vector<Pending> pending;  ///< registered, not yet finalized
  };

  void finalize_channel(Channel& ch);

  int devices_ = 0;
  LinkTopology topology_ = LinkTopology::kPcieHost;
  LinkProps props_;
  std::vector<Channel> channels_;
  std::vector<TransferRecord> completed_;
  std::uint64_t next_id_ = 1;
};

}  // namespace gpusim
