#pragma once
// Fleet interconnect model: explicit links between simulated devices.
//
// A LinkModel owns a set of *channels* (independent bandwidth domains)
// derived from a topology:
//
//   kPcieHost   — every device hangs off one host PCIe switch, so every
//                 cross-device transfer shares a single channel and all
//                 concurrent transfers contend.
//   kNvlinkRing — each device has a dedicated directed link to each ring
//                 neighbour; transfers on different links never interfere.
//
// Contention follows an exact processor-sharing (PS) fluid model: at any
// instant the n transfers active on a channel each progress at B/n
// bytes/ns. Within one directed (src, dst) pair, though, the copy
// engine is a FIFO — one message in flight at a time; a queued message
// starts the instant its predecessor's last byte lands, its per-message
// latency hidden behind the queue wait. Completion times are computed
// event-by-event (arrival and completion instants), so they are exact,
// deterministic, and identical no matter which engine (SimDevice or
// ReferenceEngine) consumes them.
// Each transfer also records its piecewise-constant rate profile
// (RateSegments) so the fleet race-checker can verify that no channel
// ever exceeds its physical bandwidth and that every transfer moved
// exactly its byte count (tests/fleet_test.cpp).
//
// The model is *finalize-on-batch*: begin()/begin_after() register a
// batch of transfers and finalize_all() resolves the whole batch exactly
// in one global event-driven pass. A transfer may depend on earlier
// transfers of the same batch (begin_after): its request time is the
// maximum of its floor and its dependencies' completion times, so a comm
// driver can hand the model an entire collective program — every wave of
// every pipelined chunk — and get exact PS times with cross-wave overlap
// wherever the dependency structure allows it (comm/collectives.cpp).
// Dependency-free usage degenerates to the original finalize-on-
// quiescence behaviour bit-for-bit.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gpusim/types.hpp"

namespace gpusim {

/// Physical properties of one link generation. With SimTime in
/// nanoseconds, 1 GB/s (1e9 bytes / 1e9 ns) is exactly 1 byte/ns, so
/// `bandwidth_gbps` doubles as the channel's bytes-per-nanosecond rate.
struct LinkProps {
  double bandwidth_gbps = 12.0;  ///< GB/s of one channel
  SimTime latency_ns = 5 * kUs;  ///< per-message latency before first byte

  double bytes_per_ns() const { return bandwidth_gbps; }

  /// PCIe-class host interconnect (~12 GB/s effective, 5 us latency).
  static LinkProps pcie() { return {12.0, 5 * kUs}; }
  /// NVLink-class direct links (~60 GB/s per link, 1 us latency).
  static LinkProps nvlink() { return {60.0, 1 * kUs}; }
};

enum class LinkTopology {
  kPcieHost,    ///< one shared channel; all pairs contend
  kNvlinkRing,  ///< dedicated directed channel per ring neighbour
};

/// One constant-rate span of a transfer's PS fluid profile.
struct RateSegment {
  SimTime start_ns = 0.0;
  SimTime end_ns = 0.0;
  double rate = 0.0;  ///< bytes/ns granted during [start_ns, end_ns)
};

/// A finalized cross-device transfer.
struct TransferRecord {
  std::uint64_t id = 0;
  int src = -1;
  int dst = -1;
  std::size_t bytes = 0;
  SimTime request_ns = 0.0;  ///< source data ready, message handed to link
  SimTime start_ns = 0.0;    ///< request_ns + latency: first byte on wire
  SimTime end_ns = 0.0;      ///< last byte delivered under PS sharing
  int channel = -1;
  std::vector<RateSegment> segments;  ///< piecewise rate profile
};

/// Fleet-level interconnect: maps (src, dst) pairs onto channels and
/// resolves exact PS completion times for the transfers on each.
class LinkModel {
 public:
  LinkModel(int devices, LinkTopology topology, LinkProps props);

  int device_count() const { return devices_; }
  int channel_count() const { return channel_count_; }
  LinkTopology topology() const { return topology_; }
  const LinkProps& props() const { return props_; }

  /// Channel carrying src -> dst traffic. On kNvlinkRing, src and dst
  /// must be ring neighbours (the ring drivers only ever talk to
  /// neighbours); kPcieHost accepts any distinct pair.
  int channel_for(int src, int dst) const;

  /// Register a transfer whose payload is ready at `request_ns`. Returns
  /// its id. The transfer starts at request_ns + latency and completes
  /// under PS sharing with everything else on its channel.
  std::uint64_t begin(int src, int dst, std::size_t bytes,
                      SimTime request_ns);

  /// Register a transfer whose payload is additionally gated on earlier
  /// transfers: its request time is max(request_floor_ns, end of every
  /// dependency). A dependency id of 0 means "none"; otherwise it must
  /// name a transfer already finalized or registered in the current
  /// batch (finalize_all checks). This is how a collective program
  /// expresses "chunk j's wave k+1 sends the value wave k produced"
  /// without serializing unrelated chunks behind a wave barrier. A
  /// transfer may name several producers: a tree all-gather send covers
  /// a range assembled from its own reduced chunk plus ranges received
  /// in earlier doubling rounds, each a distinct producing transfer.
  std::uint64_t begin_after(int src, int dst, std::size_t bytes,
                            SimTime request_floor_ns, std::uint64_t dep_a,
                            std::uint64_t dep_b = 0);
  std::uint64_t begin_after(int src, int dst, std::size_t bytes,
                            SimTime request_floor_ns,
                            const std::vector<std::uint64_t>& deps);

  /// Resolve every registered transfer exactly: one global event-driven
  /// pass interleaving all channels, releasing dependent transfers the
  /// instant their dependencies complete. No arrivals may be registered
  /// for instants preceding completions already resolved in an earlier
  /// batch on the same channel (the comm drivers keep per-channel floors
  /// across batches).
  void finalize_all();

  /// Completion time of a finalized transfer (retained across
  /// take_completed); CHECK-fails for unknown ids.
  SimTime end_of(std::uint64_t id) const;

  /// Drain finalized transfers, ordered by (end_ns, id).
  std::vector<TransferRecord> take_completed();

 private:
  struct Pending {
    TransferRecord rec;
    double remaining = 0.0;     ///< bytes still to move
    SimTime floor_ns = 0.0;     ///< request floor (before dependencies)
    std::vector<std::uint64_t> deps;  ///< unresolved same-batch deps
    bool released = false;      ///< deps resolved, start_ns known
    bool started = false;       ///< joined its channel's active set
  };

  int devices_ = 0;
  LinkTopology topology_ = LinkTopology::kPcieHost;
  LinkProps props_;
  std::vector<Pending> pending_;  ///< current batch, registration order
  std::vector<TransferRecord> completed_;
  /// End times of every finalized transfer (kept across take_completed
  /// so later batches may depend on earlier ones).
  std::unordered_map<std::uint64_t, SimTime> end_ns_;
  std::uint64_t next_id_ = 1;
  int channel_count_ = 0;
};

}  // namespace gpusim
