#include "gpusim/occupancy.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace gpusim {

int max_blocks_per_sm_single(const DeviceProps& dev, const LaunchConfig& cfg) {
  const std::uint64_t threads = cfg.threads_per_block();
  GLP_REQUIRE(threads > 0, "kernel block must have at least one thread");

  int limit = dev.max_blocks_per_sm;
  limit = std::min<int>(limit, static_cast<int>(dev.max_threads_per_sm / threads));
  const std::size_t smem = cfg.smem_per_block();
  if (smem > 0) {
    if (smem > dev.shared_mem_per_sm) return 0;
    limit = std::min<int>(limit, static_cast<int>(dev.shared_mem_per_sm / smem));
  }
  return std::max(limit, 0);
}

double single_kernel_occupancy(const DeviceProps& dev, const LaunchConfig& cfg) {
  const int blocks = max_blocks_per_sm_single(dev, cfg);
  const double active_threads =
      static_cast<double>(blocks) * static_cast<double>(cfg.threads_per_block());
  const double active_warps = active_threads / dev.warp_size;
  return std::min(1.0, active_warps / dev.max_warps_per_sm());
}

std::vector<ResidencySlot> pack_residency(const DeviceProps& dev,
                                          const std::vector<ResidencyRequest>& reqs) {
  std::vector<ResidencySlot> out;
  pack_residency_into(dev, reqs, out);
  return out;
}

void pack_residency_into(const DeviceProps& dev,
                         const std::vector<ResidencyRequest>& reqs,
                         std::vector<ResidencySlot>& out) {
  out.assign(reqs.size(), ResidencySlot{});

  // Aggregate per-SM budgets; SMs are homogeneous and the packer assumes
  // even spreading, so one budget triple models every SM.
  std::int64_t threads_left = dev.max_threads_per_sm;
  std::int64_t smem_left = static_cast<std::int64_t>(dev.shared_mem_per_sm);
  std::int64_t blocks_left = dev.max_blocks_per_sm;

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const ResidencyRequest& r = reqs[i];
    if (r.blocks_wanted == 0) continue;
    const std::int64_t threads = static_cast<std::int64_t>(r.config.threads_per_block());
    const std::int64_t smem = static_cast<std::int64_t>(r.config.smem_per_block());

    // Even spreading: a kernel with fewer blocks than SMs wants at most one
    // block per SM.
    const std::int64_t want_per_sm = static_cast<std::int64_t>(
        (r.blocks_wanted + dev.sm_count - 1) / dev.sm_count);

    std::int64_t fit = std::min<std::int64_t>(want_per_sm, blocks_left);
    if (threads > 0) fit = std::min(fit, threads_left / threads);
    if (smem > 0) fit = std::min(fit, smem_left / smem);
    fit = std::max<std::int64_t>(fit, 0);

    out[i].blocks_per_sm = static_cast<int>(fit);
    out[i].resident_blocks = std::min<std::uint64_t>(
        r.blocks_wanted, static_cast<std::uint64_t>(fit) * dev.sm_count);

    // Charge the budget with the *average* per-SM footprint so kernels with
    // fewer blocks than SMs do not over-reserve capacity they cannot use.
    const double avg_per_sm =
        static_cast<double>(out[i].resident_blocks) / dev.sm_count;
    threads_left -= static_cast<std::int64_t>(std::ceil(avg_per_sm * threads));
    smem_left -= static_cast<std::int64_t>(std::ceil(avg_per_sm * smem));
    blocks_left -= static_cast<std::int64_t>(std::ceil(avg_per_sm));
    threads_left = std::max<std::int64_t>(threads_left, 0);
    smem_left = std::max<std::int64_t>(smem_left, 0);
    blocks_left = std::max<std::int64_t>(blocks_left, 0);
  }
}

double register_pressure(const DeviceProps& dev,
                         const std::vector<ResidencyRequest>& reqs,
                         const std::vector<ResidencySlot>& slots) {
  GLP_CHECK(reqs.size() == slots.size());
  double regs = 0.0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const double avg_per_sm =
        static_cast<double>(slots[i].resident_blocks) / dev.sm_count;
    regs += avg_per_sm * static_cast<double>(reqs[i].config.threads_per_block()) *
            reqs[i].config.regs_per_thread;
  }
  return regs / static_cast<double>(dev.registers_per_sm);
}

double register_slowdown(double pressure) {
  if (pressure <= 1.0) return 1.0;
  // Spilled accesses hit local memory; model a hyperbolic derating with a
  // floor — registers stay a soft constraint as in the paper (§3.2).
  return std::max(0.25, 1.0 / pressure);
}

}  // namespace gpusim
