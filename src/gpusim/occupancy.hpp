#pragma once
// Occupancy arithmetic shared by the simulator's block packer and the
// GLP4NN kernel analyzer. Implements the residency limits of the paper's
// Eqs. 4–5 and 8: threads per SM (τ_max), shared memory per SM (sm_max)
// and resident blocks per SM (β_max) are *hard* constraints; registers
// are a *soft* constraint (spilling slows execution but does not limit
// residency).

#include <vector>

#include "gpusim/device_props.hpp"
#include "gpusim/types.hpp"

namespace gpusim {

/// Residency demand of one kernel instance during packing.
struct ResidencyRequest {
  LaunchConfig config;
  std::uint64_t blocks_wanted = 0;  ///< blocks still to run (≤ grid size)
};

/// Result of packing one kernel onto an SM population.
struct ResidencySlot {
  int blocks_per_sm = 0;            ///< β_K: blocks co-resident per SM
  std::uint64_t resident_blocks = 0;  ///< total blocks resident device-wide
};

/// Maximum blocks of a *single* kernel that can be co-resident on one SM,
/// considering hard constraints only (Eq. 4, Eq. 5, β_max).
int max_blocks_per_sm_single(const DeviceProps& dev, const LaunchConfig& cfg);

/// Theoretical occupancy (Eq. 1) of running `cfg` alone at full residency:
/// active warps per SM / max warps per SM.
double single_kernel_occupancy(const DeviceProps& dev, const LaunchConfig& cfg);

/// Greedy multi-kernel packer. Requests are served in order (admission
/// order in the engine; the fairness policy lives in the caller). Each
/// request receives as many blocks per SM as both its demand and the
/// remaining per-SM thread/smem/block budgets allow.
///
/// Mirrors the paper's assumption that "thread blocks are assigned evenly
/// among all SMs" and that "blocks from different kernels can be placed on
/// the same SM if there are enough resources".
std::vector<ResidencySlot> pack_residency(const DeviceProps& dev,
                                          const std::vector<ResidencyRequest>& reqs);

/// Allocation-free variant for hot paths: packs into `out` (resized to
/// reqs.size(), prior contents discarded). `pack_residency` is a thin
/// wrapper over this, so both produce bit-identical results.
void pack_residency_into(const DeviceProps& dev,
                         const std::vector<ResidencyRequest>& reqs,
                         std::vector<ResidencySlot>& out);

/// Register pressure of a packing: total registers demanded per SM divided
/// by the register file size. Values > 1 indicate spilling; the engine
/// derates execution speed by `register_slowdown`.
double register_pressure(const DeviceProps& dev,
                         const std::vector<ResidencyRequest>& reqs,
                         const std::vector<ResidencySlot>& slots);

/// Execution-rate derating applied when registers oversubscribe
/// (soft constraint): 1.0 when pressure ≤ 1, smoothly degrading to a
/// floor of 0.25 under extreme spilling.
double register_slowdown(double pressure);

}  // namespace gpusim
