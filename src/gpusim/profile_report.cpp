#include "gpusim/profile_report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/strings.hpp"

namespace gpusim {

std::vector<KernelSummary> summarize_kernels(const Timeline& timeline) {
  std::map<std::string, KernelSummary> by_name;
  for (const KernelRecord& rec : timeline.kernels()) {
    const double us = (rec.end_ns - rec.start_ns) / 1000.0;
    KernelSummary& s = by_name[rec.name];
    if (s.calls == 0) {
      s.name = rec.name;
      s.min_us = us;
      s.max_us = us;
    }
    ++s.calls;
    s.total_us += us;
    s.min_us = std::min(s.min_us, us);
    s.max_us = std::max(s.max_us, us);
  }
  std::vector<KernelSummary> out;
  out.reserve(by_name.size());
  for (auto& [name, summary] : by_name) out.push_back(std::move(summary));
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total_us > b.total_us;
  });
  return out;
}

std::string profile_report(const Timeline& timeline, int top) {
  const auto summaries = summarize_kernels(timeline);
  double grand_total = 0.0;
  for (const auto& s : summaries) grand_total += s.total_us;

  std::ostringstream os;
  os << glp::strformat("%7s %6s %10s %9s %9s %9s  %s\n", "time%", "calls",
                       "total(us)", "avg(us)", "min(us)", "max(us)", "name");
  int rows = 0;
  for (const auto& s : summaries) {
    if (top > 0 && rows++ >= top) break;
    os << glp::strformat("%6.2f%% %6d %10.1f %9.2f %9.2f %9.2f  %s\n",
                         grand_total > 0.0 ? 100.0 * s.total_us / grand_total : 0.0,
                         s.calls, s.total_us, s.avg_us(), s.min_us, s.max_us,
                         s.name.c_str());
  }
  os << glp::strformat("total: %.1f us across %zu kernel names, %zu launches\n",
                       grand_total, summaries.size(),
                       timeline.kernels().size());
  return os.str();
}

}  // namespace gpusim
