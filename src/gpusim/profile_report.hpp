#pragma once
// nvprof-style summary of a recorded timeline: per-kernel-name call
// counts, total/average/min/max durations and time share, sorted by total
// time. The developer-facing view of the same data the GLP4NN resource
// tracker consumes programmatically.

#include <string>
#include <vector>

#include "gpusim/timeline.hpp"

namespace gpusim {

struct KernelSummary {
  std::string name;
  int calls = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
  double avg_us() const { return calls > 0 ? total_us / calls : 0.0; }
};

/// Aggregate kernel records by name, sorted by descending total time.
std::vector<KernelSummary> summarize_kernels(const Timeline& timeline);

/// Render the summary as an nvprof-like text table. `top` limits the row
/// count (0 = all).
std::string profile_report(const Timeline& timeline, int top = 0);

}  // namespace gpusim
