#include "gpusim/reference_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace gpusim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kWorkEpsilon = 1e-6;  // thread-cycles considered "done"
}  // namespace

ReferenceEngine::ReferenceEngine(DeviceProps props)
    : DeviceEngine(std::move(props)) {
  queues_[kDefaultStream];  // the default stream always exists
}

StreamId ReferenceEngine::create_stream(int priority, bool non_blocking) {
  const StreamId id = next_stream_++;
  queues_[id];
  stream_priority_[id] = priority;
  if (non_blocking) non_blocking_streams_.insert(id);
  return id;
}

int ReferenceEngine::stream_priority(StreamId stream) const {
  auto it = stream_priority_.find(stream);
  return it == stream_priority_.end() ? 0 : it->second;
}

void ReferenceEngine::destroy_stream(StreamId stream) {
  GLP_REQUIRE(stream != kDefaultStream, "cannot destroy the default stream");
  auto it = queues_.find(stream);
  GLP_REQUIRE(it != queues_.end(), "destroying unknown stream " << stream);
  synchronize_stream(stream);
  queues_.erase(it);
  stream_priority_.erase(stream);
  non_blocking_streams_.erase(stream);
  last_seq_in_stream_.erase(stream);
}

std::uint64_t ReferenceEngine::launch_kernel(StreamId stream, std::string name,
                                             const LaunchConfig& config,
                                             const KernelCost& cost, WorkFn work) {
  validate_launch(config);
  Op op;
  op.kind = OpKind::kKernel;
  op.stream = stream;
  op.name = std::move(name);
  op.config = config;
  op.cost = cost;
  op.work = std::move(work);
  op.correlation = next_correlation_++;
  const std::uint64_t correlation = op.correlation;
  submit(std::move(op), props_.kernel_launch_overhead_us * kUs);
  ++stats_.kernels_launched;
  return correlation;
}

std::uint64_t ReferenceEngine::memcpy_async(StreamId stream, std::size_t bytes,
                                            bool host_to_device, WorkFn work) {
  Op op;
  op.kind = OpKind::kCopy;
  op.stream = stream;
  op.bytes = bytes;
  op.host_to_device = host_to_device;
  op.work = std::move(work);
  op.correlation = next_correlation_++;
  const std::uint64_t correlation = op.correlation;
  // Async copies cost far less host time than kernel launches.
  submit(std::move(op), 1.0 * kUs);
  ++stats_.copies_issued;
  return correlation;
}

std::uint64_t ReferenceEngine::memcpy_peer(StreamId stream, std::size_t bytes,
                                           int peer_device, SimTime start_ns,
                                           SimTime end_ns, WorkFn work) {
  GLP_REQUIRE(peer_device >= 0, "memcpy_peer needs a peer device index");
  GLP_REQUIRE(end_ns >= start_ns, "memcpy_peer span must be non-negative");
  Op op;
  op.kind = OpKind::kCopy;
  op.stream = stream;
  op.bytes = bytes;
  op.peer = peer_device;
  op.peer_start = start_ns;
  op.peer_end = end_ns;
  op.work = std::move(work);
  op.correlation = next_correlation_++;
  const std::uint64_t correlation = op.correlation;
  // Zero host cost: peer copies are issued by the fleet's communication
  // driver (a modelled dedicated thread), not the compute dispatch thread.
  submit(std::move(op), 0.0);
  ++stats_.copies_issued;
  return correlation;
}

EventId ReferenceEngine::record_event(StreamId stream) {
  Op op;
  op.kind = OpKind::kEventRecord;
  op.stream = stream;
  op.event = next_event_++;
  const EventId id = op.event;
  events_pending_.insert(id);
  submit(std::move(op), 0.3 * kUs);
  return id;
}

EventId ReferenceEngine::record_event_at(StreamId stream, SimTime issue_ns) {
  GLP_REQUIRE(issue_ns >= 0.0, "record_event_at needs a non-negative time");
  Op op;
  op.kind = OpKind::kEventRecord;
  op.stream = stream;
  op.event = next_event_++;
  op.issue_at = issue_ns;
  const EventId id = op.event;
  events_pending_.insert(id);
  // Zero host cost: issued by the fleet's communication driver, like
  // memcpy_peer.
  submit(std::move(op), 0.0);
  return id;
}

void ReferenceEngine::wait_event(StreamId stream, EventId event) {
  GLP_REQUIRE(event_times_.count(event) != 0 || events_pending_.count(event) != 0,
              "waiting on unknown event " << event);
  Op op;
  op.kind = OpKind::kWaitEvent;
  op.stream = stream;
  op.event = event;
  submit(std::move(op), 0.3 * kUs);
}

void ReferenceEngine::host_callback(StreamId stream, WorkFn fn) {
  Op op;
  op.kind = OpKind::kHostFn;
  op.stream = stream;
  op.work = std::move(fn);
  submit(std::move(op), 0.3 * kUs);
}

void ReferenceEngine::submit(Op op, SimTime host_cost_ns) {
  auto it = queues_.find(op.stream);
  GLP_REQUIRE(it != queues_.end(), "submission to unknown stream " << op.stream);
  op.seq = next_seq_++;
  op.release = host_time_;
  op.tenant = current_tenant_;
  op.non_blocking = non_blocking_streams_.count(op.stream) != 0;
  host_time_ += host_cost_ns;
  if (op.kind == OpKind::kCopy && op.peer >= 0) {
    // Peer copies release at the link-granted start time: the fleet comm
    // driver stands in for a dedicated communication thread, so the
    // compute dispatch clock must not gate (or be charged for) them.
    op.release = op.peer_start;
  }
  if (op.issue_at >= 0.0) {
    // Same dedicated-thread semantics for comm-driver event records.
    op.release = op.issue_at;
  }
  // In-stream FIFO: each op waits for the completion of its predecessor
  // in the same stream (ops are admitted for execution the moment they
  // reach the queue head, so this dependency is what serialises a
  // stream's kernels on the device).
  op.stream_dep = last_seq_in_stream_[op.stream];
  last_seq_in_stream_[op.stream] = op.seq;
  if (op.stream == kDefaultStream) {
    // Legacy default-stream semantics: acts as a barrier against every
    // other stream, and later work in any stream waits for it.
    op.barrier = true;
    last_default_seq_ = op.seq;
    op.default_dep = 0;
  } else {
    // Non-blocking streams opt out of legacy default-stream ordering in
    // both directions (cudaStreamNonBlocking).
    op.default_dep = op.non_blocking ? 0 : last_default_seq_;
  }
  incomplete_.insert(op.seq);
  if (!op.non_blocking) blocking_incomplete_.insert(op.seq);
  it->second.push_back(std::move(op));
}

bool ReferenceEngine::op_ready(const Op& op) const {
  if (op.release > now_) return false;
  if (op.barrier) {
    // Ready only when every earlier-submitted *blocking* op has completed
    // (non-blocking streams are exempt from the legacy barrier).
    GLP_CHECK(!blocking_incomplete_.empty());
    if (*blocking_incomplete_.begin() != op.seq) return false;
  } else if (op.default_dep != 0 && incomplete_.count(op.default_dep) != 0) {
    return false;
  }
  if (op.stream_dep != 0 && incomplete_.count(op.stream_dep) != 0) return false;
  if (op.kind == OpKind::kWaitEvent) {
    return event_times_.count(op.event) != 0;
  }
  if (op.kind == OpKind::kKernel) {
    return static_cast<int>(resident_.size()) < props_.max_concurrent_kernels;
  }
  return true;
}

void ReferenceEngine::complete_op_bookkeeping(std::uint64_t seq,
                                              bool non_blocking) {
  const auto erased = incomplete_.erase(seq);
  GLP_CHECK(erased == 1);
  if (!non_blocking) {
    const auto berased = blocking_incomplete_.erase(seq);
    GLP_CHECK(berased == 1);
  }
}

bool ReferenceEngine::start_ready_ops() {
  bool progress = false;
  bool kernel_admitted = false;
  // Visit streams by (priority desc, id): when the concurrency degree is
  // saturated, high-priority streams claim the free slots first.
  std::vector<std::pair<StreamId, std::deque<Op>*>> order;
  order.reserve(queues_.size());
  for (auto& [stream, queue] : queues_) order.emplace_back(stream, &queue);
  std::stable_sort(order.begin(), order.end(),
                   [this](const auto& a, const auto& b) {
                     return stream_priority(a.first) > stream_priority(b.first);
                   });
  for (auto& [stream, queue_ptr] : order) {
    std::deque<Op>& queue = *queue_ptr;
    while (!queue.empty()) {
      Op& head = queue.front();
      if (!op_ready(head)) break;
      switch (head.kind) {
        case OpKind::kKernel: {
          ActiveKernel active;
          active.op = std::move(head);
          active.admit_ns = now_;
          active.latency_left = props_.kernel_start_latency_us * kUs;
          active.work_left = work_thread_cycles(active.op.config, active.op.cost);
          active.work_per_block =
              active.work_left / static_cast<double>(active.op.config.total_blocks());
          resident_.push_back(std::move(active));
          kernel_admitted = true;
          queue.pop_front();
          break;
        }
        case OpKind::kCopy: {
          ActiveCopy copy;
          copy.op = std::move(head);
          if (copy.op.peer >= 0) {
            // Cross-device transfer: the span was fixed by the link model.
            // The end is clamped to `now` so an op that becomes runnable
            // after its link span (stream backlog) completes immediately
            // instead of handing advance_to a past-time event.
            copy.start_ns = copy.op.peer_start;
            copy.end_ns = std::max(copy.op.peer_end, now_);
          } else {
            const int dir = copy.op.host_to_device ? 0 : 1;
            copy.start_ns = std::max(now_, copy_engine_free_[dir]);
            copy.end_ns = copy.start_ns + static_cast<double>(copy.op.bytes) /
                                              props_.pcie_bandwidth_gbs;
            copy_engine_free_[dir] = copy.end_ns;
          }
          copies_.push_back(std::move(copy));
          queue.pop_front();
          break;
        }
        case OpKind::kEventRecord: {
          event_times_[head.event] = now_;
          events_pending_.erase(head.event);
          complete_op_bookkeeping(head.seq, head.non_blocking);
          queue.pop_front();
          break;
        }
        case OpKind::kWaitEvent: {
          complete_op_bookkeeping(head.seq, head.non_blocking);
          queue.pop_front();
          break;
        }
        case OpKind::kHostFn: {
          if (head.work) head.work();
          complete_op_bookkeeping(head.seq, head.non_blocking);
          queue.pop_front();
          break;
        }
      }
      progress = true;
    }
  }
  if (kernel_admitted) recompute_rates();
  return progress;
}

void ReferenceEngine::recompute_rates() {
  if (resident_.empty()) return;

  std::vector<ResidencyRequest> reqs;
  reqs.reserve(resident_.size());
  for (const ActiveKernel& k : resident_) {
    ResidencyRequest r;
    r.config = k.op.config;
    const double blocks_left =
        k.work_per_block > 0.0 ? k.work_left / k.work_per_block : 1.0;
    r.blocks_wanted = static_cast<std::uint64_t>(std::max(1.0, std::ceil(blocks_left)));
    reqs.push_back(r);
  }
  const std::vector<ResidencySlot> slots = pack_residency(props_, reqs);

  double slowdown = 1.0;
  if (register_penalty_) {
    slowdown = register_slowdown(register_pressure(props_, reqs, slots));
  }

  // Lane allocation: each resident block can use at most min(block
  // threads rounded up to warps, cores per SM) lanes; when the aggregate
  // demand exceeds the device's lanes, everyone scales proportionally.
  double total_demand = 0.0;
  std::vector<double> demand(resident_.size(), 0.0);
  for (std::size_t i = 0; i < resident_.size(); ++i) {
    const auto threads = resident_[i].op.config.threads_per_block();
    const double warp_threads =
        static_cast<double>((threads + props_.warp_size - 1) / props_.warp_size) *
        props_.warp_size;
    const double per_block = std::min(warp_threads, static_cast<double>(props_.cores_per_sm));
    demand[i] = static_cast<double>(slots[i].resident_blocks) * per_block;
    total_demand += demand[i];
  }
  const double capacity = static_cast<double>(props_.total_lanes());
  const double scale = (total_demand > capacity) ? capacity / total_demand : 1.0;

  for (std::size_t i = 0; i < resident_.size(); ++i) {
    resident_[i].lanes = demand[i] * scale;
    resident_[i].rate = resident_[i].lanes * props_.clock_ghz * slowdown;
  }
}

SimTime ReferenceEngine::next_event_time() const {
  SimTime t = kInf;
  for (const ActiveKernel& k : resident_) {
    if (k.rate > 0.0) {
      t = std::min(t, now_ + k.latency_left + k.work_left / k.rate);
    } else if (k.latency_left > 0.0) {
      t = std::min(t, now_ + k.latency_left);
    }
  }
  for (const ActiveCopy& c : copies_) t = std::min(t, c.end_ns);
  for (const auto& [stream, queue] : queues_) {
    if (!queue.empty() && queue.front().release > now_) {
      t = std::min(t, queue.front().release);
    }
  }
  return t;
}

void ReferenceEngine::advance_to(SimTime t) {
  GLP_CHECK(t >= now_);
  const SimTime dt = t - now_;
  if (dt > 0.0) {
    double busy_lanes = 0.0;
    for (ActiveKernel& k : resident_) {
      SimTime run_dt = dt;
      if (k.latency_left > 0.0) {
        const SimTime consumed = std::min(k.latency_left, run_dt);
        k.latency_left -= consumed;
        run_dt -= consumed;
      }
      if (run_dt > 0.0 && k.rate > 0.0) {
        k.work_left = std::max(0.0, k.work_left - k.rate * run_dt);
        busy_lanes += k.lanes;  // approximation: latency phase excluded
      }
    }
    stats_.busy_lane_ns += busy_lanes * dt;
    if (!resident_.empty()) stats_.active_ns += dt;
    stats_.sim_span_ns += dt;
    now_ = t;
  }

  // Clamp latency residues too small to be represented as a time advance
  // (below ~1 ulp of the clock): their "latency end" event would round to
  // `now` and the loop could never consume them.
  for (ActiveKernel& k : resident_) {
    if (k.latency_left > 0.0 && k.latency_left <= now_ * 1e-12 + 1e-9) {
      k.latency_left = 0.0;
    }
  }

  // Complete finished kernels in deterministic (admission seq) order.
  // The completion threshold scales with the clock: residual work smaller
  // than what the kernel processes in one representable time step (~ulp
  // of `now`) can never be burnt down by a further advance, so it counts
  // as done. Without this the loop would spin on a femtosecond residue.
  bool any_finished = true;
  while (any_finished) {
    any_finished = false;
    for (std::size_t i = 0; i < resident_.size(); ++i) {
      const ActiveKernel& k = resident_[i];
      const double epsilon = kWorkEpsilon + k.rate * (now_ * 1e-9 + 1e-6);
      if (k.latency_left <= 0.0 && k.work_left <= epsilon) {
        finish_kernel(i);
        any_finished = true;
        break;
      }
    }
  }

  for (std::size_t i = 0; i < copies_.size();) {
    if (copies_[i].end_ns <= now_ + 1e-9) {
      ActiveCopy done = std::move(copies_[i]);
      copies_.erase(copies_.begin() + static_cast<std::ptrdiff_t>(i));
      if (done.op.work) done.op.work();
      CopyRecord rec;
      rec.correlation_id = done.op.correlation;
      rec.stream = done.op.stream;
      rec.bytes = done.op.bytes;
      rec.host_to_device = done.op.host_to_device;
      rec.start_ns = done.start_ns;
      rec.end_ns = done.end_ns;
      rec.tenant = done.op.tenant;
      rec.peer = done.op.peer;
      timeline_.add_copy(rec);
      if (copy_cb_) copy_cb_(rec);
      complete_op_bookkeeping(done.op.seq, done.op.non_blocking);
    } else {
      ++i;
    }
  }
}

void ReferenceEngine::finish_kernel(std::size_t idx) {
  ActiveKernel done = std::move(resident_[idx]);
  resident_.erase(resident_.begin() + static_cast<std::ptrdiff_t>(idx));

  if (done.op.work) done.op.work();

  KernelRecord rec;
  rec.correlation_id = done.op.correlation;
  rec.name = done.op.name;
  rec.stream = done.op.stream;
  rec.config = done.op.config;
  rec.submit_ns = done.op.release;
  rec.start_ns = done.admit_ns;
  rec.end_ns = now_;
  rec.tenant = done.op.tenant;
  timeline_.add_kernel(rec);
  if (kernel_cb_) kernel_cb_(rec);

  complete_op_bookkeeping(done.op.seq, done.op.non_blocking);
  recompute_rates();
}

void ReferenceEngine::run_until(const std::function<bool()>& pred) {
  // Stall guard: if the loop spins without the clock moving or work
  // completing, something violated an engine invariant — fail loudly with
  // state instead of hanging.
  int spins = 0;
  SimTime last_now = now_;
  std::size_t last_incomplete = incomplete_.size();

  while (!pred()) {
    if (start_ready_ops()) continue;
    const SimTime t = next_event_time();
    if (t == kInf) {
      // Nothing can ever make progress: either the predicate references
      // work that was never submitted, or there is a dependency cycle.
      throw glp::InternalError("gpusim: simulation stalled with no runnable work");
    }
    advance_to(t);

    if (now_ > last_now || incomplete_.size() != last_incomplete) {
      spins = 0;
      last_now = now_;
      last_incomplete = incomplete_.size();
    } else if (++spins > 100000) {
      std::string state = "gpusim: event loop is spinning; now=" +
                          std::to_string(now_) +
                          " next_event=" + std::to_string(next_event_time()) +
                          " resident=" + std::to_string(resident_.size()) +
                          " copies=" + std::to_string(copies_.size());
      for (const auto& [stream, queue] : queues_) {
        if (queue.empty()) continue;
        const Op& head = queue.front();
        state += " q" + std::to_string(stream) + "[head seq=" +
                 std::to_string(head.seq) +
                 " kind=" + std::to_string(static_cast<int>(head.kind)) +
                 " rel=" + std::to_string(head.release) +
                 " sdep=" + std::to_string(head.stream_dep) +
                 " ddep=" + std::to_string(head.default_dep) + "]";
      }
      double min_eta = -1;
      for (const ActiveKernel& k : resident_) {
        if (k.rate > 0.0) {
          const double eta = now_ + k.latency_left + k.work_left / k.rate;
          if (min_eta < 0 || eta < min_eta) min_eta = eta;
        }
      }
      state += " min_kernel_eta=" + std::to_string(min_eta);
      throw glp::InternalError(state);
    }
  }
  host_time_ = std::max(host_time_, now_);
}

void ReferenceEngine::advance_device_to(SimTime t) {
  // Lookahead for the serving event loop: drive the event loop until every
  // device-side event at or before `t` has been processed. Intentionally
  // leaves the host clock untouched (restored below) — peeking at the
  // device is not a synchronisation point.
  const SimTime saved_host = host_time_;
  int spins = 0;
  for (;;) {
    if (start_ready_ops()) {
      spins = 0;
      continue;
    }
    const SimTime next = next_event_time();
    if (next > t) break;
    GLP_CHECK(next >= now_);
    if (next > now_) spins = 0;
    else if (++spins > 100000) {
      throw glp::InternalError("gpusim: lookahead event loop is spinning");
    }
    advance_to(next);
  }
  // Burn partial work down to exactly `t` so a later lookahead (or sync)
  // resumes from a consistent fluid state.
  if (t > now_ && (!resident_.empty() || !copies_.empty())) advance_to(t);
  host_time_ = saved_host;
}

SimTime ReferenceEngine::peek_next_event() {
  int spins = 0;
  while (start_ready_ops()) {
    if (++spins > 100000) {
      throw glp::InternalError("gpusim: peek_next_event is spinning");
    }
  }
  return next_event_time();
}

void ReferenceEngine::synchronize_stream(StreamId stream) {
  auto it = queues_.find(stream);
  GLP_REQUIRE(it != queues_.end(), "synchronize on unknown stream " << stream);
  // The queue drains when ops *start*; resident/active work from this
  // stream must also have completed. Track via a sentinel event.
  const EventId ev = record_event(stream);
  synchronize_event(ev);
}

void ReferenceEngine::synchronize_event(EventId event) {
  GLP_REQUIRE(event_times_.count(event) != 0 || events_pending_.count(event) != 0,
              "synchronize on unknown event " << event);
  run_until([this, event] { return event_times_.count(event) != 0; });
}

void ReferenceEngine::synchronize() {
  run_until([this] { return incomplete_.empty(); });
}

bool ReferenceEngine::event_complete(EventId event) const {
  return event_times_.count(event) != 0;
}

SimTime ReferenceEngine::event_time(EventId event) const {
  auto it = event_times_.find(event);
  GLP_REQUIRE(it != event_times_.end(),
              "event " << event << " has not completed");
  return it->second;
}

bool ReferenceEngine::stream_idle(StreamId stream) const {
  auto it = queues_.find(stream);
  GLP_REQUIRE(it != queues_.end(), "query on unknown stream " << stream);
  if (!it->second.empty()) return false;
  for (const ActiveKernel& k : resident_) {
    if (k.op.stream == stream) return false;
  }
  for (const ActiveCopy& c : copies_) {
    if (c.op.stream == stream) return false;
  }
  return true;
}

}  // namespace gpusim
