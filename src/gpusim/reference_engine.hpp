#pragma once
// The original SimDevice event loop, preserved verbatim as the golden
// reference for the optimized engine. Semantics are the contract; this
// implementation *is* the spec. The optimized SimDevice must reproduce
// its simulated timeline event-for-event and bit-for-bit (identical
// kernel/copy records, identical host-functor execution order, identical
// floating-point arithmetic), which the equivalence suite
// (tests/engine_equivalence_test.cpp, glp4nn_fuzz --engine-compare)
// asserts. Deliberately unoptimized: per-drain stable_sort, ordered
// std::map/std::set bookkeeping, full repack on every admission — do not
// "improve" this file; improve SimDevice and prove equivalence instead.

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gpusim/engine.hpp"

namespace gpusim {

class ReferenceEngine final : public DeviceEngine {
 public:
  explicit ReferenceEngine(DeviceProps props);

  StreamId create_stream(int priority = 0, bool non_blocking = false) override;
  int stream_priority(StreamId stream) const override;
  void destroy_stream(StreamId stream) override;
  int stream_count() const override { return static_cast<int>(queues_.size()); }

  std::uint64_t launch_kernel(StreamId stream, std::string name,
                              const LaunchConfig& config, const KernelCost& cost,
                              WorkFn work) override;
  std::uint64_t memcpy_async(StreamId stream, std::size_t bytes,
                             bool host_to_device, WorkFn work = {}) override;
  std::uint64_t memcpy_peer(StreamId stream, std::size_t bytes, int peer_device,
                            SimTime start_ns, SimTime end_ns,
                            WorkFn work = {}) override;
  EventId record_event(StreamId stream) override;
  EventId record_event_at(StreamId stream, SimTime issue_ns) override;
  void wait_event(StreamId stream, EventId event) override;
  void host_callback(StreamId stream, WorkFn fn) override;

  void synchronize_stream(StreamId stream) override;
  void synchronize_event(EventId event) override;
  void synchronize() override;
  bool event_complete(EventId event) const override;
  SimTime event_time(EventId event) const override;
  bool stream_idle(StreamId stream) const override;
  void advance_device_to(SimTime t) override;
  SimTime peek_next_event() override;

 private:
  enum class OpKind : std::uint8_t {
    kKernel,
    kCopy,
    kEventRecord,
    kWaitEvent,
    kHostFn
  };

  struct Op {
    OpKind kind = OpKind::kKernel;
    std::uint64_t seq = 0;
    StreamId stream = kDefaultStream;
    SimTime release = 0.0;
    std::uint64_t default_dep = 0;
    std::uint64_t stream_dep = 0;
    bool barrier = false;
    bool non_blocking = false;
    int tenant = -1;

    // kKernel
    std::string name;
    LaunchConfig config;
    KernelCost cost;
    WorkFn work;
    std::uint64_t correlation = 0;

    // kCopy
    std::size_t bytes = 0;
    bool host_to_device = true;
    int peer = -1;             ///< peer device of a cross-device copy
    SimTime peer_start = 0.0;  ///< link-granted start (peer copies only)
    SimTime peer_end = 0.0;    ///< link-computed completion (peer copies only)

    // kEventRecord / kWaitEvent
    EventId event = 0;
    SimTime issue_at = -1.0;   ///< comm-driver release override (< 0: host)
  };

  struct ActiveKernel {
    Op op;
    SimTime admit_ns = 0.0;
    SimTime latency_left = 0.0;
    double work_left = 0.0;
    double work_per_block = 0.0;
    double rate = 0.0;
    double lanes = 0.0;
  };

  struct ActiveCopy {
    Op op;
    SimTime start_ns = 0.0;
    SimTime end_ns = 0.0;
  };

  void submit(Op op, SimTime host_cost_ns);
  void run_until(const std::function<bool()>& pred);
  bool start_ready_ops();
  bool op_ready(const Op& op) const;
  void complete_op_bookkeeping(std::uint64_t seq, bool non_blocking);
  void recompute_rates();
  SimTime next_event_time() const;
  void advance_to(SimTime t);
  void finish_kernel(std::size_t idx);

  std::map<StreamId, std::deque<Op>> queues_;
  std::map<StreamId, int> stream_priority_;
  std::set<StreamId> non_blocking_streams_;
  std::map<StreamId, std::uint64_t> last_seq_in_stream_;
  std::set<std::uint64_t> incomplete_;
  /// Incomplete ops on *blocking* streams only — the set the legacy
  /// default-stream barrier consults (non-blocking streams are exempt).
  std::set<std::uint64_t> blocking_incomplete_;
  std::map<EventId, SimTime> event_times_;
  std::set<EventId> events_pending_;
  std::vector<ActiveKernel> resident_;
  std::vector<ActiveCopy> copies_;
};

}  // namespace gpusim
