#pragma once
// Execution timeline recorder. Feeds the Fig. 3 timeline bench and the
// simcupti activity API. Disabled by default to keep steady-state
// training allocation-free on the hot path.

#include <vector>

#include "gpusim/types.hpp"

namespace gpusim {

class Timeline {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void add_kernel(const KernelRecord& rec) {
    if (enabled_) kernels_.push_back(rec);
  }
  void add_copy(const CopyRecord& rec) {
    if (enabled_) copies_.push_back(rec);
  }

  const std::vector<KernelRecord>& kernels() const { return kernels_; }
  const std::vector<CopyRecord>& copies() const { return copies_; }

  std::size_t size() const { return kernels_.size() + copies_.size(); }
  bool empty() const { return kernels_.empty() && copies_.empty(); }

  void clear() {
    kernels_.clear();
    copies_.clear();
  }

 private:
  bool enabled_ = false;
  std::vector<KernelRecord> kernels_;
  std::vector<CopyRecord> copies_;
};

}  // namespace gpusim
