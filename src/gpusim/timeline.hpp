#pragma once
// Execution timeline recorder. Feeds the Fig. 3 timeline bench and the
// simcupti activity API. Disabled by default to keep steady-state
// training allocation-free on the hot path.
//
// Long serving runs with tracing enabled would otherwise grow without
// bound; set_max_records(n) turns each record class into a ring that
// keeps the most recent n records and counts what it overwrote
// (dropped_records). trace_export surfaces the drop count so a truncated
// trace is never mistaken for a complete one.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gpusim/types.hpp"

namespace gpusim {

class Timeline {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Cap each record class (kernels, copies) at `cap` records, keeping
  /// the most recent and counting evictions. 0 (default) = unbounded.
  /// Shrinking below the current population evicts the oldest records.
  void set_max_records(std::size_t cap) {
    max_records_ = cap;
    trim(kernels_, kernels_head_, dropped_kernels_);
    trim(copies_, copies_head_, dropped_copies_);
  }
  std::size_t max_records() const { return max_records_; }

  void add_kernel(const KernelRecord& rec) {
    if (enabled_) add(kernels_, kernels_head_, dropped_kernels_, rec);
  }
  void add_copy(const CopyRecord& rec) {
    if (enabled_) add(copies_, copies_head_, dropped_copies_, rec);
  }

  /// Records in chronological order (oldest retained first).
  const std::vector<KernelRecord>& kernels() const {
    normalize(kernels_, kernels_head_);
    return kernels_;
  }
  const std::vector<CopyRecord>& copies() const {
    normalize(copies_, copies_head_);
    return copies_;
  }

  /// Records evicted by the ring since construction (or the last clear).
  std::uint64_t dropped_kernels() const { return dropped_kernels_; }
  std::uint64_t dropped_copies() const { return dropped_copies_; }
  std::uint64_t dropped_records() const {
    return dropped_kernels_ + dropped_copies_;
  }

  std::size_t size() const { return kernels_.size() + copies_.size(); }
  bool empty() const { return kernels_.empty() && copies_.empty(); }

  void clear() {
    kernels_.clear();
    copies_.clear();
    kernels_head_ = 0;
    copies_head_ = 0;
    dropped_kernels_ = 0;
    dropped_copies_ = 0;
  }

 private:
  template <typename Rec>
  void add(std::vector<Rec>& recs, std::size_t& head, std::uint64_t& dropped,
           const Rec& rec) {
    if (max_records_ == 0 || recs.size() < max_records_) {
      recs.push_back(rec);
      return;
    }
    // Ring is full: overwrite the oldest slot. `head` is the oldest
    // record's index (0 while still growing).
    recs[head] = rec;
    head = (head + 1) % recs.size();
    ++dropped;
  }

  /// Rotate a wrapped ring back to index order so accessors can hand out
  /// the vector directly. Lazy: only runs when someone reads after wrap.
  template <typename Rec>
  static void normalize(std::vector<Rec>& recs, std::size_t& head) {
    if (head == 0) return;
    std::rotate(recs.begin(),
                recs.begin() + static_cast<std::ptrdiff_t>(head), recs.end());
    head = 0;
  }

  template <typename Rec>
  void trim(std::vector<Rec>& recs, std::size_t& head, std::uint64_t& dropped) {
    normalize(recs, head);
    if (max_records_ != 0 && recs.size() > max_records_) {
      const std::size_t excess = recs.size() - max_records_;
      recs.erase(recs.begin(), recs.begin() + static_cast<std::ptrdiff_t>(excess));
      dropped += excess;
    }
  }

  bool enabled_ = false;
  std::size_t max_records_ = 0;  ///< 0 = unbounded
  // Mutable so the chronological accessors can lazily un-rotate the ring.
  mutable std::vector<KernelRecord> kernels_;
  mutable std::vector<CopyRecord> copies_;
  mutable std::size_t kernels_head_ = 0;
  mutable std::size_t copies_head_ = 0;
  std::uint64_t dropped_kernels_ = 0;
  std::uint64_t dropped_copies_ = 0;
};

}  // namespace gpusim
