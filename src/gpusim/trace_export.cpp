#include "gpusim/trace_export.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace gpusim {

namespace {
// Minimal JSON string escaping (kernel names are identifiers, but stay safe).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

namespace {

/// Append one timeline's records as pid `pid`. Shared by the
/// single-device and fleet exports so both stay span-for-span identical.
void emit_timeline(std::ostringstream& os, bool& first,
                   const Timeline& timeline, int pid) {
  auto emit = [&](const std::string& name, const std::string& category,
                  StreamId stream, SimTime start_ns, SimTime end_ns,
                  const std::string& args) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << escape(name) << "\",\"cat\":\"" << category
       << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << stream
       << ",\"ts\":" << start_ns / 1000.0
       << ",\"dur\":" << (end_ns - start_ns) / 1000.0;
    if (!args.empty()) os << ",\"args\":{" << args << "}";
    os << "}";
  };

  // A bounded timeline that wrapped is a *window*, not the full run; mark
  // the export so truncated traces are never mistaken for complete ones.
  if (timeline.dropped_records() > 0) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"trace_truncated\",\"cat\":\"metadata\",\"ph\":\"i\","
       << "\"s\":\"g\",\"pid\":" << pid << ",\"tid\":0,\"ts\":0,\"args\":{"
       << "\"dropped_kernels\":" << timeline.dropped_kernels()
       << ",\"dropped_copies\":" << timeline.dropped_copies()
       << ",\"max_records\":" << timeline.max_records() << "}}";
  }

  for (const KernelRecord& k : timeline.kernels()) {
    std::ostringstream args;
    args << "\"grid\":\"" << k.config.grid.x << "x" << k.config.grid.y << "x"
         << k.config.grid.z << "\",\"block\":\"" << k.config.block.x << "x"
         << k.config.block.y << "x" << k.config.block.z
         << "\",\"regs\":" << k.config.regs_per_thread
         << ",\"smem\":" << k.config.smem_per_block()
         << ",\"correlation\":" << k.correlation_id;
    if (k.tenant >= 0) args << ",\"tenant\":" << k.tenant;
    emit(k.name, "kernel", k.stream, k.start_ns, k.end_ns, args.str());
  }
  for (const CopyRecord& c : timeline.copies()) {
    std::ostringstream args;
    std::string name, cat;
    if (c.peer >= 0) {
      args << "\"bytes\":" << c.bytes << ",\"peer\":" << c.peer;
      name = "memcpy peer->" + std::to_string(c.peer);
      cat = "memcpy_peer";
    } else {
      args << "\"bytes\":" << c.bytes << ",\"dir\":\""
           << (c.host_to_device ? "H2D" : "D2H") << "\"";
      name = c.host_to_device ? "memcpy H2D" : "memcpy D2H";
      cat = "memcpy";
    }
    if (c.tenant >= 0) args << ",\"tenant\":" << c.tenant;
    emit(name, cat, c.stream, c.start_ns, c.end_ns, args.str());
  }
}

}  // namespace

std::string to_chrome_trace(const Timeline& timeline) {
  return to_chrome_trace(timeline, {});
}

std::string to_chrome_trace(const Timeline& timeline,
                            const std::vector<TraceMarker>& markers) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  emit_timeline(os, first, timeline, /*pid=*/0);
  for (const TraceMarker& m : markers) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << escape(m.name)
       << "\",\"cat\":\"marker\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":"
       << m.stream << ",\"ts\":" << m.ts_ns / 1000.0 << "}";
  }
  os << "\n]\n";
  return os.str();
}

std::string to_chrome_trace_fleet(const std::vector<const Timeline*>& timelines,
                                  const std::vector<std::string>& names) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (std::size_t d = 0; d < timelines.size(); ++d) {
    const std::string label = d < names.size()
                                  ? names[d]
                                  : "device " + std::to_string(d);
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << d
       << ",\"tid\":0,\"args\":{\"name\":\"" << escape(label) << "\"}}";
    os << ",\n  {\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << d
       << ",\"tid\":0,\"args\":{\"sort_index\":" << d << "}}";
    GLP_REQUIRE(timelines[d] != nullptr, "fleet trace: null timeline " << d);
    emit_timeline(os, first, *timelines[d], static_cast<int>(d));
  }
  os << "\n]\n";
  return os.str();
}

void write_chrome_trace(const Timeline& timeline, const std::string& path) {
  write_chrome_trace(timeline, {}, path);
}

void write_chrome_trace(const Timeline& timeline,
                        const std::vector<TraceMarker>& markers,
                        const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  GLP_REQUIRE(file.good(), "cannot open trace file '" << path << "'");
  file << to_chrome_trace(timeline, markers);
  GLP_REQUIRE(file.good(), "writing trace file '" << path << "' failed");
}

void write_chrome_trace_fleet(const std::vector<const Timeline*>& timelines,
                              const std::string& path,
                              const std::vector<std::string>& names) {
  std::ofstream file(path, std::ios::trunc);
  GLP_REQUIRE(file.good(), "cannot open trace file '" << path << "'");
  file << to_chrome_trace_fleet(timelines, names);
  GLP_REQUIRE(file.good(), "writing trace file '" << path << "' failed");
}

}  // namespace gpusim
