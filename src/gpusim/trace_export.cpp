#include "gpusim/trace_export.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace gpusim {

namespace {
// Minimal JSON string escaping (kernel names are identifiers, but stay safe).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string to_chrome_trace(const Timeline& timeline) {
  return to_chrome_trace(timeline, {});
}

std::string to_chrome_trace(const Timeline& timeline,
                            const std::vector<TraceMarker>& markers) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  auto emit = [&](const std::string& name, const std::string& category,
                  StreamId stream, SimTime start_ns, SimTime end_ns,
                  const std::string& args) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << escape(name) << "\",\"cat\":\"" << category
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << stream
       << ",\"ts\":" << start_ns / 1000.0
       << ",\"dur\":" << (end_ns - start_ns) / 1000.0;
    if (!args.empty()) os << ",\"args\":{" << args << "}";
    os << "}";
  };

  // A bounded timeline that wrapped is a *window*, not the full run; mark
  // the export so truncated traces are never mistaken for complete ones.
  if (timeline.dropped_records() > 0) {
    first = false;
    os << "\n  {\"name\":\"trace_truncated\",\"cat\":\"metadata\",\"ph\":\"i\","
       << "\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":0,\"args\":{"
       << "\"dropped_kernels\":" << timeline.dropped_kernels()
       << ",\"dropped_copies\":" << timeline.dropped_copies()
       << ",\"max_records\":" << timeline.max_records() << "}}";
  }

  for (const KernelRecord& k : timeline.kernels()) {
    std::ostringstream args;
    args << "\"grid\":\"" << k.config.grid.x << "x" << k.config.grid.y << "x"
         << k.config.grid.z << "\",\"block\":\"" << k.config.block.x << "x"
         << k.config.block.y << "x" << k.config.block.z
         << "\",\"regs\":" << k.config.regs_per_thread
         << ",\"smem\":" << k.config.smem_per_block()
         << ",\"correlation\":" << k.correlation_id;
    if (k.tenant >= 0) args << ",\"tenant\":" << k.tenant;
    emit(k.name, "kernel", k.stream, k.start_ns, k.end_ns, args.str());
  }
  for (const CopyRecord& c : timeline.copies()) {
    std::ostringstream args;
    args << "\"bytes\":" << c.bytes << ",\"dir\":\""
         << (c.host_to_device ? "H2D" : "D2H") << "\"";
    if (c.tenant >= 0) args << ",\"tenant\":" << c.tenant;
    emit(c.host_to_device ? "memcpy H2D" : "memcpy D2H", "memcpy", c.stream,
         c.start_ns, c.end_ns, args.str());
  }
  for (const TraceMarker& m : markers) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << escape(m.name)
       << "\",\"cat\":\"marker\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":"
       << m.stream << ",\"ts\":" << m.ts_ns / 1000.0 << "}";
  }
  os << "\n]\n";
  return os.str();
}

void write_chrome_trace(const Timeline& timeline, const std::string& path) {
  write_chrome_trace(timeline, {}, path);
}

void write_chrome_trace(const Timeline& timeline,
                        const std::vector<TraceMarker>& markers,
                        const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  GLP_REQUIRE(file.good(), "cannot open trace file '" << path << "'");
  file << to_chrome_trace(timeline, markers);
  GLP_REQUIRE(file.good(), "writing trace file '" << path << "' failed");
}

}  // namespace gpusim
