#pragma once
// Chrome-trace (chrome://tracing / Perfetto) export of a simulated
// timeline: every kernel and copy becomes a complete event ("ph":"X") on
// its stream's row. This is the tooling counterpart of the paper's Fig. 3
// profiler screenshots.

#include <string>
#include <vector>

#include "gpusim/timeline.hpp"

namespace gpusim {

/// An annotation pinned to a point of the trace — rendered as a Chrome
/// instant event ("ph":"i") on the stream's row. The race checker emits
/// one per ordering violation so failures are visible in the viewer.
struct TraceMarker {
  std::string name;
  SimTime ts_ns = 0.0;
  StreamId stream = kDefaultStream;
};

/// Serialise the timeline to Chrome trace JSON (trace-event format,
/// JSON-array flavour). Timestamps are microseconds as the format expects.
std::string to_chrome_trace(const Timeline& timeline);
std::string to_chrome_trace(const Timeline& timeline,
                            const std::vector<TraceMarker>& markers);

/// Write the trace to a file. Throws on I/O failure.
void write_chrome_trace(const Timeline& timeline, const std::string& path);
void write_chrome_trace(const Timeline& timeline,
                        const std::vector<TraceMarker>& markers,
                        const std::string& path);

/// Fleet export: merge per-device timelines into one trace. Device d's
/// records land on pid d (a "device d" process row via process_name
/// metadata events) with streams as tids, so an N-device training
/// iteration reads as N aligned swim-lane groups. Cross-device
/// memcpy_peer spans (CopyRecord.peer >= 0) are named "memcpy peer->P"
/// and categorised "memcpy_peer" so collective waves stand out from the
/// local H2D/D2H traffic. `names[d]`, when provided, labels the row
/// (e.g. "device 0 (P100)").
std::string to_chrome_trace_fleet(const std::vector<const Timeline*>& timelines,
                                  const std::vector<std::string>& names = {});
void write_chrome_trace_fleet(const std::vector<const Timeline*>& timelines,
                              const std::string& path,
                              const std::vector<std::string>& names = {});

}  // namespace gpusim
