#pragma once
// Chrome-trace (chrome://tracing / Perfetto) export of a simulated
// timeline: every kernel and copy becomes a complete event ("ph":"X") on
// its stream's row. This is the tooling counterpart of the paper's Fig. 3
// profiler screenshots.

#include <string>

#include "gpusim/timeline.hpp"

namespace gpusim {

/// Serialise the timeline to Chrome trace JSON (trace-event format,
/// JSON-array flavour). Timestamps are microseconds as the format expects.
std::string to_chrome_trace(const Timeline& timeline);

/// Write the trace to a file. Throws on I/O failure.
void write_chrome_trace(const Timeline& timeline, const std::string& path);

}  // namespace gpusim
