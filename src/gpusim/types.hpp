#pragma once
// Fundamental value types shared across the GPU simulator and everything
// layered on top of it (simcuda, simcupti, the GLP4NN analyzer).

#include <cstddef>
#include <cstdint>
#include <string>

namespace gpusim {

/// Simulated time in nanoseconds (double so fluid-rate completion times
/// need no rounding).
using SimTime = double;

inline constexpr SimTime kUs = 1000.0;
inline constexpr SimTime kMs = 1000.0 * 1000.0;

/// CUDA-like 3-component launch dimension.
struct Dim3 {
  unsigned x = 1;
  unsigned y = 1;
  unsigned z = 1;

  constexpr std::uint64_t count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
  friend bool operator==(const Dim3&, const Dim3&) = default;
};

/// Static launch configuration of a kernel — exactly the fields the
/// paper's resource tracker collects via CUPTI (grid, block, registers
/// per thread, static + dynamic shared memory).
struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
  int regs_per_thread = 32;
  std::size_t smem_static_bytes = 0;
  std::size_t smem_dynamic_bytes = 0;

  std::uint64_t total_blocks() const { return grid.count(); }
  std::uint64_t threads_per_block() const { return block.count(); }
  std::uint64_t total_threads() const { return grid.count() * block.count(); }
  std::size_t smem_per_block() const {
    return smem_static_bytes + smem_dynamic_bytes;
  }
};

/// Analytic cost of a kernel: total floating-point work and total DRAM
/// traffic. The engine converts this into "thread-cycles" with a roofline
/// against the target device (see SimDevice::work_thread_cycles), so the
/// same kernel is compute-bound on one GPU and memory-bound on another.
struct KernelCost {
  double flops = 0.0;
  double bytes = 0.0;
};

/// Identifier of a simulated stream. Stream 0 is the CUDA *legacy default
/// stream*: it synchronises with every other stream on the device.
using StreamId = int;
inline constexpr StreamId kDefaultStream = 0;

using EventId = std::uint64_t;

/// A completed kernel's execution record, as captured by the timeline
/// recorder and surfaced through simcupti.
struct KernelRecord {
  std::uint64_t correlation_id = 0;
  std::string name;
  StreamId stream = kDefaultStream;
  LaunchConfig config;
  SimTime submit_ns = 0.0;  ///< host launch call returned
  SimTime start_ns = 0.0;   ///< first block began executing
  SimTime end_ns = 0.0;     ///< last block finished
  int tenant = -1;          ///< serving tenant tag (-1: untagged)
};

/// A completed memcpy's execution record.
struct CopyRecord {
  std::uint64_t correlation_id = 0;
  StreamId stream = kDefaultStream;
  std::size_t bytes = 0;
  bool host_to_device = true;
  SimTime start_ns = 0.0;
  SimTime end_ns = 0.0;
  int tenant = -1;  ///< serving tenant tag (-1: untagged)
  /// Peer device index for cross-device (fleet) transfers; -1 for the
  /// ordinary H2D/D2H copies of a single device. Peer copies ride the
  /// interconnect model, not the PCIe copy engines (see memcpy_peer).
  int peer = -1;
};

}  // namespace gpusim
