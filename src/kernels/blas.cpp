#include "kernels/blas.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"
#include "kernels/cpu_math.hpp"

namespace kern {

using gpusim::Dim3;
using gpusim::KernelCost;
using gpusim::LaunchConfig;

GemmTile select_gemm_tile(int m, int n) {
  if (m >= 128 && n >= 128) {
    return GemmTile{128, 128, 256, 127, 16 * 1024, "128x128"};
  }
  if (m >= 64 && n >= 64) {
    return GemmTile{64, 64, 128, 90, 8 * 1024, "64x64"};
  }
  return GemmTile{32, 32, 64, 55, 4 * 1024, "32x32"};
}

std::uint64_t sgemm(const Launcher& launcher, bool trans_a, bool trans_b, int m,
                    int n, int k, float alpha, const float* a, int lda,
                    const float* b, int ldb, float beta, float* c, int ldc) {
  const GemmTile tile = select_gemm_tile(m, n);
  LaunchConfig cfg;
  cfg.grid = Dim3{blocks_for(static_cast<std::uint64_t>(n), static_cast<unsigned>(tile.tile_n)),
                  blocks_for(static_cast<std::uint64_t>(m), static_cast<unsigned>(tile.tile_m)), 1};
  cfg.block = Dim3{tile.threads, 1, 1};
  cfg.regs_per_thread = tile.regs;
  cfg.smem_static_bytes = tile.smem;

  KernelCost cost;
  cost.flops = 2.0 * m * n * k;
  cost.bytes = 4.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
                      2.0 * static_cast<double>(m) * n);

  const std::string name = glp::strformat(
      "sgemm_%s_%c%c", tile.tag, trans_a ? 't' : 'n', trans_b ? 't' : 'n');
  return launcher.launch(name, cfg, cost,
                         [=] { cpu::gemm(trans_a, trans_b, m, n, k, alpha, a, lda,
                                         b, ldb, beta, c, ldc); });
}

std::uint64_t sgemm_bias_fused(const Launcher& launcher, int m, int n, int k,
                               const float* a, int lda, const float* b, int ldb,
                               const float* bias, float* c, int ldc) {
  const GemmTile tile = select_gemm_tile(m, n);
  LaunchConfig cfg;
  cfg.grid = Dim3{blocks_for(static_cast<std::uint64_t>(n), static_cast<unsigned>(tile.tile_n)),
                  blocks_for(static_cast<std::uint64_t>(m), static_cast<unsigned>(tile.tile_m)), 1};
  cfg.block = Dim3{tile.threads, 1, 1};
  cfg.regs_per_thread = tile.regs + 4;  // the epilogue costs a few registers
  cfg.smem_static_bytes = tile.smem;

  KernelCost cost;
  cost.flops = 2.0 * m * n * k + static_cast<double>(m) * n;
  cost.bytes = 4.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
                      static_cast<double>(m) + 2.0 * static_cast<double>(m) * n);

  const std::string name = glp::strformat("sgemm_bias_fused_%s_nn", tile.tag);
  return launcher.launch(name, cfg, cost, [=] {
    cpu::gemm(false, false, m, n, k, 1.0f, a, lda, b, ldb, 0.0f, c, ldc);
    cpu::add_bias(m, n, bias, c);
  });
}

std::uint64_t sgemm_bias_relu_fused(const Launcher& launcher, int m, int n,
                                    int k, const float* a, int lda,
                                    const float* b, int ldb, const float* bias,
                                    float* c, int ldc, float negative_slope) {
  const GemmTile tile = select_gemm_tile(m, n);
  LaunchConfig cfg;
  cfg.grid = Dim3{blocks_for(static_cast<std::uint64_t>(n), static_cast<unsigned>(tile.tile_n)),
                  blocks_for(static_cast<std::uint64_t>(m), static_cast<unsigned>(tile.tile_m)), 1};
  cfg.block = Dim3{tile.threads, 1, 1};
  cfg.regs_per_thread = tile.regs + 6;  // bias + activation epilogue
  cfg.smem_static_bytes = tile.smem;

  KernelCost cost;
  cost.flops = 2.0 * m * n * k + 2.0 * static_cast<double>(m) * n;
  cost.bytes = 4.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
                      static_cast<double>(m) + 2.0 * static_cast<double>(m) * n);

  const std::string name =
      glp::strformat("sgemm_bias_relu_fused_%s_nn", tile.tag);
  const std::size_t count = static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
  return launcher.launch(name, cfg, cost, [=] {
    cpu::gemm(false, false, m, n, k, 1.0f, a, lda, b, ldb, 0.0f, c, ldc);
    cpu::add_bias(m, n, bias, c);
    cpu::relu_forward(count, c, c, negative_slope);
  });
}

std::uint64_t ip_bias_relu_fused(const Launcher& launcher, int m, int n, int k,
                                 const float* a, int lda, const float* b,
                                 int ldb, const float* ones, const float* bias,
                                 float* c, int ldc, float negative_slope) {
  const GemmTile tile = select_gemm_tile(m, n);
  LaunchConfig cfg;
  cfg.grid = Dim3{blocks_for(static_cast<std::uint64_t>(n), static_cast<unsigned>(tile.tile_n)),
                  blocks_for(static_cast<std::uint64_t>(m), static_cast<unsigned>(tile.tile_m)), 1};
  cfg.block = Dim3{tile.threads, 1, 1};
  cfg.regs_per_thread = tile.regs + 6;  // bias + activation epilogue
  cfg.smem_static_bytes = tile.smem;

  KernelCost cost;
  cost.flops = 2.0 * m * n * k + 3.0 * static_cast<double>(m) * n;
  cost.bytes = 4.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
                      static_cast<double>(m) + static_cast<double>(n) +
                      2.0 * static_cast<double>(m) * n);

  const std::string name = glp::strformat("ip_bias_relu_fused_%s_tn", tile.tag);
  const std::size_t count = static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
  return launcher.launch(name, cfg, cost, [=] {
    cpu::gemm(false, true, m, n, k, 1.0f, a, lda, b, ldb, 0.0f, c, ldc);
    cpu::gemm(false, false, m, n, 1, 1.0f, ones, 1, bias, n, 1.0f, c, ldc);
    cpu::relu_forward(count, c, c, negative_slope);
  });
}

std::uint64_t sgemv(const Launcher& launcher, bool trans_a, int m, int n,
                    float alpha, const float* a, int lda, const float* x,
                    float beta, float* y) {
  // cuBLAS-style gemv: one block of 128 threads per 4 output rows.
  const int out_rows = trans_a ? n : m;
  LaunchConfig cfg;
  cfg.block = Dim3{128, 1, 1};
  cfg.grid = Dim3{std::max(1u, blocks_for(static_cast<std::uint64_t>(out_rows), 4)), 1, 1};
  cfg.regs_per_thread = 40;
  cfg.smem_static_bytes = 2 * 1024;
  KernelCost cost{2.0 * m * n,
                  4.0 * (static_cast<double>(m) * n + m + 2.0 * n)};
  return launcher.launch(
      glp::strformat("sgemv_%c", trans_a ? 't' : 'n'), cfg, cost, [=] {
        // y [out_rows] via the gemm kernel's math (vector = 1-column matrix).
        cpu::gemm(trans_a, false, out_rows, 1, trans_a ? m : n, alpha, a, lda,
                  x, 1, beta, y, 1);
      });
}

namespace {
LaunchConfig elementwise_config(std::uint64_t count, int regs) {
  LaunchConfig cfg;
  cfg.block = Dim3{256, 1, 1};
  cfg.grid = Dim3{std::max(1u, blocks_for(count, 256)), 1, 1};
  cfg.regs_per_thread = regs;
  return cfg;
}
}  // namespace

std::uint64_t saxpy(const Launcher& launcher, std::size_t count, float alpha,
                    const float* x, float* y) {
  KernelCost cost{static_cast<double>(count) * 2.0,
                  static_cast<double>(count) * 12.0};
  return launcher.launch("axpy_kernel", elementwise_config(count, 14), cost,
                         [=] { cpu::axpy(count, alpha, x, y); });
}

std::uint64_t sscal(const Launcher& launcher, std::size_t count, float alpha,
                    float* x) {
  KernelCost cost{static_cast<double>(count),
                  static_cast<double>(count) * 8.0};
  return launcher.launch("scal_kernel", elementwise_config(count, 10), cost,
                         [=] { cpu::scal(count, alpha, x); });
}

std::uint64_t sfill(const Launcher& launcher, std::size_t count, float value,
                    float* x) {
  KernelCost cost{0.0, static_cast<double>(count) * 4.0};
  return launcher.launch("fill_kernel", elementwise_config(count, 8), cost,
                         [=] { cpu::fill(count, value, x); });
}

std::uint64_t add_bias(const Launcher& launcher, int channels, int spatial,
                       const float* bias, float* out) {
  const std::uint64_t count =
      static_cast<std::uint64_t>(channels) * static_cast<std::uint64_t>(spatial);
  KernelCost cost{static_cast<double>(count),
                  static_cast<double>(count) * 8.0};
  return launcher.launch("add_bias_kernel", elementwise_config(count, 16), cost,
                         [=] { cpu::add_bias(channels, spatial, bias, out); });
}

std::uint64_t sgd_update(const Launcher& launcher, std::size_t count, float lr,
                         float momentum, const float* grad, float* history,
                         float* param) {
  KernelCost cost{static_cast<double>(count) * 4.0,
                  static_cast<double>(count) * 20.0};
  return launcher.launch("sgd_update_kernel", elementwise_config(count, 20), cost,
                         [=] {
                           for (std::size_t i = 0; i < count; ++i) {
                             history[i] = momentum * history[i] + lr * grad[i];
                             param[i] -= history[i];
                           }
                         });
}

std::uint64_t nesterov_update(const Launcher& launcher, std::size_t count,
                              float lr, float momentum, const float* grad,
                              float* history, float* param) {
  KernelCost cost{static_cast<double>(count) * 6.0,
                  static_cast<double>(count) * 20.0};
  return launcher.launch("nesterov_update_kernel",
                         elementwise_config(count, 22), cost, [=] {
                           for (std::size_t i = 0; i < count; ++i) {
                             const float h_prev = history[i];
                             const float h = momentum * h_prev + lr * grad[i];
                             history[i] = h;
                             param[i] -= (1.0f + momentum) * h - momentum * h_prev;
                           }
                         });
}

std::uint64_t adagrad_update(const Launcher& launcher, std::size_t count,
                             float lr, float eps, const float* grad,
                             float* history, float* param) {
  KernelCost cost{static_cast<double>(count) * 8.0,
                  static_cast<double>(count) * 20.0};
  return launcher.launch("adagrad_update_kernel",
                         elementwise_config(count, 24), cost, [=] {
                           for (std::size_t i = 0; i < count; ++i) {
                             history[i] += grad[i] * grad[i];
                             param[i] -= lr * grad[i] /
                                         (std::sqrt(history[i]) + eps);
                           }
                         });
}

std::uint64_t reduce_lanes(const Launcher& launcher, int lanes,
                           std::size_t count, const float* src, float* dst) {
  KernelCost cost{static_cast<double>(count) * lanes,
                  static_cast<double>(count) * (lanes + 2) * 4.0};
  return launcher.launch("reduce_lanes_kernel", elementwise_config(count, 24),
                         cost, [=] { cpu::reduce_lanes(lanes, count, src, dst); });
}

}  // namespace kern
