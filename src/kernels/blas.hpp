#pragma once
// Simulated cuBLAS-like kernels. Each wrapper picks a launch
// configuration the way the real library's heuristics would (tile size by
// problem shape, register/shared-memory footprint per tile), attaches an
// analytic cost, and launches on the given stream. The host math runs at
// simulated completion time in numeric mode.

#include "kernels/launcher.hpp"

namespace kern {

/// Tile variants the sgemm heuristic chooses between. Exposed so tests can
/// pin expectations on the selection logic.
struct GemmTile {
  int tile_m = 32;
  int tile_n = 32;
  unsigned threads = 64;
  int regs = 55;
  std::size_t smem = 4 * 1024;
  const char* tag = "32x32";
};

/// cuBLAS-like tile selection by output shape.
GemmTile select_gemm_tile(int m, int n);

/// C = alpha * op(A) * op(B) + beta * C (row-major).
std::uint64_t sgemm(const Launcher& launcher, bool trans_a, bool trans_b, int m,
                    int n, int k, float alpha, const float* a, int lda,
                    const float* b, int ldb, float beta, float* c, int ldc);

/// y = alpha · op(A)·x + beta · y (row-major A [m x n]).
std::uint64_t sgemv(const Launcher& launcher, bool trans_a, int m, int n,
                    float alpha, const float* a, int lda, const float* x,
                    float beta, float* y);

/// y += alpha * x
std::uint64_t saxpy(const Launcher& launcher, std::size_t count, float alpha,
                    const float* x, float* y);

/// x *= alpha
std::uint64_t sscal(const Launcher& launcher, std::size_t count, float alpha,
                    float* x);

/// x[i] = value
std::uint64_t sfill(const Launcher& launcher, std::size_t count, float value,
                    float* x);

/// out[c, :] += bias[c] over a [channels x spatial] map.
std::uint64_t add_bias(const Launcher& launcher, int channels, int spatial,
                       const float* bias, float* out);

/// Fused C = A·B then C[i, :] += bias[i] — one launch instead of two
/// (kernel-fusion extension; paper §6 future work). Row i of C is an
/// output channel, so bias is indexed by row.
std::uint64_t sgemm_bias_fused(const Launcher& launcher, int m, int n, int k,
                               const float* a, int lda, const float* b, int ldb,
                               const float* bias, float* c, int ldc);

/// sgemm_bias_fused with a ReLU epilogue: C = relu(A·B + bias), where
/// relu keeps `negative_slope`·x for negative x (leaky variant). Used by
/// the DAG scheduler's elementwise-fusion pass to absorb an in-place
/// activation that immediately follows a conv/fc GEMM. The epilogue is
/// elementwise, so applying it per GEMM region produces bit-identical
/// results to a separate whole-blob activation kernel. Assumes the C
/// region is contiguous (ldc == n), like the bias epilogue.
std::uint64_t sgemm_bias_relu_fused(const Launcher& launcher, int m, int n,
                                    int k, const float* a, int lda,
                                    const float* b, int ldb, const float* bias,
                                    float* c, int ldc, float negative_slope);

/// Fused inner-product forward with ReLU epilogue, one launch for
/// C = relu(A·Bᵀ + ones·bias): the batched fc GEMM, its rank-1 bias
/// GEMM, and the following in-place activation. The functor runs the
/// exact same three host ops the unfused path runs, in the same order,
/// so results are bit-identical.
std::uint64_t ip_bias_relu_fused(const Launcher& launcher, int m, int n, int k,
                                 const float* a, int lda, const float* b,
                                 int ldb, const float* ones, const float* bias,
                                 float* c, int ldc, float negative_slope);

/// SGD with momentum: h = momentum*h + lr*grad; param -= h.
std::uint64_t sgd_update(const Launcher& launcher, std::size_t count, float lr,
                         float momentum, const float* grad, float* history,
                         float* param);

/// Nesterov accelerated gradient (Caffe formulation):
/// h' = momentum*h + lr*grad; param -= (1+momentum)*h' − momentum*h.
std::uint64_t nesterov_update(const Launcher& launcher, std::size_t count,
                              float lr, float momentum, const float* grad,
                              float* history, float* param);

/// AdaGrad: h += grad²; param -= lr*grad / (sqrt(h) + eps).
std::uint64_t adagrad_update(const Launcher& launcher, std::size_t count,
                             float lr, float eps, const float* grad,
                             float* history, float* param);

/// dst[i] += Σ_lanes src[lane*count + i] (canonical ascending-lane order).
std::uint64_t reduce_lanes(const Launcher& launcher, int lanes,
                           std::size_t count, const float* src, float* dst);

}  // namespace kern
