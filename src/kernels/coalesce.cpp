#include "kernels/coalesce.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace kern {

namespace {

/// Merged-launch functor: runs every staged functor in staging order —
/// the same host ops on the same buffers in the same order as the
/// unfused per-stream FIFO execution.
struct LaneChainRunner {
  std::vector<gpusim::DeviceEngine::WorkFn> fns;
  void operator()() {
    for (auto& fn : fns) {
      if (fn) fn();
    }
  }
};

}  // namespace

void CoalescingDispatcher::begin_scope(const std::string& scope,
                                       std::size_t num_tasks) {
  inner_->begin_scope(scope, num_tasks);
  GLP_CHECK(!coalescer_.armed && coalescer_.groups.empty());
  scope_ = scope;
  // Ask *after* the inner begin_scope: the scheduler only knows whether
  // this run profiles or runs steady once the scope is open.
  coalescer_.armed = inner_->scope_coalescable();
}

void CoalescingDispatcher::flush() {
  gpusim::DeviceEngine& dev = ctx_->device();
  for (LaneCoalescer::Group& g : coalescer_.groups) {
    GLP_CHECK(!g.staged.empty());
    // Same degraded-launch semantics as kern::Launcher: a failed merged
    // launch re-issues on the legacy default stream (a two-sided
    // barrier), preserving global submission order.
    const gpusim::StreamId target = ctx_->faults().should_fail_launch()
                                        ? gpusim::kDefaultStream
                                        : g.stream;
    if (g.staged.size() == 1) {
      FusionStager::Staged& s = g.staged.front();
      dev.launch_kernel(target, std::move(s.name), s.config, s.cost,
                        std::move(s.work));
      ++merged_launches_;
      ++coalesced_kernels_;
      continue;
    }
    gpusim::LaunchConfig cfg;
    gpusim::KernelCost cost;
    cfg.regs_per_thread = 0;
    std::vector<gpusim::DeviceEngine::WorkFn> fns;
    fns.reserve(g.staged.size());
    bool any_work = false;
    for (FusionStager::Staged& s : g.staged) {
      cfg.grid.x = std::max(cfg.grid.x, s.config.grid.x);
      cfg.grid.y = std::max(cfg.grid.y, s.config.grid.y);
      cfg.grid.z = std::max(cfg.grid.z, s.config.grid.z);
      cfg.block.x = std::max(cfg.block.x, s.config.block.x);
      cfg.block.y = std::max(cfg.block.y, s.config.block.y);
      cfg.block.z = std::max(cfg.block.z, s.config.block.z);
      cfg.regs_per_thread =
          std::max(cfg.regs_per_thread, s.config.regs_per_thread);
      cfg.smem_static_bytes =
          std::max(cfg.smem_static_bytes, s.config.smem_static_bytes);
      cfg.smem_dynamic_bytes =
          std::max(cfg.smem_dynamic_bytes, s.config.smem_dynamic_bytes);
      cost.flops += s.cost.flops;
      cost.bytes += s.cost.bytes;
      any_work = any_work || static_cast<bool>(s.work);
      fns.push_back(std::move(s.work));
    }
    const std::string name =
        scope_ + "/coalesced" + std::to_string(g.staged.size());
    dev.launch_kernel(
        target, name, cfg, cost,
        any_work ? gpusim::DeviceEngine::WorkFn(LaneChainRunner{std::move(fns)})
                 : gpusim::DeviceEngine::WorkFn());
    ++merged_launches_;
    coalesced_kernels_ += g.staged.size();
  }
  coalescer_.groups.clear();
}

void CoalescingDispatcher::end_scope() {
  coalescer_.armed = false;
  // Flush before the inner end_scope so the scope's join barrier (events
  // recorded on every pool stream) covers the merged launches.
  flush();
  inner_->end_scope();
}

}  // namespace kern
