#pragma once
// CoalescingDispatcher: a transparent KernelDispatcher wrapper that cuts
// the host launch overhead of per-sample scopes by merging each lane's
// staged kernel chain into ONE simulated launch per stream.
//
// Why this matters: the simulator charges every launch_kernel call
// kernel_launch_overhead_us of *serial host* time (the cudaLaunchKernel
// analogue). A conv scope over a batch of 64 issues ~128 launches
// (im2col + fused GEMM per sample) — >600 us of pure host time per layer
// — which caps the serving hot path near 25k req/s no matter how large
// batches get. Coalescing reduces that to one launch per stream actually
// used by the scope (the analyzer's decision, typically 2–14), an order
// of magnitude less host time, while the device-side work is unchanged:
// the merged kernel's cost is the sum of its parts and its functor runs
// every staged functor in staging order.
//
// Correctness:
//  * Per-stream order is preserved exactly (stage buffers are keyed by
//    target stream and flushed in first-use order), and a stream's chain
//    was already FIFO — running the same host functors in the same order
//    on the same buffers is bit-identical.
//  * Only *steady* scopes coalesce: the wrapper asks the inner
//    dispatcher's scope_coalescable() at begin_scope, so profiling runs
//    (which need per-kernel tracker records for the analytical model)
//    and the serial/fixed baselines are never altered.
//  * The flush happens before the inner end_scope(), so the scope's join
//    barrier covers the merged launches.
//  * Fault injection sees one should_fail_launch() draw per merged
//    launch with the same degrade-to-default-stream semantics as
//    kern::Launcher.

#include <string>

#include "kernels/dispatch.hpp"
#include "kernels/launcher.hpp"

namespace kern {

class CoalescingDispatcher final : public KernelDispatcher {
 public:
  CoalescingDispatcher(scuda::Context& ctx, KernelDispatcher& inner)
      : ctx_(&ctx), inner_(&inner) {}

  /// The staging buffer to install as ExecContext::coalescer. Armed and
  /// disarmed by begin_scope/end_scope.
  LaneCoalescer& coalescer() { return coalescer_; }

  /// Merged launches submitted so far (for tests/introspection).
  std::uint64_t merged_launches() const { return merged_launches_; }
  /// Kernels absorbed into merged launches so far.
  std::uint64_t coalesced_kernels() const { return coalesced_kernels_; }

  void begin_scope(const std::string& scope, std::size_t num_tasks) override;
  Lane task_lane(std::size_t index) override { return inner_->task_lane(index); }
  int max_lanes() const override { return inner_->max_lanes(); }
  void end_scope() override;
  bool scope_coalescable() const override {
    return inner_->scope_coalescable();
  }

  std::vector<DagPlacement> plan_dag(const std::vector<DagOp>& ops) override {
    return inner_->plan_dag(ops);
  }
  void bind_dag_op(const DagOpBinding& binding) override {
    inner_->bind_dag_op(binding);
  }
  void clear_dag_op() override { inner_->clear_dag_op(); }

 private:
  void flush();

  scuda::Context* ctx_;
  KernelDispatcher* inner_;
  LaneCoalescer coalescer_;
  std::string scope_;
  std::uint64_t merged_launches_ = 0;
  std::uint64_t coalesced_kernels_ = 0;
};

}  // namespace kern
