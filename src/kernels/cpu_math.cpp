#include "kernels/cpu_math.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.hpp"
#include "common/parallel.hpp"

#define GLP_RESTRICT __restrict__

namespace kern::cpu {

// gemm() lives in gemm.cpp (packed-panel tiled implementation).

namespace {

// Chunk size for elementwise kernels: large enough that the per-chunk
// dispatch (two atomic ops) is noise, small enough to balance load.
constexpr std::size_t kElemGrain = 1u << 15;

// Minimum per-call element count before a parallel dispatch pays off for
// memory-bound kernels.
constexpr std::size_t kElemParallel = 1u << 15;

/// Deterministic chunk size for partitioning `count` outer items whose
/// bodies each cost ~`per_item` elements: depends only on the shape.
std::size_t grain_for(std::size_t per_item) {
  return std::max<std::size_t>(1, kElemGrain / std::max<std::size_t>(1, per_item));
}

}  // namespace

void axpy(std::size_t count, float alpha, const float* x, float* y) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        const float* GLP_RESTRICT xs = x;
        float* GLP_RESTRICT ys = y;
        for (std::size_t i = lo; i < hi; ++i) ys[i] += alpha * xs[i];
      },
      kElemGrain);
}

void scal(std::size_t count, float alpha, float* x) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) x[i] *= alpha;
      },
      kElemGrain);
}

void fill(std::size_t count, float value, float* x) {
  std::fill(x, x + count, value);
}

int conv_out_size(int in_size, int kernel, int pad, int stride) {
  return (in_size + 2 * pad - kernel) / stride + 1;
}

namespace {

/// Output-x range [ow0, ow1) whose source column iw = ow*stride - pad + kq
/// lies inside [0, width); everything outside is padding.
inline void interior_ow_range(int out_w, int width, int pad_w, int stride_w,
                              int kq, int* ow0, int* ow1) {
  const int lo_num = pad_w - kq;  // smallest ow with iw >= 0
  *ow0 = lo_num <= 0 ? 0 : (lo_num + stride_w - 1) / stride_w;
  const int hi_num = width + pad_w - kq;  // smallest ow with iw >= width
  *ow1 = hi_num <= 0 ? 0 : (hi_num + stride_w - 1) / stride_w;
  *ow0 = std::min(*ow0, out_w);
  *ow1 = std::max(std::min(*ow1, out_w), *ow0);
}

}  // namespace

void im2col(const float* data_im, int channels, int height, int width,
            int kernel_h, int kernel_w, int pad_h, int pad_w, int stride_h,
            int stride_w, float* data_col) {
  const int out_h = conv_out_size(height, kernel_h, pad_h, stride_h);
  const int out_w = conv_out_size(width, kernel_w, pad_w, stride_w);
  const int col_rows = channels * kernel_h * kernel_w;
  const std::size_t per_row = static_cast<std::size_t>(out_h) * out_w;
  // Each col row (c, kh, kw) writes a disjoint out_h*out_w slab, so row
  // partitioning is race-free and worker-count independent.
  auto rows = [=](std::size_t r0, std::size_t r1) {
    for (std::size_t row = r0; row < r1; ++row) {
      const int c = static_cast<int>(row) / (kernel_h * kernel_w);
      const int kh = (static_cast<int>(row) / kernel_w) % kernel_h;
      const int kw = static_cast<int>(row) % kernel_w;
      int ow0 = 0, ow1 = 0;
      interior_ow_range(out_w, width, pad_w, stride_w, kw, &ow0, &ow1);
      float* GLP_RESTRICT col_ptr = data_col + row * per_row;
      const float* im_ptr = data_im + static_cast<std::size_t>(c) * height * width;
      for (int oh = 0; oh < out_h; ++oh, col_ptr += out_w) {
        const int ih = oh * stride_h - pad_h + kh;
        if (ih < 0 || ih >= height) {
          std::fill(col_ptr, col_ptr + out_w, 0.0f);
          continue;
        }
        // Interior fast path: no per-element bounds checks; the unit
        // stride case is a straight contiguous copy.
        std::fill(col_ptr, col_ptr + ow0, 0.0f);
        const float* GLP_RESTRICT im_row =
            im_ptr + static_cast<std::size_t>(ih) * width;
        if (stride_w == 1) {
          std::memcpy(col_ptr + ow0, im_row + (ow0 - pad_w + kw),
                      static_cast<std::size_t>(ow1 - ow0) * sizeof(float));
        } else {
          for (int ow = ow0; ow < ow1; ++ow) {
            col_ptr[ow] = im_row[ow * stride_w - pad_w + kw];
          }
        }
        std::fill(col_ptr + ow1, col_ptr + out_w, 0.0f);
      }
    }
  };
  if (static_cast<std::size_t>(col_rows) * per_row >= kElemParallel) {
    glp::parallel_for(0, static_cast<std::size_t>(col_rows), rows,
                      grain_for(per_row));
  } else {
    rows(0, static_cast<std::size_t>(col_rows));
  }
}

void col2im(const float* data_col, int channels, int height, int width,
            int kernel_h, int kernel_w, int pad_h, int pad_w, int stride_h,
            int stride_w, float* data_im) {
  const int out_h = conv_out_size(height, kernel_h, pad_h, stride_h);
  const int out_w = conv_out_size(width, kernel_w, pad_w, stride_w);
  const std::size_t per_row = static_cast<std::size_t>(out_h) * out_w;
  // The scatter-add accumulates into per-channel image planes: partition
  // over channels (disjoint planes) and keep the serial (kh, kw, oh)
  // order inside each channel, so sums are bit-identical to a serial run.
  auto chans = [=](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      float* im_ptr = data_im + c * height * width;
      for (int kh = 0; kh < kernel_h; ++kh) {
        for (int kw = 0; kw < kernel_w; ++kw) {
          const std::size_t row =
              (c * kernel_h + kh) * kernel_w + static_cast<std::size_t>(kw);
          const float* GLP_RESTRICT col_ptr = data_col + row * per_row;
          int ow0 = 0, ow1 = 0;
          interior_ow_range(out_w, width, pad_w, stride_w, kw, &ow0, &ow1);
          for (int oh = 0; oh < out_h; ++oh, col_ptr += out_w) {
            const int ih = oh * stride_h - pad_h + kh;
            if (ih < 0 || ih >= height) continue;
            float* GLP_RESTRICT im_row =
                im_ptr + static_cast<std::size_t>(ih) * width;
            if (stride_w == 1) {
              float* GLP_RESTRICT dst = im_row + (ow0 - pad_w + kw);
              for (int ow = ow0; ow < ow1; ++ow) dst[ow - ow0] += col_ptr[ow];
            } else {
              for (int ow = ow0; ow < ow1; ++ow) {
                im_row[ow * stride_w - pad_w + kw] += col_ptr[ow];
              }
            }
          }
        }
      }
    }
  };
  const std::size_t per_chan =
      static_cast<std::size_t>(kernel_h) * kernel_w * per_row;
  if (static_cast<std::size_t>(channels) * per_chan >= kElemParallel) {
    glp::parallel_for(0, static_cast<std::size_t>(channels), chans,
                      grain_for(per_chan));
  } else {
    chans(0, static_cast<std::size_t>(channels));
  }
}

void add_bias(int channels, int spatial, const float* bias, float* out) {
  glp::parallel_for(
      0, static_cast<std::size_t>(channels),
      [=](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          float* GLP_RESTRICT row = out + c * spatial;
          const float b = bias[c];
          for (int i = 0; i < spatial; ++i) row[i] += b;
        }
      },
      grain_for(static_cast<std::size_t>(spatial)));
}

void max_pool_forward(const float* in, int channels, int height, int width,
                      int kernel, int stride, int pad, int out_h, int out_w,
                      float* out, int* mask) {
  const std::size_t plane_in = static_cast<std::size_t>(height) * width;
  const std::size_t plane_out = static_cast<std::size_t>(out_h) * out_w;
  glp::parallel_for(
      0, static_cast<std::size_t>(channels),
      [=](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          const float* im = in + c * plane_in;
          float* o = out + c * plane_out;
          int* m = mask == nullptr ? nullptr : mask + c * plane_out;
          for (int oh = 0; oh < out_h; ++oh) {
            const int h0 = std::max(oh * stride - pad, 0);
            const int h1 = std::min(oh * stride - pad + kernel, height);
            for (int ow = 0; ow < out_w; ++ow) {
              const int w0 = std::max(ow * stride - pad, 0);
              const int w1 = std::min(ow * stride - pad + kernel, width);
              float best = -std::numeric_limits<float>::infinity();
              int best_idx = h0 * width + w0;
              for (int h = h0; h < h1; ++h) {
                for (int w = w0; w < w1; ++w) {
                  const float v = im[static_cast<std::size_t>(h) * width + w];
                  if (v > best) {
                    best = v;
                    best_idx = h * width + w;
                  }
                }
              }
              o[static_cast<std::size_t>(oh) * out_w + ow] = best;
              if (m != nullptr) {
                m[static_cast<std::size_t>(oh) * out_w + ow] = best_idx;
              }
            }
          }
        }
      },
      grain_for(plane_out * static_cast<std::size_t>(kernel) * kernel));
}

void max_pool_backward(const float* out_grad, const int* mask, int channels,
                       int out_h, int out_w, int height, int width,
                       float* in_grad) {
  const std::size_t plane_in = static_cast<std::size_t>(height) * width;
  const std::size_t plane_out = static_cast<std::size_t>(out_h) * out_w;
  glp::parallel_for(
      0, static_cast<std::size_t>(channels),
      [=](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          const float* og = out_grad + c * plane_out;
          const int* m = mask + c * plane_out;
          float* ig = in_grad + c * plane_in;
          for (std::size_t i = 0; i < plane_out; ++i) ig[m[i]] += og[i];
        }
      },
      grain_for(plane_out));
}

void ave_pool_forward(const float* in, int channels, int height, int width,
                      int kernel, int stride, int pad, int out_h, int out_w,
                      float* out) {
  const std::size_t plane_in = static_cast<std::size_t>(height) * width;
  const std::size_t plane_out = static_cast<std::size_t>(out_h) * out_w;
  glp::parallel_for(
      0, static_cast<std::size_t>(channels),
      [=](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          const float* im = in + c * plane_in;
          float* o = out + c * plane_out;
          for (int oh = 0; oh < out_h; ++oh) {
            for (int ow = 0; ow < out_w; ++ow) {
              const int h0 = std::max(oh * stride - pad, 0);
              const int w0 = std::max(ow * stride - pad, 0);
              const int h1 = std::min(oh * stride - pad + kernel, height);
              const int w1 = std::min(ow * stride - pad + kernel, width);
              // Caffe divides by the *padded* window size.
              const int pool_size =
                  (std::min(oh * stride - pad + kernel, height + pad) -
                   std::max(oh * stride - pad, -pad)) *
                  (std::min(ow * stride - pad + kernel, width + pad) -
                   std::max(ow * stride - pad, -pad));
              float acc = 0.0f;
              for (int h = h0; h < h1; ++h) {
                for (int w = w0; w < w1; ++w) {
                  acc += im[static_cast<std::size_t>(h) * width + w];
                }
              }
              o[static_cast<std::size_t>(oh) * out_w + ow] =
                  acc / static_cast<float>(pool_size);
            }
          }
        }
      },
      grain_for(plane_out * static_cast<std::size_t>(kernel) * kernel));
}

void ave_pool_backward(const float* out_grad, int channels, int height,
                       int width, int kernel, int stride, int pad, int out_h,
                       int out_w, float* in_grad) {
  const std::size_t plane_in = static_cast<std::size_t>(height) * width;
  const std::size_t plane_out = static_cast<std::size_t>(out_h) * out_w;
  glp::parallel_for(
      0, static_cast<std::size_t>(channels),
      [=](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          const float* og = out_grad + c * plane_out;
          float* ig = in_grad + c * plane_in;
          for (int oh = 0; oh < out_h; ++oh) {
            for (int ow = 0; ow < out_w; ++ow) {
              const int h0 = std::max(oh * stride - pad, 0);
              const int w0 = std::max(ow * stride - pad, 0);
              const int h1 = std::min(oh * stride - pad + kernel, height);
              const int w1 = std::min(ow * stride - pad + kernel, width);
              const int pool_size =
                  (std::min(oh * stride - pad + kernel, height + pad) -
                   std::max(oh * stride - pad, -pad)) *
                  (std::min(ow * stride - pad + kernel, width + pad) -
                   std::max(ow * stride - pad, -pad));
              const float g = og[static_cast<std::size_t>(oh) * out_w + ow] /
                              static_cast<float>(pool_size);
              for (int h = h0; h < h1; ++h) {
                for (int w = w0; w < w1; ++w) {
                  ig[static_cast<std::size_t>(h) * width + w] += g;
                }
              }
            }
          }
        }
      },
      grain_for(plane_out * static_cast<std::size_t>(kernel) * kernel));
}

void relu_forward(std::size_t count, const float* in, float* out,
                  float negative_slope) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        const float* GLP_RESTRICT x = in;
        float* GLP_RESTRICT y = out;
        const float slope = negative_slope;
        // Branch-free select form (max/min lower to vmaxps/vminps); a
        // ternary here compiles to a data-dependent branch that
        // mispredicts on every other activation.
        for (std::size_t i = lo; i < hi; ++i) {
          y[i] = std::max(x[i], 0.0f) + slope * std::min(x[i], 0.0f);
        }
      },
      kElemGrain);
}

void relu_backward(std::size_t count, const float* in, const float* out_grad,
                   float* in_grad, float negative_slope) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        const float* GLP_RESTRICT x = in;
        const float* GLP_RESTRICT dy = out_grad;
        float* GLP_RESTRICT dx = in_grad;
        const float slope = negative_slope;
        for (std::size_t i = lo; i < hi; ++i) {
          dx[i] = x[i] > 0.0f ? dy[i] : slope * dy[i];
        }
      },
      kElemGrain);
}

void sigmoid_forward(std::size_t count, const float* in, float* out) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = 1.0f / (1.0f + std::exp(-in[i]));
        }
      },
      kElemGrain);
}

void sigmoid_backward(std::size_t count, const float* out, const float* out_grad,
                      float* in_grad) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        const float* GLP_RESTRICT y = out;
        const float* GLP_RESTRICT dy = out_grad;
        float* GLP_RESTRICT dx = in_grad;
        for (std::size_t i = lo; i < hi; ++i) {
          dx[i] = dy[i] * y[i] * (1.0f - y[i]);
        }
      },
      kElemGrain);
}

void tanh_forward(std::size_t count, const float* in, float* out) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) out[i] = std::tanh(in[i]);
      },
      kElemGrain);
}

void tanh_backward(std::size_t count, const float* out, const float* out_grad,
                   float* in_grad) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        const float* GLP_RESTRICT y = out;
        const float* GLP_RESTRICT dy = out_grad;
        float* GLP_RESTRICT dx = in_grad;
        for (std::size_t i = lo; i < hi; ++i) {
          dx[i] = dy[i] * (1.0f - y[i] * y[i]);
        }
      },
      kElemGrain);
}

void abs_forward(std::size_t count, const float* in, float* out) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        const float* GLP_RESTRICT x = in;
        float* GLP_RESTRICT y = out;
        for (std::size_t i = lo; i < hi; ++i) y[i] = std::abs(x[i]);
      },
      kElemGrain);
}

void abs_backward(std::size_t count, const float* in, const float* out_grad,
                  float* in_grad) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        const float* GLP_RESTRICT x = in;
        const float* GLP_RESTRICT dy = out_grad;
        float* GLP_RESTRICT dx = in_grad;
        for (std::size_t i = lo; i < hi; ++i) {
          dx[i] = x[i] >= 0.0f ? dy[i] : -dy[i];
        }
      },
      kElemGrain);
}

void exp_forward(std::size_t count, const float* in, float* out) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) out[i] = std::exp(in[i]);
      },
      kElemGrain);
}

void mul(std::size_t count, const float* a, const float* b, float* out) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        const float* GLP_RESTRICT xa = a;
        const float* GLP_RESTRICT xb = b;
        float* GLP_RESTRICT y = out;
        for (std::size_t i = lo; i < hi; ++i) y[i] = xa[i] * xb[i];
      },
      kElemGrain);
}

void power_forward(std::size_t count, const float* in, float* out, float power,
                   float scale, float shift) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = std::pow(shift + scale * in[i], power);
        }
      },
      kElemGrain);
}

void power_backward(std::size_t count, const float* in, const float* out_grad,
                    float* in_grad, float power, float scale, float shift) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        // dy/dx = power·scale·(shift + scale·x)^(power−1)
        for (std::size_t i = lo; i < hi; ++i) {
          in_grad[i] = out_grad[i] * power * scale *
                       std::pow(shift + scale * in[i], power - 1.0f);
        }
      },
      kElemGrain);
}

void lrn_forward(const float* in, int channels, int height, int width,
                 int local_size, float alpha, float beta, float k, float* scale,
                 float* out) {
  const int spatial = height * width;
  const int half = local_size / 2;
  const float alpha_over_n = alpha / static_cast<float>(local_size);
  // Partition over pixels: each (c, i) output is written by the chunk
  // owning pixel i, all channels — disjoint and order-free.
  glp::parallel_for(
      0, static_cast<std::size_t>(spatial),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          for (int c = 0; c < channels; ++c) {
            const int c0 = std::max(c - half, 0);
            const int c1 = std::min(c + half, channels - 1);
            float acc = 0.0f;
            for (int cc = c0; cc <= c1; ++cc) {
              const float v = in[static_cast<std::size_t>(cc) * spatial + i];
              acc += v * v;
            }
            const float s = k + alpha_over_n * acc;
            scale[static_cast<std::size_t>(c) * spatial + i] = s;
            out[static_cast<std::size_t>(c) * spatial + i] =
                in[static_cast<std::size_t>(c) * spatial + i] * std::pow(s, -beta);
          }
        }
      },
      grain_for(static_cast<std::size_t>(channels) * local_size));
}

void lrn_backward(const float* in, const float* out, const float* scale,
                  const float* out_grad, int channels, int height, int width,
                  int local_size, float alpha, float beta, float* in_grad) {
  const int spatial = height * width;
  const int half = local_size / 2;
  const float alpha_over_n = alpha / static_cast<float>(local_size);
  glp::parallel_for(
      0, static_cast<std::size_t>(spatial),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          for (int c = 0; c < channels; ++c) {
            const std::size_t idx = static_cast<std::size_t>(c) * spatial + i;
            float g = out_grad[idx] * std::pow(scale[idx], -beta);
            // Cross-channel term: −2αβ/n · x_c · Σ_j (dy_j · y_j / s_j)
            const int c0 = std::max(c - half, 0);
            const int c1 = std::min(c + half, channels - 1);
            float cross = 0.0f;
            for (int cc = c0; cc <= c1; ++cc) {
              const std::size_t jdx = static_cast<std::size_t>(cc) * spatial + i;
              cross += out_grad[jdx] * out[jdx] / scale[jdx];
            }
            g -= 2.0f * alpha_over_n * beta * in[idx] * cross;
            in_grad[idx] += g;
          }
        }
      },
      grain_for(static_cast<std::size_t>(channels) * local_size * 2));
}

void softmax_forward(int rows, int classes, const float* in, float* prob) {
  glp::parallel_for(
      0, static_cast<std::size_t>(rows),
      [=](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          const float* x = in + r * classes;
          float* p = prob + r * classes;
          float mx = x[0];
          for (int j = 1; j < classes; ++j) mx = std::max(mx, x[j]);
          float denom = 0.0f;
          for (int j = 0; j < classes; ++j) {
            p[j] = std::exp(x[j] - mx);
            denom += p[j];
          }
          for (int j = 0; j < classes; ++j) p[j] /= denom;
        }
      },
      grain_for(static_cast<std::size_t>(classes) * 4));
}

float softmax_loss(int rows, int classes, const float* prob, const float* labels) {
  double loss = 0.0;
  for (int r = 0; r < rows; ++r) {
    const int label = static_cast<int>(labels[r]);
    GLP_REQUIRE(label >= 0 && label < classes, "label " << label << " out of range");
    const float p = prob[static_cast<std::size_t>(r) * classes + label];
    loss -= std::log(std::max(p, 1e-20f));
  }
  return static_cast<float>(loss / std::max(rows, 1));
}

void softmax_loss_backward(int rows, int classes, const float* prob,
                           const float* labels, float scale, float* in_grad) {
  glp::parallel_for(
      0, static_cast<std::size_t>(rows),
      [=](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          const int label = static_cast<int>(labels[r]);
          float* GLP_RESTRICT g = in_grad + r * classes;
          const float* GLP_RESTRICT p = prob + r * classes;
          for (int j = 0; j < classes; ++j) g[j] = scale * p[j];
          g[label] -= scale;
        }
      },
      grain_for(static_cast<std::size_t>(classes)));
}

void softmax_backward(int rows, int classes, const float* prob,
                      const float* out_grad, float* in_grad) {
  glp::parallel_for(
      0, static_cast<std::size_t>(rows),
      [=](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          const float* p = prob + r * classes;
          const float* dy = out_grad + r * classes;
          float* dx = in_grad + r * classes;
          double dot = 0.0;
          for (int j = 0; j < classes; ++j) dot += static_cast<double>(dy[j]) * p[j];
          for (int j = 0; j < classes; ++j) {
            dx[j] = (dy[j] - static_cast<float>(dot)) * p[j];
          }
        }
      },
      grain_for(static_cast<std::size_t>(classes) * 2));
}

void prelu_forward(int channels, int spatial, const float* in,
                   const float* slopes, float* out) {
  glp::parallel_for(
      0, static_cast<std::size_t>(channels),
      [=](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          const float a = slopes[c];
          const float* GLP_RESTRICT x = in + c * spatial;
          float* GLP_RESTRICT y = out + c * spatial;
          for (int i = 0; i < spatial; ++i) y[i] = x[i] > 0.0f ? x[i] : a * x[i];
        }
      },
      grain_for(static_cast<std::size_t>(spatial)));
}

void prelu_backward(int channels, int spatial, const float* in,
                    const float* out_grad, const float* slopes, float* in_grad,
                    float* slope_grad) {
  // Per-channel slope gradients accumulate entirely inside one chunk, so
  // the reduction order is the serial one regardless of worker count.
  glp::parallel_for(
      0, static_cast<std::size_t>(channels),
      [=](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          const float a = slopes[c];
          const float* GLP_RESTRICT x = in + c * spatial;
          const float* GLP_RESTRICT dy = out_grad + c * spatial;
          float* GLP_RESTRICT dx = in_grad + c * spatial;
          float acc = 0.0f;
          for (int i = 0; i < spatial; ++i) {
            dx[i] = dy[i] * (x[i] > 0.0f ? 1.0f : a);
            if (x[i] <= 0.0f) acc += dy[i] * x[i];
          }
          slope_grad[c] += acc;
        }
      },
      grain_for(static_cast<std::size_t>(spatial) * 2));
}

void channel_mean(int num, int channels, int spatial, const float* in,
                  float* mean) {
  const double norm = 1.0 / (static_cast<double>(num) * spatial);
  // Channel c's statistic is reduced wholly within one chunk in sample
  // order — identical to the serial reduction.
  glp::parallel_for(
      0, static_cast<std::size_t>(channels),
      [=](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          double acc = 0.0;
          for (int n = 0; n < num; ++n) {
            const float* x =
                in + (static_cast<std::size_t>(n) * channels + c) * spatial;
            for (int i = 0; i < spatial; ++i) acc += x[i];
          }
          mean[c] = static_cast<float>(acc * norm);
        }
      },
      grain_for(static_cast<std::size_t>(num) * spatial));
}

void channel_variance(int num, int channels, int spatial, const float* in,
                      const float* mean, float* variance) {
  const double norm = 1.0 / (static_cast<double>(num) * spatial);
  glp::parallel_for(
      0, static_cast<std::size_t>(channels),
      [=](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          double acc = 0.0;
          for (int n = 0; n < num; ++n) {
            const float* x =
                in + (static_cast<std::size_t>(n) * channels + c) * spatial;
            for (int i = 0; i < spatial; ++i) {
              const double d = static_cast<double>(x[i]) - mean[c];
              acc += d * d;
            }
          }
          variance[c] = static_cast<float>(acc * norm);
        }
      },
      grain_for(static_cast<std::size_t>(num) * spatial * 2));
}

void batch_norm_forward(int num, int channels, int spatial, const float* in,
                        const float* mean, const float* variance, float eps,
                        float* out) {
  // One (n, c) plane per item: disjoint writes, per-element math.
  const std::size_t planes =
      static_cast<std::size_t>(num) * static_cast<std::size_t>(channels);
  glp::parallel_for(
      0, planes,
      [=](std::size_t p0, std::size_t p1) {
        for (std::size_t pl = p0; pl < p1; ++pl) {
          const int c = static_cast<int>(pl % channels);
          const float inv_std = 1.0f / std::sqrt(variance[c] + eps);
          const float mu = mean[c];
          const std::size_t off = pl * spatial;
          const float* GLP_RESTRICT x = in + off;
          float* GLP_RESTRICT y = out + off;
          for (int i = 0; i < spatial; ++i) y[i] = (x[i] - mu) * inv_std;
        }
      },
      grain_for(static_cast<std::size_t>(spatial)));
}

void batch_norm_backward(int num, int channels, int spatial, const float* in,
                         const float* out_grad, const float* mean,
                         const float* variance, float eps, float* in_grad) {
  const double m = static_cast<double>(num) * spatial;
  // Per-channel: both reduction passes stay inside one chunk, keeping
  // the serial accumulation order.
  glp::parallel_for(
      0, static_cast<std::size_t>(channels),
      [=](std::size_t cc0, std::size_t cc1) {
        for (std::size_t c = cc0; c < cc1; ++c) {
          const double inv_std =
              1.0 / std::sqrt(static_cast<double>(variance[c]) + eps);
          // Accumulate Σ dy and Σ dy·x̂ over the channel.
          double sum_dy = 0.0, sum_dy_xhat = 0.0;
          for (int n = 0; n < num; ++n) {
            const std::size_t off =
                (static_cast<std::size_t>(n) * channels + c) * spatial;
            for (int i = 0; i < spatial; ++i) {
              const double xhat = (in[off + i] - mean[c]) * inv_std;
              sum_dy += out_grad[off + i];
              sum_dy_xhat += out_grad[off + i] * xhat;
            }
          }
          for (int n = 0; n < num; ++n) {
            const std::size_t off =
                (static_cast<std::size_t>(n) * channels + c) * spatial;
            for (int i = 0; i < spatial; ++i) {
              const double xhat = (in[off + i] - mean[c]) * inv_std;
              in_grad[off + i] += static_cast<float>(
                  inv_std *
                  (out_grad[off + i] - sum_dy / m - xhat * sum_dy_xhat / m));
            }
          }
        }
      },
      grain_for(static_cast<std::size_t>(num) * spatial * 4));
}

float accuracy(int rows, int classes, const float* prob, const float* labels) {
  int hits = 0;
  for (int r = 0; r < rows; ++r) {
    const float* p = prob + static_cast<std::size_t>(r) * classes;
    int arg = 0;
    for (int j = 1; j < classes; ++j) {
      if (p[j] > p[arg]) arg = j;
    }
    if (arg == static_cast<int>(labels[r])) ++hits;
  }
  return rows > 0 ? static_cast<float>(hits) / static_cast<float>(rows) : 0.0f;
}

void dropout_forward(std::size_t count, const float* in, const float* mask,
                     float scale, float* out) {
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        const float* GLP_RESTRICT x = in;
        const float* GLP_RESTRICT ms = mask;
        float* GLP_RESTRICT y = out;
        for (std::size_t i = lo; i < hi; ++i) y[i] = x[i] * ms[i] * scale;
      },
      kElemGrain);
}

void reduce_lanes(int lanes, std::size_t count, const float* src, float* dst) {
  // Lanes are summed in ascending order per element; partitioning over
  // elements keeps that order while spreading the bandwidth.
  glp::parallel_for(
      0, count,
      [=](std::size_t lo, std::size_t hi) {
        for (int lane = 0; lane < lanes; ++lane) {
          const float* GLP_RESTRICT s = src + static_cast<std::size_t>(lane) * count;
          float* GLP_RESTRICT d = dst;
          for (std::size_t i = lo; i < hi; ++i) d[i] += s[i];
        }
      },
      kElemGrain);
}

double sum(std::size_t count, const float* x) {
  double acc = 0.0;
  for (std::size_t i = 0; i < count; ++i) acc += x[i];
  return acc;
}

double squared_distance(std::size_t count, const float* x, const float* y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double d = static_cast<double>(x[i]) - y[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace kern::cpu
