#include "kernels/cpu_math.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace kern::cpu {

namespace {
// Below this many multiply-adds a parallel dispatch costs more than it saves.
constexpr std::size_t kGemmParallelThreshold = 1u << 18;
}  // namespace

void gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta, float* c,
          int ldc) {
  GLP_REQUIRE(m >= 0 && n >= 0 && k >= 0, "gemm dims must be non-negative");

  auto row_range = [&](std::size_t i0, std::size_t i1) {
    // Scale / clear the C rows in this partition.
    for (std::size_t i = i0; i < i1; ++i) {
      float* crow = c + i * static_cast<std::size_t>(ldc);
      if (beta == 0.0f) {
        std::fill(crow, crow + n, 0.0f);
      } else if (beta != 1.0f) {
        for (int j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    if (!trans_a && !trans_b) {
      // C[i,j] += alpha * A[i,p] * B[p,j] — ikj order, contiguous B rows.
      for (std::size_t i = i0; i < i1; ++i) {
        const float* arow = a + i * static_cast<std::size_t>(lda);
        float* crow = c + i * static_cast<std::size_t>(ldc);
        for (int p = 0; p < k; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.0f) continue;
          const float* brow = b + static_cast<std::size_t>(p) * ldb;
          for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    } else if (!trans_a && trans_b) {
      // C[i,j] += alpha * A[i,p] * B[j,p] — dot products over contiguous rows.
      for (std::size_t i = i0; i < i1; ++i) {
        const float* arow = a + i * static_cast<std::size_t>(lda);
        float* crow = c + i * static_cast<std::size_t>(ldc);
        for (int j = 0; j < n; ++j) {
          const float* brow = b + static_cast<std::size_t>(j) * ldb;
          float acc = 0.0f;
          for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
          crow[j] += alpha * acc;
        }
      }
    } else if (trans_a && !trans_b) {
      // C[i,j] += alpha * A[p,i] * B[p,j]
      for (int p = 0; p < k; ++p) {
        const float* arow = a + static_cast<std::size_t>(p) * lda;
        const float* brow = b + static_cast<std::size_t>(p) * ldb;
        for (std::size_t i = i0; i < i1; ++i) {
          const float av = alpha * arow[i];
          if (av == 0.0f) continue;
          float* crow = c + i * static_cast<std::size_t>(ldc);
          for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    } else {
      // C[i,j] += alpha * A[p,i] * B[j,p]
      for (std::size_t i = i0; i < i1; ++i) {
        float* crow = c + i * static_cast<std::size_t>(ldc);
        for (int j = 0; j < n; ++j) {
          const float* brow = b + static_cast<std::size_t>(j) * ldb;
          float acc = 0.0f;
          for (int p = 0; p < k; ++p) {
            acc += a[static_cast<std::size_t>(p) * lda + i] * brow[p];
          }
          crow[j] += alpha * acc;
        }
      }
    }
  };

  const std::size_t work = static_cast<std::size_t>(m) * static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(std::max(k, 1));
  if (work >= kGemmParallelThreshold && m > 1) {
    glp::parallel_for(0, static_cast<std::size_t>(m), row_range, /*grain=*/1);
  } else {
    row_range(0, static_cast<std::size_t>(m));
  }
}

void axpy(std::size_t count, float alpha, const float* x, float* y) {
  for (std::size_t i = 0; i < count; ++i) y[i] += alpha * x[i];
}

void scal(std::size_t count, float alpha, float* x) {
  for (std::size_t i = 0; i < count; ++i) x[i] *= alpha;
}

void fill(std::size_t count, float value, float* x) {
  std::fill(x, x + count, value);
}

int conv_out_size(int in_size, int kernel, int pad, int stride) {
  return (in_size + 2 * pad - kernel) / stride + 1;
}

void im2col(const float* data_im, int channels, int height, int width,
            int kernel_h, int kernel_w, int pad_h, int pad_w, int stride_h,
            int stride_w, float* data_col) {
  const int out_h = conv_out_size(height, kernel_h, pad_h, stride_h);
  const int out_w = conv_out_size(width, kernel_w, pad_w, stride_w);
  const int col_rows = channels * kernel_h * kernel_w;
  for (int row = 0; row < col_rows; ++row) {
    const int c = row / (kernel_h * kernel_w);
    const int kh = (row / kernel_w) % kernel_h;
    const int kw = row % kernel_w;
    float* col_ptr = data_col + static_cast<std::size_t>(row) * out_h * out_w;
    const float* im_ptr = data_im + static_cast<std::size_t>(c) * height * width;
    for (int oh = 0; oh < out_h; ++oh) {
      const int ih = oh * stride_h - pad_h + kh;
      if (ih < 0 || ih >= height) {
        std::fill(col_ptr, col_ptr + out_w, 0.0f);
        col_ptr += out_w;
        continue;
      }
      for (int ow = 0; ow < out_w; ++ow) {
        const int iw = ow * stride_w - pad_w + kw;
        *col_ptr++ = (iw >= 0 && iw < width)
                         ? im_ptr[static_cast<std::size_t>(ih) * width + iw]
                         : 0.0f;
      }
    }
  }
}

void col2im(const float* data_col, int channels, int height, int width,
            int kernel_h, int kernel_w, int pad_h, int pad_w, int stride_h,
            int stride_w, float* data_im) {
  const int out_h = conv_out_size(height, kernel_h, pad_h, stride_h);
  const int out_w = conv_out_size(width, kernel_w, pad_w, stride_w);
  const int col_rows = channels * kernel_h * kernel_w;
  for (int row = 0; row < col_rows; ++row) {
    const int c = row / (kernel_h * kernel_w);
    const int kh = (row / kernel_w) % kernel_h;
    const int kw = row % kernel_w;
    const float* col_ptr = data_col + static_cast<std::size_t>(row) * out_h * out_w;
    float* im_ptr = data_im + static_cast<std::size_t>(c) * height * width;
    for (int oh = 0; oh < out_h; ++oh) {
      const int ih = oh * stride_h - pad_h + kh;
      if (ih < 0 || ih >= height) {
        col_ptr += out_w;
        continue;
      }
      for (int ow = 0; ow < out_w; ++ow) {
        const int iw = ow * stride_w - pad_w + kw;
        const float v = *col_ptr++;
        if (iw >= 0 && iw < width) {
          im_ptr[static_cast<std::size_t>(ih) * width + iw] += v;
        }
      }
    }
  }
}

void add_bias(int channels, int spatial, const float* bias, float* out) {
  for (int c = 0; c < channels; ++c) {
    float* row = out + static_cast<std::size_t>(c) * spatial;
    const float b = bias[c];
    for (int i = 0; i < spatial; ++i) row[i] += b;
  }
}

void max_pool_forward(const float* in, int channels, int height, int width,
                      int kernel, int stride, int pad, int out_h, int out_w,
                      float* out, int* mask) {
  for (int c = 0; c < channels; ++c) {
    const float* im = in + static_cast<std::size_t>(c) * height * width;
    float* o = out + static_cast<std::size_t>(c) * out_h * out_w;
    int* m = mask == nullptr ? nullptr : mask + static_cast<std::size_t>(c) * out_h * out_w;
    for (int oh = 0; oh < out_h; ++oh) {
      for (int ow = 0; ow < out_w; ++ow) {
        const int h0 = std::max(oh * stride - pad, 0);
        const int w0 = std::max(ow * stride - pad, 0);
        const int h1 = std::min(oh * stride - pad + kernel, height);
        const int w1 = std::min(ow * stride - pad + kernel, width);
        float best = -std::numeric_limits<float>::infinity();
        int best_idx = h0 * width + w0;
        for (int h = h0; h < h1; ++h) {
          for (int w = w0; w < w1; ++w) {
            const float v = im[static_cast<std::size_t>(h) * width + w];
            if (v > best) {
              best = v;
              best_idx = h * width + w;
            }
          }
        }
        o[static_cast<std::size_t>(oh) * out_w + ow] = best;
        if (m != nullptr) m[static_cast<std::size_t>(oh) * out_w + ow] = best_idx;
      }
    }
  }
}

void max_pool_backward(const float* out_grad, const int* mask, int channels,
                       int out_h, int out_w, int height, int width,
                       float* in_grad) {
  for (int c = 0; c < channels; ++c) {
    const float* og = out_grad + static_cast<std::size_t>(c) * out_h * out_w;
    const int* m = mask + static_cast<std::size_t>(c) * out_h * out_w;
    float* ig = in_grad + static_cast<std::size_t>(c) * height * width;
    for (int i = 0; i < out_h * out_w; ++i) {
      ig[m[i]] += og[i];
    }
  }
}

void ave_pool_forward(const float* in, int channels, int height, int width,
                      int kernel, int stride, int pad, int out_h, int out_w,
                      float* out) {
  for (int c = 0; c < channels; ++c) {
    const float* im = in + static_cast<std::size_t>(c) * height * width;
    float* o = out + static_cast<std::size_t>(c) * out_h * out_w;
    for (int oh = 0; oh < out_h; ++oh) {
      for (int ow = 0; ow < out_w; ++ow) {
        const int h0 = std::max(oh * stride - pad, 0);
        const int w0 = std::max(ow * stride - pad, 0);
        const int h1 = std::min(oh * stride - pad + kernel, height);
        const int w1 = std::min(ow * stride - pad + kernel, width);
        // Caffe divides by the *padded* window size.
        const int pool_size = (std::min(oh * stride - pad + kernel, height + pad) -
                               std::max(oh * stride - pad, -pad)) *
                              (std::min(ow * stride - pad + kernel, width + pad) -
                               std::max(ow * stride - pad, -pad));
        float acc = 0.0f;
        for (int h = h0; h < h1; ++h) {
          for (int w = w0; w < w1; ++w) {
            acc += im[static_cast<std::size_t>(h) * width + w];
          }
        }
        o[static_cast<std::size_t>(oh) * out_w + ow] =
            acc / static_cast<float>(pool_size);
      }
    }
  }
}

void ave_pool_backward(const float* out_grad, int channels, int height,
                       int width, int kernel, int stride, int pad, int out_h,
                       int out_w, float* in_grad) {
  for (int c = 0; c < channels; ++c) {
    const float* og = out_grad + static_cast<std::size_t>(c) * out_h * out_w;
    float* ig = in_grad + static_cast<std::size_t>(c) * height * width;
    for (int oh = 0; oh < out_h; ++oh) {
      for (int ow = 0; ow < out_w; ++ow) {
        const int h0 = std::max(oh * stride - pad, 0);
        const int w0 = std::max(ow * stride - pad, 0);
        const int h1 = std::min(oh * stride - pad + kernel, height);
        const int w1 = std::min(ow * stride - pad + kernel, width);
        const int pool_size = (std::min(oh * stride - pad + kernel, height + pad) -
                               std::max(oh * stride - pad, -pad)) *
                              (std::min(ow * stride - pad + kernel, width + pad) -
                               std::max(ow * stride - pad, -pad));
        const float g =
            og[static_cast<std::size_t>(oh) * out_w + ow] / static_cast<float>(pool_size);
        for (int h = h0; h < h1; ++h) {
          for (int w = w0; w < w1; ++w) {
            ig[static_cast<std::size_t>(h) * width + w] += g;
          }
        }
      }
    }
  }
}

void relu_forward(std::size_t count, const float* in, float* out,
                  float negative_slope) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = in[i] > 0.0f ? in[i] : negative_slope * in[i];
  }
}

void relu_backward(std::size_t count, const float* in, const float* out_grad,
                   float* in_grad, float negative_slope) {
  for (std::size_t i = 0; i < count; ++i) {
    in_grad[i] = out_grad[i] * (in[i] > 0.0f ? 1.0f : negative_slope);
  }
}

void sigmoid_forward(std::size_t count, const float* in, float* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-in[i]));
  }
}

void sigmoid_backward(std::size_t count, const float* out, const float* out_grad,
                      float* in_grad) {
  for (std::size_t i = 0; i < count; ++i) {
    in_grad[i] = out_grad[i] * out[i] * (1.0f - out[i]);
  }
}

void tanh_forward(std::size_t count, const float* in, float* out) {
  for (std::size_t i = 0; i < count; ++i) out[i] = std::tanh(in[i]);
}

void tanh_backward(std::size_t count, const float* out, const float* out_grad,
                   float* in_grad) {
  for (std::size_t i = 0; i < count; ++i) {
    in_grad[i] = out_grad[i] * (1.0f - out[i] * out[i]);
  }
}

void lrn_forward(const float* in, int channels, int height, int width,
                 int local_size, float alpha, float beta, float k, float* scale,
                 float* out) {
  const int spatial = height * width;
  const int half = local_size / 2;
  const float alpha_over_n = alpha / static_cast<float>(local_size);
  for (int i = 0; i < spatial; ++i) {
    for (int c = 0; c < channels; ++c) {
      const int c0 = std::max(c - half, 0);
      const int c1 = std::min(c + half, channels - 1);
      float acc = 0.0f;
      for (int cc = c0; cc <= c1; ++cc) {
        const float v = in[static_cast<std::size_t>(cc) * spatial + i];
        acc += v * v;
      }
      const float s = k + alpha_over_n * acc;
      scale[static_cast<std::size_t>(c) * spatial + i] = s;
      out[static_cast<std::size_t>(c) * spatial + i] =
          in[static_cast<std::size_t>(c) * spatial + i] * std::pow(s, -beta);
    }
  }
}

void lrn_backward(const float* in, const float* out, const float* scale,
                  const float* out_grad, int channels, int height, int width,
                  int local_size, float alpha, float beta, float* in_grad) {
  const int spatial = height * width;
  const int half = local_size / 2;
  const float alpha_over_n = alpha / static_cast<float>(local_size);
  for (int i = 0; i < spatial; ++i) {
    for (int c = 0; c < channels; ++c) {
      const std::size_t idx = static_cast<std::size_t>(c) * spatial + i;
      float g = out_grad[idx] * std::pow(scale[idx], -beta);
      // Cross-channel term: −2αβ/n · x_c · Σ_j (dy_j · y_j / s_j)
      const int c0 = std::max(c - half, 0);
      const int c1 = std::min(c + half, channels - 1);
      float cross = 0.0f;
      for (int cc = c0; cc <= c1; ++cc) {
        const std::size_t jdx = static_cast<std::size_t>(cc) * spatial + i;
        cross += out_grad[jdx] * out[jdx] / scale[jdx];
      }
      g -= 2.0f * alpha_over_n * beta * in[idx] * cross;
      in_grad[idx] += g;
    }
  }
}

void softmax_forward(int rows, int classes, const float* in, float* prob) {
  for (int r = 0; r < rows; ++r) {
    const float* x = in + static_cast<std::size_t>(r) * classes;
    float* p = prob + static_cast<std::size_t>(r) * classes;
    float mx = x[0];
    for (int j = 1; j < classes; ++j) mx = std::max(mx, x[j]);
    float denom = 0.0f;
    for (int j = 0; j < classes; ++j) {
      p[j] = std::exp(x[j] - mx);
      denom += p[j];
    }
    for (int j = 0; j < classes; ++j) p[j] /= denom;
  }
}

float softmax_loss(int rows, int classes, const float* prob, const float* labels) {
  double loss = 0.0;
  for (int r = 0; r < rows; ++r) {
    const int label = static_cast<int>(labels[r]);
    GLP_REQUIRE(label >= 0 && label < classes, "label " << label << " out of range");
    const float p = prob[static_cast<std::size_t>(r) * classes + label];
    loss -= std::log(std::max(p, 1e-20f));
  }
  return static_cast<float>(loss / std::max(rows, 1));
}

void softmax_loss_backward(int rows, int classes, const float* prob,
                           const float* labels, float scale, float* in_grad) {
  for (int r = 0; r < rows; ++r) {
    const int label = static_cast<int>(labels[r]);
    float* g = in_grad + static_cast<std::size_t>(r) * classes;
    const float* p = prob + static_cast<std::size_t>(r) * classes;
    for (int j = 0; j < classes; ++j) g[j] = scale * p[j];
    g[label] -= scale;
  }
}

void softmax_backward(int rows, int classes, const float* prob,
                      const float* out_grad, float* in_grad) {
  for (int r = 0; r < rows; ++r) {
    const float* p = prob + static_cast<std::size_t>(r) * classes;
    const float* dy = out_grad + static_cast<std::size_t>(r) * classes;
    float* dx = in_grad + static_cast<std::size_t>(r) * classes;
    double dot = 0.0;
    for (int j = 0; j < classes; ++j) dot += static_cast<double>(dy[j]) * p[j];
    for (int j = 0; j < classes; ++j) {
      dx[j] = (dy[j] - static_cast<float>(dot)) * p[j];
    }
  }
}

void prelu_forward(int channels, int spatial, const float* in,
                   const float* slopes, float* out) {
  for (int c = 0; c < channels; ++c) {
    const float a = slopes[c];
    const float* x = in + static_cast<std::size_t>(c) * spatial;
    float* y = out + static_cast<std::size_t>(c) * spatial;
    for (int i = 0; i < spatial; ++i) y[i] = x[i] > 0.0f ? x[i] : a * x[i];
  }
}

void prelu_backward(int channels, int spatial, const float* in,
                    const float* out_grad, const float* slopes, float* in_grad,
                    float* slope_grad) {
  for (int c = 0; c < channels; ++c) {
    const float a = slopes[c];
    const float* x = in + static_cast<std::size_t>(c) * spatial;
    const float* dy = out_grad + static_cast<std::size_t>(c) * spatial;
    float* dx = in_grad + static_cast<std::size_t>(c) * spatial;
    float acc = 0.0f;
    for (int i = 0; i < spatial; ++i) {
      dx[i] = dy[i] * (x[i] > 0.0f ? 1.0f : a);
      if (x[i] <= 0.0f) acc += dy[i] * x[i];
    }
    slope_grad[c] += acc;
  }
}

void channel_mean(int num, int channels, int spatial, const float* in,
                  float* mean) {
  const double norm = 1.0 / (static_cast<double>(num) * spatial);
  for (int c = 0; c < channels; ++c) {
    double acc = 0.0;
    for (int n = 0; n < num; ++n) {
      const float* x = in + (static_cast<std::size_t>(n) * channels + c) * spatial;
      for (int i = 0; i < spatial; ++i) acc += x[i];
    }
    mean[c] = static_cast<float>(acc * norm);
  }
}

void channel_variance(int num, int channels, int spatial, const float* in,
                      const float* mean, float* variance) {
  const double norm = 1.0 / (static_cast<double>(num) * spatial);
  for (int c = 0; c < channels; ++c) {
    double acc = 0.0;
    for (int n = 0; n < num; ++n) {
      const float* x = in + (static_cast<std::size_t>(n) * channels + c) * spatial;
      for (int i = 0; i < spatial; ++i) {
        const double d = static_cast<double>(x[i]) - mean[c];
        acc += d * d;
      }
    }
    variance[c] = static_cast<float>(acc * norm);
  }
}

void batch_norm_forward(int num, int channels, int spatial, const float* in,
                        const float* mean, const float* variance, float eps,
                        float* out) {
  for (int n = 0; n < num; ++n) {
    for (int c = 0; c < channels; ++c) {
      const float inv_std = 1.0f / std::sqrt(variance[c] + eps);
      const std::size_t off = (static_cast<std::size_t>(n) * channels + c) * spatial;
      for (int i = 0; i < spatial; ++i) {
        out[off + i] = (in[off + i] - mean[c]) * inv_std;
      }
    }
  }
}

void batch_norm_backward(int num, int channels, int spatial, const float* in,
                         const float* out_grad, const float* mean,
                         const float* variance, float eps, float* in_grad) {
  const double m = static_cast<double>(num) * spatial;
  for (int c = 0; c < channels; ++c) {
    const double inv_std = 1.0 / std::sqrt(static_cast<double>(variance[c]) + eps);
    // Accumulate Σ dy and Σ dy·x̂ over the channel.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int n = 0; n < num; ++n) {
      const std::size_t off = (static_cast<std::size_t>(n) * channels + c) * spatial;
      for (int i = 0; i < spatial; ++i) {
        const double xhat = (in[off + i] - mean[c]) * inv_std;
        sum_dy += out_grad[off + i];
        sum_dy_xhat += out_grad[off + i] * xhat;
      }
    }
    for (int n = 0; n < num; ++n) {
      const std::size_t off = (static_cast<std::size_t>(n) * channels + c) * spatial;
      for (int i = 0; i < spatial; ++i) {
        const double xhat = (in[off + i] - mean[c]) * inv_std;
        in_grad[off + i] += static_cast<float>(
            inv_std * (out_grad[off + i] - sum_dy / m - xhat * sum_dy_xhat / m));
      }
    }
  }
}

float accuracy(int rows, int classes, const float* prob, const float* labels) {
  int hits = 0;
  for (int r = 0; r < rows; ++r) {
    const float* p = prob + static_cast<std::size_t>(r) * classes;
    int arg = 0;
    for (int j = 1; j < classes; ++j) {
      if (p[j] > p[arg]) arg = j;
    }
    if (arg == static_cast<int>(labels[r])) ++hits;
  }
  return rows > 0 ? static_cast<float>(hits) / static_cast<float>(rows) : 0.0f;
}

void dropout_forward(std::size_t count, const float* in, const float* mask,
                     float scale, float* out) {
  for (std::size_t i = 0; i < count; ++i) out[i] = in[i] * mask[i] * scale;
}

void reduce_lanes(int lanes, std::size_t count, const float* src, float* dst) {
  for (int lane = 0; lane < lanes; ++lane) {
    const float* s = src + static_cast<std::size_t>(lane) * count;
    for (std::size_t i = 0; i < count; ++i) dst[i] += s[i];
  }
}

double sum(std::size_t count, const float* x) {
  double acc = 0.0;
  for (std::size_t i = 0; i < count; ++i) acc += x[i];
  return acc;
}

double squared_distance(std::size_t count, const float* x, const float* y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double d = static_cast<double>(x[i]) - y[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace kern::cpu
