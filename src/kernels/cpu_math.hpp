#pragma once
// Host float implementations backing the simulated kernels. Pure
// functions over raw pointers; every routine writes a deterministic
// result (parallelism, where used, partitions outputs disjointly).
// All matrices are row-major.

#include <cstddef>

namespace kern::cpu {

/// C = alpha * op(A)[M x K] * op(B)[K x N] + beta * C[M x N]
void gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta, float* c,
          int ldc);

/// y = alpha * x + y
void axpy(std::size_t count, float alpha, const float* x, float* y);
/// x *= alpha
void scal(std::size_t count, float alpha, float* x);
/// x[i] = value
void fill(std::size_t count, float value, float* x);

/// Caffe-style im2col for one image: input [C, H, W] →
/// columns [C*kh*kw, out_h*out_w].
void im2col(const float* data_im, int channels, int height, int width,
            int kernel_h, int kernel_w, int pad_h, int pad_w, int stride_h,
            int stride_w, float* data_col);

/// Inverse scatter-add of im2col (gradient path). data_im must be
/// pre-zeroed (or hold a partial sum to accumulate into).
void col2im(const float* data_col, int channels, int height, int width,
            int kernel_h, int kernel_w, int pad_h, int pad_w, int stride_h,
            int stride_w, float* data_im);

int conv_out_size(int in_size, int kernel, int pad, int stride);

/// out[c, i] += bias[c] for an output laid out as [channels, spatial].
void add_bias(int channels, int spatial, const float* bias, float* out);

// --- pooling (one image, [C, H, W]) --------------------------------------
void max_pool_forward(const float* in, int channels, int height, int width,
                      int kernel, int stride, int pad, int out_h, int out_w,
                      float* out, int* mask);
/// Accumulates into in_grad ([channels, height, width], pre-zeroed or a
/// partial sum) using the forward mask of plane-local argmax indices.
void max_pool_backward(const float* out_grad, const int* mask, int channels,
                       int out_h, int out_w, int height, int width,
                       float* in_grad);
void ave_pool_forward(const float* in, int channels, int height, int width,
                      int kernel, int stride, int pad, int out_h, int out_w,
                      float* out);
void ave_pool_backward(const float* out_grad, int channels, int height,
                       int width, int kernel, int stride, int pad, int out_h,
                       int out_w, float* in_grad);

// --- elementwise activations ---------------------------------------------
void relu_forward(std::size_t count, const float* in, float* out,
                  float negative_slope);
void relu_backward(std::size_t count, const float* in, const float* out_grad,
                   float* in_grad, float negative_slope);
void sigmoid_forward(std::size_t count, const float* in, float* out);
void sigmoid_backward(std::size_t count, const float* out, const float* out_grad,
                      float* in_grad);
void tanh_forward(std::size_t count, const float* in, float* out);
void tanh_backward(std::size_t count, const float* out, const float* out_grad,
                   float* in_grad);

// --- elementwise maps (shared by AbsVal/Exp/Power layers) -----------------
/// out = |in|
void abs_forward(std::size_t count, const float* in, float* out);
/// in_grad = sign(in) · out_grad (sign(0) = +1, matching |x| forward).
void abs_backward(std::size_t count, const float* in, const float* out_grad,
                  float* in_grad);
/// out = exp(in)
void exp_forward(std::size_t count, const float* in, float* out);
/// out = a · b elementwise
void mul(std::size_t count, const float* a, const float* b, float* out);
/// out = (shift + scale·in)^power
void power_forward(std::size_t count, const float* in, float* out, float power,
                   float scale, float shift);
/// in_grad = out_grad · power·scale·(shift + scale·in)^(power−1)
void power_backward(std::size_t count, const float* in, const float* out_grad,
                    float* in_grad, float power, float scale, float shift);

// --- LRN (cross-channel, one image [C, H, W]) -----------------------------
void lrn_forward(const float* in, int channels, int height, int width,
                 int local_size, float alpha, float beta, float k, float* scale,
                 float* out);
void lrn_backward(const float* in, const float* out, const float* scale,
                  const float* out_grad, int channels, int height, int width,
                  int local_size, float alpha, float beta, float* in_grad);

// --- softmax / losses (whole batch) ----------------------------------------
/// prob[n, :] = softmax(in[n, :]) over `classes`, independently per row.
void softmax_forward(int rows, int classes, const float* in, float* prob);
/// Cross-entropy loss of softmax probabilities vs integer labels;
/// returns the mean loss over rows.
float softmax_loss(int rows, int classes, const float* prob, const float* labels);
/// d(in) for softmax+NLL: (prob − one_hot(label)) * scale.
void softmax_loss_backward(int rows, int classes, const float* prob,
                           const float* labels, float scale, float* in_grad);

/// d(in) for a plain softmax: dx_i = (dy_i − Σ_j dy_j·y_j) · y_i per row.
void softmax_backward(int rows, int classes, const float* prob,
                      const float* out_grad, float* in_grad);

/// Fraction of rows whose argmax equals the label.
float accuracy(int rows, int classes, const float* prob, const float* labels);

// --- PReLU (channel-shared negative slopes) ---------------------------------
/// out = x > 0 ? x : a[c]·x over a [channels, spatial] map.
void prelu_forward(int channels, int spatial, const float* in,
                   const float* slopes, float* out);
/// in_grad = dy·(x>0 ? 1 : a[c]); slope_grad[c] += Σ dy·x·(x≤0).
void prelu_backward(int channels, int spatial, const float* in,
                    const float* out_grad, const float* slopes, float* in_grad,
                    float* slope_grad);

// --- batch statistics (per channel over N and spatial) ------------------------
void channel_mean(int num, int channels, int spatial, const float* in,
                  float* mean);
void channel_variance(int num, int channels, int spatial, const float* in,
                      const float* mean, float* variance);
/// out = (in − mean[c]) / sqrt(var[c] + eps)
void batch_norm_forward(int num, int channels, int spatial, const float* in,
                        const float* mean, const float* variance, float eps,
                        float* out);
/// Full BN backward through the batch statistics; accumulates into in_grad.
void batch_norm_backward(int num, int channels, int spatial, const float* in,
                         const float* out_grad, const float* mean,
                         const float* variance, float eps, float* in_grad);

// --- dropout ----------------------------------------------------------------
/// out = in * mask * scale (mask is 0/1).
void dropout_forward(std::size_t count, const float* in, const float* mask,
                     float scale, float* out);

// --- reductions --------------------------------------------------------------
/// dst[i] += Σ_lane src[lane*count + i], lanes summed in ascending order
/// (the canonical order that keeps training deterministic).
void reduce_lanes(int lanes, std::size_t count, const float* src, float* dst);

/// Σ x[i]
double sum(std::size_t count, const float* x);
/// Σ (x[i] - y[i])²
double squared_distance(std::size_t count, const float* x, const float* y);

}  // namespace kern::cpu
