#include "kernels/dispatch.hpp"

#include "common/check.hpp"

namespace kern {

FixedStreamDispatcher::FixedStreamDispatcher(scuda::Context& ctx, int num_streams)
    : ctx_(&ctx) {
  GLP_REQUIRE(num_streams >= 1, "stream pool must have at least one stream");
  streams_.reserve(static_cast<std::size_t>(num_streams));
  for (int i = 0; i < num_streams; ++i) {
    streams_.push_back(scuda::Stream::create(ctx));
  }
}

void FixedStreamDispatcher::begin_scope(const std::string&, std::size_t) {
  GLP_REQUIRE(!in_scope_, "dispatch scopes must not nest");
  in_scope_ = true;
}

Lane FixedStreamDispatcher::task_lane(std::size_t index) {
  GLP_REQUIRE(in_scope_, "task_lane outside a scope");
  const int lane = static_cast<int>(index % streams_.size());
  return Lane{streams_[static_cast<std::size_t>(lane)].id(), lane};
}

void FixedStreamDispatcher::end_scope() {
  GLP_REQUIRE(in_scope_, "end_scope without begin_scope");
  in_scope_ = false;
  // Recording an event on the legacy default stream acts as an async
  // barrier: the record completes only after all prior work on every
  // stream, and all later work waits for it.
  ctx_->device().record_event(gpusim::kDefaultStream);
}

}  // namespace kern
