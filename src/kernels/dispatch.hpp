#pragma once
// Kernel-dispatch abstraction. A layer that exposes batch-level
// parallelism (the per-sample loop of Algorithms 1 and 2 in the paper)
// wraps each iteration's kernel chain in a *task* and asks the dispatcher
// which stream to run it on:
//
//   dispatcher.begin_scope("conv1/fwd", batch_size);
//   for n in batch: launch chain on dispatcher.task_lane(n).stream
//   dispatcher.end_scope();   // async barrier on the default stream
//
// Implementations:
//  * SerialDispatcher     — everything on the default stream (naive Caffe).
//  * FixedStreamDispatcher — round-robin over a fixed pool (the manual
//    multi-stream baseline of Figs. 2 and 4).
//  * glp4nn::RuntimeScheduler (src/core) — the paper's contribution:
//    profiles the scope once, sizes the pool with the analytical model,
//    then round-robins.

#include <string>
#include <vector>

#include "simcuda/context.hpp"

namespace kern {

/// Execution mode for kernel host functors.
enum class ComputeMode {
  kNumeric,     ///< run the real math (convergence experiments, tests)
  kTimingOnly,  ///< skip math; only simulate timing (large-scale benches)
};

/// Where a task's kernels should run. `lane` indexes per-concurrency
/// workspaces (two tasks with the same lane are guaranteed to execute in
/// submission order, so they may share scratch buffers).
struct Lane {
  gpusim::StreamId stream = gpusim::kDefaultStream;
  int lane = 0;
};

/// One node of an inter-operator dependency DAG handed to plan_dag().
/// Ops are listed in the order the host will issue them (a topological
/// order by construction); `deps` reference earlier ops only.
struct DagOp {
  /// Dispatch-scope name the op will open ("" for ops that launch their
  /// kernels directly, e.g. whole-batch elementwise layers). Used by
  /// DAG-aware schedulers to plan concurrent scope groups.
  std::string scope;
  std::vector<int> deps;
};

/// Where plan_dag() placed one op. `chain` groups ops that share a home
/// stream (same-chain edges are free — stream FIFO covers them); `slot`
/// and `num_slots` describe the stream-pool slice the op's scope may
/// expand into without colliding with concurrently running scopes.
struct DagPlacement {
  gpusim::StreamId stream = gpusim::kDefaultStream;
  int chain = 0;
  int slot = 0;
  int num_slots = 1;
  /// Scope names of other ops that may execute concurrently with this
  /// one (neither reaches the other in the DAG). Empty for non-scope ops
  /// and under serial planning.
  std::vector<std::string> concurrent_scopes;
};

/// Ambient binding for the DAG op the host is about to issue. Set with
/// bind_dag_op() before the op's launches, cleared with clear_dag_op()
/// after: scoped layers then fork from / join to `home_stream` instead of
/// the device-wide default barrier, and expand into slot-sliced pools.
struct DagOpBinding {
  gpusim::StreamId home_stream = gpusim::kDefaultStream;
  int slot = 0;
  int num_slots = 1;
  /// Scope names of ops that may run concurrently with this one (used by
  /// DAG-aware schedulers to size heterogeneous concurrent pools jointly).
  std::vector<std::string> concurrent_scopes;
};

class KernelDispatcher {
 public:
  virtual ~KernelDispatcher() = default;

  /// Open a parallelizable scope with `num_tasks` independent tasks.
  /// Scopes must not nest.
  virtual void begin_scope(const std::string& scope, std::size_t num_tasks) = 0;

  /// Lane for task `index` (0-based) of the current scope.
  virtual Lane task_lane(std::size_t index) = 0;

  /// Upper bound on distinct lanes this dispatcher will ever return
  /// (valid outside scopes; used to size per-lane workspaces).
  virtual int max_lanes() const = 0;

  /// Close the scope, enforcing that later work (on any stream) observes
  /// all of the scope's kernels. Asynchronous — no host round trip.
  virtual void end_scope() = 0;

  /// True while the *current* scope may have its per-lane kernel chains
  /// coalesced into one merged launch per stream (see
  /// kern::CoalescingDispatcher). Default false; the GLP4NN scheduler
  /// returns true only for steady (already-profiled) scopes — profiling
  /// scopes need their individual kernels visible to the tracker, and the
  /// serial/fixed baselines stay launch-for-launch honest.
  virtual bool scope_coalescable() const { return false; }

  // --- inter-operator DAG scheduling (optional capability) -----------------
  // Dispatchers that cannot overlap independent operators keep the serial
  // defaults: every op lands on the default stream in issue order, which
  // trivially respects every edge (the host issues ops in topological
  // order and the default stream is FIFO).

  /// Plan stream placement for a whole op DAG. Returns one placement per
  /// op. The default places everything on one default-stream chain.
  virtual std::vector<DagPlacement> plan_dag(const std::vector<DagOp>& ops) {
    return std::vector<DagPlacement>(ops.size());
  }

  /// Install the ambient binding for the next issued op. No-op by default.
  virtual void bind_dag_op(const DagOpBinding& binding) { (void)binding; }

  /// Drop the ambient DAG-op binding. No-op by default.
  virtual void clear_dag_op() {}
};

/// Naive-Caffe baseline: a single in-order queue (the default stream).
class SerialDispatcher final : public KernelDispatcher {
 public:
  explicit SerialDispatcher(scuda::Context& ctx) : ctx_(&ctx) {}

  void begin_scope(const std::string&, std::size_t) override {}
  Lane task_lane(std::size_t) override { return Lane{gpusim::kDefaultStream, 0}; }
  int max_lanes() const override { return 1; }
  void end_scope() override {}

 private:
  scuda::Context* ctx_;
};

/// Manual multi-stream baseline with a fixed, user-chosen pool size.
class FixedStreamDispatcher final : public KernelDispatcher {
 public:
  FixedStreamDispatcher(scuda::Context& ctx, int num_streams);

  void begin_scope(const std::string& scope, std::size_t num_tasks) override;
  Lane task_lane(std::size_t index) override;
  int max_lanes() const override { return static_cast<int>(streams_.size()); }
  void end_scope() override;

 private:
  scuda::Context* ctx_;
  std::vector<scuda::Stream> streams_;
  bool in_scope_ = false;
};

}  // namespace kern
