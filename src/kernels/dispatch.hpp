#pragma once
// Kernel-dispatch abstraction. A layer that exposes batch-level
// parallelism (the per-sample loop of Algorithms 1 and 2 in the paper)
// wraps each iteration's kernel chain in a *task* and asks the dispatcher
// which stream to run it on:
//
//   dispatcher.begin_scope("conv1/fwd", batch_size);
//   for n in batch: launch chain on dispatcher.task_lane(n).stream
//   dispatcher.end_scope();   // async barrier on the default stream
//
// Implementations:
//  * SerialDispatcher     — everything on the default stream (naive Caffe).
//  * FixedStreamDispatcher — round-robin over a fixed pool (the manual
//    multi-stream baseline of Figs. 2 and 4).
//  * glp4nn::RuntimeScheduler (src/core) — the paper's contribution:
//    profiles the scope once, sizes the pool with the analytical model,
//    then round-robins.

#include <string>

#include "simcuda/context.hpp"

namespace kern {

/// Execution mode for kernel host functors.
enum class ComputeMode {
  kNumeric,     ///< run the real math (convergence experiments, tests)
  kTimingOnly,  ///< skip math; only simulate timing (large-scale benches)
};

/// Where a task's kernels should run. `lane` indexes per-concurrency
/// workspaces (two tasks with the same lane are guaranteed to execute in
/// submission order, so they may share scratch buffers).
struct Lane {
  gpusim::StreamId stream = gpusim::kDefaultStream;
  int lane = 0;
};

class KernelDispatcher {
 public:
  virtual ~KernelDispatcher() = default;

  /// Open a parallelizable scope with `num_tasks` independent tasks.
  /// Scopes must not nest.
  virtual void begin_scope(const std::string& scope, std::size_t num_tasks) = 0;

  /// Lane for task `index` (0-based) of the current scope.
  virtual Lane task_lane(std::size_t index) = 0;

  /// Upper bound on distinct lanes this dispatcher will ever return
  /// (valid outside scopes; used to size per-lane workspaces).
  virtual int max_lanes() const = 0;

  /// Close the scope, enforcing that later work (on any stream) observes
  /// all of the scope's kernels. Asynchronous — no host round trip.
  virtual void end_scope() = 0;
};

/// Naive-Caffe baseline: a single in-order queue (the default stream).
class SerialDispatcher final : public KernelDispatcher {
 public:
  explicit SerialDispatcher(scuda::Context& ctx) : ctx_(&ctx) {}

  void begin_scope(const std::string&, std::size_t) override {}
  Lane task_lane(std::size_t) override { return Lane{gpusim::kDefaultStream, 0}; }
  int max_lanes() const override { return 1; }
  void end_scope() override {}

 private:
  scuda::Context* ctx_;
};

/// Manual multi-stream baseline with a fixed, user-chosen pool size.
class FixedStreamDispatcher final : public KernelDispatcher {
 public:
  FixedStreamDispatcher(scuda::Context& ctx, int num_streams);

  void begin_scope(const std::string& scope, std::size_t num_tasks) override;
  Lane task_lane(std::size_t index) override;
  int max_lanes() const override { return static_cast<int>(streams_.size()); }
  void end_scope() override;

 private:
  scuda::Context* ctx_;
  std::vector<scuda::Stream> streams_;
  bool in_scope_ = false;
};

}  // namespace kern
