// Packed-panel tiled GEMM with a register-blocked microkernel.
//
// The output C is cut into an MC x NC tile grid; each tile is owned by
// exactly one parallel_for chunk, accumulates its full k extent in a
// local buffer with a fixed ascending k order, and is written back once.
// The tile grid and the traversal order inside a tile depend only on the
// problem shape — never on the worker count — so results are
// bit-identical for any GLP_NUM_THREADS (the convergence-invariance
// contract the differential fuzz harness enforces).
//
// Panels of A (MR-row slivers, k-major) and B (NR-column slivers,
// k-major) are packed per tile into thread-local scratch so the
// microkernel streams both operands contiguously; packing B once per
// (ic, jc) tile instead of once per jc duplicates some work but keeps
// tiles fully independent (no sharing, no barriers, no ordering hazards).

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "kernels/cpu_math.hpp"

#define GLP_RESTRICT __restrict__

namespace kern::cpu {

namespace {

// Register microtile: MR x NR accumulators must fit the vector register
// file with room for the A broadcast and B loads, so the block scales
// with the SIMD width this translation unit is compiled for (see
// GLP4NN_NATIVE_KERNELS in the top-level CMakeLists).
#if defined(__AVX512F__)
constexpr int MR = 8;   // 16 zmm accumulators of 16 lanes
constexpr int NR = 32;
#elif defined(__AVX2__)
constexpr int MR = 4;   // 8 ymm accumulators of 8 lanes
constexpr int NR = 16;
#else
constexpr int MR = 4;   // 8 xmm accumulators of 4 lanes (SSE2 baseline)
constexpr int NR = 8;
#endif
// Cache blocking: MC x KC A-panel (~64 KiB) and KC x NC B-panel
// (~128 KiB) stay L2-resident; MC and NC are multiples of MR and NR so
// packed panels need no edge logic beyond zero padding.
constexpr int MC = 64;
constexpr int NC = 128;
constexpr int KC = 256;

// Below this many multiply-adds a parallel dispatch costs more than it
// saves (same constant the seed used).
constexpr std::size_t kParallelWork = 1u << 18;
// Below this the packing overhead outweighs the microkernel win and the
// plain register-striding loops are faster.
constexpr std::size_t kTiledWork = 1u << 14;

struct Scratch {
  std::vector<float> a;  // MC x KC, MR-sliver packed
  std::vector<float> b;  // KC x NC, NR-sliver packed
  std::vector<float> c;  // MC x NC accumulator, microtile-major
};

Scratch& tls_scratch() {
  thread_local Scratch s;
  if (s.a.empty()) {
    s.a.resize(static_cast<std::size_t>(MC) * KC);
    s.b.resize(static_cast<std::size_t>(KC) * NC);
    s.c.resize(static_cast<std::size_t>(MC) * NC);
  }
  return s;
}

/// ct (MR x NR, row-major) += Apanel(kc x MR) * Bpanel(kc x NR).
inline void micro_kernel(int kc, const float* GLP_RESTRICT ap,
                         const float* GLP_RESTRICT bp,
                         float* GLP_RESTRICT ct) {
  float acc[MR * NR];
  for (int x = 0; x < MR * NR; ++x) acc[x] = ct[x];
  for (int p = 0; p < kc; ++p) {
    const float* a = ap + static_cast<std::size_t>(p) * MR;
    const float* b = bp + static_cast<std::size_t>(p) * NR;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r];
      for (int j = 0; j < NR; ++j) acc[r * NR + j] += av * b[j];
    }
  }
  for (int x = 0; x < MR * NR; ++x) ct[x] = acc[x];
}

/// Pack op(A)[i0 : i0+m_sub, p0 : p0+kc] into MR-row slivers, k-major:
/// ap[ib*kc*MR + p*MR + r] = op(A)(i0+ib*MR+r, p0+p), zero-padded rows.
void pack_a(bool trans_a, const float* GLP_RESTRICT a, int lda, int i0, int p0,
            int m_sub, int kc, float* GLP_RESTRICT ap) {
  const int n_ib = (m_sub + MR - 1) / MR;
  for (int ib = 0; ib < n_ib; ++ib) {
    float* dst = ap + static_cast<std::size_t>(ib) * kc * MR;
    const int mr = std::min(MR, m_sub - ib * MR);
    if (!trans_a) {
      for (int r = 0; r < mr; ++r) {
        const float* src =
            a + static_cast<std::size_t>(i0 + ib * MR + r) * lda + p0;
        for (int p = 0; p < kc; ++p) dst[p * MR + r] = src[p];
      }
    } else {
      for (int p = 0; p < kc; ++p) {
        const float* src =
            a + static_cast<std::size_t>(p0 + p) * lda + i0 + ib * MR;
        for (int r = 0; r < mr; ++r) dst[p * MR + r] = src[r];
      }
    }
    if (mr < MR) {
      for (int p = 0; p < kc; ++p) {
        for (int r = mr; r < MR; ++r) dst[p * MR + r] = 0.0f;
      }
    }
  }
}

/// Pack op(B)[p0 : p0+kc, j0 : j0+n_sub] into NR-column slivers, k-major:
/// bp[jb*kc*NR + p*NR + j] = op(B)(p0+p, j0+jb*NR+j), zero-padded cols.
void pack_b(bool trans_b, const float* GLP_RESTRICT b, int ldb, int p0, int j0,
            int kc, int n_sub, float* GLP_RESTRICT bp) {
  const int n_jb = (n_sub + NR - 1) / NR;
  for (int jb = 0; jb < n_jb; ++jb) {
    float* dst = bp + static_cast<std::size_t>(jb) * kc * NR;
    const int nr = std::min(NR, n_sub - jb * NR);
    if (!trans_b) {
      for (int p = 0; p < kc; ++p) {
        const float* src =
            b + static_cast<std::size_t>(p0 + p) * ldb + j0 + jb * NR;
        int j = 0;
        for (; j < nr; ++j) dst[p * NR + j] = src[j];
        for (; j < NR; ++j) dst[p * NR + j] = 0.0f;
      }
    } else {
      for (int j = 0; j < nr; ++j) {
        const float* src =
            b + static_cast<std::size_t>(j0 + jb * NR + j) * ldb + p0;
        for (int p = 0; p < kc; ++p) dst[p * NR + j] = src[p];
      }
      for (int j = nr; j < NR; ++j) {
        for (int p = 0; p < kc; ++p) dst[p * NR + j] = 0.0f;
      }
    }
  }
}

struct GemmArgs {
  bool trans_a, trans_b;
  int m, n, k;
  float alpha, beta;
  const float* a;
  int lda;
  const float* b;
  int ldb;
  float* c;
  int ldc;
};

/// Compute one MC x NC output tile: accumulate all k slabs in ascending
/// order into the local microtile buffer, then apply alpha/beta once.
void compute_tile(const GemmArgs& g, int ic, int jc) {
  Scratch& s = tls_scratch();
  const int i0 = ic * MC;
  const int j0 = jc * NC;
  const int m_sub = std::min(MC, g.m - i0);
  const int n_sub = std::min(NC, g.n - j0);
  const int n_ib = (m_sub + MR - 1) / MR;
  const int n_jb = (n_sub + NR - 1) / NR;
  float* cl = s.c.data();
  std::fill(cl, cl + static_cast<std::size_t>(n_ib) * n_jb * MR * NR, 0.0f);

  for (int pc = 0; pc < g.k; pc += KC) {
    const int kc = std::min(KC, g.k - pc);
    pack_a(g.trans_a, g.a, g.lda, i0, pc, m_sub, kc, s.a.data());
    pack_b(g.trans_b, g.b, g.ldb, pc, j0, kc, n_sub, s.b.data());
    for (int ib = 0; ib < n_ib; ++ib) {
      for (int jb = 0; jb < n_jb; ++jb) {
        micro_kernel(kc, s.a.data() + static_cast<std::size_t>(ib) * kc * MR,
                     s.b.data() + static_cast<std::size_t>(jb) * kc * NR,
                     cl + static_cast<std::size_t>(ib * n_jb + jb) * MR * NR);
      }
    }
  }

  for (int ib = 0; ib < n_ib; ++ib) {
    const int mr = std::min(MR, m_sub - ib * MR);
    for (int r = 0; r < mr; ++r) {
      float* crow =
          g.c + static_cast<std::size_t>(i0 + ib * MR + r) * g.ldc + j0;
      for (int jb = 0; jb < n_jb; ++jb) {
        const float* acc =
            cl + static_cast<std::size_t>(ib * n_jb + jb) * MR * NR + r * NR;
        const int nr = std::min(NR, n_sub - jb * NR);
        float* cj = crow + jb * NR;
        if (g.beta == 0.0f) {
          // Do not read C: it may be uninitialized (NaN poisoning).
          for (int j = 0; j < nr; ++j) cj[j] = g.alpha * acc[j];
        } else if (g.beta == 1.0f) {
          for (int j = 0; j < nr; ++j) cj[j] += g.alpha * acc[j];
        } else {
          for (int j = 0; j < nr; ++j) {
            cj[j] = g.alpha * acc[j] + g.beta * cj[j];
          }
        }
      }
    }
  }
}

/// Column-partitioned kernel for skinny-m shapes (the m=1 / m=2
/// fully-connected products): computes all rows for columns [j0, j1).
/// Each chunk writes a disjoint column range and accumulates in the
/// fixed k order, so the partition is worker-count invariant.
void small_gemm_cols(const GemmArgs& g, std::size_t j0, std::size_t j1) {
  const int m = g.m, k = g.k;
  const float alpha = g.alpha, beta = g.beta;
  for (int i = 0; i < m; ++i) {
    float* crow = g.c + static_cast<std::size_t>(i) * g.ldc;
    if (beta == 0.0f) {
      std::fill(crow + j0, crow + j1, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = j0; j < j1; ++j) crow[j] *= beta;
    }
  }
  if (!g.trans_b) {
    // C[i, j] += alpha * opA(i, p) * B[p, j]: broadcast-row form over the
    // contiguous column slice of B.
    for (int i = 0; i < m; ++i) {
      float* GLP_RESTRICT crow = g.c + static_cast<std::size_t>(i) * g.ldc;
      for (int p = 0; p < k; ++p) {
        const float av =
            alpha * (g.trans_a ? g.a[static_cast<std::size_t>(p) * g.lda + i]
                               : g.a[static_cast<std::size_t>(i) * g.lda + p]);
        const float* GLP_RESTRICT brow = g.b + static_cast<std::size_t>(p) * g.ldb;
        for (std::size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
      }
    }
  } else {
    // C[i, j] += alpha * opA(i, p) * B[j, p]: dot product per column,
    // split over eight accumulator chains so the add-latency chain is
    // not the bottleneck. The combine order is fixed by the shape alone,
    // so the result is still worker-count invariant.
    for (int i = 0; i < m; ++i) {
      float* crow = g.c + static_cast<std::size_t>(i) * g.ldc;
      for (std::size_t j = j0; j < j1; ++j) {
        const float* GLP_RESTRICT brow = g.b + j * static_cast<std::size_t>(g.ldb);
        float acc;
        if (g.trans_a) {
          acc = 0.0f;
          for (int p = 0; p < k; ++p) {
            acc += g.a[static_cast<std::size_t>(p) * g.lda + i] * brow[p];
          }
        } else {
          const float* GLP_RESTRICT arow =
              g.a + static_cast<std::size_t>(i) * g.lda;
          float lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
          int p = 0;
          for (; p + 8 <= k; p += 8) {
            for (int u = 0; u < 8; ++u) lane[u] += arow[p + u] * brow[p + u];
          }
          float tail = 0.0f;
          for (; p < k; ++p) tail += arow[p] * brow[p];
          acc = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
                ((lane[4] + lane[5]) + (lane[6] + lane[7])) + tail;
        }
        crow[j] += alpha * acc;
      }
    }
  }
}

/// Register-striding fallback for shapes too small (or too skinny) to
/// amortize packing. The seed's loop structure, minus its data-dependent
/// `av == 0` skip: that branch blocked vectorization of the inner loop
/// and made runtime depend on the data.
void small_gemm_rows(const GemmArgs& g, std::size_t i0, std::size_t i1) {
  const int n = g.n, k = g.k;
  const float alpha = g.alpha, beta = g.beta;
  for (std::size_t i = i0; i < i1; ++i) {
    float* crow = g.c + i * static_cast<std::size_t>(g.ldc);
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (int j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (!g.trans_a && !g.trans_b) {
    // C[i,j] += alpha * A[i,p] * B[p,j] — ikj order, contiguous B rows.
    for (std::size_t i = i0; i < i1; ++i) {
      const float* arow = g.a + i * static_cast<std::size_t>(g.lda);
      float* GLP_RESTRICT crow = g.c + i * static_cast<std::size_t>(g.ldc);
      for (int p = 0; p < k; ++p) {
        const float av = alpha * arow[p];
        const float* GLP_RESTRICT brow =
            g.b + static_cast<std::size_t>(p) * g.ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!g.trans_a && g.trans_b) {
    // C[i,j] += alpha * A[i,p] * B[j,p] — dot products over contiguous rows.
    for (std::size_t i = i0; i < i1; ++i) {
      const float* GLP_RESTRICT arow = g.a + i * static_cast<std::size_t>(g.lda);
      float* crow = g.c + i * static_cast<std::size_t>(g.ldc);
      for (int j = 0; j < n; ++j) {
        const float* GLP_RESTRICT brow =
            g.b + static_cast<std::size_t>(j) * g.ldb;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += alpha * acc;
      }
    }
  } else if (g.trans_a && !g.trans_b) {
    // C[i,j] += alpha * A[p,i] * B[p,j]
    for (int p = 0; p < k; ++p) {
      const float* arow = g.a + static_cast<std::size_t>(p) * g.lda;
      const float* GLP_RESTRICT brow = g.b + static_cast<std::size_t>(p) * g.ldb;
      for (std::size_t i = i0; i < i1; ++i) {
        const float av = alpha * arow[i];
        float* GLP_RESTRICT crow = g.c + i * static_cast<std::size_t>(g.ldc);
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {
    // C[i,j] += alpha * A[p,i] * B[j,p]
    for (std::size_t i = i0; i < i1; ++i) {
      float* crow = g.c + i * static_cast<std::size_t>(g.ldc);
      for (int j = 0; j < n; ++j) {
        const float* GLP_RESTRICT brow =
            g.b + static_cast<std::size_t>(j) * g.ldb;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) {
          acc += g.a[static_cast<std::size_t>(p) * g.lda + i] * brow[p];
        }
        crow[j] += alpha * acc;
      }
    }
  }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta, float* c,
          int ldc) {
  GLP_REQUIRE(m >= 0 && n >= 0 && k >= 0, "gemm dims must be non-negative");
  if (m == 0 || n == 0) return;

  if (k == 0 || alpha == 0.0f) {
    // Pure C scale. alpha == 0 short-circuits like the seed did: the
    // product term is dropped outright rather than multiplied in.
    if (beta == 1.0f) return;
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      if (beta == 0.0f) {
        std::fill(crow, crow + n, 0.0f);
      } else {
        for (int j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    return;
  }

  const GemmArgs g{trans_a, trans_b, m,   n, k,   alpha, beta,
                   a,       lda,     b,   ldb, c, ldc};
  const std::size_t work = static_cast<std::size_t>(m) *
                           static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(k);

  if (m < MR && n >= NR) {
    // Skinny-m shapes (m=1 FC rows): the microtile would spend most of
    // its flops on zero padding, so partition the *columns* instead.
    // This is also what lets a 1 x N product use every worker.
    auto col_range = [&](std::size_t c0, std::size_t c1) {
      small_gemm_cols(g, c0, c1);
    };
    if (work >= kParallelWork) {
      const std::size_t per_col =
          static_cast<std::size_t>(m) * static_cast<std::size_t>(k);
      const std::size_t grain = std::max<std::size_t>(
          NR, (std::size_t{1} << 16) / std::max<std::size_t>(1, per_col));
      glp::parallel_for(0, static_cast<std::size_t>(n), col_range, grain);
    } else {
      col_range(0, static_cast<std::size_t>(n));
    }
    return;
  }

  if (n >= NR && k >= 8 && work >= kTiledWork) {
    // Tiled path. Partitioning the MC x NC tile grid covers every shape:
    // a 1 x N fully-connected product becomes a 1 x n_jc grid, so small-m
    // GEMMs parallelize over n instead of being pinned to one thread.
    const int n_ic = (m + MC - 1) / MC;
    const int n_jc = (n + NC - 1) / NC;
    const std::size_t tiles =
        static_cast<std::size_t>(n_ic) * static_cast<std::size_t>(n_jc);
    auto tile_range = [&](std::size_t t0, std::size_t t1) {
      for (std::size_t t = t0; t < t1; ++t) {
        compute_tile(g, static_cast<int>(t / n_jc), static_cast<int>(t % n_jc));
      }
    };
    if (work >= kParallelWork && tiles > 1) {
      glp::parallel_for(0, tiles, tile_range, /*grain=*/1);
    } else {
      tile_range(0, tiles);
    }
    return;
  }

  auto row_range = [&](std::size_t i0, std::size_t i1) {
    small_gemm_rows(g, i0, i1);
  };
  if (work >= kParallelWork && m > 1) {
    // Shape-only grain: chunk boundaries must not depend on worker count.
    const std::size_t per_row =
        static_cast<std::size_t>(n) * static_cast<std::size_t>(k);
    const std::size_t grain = std::max<std::size_t>(1, (1u << 16) / per_row);
    glp::parallel_for(0, static_cast<std::size_t>(m), row_range, grain);
  } else {
    row_range(0, static_cast<std::size_t>(m));
  }
}

}  // namespace kern::cpu
