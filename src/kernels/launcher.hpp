#pragma once
// The handle every kernel wrapper takes: which device, which stream,
// whether to run real math, and a name prefix that scopes kernels to the
// layer that launched them ("conv1/fwd/im2col"). The prefix is how the
// resource tracker and the benchmarks attribute kernels to layers —
// the paper notes offline profilers cannot do this (§1, challenge 1).

#include <functional>
#include <string>
#include <utility>

#include "kernels/dispatch.hpp"
#include "simcuda/context.hpp"

namespace kern {

/// Staging buffer for transparent launch coalescing (the DAG scheduler's
/// elementwise-chain fusion pass). While armed on a Launcher, launch()
/// *stages* each kernel instead of submitting it; the owner then merges
/// the staged entries into one combined launch whose functor runs every
/// staged functor in order. Running the same functors in the same order
/// on the same buffers is bit-identical to the unfused FIFO execution —
/// only the number of simulated launches (and their overhead) changes.
struct FusionStager {
  struct Staged {
    std::string name;
    gpusim::LaunchConfig config;
    gpusim::KernelCost cost;
    gpusim::DeviceEngine::WorkFn work;
  };
  bool armed = false;
  std::vector<Staged> staged;
};

/// Per-stream staging buffer for *lane coalescing* inside a parallel
/// scope (see kern::CoalescingDispatcher). While armed, launch() stages
/// each kernel under its target stream instead of submitting it; at
/// end_scope the owner merges every stream's staged kernels into one
/// combined launch per stream. Each lane's per-sample chain runs the
/// same host functors in the same per-stream order as the unfused
/// execution, so outputs are bit-identical — only the number of
/// simulated launches (and the serial host overhead each one charges)
/// changes. Groups keep first-use order so the flush submits streams in
/// the order the scope first touched them.
struct LaneCoalescer {
  struct Group {
    gpusim::StreamId stream = gpusim::kDefaultStream;
    std::vector<FusionStager::Staged> staged;
  };
  bool armed = false;
  std::vector<Group> groups;

  void stage(gpusim::StreamId stream, FusionStager::Staged s) {
    for (Group& g : groups) {
      if (g.stream == stream) {
        g.staged.push_back(std::move(s));
        return;
      }
    }
    groups.push_back(Group{stream, {}});
    groups.back().staged.push_back(std::move(s));
  }
};

struct Launcher {
  scuda::Context* ctx = nullptr;
  gpusim::StreamId stream = gpusim::kDefaultStream;
  ComputeMode mode = ComputeMode::kNumeric;
  std::string name_prefix;
  /// When set and armed, launches are staged for coalescing instead of
  /// being submitted (see FusionStager).
  FusionStager* fuser = nullptr;
  /// When set and armed (inside a coalescable scope), launches are staged
  /// per target stream and merged at end_scope (see LaneCoalescer).
  /// Checked after `fuser` — DAG elementwise fusion takes precedence.
  LaneCoalescer* coalescer = nullptr;

  Launcher with_stream(gpusim::StreamId s) const {
    Launcher l = *this;
    l.stream = s;
    return l;
  }
  Launcher with_prefix(std::string prefix) const {
    Launcher l = *this;
    l.name_prefix = std::move(prefix);
    return l;
  }

  /// Launch a kernel; `work` is dropped in timing-only mode.
  ///
  /// Fault handling: when the context's injector fails the launch (the
  /// simulated analogue of cudaLaunchKernel returning an error), the
  /// launcher degrades to the serial path — it re-issues on the legacy
  /// default stream. That stream is a two-sided barrier (everything
  /// submitted before it completes first; everything submitted after
  /// waits for it), so the re-routed kernel still executes in global
  /// submission order and numerics stay identical to the fault-free run.
  std::uint64_t launch(const std::string& kernel_name,
                       const gpusim::LaunchConfig& config,
                       const gpusim::KernelCost& cost,
                       gpusim::DeviceEngine::WorkFn work) const {
    const std::string full =
        name_prefix.empty() ? kernel_name : name_prefix + "/" + kernel_name;
    if (fuser != nullptr && fuser->armed) {
      fuser->staged.push_back(
          {full, config, cost,
           mode == ComputeMode::kNumeric ? std::move(work)
                                         : gpusim::DeviceEngine::WorkFn()});
      return 0;  // no correlation id — the merged launch gets one
    }
    if (coalescer != nullptr && coalescer->armed) {
      coalescer->stage(
          stream, {full, config, cost,
                   mode == ComputeMode::kNumeric
                       ? std::move(work)
                       : gpusim::DeviceEngine::WorkFn()});
      return 0;  // no correlation id — the merged launch gets one
    }
    const gpusim::StreamId target =
        ctx->faults().should_fail_launch() ? gpusim::kDefaultStream : stream;
    return ctx->device().launch_kernel(
        target, full, config, cost,
        mode == ComputeMode::kNumeric ? std::move(work)
                                      : gpusim::DeviceEngine::WorkFn());
  }
};

/// ceil-div helper used by every launch-config heuristic.
inline unsigned blocks_for(std::uint64_t work_items, unsigned block_size) {
  return static_cast<unsigned>((work_items + block_size - 1) / block_size);
}

}  // namespace kern
