#include "kernels/nn.hpp"

#include <algorithm>

#include "kernels/cpu_math.hpp"

namespace kern {

using gpusim::Dim3;
using gpusim::KernelCost;
using gpusim::LaunchConfig;

namespace {
LaunchConfig one_thread_per_item(std::uint64_t count, unsigned block, int regs,
                                 std::size_t smem = 0) {
  LaunchConfig cfg;
  cfg.block = Dim3{block, 1, 1};
  cfg.grid = Dim3{std::max(1u, blocks_for(count, block)), 1, 1};
  cfg.regs_per_thread = regs;
  cfg.smem_static_bytes = smem;
  return cfg;
}
}  // namespace

std::uint64_t im2col(const Launcher& launcher, const float* data_im,
                     int channels, int height, int width, int kernel_h,
                     int kernel_w, int pad_h, int pad_w, int stride_h,
                     int stride_w, float* data_col) {
  const int out_h = cpu::conv_out_size(height, kernel_h, pad_h, stride_h);
  const int out_w = cpu::conv_out_size(width, kernel_w, pad_w, stride_w);
  // Caffe's im2col_gpu_kernel: one thread per (channel, output pixel).
  const std::uint64_t threads =
      static_cast<std::uint64_t>(channels) * out_h * out_w;
  const double col_elems = static_cast<double>(threads) * kernel_h * kernel_w;
  KernelCost cost{col_elems * 4.0, col_elems * 8.0};
  return launcher.launch(
      "im2col_gpu_kernel", one_thread_per_item(threads, 256, 33), cost, [=] {
        cpu::im2col(data_im, channels, height, width, kernel_h, kernel_w, pad_h,
                    pad_w, stride_h, stride_w, data_col);
      });
}

std::uint64_t col2im(const Launcher& launcher, const float* data_col,
                     int channels, int height, int width, int kernel_h,
                     int kernel_w, int pad_h, int pad_w, int stride_h,
                     int stride_w, float* data_im) {
  // Caffe's col2im_gpu_kernel: one thread per input element.
  const std::uint64_t threads =
      static_cast<std::uint64_t>(channels) * height * width;
  const double col_elems = static_cast<double>(channels) * kernel_h * kernel_w *
                           cpu::conv_out_size(height, kernel_h, pad_h, stride_h) *
                           cpu::conv_out_size(width, kernel_w, pad_w, stride_w);
  KernelCost cost{col_elems * 6.0, col_elems * 8.0};
  return launcher.launch(
      "col2im_gpu_kernel", one_thread_per_item(threads, 256, 41), cost, [=] {
        cpu::col2im(data_col, channels, height, width, kernel_h, kernel_w, pad_h,
                    pad_w, stride_h, stride_w, data_im);
      });
}

std::uint64_t max_pool_forward(const Launcher& launcher, const float* in,
                               int channels, int height, int width, int kernel,
                               int stride, int pad, int out_h, int out_w,
                               float* out, int* mask) {
  const std::uint64_t threads =
      static_cast<std::uint64_t>(channels) * out_h * out_w;
  const double window = static_cast<double>(kernel) * kernel;
  KernelCost cost{static_cast<double>(threads) * window * 2.0,
                  static_cast<double>(threads) * (window + 2.0) * 4.0};
  return launcher.launch("max_pool_forward_kernel",
                         one_thread_per_item(threads, 256, 28), cost, [=] {
                           cpu::max_pool_forward(in, channels, height, width,
                                                 kernel, stride, pad, out_h,
                                                 out_w, out, mask);
                         });
}

std::uint64_t max_pool_backward(const Launcher& launcher, const float* out_grad,
                                const int* mask, int channels, int out_h,
                                int out_w, int height, int width,
                                float* in_grad) {
  const std::uint64_t threads =
      static_cast<std::uint64_t>(channels) * out_h * out_w;
  KernelCost cost{static_cast<double>(threads) * 2.0,
                  static_cast<double>(threads) * 16.0};
  return launcher.launch("max_pool_backward_kernel",
                         one_thread_per_item(threads, 256, 30), cost, [=] {
                           cpu::max_pool_backward(out_grad, mask, channels, out_h,
                                                  out_w, height, width, in_grad);
                         });
}

std::uint64_t ave_pool_forward(const Launcher& launcher, const float* in,
                               int channels, int height, int width, int kernel,
                               int stride, int pad, int out_h, int out_w,
                               float* out) {
  const std::uint64_t threads =
      static_cast<std::uint64_t>(channels) * out_h * out_w;
  const double window = static_cast<double>(kernel) * kernel;
  KernelCost cost{static_cast<double>(threads) * window,
                  static_cast<double>(threads) * (window + 1.0) * 4.0};
  return launcher.launch("ave_pool_forward_kernel",
                         one_thread_per_item(threads, 256, 26), cost, [=] {
                           cpu::ave_pool_forward(in, channels, height, width,
                                                 kernel, stride, pad, out_h,
                                                 out_w, out);
                         });
}

std::uint64_t ave_pool_backward(const Launcher& launcher, const float* out_grad,
                                int channels, int height, int width, int kernel,
                                int stride, int pad, int out_h, int out_w,
                                float* in_grad) {
  const std::uint64_t threads =
      static_cast<std::uint64_t>(channels) * height * width;
  const double window = static_cast<double>(kernel) * kernel;
  KernelCost cost{static_cast<double>(threads) * window,
                  static_cast<double>(threads) * 12.0};
  return launcher.launch("ave_pool_backward_kernel",
                         one_thread_per_item(threads, 256, 30), cost, [=] {
                           cpu::ave_pool_backward(out_grad, channels, height,
                                                  width, kernel, stride, pad,
                                                  out_h, out_w, in_grad);
                         });
}

std::uint64_t relu_forward(const Launcher& launcher, std::size_t count,
                           const float* in, float* out, float negative_slope) {
  KernelCost cost{static_cast<double>(count),
                  static_cast<double>(count) * 8.0};
  return launcher.launch("relu_forward_kernel",
                         one_thread_per_item(count, 256, 10), cost,
                         [=] { cpu::relu_forward(count, in, out, negative_slope); });
}

std::uint64_t relu_backward(const Launcher& launcher, std::size_t count,
                            const float* in, const float* out_grad,
                            float* in_grad, float negative_slope) {
  KernelCost cost{static_cast<double>(count),
                  static_cast<double>(count) * 12.0};
  return launcher.launch("relu_backward_kernel",
                         one_thread_per_item(count, 256, 12), cost, [=] {
                           cpu::relu_backward(count, in, out_grad, in_grad,
                                              negative_slope);
                         });
}

std::uint64_t sigmoid_forward(const Launcher& launcher, std::size_t count,
                              const float* in, float* out) {
  KernelCost cost{static_cast<double>(count) * 8.0,
                  static_cast<double>(count) * 8.0};
  return launcher.launch("sigmoid_forward_kernel",
                         one_thread_per_item(count, 256, 14), cost,
                         [=] { cpu::sigmoid_forward(count, in, out); });
}

std::uint64_t sigmoid_backward(const Launcher& launcher, std::size_t count,
                               const float* out, const float* out_grad,
                               float* in_grad) {
  KernelCost cost{static_cast<double>(count) * 3.0,
                  static_cast<double>(count) * 12.0};
  return launcher.launch("sigmoid_backward_kernel",
                         one_thread_per_item(count, 256, 14), cost,
                         [=] { cpu::sigmoid_backward(count, out, out_grad, in_grad); });
}

std::uint64_t tanh_forward(const Launcher& launcher, std::size_t count,
                           const float* in, float* out) {
  KernelCost cost{static_cast<double>(count) * 10.0,
                  static_cast<double>(count) * 8.0};
  return launcher.launch("tanh_forward_kernel",
                         one_thread_per_item(count, 256, 14), cost,
                         [=] { cpu::tanh_forward(count, in, out); });
}

std::uint64_t tanh_backward(const Launcher& launcher, std::size_t count,
                            const float* out, const float* out_grad,
                            float* in_grad) {
  KernelCost cost{static_cast<double>(count) * 3.0,
                  static_cast<double>(count) * 12.0};
  return launcher.launch("tanh_backward_kernel",
                         one_thread_per_item(count, 256, 14), cost,
                         [=] { cpu::tanh_backward(count, out, out_grad, in_grad); });
}

std::uint64_t lrn_forward(const Launcher& launcher, const float* in, int num,
                          int channels, int height, int width, int local_size,
                          float alpha, float beta, float k, float* scale,
                          float* out) {
  const std::uint64_t threads =
      static_cast<std::uint64_t>(num) * channels * height * width;
  KernelCost cost{static_cast<double>(threads) * (local_size * 2.0 + 8.0),
                  static_cast<double>(threads) * 16.0};
  const std::size_t plane = static_cast<std::size_t>(channels) * height * width;
  return launcher.launch("lrn_fill_scale_kernel",
                         one_thread_per_item(threads, 256, 42), cost, [=] {
                           for (int n = 0; n < num; ++n) {
                             cpu::lrn_forward(in + n * plane, channels, height,
                                              width, local_size, alpha, beta, k,
                                              scale + n * plane, out + n * plane);
                           }
                         });
}

std::uint64_t lrn_backward(const Launcher& launcher, const float* in,
                           const float* out, const float* scale,
                           const float* out_grad, int num, int channels,
                           int height, int width, int local_size, float alpha,
                           float beta, float* in_grad) {
  const std::uint64_t threads =
      static_cast<std::uint64_t>(num) * channels * height * width;
  KernelCost cost{static_cast<double>(threads) * (local_size * 4.0 + 12.0),
                  static_cast<double>(threads) * 24.0};
  const std::size_t plane = static_cast<std::size_t>(channels) * height * width;
  return launcher.launch("lrn_compute_diff_kernel",
                         one_thread_per_item(threads, 256, 48), cost, [=] {
                           for (int n = 0; n < num; ++n) {
                             cpu::lrn_backward(in + n * plane, out + n * plane,
                                               scale + n * plane,
                                               out_grad + n * plane, channels,
                                               height, width, local_size, alpha,
                                               beta, in_grad + n * plane);
                           }
                         });
}

std::uint64_t softmax_forward(const Launcher& launcher, int rows, int classes,
                              const float* in, float* prob) {
  const std::uint64_t threads = static_cast<std::uint64_t>(rows);
  KernelCost cost{static_cast<double>(rows) * classes * 10.0,
                  static_cast<double>(rows) * classes * 8.0};
  return launcher.launch("softmax_forward_kernel",
                         one_thread_per_item(threads, 128, 32), cost,
                         [=] { cpu::softmax_forward(rows, classes, in, prob); });
}

std::uint64_t softmax_loss(const Launcher& launcher, int rows, int classes,
                           const float* prob, const float* labels,
                           float* loss_out) {
  const std::uint64_t threads = static_cast<std::uint64_t>(rows);
  KernelCost cost{static_cast<double>(rows) * 8.0,
                  static_cast<double>(rows) * 12.0};
  return launcher.launch("softmax_loss_kernel",
                         one_thread_per_item(threads, 128, 24), cost, [=] {
                           *loss_out = cpu::softmax_loss(rows, classes, prob, labels);
                         });
}

std::uint64_t softmax_loss_backward(const Launcher& launcher, int rows,
                                    int classes, const float* prob,
                                    const float* labels, float scale,
                                    float* in_grad) {
  const std::uint64_t threads =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(classes);
  KernelCost cost{static_cast<double>(threads) * 2.0,
                  static_cast<double>(threads) * 12.0};
  return launcher.launch("softmax_loss_backward_kernel",
                         one_thread_per_item(threads, 256, 20), cost, [=] {
                           cpu::softmax_loss_backward(rows, classes, prob, labels,
                                                      scale, in_grad);
                         });
}

std::uint64_t dropout_forward(const Launcher& launcher, std::size_t count,
                              const float* in, const float* mask, float scale,
                              float* out) {
  KernelCost cost{static_cast<double>(count) * 2.0,
                  static_cast<double>(count) * 12.0};
  return launcher.launch("dropout_forward_kernel",
                         one_thread_per_item(count, 256, 16), cost,
                         [=] { cpu::dropout_forward(count, in, mask, scale, out); });
}

std::uint64_t copy_slab(const Launcher& launcher, int rows, int cols,
                        const float* src, int src_stride, float* dst,
                        int dst_stride) {
  const std::uint64_t count =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
  KernelCost cost{0.0, static_cast<double>(count) * 8.0};
  return launcher.launch("copy_slab_kernel", one_thread_per_item(count, 256, 12),
                         cost, [=] {
                           for (int r = 0; r < rows; ++r) {
                             std::copy(src + static_cast<std::size_t>(r) * src_stride,
                                       src + static_cast<std::size_t>(r) * src_stride + cols,
                                       dst + static_cast<std::size_t>(r) * dst_stride);
                           }
                         });
}

std::uint64_t add_slab(const Launcher& launcher, int rows, int cols,
                       const float* src, int src_stride, float* dst,
                       int dst_stride) {
  const std::uint64_t count =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
  KernelCost cost{static_cast<double>(count), static_cast<double>(count) * 12.0};
  return launcher.launch("add_slab_kernel", one_thread_per_item(count, 256, 14),
                         cost, [=] {
                           for (int r = 0; r < rows; ++r) {
                             const float* s = src + static_cast<std::size_t>(r) * src_stride;
                             float* d = dst + static_cast<std::size_t>(r) * dst_stride;
                             for (int c = 0; c < cols; ++c) d[c] += s[c];
                           }
                         });
}

}  // namespace kern
