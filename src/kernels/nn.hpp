#pragma once
// Simulated Caffe-style DNN kernels (im2col and friends). Shapes follow
// Caffe's GPU implementations: im2col launches one thread per column
// element with 33 registers (the exact configuration the paper's
// workflow example quotes in §3.1), pooling/activation kernels launch one
// thread per output element.

#include "kernels/launcher.hpp"

namespace kern {

std::uint64_t im2col(const Launcher& launcher, const float* data_im,
                     int channels, int height, int width, int kernel_h,
                     int kernel_w, int pad_h, int pad_w, int stride_h,
                     int stride_w, float* data_col);

std::uint64_t col2im(const Launcher& launcher, const float* data_col,
                     int channels, int height, int width, int kernel_h,
                     int kernel_w, int pad_h, int pad_w, int stride_h,
                     int stride_w, float* data_im);

std::uint64_t max_pool_forward(const Launcher& launcher, const float* in,
                               int channels, int height, int width, int kernel,
                               int stride, int pad, int out_h, int out_w,
                               float* out, int* mask);
std::uint64_t max_pool_backward(const Launcher& launcher, const float* out_grad,
                                const int* mask, int channels, int out_h,
                                int out_w, int height, int width, float* in_grad);
std::uint64_t ave_pool_forward(const Launcher& launcher, const float* in,
                               int channels, int height, int width, int kernel,
                               int stride, int pad, int out_h, int out_w,
                               float* out);
std::uint64_t ave_pool_backward(const Launcher& launcher, const float* out_grad,
                                int channels, int height, int width, int kernel,
                                int stride, int pad, int out_h, int out_w,
                                float* in_grad);

std::uint64_t relu_forward(const Launcher& launcher, std::size_t count,
                           const float* in, float* out, float negative_slope);
std::uint64_t relu_backward(const Launcher& launcher, std::size_t count,
                            const float* in, const float* out_grad,
                            float* in_grad, float negative_slope);
std::uint64_t sigmoid_forward(const Launcher& launcher, std::size_t count,
                              const float* in, float* out);
std::uint64_t sigmoid_backward(const Launcher& launcher, std::size_t count,
                               const float* out, const float* out_grad,
                               float* in_grad);
std::uint64_t tanh_forward(const Launcher& launcher, std::size_t count,
                           const float* in, float* out);
std::uint64_t tanh_backward(const Launcher& launcher, std::size_t count,
                            const float* out, const float* out_grad,
                            float* in_grad);

std::uint64_t lrn_forward(const Launcher& launcher, const float* in, int num,
                          int channels, int height, int width, int local_size,
                          float alpha, float beta, float k, float* scale,
                          float* out);
std::uint64_t lrn_backward(const Launcher& launcher, const float* in,
                           const float* out, const float* scale,
                           const float* out_grad, int num, int channels,
                           int height, int width, int local_size, float alpha,
                           float beta, float* in_grad);

std::uint64_t softmax_forward(const Launcher& launcher, int rows, int classes,
                              const float* in, float* prob);
/// Writes the mean cross-entropy into *loss_out.
std::uint64_t softmax_loss(const Launcher& launcher, int rows, int classes,
                           const float* prob, const float* labels,
                           float* loss_out);
std::uint64_t softmax_loss_backward(const Launcher& launcher, int rows,
                                    int classes, const float* prob,
                                    const float* labels, float scale,
                                    float* in_grad);

std::uint64_t dropout_forward(const Launcher& launcher, std::size_t count,
                              const float* in, const float* mask, float scale,
                              float* out);

/// Strided copy used by the concat layer: copies a [rows x cols] slab from
/// src (row stride src_stride) into dst (row stride dst_stride).
std::uint64_t copy_slab(const Launcher& launcher, int rows, int cols,
                        const float* src, int src_stride, float* dst,
                        int dst_stride);
/// Same but accumulating (+=), for concat's backward pass.
std::uint64_t add_slab(const Launcher& launcher, int rows, int cols,
                       const float* src, int src_stride, float* dst,
                       int dst_stride);

}  // namespace kern
