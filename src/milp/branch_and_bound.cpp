#include "milp/branch_and_bound.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace milp {

namespace {
struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
};
}  // namespace

Solution BranchAndBoundSolver::solve(const Problem& problem) const {
  const int n = problem.num_variables();
  const double int_tol = options_.integer_tolerance;
  const SimplexSolver lp(options_.lp);
  last_nodes_ = 0;

  Node root;
  root.lower.reserve(static_cast<std::size_t>(n));
  root.upper.reserve(static_cast<std::size_t>(n));
  for (const Variable& v : problem.variables()) {
    // Integer variables can be tightened to integral bounds immediately.
    root.lower.push_back(v.integer ? std::ceil(v.lower - int_tol) : v.lower);
    root.upper.push_back(v.integer && std::isfinite(v.upper)
                             ? std::floor(v.upper + int_tol)
                             : v.upper);
  }

  const double sign = problem.maximize() ? 1.0 : -1.0;
  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;

  std::vector<Node> stack;
  stack.push_back(std::move(root));
  bool hit_limit = false;

  while (!stack.empty()) {
    if (++last_nodes_ > options_.max_nodes) {
      hit_limit = true;
      break;
    }
    const Node node = std::move(stack.back());
    stack.pop_back();

    const Solution relax = lp.solve_with_bounds(problem, node.lower, node.upper);
    if (relax.status == SolveStatus::kInfeasible) continue;
    if (relax.status == SolveStatus::kUnbounded) {
      // An unbounded relaxation at the root means the MILP itself is
      // unbounded (all our integer models are box-bounded, so this only
      // triggers on malformed input).
      return {SolveStatus::kUnbounded, 0.0, {}};
    }
    if (relax.status == SolveStatus::kLimit) {
      hit_limit = true;
      continue;
    }
    if (incumbent.status == SolveStatus::kOptimal &&
        sign * relax.objective <= sign * incumbent.objective + 1e-12) {
      continue;  // bound: cannot beat the incumbent
    }

    // Find the most fractional integer variable.
    int branch_var = -1;
    double best_frac_dist = int_tol;
    for (int i = 0; i < n; ++i) {
      if (!problem.variables()[static_cast<std::size_t>(i)].integer) continue;
      const double v = relax.values[static_cast<std::size_t>(i)];
      const double frac = v - std::floor(v);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist > best_frac_dist) {
        best_frac_dist = dist;
        branch_var = i;
      }
    }

    if (branch_var < 0) {
      // Integral (within tolerance): round and accept if feasible.
      std::vector<double> candidate = relax.values;
      for (int i = 0; i < n; ++i) {
        if (problem.variables()[static_cast<std::size_t>(i)].integer) {
          candidate[static_cast<std::size_t>(i)] =
              std::round(candidate[static_cast<std::size_t>(i)]);
        }
      }
      if (!problem.feasible(candidate, 1e-6)) continue;
      const double obj = problem.objective_value(candidate);
      if (incumbent.status != SolveStatus::kOptimal ||
          sign * obj > sign * incumbent.objective) {
        incumbent.status = SolveStatus::kOptimal;
        incumbent.objective = obj;
        incumbent.values = std::move(candidate);
      }
      continue;
    }

    const double v = relax.values[static_cast<std::size_t>(branch_var)];
    Node down = node;
    down.upper[static_cast<std::size_t>(branch_var)] = std::floor(v);
    Node up = node;
    up.lower[static_cast<std::size_t>(branch_var)] = std::ceil(v);
    // DFS: explore the side nearer the relaxation first (pushed last).
    if (v - std::floor(v) > 0.5) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }

  if (incumbent.status != SolveStatus::kOptimal) {
    return {hit_limit ? SolveStatus::kLimit : SolveStatus::kInfeasible, 0.0, {}};
  }
  return incumbent;
}

}  // namespace milp
