#pragma once
// Branch-and-bound MILP solver over the simplex LP relaxation. Depth-first
// with best-incumbent pruning; branches on the most fractional integer
// variable. Problems from the kernel analyzer have < 10 variables, so the
// node limit is a safety net, not a tuning knob.

#include "milp/problem.hpp"
#include "milp/simplex.hpp"

namespace milp {

class BranchAndBoundSolver {
 public:
  struct Options {
    int max_nodes = 200000;
    double integer_tolerance = 1e-6;
    SimplexSolver::Options lp;
  };

  BranchAndBoundSolver() = default;
  explicit BranchAndBoundSolver(Options options) : options_(options) {}

  Solution solve(const Problem& problem) const;

  /// Nodes explored by the most recent solve (diagnostics / Table 6's T_a).
  int last_node_count() const { return last_nodes_; }

 private:
  Options options_{};
  mutable int last_nodes_ = 0;
};

}  // namespace milp
