#include "milp/problem.hpp"

#include "common/check.hpp"

namespace milp {

int Problem::add_variable(double lower, double upper, double objective,
                          bool integer, std::string name) {
  GLP_REQUIRE(lower <= upper, "variable bounds inverted: [" << lower << ", "
                                                            << upper << "]");
  Variable v;
  v.name = name.empty() ? "x" + std::to_string(variables_.size()) : std::move(name);
  v.lower = lower;
  v.upper = upper;
  v.objective = objective;
  v.integer = integer;
  variables_.push_back(std::move(v));
  return static_cast<int>(variables_.size()) - 1;
}

int Problem::add_constraint(std::vector<std::pair<int, double>> terms,
                            double lower, double upper, std::string name) {
  GLP_REQUIRE(lower <= upper, "constraint bounds inverted");
  for (const auto& [idx, coeff] : terms) {
    GLP_REQUIRE(idx >= 0 && idx < num_variables(),
                "constraint references unknown variable " << idx);
    (void)coeff;
  }
  Constraint c;
  c.name = name.empty() ? "c" + std::to_string(constraints_.size()) : std::move(name);
  c.terms = std::move(terms);
  c.lower = lower;
  c.upper = upper;
  constraints_.push_back(std::move(c));
  return static_cast<int>(constraints_.size()) - 1;
}

double Problem::objective_value(const std::vector<double>& x) const {
  GLP_REQUIRE(x.size() == variables_.size(), "point has wrong dimension");
  double v = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    v += variables_[i].objective * x[i];
  }
  return v;
}

bool Problem::feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != variables_.size()) return false;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    if (x[i] < variables_[i].lower - tol || x[i] > variables_[i].upper + tol) {
      return false;
    }
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [idx, coeff] : c.terms) lhs += coeff * x[static_cast<std::size_t>(idx)];
    if (lhs < c.lower - tol || lhs > c.upper + tol) return false;
  }
  return true;
}

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kLimit: return "limit";
  }
  return "?";
}

}  // namespace milp
