#pragma once
// Mixed-integer linear program description. The GLP4NN kernel analyzer
// builds its Eq. 1–9 model with this API; the paper used GLPK, which we
// replace with the in-repo solver (see DESIGN.md substitution table).

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace milp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  bool integer = false;
};

struct Constraint {
  std::string name;
  /// Sparse row: (variable index, coefficient).
  std::vector<std::pair<int, double>> terms;
  double lower = -kInfinity;
  double upper = kInfinity;
};

class Problem {
 public:
  /// Returns the new variable's index.
  int add_variable(double lower, double upper, double objective, bool integer,
                   std::string name = {});

  /// Adds `lower ≤ Σ coeff·x ≤ upper`. Returns the constraint's index.
  int add_constraint(std::vector<std::pair<int, double>> terms, double lower,
                     double upper, std::string name = {});

  void set_maximize(bool maximize) { maximize_ = maximize; }
  bool maximize() const { return maximize_; }

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Objective value of a candidate point.
  double objective_value(const std::vector<double>& x) const;
  /// Feasibility check with tolerance (used by tests and B&B asserts).
  bool feasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  bool maximize_ = true;
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kLimit };

const char* to_string(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
};

}  // namespace milp
