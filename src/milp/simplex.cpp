#include "milp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace milp {

namespace {

// Row-major dense tableau. Columns: structural + slack + artificial, then
// RHS last. Basis holds the column index basic in each row.
struct Tableau {
  int rows = 0;
  int cols = 0;  // excluding RHS
  std::vector<double> a;  // rows x (cols + 1)
  std::vector<int> basis;

  double& at(int r, int c) { return a[static_cast<std::size_t>(r) * (cols + 1) + c]; }
  double at(int r, int c) const {
    return a[static_cast<std::size_t>(r) * (cols + 1) + c];
  }
  double& rhs(int r) { return at(r, cols); }
  double rhs_val(int r) const { return at(r, cols); }

  void pivot(int pr, int pc) {
    const double pv = at(pr, pc);
    GLP_CHECK(std::abs(pv) > 1e-12);
    const double inv = 1.0 / pv;
    for (int c = 0; c <= cols; ++c) at(pr, c) *= inv;
    for (int r = 0; r < rows; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (factor == 0.0) continue;
      for (int c = 0; c <= cols; ++c) at(r, c) -= factor * at(pr, c);
    }
    basis[static_cast<std::size_t>(pr)] = pc;
  }
};

// Price out: reduced cost vector z_j - c_j for objective c over current basis.
std::vector<double> reduced_costs(const Tableau& t, const std::vector<double>& c) {
  std::vector<double> rc(static_cast<std::size_t>(t.cols));
  for (int j = 0; j < t.cols; ++j) {
    double zj = 0.0;
    for (int r = 0; r < t.rows; ++r) {
      const int b = t.basis[static_cast<std::size_t>(r)];
      zj += c[static_cast<std::size_t>(b)] * t.at(r, j);
    }
    rc[static_cast<std::size_t>(j)] = zj - c[static_cast<std::size_t>(j)];
  }
  return rc;
}

enum class PhaseResult { kOptimal, kUnbounded, kIterationLimit };

// Maximize c·x over the tableau with Bland's rule. `allowed` marks columns
// eligible to enter (used to keep artificials out in phase 2).
PhaseResult run_phase(Tableau& t, const std::vector<double>& c,
                      const std::vector<bool>& allowed, int max_iters, double tol) {
  for (int iter = 0; iter < max_iters; ++iter) {
    const std::vector<double> rc = reduced_costs(t, c);
    // Bland: smallest-index column with negative reduced cost (improving
    // direction for maximization).
    int enter = -1;
    for (int j = 0; j < t.cols; ++j) {
      if (!allowed[static_cast<std::size_t>(j)]) continue;
      if (rc[static_cast<std::size_t>(j)] < -tol) {
        enter = j;
        break;
      }
    }
    if (enter < 0) return PhaseResult::kOptimal;

    // Ratio test; Bland tie-break on smallest basis column index.
    int leave = -1;
    double best_ratio = 0.0;
    for (int r = 0; r < t.rows; ++r) {
      const double col = t.at(r, enter);
      if (col > tol) {
        const double ratio = t.rhs_val(r) / col;
        if (leave < 0 || ratio < best_ratio - tol ||
            (std::abs(ratio - best_ratio) <= tol &&
             t.basis[static_cast<std::size_t>(r)] <
                 t.basis[static_cast<std::size_t>(leave)])) {
          leave = r;
          best_ratio = ratio;
        }
      }
    }
    if (leave < 0) return PhaseResult::kUnbounded;
    t.pivot(leave, enter);
  }
  return PhaseResult::kIterationLimit;
}

}  // namespace

Solution SimplexSolver::solve(const Problem& problem) const {
  std::vector<double> lower, upper;
  lower.reserve(static_cast<std::size_t>(problem.num_variables()));
  upper.reserve(static_cast<std::size_t>(problem.num_variables()));
  for (const Variable& v : problem.variables()) {
    lower.push_back(v.lower);
    upper.push_back(v.upper);
  }
  return solve_with_bounds(problem, lower, upper);
}

Solution SimplexSolver::solve_with_bounds(const Problem& problem,
                                          const std::vector<double>& lower,
                                          const std::vector<double>& upper) const {
  const int n = problem.num_variables();
  GLP_REQUIRE(static_cast<int>(lower.size()) == n &&
                  static_cast<int>(upper.size()) == n,
              "bound override arrays must match variable count");
  const double tol = options_.tolerance;

  for (int i = 0; i < n; ++i) {
    if (lower[static_cast<std::size_t>(i)] > upper[static_cast<std::size_t>(i)] + tol) {
      return {SolveStatus::kInfeasible, 0.0, {}};
    }
    GLP_REQUIRE(std::isfinite(lower[static_cast<std::size_t>(i)]),
                "variables must have finite lower bounds");
  }

  // Shift to y = x - lower ≥ 0 and collect all rows as A y ≤ b.
  struct Row {
    std::vector<double> coeff;  // dense over n
    double rhs;
  };
  std::vector<Row> rows;

  auto add_leq = [&](const std::vector<double>& coeff, double rhs) {
    rows.push_back({coeff, rhs});
  };

  for (int i = 0; i < n; ++i) {
    const double range =
        upper[static_cast<std::size_t>(i)] - lower[static_cast<std::size_t>(i)];
    if (std::isfinite(range)) {
      std::vector<double> coeff(static_cast<std::size_t>(n), 0.0);
      coeff[static_cast<std::size_t>(i)] = 1.0;
      add_leq(coeff, range);
    }
  }
  for (const Constraint& c : problem.constraints()) {
    std::vector<double> coeff(static_cast<std::size_t>(n), 0.0);
    double shift = 0.0;
    for (const auto& [idx, value] : c.terms) {
      coeff[static_cast<std::size_t>(idx)] += value;
      shift += value * lower[static_cast<std::size_t>(idx)];
    }
    if (std::isfinite(c.upper)) add_leq(coeff, c.upper - shift);
    if (std::isfinite(c.lower)) {
      std::vector<double> neg(coeff);
      for (double& v : neg) v = -v;
      add_leq(neg, -(c.lower - shift));
    }
  }

  const int m = static_cast<int>(rows.size());

  // Columns: n structural + m slack + (artificials for negative-RHS rows).
  std::vector<int> artificial_of_row(static_cast<std::size_t>(m), -1);
  int num_artificial = 0;
  for (int r = 0; r < m; ++r) {
    if (rows[static_cast<std::size_t>(r)].rhs < 0.0) {
      artificial_of_row[static_cast<std::size_t>(r)] = num_artificial++;
    }
  }

  Tableau t;
  t.rows = m;
  t.cols = n + m + num_artificial;
  t.a.assign(static_cast<std::size_t>(m) * (t.cols + 1), 0.0);
  t.basis.assign(static_cast<std::size_t>(m), -1);

  for (int r = 0; r < m; ++r) {
    const Row& row = rows[static_cast<std::size_t>(r)];
    const bool flip = row.rhs < 0.0;
    const double sign = flip ? -1.0 : 1.0;
    for (int j = 0; j < n; ++j) {
      t.at(r, j) = sign * row.coeff[static_cast<std::size_t>(j)];
    }
    t.at(r, n + r) = sign * 1.0;  // slack
    t.rhs(r) = sign * row.rhs;
    if (flip) {
      const int acol = n + m + artificial_of_row[static_cast<std::size_t>(r)];
      t.at(r, acol) = 1.0;
      t.basis[static_cast<std::size_t>(r)] = acol;
    } else {
      t.basis[static_cast<std::size_t>(r)] = n + r;
    }
  }

  std::vector<bool> allow_all(static_cast<std::size_t>(t.cols), true);

  // Phase 1: drive artificials to zero (maximize -Σ artificials).
  if (num_artificial > 0) {
    std::vector<double> c1(static_cast<std::size_t>(t.cols), 0.0);
    for (int k = 0; k < num_artificial; ++k) {
      c1[static_cast<std::size_t>(n + m + k)] = -1.0;
    }
    const PhaseResult pr =
        run_phase(t, c1, allow_all, options_.max_iterations, tol);
    if (pr == PhaseResult::kIterationLimit) return {SolveStatus::kLimit, 0.0, {}};
    double infeas = 0.0;
    for (int r = 0; r < m; ++r) {
      if (t.basis[static_cast<std::size_t>(r)] >= n + m) infeas += t.rhs_val(r);
    }
    if (infeas > 1e-7) return {SolveStatus::kInfeasible, 0.0, {}};
    // Pivot any degenerate artificials out of the basis where possible.
    for (int r = 0; r < m; ++r) {
      if (t.basis[static_cast<std::size_t>(r)] >= n + m) {
        for (int j = 0; j < n + m; ++j) {
          if (std::abs(t.at(r, j)) > tol) {
            t.pivot(r, j);
            break;
          }
        }
      }
    }
  }

  // Phase 2: real objective, artificial columns barred from entering.
  std::vector<double> c2(static_cast<std::size_t>(t.cols), 0.0);
  const double obj_sign = problem.maximize() ? 1.0 : -1.0;
  for (int j = 0; j < n; ++j) {
    c2[static_cast<std::size_t>(j)] =
        obj_sign * problem.variables()[static_cast<std::size_t>(j)].objective;
  }
  std::vector<bool> allowed(static_cast<std::size_t>(t.cols), true);
  for (int k = 0; k < num_artificial; ++k) {
    allowed[static_cast<std::size_t>(n + m + k)] = false;
  }
  const PhaseResult pr = run_phase(t, c2, allowed, options_.max_iterations, tol);
  if (pr == PhaseResult::kIterationLimit) return {SolveStatus::kLimit, 0.0, {}};
  if (pr == PhaseResult::kUnbounded) return {SolveStatus::kUnbounded, 0.0, {}};

  Solution sol;
  sol.status = SolveStatus::kOptimal;
  sol.values.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    const int b = t.basis[static_cast<std::size_t>(r)];
    if (b < n) {
      sol.values[static_cast<std::size_t>(b)] = t.rhs_val(r);
    }
  }
  for (int i = 0; i < n; ++i) {
    sol.values[static_cast<std::size_t>(i)] += lower[static_cast<std::size_t>(i)];
  }
  sol.objective = problem.objective_value(sol.values);
  return sol;
}

}  // namespace milp
