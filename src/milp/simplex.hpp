#pragma once
// Dense two-phase primal simplex for the LP relaxations. Bland's rule
// guarantees termination; problems here are tiny (a handful of kernels
// per layer), so a dense tableau is the simple, robust choice.

#include <vector>

#include "milp/problem.hpp"

namespace milp {

class SimplexSolver {
 public:
  struct Options {
    int max_iterations = 20000;
    double tolerance = 1e-9;
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options options) : options_(options) {}

  /// Solve the continuous relaxation (integrality ignored).
  Solution solve(const Problem& problem) const;

  /// Solve with per-variable bound overrides (used by branch & bound).
  /// `lower`/`upper` must have one entry per variable.
  Solution solve_with_bounds(const Problem& problem,
                             const std::vector<double>& lower,
                             const std::vector<double>& upper) const;

 private:
  Options options_{};
};

}  // namespace milp
