#pragma once
// Caffe-style Blob: an N-dimensional tensor (canonically NCHW) holding a
// data array and a gradient (diff) array. Data and diff allocate lazily;
// host pointer access is only safe when the device is synchronised (the
// solver synchronises once per iteration).

#include <string>
#include <vector>

#include "common/check.hpp"
#include "minicaffe/buffer.hpp"

namespace mc {

class Blob {
 public:
  explicit Blob(scuda::Context& ctx) : ctx_(&ctx) {}
  Blob(scuda::Context& ctx, std::vector<int> shape) : ctx_(&ctx) {
    reshape(std::move(shape));
  }

  void reshape(std::vector<int> shape) {
    std::size_t count = 1;
    for (int d : shape) {
      GLP_REQUIRE(d >= 0, "blob dimensions must be non-negative");
      count *= static_cast<std::size_t>(d);
    }
    shape_ = std::move(shape);
    count_ = count;
    data_.ensure(*ctx_, count_);
    // diff stays lazy: inference-only blobs never allocate gradients
  }
  void reshape_like(const Blob& other) { reshape(other.shape_); }

  const std::vector<int>& shape() const { return shape_; }
  int shape(int axis) const {
    GLP_REQUIRE(axis >= 0 && axis < num_axes(), "axis " << axis << " out of range");
    return shape_[static_cast<std::size_t>(axis)];
  }
  int num_axes() const { return static_cast<int>(shape_.size()); }
  std::size_t count() const { return count_; }

  /// Legacy NCHW accessors (missing trailing axes count as 1).
  int num() const { return axis_or(0); }
  int channels() const { return axis_or(1); }
  int height() const { return axis_or(2); }
  int width() const { return axis_or(3); }
  /// Elements per sample (count / num).
  std::size_t sample_size() const {
    return num() > 0 ? count_ / static_cast<std::size_t>(num()) : 0;
  }

  float* mutable_data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* mutable_diff() {
    diff_.ensure(*ctx_, count_);
    return diff_.data();
  }
  /// Lazy like mutable_diff(): timing-only runs read diffs that were
  /// never numerically written, so allocation must not require a write.
  const float* diff() const {
    diff_.ensure(*ctx_, count_);
    return diff_.data();
  }
  bool has_diff() const { return !diff_.empty(); }

  std::string shape_string() const {
    std::string s;
    for (std::size_t i = 0; i < shape_.size(); ++i) {
      if (i != 0) s += "x";
      s += std::to_string(shape_[i]);
    }
    s += " (" + std::to_string(count_) + ")";
    return s;
  }

  scuda::Context& context() const { return *ctx_; }

 private:
  int axis_or(int axis) const {
    return axis < num_axes() ? shape_[static_cast<std::size_t>(axis)] : 1;
  }

  scuda::Context* ctx_;
  std::vector<int> shape_;
  std::size_t count_ = 0;
  DeviceBuffer<float> data_;
  mutable DeviceBuffer<float> diff_;
};

}  // namespace mc
