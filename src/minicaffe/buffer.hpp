#pragma once
// RAII device-memory buffer over scuda::Context. Memory is *not*
// initialised on allocation (like cudaMalloc), so timing-only runs never
// touch the pages; numeric code zero-fills explicitly where required.

#include <cstddef>
#include <utility>

#include "common/check.hpp"
#include "simcuda/context.hpp"

namespace mc {

template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(scuda::Context& ctx, std::size_t count) { allocate(ctx, count); }

  DeviceBuffer(DeviceBuffer&& other) noexcept
      : ctx_(other.ctx_), ptr_(other.ptr_), count_(other.count_) {
    other.ctx_ = nullptr;
    other.ptr_ = nullptr;
    other.count_ = 0;
  }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      ctx_ = std::exchange(other.ctx_, nullptr);
      ptr_ = std::exchange(other.ptr_, nullptr);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer() { release(); }

  void allocate(scuda::Context& ctx, std::size_t count) {
    release();
    ctx_ = &ctx;
    count_ = count;
    ptr_ = static_cast<T*>(ctx.malloc(count * sizeof(T)));
  }

  /// Grow (never shrink) to at least `count` elements. Contents are lost.
  void ensure(scuda::Context& ctx, std::size_t count) {
    if (count > count_) allocate(ctx, count);
  }

  void release() {
    if (ptr_ != nullptr) {
      ctx_->free(ptr_);
      ptr_ = nullptr;
      count_ = 0;
    }
  }

  bool empty() const { return ptr_ == nullptr; }
  std::size_t count() const { return count_; }
  std::size_t bytes() const { return count_ * sizeof(T); }
  T* data() { return ptr_; }
  const T* data() const { return ptr_; }

 private:
  scuda::Context* ctx_ = nullptr;
  T* ptr_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace mc
