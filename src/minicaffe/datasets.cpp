#include "minicaffe/datasets.hpp"

#include <numeric>

#include "common/check.hpp"

namespace mc {

DatasetSpec DatasetSpec::mnist() {
  DatasetSpec s;
  s.name = "mnist";
  s.num_classes = 10;
  s.channels = 1;
  s.height = 28;
  s.width = 28;
  s.train_size = 60000;
  return s;
}

DatasetSpec DatasetSpec::cifar10() {
  DatasetSpec s;
  s.name = "cifar10";
  s.num_classes = 10;
  s.channels = 3;
  s.height = 32;
  s.width = 32;
  s.train_size = 50000;
  return s;
}

DatasetSpec DatasetSpec::imagenet() {
  DatasetSpec s;
  s.name = "imagenet";
  s.num_classes = 1000;
  s.channels = 3;
  s.height = 256;
  s.width = 256;
  s.train_size = 1200000;
  return s;
}

DatasetSpec DatasetSpec::imagenet_crop227() {
  DatasetSpec s = imagenet();
  s.name = "imagenet-227";
  s.height = 227;
  s.width = 227;
  return s;
}

SyntheticDataset::SyntheticDataset(DatasetSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  GLP_REQUIRE(spec_.num_classes > 0 && spec_.train_size > 0,
              "dataset must have classes and samples");
  // Class prototypes: smooth-ish random images in [0, 1).
  prototypes_.resize(static_cast<std::size_t>(spec_.num_classes) *
                     spec_.sample_size());
  glp::Rng rng(seed_ ^ 0xA5A5A5A5ULL);
  for (float& v : prototypes_) v = rng.uniform(0.0f, 1.0f);
}

int SyntheticDataset::label_of(std::uint64_t index) const {
  // Spread classes across the epoch deterministically but non-trivially.
  glp::Rng rng(seed_ ^ (index * 0x9E3779B97F4A7C15ULL + 1));
  return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(spec_.num_classes)));
}

void SyntheticDataset::fill_sample(std::uint64_t index, float* out) const {
  const int label = label_of(index);
  const float* proto =
      prototypes_.data() + static_cast<std::size_t>(label) * spec_.sample_size();
  glp::Rng rng(seed_ ^ (index * 0xD1B54A32D192ED03ULL + 7));
  const float keep = 1.0f - spec_.noise;
  for (std::size_t i = 0; i < spec_.sample_size(); ++i) {
    out[i] = keep * proto[i] + spec_.noise * rng.gaussian(0.0f, 0.25f);
  }
}

std::uint64_t SyntheticDataset::index_at(std::uint64_t position) const {
  const auto size = static_cast<std::uint64_t>(spec_.train_size);
  const std::uint64_t epoch = position / size;
  const std::uint64_t offset = position % size;
  if (!spec_.shuffle) return offset;
  // Affine permutation per epoch: index = (a·offset + b) mod size with a
  // coprime to size. Deterministic, O(1), and different every epoch.
  glp::Rng rng(seed_ ^ (epoch * 0x2545F4914F6CDD1DULL + 11));
  std::uint64_t a = 1 + 2 * rng.next_below(size / 2 + 1);  // odd — but size may be even
  while (std::gcd(a, size) != 1) a += 1;
  const std::uint64_t b = rng.next_below(size);
  return (a * offset + b) % size;
}

void SyntheticDataset::fill_batch(std::uint64_t cursor, int batch, float* images,
                                  float* labels) const {
  for (int n = 0; n < batch; ++n) {
    const std::uint64_t index =
        index_at(cursor + static_cast<std::uint64_t>(n));
    fill_sample(index, images + static_cast<std::size_t>(n) * spec_.sample_size());
    labels[n] = static_cast<float>(label_of(index));
  }
}

}  // namespace mc
