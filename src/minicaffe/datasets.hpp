#pragma once
// Synthetic stand-ins for the paper's datasets (Table 4). Real MNIST /
// CIFAR-10 / ImageNet are unavailable offline; these generators produce
// deterministic, *learnable* data with the same shapes: each class has a
// fixed random prototype image and samples are prototype + per-sample
// noise. The experiments that matter here measure per-iteration kernel
// timing and the relative convergence of two schedulers over identical
// data, neither of which depends on natural images (see DESIGN.md).

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace mc {

struct DatasetSpec {
  std::string name = "random";
  int num_classes = 10;
  int channels = 3;
  int height = 32;
  int width = 32;
  int train_size = 50000;
  float noise = 0.3f;  ///< sample = (1-noise)*prototype + noise*N(0,1)
  /// Deterministic per-epoch shuffling (affine index permutation). The
  /// paper attributes its residual Fig. 11 divergence to Caffe's batch
  /// shuffling; ours is reproducible, so shuffled runs still compare
  /// bit-for-bit across schedulers.
  bool shuffle = false;

  /// Table 4 presets.
  static DatasetSpec mnist();     // 60k, 28x28x1, 10 classes
  static DatasetSpec cifar10();   // 50k, 32x32x3, 10 classes
  static DatasetSpec imagenet();  // 1.2M, 256x256x3 (227 crops), 1000 classes
  /// ImageNet with CaffeNet's 227x227 crop already applied.
  static DatasetSpec imagenet_crop227();

  std::size_t sample_size() const {
    return static_cast<std::size_t>(channels) * height * width;
  }
};

/// Deterministic synthetic dataset. sample(i) is a pure function of
/// (seed, i), so any iteration order (shuffled or sequential) is
/// reproducible and identical across schedulers.
class SyntheticDataset {
 public:
  SyntheticDataset(DatasetSpec spec, std::uint64_t seed);

  const DatasetSpec& spec() const { return spec_; }

  int label_of(std::uint64_t index) const;
  /// Write sample `index` into out[sample_size()].
  void fill_sample(std::uint64_t index, float* out) const;
  /// Write `batch` consecutive samples starting at epoch position
  /// `cursor` (wrapping), plus their labels. With spec().shuffle the
  /// position is routed through a per-epoch permutation.
  void fill_batch(std::uint64_t cursor, int batch, float* images,
                  float* labels) const;

  /// Epoch-position → sample-index mapping (identity unless shuffling).
  std::uint64_t index_at(std::uint64_t position) const;

 private:
  DatasetSpec spec_;
  std::uint64_t seed_;
  std::vector<float> prototypes_;  // [num_classes, sample_size]
};

}  // namespace mc
