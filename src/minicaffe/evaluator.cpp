#include "minicaffe/evaluator.hpp"

#include "common/check.hpp"

namespace mc {

EvalResult evaluate(Net& net, int iterations) {
  GLP_REQUIRE(iterations > 0, "evaluation needs at least one iteration");
  ExecContext& ec = net.exec();
  const bool was_train = ec.train;
  ec.train = false;

  EvalResult result;
  result.iterations = iterations;
  const double t0 = ec.ctx->device().host_now();
  for (int it = 0; it < iterations; ++it) {
    net.forward();
    ec.ctx->device().synchronize();
    if (ec.numeric()) {
      for (const std::string& name : net.blob_names()) {
        const Blob* blob = net.blob(name);
        if (blob->count() == 1) {
          result.means[name] += blob->data()[0];
        }
      }
    }
  }
  result.total_ms = (ec.ctx->device().host_now() - t0) / 1e6;
  for (auto& [name, sum] : result.means) {
    sum /= static_cast<float>(iterations);
  }

  ec.train = was_train;
  return result;
}

}  // namespace mc
