#pragma once
// Test-phase evaluation, Caffe-style: run a network forward for a number
// of iterations with the TEST phase active (dropout off, BatchNorm on
// global statistics) and average the scalar outputs (loss, accuracy).

#include <map>
#include <string>

#include "minicaffe/net.hpp"

namespace mc {

struct EvalResult {
  int iterations = 0;
  /// Mean of every scalar (count == 1) blob across the iterations,
  /// keyed by blob name ("loss", "accuracy", ...).
  std::map<std::string, float> means;
  double total_ms = 0.0;  ///< simulated time for the whole evaluation

  float mean_or(const std::string& blob, float fallback) const {
    auto it = means.find(blob);
    return it == means.end() ? fallback : it->second;
  }
};

/// Evaluate `net` for `iterations` forward passes. Flips the ExecContext
/// to the TEST phase for the duration (restores it afterwards) and
/// synchronises the device each iteration to read scalar blobs.
EvalResult evaluate(Net& net, int iterations);

}  // namespace mc
