#pragma once
// Execution environment a Net runs in: the simulated device, the kernel
// dispatcher (serial baseline / fixed streams / GLP4NN scheduler), the
// compute mode, and the deterministic RNG feeding fillers, dropout masks
// and data shuffling. Swapping only the dispatcher is how the paper's
// "GLP4NN-Caffe vs naive-Caffe" comparisons are run — everything else is
// bit-identical.

#include <map>
#include <string>

#include "common/rng.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/launcher.hpp"
#include "simcuda/context.hpp"

namespace mc {

struct ExecContext {
  scuda::Context* ctx = nullptr;
  kern::KernelDispatcher* dispatcher = nullptr;
  kern::ComputeMode mode = kern::ComputeMode::kNumeric;
  /// Kernel-fusion extension (paper §6 future work): fuse the per-sample
  /// bias-add into the convolution GEMM, saving one launch per sample.
  bool fuse_conv_bias = false;
  /// Training phase: dropout active, BatchNorm uses batch statistics.
  /// Flip to false for inference (Caffe's TEST phase).
  bool train = true;
  /// Forward-only serving mode: layers skip every gradient/solver scratch
  /// allocation and Net::backward() is rejected. Orthogonal to `train`
  /// (which controls phase behaviour, not memory).
  bool inference = false;
  /// Stream that non-scope kernels (whole-batch layers, data uploads) are
  /// launched on. Serving gives each in-flight batch its own home stream
  /// so batches overlap; training keeps the legacy default stream.
  gpusim::StreamId home_stream = gpusim::kDefaultStream;
  /// Inter-operator DAG scheduling: Net::forward/backward route through a
  /// NetDag that overlaps independent layer ops (inception branches) on
  /// concurrent stream chains instead of issuing layers serially.
  bool dag_schedule = false;
  /// Elementwise-chain fusion pass of the DAG scheduler: absorb in-place
  /// activations into the producing GEMM (ReLU epilogue) and coalesce
  /// runs of single-launch elementwise layers into one launch. Only read
  /// when dag_schedule is set.
  bool dag_fusion = true;
  /// Armed by the NetDag fusion pass around a coalesced elementwise chain
  /// (see kern::FusionStager). Layers stay oblivious.
  kern::FusionStager* fuser = nullptr;
  /// Armed by a kern::CoalescingDispatcher inside coalescable scopes:
  /// per-lane kernel chains are staged per stream and merged into one
  /// launch per stream at end_scope. Layers stay oblivious.
  kern::LaneCoalescer* coalescer = nullptr;
  /// Producer layers whose GEMM absorbs the following in-place ReLU
  /// (layer name → the ReLU's negative_slope). Owned by the NetDag.
  const std::map<std::string, float>* fused_relu_epilogues = nullptr;
  glp::Rng rng{0x5eedULL};

  /// Negative slope of the ReLU this layer's GEMM should apply as an
  /// epilogue, or nullptr when none was fused in.
  const float* relu_epilogue(const std::string& layer) const {
    if (fused_relu_epilogues == nullptr) return nullptr;
    auto it = fused_relu_epilogues->find(layer);
    return it == fused_relu_epilogues->end() ? nullptr : &it->second;
  }

  kern::Launcher launcher() const { return launcher(home_stream); }

  kern::Launcher launcher(gpusim::StreamId stream) const {
    kern::Launcher l;
    l.ctx = ctx;
    l.stream = stream;
    l.mode = mode;
    l.fuser = fuser;
    l.coalescer = coalescer;
    return l;
  }

  bool numeric() const { return mode == kern::ComputeMode::kNumeric; }
};

}  // namespace mc
