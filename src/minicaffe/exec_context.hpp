#pragma once
// Execution environment a Net runs in: the simulated device, the kernel
// dispatcher (serial baseline / fixed streams / GLP4NN scheduler), the
// compute mode, and the deterministic RNG feeding fillers, dropout masks
// and data shuffling. Swapping only the dispatcher is how the paper's
// "GLP4NN-Caffe vs naive-Caffe" comparisons are run — everything else is
// bit-identical.

#include "common/rng.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/launcher.hpp"
#include "simcuda/context.hpp"

namespace mc {

struct ExecContext {
  scuda::Context* ctx = nullptr;
  kern::KernelDispatcher* dispatcher = nullptr;
  kern::ComputeMode mode = kern::ComputeMode::kNumeric;
  /// Kernel-fusion extension (paper §6 future work): fuse the per-sample
  /// bias-add into the convolution GEMM, saving one launch per sample.
  bool fuse_conv_bias = false;
  /// Training phase: dropout active, BatchNorm uses batch statistics.
  /// Flip to false for inference (Caffe's TEST phase).
  bool train = true;
  /// Forward-only serving mode: layers skip every gradient/solver scratch
  /// allocation and Net::backward() is rejected. Orthogonal to `train`
  /// (which controls phase behaviour, not memory).
  bool inference = false;
  /// Stream that non-scope kernels (whole-batch layers, data uploads) are
  /// launched on. Serving gives each in-flight batch its own home stream
  /// so batches overlap; training keeps the legacy default stream.
  gpusim::StreamId home_stream = gpusim::kDefaultStream;
  glp::Rng rng{0x5eedULL};

  kern::Launcher launcher() const { return launcher(home_stream); }

  kern::Launcher launcher(gpusim::StreamId stream) const {
    kern::Launcher l;
    l.ctx = ctx;
    l.stream = stream;
    l.mode = mode;
    return l;
  }

  bool numeric() const { return mode == kern::ComputeMode::kNumeric; }
};

}  // namespace mc
