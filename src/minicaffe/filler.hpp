#pragma once
// Weight initialisers (Caffe fillers). Host-side, deterministic through
// the ExecContext RNG; only run in numeric mode (timing-only runs never
// read weights).

#include <cmath>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "minicaffe/blob.hpp"

namespace mc {

struct FillerSpec {
  enum class Kind { kConstant, kUniform, kGaussian, kXavier };
  Kind kind = Kind::kXavier;
  float value = 0.0f;   ///< constant
  float min = -1.0f;    ///< uniform
  float max = 1.0f;
  float std = 0.01f;    ///< gaussian
  float mean = 0.0f;

  static FillerSpec constant(float v) {
    FillerSpec f;
    f.kind = Kind::kConstant;
    f.value = v;
    return f;
  }
  static FillerSpec gaussian(float std, float mean = 0.0f) {
    FillerSpec f;
    f.kind = Kind::kGaussian;
    f.std = std;
    f.mean = mean;
    return f;
  }
  static FillerSpec xavier() { return FillerSpec{}; }
  static FillerSpec uniform(float lo, float hi) {
    FillerSpec f;
    f.kind = Kind::kUniform;
    f.min = lo;
    f.max = hi;
    return f;
  }
};

/// Fill `blob`'s data. For Xavier, fan_in = count / shape(0) as in Caffe.
inline void fill_blob(const FillerSpec& spec, glp::Rng& rng, Blob& blob) {
  float* data = blob.mutable_data();
  const std::size_t count = blob.count();
  switch (spec.kind) {
    case FillerSpec::Kind::kConstant:
      for (std::size_t i = 0; i < count; ++i) data[i] = spec.value;
      break;
    case FillerSpec::Kind::kUniform:
      for (std::size_t i = 0; i < count; ++i) data[i] = rng.uniform(spec.min, spec.max);
      break;
    case FillerSpec::Kind::kGaussian:
      for (std::size_t i = 0; i < count; ++i) data[i] = rng.gaussian(spec.mean, spec.std);
      break;
    case FillerSpec::Kind::kXavier: {
      GLP_REQUIRE(blob.num_axes() >= 1 && blob.shape(0) > 0,
                  "xavier filler needs a leading output axis");
      const std::size_t fan_in = count / static_cast<std::size_t>(blob.shape(0));
      const float scale = std::sqrt(3.0f / static_cast<float>(fan_in));
      for (std::size_t i = 0; i < count; ++i) data[i] = rng.uniform(-scale, scale);
      break;
    }
  }
}

}  // namespace mc
