#pragma once
// Layer base class and layer specification, Caffe-style. A layer connects
// bottom blobs to top blobs; setup() shapes the tops and creates
// parameters, forward()/backward() launch simulated kernels.
//
// Gradient semantics (differs from Caffe, simpler and race-free):
// backward() *accumulates* into bottom diffs and parameter diffs, which
// the caller (Net/Solver) zeroes at the start of each backward pass.
// In-place layers (top blob == bottom blob) overwrite instead. This
// removes Caffe's auto-inserted Split layers: blobs consumed by several
// layers just receive each consumer's contribution.

#include <memory>
#include <string>
#include <vector>

#include "minicaffe/blob.hpp"
#include "minicaffe/datasets.hpp"
#include "minicaffe/exec_context.hpp"
#include "minicaffe/filler.hpp"

namespace mc {

enum class PoolMethod { kMax, kAve };
enum class EltwiseOp { kSum, kProd, kMax };

/// Union-style parameter bag: each layer type reads the fields it needs.
struct LayerParams {
  // Convolution / InnerProduct
  int num_output = 0;
  int kernel_size = 0;
  int stride = 1;
  int pad = 0;
  int group = 1;  ///< grouped convolution (AlexNet-style channel groups)
  bool bias_term = true;
  FillerSpec weight_filler = FillerSpec::xavier();
  FillerSpec bias_filler = FillerSpec::constant(0.0f);

  // Pooling
  PoolMethod pool = PoolMethod::kMax;

  // LRN
  int local_size = 5;
  float alpha = 1e-4f;
  float beta = 0.75f;
  float k = 1.0f;

  // ReLU
  float negative_slope = 0.0f;

  // Dropout
  float dropout_ratio = 0.5f;

  // Losses
  float loss_weight = 1.0f;
  float margin = 1.0f;  // contrastive

  // Concat / Slice
  int axis = 1;
  std::vector<int> slice_points;  ///< channel boundaries (Slice)

  // Eltwise
  EltwiseOp eltwise = EltwiseOp::kSum;
  std::vector<float> eltwise_coeffs;  ///< SUM coefficients (default all 1)

  // Power: y = (shift + scale·x)^power
  float power = 1.0f;
  float power_scale = 1.0f;
  float power_shift = 0.0f;

  // BatchNorm
  float bn_eps = 1e-5f;
  float bn_momentum = 0.9f;  ///< moving-average decay for global stats
  bool use_global_stats = false;

  // Scale
  bool scale_bias_term = false;

  // Reduction: mean over each sample when true, sum otherwise
  bool reduction_mean = false;

  // Data
  DatasetSpec dataset;
  int batch_size = 0;
  bool pair_data = false;  ///< Siamese: emit (data, data_p, similarity)
};

struct LayerSpec {
  std::string type;  ///< "Convolution", "Pooling", ...
  std::string name;
  std::vector<std::string> bottoms;
  std::vector<std::string> tops;
  LayerParams params;
  /// Optional names for parameter sharing across layers (Siamese weights).
  std::vector<std::string> param_names;
};

class Layer {
 public:
  Layer(LayerSpec spec, ExecContext& ec) : spec_(std::move(spec)), ec_(&ec) {}
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Shape the tops from the bottoms; create parameter blobs. Called once.
  virtual void setup(const std::vector<Blob*>& bottom,
                     const std::vector<Blob*>& top) = 0;
  virtual void forward(const std::vector<Blob*>& bottom,
                       const std::vector<Blob*>& top) = 0;
  /// `propagate_down[i]`: whether bottom i needs a gradient.
  virtual void backward(const std::vector<Blob*>& top,
                        const std::vector<bool>& propagate_down,
                        const std::vector<Blob*>& bottom) = 0;

  virtual bool is_loss() const { return false; }
  /// Layers with no backward pass (data layers).
  virtual bool has_backward() const { return true; }
  /// True when backward() *accumulates* (+=) into bottom diffs; such
  /// layers may share a bottom blob with other consumers. Layers that
  /// assign must be a blob's only non-in-place consumer (Net verifies).
  virtual bool accumulates_bottom_diff() const { return false; }

  const std::string& name() const { return spec_.name; }
  const std::string& type() const { return spec_.type; }
  const LayerSpec& spec() const { return spec_; }
  const LayerParams& params() const { return spec_.params; }

  std::vector<std::shared_ptr<Blob>>& param_blobs() { return param_blobs_; }
  const std::vector<std::shared_ptr<Blob>>& param_blobs() const {
    return param_blobs_;
  }
  /// Marks params adopted from the shared registry (gradients accumulate).
  void share_param(std::size_t index, std::shared_ptr<Blob> blob) {
    param_blobs_.at(index) = std::move(blob);
  }

 protected:
  /// Launcher scoped to this layer and pass ("conv1/fwd"), on the
  /// context's home stream (the default stream outside serving).
  kern::Launcher launcher(const char* pass) const {
    return launcher(pass, ec_->home_stream);
  }
  kern::Launcher launcher(const char* pass, gpusim::StreamId stream) const {
    kern::Launcher l = ec_->launcher(stream);
    l.name_prefix = spec_.name + "/" + pass;
    return l;
  }

  LayerSpec spec_;
  ExecContext* ec_;
  std::vector<std::shared_ptr<Blob>> param_blobs_;
};

/// Create a layer by spec.type. Throws InvalidArgument on unknown types.
std::unique_ptr<Layer> create_layer(const LayerSpec& spec, ExecContext& ec);

/// All registered layer type names (for diagnostics and tests).
std::vector<std::string> registered_layer_types();

}  // namespace mc
