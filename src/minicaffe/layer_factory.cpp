#include <functional>
#include <map>

#include "minicaffe/layer.hpp"
#include "minicaffe/layers/activation_layers.hpp"
#include "minicaffe/layers/concat_layer.hpp"
#include "minicaffe/layers/conv_layer.hpp"
#include "minicaffe/layers/data_layer.hpp"
#include "minicaffe/layers/deconv_layer.hpp"
#include "minicaffe/layers/input_layer.hpp"
#include "minicaffe/layers/elementwise_layers.hpp"
#include "minicaffe/layers/ip_layer.hpp"
#include "minicaffe/layers/loss_layers.hpp"
#include "minicaffe/layers/lrn_layer.hpp"
#include "minicaffe/layers/pool_layer.hpp"
#include "minicaffe/layers/structure_layers.hpp"

namespace mc {

namespace {

using Factory = std::function<std::unique_ptr<Layer>(const LayerSpec&, ExecContext&)>;

template <typename T>
std::unique_ptr<Layer> make(const LayerSpec& spec, ExecContext& ec) {
  return std::make_unique<T>(spec, ec);
}

const std::map<std::string, Factory>& registry() {
  static const std::map<std::string, Factory> r = {
      {"Data", make<DataLayer>},
      {"Input", make<InputLayer>},
      {"Convolution", make<ConvolutionLayer>},
      {"Deconvolution", make<DeconvolutionLayer>},
      {"InnerProduct", make<InnerProductLayer>},
      {"Pooling", make<PoolingLayer>},
      {"LRN", make<LRNLayer>},
      {"ReLU", make<ReLULayer>},
      {"Sigmoid", make<SigmoidLayer>},
      {"TanH", make<TanHLayer>},
      {"Dropout", make<DropoutLayer>},
      {"Concat", make<ConcatLayer>},
      {"SoftmaxWithLoss", make<SoftmaxWithLossLayer>},
      {"Accuracy", make<AccuracyLayer>},
      {"EuclideanLoss", make<EuclideanLossLayer>},
      {"SigmoidCrossEntropyLoss", make<SigmoidCrossEntropyLossLayer>},
      {"ContrastiveLoss", make<ContrastiveLossLayer>},
      {"Softmax", make<SoftmaxLayer>},
      {"Eltwise", make<EltwiseLayer>},
      {"Power", make<PowerLayer>},
      {"AbsVal", make<AbsValLayer>},
      {"Exp", make<ExpLayer>},
      {"PReLU", make<PReLULayer>},
      {"Slice", make<SliceLayer>},
      {"Flatten", make<FlattenLayer>},
      {"Scale", make<ScaleLayer>},
      {"BatchNorm", make<BatchNormLayer>},
      {"ArgMax", make<ArgMaxLayer>},
      {"Reduction", make<ReductionLayer>},
  };
  return r;
}

}  // namespace

std::unique_ptr<Layer> create_layer(const LayerSpec& spec, ExecContext& ec) {
  auto it = registry().find(spec.type);
  if (it == registry().end()) {
    throw glp::InvalidArgument("unknown layer type '" + spec.type + "' for layer '" +
                               spec.name + "'");
  }
  return it->second(spec, ec);
}

std::vector<std::string> registered_layer_types() {
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const auto& [name, factory] : registry()) out.push_back(name);
  return out;
}

}  // namespace mc
