#include "minicaffe/layers/activation_layers.hpp"

#include "kernels/cpu_math.hpp"
#include "kernels/nn.hpp"

namespace mc {

namespace {
void shape_like_bottom(const std::vector<Blob*>& bottom,
                       const std::vector<Blob*>& top, const char* type) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              type << " expects one bottom and one top");
  if (top[0] != bottom[0]) top[0]->reshape_like(*bottom[0]);
}
}  // namespace

void ReLULayer::setup(const std::vector<Blob*>& bottom,
                      const std::vector<Blob*>& top) {
  shape_like_bottom(bottom, top, "ReLU");
}

void ReLULayer::forward(const std::vector<Blob*>& bottom,
                        const std::vector<Blob*>& top) {
  kern::relu_forward(launcher("fwd"), bottom[0]->count(), bottom[0]->data(),
                     top[0]->mutable_data(), spec_.params.negative_slope);
}

void ReLULayer::backward(const std::vector<Blob*>& top,
                         const std::vector<bool>& propagate_down,
                         const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  // In-place safe: with slope 0, sign(bottom data) survives the forward
  // overwrite, so using bottom->data() is correct either way.
  kern::relu_backward(launcher("bwd"), bottom[0]->count(), bottom[0]->data(),
                      top[0]->diff(), bottom[0]->mutable_diff(),
                      spec_.params.negative_slope);
}

void SigmoidLayer::setup(const std::vector<Blob*>& bottom,
                         const std::vector<Blob*>& top) {
  shape_like_bottom(bottom, top, "Sigmoid");
}

void SigmoidLayer::forward(const std::vector<Blob*>& bottom,
                           const std::vector<Blob*>& top) {
  kern::sigmoid_forward(launcher("fwd"), bottom[0]->count(), bottom[0]->data(),
                        top[0]->mutable_data());
}

void SigmoidLayer::backward(const std::vector<Blob*>& top,
                            const std::vector<bool>& propagate_down,
                            const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  kern::sigmoid_backward(launcher("bwd"), bottom[0]->count(), top[0]->data(),
                         top[0]->diff(), bottom[0]->mutable_diff());
}

void TanHLayer::setup(const std::vector<Blob*>& bottom,
                      const std::vector<Blob*>& top) {
  shape_like_bottom(bottom, top, "TanH");
}

void TanHLayer::forward(const std::vector<Blob*>& bottom,
                        const std::vector<Blob*>& top) {
  kern::tanh_forward(launcher("fwd"), bottom[0]->count(), bottom[0]->data(),
                     top[0]->mutable_data());
}

void TanHLayer::backward(const std::vector<Blob*>& top,
                         const std::vector<bool>& propagate_down,
                         const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  kern::tanh_backward(launcher("bwd"), bottom[0]->count(), top[0]->data(),
                      top[0]->diff(), bottom[0]->mutable_diff());
}

void DropoutLayer::setup(const std::vector<Blob*>& bottom,
                         const std::vector<Blob*>& top) {
  shape_like_bottom(bottom, top, "Dropout");
  const float ratio = spec_.params.dropout_ratio;
  GLP_REQUIRE(ratio >= 0.0f && ratio < 1.0f,
              "dropout_ratio must be in [0, 1), got " << ratio);
  mask_.allocate(*ec_->ctx, bottom[0]->count());
}

void DropoutLayer::forward(const std::vector<Blob*>& bottom,
                           const std::vector<Blob*>& top) {
  const float ratio = spec_.params.dropout_ratio;
  const float scale = 1.0f / (1.0f - ratio);
  const bool active = train_ && ec_->train;
  if (ec_->numeric()) {
    // Host-side Bernoulli mask, consumed by the simulated kernel later.
    // Safe: the solver synchronises each iteration before re-entry.
    float* m = mask_.data();
    for (std::size_t i = 0; i < mask_.count(); ++i) {
      m[i] = (!active || ec_->rng.next_double() >= ratio) ? 1.0f : 0.0f;
    }
  }
  kern::dropout_forward(launcher("fwd"), bottom[0]->count(), bottom[0]->data(),
                        mask_.data(), active ? scale : 1.0f,
                        top[0]->mutable_data());
}

void DropoutLayer::backward(const std::vector<Blob*>& top,
                            const std::vector<bool>& propagate_down,
                            const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  const bool active = train_ && ec_->train;
  const float scale = active ? 1.0f / (1.0f - spec_.params.dropout_ratio) : 1.0f;
  kern::dropout_forward(launcher("bwd"), bottom[0]->count(), top[0]->diff(),
                        mask_.data(), scale, bottom[0]->mutable_diff());
}

}  // namespace mc
