#pragma once
// Elementwise activation layers (ReLU / Sigmoid / TanH) and Dropout.
// All support in-place operation (top blob == bottom blob), the usual
// Caffe configuration. Backward *assigns* the bottom diff, so these
// layers must be a blob's only non-in-place consumer (Net verifies this).

#include "minicaffe/layer.hpp"

namespace mc {

class ReLULayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
};

class SigmoidLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
};

class TanHLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
};

class DropoutLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;

  /// Inference mode: mask becomes identity.
  void set_train(bool train) { train_ = train; }

 private:
  DeviceBuffer<float> mask_;
  bool train_ = true;
};

}  // namespace mc
