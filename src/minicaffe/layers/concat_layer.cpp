#include "minicaffe/layers/concat_layer.hpp"

#include "kernels/nn.hpp"

namespace mc {

void ConcatLayer::setup(const std::vector<Blob*>& bottom,
                        const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() >= 1 && top.size() == 1,
              "Concat expects >= 1 bottoms and one top");
  GLP_REQUIRE(spec_.params.axis == 1, "Concat currently supports the channel axis");
  const int num = bottom[0]->num();
  const int h = bottom[0]->height();
  const int w = bottom[0]->width();
  offsets_.clear();
  total_channels_ = 0;
  for (const Blob* b : bottom) {
    GLP_REQUIRE(b->num() == num && b->height() == h && b->width() == w,
                "Concat bottoms must agree on every non-channel axis");
    offsets_.push_back(total_channels_);
    total_channels_ += b->channels();
  }
  top[0]->reshape({num, total_channels_, h, w});
}

void ConcatLayer::forward(const std::vector<Blob*>& bottom,
                          const std::vector<Blob*>& top) {
  const kern::Launcher L = launcher("fwd");
  const int num = top[0]->num();
  const int spatial = top[0]->height() * top[0]->width();
  const int top_stride = total_channels_ * spatial;
  for (std::size_t i = 0; i < bottom.size(); ++i) {
    const int cols = bottom[i]->channels() * spatial;
    kern::copy_slab(L, num, cols, bottom[i]->data(), cols,
                    top[0]->mutable_data() +
                        static_cast<std::size_t>(offsets_[i]) * spatial,
                    top_stride);
  }
}

void ConcatLayer::backward(const std::vector<Blob*>& top,
                           const std::vector<bool>& propagate_down,
                           const std::vector<Blob*>& bottom) {
  const kern::Launcher L = launcher("bwd");
  const int num = top[0]->num();
  const int spatial = top[0]->height() * top[0]->width();
  const int top_stride = total_channels_ * spatial;
  for (std::size_t i = 0; i < bottom.size(); ++i) {
    if (!propagate_down[i]) continue;
    const int cols = bottom[i]->channels() * spatial;
    kern::add_slab(L, num, cols,
                   top[0]->diff() + static_cast<std::size_t>(offsets_[i]) * spatial,
                   top_stride, bottom[i]->mutable_diff(), cols);
  }
}

}  // namespace mc
