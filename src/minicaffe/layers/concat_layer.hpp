#pragma once
// Channel-axis concatenation (GoogLeNet inception outputs). Backward
// accumulates the sliced gradients into the bottoms.

#include "minicaffe/layer.hpp"

namespace mc {

class ConcatLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool accumulates_bottom_diff() const override { return true; }

 private:
  std::vector<int> offsets_;  // channel offsets per bottom
  int total_channels_ = 0;
};

}  // namespace mc
