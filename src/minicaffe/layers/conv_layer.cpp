#include "minicaffe/layers/conv_layer.hpp"

#include <algorithm>

#include "kernels/blas.hpp"
#include "kernels/cpu_math.hpp"
#include "kernels/nn.hpp"

namespace mc {

void ConvolutionLayer::setup(const std::vector<Blob*>& bottom,
                             const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "Convolution expects one bottom and one top");
  const LayerParams& p = spec_.params;
  GLP_REQUIRE(p.num_output > 0 && p.kernel_size > 0,
              "Convolution needs num_output and kernel_size");

  num_ = bottom[0]->num();
  channels_ = bottom[0]->channels();
  height_ = bottom[0]->height();
  width_ = bottom[0]->width();
  out_h_ = kern::cpu::conv_out_size(height_, p.kernel_size, p.pad, p.stride);
  out_w_ = kern::cpu::conv_out_size(width_, p.kernel_size, p.pad, p.stride);
  GLP_REQUIRE(out_h_ > 0 && out_w_ > 0,
              "Convolution output collapses to zero for " << spec_.name);
  GLP_REQUIRE(p.group >= 1 && channels_ % p.group == 0 &&
                  p.num_output % p.group == 0,
              "group " << p.group << " must divide input channels "
                       << channels_ << " and num_output " << p.num_output);
  // kernel_dim_ is the GEMM K dimension *per group*.
  kernel_dim_ = (channels_ / p.group) * p.kernel_size * p.kernel_size;
  accum_slots_ = std::min(kMaxAccumSlots, num_);

  top[0]->reshape({num_, p.num_output, out_h_, out_w_});

  if (param_blobs_.empty()) {
    param_blobs_.push_back(
        std::make_shared<Blob>(*ec_->ctx, std::vector<int>{p.num_output, kernel_dim_}));
    param_blobs_.push_back(
        std::make_shared<Blob>(*ec_->ctx, std::vector<int>{p.num_output}));
    if (ec_->numeric()) {
      fill_blob(p.weight_filler, ec_->rng, *param_blobs_[0]);
      fill_blob(p.bias_filler, ec_->rng, *param_blobs_[1]);
    }
  }

  // Gradient-accumulation scratch is backward-only; forward-only serving
  // sessions never pay for it.
  if (!ec_->inference) {
    const std::size_t spatial = static_cast<std::size_t>(out_h_) * out_w_;
    ones_.allocate(*ec_->ctx, spatial);
    if (ec_->numeric()) kern::cpu::fill(spatial, 1.0f, ones_.data());

    weight_partial_.allocate(*ec_->ctx, static_cast<std::size_t>(accum_slots_) *
                                            p.num_output * kernel_dim_);
    bias_partial_.allocate(*ec_->ctx, static_cast<std::size_t>(accum_slots_) *
                                          p.num_output);
  }
}

void ConvolutionLayer::ensure_col_lane(int lane) {
  // The col buffer spans ALL input channels (kernel_dim_ is per group).
  const std::size_t col_count = static_cast<std::size_t>(kernel_dim_) *
                                spec_.params.group * out_h_ * out_w_;
  while (static_cast<int>(col_lanes_.size()) <= lane) {
    col_lanes_.emplace_back(*ec_->ctx, col_count);
  }
}

void ConvolutionLayer::forward(const std::vector<Blob*>& bottom,
                               const std::vector<Blob*>& top) {
  const LayerParams& p = spec_.params;
  const float* bottom_data = bottom[0]->data();
  float* top_data = top[0]->mutable_data();
  const float* weights = param_blobs_[0]->data();
  const float* bias = param_blobs_[1]->data();
  const int spatial = out_h_ * out_w_;
  const std::size_t bottom_stride = bottom[0]->sample_size();
  const std::size_t top_stride = top[0]->sample_size();
  // DAG fusion pass: the in-place ReLU that consumes this layer's top is
  // absorbed as a GEMM epilogue (its own forward is skipped). The
  // epilogue is elementwise over each per-sample, per-group output
  // region, and those regions tile the top blob exactly once — so the
  // result is bit-identical to a separate whole-blob activation kernel.
  const float* relu_slope = ec_->relu_epilogue(spec_.name);

  ec_->dispatcher->begin_scope(spec_.name + "/fwd", static_cast<std::size_t>(num_));
  for (int n = 0; n < num_; ++n) {
    const kern::Lane lane = ec_->dispatcher->task_lane(static_cast<std::size_t>(n));
    ensure_col_lane(lane.lane);
    float* col = col_lanes_[static_cast<std::size_t>(lane.lane)].data();
    const kern::Launcher L = launcher("fwd", lane.stream);

    kern::im2col(L, bottom_data + static_cast<std::size_t>(n) * bottom_stride,
                 channels_, height_, width_, p.kernel_size, p.kernel_size, p.pad,
                 p.pad, p.stride, p.stride, col);
    // Per group g: top_g [Co/g x spatial] = W_g [Co/g x kernel_dim] * col_g.
    const int group_out = p.num_output / p.group;
    for (int g = 0; g < p.group; ++g) {
      const float* w_g = weights + static_cast<std::size_t>(g) * group_out * kernel_dim_;
      const float* col_g = col + static_cast<std::size_t>(g) * kernel_dim_ * spatial;
      float* top_g = top_data + static_cast<std::size_t>(n) * top_stride +
                     static_cast<std::size_t>(g) * group_out * spatial;
      if (relu_slope != nullptr && p.bias_term) {
        kern::sgemm_bias_relu_fused(
            L, group_out, spatial, kernel_dim_, w_g, kernel_dim_, col_g,
            spatial, bias + static_cast<std::size_t>(g) * group_out, top_g,
            spatial, *relu_slope);
      } else if (ec_->fuse_conv_bias && p.bias_term) {
        kern::sgemm_bias_fused(L, group_out, spatial, kernel_dim_, w_g,
                               kernel_dim_, col_g, spatial,
                               bias + static_cast<std::size_t>(g) * group_out,
                               top_g, spatial);
      } else {
        kern::sgemm(L, false, false, group_out, spatial, kernel_dim_, 1.0f, w_g,
                    kernel_dim_, col_g, spatial, 0.0f, top_g, spatial);
        if (p.bias_term) {
          kern::add_bias(L, group_out, spatial,
                         bias + static_cast<std::size_t>(g) * group_out, top_g);
        }
      }
    }
  }
  ec_->dispatcher->end_scope();
}

void ConvolutionLayer::backward(const std::vector<Blob*>& top,
                                const std::vector<bool>& propagate_down,
                                const std::vector<Blob*>& bottom) {
  const LayerParams& p = spec_.params;
  const float* bottom_data = bottom[0]->data();
  const float* top_diff = top[0]->diff();
  const float* weights = param_blobs_[0]->data();
  const int spatial = out_h_ * out_w_;
  const std::size_t bottom_stride = bottom[0]->sample_size();
  const std::size_t top_stride = top[0]->sample_size();
  const std::size_t wcount = param_blobs_[0]->count();
  float* bottom_diff = propagate_down[0] ? bottom[0]->mutable_diff() : nullptr;

  // Zero the partial accumulators on the default stream; the scope's
  // per-sample GEMMs accumulate into them (β = 1).
  const kern::Launcher L0 = launcher("bwd");
  kern::sfill(L0, weight_partial_.count(), 0.0f, weight_partial_.data());
  if (p.bias_term) kern::sfill(L0, bias_partial_.count(), 0.0f, bias_partial_.data());

  ec_->dispatcher->begin_scope(spec_.name + "/bwd", static_cast<std::size_t>(num_));
  for (int n = 0; n < num_; ++n) {
    const kern::Lane lane = ec_->dispatcher->task_lane(static_cast<std::size_t>(n));
    ensure_col_lane(lane.lane);
    float* col = col_lanes_[static_cast<std::size_t>(lane.lane)].data();
    const kern::Launcher L = launcher("bwd", lane.stream);
    const int slot = n % accum_slots_;
    const float* tdiff_n = top_diff + static_cast<std::size_t>(n) * top_stride;

    // Recompute col(n) (Caffe does the same — the forward buffer is shared).
    kern::im2col(L, bottom_data + static_cast<std::size_t>(n) * bottom_stride,
                 channels_, height_, width_, p.kernel_size, p.kernel_size, p.pad,
                 p.pad, p.stride, p.stride, col);
    const int group_out = p.num_output / p.group;
    for (int g = 0; g < p.group; ++g) {
      const float* tdiff_g =
          tdiff_n + static_cast<std::size_t>(g) * group_out * spatial;
      const float* col_g = col + static_cast<std::size_t>(g) * kernel_dim_ * spatial;
      // dW_g,slot += top_diff_g [Co/g x spatial] * col_g^T
      kern::sgemm(L, false, true, group_out, kernel_dim_, spatial, 1.0f,
                  tdiff_g, spatial, col_g, spatial, 1.0f,
                  weight_partial_.data() + static_cast<std::size_t>(slot) * wcount +
                      static_cast<std::size_t>(g) * group_out * kernel_dim_,
                  kernel_dim_);
    }
    if (p.bias_term) {
      // db_slot += top_diff(n) * ones
      kern::sgemm(L, false, false, p.num_output, 1, spatial, 1.0f, tdiff_n,
                  spatial, ones_.data(), 1, 1.0f,
                  bias_partial_.data() +
                      static_cast<std::size_t>(slot) * p.num_output,
                  1);
    }
    if (bottom_diff != nullptr) {
      // col_diff_g = W_g^T [kernel_dim x Co/g] * top_diff_g; reuses the col
      // buffer (safe: the dW GEMMs above are ordered first on this stream).
      for (int g = 0; g < p.group; ++g) {
        const float* w_g =
            weights + static_cast<std::size_t>(g) * group_out * kernel_dim_;
        const float* tdiff_g =
            tdiff_n + static_cast<std::size_t>(g) * group_out * spatial;
        float* col_g = col + static_cast<std::size_t>(g) * kernel_dim_ * spatial;
        kern::sgemm(L, true, false, kernel_dim_, spatial, group_out, 1.0f, w_g,
                    kernel_dim_, tdiff_g, spatial, 0.0f, col_g, spatial);
      }
      kern::col2im(L, col, channels_, height_, width_, p.kernel_size,
                   p.kernel_size, p.pad, p.pad, p.stride, p.stride,
                   bottom_diff + static_cast<std::size_t>(n) * bottom_stride);
    }
  }
  ec_->dispatcher->end_scope();

  // Canonical ascending-slot reduction into the parameter diffs.
  kern::reduce_lanes(L0, accum_slots_, wcount, weight_partial_.data(),
                     param_blobs_[0]->mutable_diff());
  if (p.bias_term) {
    kern::reduce_lanes(L0, accum_slots_, static_cast<std::size_t>(p.num_output),
                       bias_partial_.data(), param_blobs_[1]->mutable_diff());
  }
}

}  // namespace mc
