#pragma once
// Convolution layer, Caffe-style: per-sample im2col + sgemm (+ bias).
// This is the layer GLP4NN parallelises (paper §3.3.1: the batch loop of
// Algorithms 1 and 2). Every sample's kernel chain is an independent
// *task* handed to the dispatcher, which decides the stream.
//
// Deterministic parallel gradient accumulation: each sample's weight and
// bias gradient GEMM accumulates into one of `accum_slots` partial
// buffers (slot = n mod slots, slots = min(32, N)); a final reduction on
// the default stream sums the slots in canonical ascending order. When
// every sample of a slot runs on one stream (always true for the serial
// baseline; true for GLP4NN whenever the pool size divides 32 — enforced
// by the scheduler's strict-repro mode) training is bit-identical across
// schedulers.

#include "minicaffe/layer.hpp"

namespace mc {

class ConvolutionLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool accumulates_bottom_diff() const override { return true; }

  int out_height() const { return out_h_; }
  int out_width() const { return out_w_; }
  int accum_slots() const { return accum_slots_; }

  /// Maximum number of gradient accumulation slots (see header comment).
  static constexpr int kMaxAccumSlots = 32;

 private:
  void ensure_col_lane(int lane);

  int num_ = 0, channels_ = 0, height_ = 0, width_ = 0;
  int out_h_ = 0, out_w_ = 0;
  int kernel_dim_ = 0;  // Ci * kh * kw
  int accum_slots_ = 1;

  std::vector<DeviceBuffer<float>> col_lanes_;
  DeviceBuffer<float> ones_;           // [out_h*out_w], bias gradient helper
  DeviceBuffer<float> weight_partial_;  // [slots, Co, kernel_dim]
  DeviceBuffer<float> bias_partial_;    // [slots, Co]
};

}  // namespace mc
