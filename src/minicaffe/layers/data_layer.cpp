#include "minicaffe/layers/data_layer.hpp"

namespace mc {

void DataLayer::setup(const std::vector<Blob*>& bottom,
                      const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.empty(), "Data layers take no bottoms");
  const LayerParams& p = spec_.params;
  GLP_REQUIRE(p.batch_size > 0, "Data layer needs batch_size");
  const std::size_t expected_tops = p.pair_data ? 3 : 2;
  GLP_REQUIRE(top.size() == expected_tops,
              "Data layer expects " << expected_tops << " tops");

  dataset_ = std::make_unique<SyntheticDataset>(p.dataset, /*seed=*/0xDA7A5E7ULL);
  const DatasetSpec& d = p.dataset;
  top[0]->reshape({p.batch_size, d.channels, d.height, d.width});
  if (p.pair_data) {
    top[1]->reshape({p.batch_size, d.channels, d.height, d.width});
    top[2]->reshape({p.batch_size});
  } else {
    top[1]->reshape({p.batch_size});
  }
  staging_images_.resize(top[0]->count());
  if (p.pair_data) staging_images_p_.resize(top[0]->count());
  staging_labels_.resize(static_cast<std::size_t>(p.batch_size));
}

void DataLayer::forward(const std::vector<Blob*>& bottom,
                        const std::vector<Blob*>& top) {
  (void)bottom;
  const LayerParams& p = spec_.params;
  const int batch = p.batch_size;

  if (ec_->numeric()) {
    if (!p.pair_data) {
      dataset_->fill_batch(cursor_, batch, staging_images_.data(),
                           staging_labels_.data());
    } else {
      // Pairs: first element sequential; second element same class
      // (similar, ~50%) or any index (checked for dissimilarity).
      const std::uint64_t size =
          static_cast<std::uint64_t>(p.dataset.train_size);
      for (int n = 0; n < batch; ++n) {
        const std::uint64_t a = (cursor_ + static_cast<std::uint64_t>(n)) % size;
        dataset_->fill_sample(
            a, staging_images_.data() + static_cast<std::size_t>(n) *
                                            p.dataset.sample_size());
        const bool want_similar = ec_->rng.next_double() < 0.5;
        std::uint64_t b = ec_->rng.next_below(size);
        for (int tries = 0; tries < 64; ++tries) {
          const bool similar = dataset_->label_of(b) == dataset_->label_of(a);
          if (similar == want_similar) break;
          b = ec_->rng.next_below(size);
        }
        dataset_->fill_sample(
            b, staging_images_p_.data() + static_cast<std::size_t>(n) *
                                              p.dataset.sample_size());
        staging_labels_[static_cast<std::size_t>(n)] =
            dataset_->label_of(b) == dataset_->label_of(a) ? 1.0f : 0.0f;
      }
    }
  }
  cursor_ += shard_stride_ != 0 ? shard_stride_
                                : static_cast<std::uint64_t>(batch);

  // Upload through the simulated copy engine on the context's home
  // stream (the default stream outside serving).
  scuda::Context& ctx = *ec_->ctx;
  ctx.memcpy_async(top[0]->mutable_data(), staging_images_.data(),
                   top[0]->count() * sizeof(float), /*h2d=*/true,
                   ec_->home_stream);
  if (p.pair_data) {
    ctx.memcpy_async(top[1]->mutable_data(), staging_images_p_.data(),
                     top[1]->count() * sizeof(float), true,
                     ec_->home_stream);
    ctx.memcpy_async(top[2]->mutable_data(), staging_labels_.data(),
                     staging_labels_.size() * sizeof(float), true,
                     ec_->home_stream);
  } else {
    ctx.memcpy_async(top[1]->mutable_data(), staging_labels_.data(),
                     staging_labels_.size() * sizeof(float), true,
                     ec_->home_stream);
  }
}

void DataLayer::backward(const std::vector<Blob*>&, const std::vector<bool>&,
                         const std::vector<Blob*>&) {}

void DataLayer::configure_shard(std::uint64_t offset, std::uint64_t stride) {
  const LayerParams& p = spec_.params;
  GLP_REQUIRE(!p.pair_data,
              "sharding is unavailable in pair mode: pair sampling draws "
              "from the shared RNG and diverges across replicas");
  GLP_REQUIRE(stride >= static_cast<std::uint64_t>(p.batch_size),
              "shard stride must cover at least one batch");
  cursor_ = offset;
  shard_stride_ = stride;
}

}  // namespace mc
