#pragma once
// Synthetic data layer. Generates a deterministic batch on the host and
// uploads it with simulated H2D copies (so iteration timelines include
// the input transfer, as a real Caffe data layer's prefetch would).
//
// Regular mode tops: (data [N,C,H,W], label [N]).
// Pair mode (Siamese): (data, data_p, similarity [N]) where ~50% of the
// pairs share a class (similarity 1).

#include "minicaffe/layer.hpp"

namespace mc {

class DataLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool has_backward() const override { return false; }

  std::uint64_t cursor() const { return cursor_; }
  const SyntheticDataset& dataset() const { return *dataset_; }

 private:
  std::unique_ptr<SyntheticDataset> dataset_;
  std::uint64_t cursor_ = 0;
  // Host staging buffers; uploaded asynchronously each forward.
  std::vector<float> staging_images_;
  std::vector<float> staging_images_p_;
  std::vector<float> staging_labels_;
};

}  // namespace mc
