#pragma once
// Synthetic data layer. Generates a deterministic batch on the host and
// uploads it with simulated H2D copies (so iteration timelines include
// the input transfer, as a real Caffe data layer's prefetch would).
//
// Regular mode tops: (data [N,C,H,W], label [N]).
// Pair mode (Siamese): (data, data_p, similarity [N]) where ~50% of the
// pairs share a class (similarity 1).

#include "minicaffe/layer.hpp"

namespace mc {

class DataLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool has_backward() const override { return false; }

  std::uint64_t cursor() const { return cursor_; }
  const SyntheticDataset& dataset() const { return *dataset_; }

  /// Data-parallel sharding: this replica reads batches starting at
  /// sample `offset`, advancing the cursor by `stride` (= fleet size ×
  /// batch) per iteration instead of by its own batch size. Device d of
  /// an N-device fleet uses offset = d·batch, stride = N·batch, so the
  /// fleet's iteration k consumes exactly the samples a single device
  /// with the same batch would consume in micro-batches kN..kN+N-1 —
  /// the sample partition the bit-exactness contract fixes. Rejected in
  /// pair mode (pair sampling draws from the shared ExecContext RNG,
  /// which diverges across replicas).
  void configure_shard(std::uint64_t offset, std::uint64_t stride);

 private:
  std::unique_ptr<SyntheticDataset> dataset_;
  std::uint64_t cursor_ = 0;
  std::uint64_t shard_stride_ = 0;  ///< 0: unsharded (advance by batch)
  // Host staging buffers; uploaded asynchronously each forward.
  std::vector<float> staging_images_;
  std::vector<float> staging_images_p_;
  std::vector<float> staging_labels_;
};

}  // namespace mc
