#include "minicaffe/layers/deconv_layer.hpp"

#include <algorithm>

#include "kernels/blas.hpp"
#include "kernels/cpu_math.hpp"
#include "kernels/nn.hpp"

namespace mc {

// Shapes: bottom [N, Ci, H, W] → top [N, Co, H', W'] with
// H' = stride·(H−1) + kernel − 2·pad (the inverse of conv_out_size).
// Weights follow Caffe's deconv layout [Ci, Co·kh·kw]: the forward GEMM is
// col = W^T · bottom(n), scattered by col2im into the (larger) output.

void DeconvolutionLayer::setup(const std::vector<Blob*>& bottom,
                               const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "Deconvolution expects one bottom and one top");
  const LayerParams& p = spec_.params;
  GLP_REQUIRE(p.num_output > 0 && p.kernel_size > 0,
              "Deconvolution needs num_output and kernel_size");
  GLP_REQUIRE(p.group == 1, "Deconvolution does not support groups yet");

  num_ = bottom[0]->num();
  channels_ = bottom[0]->channels();
  height_ = bottom[0]->height();
  width_ = bottom[0]->width();
  out_h_ = p.stride * (height_ - 1) + p.kernel_size - 2 * p.pad;
  out_w_ = p.stride * (width_ - 1) + p.kernel_size - 2 * p.pad;
  GLP_REQUIRE(out_h_ > 0 && out_w_ > 0,
              "Deconvolution output collapses to zero for " << spec_.name);
  kernel_dim_ = p.num_output * p.kernel_size * p.kernel_size;
  accum_slots_ = std::min(32, num_);

  top[0]->reshape({num_, p.num_output, out_h_, out_w_});

  if (param_blobs_.empty()) {
    param_blobs_.push_back(
        std::make_shared<Blob>(*ec_->ctx, std::vector<int>{channels_, kernel_dim_}));
    param_blobs_.push_back(
        std::make_shared<Blob>(*ec_->ctx, std::vector<int>{p.num_output}));
    if (ec_->numeric()) {
      fill_blob(p.weight_filler, ec_->rng, *param_blobs_[0]);
      fill_blob(p.bias_filler, ec_->rng, *param_blobs_[1]);
    }
  }

  // Gradient-accumulation scratch is backward-only; forward-only serving
  // sessions never pay for it.
  if (!ec_->inference) {
    const std::size_t out_spatial = static_cast<std::size_t>(out_h_) * out_w_;
    ones_.allocate(*ec_->ctx, out_spatial);
    if (ec_->numeric()) kern::cpu::fill(out_spatial, 1.0f, ones_.data());

    weight_partial_.allocate(*ec_->ctx, static_cast<std::size_t>(accum_slots_) *
                                            channels_ * kernel_dim_);
    bias_partial_.allocate(*ec_->ctx, static_cast<std::size_t>(accum_slots_) *
                                          p.num_output);
  }
}

void DeconvolutionLayer::ensure_col_lane(int lane) {
  const std::size_t count =
      static_cast<std::size_t>(kernel_dim_) * height_ * width_;
  while (static_cast<int>(col_lanes_.size()) <= lane) {
    col_lanes_.emplace_back(*ec_->ctx, count);
  }
}

void DeconvolutionLayer::forward(const std::vector<Blob*>& bottom,
                                 const std::vector<Blob*>& top) {
  const LayerParams& p = spec_.params;
  const float* bottom_data = bottom[0]->data();
  float* top_data = top[0]->mutable_data();
  const float* weights = param_blobs_[0]->data();
  const float* bias = param_blobs_[1]->data();
  const int in_spatial = height_ * width_;
  const int out_spatial = out_h_ * out_w_;
  const std::size_t bottom_stride = bottom[0]->sample_size();
  const std::size_t top_stride = top[0]->sample_size();

  ec_->dispatcher->begin_scope(spec_.name + "/fwd", static_cast<std::size_t>(num_));
  for (int n = 0; n < num_; ++n) {
    const kern::Lane lane = ec_->dispatcher->task_lane(static_cast<std::size_t>(n));
    ensure_col_lane(lane.lane);
    float* col = col_lanes_[static_cast<std::size_t>(lane.lane)].data();
    const kern::Launcher L = launcher("fwd", lane.stream);
    float* top_n = top_data + static_cast<std::size_t>(n) * top_stride;

    // col [kernel_dim x in_spatial] = W^T [kernel_dim x Ci] · bottom(n)
    kern::sgemm(L, true, false, kernel_dim_, in_spatial, channels_, 1.0f,
                weights, kernel_dim_,
                bottom_data + static_cast<std::size_t>(n) * bottom_stride,
                in_spatial, 0.0f, col, in_spatial);
    // Scatter-add into the output (which col2im expects pre-zeroed).
    kern::sfill(L, top_stride, 0.0f, top_n);
    kern::col2im(L, col, p.num_output, out_h_, out_w_, p.kernel_size,
                 p.kernel_size, p.pad, p.pad, p.stride, p.stride, top_n);
    if (p.bias_term) {
      kern::add_bias(L, p.num_output, out_spatial, bias, top_n);
    }
  }
  ec_->dispatcher->end_scope();
}

void DeconvolutionLayer::backward(const std::vector<Blob*>& top,
                                  const std::vector<bool>& propagate_down,
                                  const std::vector<Blob*>& bottom) {
  const LayerParams& p = spec_.params;
  const float* bottom_data = bottom[0]->data();
  const float* top_diff = top[0]->diff();
  const float* weights = param_blobs_[0]->data();
  const int in_spatial = height_ * width_;
  const int out_spatial = out_h_ * out_w_;
  const std::size_t bottom_stride = bottom[0]->sample_size();
  const std::size_t top_stride = top[0]->sample_size();
  const std::size_t wcount = param_blobs_[0]->count();
  float* bottom_diff = propagate_down[0] ? bottom[0]->mutable_diff() : nullptr;

  const kern::Launcher L0 = launcher("bwd");
  kern::sfill(L0, weight_partial_.count(), 0.0f, weight_partial_.data());
  if (p.bias_term) kern::sfill(L0, bias_partial_.count(), 0.0f, bias_partial_.data());

  ec_->dispatcher->begin_scope(spec_.name + "/bwd", static_cast<std::size_t>(num_));
  for (int n = 0; n < num_; ++n) {
    const kern::Lane lane = ec_->dispatcher->task_lane(static_cast<std::size_t>(n));
    ensure_col_lane(lane.lane);
    float* col = col_lanes_[static_cast<std::size_t>(lane.lane)].data();
    const kern::Launcher L = launcher("bwd", lane.stream);
    const int slot = n % accum_slots_;
    const float* tdiff_n = top_diff + static_cast<std::size_t>(n) * top_stride;

    // col = im2col(top_diff(n)) over the *output* geometry.
    kern::im2col(L, tdiff_n, p.num_output, out_h_, out_w_, p.kernel_size,
                 p.kernel_size, p.pad, p.pad, p.stride, p.stride, col);
    // dW_slot [Ci x kernel_dim] += bottom(n) [Ci x in_spatial] · col^T
    kern::sgemm(L, false, true, channels_, kernel_dim_, in_spatial, 1.0f,
                bottom_data + static_cast<std::size_t>(n) * bottom_stride,
                in_spatial, col, in_spatial, 1.0f,
                weight_partial_.data() + static_cast<std::size_t>(slot) * wcount,
                kernel_dim_);
    if (p.bias_term) {
      kern::sgemm(L, false, false, p.num_output, 1, out_spatial, 1.0f, tdiff_n,
                  out_spatial, ones_.data(), 1, 1.0f,
                  bias_partial_.data() +
                      static_cast<std::size_t>(slot) * p.num_output,
                  1);
    }
    if (bottom_diff != nullptr) {
      // dbottom(n) [Ci x in_spatial] += W [Ci x kernel_dim] · col
      kern::sgemm(L, false, false, channels_, in_spatial, kernel_dim_, 1.0f,
                  weights, kernel_dim_, col, in_spatial, 1.0f,
                  bottom_diff + static_cast<std::size_t>(n) * bottom_stride,
                  in_spatial);
    }
  }
  ec_->dispatcher->end_scope();

  kern::reduce_lanes(L0, accum_slots_, wcount, weight_partial_.data(),
                     param_blobs_[0]->mutable_diff());
  if (p.bias_term) {
    kern::reduce_lanes(L0, accum_slots_, static_cast<std::size_t>(p.num_output),
                       bias_partial_.data(), param_blobs_[1]->mutable_diff());
  }
}

}  // namespace mc
