#pragma once
// Deconvolution (transposed convolution), Caffe-style: the forward pass
// is convolution's backward-data path (GEMM + col2im per sample) and the
// backward-data pass is im2col + GEMM. Like Convolution it exposes
// batch-level parallelism, so it is dispatched through the GLP4NN
// scheduler — demonstrating the network-agnostic claim on a layer the
// paper never ran.

#include "minicaffe/layer.hpp"

namespace mc {

class DeconvolutionLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool accumulates_bottom_diff() const override { return true; }

  int out_height() const { return out_h_; }
  int out_width() const { return out_w_; }

 private:
  void ensure_col_lane(int lane);

  int num_ = 0, channels_ = 0, height_ = 0, width_ = 0;
  int out_h_ = 0, out_w_ = 0;
  int kernel_dim_ = 0;  // num_output * kh * kw (the GEMM M dimension)
  int accum_slots_ = 1;

  std::vector<DeviceBuffer<float>> col_lanes_;
  DeviceBuffer<float> ones_;
  DeviceBuffer<float> weight_partial_;
  DeviceBuffer<float> bias_partial_;
};

}  // namespace mc
