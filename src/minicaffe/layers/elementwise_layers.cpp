#include "minicaffe/layers/elementwise_layers.hpp"

#include <cmath>

#include "kernels/cpu_math.hpp"
#include "kernels/nn.hpp"

namespace mc {

namespace {
gpusim::LaunchConfig ew_config(std::uint64_t count, int regs) {
  gpusim::LaunchConfig cfg;
  cfg.block = gpusim::Dim3{256, 1, 1};
  cfg.grid = gpusim::Dim3{std::max(1u, kern::blocks_for(count, 256)), 1, 1};
  cfg.regs_per_thread = regs;
  return cfg;
}

gpusim::KernelCost ew_cost(std::uint64_t count, double flops_per,
                           double bytes_per) {
  return {static_cast<double>(count) * flops_per,
          static_cast<double>(count) * bytes_per};
}
}  // namespace

// --- Softmax -------------------------------------------------------------------

void SoftmaxLayer::setup(const std::vector<Blob*>& bottom,
                         const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "Softmax expects one bottom and one top");
  GLP_REQUIRE(top[0] != bottom[0], "Softmax backward needs its own output");
  top[0]->reshape_like(*bottom[0]);
}

void SoftmaxLayer::forward(const std::vector<Blob*>& bottom,
                           const std::vector<Blob*>& top) {
  kern::softmax_forward(launcher("fwd"), bottom[0]->num(),
                        static_cast<int>(bottom[0]->sample_size()),
                        bottom[0]->data(), top[0]->mutable_data());
}

void SoftmaxLayer::backward(const std::vector<Blob*>& top,
                            const std::vector<bool>& propagate_down,
                            const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  const int rows = bottom[0]->num();
  const int classes = static_cast<int>(bottom[0]->sample_size());
  const float* prob = top[0]->data();
  const float* dy = top[0]->diff();
  float* dx = bottom[0]->mutable_diff();
  launcher("bwd").launch(
      "softmax_backward_kernel",
      ew_config(static_cast<std::uint64_t>(rows) * classes, 28),
      ew_cost(static_cast<std::uint64_t>(rows) * classes, 4.0, 16.0),
      [=] { kern::cpu::softmax_backward(rows, classes, prob, dy, dx); });
}

// --- Eltwise --------------------------------------------------------------------

void EltwiseLayer::setup(const std::vector<Blob*>& bottom,
                         const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() >= 2 && top.size() == 1,
              "Eltwise expects >= 2 bottoms and one top");
  for (const Blob* b : bottom) {
    GLP_REQUIRE(b->count() == bottom[0]->count(),
                "Eltwise bottoms must have identical element counts");
  }
  top[0]->reshape_like(*bottom[0]);

  coeffs_ = spec_.params.eltwise_coeffs;
  if (coeffs_.empty()) coeffs_.assign(bottom.size(), 1.0f);
  GLP_REQUIRE(coeffs_.size() == bottom.size(),
              "Eltwise needs one coefficient per bottom");
  GLP_REQUIRE(spec_.params.eltwise == EltwiseOp::kSum || coeffs_.size() == bottom.size(),
              "coefficients only apply to SUM");
  if (spec_.params.eltwise == EltwiseOp::kMax) {
    max_arg_.allocate(*ec_->ctx, top[0]->count());
  }
}

void EltwiseLayer::forward(const std::vector<Blob*>& bottom,
                           const std::vector<Blob*>& top) {
  const std::size_t count = top[0]->count();
  const EltwiseOp op = spec_.params.eltwise;
  std::vector<const float*> inputs;
  inputs.reserve(bottom.size());
  for (const Blob* b : bottom) inputs.push_back(b->data());
  float* out = top[0]->mutable_data();
  const std::vector<float> coeffs = coeffs_;
  int* args = max_arg_.empty() ? nullptr : max_arg_.data();

  launcher("fwd").launch(
      "eltwise_forward_kernel", ew_config(count, 20),
      ew_cost(count, 2.0 * static_cast<double>(bottom.size()),
              4.0 * (static_cast<double>(bottom.size()) + 1.0)),
      [=] {
        switch (op) {
          case EltwiseOp::kSum:
            for (std::size_t i = 0; i < count; ++i) {
              float acc = 0.0f;
              for (std::size_t b = 0; b < inputs.size(); ++b) {
                acc += coeffs[b] * inputs[b][i];
              }
              out[i] = acc;
            }
            break;
          case EltwiseOp::kProd:
            for (std::size_t i = 0; i < count; ++i) {
              float acc = 1.0f;
              for (const float* in : inputs) acc *= in[i];
              out[i] = acc;
            }
            break;
          case EltwiseOp::kMax:
            for (std::size_t i = 0; i < count; ++i) {
              float best = inputs[0][i];
              int arg = 0;
              for (std::size_t b = 1; b < inputs.size(); ++b) {
                if (inputs[b][i] > best) {
                  best = inputs[b][i];
                  arg = static_cast<int>(b);
                }
              }
              out[i] = best;
              args[i] = arg;
            }
            break;
        }
      });
}

void EltwiseLayer::backward(const std::vector<Blob*>& top,
                            const std::vector<bool>& propagate_down,
                            const std::vector<Blob*>& bottom) {
  const std::size_t count = top[0]->count();
  const EltwiseOp op = spec_.params.eltwise;
  const float* dy = top[0]->diff();
  const int* args = max_arg_.empty() ? nullptr : max_arg_.data();

  for (std::size_t b = 0; b < bottom.size(); ++b) {
    if (!propagate_down[b]) continue;
    float* dx = bottom[b]->mutable_diff();
    const float coeff = coeffs_[b];
    const int index = static_cast<int>(b);

    // PROD needs the other inputs; capture everything by value.
    std::vector<const float*> inputs;
    for (const Blob* blob : bottom) inputs.push_back(blob->data());
    const float* x = bottom[b]->data();

    launcher("bwd").launch(
        "eltwise_backward_kernel", ew_config(count, 24),
        ew_cost(count, 2.0 * static_cast<double>(bottom.size()), 16.0), [=] {
          switch (op) {
            case EltwiseOp::kSum:
              for (std::size_t i = 0; i < count; ++i) dx[i] += coeff * dy[i];
              break;
            case EltwiseOp::kProd:
              for (std::size_t i = 0; i < count; ++i) {
                float prod = 1.0f;
                for (std::size_t o = 0; o < inputs.size(); ++o) {
                  if (static_cast<int>(o) != index) prod *= inputs[o][i];
                }
                dx[i] += dy[i] * prod;
              }
              break;
            case EltwiseOp::kMax:
              for (std::size_t i = 0; i < count; ++i) {
                if (args[i] == index) dx[i] += dy[i];
              }
              break;
          }
          (void)x;
        });
  }
}

// --- Power -----------------------------------------------------------------------

void PowerLayer::setup(const std::vector<Blob*>& bottom,
                       const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "Power expects one bottom and one top");
  if (top[0] != bottom[0]) top[0]->reshape_like(*bottom[0]);
}

void PowerLayer::forward(const std::vector<Blob*>& bottom,
                         const std::vector<Blob*>& top) {
  const std::size_t count = bottom[0]->count();
  const float power = spec_.params.power;
  const float scale = spec_.params.power_scale;
  const float shift = spec_.params.power_shift;
  const float* x = bottom[0]->data();
  float* y = top[0]->mutable_data();
  launcher("fwd").launch("power_forward_kernel", ew_config(count, 18),
                         ew_cost(count, 12.0, 8.0), [=] {
                           kern::cpu::power_forward(count, x, y, power, scale,
                                                    shift);
                         });
}

void PowerLayer::backward(const std::vector<Blob*>& top,
                          const std::vector<bool>& propagate_down,
                          const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  const std::size_t count = bottom[0]->count();
  const float power = spec_.params.power;
  const float scale = spec_.params.power_scale;
  const float shift = spec_.params.power_shift;
  const float* x = bottom[0]->data();
  const float* dy = top[0]->diff();
  float* dx = bottom[0]->mutable_diff();
  launcher("bwd").launch("power_backward_kernel", ew_config(count, 22),
                         ew_cost(count, 14.0, 12.0), [=] {
                           kern::cpu::power_backward(count, x, dy, dx, power,
                                                     scale, shift);
                         });
}

// --- AbsVal -----------------------------------------------------------------------

void AbsValLayer::setup(const std::vector<Blob*>& bottom,
                        const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "AbsVal expects one bottom and one top");
  if (top[0] != bottom[0]) top[0]->reshape_like(*bottom[0]);
}

void AbsValLayer::forward(const std::vector<Blob*>& bottom,
                          const std::vector<Blob*>& top) {
  const std::size_t count = bottom[0]->count();
  const float* x = bottom[0]->data();
  float* y = top[0]->mutable_data();
  launcher("fwd").launch("absval_forward_kernel", ew_config(count, 10),
                         ew_cost(count, 1.0, 8.0),
                         [=] { kern::cpu::abs_forward(count, x, y); });
}

void AbsValLayer::backward(const std::vector<Blob*>& top,
                           const std::vector<bool>& propagate_down,
                           const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  const std::size_t count = bottom[0]->count();
  const float* x = bottom[0]->data();
  const float* dy = top[0]->diff();
  float* dx = bottom[0]->mutable_diff();
  launcher("bwd").launch("absval_backward_kernel", ew_config(count, 12),
                         ew_cost(count, 1.0, 12.0),
                         [=] { kern::cpu::abs_backward(count, x, dy, dx); });
}

// --- Exp --------------------------------------------------------------------------

void ExpLayer::setup(const std::vector<Blob*>& bottom,
                     const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "Exp expects one bottom and one top");
  GLP_REQUIRE(top[0] != bottom[0], "Exp backward reads its own output");
  top[0]->reshape_like(*bottom[0]);
}

void ExpLayer::forward(const std::vector<Blob*>& bottom,
                       const std::vector<Blob*>& top) {
  const std::size_t count = bottom[0]->count();
  const float* x = bottom[0]->data();
  float* y = top[0]->mutable_data();
  launcher("fwd").launch("exp_forward_kernel", ew_config(count, 14),
                         ew_cost(count, 10.0, 8.0),
                         [=] { kern::cpu::exp_forward(count, x, y); });
}

void ExpLayer::backward(const std::vector<Blob*>& top,
                        const std::vector<bool>& propagate_down,
                        const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  const std::size_t count = bottom[0]->count();
  const float* y = top[0]->data();
  const float* dy = top[0]->diff();
  float* dx = bottom[0]->mutable_diff();
  launcher("bwd").launch("exp_backward_kernel", ew_config(count, 12),
                         ew_cost(count, 1.0, 12.0),
                         [=] { kern::cpu::mul(count, dy, y, dx); });
}

// --- PReLU ------------------------------------------------------------------------

void PReLULayer::setup(const std::vector<Blob*>& bottom,
                       const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "PReLU expects one bottom and one top");
  GLP_REQUIRE(top[0] != bottom[0],
              "PReLU backward reads its input; run it out of place");
  top[0]->reshape_like(*bottom[0]);
  if (param_blobs_.empty()) {
    param_blobs_.push_back(
        std::make_shared<Blob>(*ec_->ctx, std::vector<int>{bottom[0]->channels()}));
    if (ec_->numeric()) {
      // Caffe default: slopes start at 0.25.
      kern::cpu::fill(param_blobs_[0]->count(), 0.25f,
                      param_blobs_[0]->mutable_data());
    }
  }
}

void PReLULayer::forward(const std::vector<Blob*>& bottom,
                         const std::vector<Blob*>& top) {
  const int num = bottom[0]->num();
  const int channels = bottom[0]->channels();
  const int spatial = static_cast<int>(bottom[0]->count()) / (num * channels);
  const float* x = bottom[0]->data();
  const float* slopes = param_blobs_[0]->data();
  float* y = top[0]->mutable_data();
  launcher("fwd").launch(
      "prelu_forward_kernel", ew_config(bottom[0]->count(), 16),
      ew_cost(bottom[0]->count(), 2.0, 12.0), [=] {
        for (int n = 0; n < num; ++n) {
          const std::size_t off =
              static_cast<std::size_t>(n) * channels * spatial;
          kern::cpu::prelu_forward(channels, spatial, x + off, slopes, y + off);
        }
      });
}

void PReLULayer::backward(const std::vector<Blob*>& top,
                          const std::vector<bool>& propagate_down,
                          const std::vector<Blob*>& bottom) {
  const int num = bottom[0]->num();
  const int channels = bottom[0]->channels();
  const int spatial = static_cast<int>(bottom[0]->count()) / (num * channels);
  const float* x = bottom[0]->data();
  const float* dy = top[0]->diff();
  const float* slopes = param_blobs_[0]->data();
  float* slope_grad = param_blobs_[0]->mutable_diff();
  float* dx = propagate_down[0] ? bottom[0]->mutable_diff() : nullptr;
  // Scratch for the unused in_grad when propagate_down is false.
  launcher("bwd").launch(
      "prelu_backward_kernel", ew_config(bottom[0]->count(), 24),
      ew_cost(bottom[0]->count(), 4.0, 20.0), [=] {
        std::vector<float> scratch;
        float* grad_target = dx;
        if (grad_target == nullptr) {
          scratch.resize(static_cast<std::size_t>(channels) * spatial);
          grad_target = scratch.data();
        }
        for (int n = 0; n < num; ++n) {
          const std::size_t off =
              static_cast<std::size_t>(n) * channels * spatial;
          kern::cpu::prelu_backward(channels, spatial, x + off, dy + off, slopes,
                                    dx != nullptr ? grad_target + off
                                                  : grad_target,
                                    slope_grad);
        }
      });
}

}  // namespace mc
