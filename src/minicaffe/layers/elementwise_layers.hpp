#pragma once
// Additional elementwise layers rounding out Caffe parity: plain Softmax,
// Eltwise (SUM / PROD / MAX over multiple bottoms), Power, AbsVal, Exp,
// and PReLU (learnable per-channel negative slopes).
//
// Gradient semantics follow the repo convention (see Layer docs):
// Eltwise accumulates into its bottoms (it legitimately fans in);
// the single-bottom layers assign.

#include "minicaffe/layer.hpp"

namespace mc {

/// Plain softmax over the per-sample feature axis (no loss attached).
class SoftmaxLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
};

/// Elementwise combination of N equally-shaped bottoms.
/// SUM supports per-bottom coefficients (LayerParams::eltwise_coeffs).
class EltwiseLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool accumulates_bottom_diff() const override { return true; }

 private:
  std::vector<float> coeffs_;
  DeviceBuffer<int> max_arg_;  // winning bottom per element (MAX backward)
};

/// y = (shift + scale·x)^power, Caffe's PowerLayer.
class PowerLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
};

/// y = |x|.
class AbsValLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
};

/// y = exp(x) (natural base; in-place unsafe for backward → not in place).
class ExpLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
};

/// PReLU with channel-wise learnable negative slopes (one param blob).
class PReLULayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
};

}  // namespace mc
