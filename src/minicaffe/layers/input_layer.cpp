#include "minicaffe/layers/input_layer.hpp"

namespace mc {

void InputLayer::setup(const std::vector<Blob*>& bottom,
                       const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.empty(), "Input layers take no bottoms");
  GLP_REQUIRE(top.size() == 1, "Input layer expects one top");
  const LayerParams& p = spec_.params;
  GLP_REQUIRE(p.batch_size > 0, "Input layer needs batch_size");
  const DatasetSpec& d = p.dataset;
  GLP_REQUIRE(d.channels > 0 && d.height > 0 && d.width > 0,
              "Input layer needs a dataset shape (channels/height/width)");
  top[0]->reshape({p.batch_size, d.channels, d.height, d.width});
  sample_size_ = d.sample_size();
  staging_.resize(top[0]->count());
}

void InputLayer::forward(const std::vector<Blob*>& bottom,
                         const std::vector<Blob*>& top) {
  (void)bottom;
  ec_->ctx->memcpy_async(top[0]->mutable_data(), staging_.data(),
                         staging_.size() * sizeof(float), /*h2d=*/true,
                         ec_->home_stream);
}

void InputLayer::backward(const std::vector<Blob*>&, const std::vector<bool>&,
                          const std::vector<Blob*>&) {}

}  // namespace mc
