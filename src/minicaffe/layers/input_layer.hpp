#pragma once
// Input layer for serving: a shaped entry point whose data is supplied by
// the caller (an InferenceSession) instead of a dataset. The caller fills
// the host staging buffer before each forward; forward() uploads it with
// one simulated H2D copy on the context's home stream, so request
// latencies include the input transfer.
//
// Top: (data [N,C,H,W]) with N = params.batch_size and C/H/W from
// params.dataset.

#include "minicaffe/layer.hpp"

namespace mc {

class InputLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool has_backward() const override { return false; }

  /// Host staging buffer the caller fills before forward() (size
  /// batch_size * sample_size).
  float* staging() { return staging_.data(); }
  std::size_t staging_count() const { return staging_.size(); }
  /// Elements per sample (C*H*W).
  std::size_t sample_size() const { return sample_size_; }
  int batch() const { return spec_.params.batch_size; }

 private:
  std::vector<float> staging_;
  std::size_t sample_size_ = 0;
};

}  // namespace mc
