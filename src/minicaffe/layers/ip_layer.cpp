#include "minicaffe/layers/ip_layer.hpp"

#include "kernels/blas.hpp"
#include "kernels/cpu_math.hpp"

namespace mc {

void InnerProductLayer::setup(const std::vector<Blob*>& bottom,
                              const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "InnerProduct expects one bottom and one top");
  const LayerParams& p = spec_.params;
  GLP_REQUIRE(p.num_output > 0, "InnerProduct needs num_output");

  num_ = bottom[0]->num();
  dim_ = static_cast<int>(bottom[0]->sample_size());
  top[0]->reshape({num_, p.num_output});

  if (param_blobs_.empty()) {
    param_blobs_.push_back(
        std::make_shared<Blob>(*ec_->ctx, std::vector<int>{p.num_output, dim_}));
    param_blobs_.push_back(
        std::make_shared<Blob>(*ec_->ctx, std::vector<int>{p.num_output}));
    if (ec_->numeric()) {
      fill_blob(p.weight_filler, ec_->rng, *param_blobs_[0]);
      fill_blob(p.bias_filler, ec_->rng, *param_blobs_[1]);
    }
  }

  // The bias multiplier feeds the batched formulation only; inference
  // mode (per-sample path, no backward) never needs it.
  if (!ec_->inference) {
    ones_.allocate(*ec_->ctx, static_cast<std::size_t>(num_));
    if (ec_->numeric()) {
      kern::cpu::fill(static_cast<std::size_t>(num_), 1.0f, ones_.data());
    }
  }
}

void InnerProductLayer::forward(const std::vector<Blob*>& bottom,
                                const std::vector<Blob*>& top) {
  const LayerParams& p = spec_.params;

  if (ec_->inference) {
    // Per-sample products (see header): each sample's result is computed
    // exactly as a batch-1 forward pass would, independent of the batch
    // composition, and the rows become a GLP4NN dispatch scope.
    const float* weights = param_blobs_[0]->data();
    const float* bias = param_blobs_[1]->data();
    const std::size_t in_stride = bottom[0]->sample_size();
    const std::size_t out_stride = top[0]->sample_size();
    ec_->dispatcher->begin_scope(spec_.name + "/fwd",
                                 static_cast<std::size_t>(num_));
    for (int n = 0; n < num_; ++n) {
      const kern::Lane lane =
          ec_->dispatcher->task_lane(static_cast<std::size_t>(n));
      const kern::Launcher L = launcher("fwd", lane.stream);
      const float* x = bottom[0]->data() + static_cast<std::size_t>(n) * in_stride;
      float* y = top[0]->mutable_data() + static_cast<std::size_t>(n) * out_stride;
      // y = W [Co x dim] · x
      kern::sgemv(L, false, p.num_output, dim_, 1.0f, weights, dim_, x, 0.0f, y);
      if (p.bias_term) kern::saxpy(L, p.num_output, 1.0f, bias, y);
    }
    ec_->dispatcher->end_scope();
    return;
  }

  const kern::Launcher L = launcher("fwd");
  // DAG fusion pass: absorb the following in-place ReLU (and the bias
  // GEMM) into one launch; the functor runs the identical host ops in the
  // identical order, so the results are bit-exact.
  const float* relu_slope = ec_->relu_epilogue(spec_.name);
  if (relu_slope != nullptr && p.bias_term) {
    kern::ip_bias_relu_fused(L, num_, p.num_output, dim_, bottom[0]->data(),
                             dim_, param_blobs_[0]->data(), dim_, ones_.data(),
                             param_blobs_[1]->data(), top[0]->mutable_data(),
                             p.num_output, *relu_slope);
    return;
  }
  // top [N x Co] = bottom [N x dim] * W^T ([Co x dim] transposed)
  kern::sgemm(L, false, true, num_, p.num_output, dim_, 1.0f, bottom[0]->data(),
              dim_, param_blobs_[0]->data(), dim_, 0.0f, top[0]->mutable_data(),
              p.num_output);
  if (p.bias_term) {
    // top += ones [N x 1] * bias [1 x Co]
    kern::sgemm(L, false, false, num_, p.num_output, 1, 1.0f, ones_.data(), 1,
                param_blobs_[1]->data(), p.num_output, 1.0f,
                top[0]->mutable_data(), p.num_output);
  }
}

void InnerProductLayer::backward(const std::vector<Blob*>& top,
                                 const std::vector<bool>& propagate_down,
                                 const std::vector<Blob*>& bottom) {
  const LayerParams& p = spec_.params;
  const kern::Launcher L = launcher("bwd");
  const float* top_diff = top[0]->diff();
  // dW [Co x dim] += top_diff^T [Co x N] * bottom [N x dim]
  kern::sgemm(L, true, false, p.num_output, dim_, num_, 1.0f, top_diff,
              p.num_output, bottom[0]->data(), dim_, 1.0f,
              param_blobs_[0]->mutable_diff(), dim_);
  if (p.bias_term) {
    // db [Co] += top_diff^T * ones
    kern::sgemm(L, true, false, p.num_output, 1, num_, 1.0f, top_diff,
                p.num_output, ones_.data(), 1, 1.0f,
                param_blobs_[1]->mutable_diff(), 1);
  }
  if (propagate_down[0]) {
    // dbottom [N x dim] += top_diff [N x Co] * W [Co x dim]
    kern::sgemm(L, false, false, num_, dim_, p.num_output, 1.0f, top_diff,
                p.num_output, param_blobs_[0]->data(), dim_, 1.0f,
                bottom[0]->mutable_diff(), dim_);
  }
}

}  // namespace mc
