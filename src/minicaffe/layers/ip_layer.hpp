#pragma once
// InnerProduct (fully connected) layer. Batched single-GEMM formulation
// as in Caffe — not a per-sample loop, so it is not a GLP4NN dispatch
// scope (the paper applies GLP4NN to convolution layers).
//
// Inference mode is the exception: the host GEMM picks its accumulation
// strategy by shape, so a whole-batch product is not bitwise-identical to
// batch-1 products. Serving's determinism contract ("a request's output
// does not depend on its batch's composition") therefore computes each
// sample independently — a per-sample GEMV dispatch scope, which also
// lets GLP4NN overlap the rows across streams.

#include "minicaffe/layer.hpp"

namespace mc {

class InnerProductLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool accumulates_bottom_diff() const override { return true; }

 private:
  int num_ = 0;
  int dim_ = 0;  // flattened input features per sample
  DeviceBuffer<float> ones_;  // [num], bias multiplier
};

}  // namespace mc
