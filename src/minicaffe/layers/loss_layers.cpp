#include "minicaffe/layers/loss_layers.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "kernels/cpu_math.hpp"
#include "kernels/nn.hpp"

namespace mc {

namespace {
gpusim::LaunchConfig rows_config(int rows, int regs) {
  gpusim::LaunchConfig cfg;
  cfg.block = gpusim::Dim3{128, 1, 1};
  cfg.grid = gpusim::Dim3{kern::blocks_for(static_cast<std::uint64_t>(rows), 128), 1, 1};
  cfg.regs_per_thread = regs;
  return cfg;
}
}  // namespace

// --- SoftmaxWithLoss ---------------------------------------------------------

void SoftmaxWithLossLayer::setup(const std::vector<Blob*>& bottom,
                                 const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 2 && top.size() == 1,
              "SoftmaxWithLoss expects (scores, labels) -> loss");
  GLP_REQUIRE(bottom[0]->num() == bottom[1]->num(),
              "scores and labels disagree on batch size");
  prob_ = std::make_unique<Blob>(*ec_->ctx);
  prob_->reshape_like(*bottom[0]);
  top[0]->reshape({1});
}

void SoftmaxWithLossLayer::forward(const std::vector<Blob*>& bottom,
                                   const std::vector<Blob*>& top) {
  const int rows = bottom[0]->num();
  const int classes = static_cast<int>(bottom[0]->sample_size());
  const kern::Launcher L = launcher("fwd");
  kern::softmax_forward(L, rows, classes, bottom[0]->data(),
                        prob_->mutable_data());
  kern::softmax_loss(L, rows, classes, prob_->data(), bottom[1]->data(),
                     top[0]->mutable_data());
}

void SoftmaxWithLossLayer::backward(const std::vector<Blob*>& top,
                                    const std::vector<bool>& propagate_down,
                                    const std::vector<Blob*>& bottom) {
  GLP_REQUIRE(!propagate_down[1], "labels are not differentiable");
  if (!propagate_down[0]) return;
  (void)top;
  const int rows = bottom[0]->num();
  const int classes = static_cast<int>(bottom[0]->sample_size());
  const float scale = spec_.params.loss_weight / static_cast<float>(rows);
  kern::softmax_loss_backward(launcher("bwd"), rows, classes, prob_->data(),
                              bottom[1]->data(), scale,
                              bottom[0]->mutable_diff());
}

// --- Accuracy ----------------------------------------------------------------

void AccuracyLayer::setup(const std::vector<Blob*>& bottom,
                          const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 2 && top.size() == 1,
              "Accuracy expects (scores, labels) -> accuracy");
  top[0]->reshape({1});
}

void AccuracyLayer::forward(const std::vector<Blob*>& bottom,
                            const std::vector<Blob*>& top) {
  const int rows = bottom[0]->num();
  const int classes = static_cast<int>(bottom[0]->sample_size());
  const float* scores = bottom[0]->data();
  const float* labels = bottom[1]->data();
  float* out = top[0]->mutable_data();
  gpusim::KernelCost cost{static_cast<double>(rows) * classes,
                          static_cast<double>(rows) * classes * 4.0};
  launcher("fwd").launch("accuracy_kernel", rows_config(rows, 20), cost, [=] {
    *out = kern::cpu::accuracy(rows, classes, scores, labels);
  });
}

void AccuracyLayer::backward(const std::vector<Blob*>&,
                             const std::vector<bool>&,
                             const std::vector<Blob*>&) {}

// --- EuclideanLoss -----------------------------------------------------------

void EuclideanLossLayer::setup(const std::vector<Blob*>& bottom,
                               const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 2 && top.size() == 1,
              "EuclideanLoss expects two bottoms -> loss");
  GLP_REQUIRE(bottom[0]->count() == bottom[1]->count(),
              "EuclideanLoss bottoms must match in size");
  diff_ = std::make_unique<Blob>(*ec_->ctx);
  diff_->reshape_like(*bottom[0]);
  top[0]->reshape({1});
}

void EuclideanLossLayer::forward(const std::vector<Blob*>& bottom,
                                 const std::vector<Blob*>& top) {
  const std::size_t count = bottom[0]->count();
  const int num = bottom[0]->num();
  const float* a = bottom[0]->data();
  const float* b = bottom[1]->data();
  float* d = diff_->mutable_data();
  float* out = top[0]->mutable_data();
  gpusim::KernelCost cost{static_cast<double>(count) * 3.0,
                          static_cast<double>(count) * 12.0};
  launcher("fwd").launch("euclidean_loss_kernel", rows_config(num, 24), cost,
                         [=] {
                           double acc = 0.0;
                           for (std::size_t i = 0; i < count; ++i) {
                             d[i] = a[i] - b[i];
                             acc += static_cast<double>(d[i]) * d[i];
                           }
                           *out = static_cast<float>(acc / (2.0 * num));
                         });
}

void EuclideanLossLayer::backward(const std::vector<Blob*>& top,
                                  const std::vector<bool>& propagate_down,
                                  const std::vector<Blob*>& bottom) {
  (void)top;
  const std::size_t count = bottom[0]->count();
  const int num = bottom[0]->num();
  const float scale = spec_.params.loss_weight / static_cast<float>(num);
  const float* d = diff_->data();
  for (int i = 0; i < 2; ++i) {
    if (!propagate_down[static_cast<std::size_t>(i)]) continue;
    const float sign = i == 0 ? scale : -scale;
    float* g = bottom[static_cast<std::size_t>(i)]->mutable_diff();
    gpusim::KernelCost cost{static_cast<double>(count),
                            static_cast<double>(count) * 8.0};
    launcher("bwd").launch("euclidean_grad_kernel", rows_config(num, 18), cost,
                           [=] {
                             for (std::size_t j = 0; j < count; ++j) {
                               g[j] = sign * d[j];
                             }
                           });
  }
}

// --- SigmoidCrossEntropyLoss -------------------------------------------------

void SigmoidCrossEntropyLossLayer::setup(const std::vector<Blob*>& bottom,
                                         const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 2 && top.size() == 1,
              "SigmoidCrossEntropyLoss expects (logits, targets) -> loss");
  GLP_REQUIRE(bottom[0]->count() == bottom[1]->count(),
              "logits and targets must match in size");
  prob_ = std::make_unique<Blob>(*ec_->ctx);
  prob_->reshape_like(*bottom[0]);
  top[0]->reshape({1});
}

void SigmoidCrossEntropyLossLayer::forward(const std::vector<Blob*>& bottom,
                                           const std::vector<Blob*>& top) {
  const std::size_t count = bottom[0]->count();
  const int num = bottom[0]->num();
  const float* x = bottom[0]->data();
  const float* t = bottom[1]->data();
  float* prob = prob_->mutable_data();
  float* out = top[0]->mutable_data();
  gpusim::KernelCost cost{static_cast<double>(count) * 12.0,
                          static_cast<double>(count) * 12.0};
  launcher("fwd").launch(
      "sigmoid_cross_entropy_loss_kernel", rows_config(num, 28), cost, [=] {
        // Stable form: L = Σ [ max(x,0) − x·t + log(1 + e^{−|x|}) ] / N.
        double loss = 0.0;
        for (std::size_t i = 0; i < count; ++i) {
          const float xi = x[i];
          prob[i] = 1.0f / (1.0f + std::exp(-xi));
          loss += std::max(xi, 0.0f) - xi * t[i] +
                  std::log1p(std::exp(-std::abs(xi)));
        }
        *out = static_cast<float>(loss / num);
      });
}

void SigmoidCrossEntropyLossLayer::backward(
    const std::vector<Blob*>& top, const std::vector<bool>& propagate_down,
    const std::vector<Blob*>& bottom) {
  (void)top;
  GLP_REQUIRE(!propagate_down[1], "targets are not differentiable");
  if (!propagate_down[0]) return;
  const std::size_t count = bottom[0]->count();
  const int num = bottom[0]->num();
  const float scale = spec_.params.loss_weight / static_cast<float>(num);
  const float* prob = prob_->data();
  const float* t = bottom[1]->data();
  float* dx = bottom[0]->mutable_diff();
  gpusim::KernelCost cost{static_cast<double>(count) * 2.0,
                          static_cast<double>(count) * 12.0};
  launcher("bwd").launch("sigmoid_cross_entropy_grad_kernel",
                         rows_config(num, 20), cost, [=] {
                           for (std::size_t i = 0; i < count; ++i) {
                             dx[i] = scale * (prob[i] - t[i]);
                           }
                         });
}

// --- ContrastiveLoss ---------------------------------------------------------

void ContrastiveLossLayer::setup(const std::vector<Blob*>& bottom,
                                 const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 3 && top.size() == 1,
              "ContrastiveLoss expects (feat_a, feat_b, similarity) -> loss");
  GLP_REQUIRE(bottom[0]->count() == bottom[1]->count(),
              "feature blobs must match in size");
  GLP_REQUIRE(bottom[2]->num() == bottom[0]->num(),
              "similarity labels must match the batch size");
  diff_ = std::make_unique<Blob>(*ec_->ctx);
  diff_->reshape_like(*bottom[0]);
  dist_sq_ = std::make_unique<Blob>(*ec_->ctx, std::vector<int>{bottom[0]->num()});
  top[0]->reshape({1});
}

void ContrastiveLossLayer::forward(const std::vector<Blob*>& bottom,
                                   const std::vector<Blob*>& top) {
  const int num = bottom[0]->num();
  const int dim = static_cast<int>(bottom[0]->sample_size());
  const float margin = spec_.params.margin;
  const float* a = bottom[0]->data();
  const float* b = bottom[1]->data();
  const float* sim = bottom[2]->data();
  float* d = diff_->mutable_data();
  float* dist = dist_sq_->mutable_data();
  float* out = top[0]->mutable_data();
  gpusim::KernelCost cost{static_cast<double>(num) * dim * 3.0,
                          static_cast<double>(num) * dim * 12.0};
  launcher("fwd").launch("contrastive_loss_kernel", rows_config(num, 30), cost,
                         [=] {
                           double loss = 0.0;
                           for (int n = 0; n < num; ++n) {
                             float acc = 0.0f;
                             for (int j = 0; j < dim; ++j) {
                               const std::size_t idx =
                                   static_cast<std::size_t>(n) * dim + j;
                               d[idx] = a[idx] - b[idx];
                               acc += d[idx] * d[idx];
                             }
                             dist[n] = acc;
                             if (sim[n] > 0.5f) {
                               loss += acc;
                             } else {
                               loss += std::max(margin - acc, 0.0f);
                             }
                           }
                           *out = static_cast<float>(loss / (2.0 * num));
                         });
}

void ContrastiveLossLayer::backward(const std::vector<Blob*>& top,
                                    const std::vector<bool>& propagate_down,
                                    const std::vector<Blob*>& bottom) {
  (void)top;
  GLP_REQUIRE(!propagate_down[2], "similarity labels are not differentiable");
  const int num = bottom[0]->num();
  const int dim = static_cast<int>(bottom[0]->sample_size());
  const float margin = spec_.params.margin;
  const float scale = spec_.params.loss_weight / static_cast<float>(num);
  const float* d = diff_->data();
  const float* dist = dist_sq_->data();
  const float* sim = bottom[2]->data();
  for (int i = 0; i < 2; ++i) {
    if (!propagate_down[static_cast<std::size_t>(i)]) continue;
    const float sign = i == 0 ? 1.0f : -1.0f;
    float* g = bottom[static_cast<std::size_t>(i)]->mutable_diff();
    gpusim::KernelCost cost{static_cast<double>(num) * dim * 2.0,
                            static_cast<double>(num) * dim * 12.0};
    launcher("bwd").launch(
        "contrastive_grad_kernel", rows_config(num, 28), cost, [=] {
          for (int n = 0; n < num; ++n) {
            float* gn = g + static_cast<std::size_t>(n) * dim;
            const float* dn = d + static_cast<std::size_t>(n) * dim;
            if (sim[n] > 0.5f) {
              for (int j = 0; j < dim; ++j) gn[j] = sign * scale * dn[j];
            } else if (margin - dist[n] > 0.0f) {
              for (int j = 0; j < dim; ++j) gn[j] = -sign * scale * dn[j];
            } else {
              for (int j = 0; j < dim; ++j) gn[j] = 0.0f;
            }
          }
        });
  }
}

}  // namespace mc
