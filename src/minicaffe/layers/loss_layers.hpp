#pragma once
// Loss and evaluation layers. SoftmaxWithLoss fuses softmax + NLL exactly
// like Caffe; ContrastiveLoss implements the (legacy) margin loss the
// Caffe Siamese example trains with; EuclideanLoss supports regression
// examples; Accuracy is evaluation-only (no backward).

#include "minicaffe/layer.hpp"

namespace mc {

class SoftmaxWithLossLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool is_loss() const override { return true; }

  const Blob& prob() const { return *prob_; }

 private:
  std::unique_ptr<Blob> prob_;
};

class AccuracyLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool has_backward() const override { return false; }
};

class EuclideanLossLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool is_loss() const override { return true; }

 private:
  std::unique_ptr<Blob> diff_;  // a - b
};

/// Sigmoid + binary cross-entropy, fused for numerical stability
/// (Caffe's SigmoidCrossEntropyLoss): bottoms (logits, targets∈[0,1]).
class SigmoidCrossEntropyLossLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool is_loss() const override { return true; }

 private:
  std::unique_ptr<Blob> prob_;  // sigmoid(logits), cached for backward
};

/// Legacy Caffe contrastive loss:
///   L = 1/(2N) Σ_n [ y_n d_n² + (1-y_n) max(margin - d_n², 0) ]
class ContrastiveLossLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool is_loss() const override { return true; }

 private:
  std::unique_ptr<Blob> diff_;     // a - b, [N, D]
  std::unique_ptr<Blob> dist_sq_;  // [N]
};

}  // namespace mc
