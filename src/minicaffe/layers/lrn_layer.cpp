#include "minicaffe/layers/lrn_layer.hpp"

#include "kernels/nn.hpp"

namespace mc {

void LRNLayer::setup(const std::vector<Blob*>& bottom,
                     const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "LRN expects one bottom and one top");
  GLP_REQUIRE(top[0] != bottom[0], "LRN does not support in-place operation");
  GLP_REQUIRE(spec_.params.local_size % 2 == 1, "LRN local_size must be odd");
  top[0]->reshape_like(*bottom[0]);
  scale_.allocate(*ec_->ctx, bottom[0]->count());
}

void LRNLayer::forward(const std::vector<Blob*>& bottom,
                       const std::vector<Blob*>& top) {
  const LayerParams& p = spec_.params;
  kern::lrn_forward(launcher("fwd"), bottom[0]->data(), bottom[0]->num(),
                    bottom[0]->channels(), bottom[0]->height(),
                    bottom[0]->width(), p.local_size, p.alpha, p.beta, p.k,
                    scale_.data(), top[0]->mutable_data());
}

void LRNLayer::backward(const std::vector<Blob*>& top,
                        const std::vector<bool>& propagate_down,
                        const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  const LayerParams& p = spec_.params;
  kern::lrn_backward(launcher("bwd"), bottom[0]->data(), top[0]->data(),
                     scale_.data(), top[0]->diff(), bottom[0]->num(),
                     bottom[0]->channels(), bottom[0]->height(),
                     bottom[0]->width(), p.local_size, p.alpha, p.beta,
                     bottom[0]->mutable_diff());
}

}  // namespace mc
