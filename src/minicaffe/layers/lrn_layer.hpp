#pragma once
// Local Response Normalisation (cross-channel), as used by CaffeNet and
// GoogLeNet. Backward accumulates into the bottom diff.

#include "minicaffe/layer.hpp"

namespace mc {

class LRNLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool accumulates_bottom_diff() const override { return true; }

 private:
  DeviceBuffer<float> scale_;  // the per-element normaliser s = k + α/n Σx²
};

}  // namespace mc
