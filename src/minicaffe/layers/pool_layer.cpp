#include "minicaffe/layers/pool_layer.hpp"

#include <cmath>

#include "kernels/cpu_math.hpp"
#include "kernels/nn.hpp"

namespace mc {

void PoolingLayer::setup(const std::vector<Blob*>& bottom,
                         const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "Pooling expects one bottom and one top");
  const LayerParams& p = spec_.params;
  GLP_REQUIRE(p.kernel_size > 0, "Pooling needs kernel_size");

  // Caffe uses ceil for pooled output sizes.
  const int h = bottom[0]->height();
  const int w = bottom[0]->width();
  out_h_ = static_cast<int>(
      std::ceil(static_cast<double>(h + 2 * p.pad - p.kernel_size) / p.stride)) + 1;
  out_w_ = static_cast<int>(
      std::ceil(static_cast<double>(w + 2 * p.pad - p.kernel_size) / p.stride)) + 1;
  if (p.pad > 0) {
    // Clip the last pooling window to start inside the (padded) image.
    if ((out_h_ - 1) * p.stride >= h + p.pad) --out_h_;
    if ((out_w_ - 1) * p.stride >= w + p.pad) --out_w_;
  }

  top[0]->reshape({bottom[0]->num(), bottom[0]->channels(), out_h_, out_w_});
  if (p.pool == PoolMethod::kMax) {
    mask_.allocate(*ec_->ctx, top[0]->count());
  }
}

void PoolingLayer::forward(const std::vector<Blob*>& bottom,
                           const std::vector<Blob*>& top) {
  const LayerParams& p = spec_.params;
  const kern::Launcher L = launcher("fwd");
  // Fold batch into channels: pooling planes are independent.
  const int planes = bottom[0]->num() * bottom[0]->channels();
  if (p.pool == PoolMethod::kMax) {
    kern::max_pool_forward(L, bottom[0]->data(), planes, bottom[0]->height(),
                           bottom[0]->width(), p.kernel_size, p.stride, p.pad,
                           out_h_, out_w_, top[0]->mutable_data(), mask_.data());
  } else {
    kern::ave_pool_forward(L, bottom[0]->data(), planes, bottom[0]->height(),
                           bottom[0]->width(), p.kernel_size, p.stride, p.pad,
                           out_h_, out_w_, top[0]->mutable_data());
  }
}

void PoolingLayer::backward(const std::vector<Blob*>& top,
                            const std::vector<bool>& propagate_down,
                            const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  const LayerParams& p = spec_.params;
  const kern::Launcher L = launcher("bwd");
  const int planes = bottom[0]->num() * bottom[0]->channels();
  if (p.pool == PoolMethod::kMax) {
    kern::max_pool_backward(L, top[0]->diff(), mask_.data(), planes, out_h_,
                            out_w_, bottom[0]->height(), bottom[0]->width(),
                            bottom[0]->mutable_diff());
  } else {
    kern::ave_pool_backward(L, top[0]->diff(), planes, bottom[0]->height(),
                            bottom[0]->width(), p.kernel_size, p.stride, p.pad,
                            out_h_, out_w_, bottom[0]->mutable_diff());
  }
}

}  // namespace mc
