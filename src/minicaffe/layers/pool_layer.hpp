#pragma once
// Max / average pooling. Launched as one batched kernel by folding the
// batch into the channel axis (pooling is per-channel independent), as
// Caffe's single PoolForward kernel does.

#include "minicaffe/layer.hpp"

namespace mc {

class PoolingLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool accumulates_bottom_diff() const override { return true; }

  int out_height() const { return out_h_; }
  int out_width() const { return out_w_; }

 private:
  int out_h_ = 0, out_w_ = 0;
  DeviceBuffer<int> mask_;  // max pooling argmax indices
};

}  // namespace mc
