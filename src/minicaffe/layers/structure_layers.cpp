#include "minicaffe/layers/structure_layers.hpp"

#include <cmath>

#include "kernels/cpu_math.hpp"
#include "kernels/nn.hpp"

namespace mc {

namespace {
gpusim::LaunchConfig ew_config(std::uint64_t count, int regs) {
  gpusim::LaunchConfig cfg;
  cfg.block = gpusim::Dim3{256, 1, 1};
  cfg.grid = gpusim::Dim3{std::max(1u, kern::blocks_for(count, 256)), 1, 1};
  cfg.regs_per_thread = regs;
  return cfg;
}

gpusim::KernelCost ew_cost(std::uint64_t count, double flops_per,
                           double bytes_per) {
  return {static_cast<double>(count) * flops_per,
          static_cast<double>(count) * bytes_per};
}
}  // namespace

// --- Slice ----------------------------------------------------------------------

void SliceLayer::setup(const std::vector<Blob*>& bottom,
                       const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() >= 2,
              "Slice expects one bottom and >= 2 tops");
  GLP_REQUIRE(spec_.params.axis == 1, "Slice currently supports the channel axis");
  const int channels = bottom[0]->channels();

  std::vector<int> points = spec_.params.slice_points;
  if (points.empty()) {
    GLP_REQUIRE(channels % static_cast<int>(top.size()) == 0,
                "channels not divisible into " << top.size() << " equal slices");
    const int step = channels / static_cast<int>(top.size());
    for (std::size_t i = 1; i < top.size(); ++i) {
      points.push_back(static_cast<int>(i) * step);
    }
  }
  GLP_REQUIRE(points.size() + 1 == top.size(),
              "need exactly tops-1 slice points");

  offsets_.clear();
  offsets_.push_back(0);
  for (int p : points) {
    GLP_REQUIRE(p > offsets_.back() && p < channels,
                "slice points must be increasing and inside the channel axis");
    offsets_.push_back(p);
  }
  offsets_.push_back(channels);

  for (std::size_t i = 0; i < top.size(); ++i) {
    top[i]->reshape({bottom[0]->num(), offsets_[i + 1] - offsets_[i],
                     bottom[0]->height(), bottom[0]->width()});
  }
}

void SliceLayer::forward(const std::vector<Blob*>& bottom,
                         const std::vector<Blob*>& top) {
  const kern::Launcher L = launcher("fwd");
  const int num = bottom[0]->num();
  const int spatial = bottom[0]->height() * bottom[0]->width();
  const int bottom_stride = bottom[0]->channels() * spatial;
  for (std::size_t i = 0; i < top.size(); ++i) {
    const int cols = top[i]->channels() * spatial;
    kern::copy_slab(L, num, cols,
                    bottom[0]->data() +
                        static_cast<std::size_t>(offsets_[i]) * spatial,
                    bottom_stride, top[i]->mutable_data(), cols);
  }
}

void SliceLayer::backward(const std::vector<Blob*>& top,
                          const std::vector<bool>& propagate_down,
                          const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  const kern::Launcher L = launcher("bwd");
  const int num = bottom[0]->num();
  const int spatial = bottom[0]->height() * bottom[0]->width();
  const int bottom_stride = bottom[0]->channels() * spatial;
  for (std::size_t i = 0; i < top.size(); ++i) {
    const int cols = top[i]->channels() * spatial;
    kern::add_slab(L, num, cols, top[i]->diff(), cols,
                   bottom[0]->mutable_diff() +
                       static_cast<std::size_t>(offsets_[i]) * spatial,
                   bottom_stride);
  }
}

// --- Flatten --------------------------------------------------------------------

void FlattenLayer::setup(const std::vector<Blob*>& bottom,
                         const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "Flatten expects one bottom and one top");
  GLP_REQUIRE(top[0] != bottom[0], "Flatten must not run in place");
  top[0]->reshape({bottom[0]->num(), static_cast<int>(bottom[0]->sample_size())});
}

void FlattenLayer::forward(const std::vector<Blob*>& bottom,
                           const std::vector<Blob*>& top) {
  const std::size_t count = bottom[0]->count();
  kern::copy_slab(launcher("fwd"), 1, static_cast<int>(count), bottom[0]->data(),
                  static_cast<int>(count), top[0]->mutable_data(),
                  static_cast<int>(count));
}

void FlattenLayer::backward(const std::vector<Blob*>& top,
                            const std::vector<bool>& propagate_down,
                            const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  const std::size_t count = bottom[0]->count();
  kern::add_slab(launcher("bwd"), 1, static_cast<int>(count), top[0]->diff(),
                 static_cast<int>(count), bottom[0]->mutable_diff(),
                 static_cast<int>(count));
}

// --- Scale ----------------------------------------------------------------------

void ScaleLayer::setup(const std::vector<Blob*>& bottom,
                       const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "Scale expects one bottom and one top");
  GLP_REQUIRE(top[0] != bottom[0], "Scale backward reads its input");
  top[0]->reshape_like(*bottom[0]);
  if (param_blobs_.empty()) {
    param_blobs_.push_back(
        std::make_shared<Blob>(*ec_->ctx, std::vector<int>{bottom[0]->channels()}));
    if (ec_->numeric()) {
      kern::cpu::fill(param_blobs_[0]->count(), 1.0f,
                      param_blobs_[0]->mutable_data());
    }
    if (spec_.params.scale_bias_term) {
      param_blobs_.push_back(std::make_shared<Blob>(
          *ec_->ctx, std::vector<int>{bottom[0]->channels()}));
      if (ec_->numeric()) {
        kern::cpu::fill(param_blobs_[1]->count(), 0.0f,
                        param_blobs_[1]->mutable_data());
      }
    }
  }
}

void ScaleLayer::forward(const std::vector<Blob*>& bottom,
                         const std::vector<Blob*>& top) {
  const int num = bottom[0]->num();
  const int channels = bottom[0]->channels();
  const int spatial = static_cast<int>(bottom[0]->count()) / (num * channels);
  const float* x = bottom[0]->data();
  const float* s = param_blobs_[0]->data();
  const float* b =
      param_blobs_.size() > 1 ? param_blobs_[1]->data() : nullptr;
  float* y = top[0]->mutable_data();
  launcher("fwd").launch(
      "scale_forward_kernel", ew_config(bottom[0]->count(), 16),
      ew_cost(bottom[0]->count(), 2.0, 12.0), [=] {
        for (int n = 0; n < num; ++n) {
          for (int c = 0; c < channels; ++c) {
            const std::size_t off =
                (static_cast<std::size_t>(n) * channels + c) * spatial;
            const float sc = s[c];
            const float bc = b != nullptr ? b[c] : 0.0f;
            for (int i = 0; i < spatial; ++i) y[off + i] = sc * x[off + i] + bc;
          }
        }
      });
}

void ScaleLayer::backward(const std::vector<Blob*>& top,
                          const std::vector<bool>& propagate_down,
                          const std::vector<Blob*>& bottom) {
  const int num = bottom[0]->num();
  const int channels = bottom[0]->channels();
  const int spatial = static_cast<int>(bottom[0]->count()) / (num * channels);
  const float* x = bottom[0]->data();
  const float* dy = top[0]->diff();
  const float* s = param_blobs_[0]->data();
  float* ds = param_blobs_[0]->mutable_diff();
  float* db = param_blobs_.size() > 1 ? param_blobs_[1]->mutable_diff() : nullptr;
  float* dx = propagate_down[0] ? bottom[0]->mutable_diff() : nullptr;
  launcher("bwd").launch(
      "scale_backward_kernel", ew_config(bottom[0]->count(), 24),
      ew_cost(bottom[0]->count(), 4.0, 20.0), [=] {
        for (int c = 0; c < channels; ++c) {
          float acc_s = 0.0f, acc_b = 0.0f;
          for (int n = 0; n < num; ++n) {
            const std::size_t off =
                (static_cast<std::size_t>(n) * channels + c) * spatial;
            for (int i = 0; i < spatial; ++i) {
              acc_s += dy[off + i] * x[off + i];
              acc_b += dy[off + i];
              if (dx != nullptr) dx[off + i] = dy[off + i] * s[c];
            }
          }
          ds[c] += acc_s;
          if (db != nullptr) db[c] += acc_b;
        }
      });
}

// --- BatchNorm -------------------------------------------------------------------

void BatchNormLayer::setup(const std::vector<Blob*>& bottom,
                           const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "BatchNorm expects one bottom and one top");
  GLP_REQUIRE(top[0] != bottom[0], "BatchNorm backward reads its input");
  top[0]->reshape_like(*bottom[0]);
  const int channels = bottom[0]->channels();
  if (param_blobs_.empty()) {
    // Caffe layout: moving mean, moving variance, scale count.
    for (int i = 0; i < 3; ++i) {
      param_blobs_.push_back(std::make_shared<Blob>(
          *ec_->ctx, std::vector<int>{i == 2 ? 1 : channels}));
      if (ec_->numeric()) {
        kern::cpu::fill(param_blobs_.back()->count(), 0.0f,
                        param_blobs_.back()->mutable_data());
      }
    }
  }
  batch_mean_.allocate(*ec_->ctx, static_cast<std::size_t>(channels));
  batch_var_.allocate(*ec_->ctx, static_cast<std::size_t>(channels));
}

void BatchNormLayer::forward(const std::vector<Blob*>& bottom,
                             const std::vector<Blob*>& top) {
  const int num = bottom[0]->num();
  const int channels = bottom[0]->channels();
  const int spatial = static_cast<int>(bottom[0]->count()) / (num * channels);
  const float eps = spec_.params.bn_eps;
  const float momentum = spec_.params.bn_momentum;
  const bool global = spec_.params.use_global_stats || !ec_->train;
  const float* x = bottom[0]->data();
  float* y = top[0]->mutable_data();
  float* mean = batch_mean_.data();
  float* var = batch_var_.data();
  float* moving_mean = param_blobs_[0]->mutable_data();
  float* moving_var = param_blobs_[1]->mutable_data();
  float* count = param_blobs_[2]->mutable_data();

  launcher("fwd").launch(
      "batch_norm_forward_kernel", ew_config(bottom[0]->count(), 32),
      ew_cost(bottom[0]->count(), 6.0, 16.0), [=] {
        if (global) {
          const float norm = count[0] > 0.0f ? 1.0f / count[0] : 1.0f;
          for (int c = 0; c < channels; ++c) {
            mean[c] = moving_mean[c] * norm;
            var[c] = moving_var[c] * norm;
          }
        } else {
          kern::cpu::channel_mean(num, channels, spatial, x, mean);
          kern::cpu::channel_variance(num, channels, spatial, x, mean, var);
          // Caffe-style moving sums with a scale count.
          count[0] = count[0] * momentum + 1.0f;
          for (int c = 0; c < channels; ++c) {
            moving_mean[c] = moving_mean[c] * momentum + mean[c];
            moving_var[c] = moving_var[c] * momentum + var[c];
          }
        }
        kern::cpu::batch_norm_forward(num, channels, spatial, x, mean, var, eps, y);
      });
}

void BatchNormLayer::backward(const std::vector<Blob*>& top,
                              const std::vector<bool>& propagate_down,
                              const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  const int num = bottom[0]->num();
  const int channels = bottom[0]->channels();
  const int spatial = static_cast<int>(bottom[0]->count()) / (num * channels);
  const float eps = spec_.params.bn_eps;
  const bool global = spec_.params.use_global_stats || !ec_->train;
  const float* x = bottom[0]->data();
  const float* dy = top[0]->diff();
  const float* mean = batch_mean_.data();
  const float* var = batch_var_.data();
  float* dx = bottom[0]->mutable_diff();
  launcher("bwd").launch(
      "batch_norm_backward_kernel", ew_config(bottom[0]->count(), 40),
      ew_cost(bottom[0]->count(), 10.0, 24.0), [=] {
        if (global) {
          // Global statistics are constants: dx = dy / sqrt(var + eps).
          for (int c = 0; c < channels; ++c) {
            const float inv_std = 1.0f / std::sqrt(var[c] + eps);
            for (int n = 0; n < num; ++n) {
              const std::size_t off =
                  (static_cast<std::size_t>(n) * channels + c) * spatial;
              for (int i = 0; i < spatial; ++i) {
                dx[off + i] += dy[off + i] * inv_std;
              }
            }
          }
        } else {
          kern::cpu::batch_norm_backward(num, channels, spatial, x, dy, mean,
                                         var, eps, dx);
        }
      });
}

// --- ArgMax ---------------------------------------------------------------------

void ArgMaxLayer::setup(const std::vector<Blob*>& bottom,
                        const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "ArgMax expects one bottom and one top");
  top[0]->reshape({bottom[0]->num()});
}

void ArgMaxLayer::forward(const std::vector<Blob*>& bottom,
                          const std::vector<Blob*>& top) {
  const int rows = bottom[0]->num();
  const int dim = static_cast<int>(bottom[0]->sample_size());
  const float* x = bottom[0]->data();
  float* y = top[0]->mutable_data();
  launcher("fwd").launch("argmax_kernel",
                         ew_config(static_cast<std::uint64_t>(rows), 20),
                         ew_cost(static_cast<std::uint64_t>(rows) * dim, 1.0, 4.0),
                         [=] {
                           for (int r = 0; r < rows; ++r) {
                             const float* row = x + static_cast<std::size_t>(r) * dim;
                             int arg = 0;
                             for (int j = 1; j < dim; ++j) {
                               if (row[j] > row[arg]) arg = j;
                             }
                             y[r] = static_cast<float>(arg);
                           }
                         });
}

void ArgMaxLayer::backward(const std::vector<Blob*>&, const std::vector<bool>&,
                           const std::vector<Blob*>&) {}

// --- Reduction -------------------------------------------------------------------

void ReductionLayer::setup(const std::vector<Blob*>& bottom,
                           const std::vector<Blob*>& top) {
  GLP_REQUIRE(bottom.size() == 1 && top.size() == 1,
              "Reduction expects one bottom and one top");
  top[0]->reshape({bottom[0]->num()});
}

void ReductionLayer::forward(const std::vector<Blob*>& bottom,
                             const std::vector<Blob*>& top) {
  const int rows = bottom[0]->num();
  const int dim = static_cast<int>(bottom[0]->sample_size());
  const bool mean = spec_.params.reduction_mean;
  const float* x = bottom[0]->data();
  float* y = top[0]->mutable_data();
  launcher("fwd").launch("reduction_forward_kernel",
                         ew_config(static_cast<std::uint64_t>(rows), 16),
                         ew_cost(static_cast<std::uint64_t>(rows) * dim, 1.0, 4.0),
                         [=] {
                           for (int r = 0; r < rows; ++r) {
                             const double s = kern::cpu::sum(
                                 static_cast<std::size_t>(dim),
                                 x + static_cast<std::size_t>(r) * dim);
                             y[r] = static_cast<float>(mean ? s / dim : s);
                           }
                         });
}

void ReductionLayer::backward(const std::vector<Blob*>& top,
                              const std::vector<bool>& propagate_down,
                              const std::vector<Blob*>& bottom) {
  if (!propagate_down[0]) return;
  const int rows = bottom[0]->num();
  const int dim = static_cast<int>(bottom[0]->sample_size());
  const bool mean = spec_.params.reduction_mean;
  const float* dy = top[0]->diff();
  float* dx = bottom[0]->mutable_diff();
  launcher("bwd").launch("reduction_backward_kernel",
                         ew_config(bottom[0]->count(), 14),
                         ew_cost(bottom[0]->count(), 1.0, 8.0), [=] {
                           for (int r = 0; r < rows; ++r) {
                             const float g = mean ? dy[r] / dim : dy[r];
                             float* row = dx + static_cast<std::size_t>(r) * dim;
                             for (int j = 0; j < dim; ++j) row[j] = g;
                           }
                         });
}

}  // namespace mc
