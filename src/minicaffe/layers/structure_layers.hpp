#pragma once
// Structural / normalisation layers: Slice (channel split, the inverse
// of Concat), Flatten, Scale (learnable per-channel affine), BatchNorm
// (batch statistics with moving averages, Caffe-style parameter-free
// normalisation — pair with Scale for the affine part), ArgMax and
// Reduction.

#include "minicaffe/layer.hpp"

namespace mc {

/// Split a blob along the channel axis at params.slice_points (or into
/// equal parts when empty). Backward accumulates the top diffs back.
class SliceLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool accumulates_bottom_diff() const override { return true; }

 private:
  std::vector<int> offsets_;  // channel start per top
};

/// Reshape [N, C, H, W] → [N, C·H·W] (copy-based; see class comment).
class FlattenLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool accumulates_bottom_diff() const override { return true; }
};

/// y = s[c]·x (+ b[c] when scale_bias_term). One or two param blobs.
class ScaleLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
};

/// Per-channel batch normalisation. In training mode uses batch
/// statistics and updates moving averages (params: mean, variance, count —
/// Caffe's layout); with use_global_stats it normalises by the stored
/// averages (inference). The affine part lives in a following ScaleLayer.
class BatchNormLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool accumulates_bottom_diff() const override { return true; }

 private:
  DeviceBuffer<float> batch_mean_;
  DeviceBuffer<float> batch_var_;
};

/// argmax over each sample's features → [N] (evaluation only).
class ArgMaxLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
  bool has_backward() const override { return false; }
};

/// Per-sample SUM (or MEAN with reduction_mean) over features → [N].
class ReductionLayer final : public Layer {
 public:
  using Layer::Layer;
  void setup(const std::vector<Blob*>& bottom,
             const std::vector<Blob*>& top) override;
  void forward(const std::vector<Blob*>& bottom,
               const std::vector<Blob*>& top) override;
  void backward(const std::vector<Blob*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob*>& bottom) override;
};

}  // namespace mc
