#include "minicaffe/models.hpp"

namespace mc::models {

namespace {

LayerSpec layer(std::string type, std::string name,
                std::vector<std::string> bottoms, std::vector<std::string> tops) {
  LayerSpec l;
  l.type = std::move(type);
  l.name = std::move(name);
  l.bottoms = std::move(bottoms);
  l.tops = std::move(tops);
  return l;
}

LayerSpec conv(std::string name, std::string bottom, std::string top,
               int num_output, int kernel, int stride = 1, int pad = 0,
               float weight_std = 0.0f) {
  LayerSpec l = layer("Convolution", std::move(name), {std::move(bottom)},
                      {std::move(top)});
  l.params.num_output = num_output;
  l.params.kernel_size = kernel;
  l.params.stride = stride;
  l.params.pad = pad;
  if (weight_std > 0.0f) l.params.weight_filler = FillerSpec::gaussian(weight_std);
  return l;
}

LayerSpec pool(std::string name, std::string bottom, std::string top,
               PoolMethod method, int kernel, int stride, int pad = 0) {
  LayerSpec l =
      layer("Pooling", std::move(name), {std::move(bottom)}, {std::move(top)});
  l.params.pool = method;
  l.params.kernel_size = kernel;
  l.params.stride = stride;
  l.params.pad = pad;
  return l;
}

LayerSpec relu(std::string name, std::string blob) {
  return layer("ReLU", std::move(name), {blob}, {blob});  // in place
}

LayerSpec lrn(std::string name, std::string bottom, std::string top) {
  LayerSpec l = layer("LRN", std::move(name), {std::move(bottom)}, {std::move(top)});
  l.params.local_size = 5;
  l.params.alpha = 1e-4f;
  l.params.beta = 0.75f;
  return l;
}

LayerSpec ip(std::string name, std::string bottom, std::string top,
             int num_output, float weight_std = 0.0f) {
  LayerSpec l = layer("InnerProduct", std::move(name), {std::move(bottom)},
                      {std::move(top)});
  l.params.num_output = num_output;
  if (weight_std > 0.0f) l.params.weight_filler = FillerSpec::gaussian(weight_std);
  return l;
}

LayerSpec dropout(std::string name, std::string blob, float ratio = 0.5f) {
  LayerSpec l = layer("Dropout", std::move(name), {blob}, {blob});
  l.params.dropout_ratio = ratio;
  return l;
}

LayerSpec softmax_loss(std::string name, std::string scores, std::string labels) {
  return layer("SoftmaxWithLoss", std::move(name),
               {std::move(scores), std::move(labels)}, {"loss"});
}

LayerSpec data(DatasetSpec dataset, int batch, bool pair = false) {
  LayerSpec l = pair ? layer("Data", "pair_data", {}, {"data", "data_p", "sim"})
                     : layer("Data", "data", {}, {"data", "label"});
  l.params.dataset = std::move(dataset);
  l.params.batch_size = batch;
  l.params.pair_data = pair;
  return l;
}

}  // namespace

NetSpec cifar10_quick(int batch) {
  NetSpec s;
  s.name = "CIFAR10";
  s.layers.push_back(data(DatasetSpec::cifar10(), batch));
  s.layers.push_back(conv("conv1", "data", "conv1", 32, 5, 1, 2, 1e-4f));
  s.layers.push_back(pool("pool1", "conv1", "pool1", PoolMethod::kMax, 3, 2));
  s.layers.push_back(relu("relu1", "pool1"));
  s.layers.push_back(conv("conv2", "pool1", "conv2", 32, 5, 1, 2, 0.01f));
  s.layers.push_back(relu("relu2", "conv2"));
  s.layers.push_back(pool("pool2", "conv2", "pool2", PoolMethod::kAve, 3, 2));
  s.layers.push_back(conv("conv3", "pool2", "conv3", 64, 5, 1, 2, 0.01f));
  s.layers.push_back(relu("relu3", "conv3"));
  s.layers.push_back(pool("pool3", "conv3", "pool3", PoolMethod::kAve, 3, 2));
  s.layers.push_back(ip("ip1", "pool3", "ip1", 64, 0.1f));
  s.layers.push_back(ip("ip2", "ip1", "ip2", 10, 0.1f));
  s.layers.push_back(softmax_loss("loss", "ip2", "label"));
  return s;
}

NetSpec siamese_mnist(int batch) {
  NetSpec s;
  s.name = "Siamese";
  s.layers.push_back(data(DatasetSpec::mnist(), batch, /*pair=*/true));

  const auto branch = [&s](const std::string& suffix, const std::string& input) {
    auto share = [&suffix](LayerSpec l, const char* base) {
      l.param_names = {std::string(base) + "_w", std::string(base) + "_b"};
      (void)suffix;
      return l;
    };
    s.layers.push_back(share(
        conv("conv1" + suffix, input, "conv1" + suffix, 20, 5), "conv1"));
    s.layers.push_back(pool("pool1" + suffix, "conv1" + suffix, "pool1" + suffix,
                            PoolMethod::kMax, 2, 2));
    s.layers.push_back(share(
        conv("conv2" + suffix, "pool1" + suffix, "conv2" + suffix, 50, 5),
        "conv2"));
    s.layers.push_back(pool("pool2" + suffix, "conv2" + suffix, "pool2" + suffix,
                            PoolMethod::kMax, 2, 2));
    s.layers.push_back(
        share(ip("ip1" + suffix, "pool2" + suffix, "ip1" + suffix, 500), "ip1"));
    s.layers.push_back(relu("relu1" + suffix, "ip1" + suffix));
    s.layers.push_back(
        share(ip("ip2" + suffix, "ip1" + suffix, "ip2" + suffix, 10), "ip2"));
    s.layers.push_back(
        share(ip("feat" + suffix, "ip2" + suffix, "feat" + suffix, 2), "feat"));
  };
  branch("", "data");
  branch("_p", "data_p");

  LayerSpec loss = layer("ContrastiveLoss", "loss", {"feat", "feat_p", "sim"},
                         {"loss"});
  loss.params.margin = 1.0f;
  s.layers.push_back(loss);
  return s;
}

NetSpec caffenet(int batch) {
  NetSpec s;
  s.name = "CaffeNet";
  s.layers.push_back(data(DatasetSpec::imagenet_crop227(), batch));
  s.layers.push_back(conv("conv1", "data", "conv1", 96, 11, 4, 0, 0.01f));
  s.layers.push_back(relu("relu1", "conv1"));
  s.layers.push_back(pool("pool1", "conv1", "pool1", PoolMethod::kMax, 3, 2));
  s.layers.push_back(lrn("norm1", "pool1", "norm1"));
  s.layers.push_back(conv("conv2", "norm1", "conv2", 256, 5, 1, 2, 0.01f));
  s.layers.push_back(relu("relu2", "conv2"));
  s.layers.push_back(pool("pool2", "conv2", "pool2", PoolMethod::kMax, 3, 2));
  s.layers.push_back(lrn("norm2", "pool2", "norm2"));
  s.layers.push_back(conv("conv3", "norm2", "conv3", 384, 3, 1, 1, 0.01f));
  s.layers.push_back(relu("relu3", "conv3"));
  s.layers.push_back(conv("conv4", "conv3", "conv4", 384, 3, 1, 1, 0.01f));
  s.layers.push_back(relu("relu4", "conv4"));
  s.layers.push_back(conv("conv5", "conv4", "conv5", 256, 3, 1, 1, 0.01f));
  s.layers.push_back(relu("relu5", "conv5"));
  s.layers.push_back(pool("pool5", "conv5", "pool5", PoolMethod::kMax, 3, 2));
  s.layers.push_back(ip("fc6", "pool5", "fc6", 4096, 0.005f));
  s.layers.push_back(relu("relu6", "fc6"));
  s.layers.push_back(dropout("drop6", "fc6"));
  s.layers.push_back(ip("fc7", "fc6", "fc7", 4096, 0.005f));
  s.layers.push_back(relu("relu7", "fc7"));
  s.layers.push_back(dropout("drop7", "fc7"));
  s.layers.push_back(ip("fc8", "fc7", "fc8", 1000, 0.01f));
  s.layers.push_back(softmax_loss("loss", "fc8", "label"));
  return s;
}

std::string append_inception(NetSpec& spec, const std::string& prefix,
                             const std::string& bottom, int out_1x1,
                             int reduce_3x3, int out_3x3, int reduce_5x5,
                             int out_5x5, int pool_proj) {
  auto named = [&prefix](const std::string& leaf) { return prefix + "/" + leaf; };

  spec.layers.push_back(conv(named("1x1"), bottom, named("1x1"), out_1x1, 1));
  spec.layers.push_back(relu(named("relu_1x1"), named("1x1")));

  spec.layers.push_back(
      conv(named("3x3_reduce"), bottom, named("3x3_reduce"), reduce_3x3, 1));
  spec.layers.push_back(relu(named("relu_3x3_reduce"), named("3x3_reduce")));
  spec.layers.push_back(
      conv(named("3x3"), named("3x3_reduce"), named("3x3"), out_3x3, 3, 1, 1));
  spec.layers.push_back(relu(named("relu_3x3"), named("3x3")));

  spec.layers.push_back(
      conv(named("5x5_reduce"), bottom, named("5x5_reduce"), reduce_5x5, 1));
  spec.layers.push_back(relu(named("relu_5x5_reduce"), named("5x5_reduce")));
  spec.layers.push_back(
      conv(named("5x5"), named("5x5_reduce"), named("5x5"), out_5x5, 5, 1, 2));
  spec.layers.push_back(relu(named("relu_5x5"), named("5x5")));

  spec.layers.push_back(
      pool(named("pool"), bottom, named("pool"), PoolMethod::kMax, 3, 1, 1));
  spec.layers.push_back(
      conv(named("pool_proj"), named("pool"), named("pool_proj"), pool_proj, 1));
  spec.layers.push_back(relu(named("relu_pool_proj"), named("pool_proj")));

  const std::string out = named("output");
  spec.layers.push_back(layer("Concat", named("concat"),
                              {named("1x1"), named("3x3"), named("5x5"),
                               named("pool_proj")},
                              {out}));
  return out;
}

NetSpec googlenet_tail(int batch) {
  // The inception_5a/5b tail of GoogLeNet operating on 7x7 maps of depth
  // 832 — contains exactly the six convolution units of Table 5.
  NetSpec s;
  s.name = "GoogLeNet";
  DatasetSpec d;
  d.name = "googlenet-tail-features";
  d.num_classes = 10;
  d.channels = 832;
  d.height = 7;
  d.width = 7;
  d.train_size = 50000;
  s.layers.push_back(data(d, batch));

  const std::string out5a =
      append_inception(s, "inception_5a", "data", 256, 160, 320, 32, 128, 128);
  const std::string out5b =
      append_inception(s, "inception_5b", out5a, 384, 192, 384, 48, 128, 128);

  s.layers.push_back(
      pool("pool5", out5b, "pool5", PoolMethod::kAve, 7, 1));
  s.layers.push_back(dropout("drop5", "pool5", 0.4f));
  s.layers.push_back(ip("classifier", "pool5", "classifier", 10, 0.01f));
  s.layers.push_back(softmax_loss("loss", "classifier", "label"));
  return s;
}

NetSpec lenet(int batch) {
  NetSpec s;
  s.name = "LeNet";
  s.layers.push_back(data(DatasetSpec::mnist(), batch));
  s.layers.push_back(conv("conv1", "data", "conv1", 20, 5));
  s.layers.push_back(pool("pool1", "conv1", "pool1", PoolMethod::kMax, 2, 2));
  s.layers.push_back(conv("conv2", "pool1", "conv2", 50, 5));
  s.layers.push_back(pool("pool2", "conv2", "pool2", PoolMethod::kMax, 2, 2));
  s.layers.push_back(ip("ip1", "pool2", "ip1", 500));
  s.layers.push_back(relu("relu1", "ip1"));
  s.layers.push_back(ip("ip2", "ip1", "ip2", 10));
  s.layers.push_back(softmax_loss("loss", "ip2", "label"));
  return s;
}

std::vector<NamedNet> paper_networks() {
  return {{"CIFAR10", cifar10_quick()},
          {"Siamese", siamese_mnist()},
          {"CaffeNet", caffenet()},
          {"GoogLeNet", googlenet_tail()}};
}

std::vector<std::string> tracked_conv_layers(const std::string& net_name) {
  if (net_name == "CIFAR10") return {"conv1", "conv2", "conv3"};
  if (net_name == "Siamese") return {"conv1", "conv2", "conv1_p", "conv2_p"};
  if (net_name == "CaffeNet") {
    return {"conv1", "conv2", "conv3", "conv4", "conv5"};
  }
  if (net_name == "GoogLeNet") {
    // Table 5's conv_1..conv_6 in paper order.
    return {"inception_5a/3x3",        "inception_5a/5x5_reduce",
            "inception_5b/1x1",        "inception_5b/3x3",
            "inception_5b/3x3_reduce", "inception_5b/5x5_reduce"};
  }
  return {};
}

}  // namespace mc::models
