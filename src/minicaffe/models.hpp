#pragma once
// Model zoo: the paper's four evaluation networks (Table 5) plus LeNet.
// All specs mirror the Caffe definitions the paper trained:
//   CIFAR10  — cifar10_quick (batch 100)
//   Siamese  — MNIST Siamese with shared weights + contrastive loss (64)
//   CaffeNet — AlexNet variant on 227x227 crops (batch 256)
//   GoogLeNet— the inception_5a/5b tail, containing exactly the six
//              convolution units Table 5 evaluates (batch 32)

#include "minicaffe/net.hpp"

namespace mc::models {

NetSpec cifar10_quick(int batch = 100);
NetSpec siamese_mnist(int batch = 64);
NetSpec caffenet(int batch = 256);
NetSpec googlenet_tail(int batch = 32);
NetSpec lenet(int batch = 64);

/// Generic GoogLeNet inception module appended to `spec`:
/// bottom -> {1x1, 3x3reduce->3x3, 5x5reduce->5x5, pool->proj} -> concat.
/// Returns the concat output blob name.
std::string append_inception(NetSpec& spec, const std::string& prefix,
                             const std::string& bottom, int out_1x1,
                             int reduce_3x3, int out_3x3, int reduce_5x5,
                             int out_5x5, int pool_proj);

struct NamedNet {
  std::string name;
  NetSpec spec;
};

/// The four networks of the paper's evaluation, with their Table 5 batch
/// sizes, in the order of Fig. 7.
std::vector<NamedNet> paper_networks();

/// The Table 5 convolution-layer names of `net` (the layers Figs. 7–9
/// report individually).
std::vector<std::string> tracked_conv_layers(const std::string& net_name);

}  // namespace mc::models
