#include "minicaffe/net.hpp"

#include <algorithm>
#include <set>

#include <sstream>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "kernels/cpu_math.hpp"
#include "minicaffe/net_dag.hpp"

namespace mc {

Net::Net(NetSpec spec, ExecContext& ec) : spec_(std::move(spec)), ec_(&ec) {
  GLP_REQUIRE(ec_->ctx != nullptr && ec_->dispatcher != nullptr,
              "ExecContext must provide a device context and a dispatcher");
  build();
  if (ec_->dag_schedule) dag_ = std::make_unique<NetDag>(*this);
}

Net::~Net() = default;

void Net::build() {
  std::map<std::string, std::shared_ptr<Blob>> shared_params;

  for (const LayerSpec& lspec : spec_.layers) {
    GLP_REQUIRE(!lspec.name.empty(), "layers must be named");
    GLP_REQUIRE(layer_by_name(lspec.name) == nullptr,
                "duplicate layer name '" << lspec.name << "'");

    std::vector<Blob*> bottoms;
    for (const std::string& b : lspec.bottoms) {
      auto it = blobs_.find(b);
      GLP_REQUIRE(it != blobs_.end(), "layer '" << lspec.name
                                                << "' consumes unknown blob '"
                                                << b << "'");
      bottoms.push_back(it->second.get());
    }

    std::vector<Blob*> tops;
    for (const std::string& t : lspec.tops) {
      auto it = blobs_.find(t);
      if (it != blobs_.end()) {
        // In-place: the top must also be one of this layer's bottoms.
        const bool in_place =
            std::find(lspec.bottoms.begin(), lspec.bottoms.end(), t) !=
            lspec.bottoms.end();
        GLP_REQUIRE(in_place, "layer '" << lspec.name << "' re-defines blob '"
                                        << t << "' without using it in place");
        tops.push_back(it->second.get());
      } else {
        auto blob = std::make_unique<Blob>(*ec_->ctx);
        tops.push_back(blob.get());
        blobs_.emplace(t, std::move(blob));
      }
    }

    std::unique_ptr<Layer> layer = create_layer(lspec, *ec_);
    layer->setup(bottoms, tops);

    // Parameter sharing (Siamese weights): adopt the registry's blob.
    for (std::size_t i = 0; i < lspec.param_names.size(); ++i) {
      const std::string& pname = lspec.param_names[i];
      if (pname.empty()) continue;
      GLP_REQUIRE(i < layer->param_blobs().size(),
                  "param name index " << i << " out of range for layer '"
                                      << lspec.name << "'");
      auto it = shared_params.find(pname);
      if (it == shared_params.end()) {
        shared_params.emplace(pname, layer->param_blobs()[i]);
      } else {
        GLP_REQUIRE(it->second->count() == layer->param_blobs()[i]->count(),
                    "shared param '" << pname << "' shape mismatch at layer '"
                                     << lspec.name << "'");
        layer->share_param(i, it->second);
      }
    }

    // Gradient-need propagation.
    bool any_bottom_needs = false;
    for (const std::string& b : lspec.bottoms) {
      any_bottom_needs = any_bottom_needs || blob_needs_grad_[b];
    }
    const bool tops_need_grad =
        layer->has_backward() &&
        (!layer->param_blobs().empty() || any_bottom_needs);
    for (const std::string& t : lspec.tops) {
      blob_needs_grad_[t] = blob_needs_grad_[t] || tops_need_grad;
    }

    std::vector<bool> propagate;
    for (const std::string& b : lspec.bottoms) {
      propagate.push_back(blob_needs_grad_[b]);
    }

    if (layer->is_loss()) {
      loss_layers_.emplace_back(layer.get(), lspec.params.loss_weight);
    }

    bottoms_.push_back(std::move(bottoms));
    tops_.push_back(std::move(tops));
    propagate_.push_back(std::move(propagate));
    layers_.push_back(std::move(layer));
  }

  // Deduplicated learnable parameter list, in first-appearance order.
  std::set<const Blob*> seen;
  for (const auto& layer : layers_) {
    for (const auto& p : layer->param_blobs()) {
      if (seen.insert(p.get()).second) learnable_params_.push_back(p);
    }
  }

  check_consumer_contract();
  GLP_INFO << "net '" << spec_.name << "': " << layers_.size() << " layers, "
           << blobs_.size() << " blobs, " << learnable_params_.size()
           << " learnable params";
}

void Net::check_consumer_contract() const {
  // A blob consumed (with gradient) by several layers requires every such
  // consumer to accumulate; assigning consumers would clobber each other.
  std::map<const Blob*, int> consumers;
  std::map<const Blob*, int> assigners;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    if (!layers_[li]->has_backward()) continue;  // never writes gradients
    for (std::size_t bi = 0; bi < bottoms_[li].size(); ++bi) {
      if (!propagate_[li][bi]) continue;
      const Blob* blob = bottoms_[li][bi];
      // In-place consumers transform the diff in place and are exempt.
      const bool in_place =
          std::find(tops_[li].begin(), tops_[li].end(), blob) != tops_[li].end();
      if (in_place) continue;
      ++consumers[blob];
      if (!layers_[li]->accumulates_bottom_diff()) ++assigners[blob];
    }
  }
  for (const auto& [blob, count] : consumers) {
    if (count > 1 && assigners[blob] > 0) {
      throw glp::InvalidArgument(
          "net '" + spec_.name +
          "': a blob with multiple gradient consumers is consumed by an "
          "assigning layer; route it through accumulate-safe layers instead");
    }
  }
}

void Net::forward() {
  if (dag_ != nullptr) {
    dag_->forward();
    return;
  }
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    layers_[li]->forward(bottoms_[li], tops_[li]);
  }
}

void Net::backward() {
  GLP_REQUIRE(backward_layer_hook_ == nullptr || dag_ == nullptr,
              "the backward layer hook requires the plain (non-DAG) path");
  if (dag_ != nullptr) {
    dag_->backward();
    return;
  }
  GLP_REQUIRE(!ec_->inference,
              "Net::backward is unavailable in inference mode: the net was "
              "built forward-only (no gradient buffers)");
  // Join the device: host-side zeroing below must not race queued kernels.
  ec_->ctx->device().synchronize();
  if (ec_->numeric()) {
    for (auto& [name, blob] : blobs_) {
      if (blob_needs_grad_[name]) {
        kern::cpu::fill(blob->count(), 0.0f, blob->mutable_diff());
      }
    }
  }
  for (std::size_t li = layers_.size(); li-- > 0;) {
    if (layers_[li]->has_backward()) {
      layers_[li]->backward(tops_[li], propagate_[li], bottoms_[li]);
    }
    if (backward_layer_hook_) backward_layer_hook_(li);
  }
}

float Net::total_loss() {
  ec_->ctx->device().synchronize();
  float loss = 0.0f;
  for (const auto& [layer, weight] : loss_layers_) {
    // A loss layer's top is its first top blob's first element.
    for (std::size_t li = 0; li < layers_.size(); ++li) {
      if (layers_[li].get() == layer) {
        loss += weight * tops_[li][0]->data()[0];
        break;
      }
    }
  }
  return loss;
}

Blob* Net::blob(const std::string& name) {
  auto it = blobs_.find(name);
  GLP_REQUIRE(it != blobs_.end(), "unknown blob '" << name << "'");
  return it->second.get();
}

bool Net::has_blob(const std::string& name) const {
  return blobs_.count(name) != 0;
}

std::vector<std::string> Net::blob_names() const {
  std::vector<std::string> out;
  out.reserve(blobs_.size());
  for (const auto& [name, blob] : blobs_) out.push_back(name);
  return out;
}

Layer* Net::layer_by_name(const std::string& name) {
  for (const auto& l : layers_) {
    if (l->name() == name) return l.get();
  }
  return nullptr;
}

std::string Net::summary() const {
  std::ostringstream os;
  os << "net '" << spec_.name << "'\n";
  std::size_t total_params = 0;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = *layers_[li];
    std::size_t params = 0;
    for (const auto& p : layer.param_blobs()) params += p->count();
    total_params += params;
    os << glp::strformat("  %-16s %-16s -> ", layer.name().c_str(),
                         layer.type().c_str());
    for (std::size_t t = 0; t < tops_[li].size(); ++t) {
      if (t != 0) os << ", ";
      os << layer.spec().tops[t] << " [" << tops_[li][t]->shape_string() << "]";
    }
    if (params > 0) os << "  (" << params << " params)";
    os << "\n";
  }
  // Shared parameters are counted once in the learnable list.
  std::size_t learnable = 0;
  for (const auto& p : learnable_params_) learnable += p->count();
  os << "  total: " << layers_.size() << " layers, " << learnable
     << " learnable parameters\n";
  (void)total_params;
  return os.str();
}

void Net::zero_param_diffs() {
  if (!ec_->numeric()) return;
  for (const auto& p : learnable_params_) {
    kern::cpu::fill(p->count(), 0.0f, p->mutable_diff());
  }
}

void Net::share_params_from(Net& donor) {
  GLP_REQUIRE(layers_.size() == donor.layers_.size(),
              "share_params_from: nets have different layer counts");
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Layer* mine = layers_[l].get();
    Layer* theirs = donor.layers_[l].get();
    GLP_REQUIRE(mine->param_blobs().size() == theirs->param_blobs().size(),
                "share_params_from: layer '" << mine->spec().name
                                             << "' has mismatched param counts");
    for (std::size_t i = 0; i < theirs->param_blobs().size(); ++i) {
      const auto& donor_blob = theirs->param_blobs()[i];
      GLP_REQUIRE(mine->param_blobs()[i]->count() == donor_blob->count(),
                  "share_params_from: layer '" << mine->spec().name
                                               << "' param " << i
                                               << " shape mismatch");
      mine->share_param(i, donor_blob);
    }
  }
  // Re-point the dedup'd list too, or this net's original param storage
  // stays pinned by learnable_params_ and the sharing saves nothing.
  learnable_params_ = donor.learnable_params_;
}

}  // namespace mc
