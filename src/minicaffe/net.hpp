#pragma once
// The network: a DAG of layers over named blobs, Caffe-style. Layers
// execute in spec order for forward and reverse order for backward
// (specs must therefore be topologically sorted, as Caffe prototxts are).
//
// Gradient bookkeeping: Net computes which blobs need gradients, zeroes
// them at the start of backward (layers accumulate), and verifies the
// accumulate/assign consumer contract (see Layer::accumulates_bottom_diff).

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "minicaffe/layer.hpp"

namespace mc {

class NetDag;

struct NetSpec {
  std::string name;
  std::vector<LayerSpec> layers;
};

class Net {
 public:
  Net(NetSpec spec, ExecContext& ec);
  ~Net();
  Net(const Net&) = delete;
  Net& operator=(const Net&) = delete;

  /// Launch the whole forward pass (asynchronous — no host sync). Routes
  /// through the DAG executor when ExecContext::dag_schedule is set.
  void forward();
  /// Launch the backward pass. Synchronises the device first so host-side
  /// gradient zeroing cannot race pending kernels.
  void backward();

  /// DAG executor, or nullptr when ExecContext::dag_schedule is off.
  NetDag* dag() { return dag_.get(); }

  /// Synchronises, then returns Σ loss_weight · loss over loss layers.
  float total_loss();

  Blob* blob(const std::string& name);
  bool has_blob(const std::string& name) const;
  std::vector<std::string> blob_names() const;
  Layer* layer_by_name(const std::string& name);
  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

  /// Learnable parameters, deduplicated (shared params appear once).
  const std::vector<std::shared_ptr<Blob>>& learnable_params() const {
    return learnable_params_;
  }
  /// Host-side zero of all parameter diffs (call only while synchronised).
  void zero_param_diffs();

  /// Data-parallel hook: fires once per layer index (spec order) as the
  /// plain backward pass walks the layers in reverse, right after the
  /// layer's backward launch. The fleet trainer records bucket-ready
  /// events here so the bucketed all-reduce starts while later layers'
  /// backward is still being issued. Unsupported on the DAG path
  /// (ExecContext::dag_schedule must be off to use it).
  void set_backward_layer_hook(std::function<void(std::size_t)> hook) {
    backward_layer_hook_ = std::move(hook);
  }

  /// Adopt every parameter blob from `donor` (a net built from the same
  /// spec): each layer's params are re-pointed at the donor's blobs and
  /// this net's own copies are released. Serving replicas use this so N
  /// batch-size variants of a model share one read-only weight set.
  void share_params_from(Net& donor);

  ExecContext& exec() { return *ec_; }
  const NetSpec& spec() const { return spec_; }

  /// Human-readable layer table: type, tops with shapes, parameter counts
  /// (the startup log real Caffe prints).
  std::string summary() const;

 private:
  friend class NetDag;

  void build();
  void check_consumer_contract() const;

  NetSpec spec_;
  ExecContext* ec_;
  std::map<std::string, std::unique_ptr<Blob>> blobs_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<std::vector<Blob*>> bottoms_;
  std::vector<std::vector<Blob*>> tops_;
  std::vector<std::vector<bool>> propagate_;
  std::map<std::string, bool> blob_needs_grad_;
  std::vector<std::shared_ptr<Blob>> learnable_params_;
  std::vector<std::pair<Layer*, float>> loss_layers_;
  std::function<void(std::size_t)> backward_layer_hook_;
  std::unique_ptr<NetDag> dag_;
};

}  // namespace mc
