#include "minicaffe/net_dag.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/log.hpp"
#include "kernels/cpu_math.hpp"

namespace mc {

namespace {

/// Whole-blob single-launch elementwise layers the chain-coalescing pass
/// may merge. Dropout is excluded: its host-side mask draw is already
/// issue-ordered, but keeping it un-fused keeps the mask kernel's launch
/// attribution (and its fault behaviour) identical to the serial run's.
bool chainable_elementwise(const std::string& type) {
  return type == "ReLU" || type == "Sigmoid" || type == "TanH" ||
         type == "AbsVal" || type == "Power" || type == "Exp";
}

/// Scope this layer's pass opens on the dispatcher, or "" when the layer
/// launches whole-batch kernels directly.
std::string scope_of(const std::string& type, const std::string& name,
                     bool backward, bool inference) {
  if (type == "Convolution" || type == "Deconvolution") {
    return name + (backward ? "/bwd" : "/fwd");
  }
  if (!backward && inference && type == "InnerProduct") return name + "/fwd";
  return "";
}

/// Merged launch for a coalesced elementwise chain: config is the
/// per-field max over the staged launches, cost the sum, and the functor
/// runs every staged functor in staging order — the same host ops on the
/// same buffers in the same order as the unfused FIFO execution.
struct ChainRunner {
  std::vector<gpusim::DeviceEngine::WorkFn> fns;
  void operator()() {
    for (auto& fn : fns) {
      if (fn) fn();
    }
  }
};

void submit_fused_chain(ExecContext& ec, const NetDag::Op& head,
                        std::vector<kern::FusionStager::Staged> staged) {
  if (staged.empty()) return;
  auto target_stream = [&]() {
    // Same degraded-launch semantics as kern::Launcher: a failed launch
    // re-issues on the legacy default stream (a two-sided barrier), which
    // preserves global submission order.
    return ec.ctx->faults().should_fail_launch() ? gpusim::kDefaultStream
                                                 : head.stream;
  };
  if (staged.size() == 1) {
    kern::FusionStager::Staged& s = staged.front();
    ec.ctx->device().launch_kernel(target_stream(), std::move(s.name), s.config,
                                   s.cost, std::move(s.work));
    return;
  }
  gpusim::LaunchConfig cfg;
  gpusim::KernelCost cost;
  cfg.regs_per_thread = 0;
  std::vector<gpusim::DeviceEngine::WorkFn> fns;
  fns.reserve(staged.size());
  bool any_work = false;
  for (kern::FusionStager::Staged& s : staged) {
    cfg.grid.x = std::max(cfg.grid.x, s.config.grid.x);
    cfg.grid.y = std::max(cfg.grid.y, s.config.grid.y);
    cfg.grid.z = std::max(cfg.grid.z, s.config.grid.z);
    cfg.block.x = std::max(cfg.block.x, s.config.block.x);
    cfg.block.y = std::max(cfg.block.y, s.config.block.y);
    cfg.block.z = std::max(cfg.block.z, s.config.block.z);
    cfg.regs_per_thread = std::max(cfg.regs_per_thread, s.config.regs_per_thread);
    cfg.smem_static_bytes =
        std::max(cfg.smem_static_bytes, s.config.smem_static_bytes);
    cfg.smem_dynamic_bytes =
        std::max(cfg.smem_dynamic_bytes, s.config.smem_dynamic_bytes);
    cost.flops += s.cost.flops;
    cost.bytes += s.cost.bytes;
    any_work = any_work || static_cast<bool>(s.work);
    fns.push_back(std::move(s.work));
  }
  const std::string name =
      head.prefix + "/fused_chain" + std::to_string(staged.size());
  ec.ctx->device().launch_kernel(
      target_stream(), name, cfg, cost,
      any_work ? gpusim::DeviceEngine::WorkFn(ChainRunner{std::move(fns)})
               : gpusim::DeviceEngine::WorkFn());
}

}  // namespace

NetDag::NetDag(Net& net) : net_(&net) { build_pass(fwd_, false); }

const std::vector<NetDag::Op>& NetDag::backward_ops() {
  if (!bwd_.built) build_pass(bwd_, true);
  return bwd_.ops;
}

std::vector<NetDag::ScheduledOp> NetDag::backward_schedule() {
  if (!bwd_.built) build_pass(bwd_, true);
  return make_schedule(bwd_);
}

void NetDag::build_pass(Pass& pass, bool backward) {
  pass.is_backward = backward;
  pass.ops.clear();
  const ExecContext& ec = *net_->ec_;
  const int num_layers = static_cast<int>(net_->layers_.size());

  std::vector<int> order;
  if (!backward) {
    for (int li = 0; li < num_layers; ++li) order.push_back(li);
  } else {
    for (int li = num_layers; li-- > 0;) {
      if (net_->layers_[li]->has_backward()) order.push_back(li);
    }
  }

  // Memory-conflict tracking per (blob, data|diff) buffer: a read depends
  // on the buffer's last writer; a write depends on the last writer AND
  // every reader since (WAR), then becomes the new last writer. Every
  // conflict thus becomes a DAG edge, and write-write chains stay totally
  // ordered in issue order — conflict-serializable to the serial pass.
  enum { kData = 0, kDiff = 1 };
  struct BufState {
    int last_writer = -1;
    std::vector<int> readers;
  };
  std::map<std::pair<const Blob*, int>, BufState> bufs;

  for (std::size_t oi = 0; oi < order.size(); ++oi) {
    const int li = order[oi];
    Layer* layer = net_->layers_[li].get();
    Op op;
    op.layer = li;
    op.name = layer->name();
    op.type = layer->type();
    op.prefix = op.name + (backward ? "/bwd" : "/fwd");
    op.scope = scope_of(op.type, op.name, backward, ec.inference);

    std::set<std::pair<const Blob*, int>> reads;
    std::set<std::pair<const Blob*, int>> writes;
    if (!backward) {
      for (Blob* b : net_->bottoms_[li]) reads.insert({b, kData});
      for (const auto& p : layer->param_blobs()) reads.insert({p.get(), kData});
      for (Blob* t : net_->tops_[li]) writes.insert({t, kData});
      if (op.type == "BatchNorm") {
        // Training-mode BatchNorm updates its moving statistics in
        // forward; shared-stat siblings must serialise.
        for (const auto& p : layer->param_blobs()) writes.insert({p.get(), kData});
      }
    } else {
      for (Blob* b : net_->bottoms_[li]) reads.insert({b, kData});
      for (Blob* t : net_->tops_[li]) {
        reads.insert({t, kData});
        reads.insert({t, kDiff});
      }
      for (const auto& p : layer->param_blobs()) reads.insert({p.get(), kData});
      for (std::size_t bi = 0; bi < net_->bottoms_[li].size(); ++bi) {
        if (net_->propagate_[li][bi]) {
          writes.insert({net_->bottoms_[li][bi], kDiff});
        }
      }
      for (const auto& p : layer->param_blobs()) writes.insert({p.get(), kDiff});
    }

    std::set<int> deps;
    const int self = static_cast<int>(oi);
    for (const auto& key : reads) {
      BufState& s = bufs[key];
      if (s.last_writer >= 0) deps.insert(s.last_writer);
      s.readers.push_back(self);
    }
    for (const auto& key : writes) {
      BufState& s = bufs[key];
      if (s.last_writer >= 0 && s.last_writer != self) deps.insert(s.last_writer);
      for (int r : s.readers) {
        if (r != self) deps.insert(r);
      }
      s.last_writer = self;
      s.readers.clear();
    }
    deps.erase(self);
    op.deps.assign(deps.begin(), deps.end());
    pass.ops.push_back(std::move(op));
  }

  if (!backward) plan_fusion(pass);
  place_ops(pass);
  pass.built = true;
}

void NetDag::plan_fusion(Pass& pass) {
  const ExecContext& ec = *net_->ec_;
  if (!ec.dag_fusion) return;
  std::vector<Op>& ops = pass.ops;
  const int n = static_cast<int>(ops.size());

  // Mechanism A — GEMM epilogue: an in-place ReLU whose only DAG edge is
  // its producing Convolution / (training) InnerProduct GEMM is absorbed
  // into that GEMM. deps == {producer} proves no other op reads the
  // pre-activation values: any earlier reader of the top would have
  // forced a WAR edge onto the in-place ReLU.
  for (int j = 0; j < n; ++j) {
    Op& relu = ops[j];
    if (relu.type != "ReLU" || relu.deps.size() != 1) continue;
    const int i = relu.deps.front();
    Op& prod = ops[i];
    const bool fusible_producer =
        prod.type == "Convolution" ||
        (prod.type == "InnerProduct" && !ec.inference);
    if (!fusible_producer) continue;
    if (!net_->layers_[prod.layer]->params().bias_term) continue;
    if (relu_epilogues_.count(prod.name) != 0) continue;
    // In place on the producer's (single) top blob.
    const std::vector<Blob*>& rb = net_->bottoms_[relu.layer];
    const std::vector<Blob*>& rt = net_->tops_[relu.layer];
    const std::vector<Blob*>& pt = net_->tops_[prod.layer];
    if (rb.size() != 1 || rt.size() != 1 || pt.size() != 1) continue;
    if (rb[0] != rt[0] || rb[0] != pt[0]) continue;
    relu_epilogues_.emplace(prod.name,
                            net_->layers_[relu.layer]->params().negative_slope);
    relu.absorbed = true;
    relu.absorbed_into = i;
  }

  // Mechanism B — launch coalescing: a maximal run of consecutive
  // single-launch elementwise ops, each depending only on its
  // predecessor, is staged and submitted as one merged launch.
  for (int i = 0; i < n;) {
    if (ops[i].absorbed || !chainable_elementwise(ops[i].type)) {
      ++i;
      continue;
    }
    int j = i + 1;
    while (j < n && !ops[j].absorbed && chainable_elementwise(ops[j].type) &&
           ops[j].deps.size() == 1 && ops[j].deps.front() == j - 1) {
      ++j;
    }
    if (j - i >= 2) {
      for (int m = i; m < j; ++m) ops[m].fused_head = i;
    }
    i = j;
  }
}

void NetDag::place_ops(Pass& pass) {
  std::vector<Op>& ops = pass.ops;
  const int n = static_cast<int>(ops.size());

  std::vector<kern::DagOp> dag_ops(ops.size());
  for (int i = 0; i < n; ++i) {
    dag_ops[i].scope = ops[i].scope;
    dag_ops[i].deps = ops[i].deps;
  }
  const std::vector<kern::DagPlacement> placements =
      net_->ec_->dispatcher->plan_dag(dag_ops);
  GLP_REQUIRE(placements.size() == ops.size(),
              "plan_dag returned " << placements.size() << " placements for "
                                   << ops.size() << " ops");
  for (int i = 0; i < n; ++i) {
    ops[i].stream = placements[i].stream;
    ops[i].chain = placements[i].chain;
    ops[i].slot = placements[i].slot;
    ops[i].num_slots = placements[i].num_slots;
    ops[i].concurrent_scopes = placements[i].concurrent_scopes;
  }

  // Fused work executes inside its producer / chain head: inherit that
  // op's placement so stream FIFO covers the internal edges.
  auto alias = [&](int i) {
    if (ops[i].absorbed) return ops[i].absorbed_into;
    if (ops[i].fused_head >= 0) return ops[i].fused_head;
    return i;
  };
  for (int i = 0; i < n; ++i) {
    const int a = alias(i);
    if (a == i) continue;
    ops[i].stream = ops[a].stream;
    ops[i].chain = ops[a].chain;
    ops[i].slot = ops[a].slot;
    ops[i].num_slots = ops[a].num_slots;
  }

  for (int i = 0; i < n; ++i) {
    std::set<int> eff;
    for (int d : ops[i].deps) {
      const int a = alias(d);
      if (a != i) eff.insert(a);
    }
    ops[i].effective_deps.assign(eff.begin(), eff.end());
  }

  // An op needs a completion event iff some cross-stream consumer must
  // wait on it. Edges touching the default stream need none: the legacy
  // default stream is a two-sided barrier and the host issues ops in
  // topological order.
  for (int i = 0; i < n; ++i) {
    if (alias(i) != i) continue;
    if (ops[i].stream == gpusim::kDefaultStream) continue;
    for (int e : ops[i].effective_deps) {
      if (ops[e].stream == gpusim::kDefaultStream) continue;
      if (ops[e].stream != ops[i].stream) ops[e].needs_event = true;
    }
  }
}

void NetDag::run_pass(Pass& pass) {
  ExecContext& ec = *net_->ec_;
  gpusim::DeviceEngine& dev = ec.ctx->device();
  std::vector<Op>& ops = pass.ops;
  const int n = static_cast<int>(ops.size());

  const gpusim::StreamId saved_home = ec.home_stream;
  const std::map<std::string, float>* saved_epilogues = ec.fused_relu_epilogues;
  kern::FusionStager* saved_fuser = ec.fuser;
  if (!pass.is_backward) ec.fused_relu_epilogues = &relu_epilogues_;

  auto issue = [&](int i) {
    const int li = ops[i].layer;
    Layer* layer = net_->layers_[li].get();
    if (pass.is_backward) {
      layer->backward(net_->tops_[li], net_->propagate_[li], net_->bottoms_[li]);
    } else {
      layer->forward(net_->bottoms_[li], net_->tops_[li]);
    }
  };

  std::vector<gpusim::EventId> events(ops.size(), 0);
  for (int i = 0; i < n; ++i) {
    Op& op = ops[i];
    if (op.absorbed) continue;                          // runs inside producer
    if (op.fused_head >= 0 && op.fused_head != i) continue;  // inside head
    ec.home_stream = op.stream;

    for (int e : op.effective_deps) {
      if (op.stream == gpusim::kDefaultStream) continue;
      if (ops[e].stream == gpusim::kDefaultStream) continue;
      if (ops[e].stream == op.stream) continue;  // stream FIFO covers it
      if (events[e] != 0) dev.wait_event(op.stream, events[e]);
    }

    const bool scoped = !op.scope.empty();
    if (scoped) {
      ec.dispatcher->bind_dag_op(
          {op.stream, op.slot, op.num_slots, op.concurrent_scopes});
    }
    if (op.fused_head == i) {
      kern::FusionStager stager;
      stager.armed = true;
      ec.fuser = &stager;
      for (int m = i; m < n && ops[m].fused_head == i; ++m) issue(m);
      ec.fuser = saved_fuser;
      submit_fused_chain(ec, op, std::move(stager.staged));
    } else {
      issue(i);
    }
    if (scoped) ec.dispatcher->clear_dag_op();

    if (op.needs_event) events[i] = dev.record_event(op.stream);
  }

  ec.home_stream = saved_home;
  ec.fused_relu_epilogues = saved_epilogues;
  ec.fuser = saved_fuser;
}

void NetDag::forward() { run_pass(fwd_); }

void NetDag::backward() {
  GLP_REQUIRE(!net_->ec_->inference,
              "Net::backward is unavailable in inference mode: the net was "
              "built forward-only (no gradient buffers)");
  if (!bwd_.built) build_pass(bwd_, true);
  // Same preamble as the serial pass: join the device, then zero the
  // gradient buffers host-side before any backward kernel is issued.
  net_->ec_->ctx->device().synchronize();
  if (net_->ec_->numeric()) {
    for (auto& [name, blob] : net_->blobs_) {
      if (net_->blob_needs_grad_[name]) {
        kern::cpu::fill(blob->count(), 0.0f, blob->mutable_diff());
      }
    }
  }
  run_pass(bwd_);
}

std::vector<NetDag::ScheduledOp> NetDag::make_schedule(const Pass& pass) const {
  const std::vector<Op>& ops = pass.ops;
  const int n = static_cast<int>(ops.size());
  std::vector<int> remap(ops.size(), -1);
  std::vector<ScheduledOp> out;
  for (int i = 0; i < n; ++i) {
    if (ops[i].absorbed || (ops[i].fused_head >= 0 && ops[i].fused_head != i)) {
      continue;
    }
    remap[static_cast<std::size_t>(i)] = static_cast<int>(out.size());
    ScheduledOp s;
    s.prefix = ops[i].prefix;
    s.stream = ops[i].stream;
    for (int e : ops[i].effective_deps) {
      const int r = remap[static_cast<std::size_t>(e)];
      if (r >= 0) s.deps.push_back(r);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace mc
