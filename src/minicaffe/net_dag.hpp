#pragma once
// Inter-operator DAG executor for a Net. Instead of issuing layers
// serially on one stream, NetDag derives a dependency DAG over the
// layer ops of each pass (edges = memory conflicts between blob
// buffers), asks the dispatcher to place independent chains on
// concurrent streams (plan_dag), and issues ops in spec order with
// cross-stream event waits on every DAG edge.
//
// Convergence invariance: the host still *issues* ops in spec order, so
// every host-side RNG draw (dropout masks, dataset shuffles) happens in
// the serial order; every memory conflict between ops becomes a DAG edge
// enforced by stream FIFO, an event wait, or the legacy default-stream
// barrier; and write-write chains keep their serial order. Execution is
// therefore conflict-serializable to the serial schedule and the math is
// bit-identical.
//
// The fusion pass (ExecContext::dag_fusion) additionally cuts simulated
// launch overhead without changing numerics:
//  * ReLU epilogue: an in-place ReLU whose only dependency is the
//    producing Convolution / InnerProduct GEMM is absorbed into that
//    GEMM's launch (the layer applies the identical elementwise math as
//    an epilogue; the ReLU op itself is skipped).
//  * Chain coalescing: a run of consecutive single-launch elementwise
//    ops, each depending only on its predecessor, is staged through a
//    kern::FusionStager and submitted as ONE merged launch whose functor
//    runs the staged functors in order.

#include <map>
#include <string>
#include <vector>

#include "minicaffe/net.hpp"

namespace mc {

class NetDag {
 public:
  /// One layer op of a pass. Ops are indexed in issue (spec) order for
  /// forward and reverse spec order for backward; `deps` always
  /// reference lower indices, so the index order is a topological order.
  struct Op {
    int layer = -1;           ///< index into Net::layers()
    std::string name;         ///< layer name
    std::string type;         ///< layer type
    std::string prefix;       ///< kernel-name prefix, e.g. "conv1/fwd"
    std::string scope;        ///< dispatcher scope it opens ("" if none)
    std::vector<int> deps;    ///< memory-conflict edges (raw)
    /// Alias-resolved deps: absorbed ops map to their producer, fused
    /// chain members to their chain head. Deduplicated, self-free.
    std::vector<int> effective_deps;
    gpusim::StreamId stream = gpusim::kDefaultStream;
    int chain = 0;
    int slot = 0;
    int num_slots = 1;
    std::vector<std::string> concurrent_scopes;
    /// ReLU folded into the producing GEMM as an epilogue; not issued.
    bool absorbed = false;
    int absorbed_into = -1;  ///< producer op index when absorbed
    /// Head op of the coalesced elementwise chain this op belongs to
    /// (== own index for the head itself); -1 when not in a chain.
    int fused_head = -1;
    bool needs_event = false;  ///< a cross-stream consumer waits on us
  };

  /// Executable-op view for timeline schedule checking: one entry per op
  /// that actually issues kernels, with deps remapped into this list.
  /// Kernels belonging to the op carry names starting with `prefix + "/"`.
  struct ScheduledOp {
    std::string prefix;
    gpusim::StreamId stream = gpusim::kDefaultStream;
    std::vector<int> deps;
  };

  explicit NetDag(Net& net);

  /// DAG-scheduled passes (same observable numerics as Net's serial ones).
  void forward();
  void backward();

  const std::vector<Op>& forward_ops() const { return fwd_.ops; }
  /// Builds the backward pass lazily on first use.
  const std::vector<Op>& backward_ops();

  /// Producer layers whose GEMM absorbs a following in-place ReLU
  /// (layer name -> the ReLU's negative_slope).
  const std::map<std::string, float>& relu_epilogues() const {
    return relu_epilogues_;
  }

  std::vector<ScheduledOp> forward_schedule() const {
    return make_schedule(fwd_);
  }
  std::vector<ScheduledOp> backward_schedule();

 private:
  struct Pass {
    bool built = false;
    bool is_backward = false;
    std::vector<Op> ops;
  };

  void build_pass(Pass& pass, bool backward);
  void plan_fusion(Pass& pass);
  void place_ops(Pass& pass);
  void run_pass(Pass& pass);
  std::vector<ScheduledOp> make_schedule(const Pass& pass) const;

  Net* net_;
  Pass fwd_;
  Pass bwd_;
  std::map<std::string, float> relu_epilogues_;
};

}  // namespace mc
