#include "minicaffe/net_parser.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace mc {

namespace {

struct Token {
  enum class Kind { kIdent, kString, kNumber, kColon, kLBrace, kRBrace, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token next() {
    skip_ws_and_comments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) return t;
    const char c = text_[pos_];
    if (c == ':') {
      ++pos_;
      t.kind = Token::Kind::kColon;
      t.text = ":";
    } else if (c == '{') {
      ++pos_;
      t.kind = Token::Kind::kLBrace;
      t.text = "{";
    } else if (c == '}') {
      ++pos_;
      t.kind = Token::Kind::kRBrace;
      t.text = "}";
    } else if (c == '"') {
      ++pos_;
      t.kind = Token::Kind::kString;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        fail_if(text_[pos_] == '\n', "unterminated string");
        t.text.push_back(text_[pos_++]);
      }
      fail_if(pos_ >= text_.size(), "unterminated string");
      ++pos_;  // closing quote
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
               c == '+' || c == '.') {
      t.kind = Token::Kind::kNumber;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+')) {
        t.text.push_back(text_[pos_++]);
      }
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      t.kind = Token::Kind::kIdent;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        t.text.push_back(text_[pos_++]);
      }
    } else {
      fail("unexpected character '" + std::string(1, c) + "'");
    }
    return t;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw glp::InvalidArgument("net parse error at line " +
                               std::to_string(line_) + ": " + what);
  }
  void fail_if(bool cond, const std::string& what) const {
    if (cond) fail(what);
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) { advance(); }


  NetSpec parse() {
    NetSpec spec;
    while (cur_.kind != Token::Kind::kEnd) {
      const std::string key = expect_ident();
      if (key == "name") {
        expect(Token::Kind::kColon);
        spec.name = expect_value();
      } else if (key == "layer") {
        expect(Token::Kind::kLBrace);
        spec.layers.push_back(parse_layer());
      } else {
        fail("unknown top-level key '" + key + "'");
      }
    }
    return spec;
  }

 private:
  LayerSpec parse_layer() {
    LayerSpec l;
    while (cur_.kind != Token::Kind::kRBrace) {
      if (cur_.kind == Token::Kind::kEnd) fail("unterminated layer block");
      const std::string key = expect_ident();
      if (key == "weight_filler" || key == "bias_filler") {
        expect(Token::Kind::kLBrace);
        FillerSpec filler = parse_filler();
        if (key == "weight_filler") {
          l.params.weight_filler = filler;
        } else {
          l.params.bias_filler = filler;
        }
        continue;
      }
      expect(Token::Kind::kColon);
      const std::string value = expect_value();
      apply_layer_field(l, key, value);
    }
    advance();  // consume '}'
    if (l.type.empty()) fail("layer missing 'type'");
    return l;
  }

  FillerSpec parse_filler() {
    FillerSpec f;
    while (cur_.kind != Token::Kind::kRBrace) {
      if (cur_.kind == Token::Kind::kEnd) fail("unterminated filler block");
      const std::string key = expect_ident();
      expect(Token::Kind::kColon);
      const std::string value = expect_value();
      if (key == "type") {
        if (value == "constant") {
          f.kind = FillerSpec::Kind::kConstant;
        } else if (value == "uniform") {
          f.kind = FillerSpec::Kind::kUniform;
        } else if (value == "gaussian") {
          f.kind = FillerSpec::Kind::kGaussian;
        } else if (value == "xavier") {
          f.kind = FillerSpec::Kind::kXavier;
        } else {
          fail("unknown filler type '" + value + "'");
        }
      } else if (key == "value") {
        f.value = to_float(value);
      } else if (key == "std") {
        f.std = to_float(value);
      } else if (key == "mean") {
        f.mean = to_float(value);
      } else if (key == "min") {
        f.min = to_float(value);
      } else if (key == "max") {
        f.max = to_float(value);
      } else {
        fail("unknown filler key '" + key + "'");
      }
    }
    advance();  // consume '}'
    return f;
  }

  void apply_layer_field(LayerSpec& l, const std::string& key,
                         const std::string& value) {
    LayerParams& p = l.params;
    if (key == "name") {
      l.name = value;
    } else if (key == "type") {
      l.type = value;
    } else if (key == "bottom") {
      l.bottoms.push_back(value);
    } else if (key == "top") {
      l.tops.push_back(value);
    } else if (key == "param_name") {
      l.param_names.push_back(value);
    } else if (key == "num_output") {
      p.num_output = to_int(value);
    } else if (key == "kernel_size") {
      p.kernel_size = to_int(value);
    } else if (key == "stride") {
      p.stride = to_int(value);
    } else if (key == "pad") {
      p.pad = to_int(value);
    } else if (key == "group") {
      p.group = to_int(value);
    } else if (key == "bias_term") {
      p.bias_term = to_bool(value);
    } else if (key == "pool") {
      if (value == "MAX") {
        p.pool = PoolMethod::kMax;
      } else if (value == "AVE") {
        p.pool = PoolMethod::kAve;
      } else {
        fail("unknown pool method '" + value + "'");
      }
    } else if (key == "local_size") {
      p.local_size = to_int(value);
    } else if (key == "alpha") {
      p.alpha = to_float(value);
    } else if (key == "beta") {
      p.beta = to_float(value);
    } else if (key == "k") {
      p.k = to_float(value);
    } else if (key == "negative_slope") {
      p.negative_slope = to_float(value);
    } else if (key == "dropout_ratio") {
      p.dropout_ratio = to_float(value);
    } else if (key == "loss_weight") {
      p.loss_weight = to_float(value);
    } else if (key == "margin") {
      p.margin = to_float(value);
    } else if (key == "axis") {
      p.axis = to_int(value);
    } else if (key == "slice_point") {
      p.slice_points.push_back(to_int(value));
    } else if (key == "operation") {
      if (value == "SUM") {
        p.eltwise = EltwiseOp::kSum;
      } else if (value == "PROD") {
        p.eltwise = EltwiseOp::kProd;
      } else if (value == "MAX") {
        p.eltwise = EltwiseOp::kMax;
      } else {
        fail("unknown eltwise operation '" + value + "'");
      }
    } else if (key == "coeff") {
      p.eltwise_coeffs.push_back(to_float(value));
    } else if (key == "power") {
      p.power = to_float(value);
    } else if (key == "power_scale") {
      p.power_scale = to_float(value);
    } else if (key == "power_shift") {
      p.power_shift = to_float(value);
    } else if (key == "eps") {
      p.bn_eps = to_float(value);
    } else if (key == "moving_average_fraction") {
      p.bn_momentum = to_float(value);
    } else if (key == "use_global_stats") {
      p.use_global_stats = to_bool(value);
    } else if (key == "scale_bias_term") {
      p.scale_bias_term = to_bool(value);
    } else if (key == "reduction_mean") {
      p.reduction_mean = to_bool(value);
    } else if (key == "batch_size") {
      p.batch_size = to_int(value);
    } else if (key == "pair_data") {
      p.pair_data = to_bool(value);
    } else if (key == "shuffle") {
      p.dataset.shuffle = to_bool(value);
    } else if (key == "dataset") {
      if (value == "mnist") {
        p.dataset = DatasetSpec::mnist();
      } else if (value == "cifar10") {
        p.dataset = DatasetSpec::cifar10();
      } else if (value == "imagenet") {
        p.dataset = DatasetSpec::imagenet();
      } else if (value == "imagenet227") {
        p.dataset = DatasetSpec::imagenet_crop227();
      } else {
        // Custom dataset: defaults, refined by the dataset_* keys below.
        p.dataset = DatasetSpec{};
        p.dataset.name = value;
      }
    } else if (key == "dataset_channels") {
      p.dataset.channels = to_int(value);
    } else if (key == "dataset_height") {
      p.dataset.height = to_int(value);
    } else if (key == "dataset_width") {
      p.dataset.width = to_int(value);
    } else if (key == "dataset_classes") {
      p.dataset.num_classes = to_int(value);
    } else {
      fail("unknown layer key '" + key + "'");
    }
  }

  // --- token helpers -------------------------------------------------------
  [[noreturn]] void fail(const std::string& what) const {
    throw glp::InvalidArgument("net parse error at line " +
                               std::to_string(last_line_) + ": " + what);
  }

  void advance() {
    // Errors are reported at the line of the last *consumed* token, which
    // is the construct being processed (the lexer has usually moved on).
    if (cur_.line > 0) last_line_ = cur_.line;
    cur_ = lexer_.next();
  }

  void expect(Token::Kind kind) {
    if (cur_.kind != kind) fail("unexpected token '" + cur_.text + "'");
    advance();
  }

  std::string expect_ident() {
    if (cur_.kind != Token::Kind::kIdent) {
      fail("expected identifier, got '" + cur_.text + "'");
    }
    std::string s = cur_.text;
    advance();
    return s;
  }

  std::string expect_value() {
    if (cur_.kind != Token::Kind::kString && cur_.kind != Token::Kind::kNumber &&
        cur_.kind != Token::Kind::kIdent) {
      fail("expected a value, got '" + cur_.text + "'");
    }
    std::string s = cur_.text;
    advance();
    return s;
  }

  int to_int(const std::string& s) {
    try {
      return std::stoi(s);
    } catch (const std::exception&) {
      fail("expected integer, got '" + s + "'");
    }
  }
  float to_float(const std::string& s) {
    try {
      return std::stof(s);
    } catch (const std::exception&) {
      fail("expected number, got '" + s + "'");
    }
  }
  bool to_bool(const std::string& s) {
    if (s == "true" || s == "1") return true;
    if (s == "false" || s == "0") return false;
    fail("expected boolean, got '" + s + "'");
  }

  Lexer lexer_;
  Token cur_;
  int last_line_ = 1;
};

}  // namespace

NetSpec parse_net_text(const std::string& text) { return Parser(text).parse(); }

NetSpec parse_net_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw glp::InvalidArgument("cannot open net file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_net_text(ss.str());
}

namespace {
void write_filler(std::ostringstream& os, const char* key, const FillerSpec& f) {
  os << "  " << key << " { type: \"";
  switch (f.kind) {
    case FillerSpec::Kind::kConstant:
      os << "constant\" value: " << f.value;
      break;
    case FillerSpec::Kind::kUniform:
      os << "uniform\" min: " << f.min << " max: " << f.max;
      break;
    case FillerSpec::Kind::kGaussian:
      os << "gaussian\" std: " << f.std << " mean: " << f.mean;
      break;
    case FillerSpec::Kind::kXavier:
      os << "xavier\"";
      break;
  }
  os << " }\n";
}
}  // namespace

std::string net_to_text(const NetSpec& spec) {
  std::ostringstream os;
  os << "name: \"" << spec.name << "\"\n";
  const LayerParams defaults;
  for (const LayerSpec& l : spec.layers) {
    os << "layer {\n";
    os << "  name: \"" << l.name << "\"\n";
    os << "  type: \"" << l.type << "\"\n";
    for (const std::string& b : l.bottoms) os << "  bottom: \"" << b << "\"\n";
    for (const std::string& t : l.tops) os << "  top: \"" << t << "\"\n";
    for (const std::string& p : l.param_names) {
      os << "  param_name: \"" << p << "\"\n";
    }
    const LayerParams& p = l.params;
    if (p.num_output != defaults.num_output) os << "  num_output: " << p.num_output << "\n";
    if (p.kernel_size != defaults.kernel_size) os << "  kernel_size: " << p.kernel_size << "\n";
    if (p.stride != defaults.stride) os << "  stride: " << p.stride << "\n";
    if (p.pad != defaults.pad) os << "  pad: " << p.pad << "\n";
    if (l.type == "Pooling") {
      os << "  pool: " << (p.pool == PoolMethod::kMax ? "MAX" : "AVE") << "\n";
    }
    if (l.type == "Data") {
      os << "  dataset: \"" << p.dataset.name << "\"\n";
      os << "  dataset_channels: " << p.dataset.channels << "\n";
      os << "  dataset_height: " << p.dataset.height << "\n";
      os << "  dataset_width: " << p.dataset.width << "\n";
      os << "  dataset_classes: " << p.dataset.num_classes << "\n";
      os << "  batch_size: " << p.batch_size << "\n";
      if (p.pair_data) os << "  pair_data: true\n";
      if (p.dataset.shuffle) os << "  shuffle: true\n";
    }
    if (l.type == "Convolution" || l.type == "Deconvolution" ||
        l.type == "InnerProduct") {
      write_filler(os, "weight_filler", p.weight_filler);
      write_filler(os, "bias_filler", p.bias_filler);
      if (!p.bias_term) os << "  bias_term: false\n";
    }
    if (l.type == "LRN") {
      os << "  local_size: " << p.local_size << "\n  alpha: " << p.alpha
         << "\n  beta: " << p.beta << "\n  k: " << p.k << "\n";
    }
    if (l.type == "ReLU" && p.negative_slope != defaults.negative_slope) {
      os << "  negative_slope: " << p.negative_slope << "\n";
    }
    if (l.type == "ContrastiveLoss") os << "  margin: " << p.margin << "\n";
    if (p.loss_weight != defaults.loss_weight) {
      os << "  loss_weight: " << p.loss_weight << "\n";
    }
    if (p.dropout_ratio != defaults.dropout_ratio && l.type == "Dropout") {
      os << "  dropout_ratio: " << p.dropout_ratio << "\n";
    }
    if (p.group != defaults.group) os << "  group: " << p.group << "\n";
    if (l.type == "Eltwise") {
      const char* op = p.eltwise == EltwiseOp::kSum
                           ? "SUM"
                           : (p.eltwise == EltwiseOp::kProd ? "PROD" : "MAX");
      os << "  operation: " << op << "\n";
      for (float c : p.eltwise_coeffs) os << "  coeff: " << c << "\n";
    }
    for (int sp : p.slice_points) os << "  slice_point: " << sp << "\n";
    if (l.type == "Power") {
      os << "  power: " << p.power << "\n  power_scale: " << p.power_scale
         << "\n  power_shift: " << p.power_shift << "\n";
    }
    if (l.type == "BatchNorm") {
      os << "  eps: " << p.bn_eps << "\n";
      if (p.use_global_stats) os << "  use_global_stats: true\n";
    }
    if (l.type == "Scale" && p.scale_bias_term) os << "  scale_bias_term: true\n";
    if (l.type == "Reduction" && p.reduction_mean) os << "  reduction_mean: true\n";
    os << "}\n";
  }
  return os.str();
}

}  // namespace mc
