#pragma once
// Parser for a prototxt-like network description, demonstrating the
// network-agnostic claim: any net expressible in this format runs under
// GLP4NN unchanged. Format example:
//
//   name: "my_net"
//   layer {
//     name: "conv1"  type: "Convolution"
//     bottom: "data" top: "conv1"
//     num_output: 32 kernel_size: 5 pad: 2 stride: 1
//     weight_filler { type: "gaussian" std: 0.01 }
//   }
//
// Supported layer fields mirror mc::LayerParams; dataset presets are
// chosen with `dataset: "mnist" | "cifar10" | "imagenet227" | "random"`.

#include <string>

#include "minicaffe/net.hpp"

namespace mc {

/// Parse a network description. Throws glp::InvalidArgument with a line
/// number on malformed input.
NetSpec parse_net_text(const std::string& text);

/// Convenience: read a file and parse it.
NetSpec parse_net_file(const std::string& path);

/// Serialise a NetSpec back to the text format (round-trip tested).
std::string net_to_text(const NetSpec& spec);

}  // namespace mc
