#include "minicaffe/serialization.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

#include "common/check.hpp"

namespace mc {

namespace {

constexpr char kMagic[4] = {'G', 'L', 'P', 'W'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  GLP_REQUIRE(is.good(), "truncated snapshot");
  return v;
}

/// Stable key per parameter blob: first owning layer's name + index.
/// Shared parameters therefore serialise once under the first owner.
std::map<const Blob*, std::string> param_keys(const Net& net) {
  std::map<const Blob*, std::string> keys;
  for (const auto& layer : net.layers()) {
    for (std::size_t i = 0; i < layer->param_blobs().size(); ++i) {
      const Blob* blob = layer->param_blobs()[i].get();
      if (keys.count(blob) == 0) {
        keys[blob] = layer->name() + "#" + std::to_string(i);
      }
    }
  }
  return keys;
}

}  // namespace

void save_weights(const Net& net, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  GLP_REQUIRE(os.good(), "cannot open '" << path << "' for writing");

  const auto keys = param_keys(net);
  os.write(kMagic, sizeof(kMagic));
  write_u32(os, kVersion);
  write_u32(os, static_cast<std::uint32_t>(keys.size()));

  // Deterministic order: iterate layers, not the pointer-keyed map.
  std::map<std::string, const Blob*> ordered;
  for (const auto& [blob, key] : keys) ordered[key] = blob;
  for (const auto& [key, blob] : ordered) {
    write_u32(os, static_cast<std::uint32_t>(key.size()));
    os.write(key.data(), static_cast<std::streamsize>(key.size()));
    write_u32(os, static_cast<std::uint32_t>(blob->shape().size()));
    for (int d : blob->shape()) {
      os.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    os.write(reinterpret_cast<const char*>(blob->data()),
             static_cast<std::streamsize>(blob->count() * sizeof(float)));
  }
  GLP_REQUIRE(os.good(), "write to '" << path << "' failed");
}

RestoreReport load_weights(Net& net, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GLP_REQUIRE(is.good(), "cannot open snapshot '" << path << "'");

  char magic[4];
  is.read(magic, sizeof(magic));
  GLP_REQUIRE(is.good() && std::memcmp(magic, kMagic, 4) == 0,
              "'" << path << "' is not a GLP4NN weight snapshot");
  const std::uint32_t version = read_u32(is);
  GLP_REQUIRE(version == kVersion, "unsupported snapshot version " << version);
  const std::uint32_t entries = read_u32(is);

  // Index the net's parameters by key.
  std::map<std::string, Blob*> by_key;
  for (const auto& layer : net.layers()) {
    for (std::size_t i = 0; i < layer->param_blobs().size(); ++i) {
      Blob* blob = layer->param_blobs()[i].get();
      const std::string key = layer->name() + "#" + std::to_string(i);
      by_key.emplace(key, blob);  // first owner wins for shared params
    }
  }

  RestoreReport report;
  std::map<std::string, bool> seen;
  for (std::uint32_t e = 0; e < entries; ++e) {
    const std::uint32_t key_len = read_u32(is);
    std::string key(key_len, '\0');
    is.read(key.data(), key_len);
    const std::uint32_t dims = read_u32(is);
    std::vector<int> shape(dims);
    std::size_t count = 1;
    for (std::uint32_t d = 0; d < dims; ++d) {
      is.read(reinterpret_cast<char*>(&shape[d]), sizeof(int));
      count *= static_cast<std::size_t>(shape[d]);
    }
    GLP_REQUIRE(is.good(), "truncated snapshot entry '" << key << "'");

    auto it = by_key.find(key);
    if (it != by_key.end() && it->second->shape() == shape) {
      is.read(reinterpret_cast<char*>(it->second->mutable_data()),
              static_cast<std::streamsize>(count * sizeof(float)));
      seen[key] = true;
      ++report.restored;
    } else {
      is.seekg(static_cast<std::streamoff>(count * sizeof(float)), std::ios::cur);
      ++report.skipped;
    }
    GLP_REQUIRE(is.good(), "truncated snapshot data for '" << key << "'");
  }
  for (const auto& [key, blob] : by_key) {
    // Shared params map several keys to one blob; only the first owner's
    // key is serialised, so count a parameter missing only if no alias of
    // the blob was restored.
    bool restored = false;
    for (const auto& [k2, b2] : by_key) {
      if (b2 == blob && seen.count(k2)) restored = true;
    }
    if (!restored) ++report.missing;
  }
  return report;
}

}  // namespace mc
