#pragma once
// Binary weight snapshots. Parameters are keyed by "<layer name>#<index>"
// so snapshots survive unrelated edits to the network definition: loading
// matches by key and shape and reports what it restored.
//
// Format (little-endian host order):
//   magic "GLPW" | u32 version | u32 entry count |
//   per entry: u32 key length | key bytes | u32 dim count | i32 dims... |
//              f32 data...

#include <string>
#include <vector>

#include "minicaffe/net.hpp"

namespace mc {

/// Write every learnable parameter (and BatchNorm statistics) to `path`.
void save_weights(const Net& net, const std::string& path);

struct RestoreReport {
  int restored = 0;  ///< parameters loaded
  int skipped = 0;   ///< snapshot entries with no matching key/shape
  int missing = 0;   ///< net parameters absent from the snapshot
};

/// Load a snapshot; the device must be synchronised (host-side writes).
RestoreReport load_weights(Net& net, const std::string& path);

}  // namespace mc
