#include "minicaffe/solver.hpp"

#include <cmath>

#include <fstream>

#include "common/check.hpp"
#include "common/log.hpp"
#include "kernels/blas.hpp"
#include "kernels/cpu_math.hpp"
#include "minicaffe/serialization.hpp"

namespace mc {

SgdSolver::SgdSolver(Net& net, SolverParams params)
    : net_(&net), params_(params) {
  scuda::Context& ctx = *net_->exec().ctx;
  history_.reserve(net_->learnable_params().size());
  for (const auto& p : net_->learnable_params()) {
    history_.emplace_back(ctx, p->count());
    if (net_->exec().numeric()) {
      kern::cpu::fill(p->count(), 0.0f, history_.back().data());
    }
  }
}

float SgdSolver::current_lr() const {
  switch (params_.policy) {
    case LrPolicy::kFixed:
      return params_.base_lr;
    case LrPolicy::kStep:
      return params_.base_lr *
             std::pow(params_.gamma, static_cast<float>(iter_ / params_.stepsize));
    case LrPolicy::kInv:
      return params_.base_lr *
             std::pow(1.0f + params_.gamma * static_cast<float>(iter_),
                      -params_.power);
  }
  return params_.base_lr;
}

void SgdSolver::apply_update(float lr) {
  ExecContext& ec = net_->exec();
  const kern::Launcher L = [&] {
    kern::Launcher l = ec.launcher();
    l.name_prefix = "solver";
    return l;
  }();
  const auto& params = net_->learnable_params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    Blob& p = *params[i];
    if (params_.weight_decay > 0.0f) {
      // L2 regularisation: grad += λ · param
      kern::saxpy(L, p.count(), params_.weight_decay, p.data(), p.mutable_diff());
    }
    switch (params_.type) {
      case SolverType::kSgd:
        kern::sgd_update(L, p.count(), lr, params_.momentum, p.diff(),
                         history_[i].data(), p.mutable_data());
        break;
      case SolverType::kNesterov:
        kern::nesterov_update(L, p.count(), lr, params_.momentum, p.diff(),
                              history_[i].data(), p.mutable_data());
        break;
      case SolverType::kAdaGrad:
        kern::adagrad_update(L, p.count(), lr, params_.adagrad_eps, p.diff(),
                             history_[i].data(), p.mutable_data());
        break;
    }
  }
}

void SgdSolver::snapshot(const std::string& path) const {
  net_->exec().ctx->device().synchronize();
  save_weights(*net_, path);
  std::ofstream os(path + ".state", std::ios::binary | std::ios::trunc);
  GLP_REQUIRE(os.good(), "cannot open '" << path << ".state' for writing");
  os.write(reinterpret_cast<const char*>(&iter_), sizeof(iter_));
  const std::uint32_t blobs = static_cast<std::uint32_t>(history_.size());
  os.write(reinterpret_cast<const char*>(&blobs), sizeof(blobs));
  for (const auto& h : history_) {
    const std::uint64_t count = h.count();
    os.write(reinterpret_cast<const char*>(&count), sizeof(count));
    os.write(reinterpret_cast<const char*>(h.data()),
             static_cast<std::streamsize>(h.bytes()));
  }
  GLP_REQUIRE(os.good(), "write to '" << path << ".state' failed");
}

void SgdSolver::restore(const std::string& path) {
  net_->exec().ctx->device().synchronize();
  const RestoreReport report = load_weights(*net_, path);
  GLP_REQUIRE(report.missing == 0 && report.skipped == 0,
              "snapshot does not match the net: " << report.skipped
                                                  << " skipped, "
                                                  << report.missing
                                                  << " missing");
  std::ifstream is(path + ".state", std::ios::binary);
  GLP_REQUIRE(is.good(), "cannot open '" << path << ".state'");
  is.read(reinterpret_cast<char*>(&iter_), sizeof(iter_));
  std::uint32_t blobs = 0;
  is.read(reinterpret_cast<char*>(&blobs), sizeof(blobs));
  GLP_REQUIRE(is.good() && blobs == history_.size(),
              "solver state does not match the net");
  for (auto& h : history_) {
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char*>(&count), sizeof(count));
    GLP_REQUIRE(is.good() && count == h.count(), "history size mismatch");
    is.read(reinterpret_cast<char*>(h.data()),
            static_cast<std::streamsize>(h.bytes()));
  }
  GLP_REQUIRE(is.good(), "truncated solver state");
}

void SgdSolver::step(int iterations,
                     const std::function<void(int, float)>& on_iteration) {
  for (int it = 0; it < iterations; ++it) {
    const float lr = current_lr();
    net_->zero_param_diffs();
    net_->forward();
    net_->backward();
    apply_update(lr);
    // Join the device: completes this iteration's simulated work and, in
    // numeric mode, makes the loss value readable.
    last_loss_ = net_->total_loss();
    ++iter_;
    if (params_.display > 0 && iter_ % params_.display == 0) {
      GLP_INFO << "iter " << iter_ << " lr " << lr << " loss " << last_loss_;
    }
    if (on_iteration) on_iteration(iter_, last_loss_);
  }
}

}  // namespace mc
