#pragma once
// SGD solver with momentum, weight decay and Caffe's learning-rate
// policies. One step() iteration = zero diffs → forward → backward →
// regularise → update → synchronise → read loss. The end-of-iteration
// synchronisation is where simulated GPU time becomes host-visible, so
// per-iteration wall times (the paper's Fig. 7 metric) are measured
// around step().

#include <functional>
#include <string>
#include <vector>

#include "minicaffe/net.hpp"

namespace mc {

enum class LrPolicy { kFixed, kStep, kInv };
enum class SolverType { kSgd, kNesterov, kAdaGrad };

struct SolverParams {
  SolverType type = SolverType::kSgd;
  float base_lr = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  LrPolicy policy = LrPolicy::kFixed;
  float gamma = 0.1f;    ///< step/inv decay factor
  float power = 0.75f;   ///< inv policy exponent
  int stepsize = 1000;   ///< step policy period
  int display = 0;       ///< log loss every N iterations (0 = never)
  float adagrad_eps = 1e-8f;
};

class SgdSolver {
 public:
  SgdSolver(Net& net, SolverParams params);

  /// Run `iterations` training steps. `on_iteration(iter, loss)` fires
  /// after each step when provided (used by the convergence benches).
  void step(int iterations,
            const std::function<void(int, float)>& on_iteration = {});

  int iter() const { return iter_; }
  float last_loss() const { return last_loss_; }
  /// Learning rate the next step will use.
  float current_lr() const;

  /// Persist iteration counter, momentum history and net weights.
  void snapshot(const std::string& path) const;
  /// Restore a snapshot written by snapshot(); the net definition must
  /// match (same parameters and shapes).
  void restore(const std::string& path);

  /// Fleet data-parallel entry points: the FleetTrainer replays step()'s
  /// zero→forward→backward phases itself (inserting the bucketed
  /// all-reduce between backward and update), then applies the update
  /// and advances the iteration counter directly.
  void apply_update(float lr);
  void note_step(float loss) {
    last_loss_ = loss;
    ++iter_;
  }

 private:
  Net* net_;
  SolverParams params_;
  int iter_ = 0;
  float last_loss_ = 0.0f;
  std::vector<DeviceBuffer<float>> history_;  // momentum, one per param
};

}  // namespace mc
