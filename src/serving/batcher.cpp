#include "serving/batcher.hpp"

#include <limits>

#include "common/check.hpp"

namespace serving {

DynamicBatcher::DynamicBatcher(BatchPolicy policy, std::uint64_t first_id,
                               std::uint64_t id_stride)
    : policy_(policy), next_id_(first_id), id_stride_(id_stride) {
  GLP_REQUIRE(policy_.max_batch >= 1, "max_batch must be positive");
  GLP_REQUIRE(policy_.max_delay_us >= 0.0, "max_delay_us must be non-negative");
  GLP_REQUIRE(id_stride_ >= 1, "batch id stride must be positive");
}

std::optional<Batch> DynamicBatcher::try_form(
    RequestQueue& queue, gpusim::SimTime now,
    const std::function<bool(int)>& slot_free) {
  const std::size_t width =
      policy_.enabled ? static_cast<std::size_t>(policy_.max_batch) : 1;
  const bool continuous =
      !policy_.enabled || policy_.mode == BatchMode::kContinuous;
  // Tenants in arrival order of their oldest request: the first *ready*
  // tenant is the one whose batch has waited longest.
  for (const int tenant : queue.tenants_by_oldest()) {
    if (slot_free && !slot_free(tenant)) continue;
    if (!continuous) {
      const InferenceRequest* head = queue.oldest(tenant);
      GLP_CHECK(head != nullptr);
      const bool full = queue.count(tenant) >= width;
      const bool timed_out = now >= head->arrival_ns + policy_.max_delay_ns();
      if (!full && !timed_out) continue;
    }
    Batch batch;
    batch.id = next_id_;
    next_id_ += id_stride_;
    ++formed_;
    batch.tenant = tenant;
    batch.requests = queue.pop(tenant, width);
    GLP_CHECK(!batch.requests.empty());
    return batch;
  }
  return std::nullopt;
}

gpusim::SimTime DynamicBatcher::next_cut_ns(RequestQueue& queue) const {
  gpusim::SimTime t = std::numeric_limits<gpusim::SimTime>::infinity();
  const bool continuous =
      !policy_.enabled || policy_.mode == BatchMode::kContinuous;
  for (const int tenant : queue.tenants_by_oldest()) {
    const InferenceRequest* head = queue.oldest(tenant);
    GLP_CHECK(head != nullptr);
    const gpusim::SimTime cut =
        continuous ? head->arrival_ns
                   : head->arrival_ns + policy_.max_delay_ns();
    if (cut < t) t = cut;
  }
  return t;
}

}  // namespace serving
