#include "serving/batcher.hpp"

#include <limits>
#include <set>

#include "common/check.hpp"

namespace serving {

DynamicBatcher::DynamicBatcher(BatchPolicy policy) : policy_(policy) {
  GLP_REQUIRE(policy_.max_batch >= 1, "max_batch must be positive");
  GLP_REQUIRE(policy_.max_delay_us >= 0.0, "max_delay_us must be non-negative");
}

std::optional<Batch> DynamicBatcher::try_form(
    RequestQueue& queue, gpusim::SimTime now,
    const std::function<bool(int)>& slot_free) {
  const std::size_t width =
      policy_.enabled ? static_cast<std::size_t>(policy_.max_batch) : 1;
  // Walk the queue in arrival order; the first entry of each tenant is
  // that tenant's oldest request, so the first *ready* tenant we meet is
  // the one whose batch has waited longest.
  std::set<int> seen;
  for (const InferenceRequest& r : queue.pending()) {
    if (!seen.insert(r.tenant).second) continue;  // not the tenant's oldest
    if (slot_free && !slot_free(r.tenant)) continue;
    const bool full = queue.count(r.tenant) >= width;
    const bool timed_out =
        !policy_.enabled || now >= r.arrival_ns + policy_.max_delay_ns();
    if (!full && !timed_out) continue;
    Batch batch;
    batch.id = next_id_++;
    batch.tenant = r.tenant;
    batch.requests = queue.pop(r.tenant, width);
    return batch;
  }
  return std::nullopt;
}

gpusim::SimTime DynamicBatcher::next_cut_ns(const RequestQueue& queue) const {
  gpusim::SimTime t = std::numeric_limits<gpusim::SimTime>::infinity();
  std::set<int> seen;
  for (const InferenceRequest& r : queue.pending()) {
    if (!seen.insert(r.tenant).second) continue;
    const gpusim::SimTime cut =
        policy_.enabled ? r.arrival_ns + policy_.max_delay_ns() : r.arrival_ns;
    if (cut < t) t = cut;
  }
  return t;
}

}  // namespace serving
