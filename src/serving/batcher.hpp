#pragma once
// Dynamic batcher: carves single-tenant batches out of the shared request
// queue under a max_batch / max_delay_us policy.
//
// Cut rules for a tenant whose execution slot is free:
//   * the tenant has max_batch queued requests (full batch), or
//   * its oldest queued request has waited max_delay_us (timeout), or
//   * batching is disabled (every request is its own batch, immediately).
//
// Requests are taken strictly in arrival order per tenant, and tenants
// are considered in the arrival order of their oldest queued request, so
// batching never reorders a tenant's stream of requests.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "serving/request_queue.hpp"

namespace serving {

struct BatchPolicy {
  bool enabled = true;  ///< false → batch size 1, no artificial delay
  int max_batch = 8;
  double max_delay_us = 2000.0;  ///< max wait for a batch to fill

  double max_delay_ns() const { return max_delay_us * gpusim::kUs; }
};

struct Batch {
  std::uint64_t id = 0;
  int tenant = 0;
  std::vector<InferenceRequest> requests;

  int size() const { return static_cast<int>(requests.size()); }
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatchPolicy policy);

  const BatchPolicy& policy() const { return policy_; }

  /// Cut the next ready batch at sim time `now`, or nullopt when nothing
  /// is ready. `slot_free(tenant)` reports whether the tenant's execution
  /// slot can take a batch right now; tenants with busy slots are skipped
  /// (their requests keep queueing). Call repeatedly until nullopt.
  std::optional<Batch> try_form(RequestQueue& queue, gpusim::SimTime now,
                                const std::function<bool(int)>& slot_free);

  /// Earliest future time at which the delay timeout could cut a batch
  /// (+infinity when the queue is empty). Ignores slot availability — the
  /// caller re-evaluates when slots free up.
  gpusim::SimTime next_cut_ns(const RequestQueue& queue) const;

  std::uint64_t batches_formed() const { return next_id_; }

 private:
  BatchPolicy policy_;
  std::uint64_t next_id_ = 0;
};

}  // namespace serving
