#pragma once
// Dynamic batcher: carves single-tenant batches out of a request queue.
//
// Two batching modes:
//
//  * kWindowed (the classic fixed-window policy) — a tenant whose
//    execution slot is free cuts a batch when
//      - it has max_batch queued requests (full batch), or
//      - its oldest queued request has waited max_delay_us (timeout), or
//      - batching is disabled (every request is its own batch, immediately).
//
//  * kContinuous — a batch launches the moment capacity frees: a tenant
//    whose slot is free cuts min(queued, max_batch) immediately, with no
//    artificial delay window. The in-flight time of the tenant's previous
//    batch is the natural accumulation window — late arrivals join the
//    next cut the instant the slot frees ("join the in-flight slack")
//    instead of waiting out a timer. This removes the windowed policy's
//    queueing cliff: under light load requests never idle in the queue,
//    and under heavy load batches are as large as the backlog allows.
//
// Requests are taken strictly in arrival order per tenant, and tenants
// are considered in the arrival order of their oldest queued request, so
// batching never reorders a tenant's stream of requests.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "serving/request_queue.hpp"

namespace serving {

enum class BatchMode {
  kWindowed,    ///< fixed max_batch / max_delay_us window
  kContinuous,  ///< cut as soon as the slot frees; no delay window
};

inline const char* batch_mode_name(BatchMode m) {
  switch (m) {
    case BatchMode::kWindowed: return "windowed";
    case BatchMode::kContinuous: return "continuous";
  }
  return "?";
}

struct BatchPolicy {
  bool enabled = true;  ///< false → batch size 1, no artificial delay
  BatchMode mode = BatchMode::kWindowed;
  int max_batch = 8;
  double max_delay_us = 2000.0;  ///< max wait for a batch to fill (windowed)

  double max_delay_ns() const { return max_delay_us * gpusim::kUs; }
};

struct Batch {
  std::uint64_t id = 0;
  int tenant = 0;
  std::vector<InferenceRequest> requests;

  int size() const { return static_cast<int>(requests.size()); }
};

class DynamicBatcher {
 public:
  /// `first_id`/`id_stride` let sharded servers run one batcher per
  /// tenant with globally unique batch ids (shard s uses ids
  /// s, s+stride, s+2*stride, ...). The defaults keep the single-batcher
  /// behaviour (0, 1, 2, ...).
  explicit DynamicBatcher(BatchPolicy policy, std::uint64_t first_id = 0,
                          std::uint64_t id_stride = 1);

  const BatchPolicy& policy() const { return policy_; }

  /// Cut the next ready batch at sim time `now`, or nullopt when nothing
  /// is ready. `slot_free(tenant)` reports whether the tenant's execution
  /// slot can take a batch right now; tenants with busy slots are skipped
  /// (their requests keep queueing). Call repeatedly until nullopt.
  std::optional<Batch> try_form(RequestQueue& queue, gpusim::SimTime now,
                                const std::function<bool(int)>& slot_free);

  /// Earliest future time at which the delay timeout could cut a batch
  /// (+infinity when the queue is empty). Ignores slot availability — the
  /// caller re-evaluates when slots free up. In continuous mode there is
  /// no timer: every queued request is ready now, so this returns the
  /// oldest arrival (always in the past once queued).
  gpusim::SimTime next_cut_ns(RequestQueue& queue) const;

  std::uint64_t batches_formed() const { return formed_; }

 private:
  BatchPolicy policy_;
  std::uint64_t next_id_ = 0;
  std::uint64_t id_stride_ = 1;
  std::uint64_t formed_ = 0;
};

}  // namespace serving
