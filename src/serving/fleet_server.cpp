#include "serving/fleet_server.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace serving {

FleetServer::FleetServer(scuda::Fleet& fleet, std::vector<TenantModel> models,
                         FleetServerOptions opts)
    : models_(std::move(models)), opts_(std::move(opts)) {
  const int n = fleet.size();
  const int t_count = static_cast<int>(models_.size());
  GLP_REQUIRE(t_count >= 1, "fleet server needs at least one tenant model");
  opts_.replicas = std::max(1, std::min(opts_.replicas, n));

  // Round-robin replica groups, then one InferenceServer per device over
  // the tenants that landed on it.
  groups_.resize(static_cast<std::size_t>(t_count));
  local_id_.assign(static_cast<std::size_t>(n),
                   std::vector<int>(static_cast<std::size_t>(t_count), -1));
  global_id_.resize(static_cast<std::size_t>(n));
  std::vector<std::vector<TenantModel>> placed(static_cast<std::size_t>(n));
  for (int t = 0; t < t_count; ++t) {
    for (int k = 0; k < opts_.replicas; ++k) {
      const int d = (t + k) % n;
      groups_[static_cast<std::size_t>(t)].push_back(d);
      local_id_[static_cast<std::size_t>(d)][static_cast<std::size_t>(t)] =
          static_cast<int>(placed[static_cast<std::size_t>(d)].size());
      global_id_[static_cast<std::size_t>(d)].push_back(t);
      placed[static_cast<std::size_t>(d)].push_back(
          models_[static_cast<std::size_t>(t)]);
    }
  }
  servers_.reserve(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    GLP_REQUIRE(!placed[static_cast<std::size_t>(d)].empty(),
                "device " << d << " hosts no tenants; shrink the fleet or "
                          << "raise the replica count");
    servers_.push_back(std::make_unique<InferenceServer>(
        fleet.device(d), std::move(placed[static_cast<std::size_t>(d)]),
        opts_.server));
  }
  healthy_.assign(static_cast<std::size_t>(n), true);
}

void FleetServer::set_healthy(int device, bool healthy) {
  healthy_.at(static_cast<std::size_t>(device)) = healthy;
}

std::vector<RequestRecord> FleetServer::replay(
    std::vector<InferenceRequest> trace) {
  const int n = devices();
  // Warm every device server up front: routing reads the seeded service
  // estimates, and the replays below will not warm up a second time.
  if (opts_.server.warmup) {
    for (auto& s : servers_) s->prewarm();
  }

  std::stable_sort(trace.begin(), trace.end(),
                   [](const InferenceRequest& a, const InferenceRequest& b) {
                     return a.arrival_ns < b.arrival_ns;
                   });

  // Least-busy routing on virtual finish times: device d is busy until
  // busy_until[d]; a request extends the chosen device by its tenant's
  // per-request estimate.
  std::vector<gpusim::SimTime> busy_until(static_cast<std::size_t>(n), 0.0);
  std::vector<std::vector<InferenceRequest>> slices(
      static_cast<std::size_t>(n));
  routes_.clear();
  routes_.reserve(trace.size());
  for (InferenceRequest& r : trace) {
    GLP_REQUIRE(r.tenant >= 0 && r.tenant < tenants(),
                "request " << r.id << " names unknown tenant " << r.tenant);
    const auto& group = groups_[static_cast<std::size_t>(r.tenant)];
    int best = -1;
    gpusim::SimTime best_finish = 0.0;
    for (const int d : group) {
      if (!healthy_[static_cast<std::size_t>(d)]) continue;
      const int local =
          local_id_[static_cast<std::size_t>(d)][static_cast<std::size_t>(r.tenant)];
      const double est =
          servers_[static_cast<std::size_t>(d)]->service_estimate_ns(local);
      const gpusim::SimTime finish =
          std::max(busy_until[static_cast<std::size_t>(d)], r.arrival_ns) + est;
      if (best < 0 || finish < best_finish) {
        best = d;
        best_finish = finish;
      }
    }
    GLP_REQUIRE(best >= 0, "tenant " << r.tenant
                                     << " has no healthy replica to route to");
    busy_until[static_cast<std::size_t>(best)] = best_finish;
    routes_.emplace_back(r.id, best);
    InferenceRequest local_r = std::move(r);
    local_r.tenant =
        local_id_[static_cast<std::size_t>(best)][static_cast<std::size_t>(local_r.tenant)];
    slices[static_cast<std::size_t>(best)].push_back(std::move(local_r));
  }

  // Independent per-device replays, tenants mapped back to global ids.
  std::vector<RequestRecord> merged;
  merged.reserve(trace.size());
  for (int d = 0; d < n; ++d) {
    if (slices[static_cast<std::size_t>(d)].empty()) continue;
    std::vector<RequestRecord> recs =
        servers_[static_cast<std::size_t>(d)]->replay(
            std::move(slices[static_cast<std::size_t>(d)]));
    for (RequestRecord& rec : recs) {
      rec.tenant = global_id_[static_cast<std::size_t>(d)]
                             [static_cast<std::size_t>(rec.tenant)];
      merged.push_back(std::move(rec));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              if (a.completion_ns != b.completion_ns) {
                return a.completion_ns < b.completion_ns;
              }
              return a.id < b.id;
            });
  return merged;
}

}  // namespace serving
