#pragma once
// Sharded serving across a simulated fleet: each tenant model is placed
// on a *replica group* of devices, every device runs its own
// InferenceServer over the tenants placed on it, and a deterministic
// front-end router splits an offered trace across the replicas.
//
// Placement is round-robin: tenant t's replica group is devices
// (t + k) % N for k < replicas, so groups interleave and heterogeneous
// fleets spread load. Routing walks the trace in arrival order and
// sends each request to the *least busy* healthy replica — busyness
// is a per-device virtual finish time advanced by the tenant's warmed
// per-request service estimate — with ties broken by the lowest device
// index. The decision depends only on the trace, the placement, the
// health flags and the prewarmed estimates, so identical inputs give
// identical routes (and bit-identical merged outputs).
//
// Devices replay their routed slices independently (device clocks are
// independent; serving needs no cross-device transfers) and the merged
// records are summarized with the ordinary ServingStats machinery.

#include <memory>
#include <vector>

#include "serving/server.hpp"
#include "simcuda/fleet.hpp"

namespace serving {

struct FleetServerOptions {
  ServerOptions server;  ///< applied to every per-device server
  int replicas = 1;      ///< replica-group size per tenant (clamped to fleet)
};

class FleetServer {
 public:
  FleetServer(scuda::Fleet& fleet, std::vector<TenantModel> models,
              FleetServerOptions opts = {});

  int devices() const { return static_cast<int>(servers_.size()); }
  int tenants() const { return static_cast<int>(models_.size()); }
  InferenceServer& server(int device) {
    return *servers_.at(static_cast<std::size_t>(device));
  }

  /// Devices hosting tenant t, in routing-preference order.
  const std::vector<int>& replica_group(int tenant) const {
    return groups_.at(static_cast<std::size_t>(tenant));
  }

  /// Health flag; unhealthy devices receive no new traffic. Every tenant
  /// must keep at least one healthy replica or replay() throws.
  void set_healthy(int device, bool healthy);
  bool healthy(int device) const {
    return healthy_.at(static_cast<std::size_t>(device));
  }

  /// Route `trace` across the fleet and replay every device's slice.
  /// Returns the merged records (tenant ids are global), ordered by
  /// completion time then id.
  std::vector<RequestRecord> replay(std::vector<InferenceRequest> trace);

  /// Routing table of the last replay: device index per served request
  /// id (useful to assert placement/health behaviour in tests).
  const std::vector<std::pair<std::uint64_t, int>>& last_routes() const {
    return routes_;
  }

 private:
  std::vector<TenantModel> models_;
  FleetServerOptions opts_;
  std::vector<std::unique_ptr<InferenceServer>> servers_;
  std::vector<std::vector<int>> groups_;       ///< tenant -> devices
  std::vector<std::vector<int>> local_id_;     ///< [device][tenant] -> local, -1
  std::vector<std::vector<int>> global_id_;    ///< [device][local] -> tenant
  std::vector<bool> healthy_;
  std::vector<std::pair<std::uint64_t, int>> routes_;
};

}  // namespace serving
