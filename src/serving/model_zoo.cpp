#include "serving/model_zoo.hpp"

#include "common/check.hpp"

namespace serving {
namespace {

mc::LayerSpec input(const char* top, int batch, int c, int h, int w) {
  mc::LayerSpec s;
  s.type = "Input";
  s.name = "input";
  s.tops = {top};
  s.params.batch_size = batch;
  s.params.dataset.channels = c;
  s.params.dataset.height = h;
  s.params.dataset.width = w;
  return s;
}

mc::LayerSpec conv(const char* name, const char* bottom, const char* top,
                   int num_output, int kernel, int pad = 0) {
  mc::LayerSpec s;
  s.type = "Convolution";
  s.name = name;
  s.bottoms = {bottom};
  s.tops = {top};
  s.params.num_output = num_output;
  s.params.kernel_size = kernel;
  s.params.pad = pad;
  return s;
}

mc::LayerSpec relu(const char* name, const char* blob) {
  mc::LayerSpec s;
  s.type = "ReLU";
  s.name = name;
  s.bottoms = {blob};
  s.tops = {blob};  // in place
  return s;
}

mc::LayerSpec pool(const char* name, const char* bottom, const char* top,
                   int kernel, int stride) {
  mc::LayerSpec s;
  s.type = "Pooling";
  s.name = name;
  s.bottoms = {bottom};
  s.tops = {top};
  s.params.kernel_size = kernel;
  s.params.stride = stride;
  return s;
}

mc::LayerSpec ip(const char* name, const char* bottom, const char* top,
                 int num_output) {
  mc::LayerSpec s;
  s.type = "InnerProduct";
  s.name = name;
  s.bottoms = {bottom};
  s.tops = {top};
  s.params.num_output = num_output;
  return s;
}

mc::LayerSpec softmax(const char* bottom, const char* top) {
  mc::LayerSpec s;
  s.type = "Softmax";
  s.name = "prob";
  s.bottoms = {bottom};
  s.tops = {top};
  return s;
}

}  // namespace

// Channel widths are chosen against the simulator's GEMM cost model: a
// 64x64-tiled sgemm runs for ~54ns x k (k = C_in * kh * kw) on a handful
// of thread blocks, so deep-channel convs at small spatial sizes give
// per-sample kernels whose device time (15-60us) dwarfs the ~5us launch
// overhead while leaving most of the device free for concurrent sample
// chains — the regime where stream-pool parallelization pays off.

mc::NetSpec tiny_cnn(int batch_size) {
  mc::NetSpec net;
  net.name = "tiny_cnn";
  net.layers = {
      input("data", batch_size, 1, 16, 16),
      conv("conv1", "data", "c1", 32, 3, 1),   // 32x16x16
      relu("relu1", "c1"),
      pool("pool1", "c1", "p1", 2, 2),         // 32x8x8
      conv("conv2", "p1", "c2", 64, 3, 1),     // 64x8x8, k=288 -> ~16us
      relu("relu2", "c2"),
      ip("fc", "c2", "score", 10),
      softmax("score", "prob"),
  };
  return net;
}

mc::NetSpec small_cnn(int batch_size) {
  mc::NetSpec net;
  net.name = "small_cnn";
  net.layers = {
      input("data", batch_size, 3, 16, 16),
      conv("conv1", "data", "c1", 64, 5, 2),   // 64x16x16, k=75
      relu("relu1", "c1"),
      pool("pool1", "c1", "p1", 2, 2),         // 64x8x8
      conv("conv2", "p1", "c2", 128, 3, 1),    // 128x8x8, k=576 -> ~31us
      relu("relu2", "c2"),
      conv("conv3", "c2", "c3", 128, 3, 1),    // 128x8x8, k=1152 -> ~62us
      relu("relu3", "c3"),
      conv("conv4", "c3", "c4", 128, 3, 1),    // 128x8x8, k=1152 -> ~62us
      relu("relu4", "c4"),
      pool("pool2", "c4", "p2", 2, 2),         // 128x4x4
      ip("fc1", "p2", "f1", 256),
      relu("relu5", "f1"),
      ip("fc2", "f1", "score", 10),
      softmax("score", "prob"),
  };
  return net;
}

mc::NetSpec mlp(int batch_size) {
  mc::NetSpec net;
  net.name = "mlp";
  net.layers = {
      input("data", batch_size, 1, 32, 32),
      ip("fc1", "data", "f1", 512),
      relu("relu1", "f1"),
      ip("fc2", "f1", "f2", 256),
      relu("relu2", "f2"),
      ip("fc3", "f2", "score", 10),
      softmax("score", "prob"),
  };
  return net;
}

mc::NetSpec by_name(const std::string& name, int batch_size) {
  if (name == "tiny_cnn") return tiny_cnn(batch_size);
  if (name == "small_cnn") return small_cnn(batch_size);
  if (name == "mlp") return mlp(batch_size);
  GLP_REQUIRE(false, "unknown zoo model '" << name << "'");
  return {};
}

std::vector<std::string> zoo_names() {
  return {"tiny_cnn", "small_cnn", "mlp"};
}

}  // namespace serving
