#pragma once
// Servable model specs: forward-only nets that start with an Input layer
// (caller-supplied samples, no dataset) and end in a Softmax over class
// scores — no loss or accuracy layers. The batch size in the returned
// spec is a placeholder; InferenceSession rewrites it per replica.

#include <string>
#include <vector>

#include "minicaffe/net.hpp"

namespace serving {

/// 2-conv CNN over 1x16x16 inputs — the light, latency-sensitive tenant.
mc::NetSpec tiny_cnn(int batch_size = 1);

/// 4-conv VGG-style CNN over 3x16x16 inputs — the heavy tenant whose
/// per-sample kernels carry enough device time for streams to overlap.
mc::NetSpec small_cnn(int batch_size = 1);

/// 3-layer MLP over 1x32x32 inputs — sgemv-bound, launch-dominated.
mc::NetSpec mlp(int batch_size = 1);

/// Lookup by name ("tiny_cnn", "small_cnn", "mlp"); throws
/// glp::InvalidArgument for unknown names.
mc::NetSpec by_name(const std::string& name, int batch_size = 1);

std::vector<std::string> zoo_names();

}  // namespace serving
