#pragma once
// Value types of the inference serving subsystem: a client request, its
// terminal outcome, and the per-request record the server returns for
// latency/throughput analysis. All timestamps are simulated nanoseconds
// relative to the start of the replayed trace.

#include <cstdint>
#include <vector>

#include "gpusim/types.hpp"

namespace serving {

struct InferenceRequest {
  std::uint64_t id = 0;
  int tenant = 0;
  gpusim::SimTime arrival_ns = 0.0;
  /// Absolute deadline; requests still queued past it are dropped.
  /// 0 = no deadline.
  gpusim::SimTime deadline_ns = 0.0;
  /// Deadline-aware admission downgraded this request: it is served
  /// best-effort (never expired from the queue) but its original
  /// deadline_ns is kept for SLO-attainment accounting.
  bool downgraded = false;
  /// One input sample in the tenant model's shape. May be empty in
  /// timing-only replays.
  std::vector<float> input;
};

enum class Outcome {
  kServed,    ///< completed a forward pass
  kRejected,  ///< bounced at admission (queue full)
  kExpired,   ///< dropped from the queue at its deadline
  kShed,      ///< dropped at admission by SLO-aware load shedding
};

inline const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kServed: return "served";
    case Outcome::kRejected: return "rejected";
    case Outcome::kExpired: return "expired";
    case Outcome::kShed: return "shed";
  }
  return "?";
}

struct RequestRecord {
  std::uint64_t id = 0;
  int tenant = 0;
  Outcome outcome = Outcome::kServed;
  gpusim::SimTime arrival_ns = 0.0;
  gpusim::SimTime deadline_ns = 0.0;    ///< request deadline (0 = none)
  gpusim::SimTime issue_ns = 0.0;       ///< batch launch began (served only)
  gpusim::SimTime completion_ns = 0.0;  ///< batch completion event (served only)
  std::uint64_t batch_id = 0;
  int batch_size = 0;
  bool downgraded = false;  ///< admitted best-effort past its SLO
  /// The request's output sample (numeric mode with keep_outputs only).
  std::vector<float> output;

  double latency_ms() const {
    return (completion_ns - arrival_ns) / gpusim::kMs;
  }
  double queue_ms() const { return (issue_ns - arrival_ns) / gpusim::kMs; }
};

}  // namespace serving
