#include "serving/request_queue.hpp"

#include "common/check.hpp"

namespace serving {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  GLP_REQUIRE(capacity_ >= 1, "request queue capacity must be positive");
}

bool RequestQueue::push(InferenceRequest r) {
  if (q_.size() >= capacity_) return false;
  q_.push_back(std::move(r));
  return true;
}

std::size_t RequestQueue::count(int tenant) const {
  std::size_t n = 0;
  for (const InferenceRequest& r : q_) n += (r.tenant == tenant) ? 1 : 0;
  return n;
}

std::vector<InferenceRequest> RequestQueue::expire(gpusim::SimTime now) {
  std::vector<InferenceRequest> dropped;
  for (auto it = q_.begin(); it != q_.end();) {
    if (it->deadline_ns > 0.0 && it->deadline_ns <= now) {
      dropped.push_back(std::move(*it));
      it = q_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

gpusim::SimTime RequestQueue::next_deadline() const {
  gpusim::SimTime t = std::numeric_limits<gpusim::SimTime>::infinity();
  for (const InferenceRequest& r : q_) {
    if (r.deadline_ns > 0.0 && r.deadline_ns < t) t = r.deadline_ns;
  }
  return t;
}

std::vector<InferenceRequest> RequestQueue::pop(int tenant, std::size_t max_n) {
  std::vector<InferenceRequest> out;
  for (auto it = q_.begin(); it != q_.end() && out.size() < max_n;) {
    if (it->tenant == tenant) {
      out.push_back(std::move(*it));
      it = q_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

}  // namespace serving
