#include "serving/request_queue.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace serving {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  GLP_REQUIRE(capacity_ >= 1, "request queue capacity must be positive");
}

std::uint32_t RequestQueue::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void RequestQueue::recycle_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.live = false;
  s.seq = 0;
  s.req = InferenceRequest{};  // drop any input payload eagerly
  free_.push_back(idx);
}

bool RequestQueue::push(InferenceRequest r) {
  if (size_ >= capacity_) return false;
  const std::uint32_t idx = alloc_slot();
  Slot& s = slots_[idx];
  s.seq = next_seq_++;
  s.live = true;
  const int tenant = r.tenant;
  const gpusim::SimTime deadline = r.downgraded ? 0.0 : r.deadline_ns;
  s.req = std::move(r);
  TenantQ& tq = tenants_[tenant];
  tq.handles.push_back(idx);
  ++tq.live;
  if (deadline > 0.0) deadlines_.push({deadline, s.seq, idx});
  ++size_;
  return true;
}

std::size_t RequestQueue::count(int tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.live;
}

void RequestQueue::clean_front(TenantQ& tq) {
  while (!tq.handles.empty() && !slots_[tq.handles.front()].live) {
    recycle_slot(tq.handles.front());
    tq.handles.pop_front();
  }
}

const InferenceRequest* RequestQueue::oldest(int tenant) {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.live == 0) return nullptr;
  clean_front(it->second);
  GLP_CHECK(!it->second.handles.empty());
  return &slots_[it->second.handles.front()].req;
}

std::vector<int> RequestQueue::tenants_by_oldest() {
  std::vector<std::pair<std::uint64_t, int>> order;
  order.reserve(tenants_.size());
  for (auto& [tenant, tq] : tenants_) {
    if (tq.live == 0) continue;
    clean_front(tq);
    order.emplace_back(slots_[tq.handles.front()].seq, tenant);
  }
  std::sort(order.begin(), order.end());
  std::vector<int> out;
  out.reserve(order.size());
  for (const auto& [seq, tenant] : order) out.push_back(tenant);
  return out;
}

void RequestQueue::clean_heap() const {
  while (!deadlines_.empty()) {
    const DeadlineEntry& top = deadlines_.top();
    const Slot& s = slots_[top.slot];
    if (s.live && s.seq == top.seq) return;
    deadlines_.pop();
  }
}

gpusim::SimTime RequestQueue::next_deadline() const {
  clean_heap();
  if (deadlines_.empty()) {
    return std::numeric_limits<gpusim::SimTime>::infinity();
  }
  return deadlines_.top().deadline;
}

std::vector<InferenceRequest> RequestQueue::expire(gpusim::SimTime now) {
  std::vector<InferenceRequest> dropped;
  for (;;) {
    clean_heap();
    if (deadlines_.empty() || deadlines_.top().deadline > now) break;
    const DeadlineEntry top = deadlines_.top();
    deadlines_.pop();
    Slot& s = slots_[top.slot];
    // Kill the slot but leave its tenant-deque handle in place; the
    // handle is reclaimed lazily when the deque front reaches it.
    s.live = false;
    TenantQ& tq = tenants_[s.req.tenant];
    GLP_CHECK(tq.live > 0);
    --tq.live;
    --size_;
    dropped.push_back(std::move(s.req));
  }
  // Heap pop order is (deadline, seq); cross-tenant deadline offsets can
  // differ, so enforce arrival order explicitly.
  std::sort(dropped.begin(), dropped.end(),
            [](const InferenceRequest& a, const InferenceRequest& b) {
              if (a.arrival_ns != b.arrival_ns) {
                return a.arrival_ns < b.arrival_ns;
              }
              return a.id < b.id;
            });
  return dropped;
}

std::vector<InferenceRequest> RequestQueue::pop(int tenant,
                                                std::size_t max_n) {
  std::vector<InferenceRequest> out;
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return out;
  TenantQ& tq = it->second;
  while (out.size() < max_n && tq.live > 0) {
    clean_front(tq);
    const std::uint32_t idx = tq.handles.front();
    tq.handles.pop_front();
    Slot& s = slots_[idx];
    GLP_CHECK(s.live);
    s.live = false;
    out.push_back(std::move(s.req));
    recycle_slot(idx);
    --tq.live;
    --size_;
  }
  return out;
}

}  // namespace serving
