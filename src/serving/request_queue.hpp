#pragma once
// Bounded FIFO request queue with admission control and deadline expiry.
// The queue holds requests from every tenant in arrival order — the
// DynamicBatcher is what carves per-tenant batches out of it; the queue
// itself never reorders anything.
//
// Internals are built for load, not just correctness: requests live in a
// slot-map pool (stable indices, free-list reuse), each tenant keeps a
// deque of handles to its own requests, and deadlines sit in a
// lazily-invalidated min-heap. Expiry kills the slot but leaves the
// tenant-deque handle in place; the handle is reclaimed (and the slot
// recycled) when the deque front reaches it. That makes every hot
// operation cheap, amortized over the requests that flow through:
//
//   push                O(log n)   (heap insert when the request has a deadline)
//   pop(tenant, n)      O(n_popped)
//   count(tenant)       O(1)
//   next_deadline()     amortized O(log n)
//   expire(now)         O(k log n) for k expired
//   tenants_by_oldest() O(T log T) for T active tenants
//
// The seed implementation was a single std::deque with linear scans for
// all of the above — quadratic under sustained load and unusable as the
// reference queue for 100k req/s replays.

#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "serving/request.hpp"

namespace serving {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Admission control: enqueue, or return false when the queue is full
  /// (the caller records the request as rejected).
  bool push(InferenceRequest r);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  /// Queued requests of `tenant`.
  std::size_t count(int tenant) const;

  /// Oldest queued request of `tenant`, or nullptr when it has none.
  const InferenceRequest* oldest(int tenant);

  /// Tenants with at least one queued request, ordered by the arrival of
  /// their oldest request (insertion order breaks ties). This is the
  /// batcher's iteration order: the first ready tenant is the one whose
  /// batch has waited longest.
  std::vector<int> tenants_by_oldest();

  /// Remove and return (in arrival order) every request whose deadline
  /// passed at `now`. Downgraded requests never expire.
  std::vector<InferenceRequest> expire(gpusim::SimTime now);

  /// Earliest pending deadline, or +infinity when none.
  gpusim::SimTime next_deadline() const;

  /// Pop the oldest `max_n` requests of `tenant`, preserving their
  /// relative order.
  std::vector<InferenceRequest> pop(int tenant, std::size_t max_n);

 private:
  struct Slot {
    InferenceRequest req;
    std::uint64_t seq = 0;  ///< global insertion order; 0 = slot free
    bool live = false;
  };
  struct TenantQ {
    std::deque<std::uint32_t> handles;  ///< oldest first; may hold dead slots
    std::size_t live = 0;
  };
  struct DeadlineEntry {
    gpusim::SimTime deadline = 0.0;
    std::uint64_t seq = 0;  ///< validity check against the slot
    std::uint32_t slot = 0;
  };
  struct DeadlineLater {
    bool operator()(const DeadlineEntry& a, const DeadlineEntry& b) const {
      // Min-heap on (deadline, seq): ties resolve to the older request.
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  std::uint32_t alloc_slot();
  /// Return a slot to the free list. Only legal once no tenant-deque
  /// handle references it any more.
  void recycle_slot(std::uint32_t idx);
  /// Reclaim dead handles off the front of a tenant deque.
  void clean_front(TenantQ& tq);
  /// Pop stale heap entries (request already popped or expired).
  void clean_heap() const;

  std::size_t capacity_;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 1;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<int, TenantQ> tenants_;
  /// Lazily-invalidated min-heap over requests that carry deadlines;
  /// mutable so next_deadline() can shed stale entries.
  mutable std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                              DeadlineLater>
      deadlines_;
};

}  // namespace serving
