#pragma once
// Bounded FIFO request queue with admission control and deadline expiry.
// The queue holds requests from every tenant in arrival order — the
// DynamicBatcher is what carves per-tenant batches out of it; the queue
// itself never reorders anything.

#include <deque>
#include <limits>
#include <vector>

#include "serving/request.hpp"

namespace serving {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Admission control: enqueue, or return false when the queue is full
  /// (the caller records the request as rejected).
  bool push(InferenceRequest r);

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  std::size_t capacity() const { return capacity_; }
  const std::deque<InferenceRequest>& pending() const { return q_; }

  /// Queued requests of `tenant`.
  std::size_t count(int tenant) const;

  /// Remove and return (in arrival order) every request whose deadline
  /// passed at `now`.
  std::vector<InferenceRequest> expire(gpusim::SimTime now);

  /// Earliest pending deadline, or +infinity when none.
  gpusim::SimTime next_deadline() const;

  /// Pop the oldest `max_n` requests of `tenant`, preserving their
  /// relative order.
  std::vector<InferenceRequest> pop(int tenant, std::size_t max_n);

 private:
  std::size_t capacity_;
  std::deque<InferenceRequest> q_;
};

}  // namespace serving
