#include "serving/server.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "common/check.hpp"

namespace serving {

namespace {
constexpr gpusim::SimTime kInf = std::numeric_limits<gpusim::SimTime>::infinity();
}  // namespace

double percentile_nearest_rank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  // Clamp the quantile before the size_t cast: converting a negative (or
  // NaN) double to an unsigned integer is undefined behaviour, and for a
  // 0- or 1-element sample any q degenerates to an endpoint anyway.
  if (!(q > 0.0)) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const std::size_t n = sorted.size();
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

InferenceServer::InferenceServer(scuda::Context& ctx,
                                 std::vector<TenantModel> models,
                                 ServerOptions opts)
    : ctx_(&ctx), opts_(std::move(opts)), models_(std::move(models)) {
  GLP_REQUIRE(!models_.empty(), "server needs at least one tenant model");
  GLP_REQUIRE(opts_.slots >= 1, "server needs at least one batch slot");
  GLP_REQUIRE(opts_.admission.headroom > 0.0, "admission headroom must be > 0");
  GLP_REQUIRE(opts_.admission.est_ewma > 0.0 && opts_.admission.est_ewma <= 1.0,
              "admission est_ewma must be in (0,1]");
  // Slot assignment is stable (tenant % slots) to preserve per-tenant
  // FIFO, so slots beyond the tenant count can never be occupied — clamp
  // them away or they would needlessly shrink every tenant's pool slice.
  opts_.slots = std::min(opts_.slots, static_cast<int>(models_.size()));

  if (opts_.use_scheduler) {
    glp4nn::SchedulerOptions sopts = opts_.scheduler;
    sopts.policy = glp4nn::DispatchPolicy::kTenantSliced;
    engine_ = std::make_unique<glp4nn::Glp4nnEngine>(sopts);
    sched_ = &engine_->scheduler_for(*ctx_);
    dispatcher_ = sched_;
  } else {
    serial_ = std::make_unique<kern::SerialDispatcher>(*ctx_);
    dispatcher_ = serial_.get();
  }

  // One home stream per in-flight slot. The serial baseline keeps every
  // slot on the legacy default stream — that IS the baseline's bottleneck.
  homes_.reserve(static_cast<std::size_t>(opts_.slots));
  for (int s = 0; s < opts_.slots; ++s) {
    homes_.push_back(opts_.use_scheduler ? scuda::Stream::create(*ctx_)
                                         : scuda::Stream(*ctx_));
  }
  slot_busy_.assign(static_cast<std::size_t>(opts_.slots), false);

  for (std::size_t t = 0; t < models_.size(); ++t) {
    SessionOptions so;
    so.mode = opts_.mode;
    so.weights_path = models_[t].weights;
    so.coalesce_lanes = opts_.coalesce_lanes;
    if (models_.size() > 1) so.name_prefix = "t" + std::to_string(t) + ":";
    sessions_.push_back(std::make_unique<InferenceSession>(
        *ctx_, *dispatcher_, models_[t].spec, so));
  }

  build_shards();

  if (opts_.record_timeline) ctx_->device().timeline().set_enabled(true);
}

void InferenceServer::build_shards() {
  const std::uint64_t stride = static_cast<std::uint64_t>(models_.size());
  shards_.clear();
  shards_.reserve(models_.size());
  for (std::size_t t = 0; t < models_.size(); ++t) {
    Shard sh;
    sh.queue = std::make_unique<RequestQueue>(opts_.queue_capacity);
    // Strided batch ids keep ids globally unique across per-tenant
    // batchers (shard t mints t, t+T, t+2T, ...).
    sh.batcher = std::make_unique<DynamicBatcher>(
        opts_.batch, static_cast<std::uint64_t>(t), stride);
    const TenantQos& qos = models_[t].qos;
    if (qos.rate_rps > 0.0) {
      const double burst = qos.burst > 0.0
                               ? qos.burst
                               : 2.0 * static_cast<double>(opts_.batch.max_batch);
      sh.bucket = glp::TokenBucket(qos.rate_rps, burst);
    }
    shards_.push_back(std::move(sh));
  }
}

std::size_t InferenceServer::total_replicas() const {
  std::size_t n = 0;
  for (const auto& s : sessions_) n += s->replica_count();
  return n;
}

double InferenceServer::service_estimate_ns(int tenant) const {
  return shards_.at(static_cast<std::size_t>(tenant)).est_ns;
}

void InferenceServer::prewarm() {
  if (warmed_) return;
  warmup();
  warmed_ = true;
}

void InferenceServer::warmup() {
  std::vector<int> sizes{1};
  const int top =
      opts_.batch.enabled ? replica_batch_for(opts_.batch.max_batch) : 1;
  for (int b = 2; b <= top; b <<= 1) sizes.push_back(b);
  gpusim::DeviceEngine& dev = ctx_->device();
  for (int t = 0; t < tenants(); ++t) {
    const int slot = t % opts_.slots;
    const gpusim::StreamId home = homes_[static_cast<std::size_t>(slot)].id();
    const auto run_once = [&](int b) {
      InferenceSession::Replica& r = sessions_[static_cast<std::size_t>(t)]
                                         ->checkout(b);
      if (sched_) {
        sched_->set_tenant({t, models_[static_cast<std::size_t>(t)].priority,
                            slot, opts_.slots, home});
      }
      dev.set_current_tenant(t);
      sessions_[static_cast<std::size_t>(t)]->run_batch(r, {}, home);
      dev.set_current_tenant(-1);
      if (sched_) sched_->clear_tenant();
      dev.synchronize();
      sessions_[static_cast<std::size_t>(t)]->release(r);
    };
    for (int b : sizes) run_once(b);
    // One extra steady run of the largest replica, timed on the simulated
    // clock, seeds the admission feasibility estimate — the profiled
    // first runs above include the one-time analysis charge and would
    // wildly overestimate steady service.
    const gpusim::SimTime before = dev.host_now();
    run_once(top);
    const gpusim::SimTime elapsed = dev.host_now() - before;
    shards_[static_cast<std::size_t>(t)].est_ns =
        elapsed / static_cast<double>(top);
  }
}

std::optional<Outcome> InferenceServer::admit(Shard& shard, InferenceRequest& r,
                                              gpusim::SimTime now) {
  // 1. Rate contract: a dry bucket marks the tenant over budget; under
  // queue pressure its requests shed first.
  const bool in_budget = shard.bucket.try_take(now);
  if (!in_budget) {
    const double fill = static_cast<double>(shard.queue->size()) /
                        static_cast<double>(shard.queue->capacity());
    if (fill >= opts_.admission.shed_pressure) return Outcome::kShed;
  }
  // 2. SLO feasibility: predicted completion = backlog drained at the
  // tenant's per-request service estimate, padded by the headroom factor.
  if (opts_.admission.slo_aware && r.deadline_ns > 0.0 && shard.est_ns > 0.0) {
    const double backlog = static_cast<double>(shard.queue->size() +
                                               shard.inflight_reqs + 1);
    const gpusim::SimTime predicted =
        now + opts_.admission.headroom * shard.est_ns * backlog;
    if (predicted > r.deadline_ns) {
      if (!(opts_.admission.downgrade && in_budget)) return Outcome::kShed;
      r.downgraded = true;  // served best-effort; never expires
    }
  }
  // 3. Bounded queue.
  if (!shard.queue->push(std::move(r))) return Outcome::kRejected;
  return std::nullopt;
}

void InferenceServer::issue(Batch batch, gpusim::SimTime now) {
  const int tenant = batch.tenant;
  GLP_CHECK(tenant >= 0 && tenant < tenants());
  const int slot = tenant % opts_.slots;
  GLP_CHECK(!slot_busy_[static_cast<std::size_t>(slot)]);

  InferenceSession& sess = *sessions_[static_cast<std::size_t>(tenant)];
  InferenceSession::Replica& r = sess.checkout(batch.size());

  std::vector<const float*> samples;
  if (!batch.requests.front().input.empty()) {
    samples.reserve(batch.requests.size());
    for (const InferenceRequest& req : batch.requests) {
      GLP_REQUIRE(req.input.size() == sess.sample_input_size(),
                  "request " << req.id << " input size " << req.input.size()
                             << " != model sample size "
                             << sess.sample_input_size());
      samples.push_back(req.input.data());
    }
  }

  gpusim::DeviceEngine& dev = ctx_->device();
  const gpusim::StreamId home = homes_[static_cast<std::size_t>(slot)].id();
  if (sched_) {
    sched_->set_tenant({tenant, models_[static_cast<std::size_t>(tenant)].priority,
                        slot, opts_.slots, home});
  }
  dev.set_current_tenant(tenant);
  sess.run_batch(r, samples, home);
  const gpusim::EventId done = dev.record_event(home);
  dev.set_current_tenant(-1);
  if (sched_) sched_->clear_tenant();

  slot_busy_[static_cast<std::size_t>(slot)] = true;
  InFlight f;
  f.slot = slot;
  f.batch = std::move(batch);
  f.replica = &r;
  f.done = done;
  f.issue_ns = now;
  inflight_.push_back(std::move(f));
}

bool InferenceServer::reap(std::vector<RequestRecord>& records) {
  gpusim::DeviceEngine& dev = ctx_->device();
  bool any = false;
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (!dev.event_complete(it->done)) {
      ++it;
      continue;
    }
    const gpusim::SimTime completion = dev.event_time(it->done);
    InferenceSession& sess = *sessions_[static_cast<std::size_t>(it->batch.tenant)];
    for (std::size_t i = 0; i < it->batch.requests.size(); ++i) {
      const InferenceRequest& req = it->batch.requests[i];
      RequestRecord rec;
      rec.id = req.id;
      rec.tenant = req.tenant;
      rec.outcome = Outcome::kServed;
      rec.arrival_ns = req.arrival_ns - t0_;
      rec.deadline_ns = req.deadline_ns > 0.0 ? req.deadline_ns - t0_ : 0.0;
      rec.downgraded = req.downgraded;
      rec.issue_ns = it->issue_ns - t0_;
      rec.completion_ns = completion - t0_;
      rec.batch_id = it->batch.id;
      rec.batch_size = it->batch.size();
      if (opts_.keep_outputs && opts_.mode == kern::ComputeMode::kNumeric) {
        const float* out = sess.output_of(*it->replica, static_cast<int>(i));
        rec.output.assign(out, out + sess.sample_output_size());
      }
      records.push_back(std::move(rec));
    }
    // Feed the admission estimator: per-request service within this batch.
    Shard& shard = shards_[static_cast<std::size_t>(it->batch.tenant)];
    const std::size_t n = it->batch.requests.size();
    GLP_CHECK(shard.inflight_reqs >= n);
    shard.inflight_reqs -= n;
    const double per_req =
        (completion - it->issue_ns) / static_cast<double>(it->batch.size());
    shard.est_ns = shard.est_ns <= 0.0
                       ? per_req
                       : shard.est_ns +
                             opts_.admission.est_ewma * (per_req - shard.est_ns);
    sess.release(*it->replica);
    slot_busy_[static_cast<std::size_t>(it->slot)] = false;
    it = inflight_.erase(it);
    any = true;
  }
  return any;
}

gpusim::SimTime InferenceServer::earliest_completion(gpusim::SimTime from,
                                                     gpusim::SimTime cap) {
  GLP_CHECK(!inflight_.empty());
  (void)from;
  gpusim::DeviceEngine& dev = ctx_->device();
  // Step the device exactly event-by-event so it is never advanced past
  // the completion we report — overshooting would delay the start of
  // batches issued afterwards and distort the measured schedule.
  for (int step = 0; step < (1 << 22); ++step) {
    const gpusim::SimTime t = dev.peek_next_event();
    if (t > cap || t == kInf) return kInf;
    dev.advance_device_to(t);
    gpusim::SimTime best = kInf;
    for (const InFlight& f : inflight_) {
      if (dev.event_complete(f.done)) best = std::min(best, dev.event_time(f.done));
    }
    if (best < kInf) return best;
  }
  throw glp::InternalError(
      "serving: in-flight batch never completed within the lookahead horizon");
}

std::vector<RequestRecord> InferenceServer::replay(
    std::vector<InferenceRequest> trace) {
  std::stable_sort(trace.begin(), trace.end(),
                   [](const InferenceRequest& a, const InferenceRequest& b) {
                     return a.arrival_ns < b.arrival_ns;
                   });
  if (opts_.warmup) prewarm();

  gpusim::DeviceEngine& dev = ctx_->device();
  t0_ = dev.host_now();
  // Shift trace times onto the absolute sim clock.
  for (InferenceRequest& r : trace) {
    r.arrival_ns += t0_;
    if (r.deadline_ns > 0.0) r.deadline_ns += t0_;
  }

  const auto slot_free = [this](int tenant) {
    return !slot_busy_[static_cast<std::size_t>(tenant % opts_.slots)];
  };
  const auto pending = [this]() {
    for (const Shard& sh : shards_) {
      if (!sh.queue->empty()) return true;
    }
    return false;
  };

  std::vector<RequestRecord> records;
  records.reserve(trace.size());
  std::size_t next = 0;
  int stalls = 0;

  while (next < trace.size() || pending() || !inflight_.empty()) {
    const gpusim::SimTime now = dev.host_now();
    dev.advance_device_to(now);
    bool progressed = reap(records);

    while (next < trace.size() && trace[next].arrival_ns <= now) {
      InferenceRequest& r = trace[next++];
      progressed = true;
      const std::uint64_t id = r.id;
      const int tenant = r.tenant;
      const gpusim::SimTime arrival = r.arrival_ns;
      const gpusim::SimTime deadline = r.deadline_ns;
      GLP_REQUIRE(tenant >= 0 && tenant < tenants(),
                  "request " << id << " names unknown tenant " << tenant);
      Shard& shard = shards_[static_cast<std::size_t>(tenant)];
      if (const auto dropped = admit(shard, r, now)) {
        RequestRecord rec;
        rec.id = id;
        rec.tenant = tenant;
        rec.outcome = *dropped;
        rec.arrival_ns = arrival - t0_;
        rec.deadline_ns = deadline > 0.0 ? deadline - t0_ : 0.0;
        records.push_back(std::move(rec));
      }
    }

    for (Shard& shard : shards_) {
      for (InferenceRequest& r : shard.queue->expire(now)) {
        progressed = true;
        RequestRecord rec;
        rec.id = r.id;
        rec.tenant = r.tenant;
        rec.outcome = Outcome::kExpired;
        rec.arrival_ns = r.arrival_ns - t0_;
        rec.deadline_ns = r.deadline_ns > 0.0 ? r.deadline_ns - t0_ : 0.0;
        records.push_back(std::move(rec));
      }
    }

    // Cut batches across shards, oldest pending head first, so a tenant
    // that shares its slot never starves a longer-waiting peer.
    for (bool formed = true; formed;) {
      formed = false;
      std::vector<std::pair<gpusim::SimTime, int>> order;
      order.reserve(shards_.size());
      for (int t = 0; t < tenants(); ++t) {
        Shard& shard = shards_[static_cast<std::size_t>(t)];
        if (const InferenceRequest* head = shard.queue->oldest(t)) {
          order.emplace_back(head->arrival_ns, t);
        }
      }
      std::sort(order.begin(), order.end());
      for (const auto& [arrival, t] : order) {
        Shard& shard = shards_[static_cast<std::size_t>(t)];
        while (auto b = shard.batcher->try_form(*shard.queue, now, slot_free)) {
          shard.inflight_reqs += b->requests.size();
          issue(std::move(*b), now);
          progressed = true;
          formed = true;
        }
      }
    }

    if (progressed) {
      stalls = 0;
      continue;
    }
    if (next >= trace.size() && !pending() && inflight_.empty()) break;

    // Next host wake-up: the earliest of (next arrival, next queue
    // deadline, next batcher timeout, earliest in-flight completion).
    gpusim::SimTime next_t = kInf;
    if (next < trace.size()) next_t = std::min(next_t, trace[next].arrival_ns);
    for (Shard& shard : shards_) {
      const gpusim::SimTime dl = shard.queue->next_deadline();
      if (dl > now) next_t = std::min(next_t, dl);
      const gpusim::SimTime cut = shard.batcher->next_cut_ns(*shard.queue);
      if (cut > now) next_t = std::min(next_t, cut);
    }

    gpusim::SimTime wake = next_t;
    if (!inflight_.empty()) {
      const gpusim::SimTime comp = earliest_completion(now, next_t);
      wake = std::min(wake, std::max(comp, now));
    }
    GLP_CHECK(wake < kInf);  // otherwise the queue can never drain
    if (wake > now) {
      dev.host_advance(wake - now);
      stalls = 0;
    } else if (++stalls > 10000) {
      throw glp::InternalError("serving: replay event loop is stalled");
    }
  }
  return records;
}

namespace {

/// Shared accumulation for the overall and per-tenant summaries.
struct StatsCore {
  std::size_t offered = 0, served = 0, rejected = 0, expired = 0, shed = 0;
  std::size_t downgraded = 0, deadline_misses = 0;
  std::size_t with_deadline = 0, on_time = 0;
  double sum_ms = 0.0, max_ms = 0.0;
  std::vector<double> lat;
  gpusim::SimTime first_arrival = kInf, last_completion = 0.0;
  std::set<std::uint64_t> batch_ids;

  void add(const RequestRecord& r) {
    ++offered;
    first_arrival = std::min(first_arrival, r.arrival_ns);
    if (r.deadline_ns > 0.0) ++with_deadline;
    switch (r.outcome) {
      case Outcome::kRejected:
        ++rejected;
        return;
      case Outcome::kExpired:
        ++expired;
        return;
      case Outcome::kShed:
        ++shed;
        return;
      case Outcome::kServed:
        break;
    }
    ++served;
    if (r.downgraded) ++downgraded;
    batch_ids.insert(r.batch_id);
    if (r.deadline_ns > 0.0) {
      if (r.completion_ns > r.deadline_ns) {
        ++deadline_misses;
      } else {
        ++on_time;
      }
    }
    last_completion = std::max(last_completion, r.completion_ns);
    const double ms = r.latency_ms();
    lat.push_back(ms);
    sum_ms += ms;
    max_ms = std::max(max_ms, ms);
  }

  double slo_attainment() const {
    if (with_deadline == 0) return 1.0;
    return static_cast<double>(on_time) / static_cast<double>(with_deadline);
  }
  double throughput_rps() const {
    if (served == 0 || last_completion <= first_arrival) return 0.0;
    return static_cast<double>(served) /
           ((last_completion - first_arrival) / 1e9);
  }
};

}  // namespace

ServingStats InferenceServer::summarize(
    const std::vector<RequestRecord>& records) {
  StatsCore all;
  std::map<int, StatsCore> per_tenant;
  for (const RequestRecord& r : records) {
    all.add(r);
    per_tenant[r.tenant].add(r);
  }

  ServingStats s;
  s.offered = all.offered;
  s.served = all.served;
  s.rejected = all.rejected;
  s.expired = all.expired;
  s.shed = all.shed;
  s.downgraded = all.downgraded;
  s.deadline_misses = all.deadline_misses;
  s.slo_attainment = all.slo_attainment();
  if (!all.lat.empty()) {
    std::sort(all.lat.begin(), all.lat.end());
    s.p50_ms = percentile_nearest_rank(all.lat, 0.50);
    s.p95_ms = percentile_nearest_rank(all.lat, 0.95);
    s.p99_ms = percentile_nearest_rank(all.lat, 0.99);
    s.mean_ms = all.sum_ms / static_cast<double>(all.lat.size());
    s.max_ms = all.max_ms;
  }
  // Distinct ids, not max+1: callers routinely summarize filtered record
  // sets (e.g. one tenant's slice of a replay) whose batch ids are
  // sparse — and sharded batchers mint strided ids by design.
  if (!all.batch_ids.empty()) {
    s.batches = all.batch_ids.size();
    s.mean_batch =
        static_cast<double>(all.served) / static_cast<double>(s.batches);
  }
  if (all.served > 0 && all.last_completion > all.first_arrival) {
    s.makespan_ms = (all.last_completion - all.first_arrival) / gpusim::kMs;
    s.throughput_rps = all.throughput_rps();
  }

  for (auto& [tenant, core] : per_tenant) {
    TenantStats ts;
    ts.tenant = tenant;
    ts.offered = core.offered;
    ts.served = core.served;
    ts.rejected = core.rejected;
    ts.expired = core.expired;
    ts.shed = core.shed;
    ts.downgraded = core.downgraded;
    ts.deadline_misses = core.deadline_misses;
    ts.slo_attainment = core.slo_attainment();
    if (!core.lat.empty()) {
      std::sort(core.lat.begin(), core.lat.end());
      ts.p50_ms = percentile_nearest_rank(core.lat, 0.50);
      ts.p95_ms = percentile_nearest_rank(core.lat, 0.95);
      ts.p99_ms = percentile_nearest_rank(core.lat, 0.99);
      ts.mean_ms = core.sum_ms / static_cast<double>(core.lat.size());
      ts.max_ms = core.max_ms;
    }
    ts.throughput_rps = core.throughput_rps();
    s.tenants.push_back(std::move(ts));
  }
  return s;
}

}  // namespace serving
