#include "serving/server.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/check.hpp"

namespace serving {

namespace {
constexpr gpusim::SimTime kInf = std::numeric_limits<gpusim::SimTime>::infinity();
}  // namespace

InferenceServer::InferenceServer(scuda::Context& ctx,
                                 std::vector<TenantModel> models,
                                 ServerOptions opts)
    : ctx_(&ctx), opts_(std::move(opts)), models_(std::move(models)) {
  GLP_REQUIRE(!models_.empty(), "server needs at least one tenant model");
  GLP_REQUIRE(opts_.slots >= 1, "server needs at least one batch slot");
  // Slot assignment is stable (tenant % slots) to preserve per-tenant
  // FIFO, so slots beyond the tenant count can never be occupied — clamp
  // them away or they would needlessly shrink every tenant's pool slice.
  opts_.slots = std::min(opts_.slots, static_cast<int>(models_.size()));

  if (opts_.use_scheduler) {
    glp4nn::SchedulerOptions sopts = opts_.scheduler;
    sopts.policy = glp4nn::DispatchPolicy::kTenantSliced;
    engine_ = std::make_unique<glp4nn::Glp4nnEngine>(sopts);
    sched_ = &engine_->scheduler_for(*ctx_);
    dispatcher_ = sched_;
  } else {
    serial_ = std::make_unique<kern::SerialDispatcher>(*ctx_);
    dispatcher_ = serial_.get();
  }

  // One home stream per in-flight slot. The serial baseline keeps every
  // slot on the legacy default stream — that IS the baseline's bottleneck.
  homes_.reserve(static_cast<std::size_t>(opts_.slots));
  for (int s = 0; s < opts_.slots; ++s) {
    homes_.push_back(opts_.use_scheduler ? scuda::Stream::create(*ctx_)
                                         : scuda::Stream(*ctx_));
  }
  slot_busy_.assign(static_cast<std::size_t>(opts_.slots), false);

  for (std::size_t t = 0; t < models_.size(); ++t) {
    SessionOptions so;
    so.mode = opts_.mode;
    so.weights_path = models_[t].weights;
    if (models_.size() > 1) so.name_prefix = "t" + std::to_string(t) + ":";
    sessions_.push_back(std::make_unique<InferenceSession>(
        *ctx_, *dispatcher_, models_[t].spec, so));
  }

  if (opts_.record_timeline) ctx_->device().timeline().set_enabled(true);
}

std::size_t InferenceServer::total_replicas() const {
  std::size_t n = 0;
  for (const auto& s : sessions_) n += s->replica_count();
  return n;
}

void InferenceServer::warmup() {
  std::vector<int> sizes{1};
  if (opts_.batch.enabled) {
    const int top = replica_batch_for(opts_.batch.max_batch);
    for (int b = 2; b <= top; b <<= 1) sizes.push_back(b);
  }
  gpusim::DeviceEngine& dev = ctx_->device();
  for (int t = 0; t < tenants(); ++t) {
    const int slot = t % opts_.slots;
    const gpusim::StreamId home = homes_[static_cast<std::size_t>(slot)].id();
    for (int b : sizes) {
      InferenceSession::Replica& r = sessions_[static_cast<std::size_t>(t)]
                                         ->checkout(b);
      if (sched_) {
        sched_->set_tenant({t, models_[static_cast<std::size_t>(t)].priority,
                            slot, opts_.slots, home});
      }
      dev.set_current_tenant(t);
      sessions_[static_cast<std::size_t>(t)]->run_batch(r, {}, home);
      dev.set_current_tenant(-1);
      if (sched_) sched_->clear_tenant();
      dev.synchronize();
      sessions_[static_cast<std::size_t>(t)]->release(r);
    }
  }
}

void InferenceServer::issue(Batch batch, gpusim::SimTime now) {
  const int tenant = batch.tenant;
  GLP_CHECK(tenant >= 0 && tenant < tenants());
  const int slot = tenant % opts_.slots;
  GLP_CHECK(!slot_busy_[static_cast<std::size_t>(slot)]);

  InferenceSession& sess = *sessions_[static_cast<std::size_t>(tenant)];
  InferenceSession::Replica& r = sess.checkout(batch.size());

  std::vector<const float*> samples;
  if (!batch.requests.front().input.empty()) {
    samples.reserve(batch.requests.size());
    for (const InferenceRequest& req : batch.requests) {
      GLP_REQUIRE(req.input.size() == sess.sample_input_size(),
                  "request " << req.id << " input size " << req.input.size()
                             << " != model sample size "
                             << sess.sample_input_size());
      samples.push_back(req.input.data());
    }
  }

  gpusim::DeviceEngine& dev = ctx_->device();
  const gpusim::StreamId home = homes_[static_cast<std::size_t>(slot)].id();
  if (sched_) {
    sched_->set_tenant({tenant, models_[static_cast<std::size_t>(tenant)].priority,
                        slot, opts_.slots, home});
  }
  dev.set_current_tenant(tenant);
  sess.run_batch(r, samples, home);
  const gpusim::EventId done = dev.record_event(home);
  dev.set_current_tenant(-1);
  if (sched_) sched_->clear_tenant();

  slot_busy_[static_cast<std::size_t>(slot)] = true;
  InFlight f;
  f.slot = slot;
  f.batch = std::move(batch);
  f.replica = &r;
  f.done = done;
  f.issue_ns = now;
  inflight_.push_back(std::move(f));
}

bool InferenceServer::reap(std::vector<RequestRecord>& records) {
  gpusim::DeviceEngine& dev = ctx_->device();
  bool any = false;
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (!dev.event_complete(it->done)) {
      ++it;
      continue;
    }
    const gpusim::SimTime completion = dev.event_time(it->done);
    InferenceSession& sess = *sessions_[static_cast<std::size_t>(it->batch.tenant)];
    for (std::size_t i = 0; i < it->batch.requests.size(); ++i) {
      const InferenceRequest& req = it->batch.requests[i];
      RequestRecord rec;
      rec.id = req.id;
      rec.tenant = req.tenant;
      rec.outcome = Outcome::kServed;
      rec.arrival_ns = req.arrival_ns - t0_;
      rec.deadline_ns = req.deadline_ns > 0.0 ? req.deadline_ns - t0_ : 0.0;
      rec.issue_ns = it->issue_ns - t0_;
      rec.completion_ns = completion - t0_;
      rec.batch_id = it->batch.id;
      rec.batch_size = it->batch.size();
      if (opts_.keep_outputs && opts_.mode == kern::ComputeMode::kNumeric) {
        const float* out = sess.output_of(*it->replica, static_cast<int>(i));
        rec.output.assign(out, out + sess.sample_output_size());
      }
      records.push_back(std::move(rec));
    }
    sess.release(*it->replica);
    slot_busy_[static_cast<std::size_t>(it->slot)] = false;
    it = inflight_.erase(it);
    any = true;
  }
  return any;
}

gpusim::SimTime InferenceServer::earliest_completion(gpusim::SimTime from,
                                                     gpusim::SimTime cap) {
  GLP_CHECK(!inflight_.empty());
  (void)from;
  gpusim::DeviceEngine& dev = ctx_->device();
  // Step the device exactly event-by-event so it is never advanced past
  // the completion we report — overshooting would delay the start of
  // batches issued afterwards and distort the measured schedule.
  for (int step = 0; step < (1 << 22); ++step) {
    const gpusim::SimTime t = dev.peek_next_event();
    if (t > cap || t == kInf) return kInf;
    dev.advance_device_to(t);
    gpusim::SimTime best = kInf;
    for (const InFlight& f : inflight_) {
      if (dev.event_complete(f.done)) best = std::min(best, dev.event_time(f.done));
    }
    if (best < kInf) return best;
  }
  throw glp::InternalError(
      "serving: in-flight batch never completed within the lookahead horizon");
}

std::vector<RequestRecord> InferenceServer::replay(
    std::vector<InferenceRequest> trace) {
  std::stable_sort(trace.begin(), trace.end(),
                   [](const InferenceRequest& a, const InferenceRequest& b) {
                     return a.arrival_ns < b.arrival_ns;
                   });
  if (opts_.warmup) warmup();

  gpusim::DeviceEngine& dev = ctx_->device();
  t0_ = dev.host_now();
  // Shift trace times onto the absolute sim clock.
  for (InferenceRequest& r : trace) {
    r.arrival_ns += t0_;
    if (r.deadline_ns > 0.0) r.deadline_ns += t0_;
  }

  RequestQueue queue(opts_.queue_capacity);
  DynamicBatcher batcher(opts_.batch);
  const auto slot_free = [this](int tenant) {
    return !slot_busy_[static_cast<std::size_t>(tenant % opts_.slots)];
  };

  std::vector<RequestRecord> records;
  records.reserve(trace.size());
  std::size_t next = 0;
  int stalls = 0;

  while (next < trace.size() || !queue.empty() || !inflight_.empty()) {
    const gpusim::SimTime now = dev.host_now();
    dev.advance_device_to(now);
    bool progressed = reap(records);

    while (next < trace.size() && trace[next].arrival_ns <= now) {
      InferenceRequest& r = trace[next++];
      progressed = true;
      const std::uint64_t id = r.id;
      const int tenant = r.tenant;
      const gpusim::SimTime arrival = r.arrival_ns;
      const gpusim::SimTime deadline = r.deadline_ns;
      if (!queue.push(std::move(r))) {
        RequestRecord rec;
        rec.id = id;
        rec.tenant = tenant;
        rec.outcome = Outcome::kRejected;
        rec.arrival_ns = arrival - t0_;
        rec.deadline_ns = deadline > 0.0 ? deadline - t0_ : 0.0;
        records.push_back(std::move(rec));
      }
    }

    for (InferenceRequest& r : queue.expire(now)) {
      progressed = true;
      RequestRecord rec;
      rec.id = r.id;
      rec.tenant = r.tenant;
      rec.outcome = Outcome::kExpired;
      rec.arrival_ns = r.arrival_ns - t0_;
      rec.deadline_ns = r.deadline_ns > 0.0 ? r.deadline_ns - t0_ : 0.0;
      records.push_back(std::move(rec));
    }

    while (auto b = batcher.try_form(queue, now, slot_free)) {
      progressed = true;
      issue(std::move(*b), now);
    }

    if (progressed) {
      stalls = 0;
      continue;
    }
    if (next >= trace.size() && queue.empty() && inflight_.empty()) break;

    // Next host wake-up: the earliest of (next arrival, next queue
    // deadline, next batcher timeout, earliest in-flight completion).
    gpusim::SimTime next_t = kInf;
    if (next < trace.size()) next_t = std::min(next_t, trace[next].arrival_ns);
    const gpusim::SimTime dl = queue.next_deadline();
    if (dl > now) next_t = std::min(next_t, dl);
    const gpusim::SimTime cut = batcher.next_cut_ns(queue);
    if (cut > now) next_t = std::min(next_t, cut);

    gpusim::SimTime wake = next_t;
    if (!inflight_.empty()) {
      const gpusim::SimTime comp = earliest_completion(now, next_t);
      wake = std::min(wake, std::max(comp, now));
    }
    GLP_CHECK(wake < kInf);  // otherwise the queue can never drain
    if (wake > now) {
      dev.host_advance(wake - now);
      stalls = 0;
    } else if (++stalls > 10000) {
      throw glp::InternalError("serving: replay event loop is stalled");
    }
  }
  return records;
}

ServingStats InferenceServer::summarize(
    const std::vector<RequestRecord>& records) {
  ServingStats s;
  s.offered = records.size();
  std::vector<double> lat;
  double sum = 0.0;
  gpusim::SimTime first_arrival = kInf, last_completion = 0.0;
  // Distinct ids, not max+1: callers routinely summarize filtered record
  // sets (e.g. one tenant's slice of a replay) whose batch ids are
  // sparse.
  std::set<std::uint64_t> batch_ids;
  std::size_t batched_requests = 0;
  for (const RequestRecord& r : records) {
    first_arrival = std::min(first_arrival, r.arrival_ns);
    switch (r.outcome) {
      case Outcome::kRejected:
        ++s.rejected;
        continue;
      case Outcome::kExpired:
        ++s.expired;
        continue;
      case Outcome::kServed:
        break;
    }
    ++s.served;
    ++batched_requests;
    batch_ids.insert(r.batch_id);
    if (r.deadline_ns > 0.0 && r.completion_ns > r.deadline_ns) {
      ++s.deadline_misses;
    }
    last_completion = std::max(last_completion, r.completion_ns);
    const double ms = r.latency_ms();
    lat.push_back(ms);
    sum += ms;
    s.max_ms = std::max(s.max_ms, ms);
  }
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    const auto rank = [&](double q) {
      const std::size_t i = static_cast<std::size_t>(
          std::ceil(q * static_cast<double>(lat.size()))) ;
      return lat[std::min(i == 0 ? 0 : i - 1, lat.size() - 1)];
    };
    s.p50_ms = rank(0.50);
    s.p95_ms = rank(0.95);
    s.p99_ms = rank(0.99);
    s.mean_ms = sum / static_cast<double>(lat.size());
  }
  if (!batch_ids.empty()) {
    s.batches = batch_ids.size();
    s.mean_batch =
        static_cast<double>(batched_requests) / static_cast<double>(s.batches);
  }
  if (s.served > 0 && last_completion > first_arrival) {
    s.makespan_ms = (last_completion - first_arrival) / gpusim::kMs;
    s.throughput_rps =
        static_cast<double>(s.served) / (s.makespan_ms / 1e3);
  }
  return s;
}

}  // namespace serving
