#pragma once
// InferenceServer: the multi-tenant serving front end. Owns one
// InferenceSession per tenant model, a shared bounded RequestQueue, a
// DynamicBatcher, and `slots` concurrent in-flight batch slots — each
// slot a dedicated home stream. Under the GLP4NN scheduler
// (DispatchPolicy::kTenantSliced) every in-flight batch runs its
// per-sample scopes on a disjoint slice of the stream pool and
// forks/joins against its slot's home stream, so batches from different
// tenants overlap on the device; the serial baseline funnels everything
// through the default stream.
//
// replay() is a deterministic single-threaded discrete-event loop over
// simulated time: it admits trace arrivals, expires deadlines, cuts
// batches, and uses DeviceEngine::advance_device_to lookahead to find batch
// completions without disturbing the host clock. Identical inputs give
// identical schedules and bit-identical outputs.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/glp4nn.hpp"
#include "serving/batcher.hpp"
#include "serving/session.hpp"
#include "serving/trace_gen.hpp"

namespace serving {

struct TenantModel {
  std::string name;
  mc::NetSpec spec;
  int priority = 0;      ///< stream priority for the tenant's slice
  std::string weights;   ///< optional checkpoint path
};

struct ServerOptions {
  BatchPolicy batch;
  int slots = 4;                    ///< concurrent in-flight batch slots
  std::size_t queue_capacity = 64;  ///< admission-control bound
  /// true: GLP4NN RuntimeScheduler (kTenantSliced); false: serial
  /// baseline (every kernel on the default stream).
  bool use_scheduler = true;
  glp4nn::SchedulerOptions scheduler;  ///< policy is forced to kTenantSliced
  kern::ComputeMode mode = kern::ComputeMode::kNumeric;
  bool record_timeline = false;  ///< keep kernel/copy records (race checks)
  bool keep_outputs = false;     ///< copy each request's output into its record
  /// Run one forward per (tenant, replica batch size) before the trace so
  /// every scope is profiled up front; warmup time is excluded from
  /// request metrics.
  bool warmup = true;
};

struct ServingStats {
  std::size_t offered = 0;
  std::size_t served = 0;
  std::size_t rejected = 0;
  std::size_t expired = 0;
  std::size_t deadline_misses = 0;  ///< served, but past their deadline
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double mean_ms = 0.0, max_ms = 0.0;
  double makespan_ms = 0.0;       ///< first arrival → last completion
  double throughput_rps = 0.0;    ///< served / makespan
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
};

class InferenceServer {
 public:
  InferenceServer(scuda::Context& ctx, std::vector<TenantModel> models,
                  ServerOptions opts = {});

  /// Replay an open-loop trace (arrival_ns relative to replay start).
  /// Returns one record per request, in completion/drop order.
  std::vector<RequestRecord> replay(std::vector<InferenceRequest> trace);

  InferenceSession& session(int tenant) { return *sessions_.at(tenant); }
  int tenants() const { return static_cast<int>(sessions_.size()); }
  const ServerOptions& options() const { return opts_; }
  /// Activation arenas built across all tenants (replica high-water mark).
  std::size_t total_replicas() const;

  static ServingStats summarize(const std::vector<RequestRecord>& records);

 private:
  struct InFlight {
    int slot = 0;
    Batch batch;
    InferenceSession::Replica* replica = nullptr;
    gpusim::EventId done = 0;
    gpusim::SimTime issue_ns = 0.0;
  };

  void warmup();
  void issue(Batch batch, gpusim::SimTime now);
  bool reap(std::vector<RequestRecord>& records);
  gpusim::SimTime earliest_completion(gpusim::SimTime from, gpusim::SimTime cap);

  scuda::Context* ctx_;
  ServerOptions opts_;
  std::vector<TenantModel> models_;
  std::unique_ptr<glp4nn::Glp4nnEngine> engine_;       // scheduler mode
  std::unique_ptr<kern::SerialDispatcher> serial_;     // baseline mode
  glp4nn::RuntimeScheduler* sched_ = nullptr;
  kern::KernelDispatcher* dispatcher_ = nullptr;
  std::vector<std::unique_ptr<InferenceSession>> sessions_;
  std::vector<scuda::Stream> homes_;  ///< one home stream per slot
  std::vector<bool> slot_busy_;
  std::vector<InFlight> inflight_;
  gpusim::SimTime t0_ = 0.0;  ///< replay epoch (absolute sim time)
};

}  // namespace serving
