#pragma once
// InferenceServer: the multi-tenant serving front end. Owns one
// InferenceSession per tenant model, one *shard* per tenant — a bounded
// RequestQueue, a DynamicBatcher, a token-bucket QoS meter and a service
// time estimate, so tenants never contend on a shared queue — and
// `slots` concurrent in-flight batch slots, each a dedicated home
// stream. Under the GLP4NN scheduler (DispatchPolicy::kTenantSliced)
// every in-flight batch runs its per-sample scopes on a disjoint slice
// of the stream pool and forks/joins against its slot's home stream, so
// batches from different tenants overlap on the device; the serial
// baseline funnels everything through the default stream.
//
// Admission pipeline (per request, at enqueue time):
//   1. token bucket — a tenant whose bucket is dry is over its contracted
//      rate; under queue pressure (fill >= shed_pressure) its requests
//      are shed first (Outcome::kShed);
//   2. SLO feasibility — with admission.slo_aware, a deadline-carrying
//      request whose predicted completion (backlog x the tenant's EWMA
//      service estimate, padded by `headroom`) exceeds its deadline is
//      shed at admission instead of served late — or, with
//      admission.downgrade, admitted best-effort with the deadline
//      stripped from expiry (still counted against SLO attainment);
//   3. bounded queue — a full shard queue bounces the request
//      (Outcome::kRejected).
//
// replay() is a deterministic single-threaded discrete-event loop over
// simulated time: it admits trace arrivals, expires deadlines, cuts
// batches (continuously or on the windowed policy — see BatchMode), and
// uses DeviceEngine::advance_device_to lookahead to find batch
// completions without disturbing the host clock. Identical inputs give
// identical schedules, identical shed/downgrade decisions and
// bit-identical outputs.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/token_bucket.hpp"
#include "core/glp4nn.hpp"
#include "serving/batcher.hpp"
#include "serving/session.hpp"
#include "serving/trace_gen.hpp"

namespace serving {

/// Per-tenant rate contract for the admission token bucket.
struct TenantQos {
  double rate_rps = 0.0;  ///< sustained budget; 0 = no contract (never dry)
  double burst = 0.0;     ///< bucket depth in requests; 0 → 2*max_batch
};

struct TenantModel {
  std::string name;
  mc::NetSpec spec;
  int priority = 0;      ///< stream priority for the tenant's slice
  std::string weights;   ///< optional checkpoint path
  TenantQos qos;         ///< admission rate contract (optional)
};

/// Deadline-aware admission policy (see the class comment).
struct AdmissionOptions {
  bool slo_aware = false;  ///< shed/downgrade provably-late requests
  bool downgrade = false;  ///< downgrade (serve best-effort) instead of shed
  double headroom = 1.2;   ///< safety factor on the service estimate
  /// Shard-queue fill fraction above which over-budget tenants (dry
  /// token bucket) are shed outright, deadline or not.
  double shed_pressure = 0.75;
  double est_ewma = 0.25;  ///< EWMA weight for the service estimate update
};

struct ServerOptions {
  BatchPolicy batch;
  AdmissionOptions admission;
  int slots = 4;                    ///< concurrent in-flight batch slots
  std::size_t queue_capacity = 64;  ///< admission bound *per tenant shard*
  /// true: GLP4NN RuntimeScheduler (kTenantSliced); false: serial
  /// baseline (every kernel on the default stream).
  bool use_scheduler = true;
  glp4nn::SchedulerOptions scheduler;  ///< policy is forced to kTenantSliced
  kern::ComputeMode mode = kern::ComputeMode::kNumeric;
  /// Merge each lane's per-sample kernel chain into one launch per
  /// stream in steady scopes (kern::CoalescingDispatcher) — the serving
  /// hot path's answer to per-launch host overhead. Inert under the
  /// serial baseline (its scopes are never coalescable), so
  /// scheduler-vs-serial comparisons stay honest.
  bool coalesce_lanes = true;
  bool record_timeline = false;  ///< keep kernel/copy records (race checks)
  bool keep_outputs = false;     ///< copy each request's output into its record
  /// Run one forward per (tenant, replica batch size) before the trace so
  /// every scope is profiled up front; warmup time is excluded from
  /// request metrics.
  bool warmup = true;
};

/// Outcome/latency breakdown for one tenant's slice of a replay.
struct TenantStats {
  int tenant = -1;
  std::size_t offered = 0;
  std::size_t served = 0;
  std::size_t rejected = 0;
  std::size_t expired = 0;
  std::size_t shed = 0;
  std::size_t downgraded = 0;       ///< served best-effort past their SLO check
  std::size_t deadline_misses = 0;  ///< served, but past their deadline
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double mean_ms = 0.0, max_ms = 0.0;
  /// Fraction of deadline-carrying offered requests served by their
  /// deadline (1.0 when no request carried a deadline).
  double slo_attainment = 1.0;
  double throughput_rps = 0.0;
};

struct ServingStats {
  std::size_t offered = 0;
  std::size_t served = 0;
  std::size_t rejected = 0;
  std::size_t expired = 0;
  std::size_t shed = 0;             ///< dropped by SLO-aware admission
  std::size_t downgraded = 0;       ///< served best-effort past their SLO check
  std::size_t deadline_misses = 0;  ///< served, but past their deadline
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double mean_ms = 0.0, max_ms = 0.0;
  double slo_attainment = 1.0;    ///< see TenantStats::slo_attainment
  double makespan_ms = 0.0;       ///< first arrival → last completion
  double throughput_rps = 0.0;    ///< served / makespan
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  std::vector<TenantStats> tenants;  ///< one entry per tenant seen
};

/// Nearest-rank percentile over an ascending-sorted sample: the smallest
/// element whose rank covers quantile `q` — an actual sample value, never
/// an interpolation (which is biased for the small per-tenant record sets
/// the per-tenant breakdown summarizes).
double percentile_nearest_rank(const std::vector<double>& sorted, double q);

class InferenceServer {
 public:
  InferenceServer(scuda::Context& ctx, std::vector<TenantModel> models,
                  ServerOptions opts = {});

  /// Replay an open-loop trace (arrival_ns relative to replay start).
  /// Returns one record per request, in completion/drop order.
  std::vector<RequestRecord> replay(std::vector<InferenceRequest> trace);

  InferenceSession& session(int tenant) { return *sessions_.at(tenant); }
  int tenants() const { return static_cast<int>(sessions_.size()); }
  const ServerOptions& options() const { return opts_; }
  /// Activation arenas built across all tenants (replica high-water mark).
  std::size_t total_replicas() const;
  /// Per-request service estimate the admission feasibility check uses
  /// for `tenant` (simulated ns; 0 until warmed up or first reap).
  double service_estimate_ns(int tenant) const;

  /// Run the warmup pass now instead of at replay() time. Idempotent —
  /// a later replay() will not warm up again — so a fleet front end can
  /// warm every shard server up front, read the seeded service
  /// estimates to route a trace, and then replay the routed slices.
  void prewarm();

  static ServingStats summarize(const std::vector<RequestRecord>& records);

 private:
  /// One tenant's slice of the ingest path.
  struct Shard {
    std::unique_ptr<RequestQueue> queue;
    std::unique_ptr<DynamicBatcher> batcher;
    glp::TokenBucket bucket;
    double est_ns = 0.0;           ///< EWMA per-request service estimate
    std::size_t inflight_reqs = 0;
  };

  struct InFlight {
    int slot = 0;
    Batch batch;
    InferenceSession::Replica* replica = nullptr;
    gpusim::EventId done = 0;
    gpusim::SimTime issue_ns = 0.0;
  };

  void warmup();
  void build_shards();
  /// Admission pipeline; returns the terminal outcome for dropped
  /// requests, or nullopt when the request was enqueued.
  std::optional<Outcome> admit(Shard& shard, InferenceRequest& r,
                               gpusim::SimTime now);
  void issue(Batch batch, gpusim::SimTime now);
  bool reap(std::vector<RequestRecord>& records);
  gpusim::SimTime earliest_completion(gpusim::SimTime from, gpusim::SimTime cap);

  scuda::Context* ctx_;
  ServerOptions opts_;
  std::vector<TenantModel> models_;
  std::unique_ptr<glp4nn::Glp4nnEngine> engine_;       // scheduler mode
  std::unique_ptr<kern::SerialDispatcher> serial_;     // baseline mode
  glp4nn::RuntimeScheduler* sched_ = nullptr;
  kern::KernelDispatcher* dispatcher_ = nullptr;
  std::vector<std::unique_ptr<InferenceSession>> sessions_;
  std::vector<Shard> shards_;         ///< one per tenant
  std::vector<scuda::Stream> homes_;  ///< one home stream per slot
  std::vector<bool> slot_busy_;
  std::vector<InFlight> inflight_;
  bool warmed_ = false;       ///< prewarm/warmup already ran
  gpusim::SimTime t0_ = 0.0;  ///< replay epoch (absolute sim time)
};

}  // namespace serving
