#include "serving/session.hpp"

#include <cstring>

#include "common/check.hpp"

namespace serving {

int replica_batch_for(int batch) {
  GLP_REQUIRE(batch >= 1, "batch must be positive");
  int b = 1;
  while (b < batch) b <<= 1;
  return b;
}

InferenceSession::InferenceSession(scuda::Context& ctx,
                                   kern::KernelDispatcher& dispatcher,
                                   mc::NetSpec spec, SessionOptions opts)
    : ctx_(&ctx), dispatcher_(&dispatcher), spec_(std::move(spec)),
      opts_(std::move(opts)) {
  GLP_REQUIRE(!spec_.layers.empty(), "servable spec has no layers");
  GLP_REQUIRE(spec_.layers.front().type == "Input",
              "servable spec must start with an Input layer");
  GLP_REQUIRE(!spec_.layers.back().tops.empty(),
              "servable spec's last layer has no top blob");
  output_blob_ = spec_.layers.back().tops.front();

  Replica& primary = build_replica(1);
  input_size_ = primary.input->sample_size();
  output_size_ = primary.output->sample_size();
  if (!opts_.weights_path.empty()) {
    ctx_->device().synchronize();
    mc::load_weights(*primary.net, opts_.weights_path);
  }
}

InferenceSession::Replica& InferenceSession::build_replica(int batch) {
  auto r = std::make_unique<Replica>();
  r->batch = batch;
  r->ec = std::make_unique<mc::ExecContext>();
  r->ec->ctx = ctx_;
  r->ec->dispatcher = dispatcher_;
  if (opts_.coalesce_lanes) {
    r->coalescing =
        std::make_unique<kern::CoalescingDispatcher>(*ctx_, *dispatcher_);
    r->ec->dispatcher = r->coalescing.get();
    r->ec->coalescer = &r->coalescing->coalescer();
  }
  r->ec->mode = opts_.mode;
  r->ec->train = false;
  r->ec->inference = true;
  // Fused conv bias saves one launch per conv per sample; serving chains
  // are launch-overhead-sensitive and the fused kernel runs the identical
  // host math (gemm then add_bias), so outputs stay bit-exact.
  r->ec->fuse_conv_bias = true;
  r->ec->rng = glp::Rng(opts_.filler_seed);

  mc::NetSpec spec = spec_;
  spec.layers.front().params.batch_size = batch;
  // Distinct layer names per tenant ("t0:") and per batch-size replica
  // ("b4/") keep scheduler scope keys separate, so each (model, batch)
  // shape is profiled on its own. The primary keeps bare prefixed names —
  // they are what checkpoint keys are matched against.
  const bool is_primary = replicas_.empty();
  for (mc::LayerSpec& l : spec.layers) {
    l.name = is_primary
                 ? opts_.name_prefix + l.name
                 : opts_.name_prefix + "b" + std::to_string(batch) + "/" + l.name;
  }
  r->net = std::make_unique<mc::Net>(std::move(spec), *r->ec);

  for (const auto& layer : r->net->layers()) {
    if (auto* in = dynamic_cast<mc::InputLayer*>(layer.get())) {
      r->input = in;
      break;
    }
  }
  GLP_CHECK(r->input != nullptr);
  r->output = r->net->blob(output_blob_);
  GLP_CHECK(r->output != nullptr);

  if (!is_primary) r->net->share_params_from(primary());

  replicas_.push_back(std::move(r));
  return *replicas_.back();
}

InferenceSession::Replica& InferenceSession::checkout(int batch) {
  const int b = replica_batch_for(batch);
  for (auto& r : replicas_) {
    if (r->batch == b && !r->busy) {
      r->busy = true;
      return *r;
    }
  }
  Replica& r = build_replica(b);
  r.busy = true;
  return r;
}

void InferenceSession::run_batch(Replica& r,
                                 const std::vector<const float*>& samples,
                                 gpusim::StreamId home) {
  GLP_REQUIRE(static_cast<int>(samples.size()) <= r.batch,
              "batch has more samples than the replica holds");
  r.ec->home_stream = home;
  if (!samples.empty() && r.ec->numeric()) {
    float* dst = r.input->staging();
    for (int i = 0; i < r.batch; ++i) {
      // Slack slots repeat the last real sample; their outputs are never
      // read, and per-sample independence keeps the real slots bit-exact.
      const float* src = samples[std::min<std::size_t>(
          static_cast<std::size_t>(i), samples.size() - 1)];
      std::memcpy(dst + static_cast<std::size_t>(i) * input_size_, src,
                  input_size_ * sizeof(float));
    }
  }
  r.net->forward();
}

const float* InferenceSession::output_of(const Replica& r, int i) const {
  GLP_REQUIRE(i >= 0 && i < r.batch, "output index out of range");
  return r.output->data() + static_cast<std::size_t>(i) * output_size_;
}

}  // namespace serving
